// Small tests closing coverage gaps on public API surfaces.
#include <gtest/gtest.h>

#include "core/dichotomy.h"
#include "core/encoding.h"
#include "covering/unate.h"
#include "logic/espresso.h"
#include "logic/urp.h"

namespace encodesat {
namespace {

TEST(UnateApi, GreedyStandalone) {
  UnateCoverProblem p;
  p.num_columns = 4;
  Bitset r1(4), r2(4);
  r1.set(0);
  r1.set(3);
  r2.set(3);
  p.rows = {r1, r2};
  const auto sol = greedy_unate_cover(p);
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.columns, (std::vector<std::size_t>{3}));
}

TEST(UnateApi, ZeroNodeBudgetFallsBackToGreedy) {
  UnateCoverProblem p;
  p.num_columns = 3;
  Bitset r(3);
  r.set(1);
  p.rows = {r};
  UnateCoverOptions o;
  o.max_nodes = 0;
  const auto sol = solve_unate_cover(p, o);
  ASSERT_TRUE(sol.feasible);
  EXPECT_FALSE(sol.optimal);  // no proof was attempted
  EXPECT_EQ(sol.cost, 1);
}

TEST(EspressoApi, NodcWrapper) {
  const Domain dom = Domain::binary(2, 1);
  Cover on(dom);
  on.add(cube_from_string(dom, "00", "1"));
  on.add(cube_from_string(dom, "01", "1"));
  EXPECT_EQ(espresso_nodc(on).size(), 1u);
}

TEST(CoverApi, ToStringListsCubes) {
  const Domain dom = Domain::binary(2, 1);
  Cover f(dom);
  f.add(cube_from_string(dom, "1-", "1"));
  EXPECT_EQ(f.to_string(), "1- | 1\n");
}

TEST(DichotomyApi, ToStringNames) {
  SymbolTable t;
  t.intern("x");
  t.intern("y");
  t.intern("z");
  const auto d = Dichotomy::make(3, {0, 2}, {1});
  EXPECT_EQ(d.to_string(t), "(x z; y)");
}

TEST(DichotomyApi, OrderingIsStrictWeak) {
  const auto a = Dichotomy::make(2, {0}, {1});
  const auto b = Dichotomy::make(2, {1}, {0});
  EXPECT_NE(a < b, b < a);
  EXPECT_FALSE(a < a);
}

TEST(EncodingApi, DeriveCodesEmptyColumns) {
  const Encoding e = derive_codes(3, {});
  EXPECT_EQ(e.bits, 0);
  EXPECT_EQ(e.codes, (std::vector<std::uint64_t>{0, 0, 0}));
}

TEST(UrpApi, ContainsEmptyCubeTrivially) {
  const Domain dom = Domain::binary(2, 1);
  Cover f(dom);
  EXPECT_TRUE(cover_contains_cube(f, Cube(dom)));  // empty cube
  EXPECT_TRUE(cover_contains(universe_cover(dom), f));
}

}  // namespace
}  // namespace encodesat
