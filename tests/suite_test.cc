// Parameterized checks over the whole MCNC-like benchmark suite: machine
// dimensions, determinism, and constraint-generation sanity.
#include <gtest/gtest.h>

#include <set>

#include "fsm/constraints_gen.h"
#include "fsm/mcnc_like.h"
#include "fsm/reachability.h"

namespace encodesat {
namespace {

class SuiteMachines : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SuiteMachines, DimensionsMatchSpec) {
  const BenchmarkSpec& spec = mcnc_like_suite()[GetParam()];
  const Fsm fsm = make_mcnc_like(spec);
  EXPECT_EQ(fsm.name, spec.name);
  EXPECT_EQ(static_cast<int>(fsm.num_states()), spec.states);
  EXPECT_EQ(fsm.num_inputs, spec.inputs);
  EXPECT_EQ(fsm.num_outputs, spec.outputs);
  EXPECT_GE(fsm.reset_state, 0);
}

TEST_P(SuiteMachines, DeterministicTransitionRelation) {
  // The generator's events partition the input space, so no two
  // transitions from the same state may have intersecting input cubes.
  const Fsm fsm = make_mcnc_like(mcnc_like_suite()[GetParam()]);
  auto intersects = [](const std::string& a, const std::string& b) {
    for (std::size_t i = 0; i < a.size(); ++i)
      if (a[i] != '-' && b[i] != '-' && a[i] != b[i]) return false;
    return true;
  };
  std::vector<std::vector<const FsmTransition*>> by_state(fsm.num_states());
  for (const auto& t : fsm.transitions) by_state[t.from].push_back(&t);
  for (const auto& list : by_state)
    for (std::size_t i = 0; i < list.size(); ++i)
      for (std::size_t j = i + 1; j < list.size(); ++j)
        EXPECT_FALSE(intersects(list[i]->input, list[j]->input))
            << fsm.name << ": state has overlapping input cubes";
}

TEST_P(SuiteMachines, EveryStateHasOutgoingEdges) {
  const Fsm fsm = make_mcnc_like(mcnc_like_suite()[GetParam()]);
  std::set<std::uint32_t> sources;
  for (const auto& t : fsm.transitions) sources.insert(t.from);
  EXPECT_EQ(sources.size(), fsm.num_states());
}

TEST_P(SuiteMachines, InputConstraintsAreNonTrivial) {
  const BenchmarkSpec& spec = mcnc_like_suite()[GetParam()];
  if (spec.states > 40) GTEST_SKIP() << "kept quick: large MV minimization";
  const Fsm fsm = make_mcnc_like(spec);
  const ConstraintSet cs = generate_input_constraints(fsm);
  EXPECT_EQ(cs.num_symbols(), fsm.num_states());
  EXPECT_GE(cs.faces().size(), 1u) << spec.name;
  for (const auto& f : cs.faces()) {
    EXPECT_GE(f.members.size(), 2u);
    EXPECT_LT(f.members.size(), fsm.num_states());
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, SuiteMachines,
    ::testing::Range<std::size_t>(0, mcnc_like_suite().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return mcnc_like_suite()[info.param].name;
    });

}  // namespace
}  // namespace encodesat
