// Tests for the canonicalization + solve-cache subsystem (src/cache/):
// renaming invariance of the canonical form, LRU/byte-budget behavior of
// the sharded cache, the encodesat-cache-v1 persistence round-trip, and
// the facade-level guarantees (hit == miss bit-identity, thread-count
// invariant counter fingerprints with the cache enabled).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <numeric>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "cache/canonical.h"
#include "cache/solve_cache.h"
#include "core/constraints.h"
#include "core/solver.h"
#include "fuzz/reproducer.h"
#include "obs/counters.h"

namespace encodesat {
namespace {

ConstraintSet quickstart_constraints() {
  return parse_constraints(
      "face a b\n"
      "face b c d\n"
      "dominance a c\n"
      "disjunctive a c d\n");
}

ConstraintSet mixed_constraints() {
  return parse_constraints(
      "face s0 s1 s2\n"
      "face s1 s3\n"
      "face s4 s5\n"
      "dominance s0 s3\n"
      "dominance s5 s2\n"
      "disjunctive s0 s2 s4\n"
      "extdisjunctive s1 : s0 s3 | s4 s5\n");
}

ConstraintSet extension_constraints() {
  return parse_constraints(
      "face a b\n"
      "face c d\n"
      "distance2 a c\n"
      "nonface e a c\n");
}

// A rendering of `cs` with symbols renamed by `perm` and the constraint
// lines emitted in a shuffled order — the same abstract instance as far as
// canonicalization is concerned.
ConstraintSet shuffled_rendering(const ConstraintSet& cs,
                                 std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const std::uint32_t n = cs.num_symbols();
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  std::shuffle(perm.begin(), perm.end(), rng);
  const ConstraintSet renamed = apply_symbol_permutation(cs, perm);

  // Reorder the constraint lines of the textual rendering and re-parse, so
  // symbols are also interned in a different first-appearance order.
  std::vector<std::string> lines;
  std::istringstream in(renamed.to_string());
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) lines.push_back(line);
  std::shuffle(lines.begin(), lines.end(), rng);
  std::string text;
  for (const std::string& line : lines) text += line + "\n";
  return parse_constraints(text);
}

CachedSolve make_entry(std::size_t codes) {
  CachedSolve v;
  v.status = 0;
  v.bits = 3;
  v.codes.assign(codes, 5);
  v.minimal = true;
  v.num_primes = 7;
  return v;
}

TEST(Canonical, InvariantUnderSymbolRenamingAndReordering) {
  for (const ConstraintSet& cs :
       {quickstart_constraints(), mixed_constraints(),
        extension_constraints()}) {
    const Canonicalization base = canonicalize(cs);
    EXPECT_TRUE(base.canon.exact);
    for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
      const Canonicalization other =
          canonicalize(shuffled_rendering(cs, seed));
      EXPECT_EQ(base.canon.key, other.canon.key) << "seed " << seed;
      EXPECT_EQ(base.canon.hash, other.canon.hash) << "seed " << seed;
    }
  }
}

TEST(Canonical, DistinguishesDifferentInstances) {
  const Canonicalization a = canonicalize(quickstart_constraints());
  const Canonicalization b = canonicalize(mixed_constraints());
  const Canonicalization c = canonicalize(extension_constraints());
  EXPECT_NE(a.canon.key, b.canon.key);
  EXPECT_NE(a.canon.key, c.canon.key);
  EXPECT_NE(b.canon.key, c.canon.key);
}

TEST(Canonical, PermutationRoundTrips) {
  const ConstraintSet cs = mixed_constraints();
  const Canonicalization cz = canonicalize(cs);
  const std::uint32_t n = cs.num_symbols();
  ASSERT_EQ(cz.perm.to_canonical.size(), n);
  ASSERT_EQ(cz.perm.from_canonical.size(), n);
  for (std::uint32_t i = 0; i < n; ++i)
    EXPECT_EQ(cz.perm.from_canonical[cz.perm.to_canonical[i]], i);
  // Applying the permutation to the original reproduces the canonical set's
  // structure (same canonical key trivially, but also the same rendering).
  const ConstraintSet mapped = apply_symbol_permutation(cs, cz.perm.to_canonical);
  EXPECT_EQ(canonicalize(mapped).canon.key, cz.canon.key);
}

// The satellite regression: two shuffled renderings of the same reproducer
// file canonicalize to the same 128-bit hash.
TEST(Canonical, ShuffledReproducerRenderingsHashIdentically) {
  std::vector<std::string> files;
  const std::filesystem::path dir = ENCODESAT_FUZZ_CORPUS_DIR;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.path().extension() == ".repro")
      files.push_back(entry.path().string());
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty());
  for (const std::string& path : files) {
    ParseError err;
    const auto repro = load_reproducer_file(path, &err);
    ASSERT_TRUE(repro.has_value()) << path << ": " << err.to_string();
    const ConstraintSet& cs = repro->constraints;
    const Hash128 h1 = canonicalize(shuffled_rendering(cs, 11)).canon.hash;
    const Hash128 h2 = canonicalize(shuffled_rendering(cs, 42)).canon.hash;
    EXPECT_EQ(h1, h2) << path;
    EXPECT_EQ(h1, canonicalize(cs).canon.hash) << path;
  }
}

TEST(SolveCacheLru, EvictsLeastRecentlyUsedFirst) {
  // One shard so the LRU order is global; budget sized for ~3 entries.
  const std::size_t entry_bytes = make_entry(4).approx_bytes() + 1;
  SolveCache cache(CacheConfig{1, 3 * entry_bytes + 16});
  cache.insert("a", make_entry(4));
  cache.insert("b", make_entry(4));
  cache.insert("c", make_entry(4));
  CachedSolve out;
  ASSERT_TRUE(cache.lookup("a", &out));  // a is now most recently used
  cache.insert("d", make_entry(4));      // evicts b, the LRU entry
  EXPECT_FALSE(cache.lookup("b", &out));
  EXPECT_TRUE(cache.lookup("a", &out));
  EXPECT_TRUE(cache.lookup("c", &out));
  EXPECT_TRUE(cache.lookup("d", &out));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(SolveCacheLru, ByteBudgetIsEnforced) {
  const std::size_t budget = 4 * (make_entry(8).approx_bytes() + 8);
  SolveCache cache(CacheConfig{1, budget});
  for (int i = 0; i < 64; ++i)
    cache.insert("key" + std::to_string(i), make_entry(8));
  const CacheStats s = cache.stats();
  EXPECT_LE(s.bytes, budget);
  EXPECT_LT(s.entries, 64u);
  EXPECT_EQ(s.inserts, 64u);
  EXPECT_EQ(s.entries + s.evictions, 64u);
  // The most recent insert always survives (eviction never removes the
  // just-touched entry).
  CachedSolve out;
  EXPECT_TRUE(cache.lookup("key63", &out));
}

TEST(SolveCacheLru, UnlimitedBudgetNeverEvicts) {
  SolveCache cache(CacheConfig{4, 0});
  for (int i = 0; i < 100; ++i)
    cache.insert("key" + std::to_string(i), make_entry(2));
  EXPECT_EQ(cache.stats().entries, 100u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(SolveCachePersist, TextRoundTripPreservesEntries) {
  SolveCache cache(CacheConfig{2, 0});
  CachedSolve a = make_entry(3);
  a.uncovered = {1, 4};
  a.stats_fingerprint = 0xdeadbeefu;
  CachedSolve b;
  b.status = 1;  // infeasible: no codes
  b.bits = 0;
  cache.insert("n3;f0,1;#0123", a);
  cache.insert("n2;f0;#4567", b);

  SolveCache loaded(CacheConfig{8, 0});
  std::string err;
  ASSERT_TRUE(loaded.from_text(cache.to_text(), &err)) << err;
  CachedSolve out;
  ASSERT_TRUE(loaded.lookup("n3;f0,1;#0123", &out));
  EXPECT_EQ(out.codes, a.codes);
  EXPECT_EQ(out.uncovered, a.uncovered);
  EXPECT_EQ(out.stats_fingerprint, a.stats_fingerprint);
  EXPECT_EQ(out.minimal, a.minimal);
  ASSERT_TRUE(loaded.lookup("n2;f0;#4567", &out));
  EXPECT_EQ(out.status, 1);
  EXPECT_TRUE(out.codes.empty());
  // Deterministic rendering: serializing the copy reproduces the text.
  EXPECT_EQ(cache.to_text(), loaded.to_text());
}

TEST(SolveCachePersist, RejectsMalformedInput) {
  SolveCache cache;
  std::string err;
  EXPECT_FALSE(cache.from_text("not-a-cache-file\n", &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(
      cache.from_text("encodesat-cache-v1\nentry k\nbogus 1\nend\n", &err));
}

// Save a warmed cache to disk, load it fresh, and re-solve the same
// instances: every solve must be a hit and bit-identical to the original.
TEST(SolveCachePersist, FileRoundTripServesAllHits) {
  const std::vector<ConstraintSet> sets = {
      quickstart_constraints(), mixed_constraints(), extension_constraints()};
  SolveCache warm;
  SolveOptions opts;
  opts.cache.store = &warm;
  std::vector<SolveResult> first;
  for (const ConstraintSet& cs : sets) first.push_back(Solver(cs).encode(opts));
  ASSERT_EQ(warm.stats().hits, 0u);
  ASSERT_EQ(warm.stats().misses, sets.size());

  const std::string path =
      (std::filesystem::temp_directory_path() / "encodesat_cache_test.cache")
          .string();
  std::string err;
  ASSERT_TRUE(warm.save(path, &err)) << err;
  SolveCache loaded;
  ASSERT_TRUE(loaded.load(path, &err)) << err;
  std::remove(path.c_str());

  SolveOptions lopts;
  lopts.cache.store = &loaded;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    const SolveResult r = Solver(sets[i]).encode(lopts);
    EXPECT_TRUE(r.from_cache) << i;
    EXPECT_EQ(r.status, first[i].status) << i;
    EXPECT_EQ(r.encoding.bits, first[i].encoding.bits) << i;
    EXPECT_EQ(r.encoding.codes, first[i].encoding.codes) << i;
    EXPECT_EQ(r.minimal, first[i].minimal) << i;
    EXPECT_EQ(r.num_primes, first[i].num_primes) << i;
  }
  EXPECT_EQ(loaded.stats().hits, sets.size());
  EXPECT_EQ(loaded.stats().misses, 0u);
}

// The facade contract: a warm hit is bit-identical to the cold miss that
// populated it, including for a symbol-renamed copy of the instance.
TEST(SolverCache, HitMatchesMissBitForBit) {
  const ConstraintSet cs = mixed_constraints();
  SolveCache cache;
  SolveOptions opts;
  opts.cache.store = &cache;
  const SolveResult cold = Solver(cs).encode(opts);
  const SolveResult hit = Solver(cs).encode(opts);
  EXPECT_FALSE(cold.from_cache);
  EXPECT_TRUE(hit.from_cache);
  EXPECT_EQ(hit.status, cold.status);
  EXPECT_EQ(hit.encoding.bits, cold.encoding.bits);
  EXPECT_EQ(hit.encoding.codes, cold.encoding.codes);
  EXPECT_EQ(hit.minimal, cold.minimal);
  EXPECT_EQ(hit.num_initial, cold.num_initial);
  EXPECT_EQ(hit.num_primes, cold.num_primes);
  EXPECT_EQ(hit.num_valid_primes, cold.num_valid_primes);
  EXPECT_NE(hit.stats.find("cache_hit"), nullptr);

  // A renamed copy hits the same entry; its codes come back in its own
  // symbol order, equal to solving it cold.
  const ConstraintSet renamed = shuffled_rendering(cs, 9);
  const SolveResult via_cache = Solver(renamed).encode(opts);
  EXPECT_TRUE(via_cache.from_cache);
  const SolveResult direct = Solver(renamed).encode();
  EXPECT_EQ(via_cache.encoding.codes, direct.encoding.codes);
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(SolverCache, OwnedCacheServesRepeatSolves) {
  const Solver solver(quickstart_constraints());
  SolveOptions opts;
  opts.cache.enabled = true;
  const SolveResult a = solver.encode(opts);
  const SolveResult b = solver.encode(opts);
  EXPECT_FALSE(a.from_cache);
  EXPECT_TRUE(b.from_cache);
  EXPECT_EQ(a.encoding.codes, b.encoding.codes);
}

TEST(SolverCache, DifferentOptionFingerprintsDoNotShareEntries) {
  const ConstraintSet cs = mixed_constraints();
  SolveCache cache;
  SolveOptions a;
  a.cache.store = &cache;
  SolveOptions b = a;
  b.exact.prime_options.max_terms = 12345;  // result-affecting knob
  EXPECT_NE(solve_options_fingerprint(a), solve_options_fingerprint(b));
  (void)Solver(cs).encode(a);
  const SolveResult rb = Solver(cs).encode(b);
  EXPECT_FALSE(rb.from_cache);
  EXPECT_EQ(cache.stats().misses, 2u);
}

// Cache hit/miss counters are outside the metrics fingerprint, so the
// thread-determinism contract holds with the cache enabled: threads=1 and
// threads=4 runs produce identical counter fingerprints.
TEST(SolverCache, CounterFingerprintIsThreadCountInvariant) {
  const ConstraintSet cs = mixed_constraints();
  MetricsRegistry m1, m4;
  SolveCache c1, c4;
  SolveOptions o1;
  o1.exec.threads = 1;
  o1.exec.metrics = &m1;
  o1.cache.store = &c1;
  SolveOptions o4;
  o4.exec.threads = 4;
  o4.exec.metrics = &m4;
  o4.cache.store = &c4;
  // Two solves each: a miss then a hit, so the cache.* counters differ from
  // the pipeline counters' single-run values — the fingerprint must not see
  // them.
  const SolveResult r1a = Solver(cs).encode(o1);
  const SolveResult r1b = Solver(cs).encode(o1);
  const SolveResult r4a = Solver(cs).encode(o4);
  const SolveResult r4b = Solver(cs).encode(o4);
  EXPECT_EQ(r1a.encoding.codes, r4a.encoding.codes);
  EXPECT_EQ(r1b.encoding.codes, r4b.encoding.codes);
  EXPECT_EQ(m1.fingerprint(), m4.fingerprint());
  EXPECT_EQ(m1.fingerprint_hash(), m4.fingerprint_hash());
  // The cache counters themselves are still reported (outside the
  // fingerprint) and saw one miss + one hit per registry.
  EXPECT_EQ(c1.stats().hits, 1u);
  EXPECT_EQ(c4.stats().hits, 1u);
}

}  // namespace
}  // namespace encodesat
