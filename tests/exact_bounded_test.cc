// Tests for the exact P-3 solver and its use as the optimality oracle for
// the Section 7.1 heuristic.
#include <gtest/gtest.h>

#include "core/bounded.h"
#include "core/exact_bounded.h"
#include "core/verify.h"
#include "util/rng.h"

namespace encodesat {
namespace {

TEST(ExactBounded, SatisfiableInstanceReachesZero) {
  const ConstraintSet cs = parse_constraints("face a b\nface c d");
  const auto res = exact_bounded_encode(cs, 2);
  ASSERT_EQ(res.status, ExactBoundedResult::Status::kSolved);
  EXPECT_TRUE(res.optimal);
  EXPECT_EQ(res.violated_faces, 0);
  EXPECT_EQ(count_satisfied_faces(res.encoding, cs), 2);
}

TEST(ExactBounded, Section7ThreeBitOptimum) {
  // The paper's Section 7 set needs 4 bits for full satisfaction; at 3 bits
  // some constraints must fail. The exact solver pins how many.
  const ConstraintSet cs = parse_constraints(R"(
    face e f c
    face e d g
    face a b d
    face a g f d
  )");
  const auto res = exact_bounded_encode(cs, 3);
  ASSERT_EQ(res.status, ExactBoundedResult::Status::kSolved);
  ASSERT_TRUE(res.optimal);
  EXPECT_GT(res.violated_faces, 0);
  EXPECT_LE(res.violated_faces, 3);  // the paper's sample encoding hits 3
}

TEST(ExactBounded, RespectsOutputConstraints) {
  const ConstraintSet cs = parse_constraints(R"(
    face a b
    dominance a b
    symbol c
  )");
  const auto res = exact_bounded_encode(cs, 2);
  ASSERT_EQ(res.status, ExactBoundedResult::Status::kSolved);
  const auto v = verify_encoding(res.encoding, cs);
  for (const auto& viol : v)
    EXPECT_EQ(viol.kind, Violation::Kind::kFace) << viol.detail;
}

TEST(ExactBounded, TooSmallSpaceThrows) {
  ConstraintSet cs;
  for (int i = 0; i < 5; ++i) cs.symbols().intern("s" + std::to_string(i));
  EXPECT_THROW(exact_bounded_encode(cs, 2), std::invalid_argument);
}

class HeuristicVsExactBounded : public ::testing::TestWithParam<int> {};

TEST_P(HeuristicVsExactBounded, HeuristicNeverBeatsExactAndStaysClose) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 137 + 41);
  ConstraintSet cs;
  const std::uint32_t n = 5 + static_cast<std::uint32_t>(rng.next_below(3));
  for (std::uint32_t i = 0; i < n; ++i)
    cs.symbols().intern("s" + std::to_string(i));
  int faces = 0;
  for (int f = 0; f < 4; ++f) {
    std::vector<std::uint32_t> members;
    for (std::uint32_t s = 0; s < n; ++s)
      if (rng.next_bool(0.4)) members.push_back(s);
    if (members.size() >= 2 && members.size() < n) {
      cs.add_face_ids(std::move(members));
      ++faces;
    }
  }
  if (faces == 0) return;
  const int bits = minimum_code_length(n);

  const auto exact = exact_bounded_encode(cs, bits);
  ASSERT_EQ(exact.status, ExactBoundedResult::Status::kSolved);
  ASSERT_TRUE(exact.optimal);

  BoundedEncodeOptions opts;
  opts.cost = CostKind::kViolatedFaces;
  const auto heur = bounded_encode(cs, bits, opts);

  EXPECT_GE(heur.cost.violated_faces, exact.violated_faces) << cs.to_string();
  // Quality regression guard: the heuristic should stay within 2 violated
  // faces of the optimum on these small instances.
  EXPECT_LE(heur.cost.violated_faces, exact.violated_faces + 2)
      << cs.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeuristicVsExactBounded,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace encodesat
