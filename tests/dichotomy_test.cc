// Tests for encoding-dichotomies (Definitions 3.1-3.6) and the
// output-constraint validity / raising rules (Figures 5-6).
#include <gtest/gtest.h>

#include "core/constraints.h"
#include "core/dichotomy.h"
#include "core/generate.h"
#include "core/output_rules.h"

namespace encodesat {
namespace {

Dichotomy d(std::size_t n, std::vector<std::uint32_t> l,
            std::vector<std::uint32_t> r) {
  return Dichotomy::make(n, l, r);
}

TEST(Dichotomy, CompatibilityIsOrientationSensitive) {
  // Definition 3.2: left of one must not clash with right of the other.
  const auto a = d(4, {0, 1}, {2, 3});
  const auto b = d(4, {0}, {3});
  const auto c = d(4, {2}, {0});
  EXPECT_TRUE(a.compatible(b));
  EXPECT_TRUE(b.compatible(a));
  EXPECT_FALSE(a.compatible(c));
  // A dichotomy is incompatible with its own flip.
  EXPECT_FALSE(a.compatible(a.flipped()));
  // ... but compatible with itself.
  EXPECT_TRUE(a.compatible(a));
}

TEST(Dichotomy, UnionMergesBlocks) {
  const auto a = d(5, {0}, {2});
  const auto b = d(5, {1}, {3});
  const auto u = a.union_with(b);
  EXPECT_TRUE(u.in_left(0));
  EXPECT_TRUE(u.in_left(1));
  EXPECT_TRUE(u.in_right(2));
  EXPECT_TRUE(u.in_right(3));
  EXPECT_FALSE(u.places(4));
}

TEST(Dichotomy, CoversAllowsSwappedOrientation) {
  // Definition 3.4 example: (s0; s1 s2) is covered by (s0 s3; s1 s2 s4) and
  // by (s1 s2 s3; s0), but not by (s0 s1; s2).
  const auto target = d(5, {0}, {1, 2});
  EXPECT_TRUE(d(5, {0, 3}, {1, 2, 4}).covers(target));
  EXPECT_TRUE(d(5, {1, 2, 3}, {0}).covers(target));
  EXPECT_FALSE(d(5, {0, 1}, {2}).covers(target));
}

TEST(Dichotomy, DedupeKeepsFirst) {
  std::vector<Dichotomy> v = {d(3, {0}, {1}), d(3, {0}, {1}), d(3, {1}, {0})};
  dedupe_dichotomies(v);
  EXPECT_EQ(v.size(), 2u);
}

TEST(OutputRules, DominanceValidity) {
  // Definition 3.6 example: (s0; s1 s2) violates s0 > s1.
  ConstraintSet cs;
  cs.symbols().intern("s0");
  cs.symbols().intern("s1");
  cs.symbols().intern("s2");
  cs.add_dominance("s0", "s1");
  EXPECT_FALSE(dichotomy_valid(d(3, {0}, {1, 2}), cs));
  EXPECT_TRUE(dichotomy_valid(d(3, {0, 1}, {2}), cs));
  EXPECT_TRUE(dichotomy_valid(d(3, {1}, {0}), cs));
}

TEST(OutputRules, DisjunctiveValidity) {
  // Figure 8: (s0 s1; s3) conflicts with s0 = s1 OR s3 (parent at 0 with a
  // child at 1); (s0 s1; s2) conflicts with s1 > s2 only, not with the
  // disjunctive.
  ConstraintSet cs;
  for (const char* s : {"s0", "s1", "s2", "s3"}) cs.symbols().intern(s);
  cs.add_disjunctive("s0", {"s1", "s3"});
  EXPECT_FALSE(dichotomy_valid(d(4, {0, 1}, {3}), cs));
  EXPECT_TRUE(dichotomy_valid(d(4, {0, 1}, {2}), cs));
  // Parent at 1 with every child at 0 is dead.
  EXPECT_FALSE(dichotomy_valid(d(4, {1, 3}, {0}), cs));
  // Parent at 1 with one child unplaced is still extendable.
  EXPECT_TRUE(dichotomy_valid(d(4, {1}, {0}), cs));
}

TEST(OutputRules, ExtendedDisjunctiveValidity) {
  // (b AND c) OR (d AND e) >= a: a at 1 with both conjunctions killed is
  // invalid.
  ConstraintSet cs;
  for (const char* s : {"a", "b", "c", "d", "e"}) cs.symbols().intern(s);
  cs.add_extended_disjunctive("a", {{"b", "c"}, {"d", "e"}});
  EXPECT_FALSE(dichotomy_valid(d(5, {1, 3}, {0}), cs));  // b,d at 0; a at 1
  EXPECT_TRUE(dichotomy_valid(d(5, {1}, {0}), cs));      // (d,e) still alive
  EXPECT_TRUE(dichotomy_valid(d(5, {1, 3}, {2}), cs));   // a not at 1
}

TEST(OutputRules, RaiseDominance) {
  // Figure 4 narrative: raising (s1; s2 s5) under s0>s2, s1>s3, s4>s5
  // yields (s1 s3; s0 s2 s4 s5).
  ConstraintSet cs;
  for (const char* s : {"s0", "s1", "s2", "s3", "s4", "s5"})
    cs.symbols().intern(s);
  cs.add_dominance("s0", "s2");
  cs.add_dominance("s1", "s3");
  cs.add_dominance("s4", "s5");
  Dichotomy x = d(6, {1}, {2, 5});
  ASSERT_TRUE(raise_dichotomy(x, cs));
  EXPECT_EQ(x, d(6, {1, 3}, {0, 2, 4, 5}));
}

TEST(OutputRules, RaiseDisjunctiveAllChildrenLeft) {
  ConstraintSet cs;
  for (const char* s : {"p", "c1", "c2"}) cs.symbols().intern(s);
  cs.add_disjunctive("p", {"c1", "c2"});
  Dichotomy x = d(3, {1, 2}, {});
  ASSERT_TRUE(raise_dichotomy(x, cs));
  EXPECT_TRUE(x.in_left(0));  // p forced to 0
}

TEST(OutputRules, RaiseDisjunctiveLastFreeChild) {
  ConstraintSet cs;
  for (const char* s : {"p", "c1", "c2"}) cs.symbols().intern(s);
  cs.add_disjunctive("p", {"c1", "c2"});
  Dichotomy x = d(3, {1}, {0});  // p at 1, c1 at 0
  ASSERT_TRUE(raise_dichotomy(x, cs));
  EXPECT_TRUE(x.in_right(2));  // c2 forced to 1
}

TEST(OutputRules, RaiseDisjunctiveChildRightForcesParent) {
  ConstraintSet cs;
  for (const char* s : {"p", "c1", "c2"}) cs.symbols().intern(s);
  cs.add_disjunctive("p", {"c1", "c2"});
  Dichotomy x = d(3, {}, {1});  // c1 at 1
  ASSERT_TRUE(raise_dichotomy(x, cs));
  EXPECT_TRUE(x.in_right(0));  // p = OR(...) >= c1
}

TEST(OutputRules, RaiseParentLeftPullsChildren) {
  ConstraintSet cs;
  for (const char* s : {"p", "c1", "c2"}) cs.symbols().intern(s);
  cs.add_disjunctive("p", {"c1", "c2"});
  Dichotomy x = d(3, {0}, {});
  ASSERT_TRUE(raise_dichotomy(x, cs));
  EXPECT_TRUE(x.in_left(1));
  EXPECT_TRUE(x.in_left(2));
}

TEST(OutputRules, RaiseDetectsContradiction) {
  ConstraintSet cs;
  for (const char* s : {"a", "b", "c"}) cs.symbols().intern(s);
  cs.add_dominance("a", "b");
  cs.add_dominance("b", "c");
  // a at 0 forces b to 0 forces c to 0, but c is already at 1.
  Dichotomy x = d(3, {0}, {2});
  EXPECT_FALSE(raise_dichotomy(x, cs));
}

TEST(OutputRules, RaiseExtendedDisjunctive) {
  ConstraintSet cs;
  for (const char* s : {"a", "b", "c", "d", "e"}) cs.symbols().intern(s);
  cs.add_extended_disjunctive("a", {{"b", "c"}, {"d", "e"}});
  // Both conjunctions killed -> parent forced to 0.
  Dichotomy x = d(5, {1, 3}, {});
  ASSERT_TRUE(raise_dichotomy(x, cs));
  EXPECT_TRUE(x.in_left(0));
  // Parent at 1, first conjunction killed -> all of (d, e) forced to 1.
  Dichotomy y = d(5, {1}, {0});
  ASSERT_TRUE(raise_dichotomy(y, cs));
  EXPECT_TRUE(y.in_right(3));
  EXPECT_TRUE(y.in_right(4));
}

TEST(Generate, FaceConstraintDichotomies) {
  // Face (a, b) among 4 symbols: two orientations for each of c, d.
  ConstraintSet cs;
  cs.add_face({"a", "b"});
  cs.symbols().intern("c");
  cs.symbols().intern("d");
  const auto init = generate_initial_dichotomies(cs);
  int face_rows = 0;
  for (const auto& i : init)
    if (i.face_index == 0) ++face_rows;
  EXPECT_EQ(face_rows, 4);  // 2 * (n - l) = 2 * 2
}

TEST(Generate, UniquenessOnlyWhenNotSeparated) {
  ConstraintSet cs;
  cs.add_face({"a", "b"});
  cs.symbols().intern("c");
  const auto init = generate_initial_dichotomies(cs);
  // Pairs (a,c) and (b,c) are separated by the face dichotomies; (a,b) is
  // not, so exactly one uniqueness pair (both orientations) is added.
  int uniq = 0;
  for (const auto& i : init)
    if (i.face_index < 0) ++uniq;
  EXPECT_EQ(uniq, 2);
}

TEST(Generate, DontCareSymbolsProduceNoDichotomy) {
  // Section 8.1: (s0 s1 s3 [s5]) simply omits the dichotomies against s5.
  ConstraintSet cs;
  cs.add_face({"s0", "s1", "s3"}, {"s5"});
  cs.symbols().intern("s2");
  cs.symbols().intern("s4");
  const auto init = generate_initial_dichotomies(cs);
  for (const auto& i : init) {
    if (i.face_index != 0) continue;
    EXPECT_FALSE(i.dichotomy.places(cs.symbols().at("s5")));
  }
}

TEST(Generate, NoConstraintsAllUniquenessPairs) {
  ConstraintSet cs;
  for (const char* s : {"a", "b", "c"}) cs.symbols().intern(s);
  const auto init = generate_initial_dichotomies(cs);
  EXPECT_EQ(init.size(), 6u);  // both orientations of 3 pairs
}

}  // namespace
}  // namespace encodesat
