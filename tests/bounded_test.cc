// Tests for the bounded-length heuristic encoder (Section 7.1).
#include <gtest/gtest.h>

#include "core/bounded.h"
#include "core/encoder.h"
#include "core/verify.h"
#include "util/rng.h"

namespace encodesat {
namespace {

TEST(Bounded, MinimumCodeLengthHelper) {
  EXPECT_EQ(minimum_code_length(1), 1);
  EXPECT_EQ(minimum_code_length(2), 1);
  EXPECT_EQ(minimum_code_length(3), 2);
  EXPECT_EQ(minimum_code_length(4), 2);
  EXPECT_EQ(minimum_code_length(5), 3);
  EXPECT_EQ(minimum_code_length(16), 4);
  EXPECT_EQ(minimum_code_length(17), 5);
}

TEST(Bounded, RejectsTooShortCodes) {
  ConstraintSet cs;
  for (int i = 0; i < 5; ++i) cs.symbols().intern("s" + std::to_string(i));
  EXPECT_THROW(bounded_encode(cs, 2), std::invalid_argument);
}

TEST(Bounded, CodesAreAlwaysUnique) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    ConstraintSet cs;
    const std::uint32_t n = 4 + static_cast<std::uint32_t>(rng.next_below(9));
    for (std::uint32_t i = 0; i < n; ++i)
      cs.symbols().intern("s" + std::to_string(i));
    for (int f = 0; f < 4; ++f) {
      std::vector<std::uint32_t> members;
      for (std::uint32_t s = 0; s < n; ++s)
        if (rng.next_bool(0.35)) members.push_back(s);
      if (members.size() >= 2 && members.size() < n)
        cs.add_face_ids(std::move(members));
    }
    BoundedEncodeOptions opts;
    opts.cost = CostKind::kViolatedFaces;
    const auto res = bounded_encode(cs, minimum_code_length(n), opts);
    const auto violations = verify_encoding(res.encoding, cs);
    for (const auto& v : violations)
      EXPECT_NE(v.kind, Violation::Kind::kDuplicateCode) << v.detail;
  }
}

TEST(Bounded, SatisfiesEasyConstraintsAtMinimumLength) {
  // Two disjoint pairs in 2 bits: both faces are satisfiable.
  const ConstraintSet cs = parse_constraints("face a b\nface c d");
  BoundedEncodeOptions opts;
  opts.cost = CostKind::kViolatedFaces;
  const auto res = bounded_encode(cs, 2, opts);
  EXPECT_EQ(res.cost.violated_faces, 0);
}

TEST(Bounded, ExtraBitsNeverHurtFeasibility) {
  const ConstraintSet cs = parse_constraints(R"(
    face e f c
    face e d g
    face a b d
    face a g f d
  )");
  // 4 bits satisfy everything exactly; the heuristic should find a
  // reasonably good 4-bit solution too (not necessarily perfect).
  BoundedEncodeOptions opts;
  opts.cost = CostKind::kViolatedFaces;
  opts.max_selection_evals = 2000;
  const auto res = bounded_encode(cs, 4, opts);
  EXPECT_LE(res.cost.violated_faces, 2);
  const auto violations = verify_encoding(res.encoding, cs);
  for (const auto& v : violations)
    EXPECT_NE(v.kind, Violation::Kind::kDuplicateCode);
}

TEST(Bounded, CubesCostDecreasesWithLongerCodes) {
  const ConstraintSet cs = parse_constraints(R"(
    face e f c
    face e d g
    face a b d
    face a g f d
  )");
  BoundedEncodeOptions opts;
  opts.cost = CostKind::kCubes;
  const auto res3 = bounded_encode(cs, 3, opts);
  const auto res4 = bounded_encode(cs, 4, opts);
  EXPECT_LE(res4.cost.cubes, res3.cost.cubes);
}

TEST(Bounded, TwoSymbolsOneBit) {
  const ConstraintSet cs = parse_constraints("symbol a\nsymbol b");
  const auto res = bounded_encode(cs, 1);
  EXPECT_NE(res.encoding.codes[0], res.encoding.codes[1]);
}

TEST(Bounded, LiteralCostEvaluates) {
  const ConstraintSet cs = parse_constraints("face a b\nface b c\nsymbol d");
  BoundedEncodeOptions opts;
  opts.cost = CostKind::kLiterals;
  const auto res = bounded_encode(cs, 2, opts);
  EXPECT_GE(res.cost.literals, 0);
  EXPECT_EQ(res.encoding.bits, 2);
}

class BoundedRandom : public ::testing::TestWithParam<int> {};

TEST_P(BoundedRandom, NeverWorseThanAllViolated) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 53 + 3);
  ConstraintSet cs;
  const std::uint32_t n = 5 + static_cast<std::uint32_t>(rng.next_below(6));
  for (std::uint32_t i = 0; i < n; ++i)
    cs.symbols().intern("s" + std::to_string(i));
  int nfaces = 0;
  for (int f = 0; f < 5; ++f) {
    std::vector<std::uint32_t> members;
    for (std::uint32_t s = 0; s < n; ++s)
      if (rng.next_bool(0.3)) members.push_back(s);
    if (members.size() >= 2 && members.size() < n) {
      cs.add_face_ids(std::move(members));
      ++nfaces;
    }
  }
  BoundedEncodeOptions opts;
  opts.cost = CostKind::kViolatedFaces;
  const auto res = bounded_encode(cs, minimum_code_length(n), opts);
  EXPECT_LE(res.cost.violated_faces, nfaces);
  EXPECT_EQ(res.encoding.bits, minimum_code_length(n));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundedRandom, ::testing::Range(0, 12));

}  // namespace
}  // namespace encodesat
