// Tests for the differential fuzzing subsystem: generator determinism and
// mix presets, the agreement-rule driver, thread-count report identity,
// the delta-debugging minimizer, the reproducer format, and the
// infeasibility-witness checker.
#include <gtest/gtest.h>

#include "core/encoder.h"
#include "core/solver.h"
#include "fuzz/differential.h"
#include "fuzz/generator.h"
#include "fuzz/minimizer.h"
#include "fuzz/reproducer.h"

namespace encodesat {
namespace {

// Cheap driver configuration for unit tests (the smoke ctest covers the
// full-budget path).
DifferentialOptions fast_options() {
  DifferentialOptions opts;
  opts.max_work_per_case = 1'000'000;
  opts.max_cover_nodes = 1'000;
  return opts;
}

TEST(FuzzGenerator, SameSeedSameCase) {
  const std::uint64_t s = fuzz_case_seed(42, 7);
  const ConstraintSet a = generate_case(s);
  const ConstraintSet b = generate_case(s);
  EXPECT_EQ(a.to_string(), b.to_string());
}

TEST(FuzzGenerator, CaseSeedsAreOrderFree) {
  // Per-case seeds depend only on (run seed, index), never on generation
  // order — the property that makes the driver schedule-independent.
  EXPECT_NE(fuzz_case_seed(1, 0), fuzz_case_seed(1, 1));
  EXPECT_NE(fuzz_case_seed(1, 0), fuzz_case_seed(2, 0));
  EXPECT_EQ(fuzz_case_seed(9, 3), fuzz_case_seed(9, 3));
}

TEST(FuzzGenerator, CasesRoundTripThroughGrammar) {
  for (std::uint64_t i = 0; i < 50; ++i) {
    const ConstraintSet cs = generate_case(fuzz_case_seed(11, i));
    ParseError err;
    const auto again = parse_constraints(cs.to_string(), &err);
    ASSERT_TRUE(again.has_value()) << "case " << i << ": "
                                   << err.to_string();
    EXPECT_EQ(again->to_string(), cs.to_string()) << "case " << i;
    EXPECT_EQ(again->num_symbols(), cs.num_symbols()) << "case " << i;
  }
}

TEST(FuzzGenerator, MixPresets) {
  ASSERT_TRUE(generator_mix("default").has_value());
  ASSERT_TRUE(generator_mix("input").has_value());
  ASSERT_TRUE(generator_mix("output").has_value());
  ASSERT_TRUE(generator_mix("extensions").has_value());
  ASSERT_TRUE(generator_mix("infeasible").has_value());
  EXPECT_FALSE(generator_mix("bogus").has_value());

  // The input preset emits only face constraints (always feasible).
  const GeneratorOptions input = *generator_mix("input");
  for (std::uint64_t i = 0; i < 20; ++i) {
    const ConstraintSet cs = generate_case(fuzz_case_seed(3, i), input);
    EXPECT_TRUE(cs.dominances().empty());
    EXPECT_TRUE(cs.disjunctives().empty());
    EXPECT_TRUE(cs.extended_disjunctives().empty());
    EXPECT_TRUE(cs.distance2s().empty());
    EXPECT_TRUE(cs.nonfaces().empty());
    EXPECT_FALSE(cs.faces().empty());
  }

  // The infeasible preset mutates every case.
  const GeneratorOptions inf = *generator_mix("infeasible");
  EXPECT_EQ(inf.infeasible_mutation_rate, 1.0);
}

TEST(FuzzRuleNames, RoundTrip) {
  for (FuzzRule r : {FuzzRule::kOracle, FuzzRule::kFeasibility,
                     FuzzRule::kLocalUnsound, FuzzRule::kWitness,
                     FuzzRule::kThreads, FuzzRule::kStats,
                     FuzzRule::kBaselineFeasible, FuzzRule::kBaselineCodes,
                     FuzzRule::kMinimality, FuzzRule::kBoundedCodes,
                     FuzzRule::kCost, FuzzRule::kCounters, FuzzRule::kCache,
                     FuzzRule::kBinateTruncation}) {
    FuzzRule back;
    ASSERT_TRUE(fuzz_rule_from_name(fuzz_rule_name(r), &back));
    EXPECT_EQ(back, r);
  }
  EXPECT_FALSE(fuzz_rule_from_name("nonsense", nullptr));
}

TEST(FuzzDifferential, CleanOnKnownFeasibleAndInfeasible) {
  const ConstraintSet feasible = parse_constraints("face a b c\nsymbol d");
  const FuzzCaseResult rf = run_differential_case(feasible, fast_options());
  EXPECT_TRUE(rf.ok());
  EXPECT_TRUE(rf.feasible);
  EXPECT_TRUE(rf.encoded);

  // Mutual dominance forces a == b: infeasible with distinct codes.
  const ConstraintSet infeasible =
      parse_constraints("dominance a b\ndominance b a");
  const FuzzCaseResult ri = run_differential_case(infeasible, fast_options());
  EXPECT_TRUE(ri.ok());
  EXPECT_FALSE(ri.feasible);
  EXPECT_FALSE(ri.encoded);
}

TEST(FuzzDifferential, ReportIdenticalAcrossDriverThreads) {
  FuzzRunOptions o1;
  o1.differential = fast_options();
  o1.threads = 1;
  FuzzRunOptions o4 = o1;
  o4.threads = 4;
  const FuzzReport r1 = run_fuzz(17, 40, o1);
  const FuzzReport r4 = run_fuzz(17, 40, o4);
  EXPECT_EQ(r1.summary(), r4.summary());
  ASSERT_EQ(r1.divergent.size(), r4.divergent.size());
  for (std::size_t i = 0; i < r1.divergent.size(); ++i) {
    EXPECT_EQ(r1.divergent[i].index, r4.divergent[i].index);
    EXPECT_EQ(r1.divergent[i].constraints_text,
              r4.divergent[i].constraints_text);
  }
}

TEST(FuzzMinimizer, ShrinksToThePlantedCore) {
  // A mutual-dominance core buried under irrelevant constraints; the
  // "still infeasible" predicate should strip everything else.
  const ConstraintSet cs = parse_constraints(R"(
    face a b c
    face c d e
    dominance d e
    dominance x y
    dominance y x
    disjunctive a b c
  )");
  Solver probe(cs);
  ASSERT_FALSE(probe.feasibility().feasible);

  int probes = 0;
  const auto still_infeasible = [&](const ConstraintSet& c) {
    ++probes;
    return !Solver(c).feasibility().feasible;
  };
  const MinimizeResult min = minimize_divergence(cs, still_infeasible);
  EXPECT_EQ(min.constraints.dominances().size(), 2u);
  EXPECT_TRUE(min.constraints.faces().empty());
  EXPECT_TRUE(min.constraints.disjunctives().empty());
  EXPECT_EQ(min.constraints.num_symbols(), 2u);
  EXPECT_GT(min.removed_constraints, 0);
  EXPECT_GT(min.removed_symbols, 0);
  EXPECT_EQ(min.probes, probes);
  // The minimized case still diverges and still round-trips.
  EXPECT_FALSE(Solver(min.constraints).feasibility().feasible);
  const ConstraintSet again = parse_constraints(min.constraints.to_string());
  EXPECT_EQ(again.to_string(), min.constraints.to_string());
}

TEST(FuzzMinimizer, ReturnsInputWhenPredicateFailsOnEntry) {
  const ConstraintSet cs = parse_constraints("face a b c");
  const MinimizeResult min =
      minimize_divergence(cs, [](const ConstraintSet&) { return false; });
  EXPECT_EQ(min.constraints.to_string(), cs.to_string());
  EXPECT_EQ(min.removed_constraints, 0);
}

TEST(FuzzReproducer, RoundTrip) {
  FuzzReproducer r;
  r.run_seed = 123;
  r.case_index = 45;
  r.rule = "oracle";
  r.detail = "multi\nline detail";
  r.minimized = true;
  r.constraints = parse_constraints("face a b c\ndominance a b\nsymbol q");

  const std::string text = reproducer_to_text(r);
  const auto back = parse_reproducer(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->run_seed, 123u);
  EXPECT_EQ(back->case_index, 45u);
  EXPECT_EQ(back->rule, "oracle");
  EXPECT_EQ(back->detail, "multi line detail");  // flattened to one line
  EXPECT_TRUE(back->minimized);
  EXPECT_EQ(back->constraints.to_string(), r.constraints.to_string());

  // The body stays a plain constraint file.
  const ConstraintSet plain = parse_constraints(text);
  EXPECT_EQ(plain.num_symbols(), 4u);

  EXPECT_EQ(reproducer_filename(r), "seed123_case45_oracle.repro");
}

TEST(FuzzWitness, ChecksInfeasibilityEvidence) {
  const ConstraintSet cs =
      parse_constraints("dominance a b\ndominance b a\nsymbol c");
  FeasibilityResult feas = Solver(cs).feasibility();
  ASSERT_FALSE(feas.feasible);
  std::string why;
  EXPECT_TRUE(verify_infeasibility_witness(cs, feas, &why)) << why;

  // Tampered evidence must be rejected.
  FeasibilityResult bogus = feas;
  bogus.feasible = true;
  EXPECT_FALSE(verify_infeasibility_witness(cs, bogus, &why));

  FeasibilityResult empty_uncovered = feas;
  empty_uncovered.uncovered.clear();
  EXPECT_FALSE(verify_infeasibility_witness(cs, empty_uncovered, &why));
}

}  // namespace
}  // namespace encodesat
