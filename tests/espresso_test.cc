// Tests for the ESPRESSO-style minimizer: equivalence is always checked
// against the original ON-set modulo the DC-set (the correctness contract),
// plus size expectations on classical examples.
#include <gtest/gtest.h>

#include "logic/espresso.h"
#include "logic/urp.h"
#include "util/rng.h"

namespace encodesat {
namespace {

Cube bcube(const Domain& dom, const std::string& in, const std::string& out) {
  return cube_from_string(dom, in, out);
}

TEST(Espresso, EmptyCover) {
  const Domain dom = Domain::binary(2, 1);
  EXPECT_TRUE(espresso(Cover(dom), Cover(dom)).empty());
}

TEST(Espresso, MergesAdjacentMinterms) {
  const Domain dom = Domain::binary(2, 1);
  Cover on(dom);
  on.add(bcube(dom, "00", "1"));
  on.add(bcube(dom, "01", "1"));
  const Cover min = espresso(on, Cover(dom));
  ASSERT_EQ(min.size(), 1u);
  EXPECT_EQ(cube_to_string(dom, min[0]), "0- | 1");
}

TEST(Espresso, FullSpaceBecomesOneCube) {
  const Domain dom = Domain::binary(3, 1);
  Cover on(dom);
  for (int m = 0; m < 8; ++m) {
    std::string in = {char('0' + ((m >> 2) & 1)), char('0' + ((m >> 1) & 1)),
                      char('0' + (m & 1))};
    on.add(bcube(dom, in, "1"));
  }
  const Cover min = espresso(on, Cover(dom));
  ASSERT_EQ(min.size(), 1u);
  EXPECT_EQ(cube_input_literals(dom, min[0]), 0);
}

TEST(Espresso, UsesDontCares) {
  const Domain dom = Domain::binary(2, 1);
  Cover on(dom), dc(dom);
  on.add(bcube(dom, "11", "1"));
  dc.add(bcube(dom, "10", "1"));
  const Cover min = espresso(on, dc);
  ASSERT_EQ(min.size(), 1u);
  EXPECT_EQ(cube_to_string(dom, min[0]), "1- | 1");
}

TEST(Espresso, XorIsIrreducible) {
  const Domain dom = Domain::binary(2, 1);
  Cover on(dom);
  on.add(bcube(dom, "01", "1"));
  on.add(bcube(dom, "10", "1"));
  const Cover min = espresso(on, Cover(dom));
  EXPECT_EQ(min.size(), 2u);
  EXPECT_TRUE(covers_equivalent(min, on, Cover(dom)));
}

TEST(Espresso, MultiOutputSharing) {
  const Domain dom = Domain::binary(2, 2);
  Cover on(dom);
  on.add(bcube(dom, "11", "10"));
  on.add(bcube(dom, "11", "01"));
  const Cover min = espresso(on, Cover(dom));
  // The two outputs share the single cube 11|11.
  ASSERT_EQ(min.size(), 1u);
  EXPECT_EQ(cube_to_string(dom, min[0]), "11 | 11");
}

TEST(Espresso, ClassicTrim) {
  // f = a'b' + a'b + ab = a' + b (2 cubes), starting from minterms.
  const Domain dom = Domain::binary(2, 1);
  Cover on(dom);
  on.add(bcube(dom, "00", "1"));
  on.add(bcube(dom, "01", "1"));
  on.add(bcube(dom, "11", "1"));
  const Cover min = espresso(on, Cover(dom));
  EXPECT_EQ(min.size(), 2u);
  EXPECT_TRUE(covers_equivalent(min, on, Cover(dom)));
}

TEST(Espresso, ResultIsIrredundantAndPrime) {
  const Domain dom = Domain::binary(4, 1);
  Rng rng(42);
  Cover on(dom);
  for (int i = 0; i < 10; ++i) {
    std::string in;
    for (int v = 0; v < 4; ++v)
      in += "01-"[rng.next_below(3)];
    on.add(bcube(dom, in, "1"));
  }
  Cover dc(dom);
  const Cover min = espresso(on, dc);
  EXPECT_TRUE(covers_equivalent(min, on, dc));
  // Irredundant: removing any cube changes the function.
  for (std::size_t i = 0; i < min.size(); ++i) {
    Cover rest(dom);
    for (std::size_t j = 0; j < min.size(); ++j)
      if (j != i) rest.add(min[j]);
    EXPECT_FALSE(cover_contains_cube(rest, min[i]))
        << "cube " << i << " is redundant";
  }
  // Prime: no single position of any cube can be raised.
  const Cover off = complement(on);
  for (const Cube& c : min) {
    for (std::size_t b = 0; b < c.bits.size(); ++b) {
      if (c.bits.test(b)) continue;
      Cube up = c;
      up.bits.set(b);
      bool hits_off = false;
      for (const Cube& r : off)
        if (cubes_intersect(dom, up, r)) {
          hits_off = true;
          break;
        }
      EXPECT_TRUE(hits_off) << "cube is not prime at position " << b;
    }
  }
}

TEST(Espresso, MultiValuedVariableMinimization) {
  // One MV(4) variable; ON for values {0,1} and {2,3} separately given as
  // single-value cubes should merge to the full literal.
  const Domain dom({4}, 1);
  Cover on(dom);
  for (int v = 0; v < 4; ++v) {
    Cube c(dom);
    c.bits.set(static_cast<std::size_t>(v));
    c.bits.set(static_cast<std::size_t>(dom.out_pos(0)));
    on.add(c);
  }
  const Cover min = espresso(on, Cover(dom));
  ASSERT_EQ(min.size(), 1u);
}

class EspressoRandomEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(EspressoRandomEquivalence, PreservesFunction) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const int ni = 3 + static_cast<int>(rng.next_below(3));
  const int no = 1 + static_cast<int>(rng.next_below(3));
  const Domain dom = Domain::binary(ni, no);
  Cover on(dom), dc(dom);
  const int cubes = 3 + static_cast<int>(rng.next_below(12));
  for (int i = 0; i < cubes; ++i) {
    std::string in, out;
    for (int v = 0; v < ni; ++v) in += "01--"[rng.next_below(4)];
    for (int o = 0; o < no; ++o) out += "01"[rng.next_below(2)];
    if (out.find('1') == std::string::npos) out[0] = '1';
    if (rng.next_bool(0.2))
      dc.add(cube_from_string(dom, in, out));
    else
      on.add(cube_from_string(dom, in, out));
  }
  const Cover min = espresso(on, dc);
  EXPECT_TRUE(covers_equivalent(min, on, dc));
  EXPECT_LE(min.size(), on.size() == 0 ? 0 : on.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EspressoRandomEquivalence,
                         ::testing::Range(0, 24));

}  // namespace
}  // namespace encodesat
