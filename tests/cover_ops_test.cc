// Tests for the cover-level set algebra.
#include <gtest/gtest.h>

#include "logic/cover_ops.h"
#include "logic/urp.h"
#include "util/rng.h"

namespace encodesat {
namespace {

Cube bcube(const Domain& dom, const std::string& in, const std::string& out) {
  return cube_from_string(dom, in, out);
}

Cover random_cover(Rng& rng, const Domain& dom, int cubes) {
  Cover f(dom);
  for (int i = 0; i < cubes; ++i) {
    std::string in, out;
    for (int v = 0; v < dom.num_inputs(); ++v) in += "01--"[rng.next_below(4)];
    for (int o = 0; o < dom.num_outputs(); ++o) out += "01"[rng.next_below(2)];
    if (out.find('1') == std::string::npos) out[0] = '1';
    f.add(cube_from_string(dom, in, out));
  }
  return f;
}

TEST(CoverOps, IntersectBasics) {
  const Domain dom = Domain::binary(3, 1);
  Cover a(dom), b(dom);
  a.add(bcube(dom, "1--", "1"));
  b.add(bcube(dom, "-1-", "1"));
  const Cover meet = cover_intersect(a, b);
  ASSERT_EQ(meet.size(), 1u);
  EXPECT_EQ(cube_to_string(dom, meet[0]), "11- | 1");
  EXPECT_TRUE(cover_intersect(a, Cover(dom)).empty());
}

TEST(CoverOps, SharpRemovesExactlyB) {
  const Domain dom = Domain::binary(2, 1);
  Cover a(dom), b(dom);
  a.add(bcube(dom, "1-", "1"));
  b.add(bcube(dom, "11", "1"));
  const Cover diff = cover_sharp(a, b);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(cube_to_string(dom, diff[0]), "10 | 1");
  // a = diff ∪ b.
  EXPECT_TRUE(covers_equal(cover_union(diff, b), a));
}

TEST(CoverOps, UnionAbsorbs) {
  const Domain dom = Domain::binary(2, 1);
  Cover a(dom), b(dom);
  a.add(bcube(dom, "1-", "1"));
  b.add(bcube(dom, "11", "1"));
  EXPECT_EQ(cover_union(a, b).size(), 1u);
}

TEST(CoverOps, Supercube) {
  const Domain dom = Domain::binary(3, 1);
  Cover f(dom);
  f.add(bcube(dom, "110", "1"));
  f.add(bcube(dom, "100", "1"));
  EXPECT_EQ(cube_to_string(dom, cover_supercube(f)), "1-0 | 1");
  EXPECT_TRUE(cube_is_empty(dom, cover_supercube(Cover(dom))));
}

TEST(CoverOps, CofactorVar) {
  const Domain dom = Domain::binary(2, 1);
  Cover f(dom);
  f.add(bcube(dom, "10", "1"));
  f.add(bcube(dom, "0-", "1"));
  // Cofactor on x0 = 1 keeps {10} (as -0) and drops {0-}.
  const Cover cf = cover_cofactor_var(f, 0, 1);
  ASSERT_EQ(cf.size(), 1u);
  EXPECT_EQ(cube_to_string(dom, cf[0]), "-0 | 1");
}

TEST(CoverOps, SubsetAndEquality) {
  const Domain dom = Domain::binary(2, 1);
  Cover a(dom), b(dom);
  a.add(bcube(dom, "11", "1"));
  b.add(bcube(dom, "1-", "1"));
  EXPECT_TRUE(cover_subset(a, b));
  EXPECT_FALSE(cover_subset(b, a));
  EXPECT_FALSE(covers_equal(a, b));
  EXPECT_TRUE(covers_equal(b, b));
}

class CoverOpsAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(CoverOpsAlgebra, DeMorganAndPartition) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 37 + 5);
  const Domain dom = Domain::binary(3 + static_cast<int>(rng.next_below(2)),
                                    1 + static_cast<int>(rng.next_below(2)));
  const Cover a = random_cover(rng, dom, 4);
  const Cover b = random_cover(rng, dom, 4);

  // a = (a ∩ b) ∪ (a # b), and the two parts are disjoint.
  const Cover meet = cover_intersect(a, b);
  const Cover diff = cover_sharp(a, b);
  EXPECT_TRUE(covers_equal(cover_union(meet, diff), a));
  for (const Cube& x : diff)
    EXPECT_FALSE(cover_contains_cube(b, x) &&
                 !cube_is_empty(dom, x));

  // complement(a ∪ b) == complement(a) ∩ complement(b).
  const Cover lhs = complement(cover_union(a, b));
  const Cover rhs = cover_intersect(complement(a), complement(b));
  EXPECT_TRUE(covers_equal(lhs, rhs));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverOpsAlgebra, ::testing::Range(0, 15));

}  // namespace
}  // namespace encodesat
