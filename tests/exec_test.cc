// Budget / StageStats / thread-pool unit tests (util/exec.h,
// util/thread_pool.h): deterministic work accounting, deadline and
// cancellation trips, the first-trip-wins contract, JSON emission, and the
// parallel_for coverage/exception/ordering guarantees the pipeline's
// deterministic fan-out relies on.
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/exec.h"
#include "util/thread_pool.h"

namespace encodesat {
namespace {

TEST(Budget, UnlimitedByDefault) {
  Budget b;
  EXPECT_TRUE(b.charge(1'000'000));
  EXPECT_TRUE(b.poll());
  EXPECT_FALSE(b.exhausted());
  EXPECT_EQ(b.reason(), Truncation::kNone);
  EXPECT_EQ(b.work_used(), 1'000'000u);
}

TEST(Budget, WorkLimitTripsAtTheSameCharge) {
  // The trip point is a function of the charge sequence only.
  for (int run = 0; run < 3; ++run) {
    Budget b;
    b.set_work_limit(100);
    int charges = 0;
    while (b.charge(7)) ++charges;
    EXPECT_EQ(charges, 14);  // 15 * 7 = 105 > 100 trips on the 15th
    EXPECT_EQ(b.reason(), Truncation::kWorkBudget);
    EXPECT_FALSE(b.poll());
  }
}

TEST(Budget, ExpiredDeadlineTripsOnPoll) {
  Budget b;
  b.set_deadline_after(-1.0);
  EXPECT_FALSE(b.poll());
  EXPECT_EQ(b.reason(), Truncation::kDeadline);
}

TEST(Budget, DeadlineNotReachedHolds) {
  Budget b;
  b.set_deadline_after(3600.0);
  EXPECT_TRUE(b.poll());
  EXPECT_FALSE(b.exhausted());
}

TEST(Budget, CancelTokenTripsOnPoll) {
  CancelToken token;
  Budget b;
  b.set_cancel_token(&token);
  EXPECT_TRUE(b.poll());
  token.cancel();
  EXPECT_FALSE(b.poll());
  EXPECT_EQ(b.reason(), Truncation::kCancelled);
}

TEST(Budget, FirstTripWins) {
  Budget b;
  b.trip(Truncation::kTermLimit);
  b.trip(Truncation::kDeadline);
  EXPECT_EQ(b.reason(), Truncation::kTermLimit);
}

TEST(Budget, ConcurrentChargesAccumulateExactly) {
  Budget b;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t)
    workers.emplace_back([&b] {
      for (int i = 0; i < 10'000; ++i) b.charge(3);
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(b.work_used(), 4u * 10'000u * 3u);
}

TEST(TruncationName, StableNames) {
  EXPECT_STREQ(truncation_name(Truncation::kNone), "none");
  EXPECT_STREQ(truncation_name(Truncation::kDeadline), "deadline");
  EXPECT_STREQ(truncation_name(Truncation::kWorkBudget), "work_budget");
  EXPECT_STREQ(truncation_name(Truncation::kTermLimit), "term_limit");
  EXPECT_STREQ(truncation_name(Truncation::kNodeLimit), "node_limit");
  EXPECT_STREQ(truncation_name(Truncation::kCancelled), "cancelled");
}

TEST(StageStats, TreeAndFind) {
  StageStats root("solve");
  StageStats* a = root.add_child("prime_generation");
  a->items = 7;
  root.add_child("unate_cover");
  ASSERT_NE(root.find("prime_generation"), nullptr);
  EXPECT_EQ(root.find("prime_generation")->items, 7u);
  ASSERT_NE(root.find("unate_cover"), nullptr);
  EXPECT_EQ(root.find("missing"), nullptr);
}

TEST(StageStats, ChildPointersStableAcrossGrowth) {
  // add_child returns borrowed pointers that stage code holds across later
  // sibling insertions (deque-backed children). A vector would invalidate
  // them on reallocation — this pins the container choice.
  StageStats root("solve");
  std::vector<StageStats*> children;
  for (int i = 0; i < 1000; ++i) {
    StageStats* c = root.add_child("stage_" + std::to_string(i));
    c->items = static_cast<std::uint64_t>(i);
    children.push_back(c);
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(children[static_cast<std::size_t>(i)]->name,
              "stage_" + std::to_string(i));
    EXPECT_EQ(children[static_cast<std::size_t>(i)]->items,
              static_cast<std::uint64_t>(i));
  }
}

TEST(StageStats, JsonShape) {
  StageStats root("solve");
  root.work = 42;
  StageStats* child = root.add_child("raise");
  child->truncation = Truncation::kDeadline;
  const std::string json = root.to_json();
  EXPECT_NE(json.find("\"name\":\"solve\""), std::string::npos);
  EXPECT_NE(json.find("\"work\":42"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"raise\""), std::string::npos);
  EXPECT_NE(json.find("\"truncation\":\"deadline\""), std::string::npos);
}

TEST(StageStats, JsonEscapesStrings) {
  StageStats s("we\"ird\\name");
  const std::string json = s.to_json();
  EXPECT_NE(json.find("we\\\"ird\\\\name"), std::string::npos);
}

TEST(StageScope, RecordsElapsedAndNests) {
  StageStats root("solve");
  Budget budget;
  const ExecContext ctx{&budget, &root, 1};
  {
    StageScope outer(ctx, "outer");
    StageScope inner(outer.ctx(), "inner");
    inner.add_items(3);
  }
  const StageStats* outer = root.find("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_GE(outer->elapsed_seconds, 0.0);
  const StageStats* inner = root.find("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->items, 3u);
  ASSERT_EQ(outer->children.size(), 1u);
  EXPECT_EQ(outer->children[0].name, "inner");
}

TEST(StageScope, NullContextIsANoop) {
  StageScope scope(ExecContext{}, "anything");
  EXPECT_EQ(scope.stats(), nullptr);
  scope.add_work(5);
  scope.add_items(5);
  scope.set_truncation(Truncation::kDeadline);
  EXPECT_TRUE(scope.ctx().poll());
}

TEST(ExecContext, DefaultIsUnlimited) {
  const ExecContext ctx;
  EXPECT_FALSE(ctx.exhausted());
  EXPECT_TRUE(ctx.poll());
  EXPECT_TRUE(ctx.charge(1'000'000));
  EXPECT_EQ(ctx.reason(), Truncation::kNone);
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_GE(resolve_threads(0), 1);   // <= 0 = all hardware threads
  EXPECT_GE(resolve_threads(-5), 1);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, 4, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, SequentialFallbackRunsInOrder) {
  std::vector<std::size_t> order;
  parallel_for(100, 1, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, SlotFillsMatchSequential) {
  // The pipeline's determinism pattern: each task writes only slot i, so
  // the merged result is independent of the thread count.
  const std::size_t n = 5'000;
  std::vector<std::uint64_t> seq(n), par(n);
  auto value = [](std::size_t i) {
    return std::uint64_t{i} * 2654435761u + 17;
  };
  parallel_for(n, 1, [&](std::size_t i) { seq[i] = value(i); });
  parallel_for(n, 8, [&](std::size_t i) { par[i] = value(i); });
  EXPECT_EQ(seq, par);
}

TEST(ThreadPool, PropagatesFirstException) {
  EXPECT_THROW(parallel_for(100, 4,
                            [&](std::size_t i) {
                              if (i == 42)
                                throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ThreadPool, ZeroItemsIsANoop) {
  bool ran = false;
  parallel_for(0, 4, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace encodesat
