// Tests for the exact (Quine-McCluskey-style) minimizer, including its use
// as an optimality oracle for the heuristic ESPRESSO loop.
#include <gtest/gtest.h>

#include "logic/espresso.h"
#include "logic/exact_minimize.h"
#include "logic/urp.h"
#include "util/rng.h"

namespace encodesat {
namespace {

Cube bcube(const Domain& dom, const std::string& in, const std::string& out) {
  return cube_from_string(dom, in, out);
}

TEST(AllPrimes, SingleOutputClassic) {
  // f = a'b' + ab' + ab = b' + a: primes are b' and a.
  const Domain dom = Domain::binary(2, 1);
  Cover on(dom);
  on.add(bcube(dom, "00", "1"));
  on.add(bcube(dom, "10", "1"));
  on.add(bcube(dom, "11", "1"));
  bool truncated = true;
  const Cover primes = generate_all_primes(on, Cover(dom), 100, &truncated);
  EXPECT_FALSE(truncated);
  ASSERT_EQ(primes.size(), 2u);
}

TEST(AllPrimes, XorHasTwoPrimes) {
  const Domain dom = Domain::binary(2, 1);
  Cover on(dom);
  on.add(bcube(dom, "01", "1"));
  on.add(bcube(dom, "10", "1"));
  bool truncated = true;
  const Cover primes = generate_all_primes(on, Cover(dom), 100, &truncated);
  EXPECT_EQ(primes.size(), 2u);
}

TEST(AllPrimes, MultiOutputSharedPrime) {
  // o1 = a, o2 = a: the multi-output prime a|11 must appear.
  const Domain dom = Domain::binary(1, 2);
  Cover on(dom);
  on.add(bcube(dom, "1", "10"));
  on.add(bcube(dom, "1", "01"));
  bool truncated = true;
  const Cover primes = generate_all_primes(on, Cover(dom), 100, &truncated);
  bool found_shared = false;
  for (const Cube& c : primes)
    if (cube_to_string(dom, c) == "1 | 11") found_shared = true;
  EXPECT_TRUE(found_shared);
}

TEST(ExactMinimize, KnownOptimalSizes) {
  const Domain dom = Domain::binary(3, 1);
  Cover on(dom);
  // f = majority(a, b, c): 3 primes needed (ab + ac + bc).
  for (const char* m : {"110", "101", "011", "111"})
    on.add(bcube(dom, m, "1"));
  const auto res = exact_minimize(on, Cover(dom));
  ASSERT_EQ(res.status, ExactMinimizeResult::Status::kMinimized);
  ASSERT_TRUE(res.optimal);
  EXPECT_EQ(res.cover.size(), 3u);
  EXPECT_TRUE(covers_equivalent(res.cover, on, Cover(dom)));
}

TEST(ExactMinimize, UsesDontCares) {
  const Domain dom = Domain::binary(2, 1);
  Cover on(dom), dc(dom);
  on.add(bcube(dom, "11", "1"));
  dc.add(bcube(dom, "10", "1"));
  const auto res = exact_minimize(on, dc);
  ASSERT_EQ(res.status, ExactMinimizeResult::Status::kMinimized);
  EXPECT_EQ(res.cover.size(), 1u);
  EXPECT_EQ(cube_input_literals(dom, res.cover[0]), 1);
}

TEST(ExactMinimize, EmptyOnSet) {
  const Domain dom = Domain::binary(2, 1);
  const auto res = exact_minimize(Cover(dom), Cover(dom));
  EXPECT_EQ(res.status, ExactMinimizeResult::Status::kMinimized);
  EXPECT_TRUE(res.cover.empty());
}

TEST(ExactMinimize, RefusesHugeDomains) {
  const Domain dom = Domain::binary(40, 1);
  Cover on(dom);
  on.add(full_cube(dom));
  const auto res = exact_minimize(on, Cover(dom));
  EXPECT_EQ(res.status, ExactMinimizeResult::Status::kTooLarge);
}

class EspressoVsExact : public ::testing::TestWithParam<int> {};

TEST_P(EspressoVsExact, HeuristicIsNeverBetterThanExactAndStaysClose) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1009 + 7);
  const int ni = 3 + static_cast<int>(rng.next_below(2));
  const int no = 1 + static_cast<int>(rng.next_below(2));
  const Domain dom = Domain::binary(ni, no);
  Cover on(dom);
  const int cubes = 3 + static_cast<int>(rng.next_below(8));
  for (int i = 0; i < cubes; ++i) {
    std::string in, out;
    for (int v = 0; v < ni; ++v) in += "01--"[rng.next_below(4)];
    for (int o = 0; o < no; ++o) out += "01"[rng.next_below(2)];
    if (out.find('1') == std::string::npos) out[0] = '1';
    on.add(cube_from_string(dom, in, out));
  }
  const Cover dc(dom);
  const auto exact = exact_minimize(on, dc);
  ASSERT_EQ(exact.status, ExactMinimizeResult::Status::kMinimized);
  ASSERT_TRUE(exact.optimal);
  const Cover heur = espresso(on, dc);
  EXPECT_TRUE(covers_equivalent(exact.cover, on, dc));
  EXPECT_TRUE(covers_equivalent(heur, on, dc));
  EXPECT_GE(heur.size(), exact.cover.size());
  // The heuristic should be close to optimal on these small functions.
  EXPECT_LE(heur.size(), exact.cover.size() + 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EspressoVsExact, ::testing::Range(0, 25));

TEST(ExactMinimize, MultiValuedInputVariable) {
  // One MV(3) input, one output; ON for values {0, 2}: two primes (no
  // merging possible into one cube without value 1... actually the literal
  // {0,2} IS a single cube in positional notation).
  const Domain dom({3}, 1);
  Cover on(dom);
  for (int v : {0, 2}) {
    Cube c(dom);
    c.bits.set(static_cast<std::size_t>(v));
    c.bits.set(static_cast<std::size_t>(dom.out_pos(0)));
    on.add(c);
  }
  const auto res = exact_minimize(on, Cover(dom));
  ASSERT_EQ(res.status, ExactMinimizeResult::Status::kMinimized);
  EXPECT_EQ(res.cover.size(), 1u);
}

}  // namespace
}  // namespace encodesat
