// Cross-cutting randomized property tests tying the subsystems together.
#include <gtest/gtest.h>

#include "core/bounded.h"
#include "core/encoder.h"
#include "core/extensions.h"
#include "core/generate.h"
#include "core/output_rules.h"
#include "core/solver.h"
#include "core/verify.h"
#include "logic/espresso.h"
#include "logic/urp.h"
#include "util/rng.h"

namespace encodesat {
namespace {

ConstraintSet random_mixed(Rng& rng, std::uint32_t n) {
  ConstraintSet cs;
  for (std::uint32_t i = 0; i < n; ++i)
    cs.symbols().intern("s" + std::to_string(i));
  const int nfaces = 1 + static_cast<int>(rng.next_below(4));
  for (int f = 0; f < nfaces; ++f) {
    std::vector<std::uint32_t> members, dcs;
    for (std::uint32_t s = 0; s < n; ++s) {
      const double r = rng.next_double();
      if (r < 0.3) members.push_back(s);
      else if (r < 0.38) dcs.push_back(s);
    }
    if (members.size() >= 2 && members.size() + dcs.size() < n)
      cs.add_face_ids(std::move(members), std::move(dcs));
  }
  for (int i = 0; i < 3; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(n));
    const auto b = static_cast<std::uint32_t>(rng.next_below(n));
    if (a != b && rng.next_bool(0.6)) cs.add_dominance_ids(a, b);
  }
  if (n >= 4 && rng.next_bool(0.5)) {
    const auto p = static_cast<std::uint32_t>(rng.next_below(n));
    const auto c1 = static_cast<std::uint32_t>(rng.next_below(n));
    const auto c2 = static_cast<std::uint32_t>(rng.next_below(n));
    if (p != c1 && p != c2 && c1 != c2) cs.add_disjunctive_ids(p, {c1, c2});
  }
  return cs;
}

class ExactAlwaysVerifies : public ::testing::TestWithParam<int> {};

TEST_P(ExactAlwaysVerifies, FeasibleMeansVerifiedInfeasibleMeansUncovered) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6007 + 101);
  const std::uint32_t n = 4 + static_cast<std::uint32_t>(rng.next_below(6));
  const ConstraintSet cs = random_mixed(rng, n);

  const FeasibilityResult feas = Solver(cs).feasibility();
  const SolveResult res = Solver(cs).encode();
  ASSERT_NE(res.status, SolveResult::Status::kTruncated);

  // Feasibility check and exact encoder must agree (Theorem 6.1).
  EXPECT_EQ(feas.feasible,
            res.status == SolveResult::Status::kEncoded)
      << cs.to_string();
  if (res.status == SolveResult::Status::kEncoded) {
    const auto v = verify_encoding(res.encoding, cs);
    EXPECT_TRUE(v.empty()) << cs.to_string() << "\nfirst: "
                           << (v.empty() ? "" : v[0].detail);
  } else {
    EXPECT_FALSE(res.uncovered.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactAlwaysVerifies, ::testing::Range(0, 40));

class RaisingProperties : public ::testing::TestWithParam<int> {};

TEST_P(RaisingProperties, RaisingOnlyAddsAndReachesFixpoint) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const std::uint32_t n = 5 + static_cast<std::uint32_t>(rng.next_below(5));
  const ConstraintSet cs = random_mixed(rng, n);
  for (const auto& i : generate_initial_dichotomies(cs)) {
    Dichotomy raised = i.dichotomy;
    if (!raise_dichotomy(raised, cs)) continue;
    // Monotone: blocks only grow.
    EXPECT_TRUE(i.dichotomy.left.is_subset_of(raised.left));
    EXPECT_TRUE(i.dichotomy.right.is_subset_of(raised.right));
    // Covers the original.
    EXPECT_TRUE(raised.covers(i.dichotomy));
    // Fixpoint: raising again changes nothing.
    Dichotomy again = raised;
    ASSERT_TRUE(raise_dichotomy(again, cs));
    EXPECT_EQ(again, raised);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaisingProperties, ::testing::Range(0, 20));

class ExtensionsVerify : public ::testing::TestWithParam<int> {};

TEST_P(ExtensionsVerify, EncodedResultsAlwaysVerify) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 407 + 3);
  const std::uint32_t n = 4 + static_cast<std::uint32_t>(rng.next_below(4));
  ConstraintSet cs = random_mixed(rng, n);
  // Sprinkle extension constraints.
  const auto a = static_cast<std::uint32_t>(rng.next_below(n));
  const auto b = static_cast<std::uint32_t>(rng.next_below(n));
  if (a != b)
    cs.distance2s().push_back(Distance2Constraint{a, b});
  if (rng.next_bool(0.4)) {
    std::vector<std::uint32_t> members;
    for (std::uint32_t s = 0; s < n; ++s)
      if (rng.next_bool(0.4)) members.push_back(s);
    if (members.size() >= 2 && members.size() < n)
      cs.nonfaces().push_back(NonFaceConstraint{std::move(members)});
  }
  SolveOptions so;
  so.pipeline = SolveOptions::Pipeline::kExtensions;
  const SolveResult res = Solver(cs).encode(so);
  if (res.status != SolveResult::Status::kEncoded) return;
  EXPECT_TRUE(verify_encoding(res.encoding, cs).empty()) << cs.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtensionsVerify, ::testing::Range(0, 30));

class EspressoProperties : public ::testing::TestWithParam<int> {};

TEST_P(EspressoProperties, IdempotentAndComplementInvolutive) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 19 + 2);
  const int nv = 3 + static_cast<int>(rng.next_below(3));
  const Domain dom = Domain::binary(nv, 1 + static_cast<int>(rng.next_below(2)));
  Cover on(dom);
  for (int i = 0; i < 8; ++i) {
    Cube c(dom);
    for (int v = 0; v < nv; ++v) {
      const int pick = static_cast<int>(rng.next_below(3));
      if (pick != 0) c.bits.set(static_cast<std::size_t>(dom.pos(v, 1)));
      if (pick != 1) c.bits.set(static_cast<std::size_t>(dom.pos(v, 0)));
    }
    c.bits.set(static_cast<std::size_t>(
        dom.out_pos(static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(dom.num_outputs()))))));
    on.add(c);
  }
  const Cover dc(dom);
  const Cover once = espresso(on, dc);
  const Cover twice = espresso(once, dc);
  EXPECT_LE(twice.size(), once.size());
  EXPECT_TRUE(covers_equivalent(once, twice, dc));

  const Cover comp = complement(on);
  const Cover comp2 = complement(comp);
  EXPECT_TRUE(covers_equivalent(comp2, on, dc));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EspressoProperties, ::testing::Range(0, 20));

TEST(BoundedVsExact, HeuristicAtExactLengthIsValidEncoding) {
  Rng rng(424242);
  for (int trial = 0; trial < 8; ++trial) {
    ConstraintSet cs;
    const std::uint32_t n = 5 + static_cast<std::uint32_t>(rng.next_below(4));
    for (std::uint32_t i = 0; i < n; ++i)
      cs.symbols().intern("s" + std::to_string(i));
    for (int f = 0; f < 3; ++f) {
      std::vector<std::uint32_t> members;
      for (std::uint32_t s = 0; s < n; ++s)
        if (rng.next_bool(0.35)) members.push_back(s);
      if (members.size() >= 2 && members.size() < n)
        cs.add_face_ids(std::move(members));
    }
    const SolveResult exact = Solver(cs).encode();
    ASSERT_EQ(exact.status, SolveResult::Status::kEncoded);
    // At the exact minimum length the heuristic must produce unique codes;
    // at the exact's length it cannot beat zero violations.
    BoundedEncodeOptions opts;
    opts.cost = CostKind::kViolatedFaces;
    const auto heur = bounded_encode(cs, exact.encoding.bits, opts);
    EXPECT_GE(heur.cost.violated_faces, 0);
    const auto v = verify_encoding(heur.encoding, cs);
    for (const auto& viol : v)
      EXPECT_NE(viol.kind, Violation::Kind::kDuplicateCode);
  }
}

}  // namespace
}  // namespace encodesat
