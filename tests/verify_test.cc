// Tests for the independent encoding verifier.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/verify.h"

namespace encodesat {
namespace {

Encoding codes(int bits, std::vector<std::uint64_t> c) {
  Encoding e;
  e.bits = bits;
  e.codes = std::move(c);
  return e;
}

TEST(Verify, DetectsDuplicateCodes) {
  ConstraintSet cs;
  cs.symbols().intern("a");
  cs.symbols().intern("b");
  const auto v = verify_encoding(codes(1, {1, 1}), cs);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, Violation::Kind::kDuplicateCode);
}

TEST(Verify, FaceSatisfactionGeometry) {
  // Paper Section 1: (a,b,c) with a=11, b=01, c=00 satisfied; the face is
  // the whole 2-cube, so a fourth symbol anywhere violates it.
  ConstraintSet cs = parse_constraints("face a b c");
  EXPECT_TRUE(verify_encoding(codes(2, {0b11, 0b01, 0b00}), cs).empty());
  ConstraintSet cs4 = parse_constraints("face a b c\nsymbol d");
  const auto v = verify_encoding(codes(2, {0b11, 0b01, 0b00, 0b10}), cs4);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, Violation::Kind::kFace);
}

TEST(Verify, FaceDontCareMayShareFace) {
  ConstraintSet cs = parse_constraints("face a b [d] c\nsymbol e");
  // Face of {a,b,c} = x2=0 half; d inside is fine, e inside is not.
  EXPECT_TRUE(
      verify_encoding(codes(3, {0b000, 0b001, 0b010, 0b011, 0b100}), cs)
          .empty());
  EXPECT_FALSE(
      verify_encoding(codes(3, {0b000, 0b001, 0b010, 0b100, 0b011}), cs)
          .empty());
}

TEST(Verify, DominanceBitwise) {
  ConstraintSet cs = parse_constraints("dominance a b");
  EXPECT_TRUE(verify_encoding(codes(2, {0b11, 0b01}), cs).empty());
  EXPECT_TRUE(verify_encoding(codes(2, {0b10, 0b00}), cs).empty());
  const auto v = verify_encoding(codes(2, {0b01, 0b10}), cs);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, Violation::Kind::kDominance);
}

TEST(Verify, DisjunctiveBitwise) {
  ConstraintSet cs = parse_constraints("disjunctive a b c");
  EXPECT_TRUE(verify_encoding(codes(2, {0b11, 0b01, 0b10}), cs).empty());
  const auto v = verify_encoding(codes(2, {0b11, 0b01, 0b00}), cs);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, Violation::Kind::kDisjunctive);
}

TEST(Verify, ExtendedDisjunctiveSemantics) {
  // (b AND c) OR (d AND e) >= a, per bit.
  ConstraintSet cs = parse_constraints("extdisjunctive a : b c | d e");
  // a=10: bit1 needs b&c or d&e at 1: b=11, c=11 gives b&c=11 >= a.
  // (codes intentionally collide, so skip the uniqueness check here.)
  EXPECT_TRUE(verify_encoding(codes(2, {0b10, 0b11, 0b11, 0b00, 0b01}), cs,
                              /*require_unique_codes=*/false)
                  .empty());
  // a=10 with nothing providing bit 1.
  const auto v =
      verify_encoding(codes(3, {0b100, 0b001, 0b010, 0b011, 0b000}), cs);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, Violation::Kind::kExtendedDisjunctive);
}

TEST(Verify, Distance2) {
  ConstraintSet cs = parse_constraints("distance2 a b");
  EXPECT_TRUE(verify_encoding(codes(2, {0b00, 0b11}), cs).empty());
  const auto v = verify_encoding(codes(2, {0b00, 0b01}), cs);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, Violation::Kind::kDistance2);
}

TEST(Verify, NonFaceNeedsIntruder) {
  // Section 8.3 witness: a=011 b=001 c=101 d=100 e=111 f=110 satisfies the
  // faces (a,b),(b,c,d),(a,e),(d,f) and the non-face (a,b,e) — whose face
  // -11... (MSB notation) contains c.
  ConstraintSet cs = parse_constraints(R"(
    face a b
    face b c d
    face a e
    face d f
    nonface a b e
  )");
  auto msb = [](std::uint64_t v) {
    // Convert the paper's MSB-first 3-bit literals to our LSB-first bits.
    std::uint64_t r = 0;
    for (int b = 0; b < 3; ++b)
      if ((v >> (2 - b)) & 1u) r |= std::uint64_t{1} << b;
    return r;
  };
  const auto v = verify_encoding(
      codes(3, {msb(0b011), msb(0b001), msb(0b101), msb(0b100), msb(0b111),
                msb(0b110)}),
      cs);
  EXPECT_TRUE(v.empty());
  // Without the intruder: spread the others away from the (a,b,e) face.
  ConstraintSet nf = parse_constraints("nonface a b\nsymbol c");
  const auto v2 = verify_encoding(codes(2, {0b00, 0b01, 0b11}), nf);
  ASSERT_EQ(v2.size(), 1u);
  EXPECT_EQ(v2[0].kind, Violation::Kind::kNonFace);
}

TEST(Verify, DontCareHandlingAgreesBetweenPaths) {
  // Section 8.1: the don't-care symbol d may land inside the face of
  // {a,b,c} without violating it. The predicate path (`face_satisfied`)
  // and the violation path (`verify_encoding`) must give the same answer
  // on every placement of d and of the genuine outsider e.
  // Intern order is members before don't-cares: a, b, c, d, e.
  const ConstraintSet cs = parse_constraints("face a b [d] c\nsymbol e");
  const auto& f = cs.faces()[0];
  for (std::uint64_t d = 0; d < 8; ++d)
    for (std::uint64_t e = 0; e < 8; ++e) {
      const Encoding enc = codes(3, {0b000, 0b001, 0b010, d, e});
      const auto violations =
          verify_encoding(enc, cs, /*require_unique_codes=*/false);
      const bool face_ok =
          std::none_of(violations.begin(), violations.end(),
                       [](const Violation& v) {
                         return v.kind == Violation::Kind::kFace;
                       });
      EXPECT_EQ(face_satisfied(enc, cs, f), face_ok)
          << "d=" << d << " e=" << e;
      // The face of {a,b,c} is the x2=0 half: only e decides.
      EXPECT_EQ(face_ok, e >= 4) << "d=" << d << " e=" << e;
    }
}

TEST(Verify, ExtendedDisjunctiveThroughOracle) {
  // Every conjunction falls short on some bit of the parent => violation
  // indexed to the constraint; the second extended constraint is satisfied
  // and must not be reported.
  const ConstraintSet cs = parse_constraints(R"(
    extdisjunctive a : b c | d e
    extdisjunctive b : d e
  )");
  // a=11; (b&c)=00, (d&e)=10, OR=10 — bit 0 of a is uncovered. The second
  // constraint holds: d&e=10 >= b=00 bitwise.
  const auto v =
      verify_encoding(codes(2, {0b11, 0b00, 0b01, 0b10, 0b11}), cs,
                      /*require_unique_codes=*/false);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, Violation::Kind::kExtendedDisjunctive);
  EXPECT_EQ(v[0].index, 0u);
}

TEST(Verify, ViolationToStringAndKindNames) {
  const ConstraintSet cs = parse_constraints("dominance a b");
  const auto v = verify_encoding(codes(2, {0b01, 0b10}), cs);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_STREQ(violation_kind_name(v[0].kind), "dominance");
  EXPECT_NE(v[0].to_string().find("dominance[0]"), std::string::npos);
  EXPECT_STREQ(violation_kind_name(Violation::Kind::kDuplicateCode),
               "duplicate_code");
  EXPECT_STREQ(violation_kind_name(Violation::Kind::kExtendedDisjunctive),
               "extended_disjunctive");
}

TEST(Verify, CountSatisfiedFaces) {
  // Symbols intern in order of first mention: a, b, d, c.
  ConstraintSet cs = parse_constraints("face a b\nface a d\nsymbol c");
  // a=00 b=01 d=11 c=10: face(a,b) spans x1=0 (c,d outside: satisfied);
  // face(a,d) spans everything (violated).
  const Encoding e = codes(2, {0b00, 0b01, 0b11, 0b10});
  EXPECT_EQ(count_satisfied_faces(e, cs), 1);
}

}  // namespace
}  // namespace encodesat
