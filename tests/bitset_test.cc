#include "util/bitset.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace encodesat {
namespace {

TEST(Bitset, StartsEmpty) {
  Bitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.count(), 0u);
  EXPECT_EQ(b.first(), 130u);
}

TEST(Bitset, SetResetTest) {
  Bitset b(100);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(99);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(99));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(Bitset, SetAllRespectsTail) {
  Bitset b(70);
  b.set_all();
  EXPECT_EQ(b.count(), 70u);
  Bitset c(64);
  c.set_all();
  EXPECT_EQ(c.count(), 64u);
}

TEST(Bitset, FirstNextIterate) {
  Bitset b(200);
  const std::set<std::size_t> expected = {3, 64, 65, 127, 128, 199};
  for (auto i : expected) b.set(i);
  std::set<std::size_t> seen;
  for (std::size_t i = b.first(); i < b.size(); i = b.next(i)) seen.insert(i);
  EXPECT_EQ(seen, expected);
}

TEST(Bitset, ForEachMatchesToVector) {
  Bitset b(90);
  b.set(1);
  b.set(89);
  b.set(42);
  std::vector<std::size_t> v;
  b.for_each([&](std::size_t i) { v.push_back(i); });
  EXPECT_EQ(v, b.to_vector());
  EXPECT_EQ(v, (std::vector<std::size_t>{1, 42, 89}));
}

TEST(Bitset, BooleanOps) {
  Bitset a(70), b(70);
  a.set(1);
  a.set(65);
  b.set(65);
  b.set(2);
  EXPECT_EQ((a & b).to_vector(), (std::vector<std::size_t>{65}));
  EXPECT_EQ((a | b).to_vector(), (std::vector<std::size_t>{1, 2, 65}));
  EXPECT_EQ((a ^ b).to_vector(), (std::vector<std::size_t>{1, 2}));
  Bitset d = a;
  d.subtract(b);
  EXPECT_EQ(d.to_vector(), (std::vector<std::size_t>{1}));
}

TEST(Bitset, SubsetAndIntersects) {
  Bitset a(70), b(70);
  a.set(5);
  b.set(5);
  b.set(66);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  Bitset c(70);
  c.set(7);
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(Bitset(70).is_subset_of(a));
}

TEST(Bitset, EqualityAndOrdering) {
  Bitset a(10), b(10);
  EXPECT_EQ(a, b);
  a.set(3);
  EXPECT_NE(a, b);
  EXPECT_TRUE(b < a);
  b.set(4);
  EXPECT_TRUE(a < b);
}

TEST(Bitset, ToString) {
  Bitset a(10);
  a.set(1);
  a.set(4);
  EXPECT_EQ(a.to_string(), "{1,4}");
  EXPECT_EQ(Bitset(3).to_string(), "{}");
}

TEST(Bitset, HashDiffersForDifferentSets) {
  Bitset a(64), b(64);
  a.set(0);
  b.set(1);
  EXPECT_NE(a.hash(), b.hash());
  Bitset c = a;
  EXPECT_EQ(a.hash(), c.hash());
}

TEST(Bitset, MismatchedUniverseBinaryOpsThrow) {
  // Every binary set operation hard-errors on a universe mismatch in all
  // build modes, not just under debug asserts (see util/bitset.h).
  Bitset a(10), b(11);
  a.set(3);
  b.set(3);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW(a &= b, std::invalid_argument);
  EXPECT_THROW(a ^= b, std::invalid_argument);
  EXPECT_THROW(a.subtract(b), std::invalid_argument);
  EXPECT_THROW((void)a.is_subset_of(b), std::invalid_argument);
  EXPECT_THROW((void)a.intersects(b), std::invalid_argument);
  EXPECT_THROW((void)(a | b), std::invalid_argument);
  EXPECT_THROW((void)(a & b), std::invalid_argument);
  EXPECT_THROW((void)(a ^ b), std::invalid_argument);
  // The failed operation must not corrupt the left operand.
  EXPECT_EQ(a.to_string(), "{3}");
  EXPECT_EQ(a.size(), 10u);
  // Word-count-equal but size-unequal universes still throw (the same word
  // loop would otherwise "work" silently).
  Bitset c(64), d(65);
  EXPECT_THROW(c |= d, std::invalid_argument);
  // Matching universes keep working after a failed attempt.
  Bitset e(10);
  e.set(4);
  a |= e;
  EXPECT_EQ(a.to_string(), "{3,4}");
}

}  // namespace
}  // namespace encodesat
