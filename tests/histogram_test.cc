// Histogram and rolling-window layer (src/obs/histogram.h, window.h).
// The surfaces under test are the deterministic ones the fuzzer's
// `histograms` rule and the bench bucket guard lean on: the fixed bucket
// boundary table (golden prefix, integer recurrence), bucket indexing at
// the edges, merge associativity, percentile edge cases, and the injected-
// clock rotation/expiry of RollingWindow.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "obs/histogram.h"
#include "obs/telemetry.h"
#include "obs/window.h"

namespace encodesat {
namespace {

TEST(HistogramBuckets, GoldenBoundaryPrefix) {
  // b[0] = 1, b[i+1] = b[i] + max(1, b[i]/4): the first boundaries step by
  // one until the /4 term kicks in. This prefix is load-bearing — bucket
  // counts join the structural fingerprint, so the table may never change
  // silently.
  const std::vector<std::uint64_t> want = {1,  2,  3,  4,  5,  6,  7,
                                           8,  10, 12, 15, 18, 22, 27,
                                           33, 41, 51, 63, 78, 97, 121};
  const std::vector<std::uint64_t>& b = histogram_buckets::boundaries();
  ASSERT_GE(b.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_EQ(b[i], want[i]) << "boundary " << i;
}

TEST(HistogramBuckets, TableIsStrictlyIncreasingAndCoversE18) {
  const std::vector<std::uint64_t>& b = histogram_buckets::boundaries();
  for (std::size_t i = 1; i < b.size(); ++i)
    ASSERT_LT(b[i - 1], b[i]) << "at " << i;
  EXPECT_GE(b.back(), 1'000'000'000'000'000'000ull);
  // ~1.25 growth from 1 to 1e18 lands near 180 boundaries; pin a sane
  // range so a recurrence change cannot hide behind the prefix check.
  EXPECT_GT(b.size(), 150u);
  EXPECT_LT(b.size(), 220u);
  EXPECT_EQ(histogram_buckets::bucket_count(), b.size() + 1);
}

TEST(HistogramBuckets, BucketIndexEdges) {
  const std::vector<std::uint64_t>& b = histogram_buckets::boundaries();
  EXPECT_EQ(histogram_buckets::bucket_index(0), 0u);
  EXPECT_EQ(histogram_buckets::bucket_index(1), 0u);
  EXPECT_EQ(histogram_buckets::bucket_index(2), 1u);
  EXPECT_EQ(histogram_buckets::bucket_index(8), 7u);
  EXPECT_EQ(histogram_buckets::bucket_index(9), 8u);   // first boundary >= 9 is 10
  EXPECT_EQ(histogram_buckets::bucket_index(10), 8u);
  // Exactly on the last boundary: last finite bucket; past it: overflow.
  EXPECT_EQ(histogram_buckets::bucket_index(b.back()), b.size() - 1);
  EXPECT_EQ(histogram_buckets::bucket_index(b.back() + 1), b.size());
  EXPECT_EQ(histogram_buckets::bucket_index(~0ull), b.size());
}

TEST(Histogram, ObserveCountSumAndBuckets) {
  Histogram h(/*in_fingerprint=*/true);
  h.observe(1);
  h.observe(1);
  h.observe(9);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 11u);
  const auto nz = h.nonzero_buckets();
  ASSERT_EQ(nz.size(), 2u);
  EXPECT_EQ(nz[0].first, 0u);
  EXPECT_EQ(nz[0].second, 2u);
  EXPECT_EQ(nz[1].first, 8u);
  EXPECT_EQ(nz[1].second, 1u);
}

TEST(Histogram, MergeIsAssociative) {
  auto fill = [](Histogram& h, std::uint64_t seed) {
    // Deterministic spread across small, medium and overflow buckets.
    for (std::uint64_t i = 0; i < 50; ++i)
      h.observe((seed + i * 7) % 1000);
    h.observe(~0ull);
  };
  Histogram a1(true), b1(true), c1(true);
  Histogram a2(true), b2(true), c2(true);
  fill(a1, 3); fill(b1, 11); fill(c1, 29);
  fill(a2, 3); fill(b2, 11); fill(c2, 29);
  // (a + b) + c
  a1.merge_from(b1);
  a1.merge_from(c1);
  // a + (b + c)
  b2.merge_from(c2);
  a2.merge_from(b2);
  EXPECT_EQ(a1.bucket_counts(), a2.bucket_counts());
  EXPECT_EQ(a1.count(), a2.count());
  EXPECT_EQ(a1.sum(), a2.sum());
}

TEST(Histogram, PercentileEdgeCases) {
  Histogram empty(true);
  EXPECT_EQ(empty.percentile(0.5), 0u);  // no observations

  Histogram single(true);
  single.observe(5);
  EXPECT_EQ(single.percentile(0.0), 5u);
  EXPECT_EQ(single.percentile(0.5), 5u);
  EXPECT_EQ(single.percentile(1.0), 5u);

  Histogram one_bucket(true);
  for (int i = 0; i < 100; ++i) one_bucket.observe(7);
  EXPECT_EQ(one_bucket.percentile(0.5), 7u);
  EXPECT_EQ(one_bucket.percentile(0.99), 7u);

  // Out-of-range p clamps instead of misbehaving.
  EXPECT_EQ(one_bucket.percentile(-1.0), 7u);
  EXPECT_EQ(one_bucket.percentile(2.0), 7u);

  // Overflow-only distribution reports the last finite boundary (the
  // histogram cannot see past its table).
  Histogram overflow(true);
  overflow.observe(~0ull);
  EXPECT_EQ(overflow.percentile(0.5),
            histogram_buckets::boundaries().back());
}

TEST(Histogram, PercentileRankIsUpperBound) {
  Histogram h(true);
  h.observe(1);   // bucket 0 (boundary 1)
  h.observe(3);   // bucket 2 (boundary 3)
  h.observe(100); // boundary 121
  h.observe(100);
  // Ranks: p<=0.25 -> first obs; 0.5 -> second; >0.5 -> the 100s.
  EXPECT_EQ(h.percentile(0.25), 1u);
  EXPECT_EQ(h.percentile(0.5), 3u);
  EXPECT_EQ(h.percentile(0.75), 121u);
  EXPECT_EQ(h.percentile(1.0), 121u);
}

TEST(Metrics, HistogramFingerprintExcludesNonFingerprintAndSums) {
  MetricsRegistry m;
  m.histogram("det.work")->observe(5);
  m.histogram("wall.us", /*in_fingerprint=*/false)->observe(123);
  const std::string fp = m.histogram_fingerprint();
  EXPECT_NE(fp.find("det.work#4=1;"), std::string::npos);  // 5 -> bucket 4
  EXPECT_EQ(fp.find("wall.us"), std::string::npos);
  // Same buckets, different sums: identical fingerprint (sums are
  // wall-clock noise and must not participate).
  MetricsRegistry m2;
  m2.histogram("det.work")->observe(5);
  EXPECT_EQ(m2.histogram_fingerprint(), fp);
  // The combined registry fingerprint carries the histogram section.
  EXPECT_NE(m.fingerprint().find("det.work#4=1;"), std::string::npos);
}

TEST(Metrics, MergeFromAccumulatesHistograms) {
  MetricsRegistry a, b;
  metric_observe(ExecContext{nullptr, nullptr, 1, nullptr, &a}, "h", 2);
  metric_observe(ExecContext{nullptr, nullptr, 1, nullptr, &b}, "h", 2);
  metric_observe(ExecContext{nullptr, nullptr, 1, nullptr, &b}, "h", 50);
  a.merge_from(b);
  EXPECT_EQ(a.histogram("h")->count(), 3u);
  EXPECT_EQ(a.histogram("h")->sum(), 54u);
  const auto samples = a.histogram_snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "h");
  ASSERT_EQ(samples[0].buckets.size(), 2u);
  EXPECT_EQ(samples[0].buckets[0].second, 2u);  // two 2s
  EXPECT_EQ(samples[0].buckets[1].second, 1u);  // one 50
}

// --- RollingWindow ---------------------------------------------------------

RollingWindow::Config small_window() {
  RollingWindow::Config cfg;
  cfg.sub_window_us = 1'000'000;  // 1 s slots
  cfg.sub_windows = 5;            // 5 s of history
  return cfg;
}

TEST(RollingWindow, CountsWithinHorizonOnly) {
  RollingWindow w(small_window());
  w.record(500'000, 10);       // slot [0, 1s)
  w.record(2'500'000, 20);     // slot [2s, 3s)
  // Horizon 1s at t=2.6s: only the slot starting at 2s is within it.
  RollingWindow::Stats s = w.stats(2'600'000, 1'000'000);
  EXPECT_EQ(s.count, 1u);
  // Full span: both.
  s = w.stats(2'600'000, 0);
  EXPECT_EQ(s.count, 2u);
}

TEST(RollingWindow, SlotsExpireAfterOneRingLap) {
  RollingWindow w(small_window());
  w.record(0, 10);
  EXPECT_EQ(w.stats(0, 0).count, 1u);
  // 5 s later the ring has lapped: the same slot index now owns a new
  // epoch, and recording there recycles it.
  w.record(5'000'000, 20);
  const RollingWindow::Stats s = w.stats(5'000'000, 0);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.p50, 22u);  // 20 -> boundary 22, not 10's bucket
}

TEST(RollingWindow, StaleSlotsDropOutWithoutNewRecords) {
  RollingWindow w(small_window());
  w.record(0, 10);
  // Query far in the future without recording: the old slot's start is
  // outside every horizon the ring can express.
  EXPECT_EQ(w.stats(60'000'000, 0).count, 0u);
  EXPECT_EQ(w.stats(60'000'000, 0).p99, 0u);
}

TEST(RollingWindow, RatesAndPercentiles) {
  RollingWindow w(small_window());
  for (std::uint64_t i = 0; i < 100; ++i) w.record(1'500'000, 7);
  const RollingWindow::Stats s = w.stats(2'000'000, 2'000'000);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.rate_per_s, 50.0);  // 100 obs / 2 s horizon
  EXPECT_EQ(s.p50, 7u);
  EXPECT_EQ(s.p95, 7u);
  EXPECT_EQ(s.p99, 7u);
}

// --- Prometheus exposition -------------------------------------------------

TEST(PrometheusText, RendersCountersGaugesAndCumulativeHistograms) {
  MetricsRegistry m;
  m.counter("solve.requests")->add(3);
  Histogram* h = m.histogram("service.latency.total", false);
  h->observe(1);
  h->observe(1);
  h->observe(9);   // bucket boundary 10
  h->observe(~0ull);  // overflow -> folds into +Inf
  TelemetryOptions opts;
  opts.metrics = &m;
  opts.gauges.push_back({"service.queue_depth", 4.0});
  opts.gauges.push_back({"service.window.1m.rate", 2.5});
  const std::string text = render_prometheus_text(opts);

  EXPECT_NE(text.find("# TYPE encodesat_solve_requests counter\n"
                      "encodesat_solve_requests 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE encodesat_service_queue_depth gauge\n"
                      "encodesat_service_queue_depth 4\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("encodesat_service_window_1m_rate 2.5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE encodesat_service_latency_total histogram\n"),
            std::string::npos)
      << text;
  // Cumulative series: bucket 1 holds two obs, boundary 10 adds one, +Inf
  // absorbs the overflow observation and equals _count.
  EXPECT_NE(text.find("encodesat_service_latency_total_bucket{le=\"1\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("encodesat_service_latency_total_bucket{le=\"10\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find("encodesat_service_latency_total_bucket{le=\"+Inf\"} 4\n"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("encodesat_service_latency_total_count 4\n"),
            std::string::npos)
      << text;

  // Structural scan: every _bucket series must be monotone in value with
  // strictly increasing finite le= labels, ending at le="+Inf" == _count.
  std::istringstream in(text);
  std::string line;
  std::uint64_t prev_cum = 0, prev_le = 0;
  bool saw_inf = false;
  int bucket_lines = 0;
  while (std::getline(in, line)) {
    const std::size_t at = line.find("_bucket{le=\"");
    if (at == std::string::npos) continue;
    ++bucket_lines;
    const std::size_t vstart = at + 12;
    const std::size_t vend = line.find('"', vstart);
    const std::string le = line.substr(vstart, vend - vstart);
    const std::uint64_t cum =
        std::stoull(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(cum, prev_cum) << line;
    prev_cum = cum;
    if (le == "+Inf") {
      saw_inf = true;
      EXPECT_EQ(cum, 4u);
    } else {
      const std::uint64_t b = std::stoull(le);
      EXPECT_GT(b, prev_le) << line;
      prev_le = b;
    }
  }
  EXPECT_TRUE(saw_inf);
  EXPECT_EQ(bucket_lines, 3);
}

TEST(RollingWindow, ClockMovingBackwardsIsHarmless) {
  RollingWindow w(small_window());
  w.record(4'000'000, 10);
  // A query at an earlier time sees no future-started slots (and must not
  // underflow the horizon math).
  EXPECT_EQ(w.stats(1'000'000, 0).count, 0u);
}

}  // namespace
}  // namespace encodesat
