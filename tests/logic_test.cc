// Tests for the two-level logic substrate: cubes, covers, URP operations.
#include <gtest/gtest.h>

#include "logic/cover.h"
#include "logic/cube.h"
#include "logic/domain.h"
#include "logic/urp.h"

namespace encodesat {
namespace {

Cube bcube(const Domain& dom, const std::string& in, const std::string& out) {
  return cube_from_string(dom, in, out);
}

TEST(Domain, LayoutBinary) {
  const Domain dom = Domain::binary(3, 2);
  EXPECT_EQ(dom.num_inputs(), 3);
  EXPECT_EQ(dom.num_outputs(), 2);
  EXPECT_EQ(dom.total_parts(), 8);
  EXPECT_EQ(dom.pos(0, 0), 0);
  EXPECT_EQ(dom.pos(2, 1), 5);
  EXPECT_EQ(dom.out_pos(0), 6);
  EXPECT_EQ(dom.num_input_minterms(), 8ull);
}

TEST(Domain, LayoutMultiValued) {
  const Domain dom({2, 5, 3}, 4);
  EXPECT_EQ(dom.total_parts(), 2 + 5 + 3 + 4);
  EXPECT_EQ(dom.input_offset(1), 2);
  EXPECT_EQ(dom.pos(2, 2), 9);
  EXPECT_EQ(dom.out_pos(3), 13);
  EXPECT_EQ(dom.num_input_minterms(), 30ull);
}

TEST(Cube, EmptinessAndFull) {
  const Domain dom = Domain::binary(2, 1);
  Cube c(dom);
  EXPECT_TRUE(cube_is_empty(dom, c));
  const Cube f = full_cube(dom);
  EXPECT_FALSE(cube_is_empty(dom, f));
  // Empty input part.
  Cube g = f;
  g.bits.reset(static_cast<std::size_t>(dom.pos(0, 0)));
  g.bits.reset(static_cast<std::size_t>(dom.pos(0, 1)));
  EXPECT_TRUE(cube_is_empty(dom, g));
  // Empty output part.
  Cube h = f;
  h.bits.reset(static_cast<std::size_t>(dom.out_pos(0)));
  EXPECT_TRUE(cube_is_empty(dom, h));
}

TEST(Cube, ContainsAndIntersect) {
  const Domain dom = Domain::binary(3, 1);
  const Cube big = bcube(dom, "1--", "1");
  const Cube small = bcube(dom, "10-", "1");
  EXPECT_TRUE(cube_contains(big, small));
  EXPECT_FALSE(cube_contains(small, big));
  auto meet = cube_intersect(dom, big, bcube(dom, "-01", "1"));
  ASSERT_TRUE(meet.has_value());
  EXPECT_EQ(cube_to_string(dom, *meet), "101 | 1");
  EXPECT_FALSE(cube_intersect(dom, bcube(dom, "1--", "1"),
                              bcube(dom, "0--", "1"))
                   .has_value());
}

TEST(Cube, Distance) {
  const Domain dom = Domain::binary(3, 1);
  EXPECT_EQ(cube_distance(dom, bcube(dom, "1--", "1"), bcube(dom, "0--", "1")),
            1);
  EXPECT_EQ(cube_distance(dom, bcube(dom, "10-", "1"), bcube(dom, "01-", "1")),
            2);
  EXPECT_EQ(cube_distance(dom, bcube(dom, "1--", "1"), bcube(dom, "1--", "1")),
            0);
}

TEST(Cube, CofactorBasics) {
  const Domain dom = Domain::binary(2, 1);
  const Cube c = bcube(dom, "11", "1");
  const Cube p = bcube(dom, "1-", "1");
  auto cf = cube_cofactor(dom, c, p);
  ASSERT_TRUE(cf.has_value());
  // Cofactor frees the positions p constrains: x0 becomes don't-care.
  EXPECT_EQ(cube_to_string(dom, *cf), "-1 | 1");
  EXPECT_FALSE(cube_cofactor(dom, bcube(dom, "0-", "1"), bcube(dom, "1-", "1"))
                   .has_value());
}

TEST(Cube, ComplementSingleCube) {
  const Domain dom = Domain::binary(2, 1);
  const auto comp = cube_complement(dom, bcube(dom, "11", "1"));
  // One cube per non-full part: x0=0, x1=0 (output part is full).
  ASSERT_EQ(comp.size(), 2u);
  Cover cover(dom);
  for (const auto& c : comp) cover.add(c);
  cover.add(cube_from_string(dom, "11", "1"));
  EXPECT_TRUE(is_tautology(cover));
}

TEST(Cube, SupercubeAndLiterals) {
  const Domain dom = Domain::binary(3, 1);
  const Cube sc =
      cube_supercube(bcube(dom, "110", "1"), bcube(dom, "100", "1"));
  EXPECT_EQ(cube_to_string(dom, sc), "1-0 | 1");
  EXPECT_EQ(cube_input_literals(dom, sc), 2);
  EXPECT_EQ(cube_input_literals(dom, full_cube(dom)), 0);
}

TEST(Cover, SccMinimal) {
  const Domain dom = Domain::binary(3, 1);
  Cover f(dom);
  f.add(bcube(dom, "1--", "1"));
  f.add(bcube(dom, "11-", "1"));  // contained
  f.add(bcube(dom, "0-1", "1"));
  f.make_scc_minimal();
  EXPECT_EQ(f.size(), 2u);
}

TEST(Urp, TautologyTrivial) {
  const Domain dom = Domain::binary(2, 1);
  EXPECT_FALSE(is_tautology(Cover(dom)));
  EXPECT_TRUE(is_tautology(universe_cover(dom)));
}

TEST(Urp, TautologyXLiterals) {
  const Domain dom = Domain::binary(1, 1);
  Cover f(dom);
  f.add(bcube(dom, "0", "1"));
  EXPECT_FALSE(is_tautology(f));
  f.add(bcube(dom, "1", "1"));
  EXPECT_TRUE(is_tautology(f));
}

TEST(Urp, TautologyNeedsAllOutputs) {
  const Domain dom = Domain::binary(1, 2);
  Cover f(dom);
  f.add(bcube(dom, "-", "10"));
  EXPECT_FALSE(is_tautology(f));
  f.add(bcube(dom, "-", "01"));
  EXPECT_TRUE(is_tautology(f));
}

TEST(Urp, TautologyThreeVarSplit) {
  const Domain dom = Domain::binary(3, 1);
  Cover f(dom);
  // x0 + x0'x1 + x0'x1'x2 + x0'x1'x2' = 1
  f.add(bcube(dom, "1--", "1"));
  f.add(bcube(dom, "01-", "1"));
  f.add(bcube(dom, "001", "1"));
  EXPECT_FALSE(is_tautology(f));
  f.add(bcube(dom, "000", "1"));
  EXPECT_TRUE(is_tautology(f));
}

TEST(Urp, ComplementRoundTrip) {
  const Domain dom = Domain::binary(4, 1);
  Cover f(dom);
  f.add(bcube(dom, "1-0-", "1"));
  f.add(bcube(dom, "01--", "1"));
  f.add(bcube(dom, "--11", "1"));
  const Cover comp = complement(f);
  // f | comp must be a tautology and f & comp empty.
  Cover both = f;
  both.add_all(comp);
  EXPECT_TRUE(is_tautology(both));
  for (const Cube& a : f)
    for (const Cube& b : comp)
      EXPECT_FALSE(cubes_intersect(dom, a, b));
}

TEST(Urp, ComplementOfEmptyAndUniverse) {
  const Domain dom = Domain::binary(2, 2);
  EXPECT_TRUE(is_tautology(complement(Cover(dom))));
  EXPECT_TRUE(complement(universe_cover(dom)).empty());
}

TEST(Urp, CoverContainsCube) {
  const Domain dom = Domain::binary(3, 1);
  Cover f(dom);
  f.add(bcube(dom, "11-", "1"));
  f.add(bcube(dom, "1-1", "1"));
  EXPECT_TRUE(cover_contains_cube(f, bcube(dom, "111", "1")));
  EXPECT_TRUE(cover_contains_cube(f, bcube(dom, "110", "1")));
  EXPECT_FALSE(cover_contains_cube(f, bcube(dom, "100", "1")));
  // Consensus case: covered by two cubes jointly.
  Cover g(dom);
  g.add(bcube(dom, "1--", "1"));
  g.add(bcube(dom, "0--", "1"));
  EXPECT_TRUE(cover_contains_cube(g, bcube(dom, "--1", "1")));
}

TEST(Urp, EquivalenceModuloDc) {
  const Domain dom = Domain::binary(2, 1);
  Cover f(dom), g(dom), dc(dom);
  f.add(bcube(dom, "1-", "1"));
  g.add(bcube(dom, "11", "1"));
  EXPECT_FALSE(covers_equivalent(f, g, dc));
  dc.add(bcube(dom, "10", "1"));
  EXPECT_TRUE(covers_equivalent(f, g, dc));
}

TEST(Urp, MultiValuedTautology) {
  // One 3-valued variable: literals {0,1} and {2} together cover it.
  const Domain dom({3}, 1);
  Cover f(dom);
  Cube a(dom);
  a.bits.set(0);
  a.bits.set(1);
  a.bits.set(static_cast<std::size_t>(dom.out_pos(0)));
  Cube b(dom);
  b.bits.set(2);
  b.bits.set(static_cast<std::size_t>(dom.out_pos(0)));
  f.add(a);
  EXPECT_FALSE(is_tautology(f));
  f.add(b);
  EXPECT_TRUE(is_tautology(f));
}

TEST(Urp, MultiValuedComplement) {
  const Domain dom({4}, 1);
  Cover f(dom);
  Cube a(dom);
  a.bits.set(1);
  a.bits.set(static_cast<std::size_t>(dom.out_pos(0)));
  f.add(a);
  const Cover comp = complement(f);
  Cover both = f;
  both.add_all(comp);
  EXPECT_TRUE(is_tautology(both));
  for (const Cube& c : comp) EXPECT_FALSE(cubes_intersect(dom, a, c));
}

}  // namespace
}  // namespace encodesat
