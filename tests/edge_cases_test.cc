// Edge-case and budget-path tests across the modules.
#include <gtest/gtest.h>

#include "core/binate_table.h"
#include "core/cost.h"
#include "core/encoder.h"
#include "core/extensions.h"
#include "core/primes.h"
#include "core/solver.h"
#include "core/verify.h"
#include "logic/espresso.h"
#include "logic/urp.h"

namespace encodesat {
namespace {

TEST(PrimeBudget, WorkBudgetTruncates) {
  // A dense incompatibility structure with a microscopic work budget must
  // report truncation instead of grinding.
  const std::size_t k = 12;
  std::vector<Bitset> inc(2 * k, Bitset(2 * k));
  for (std::size_t i = 0; i < k; ++i) {
    inc[2 * i].set(2 * i + 1);
    inc[2 * i + 1].set(2 * i);
  }
  bool truncated = false;
  const auto sop = two_cnf_to_minimal_sop(inc, 1u << 20, &truncated, 10);
  EXPECT_TRUE(truncated);
  EXPECT_TRUE(sop.empty());
}

TEST(PrimeBudget, ExactEncodeReportsPrimeLimit) {
  // Many unconstrained symbols: 2^(n-1) - 1 primes, beyond a tiny budget.
  ConstraintSet cs;
  for (int i = 0; i < 14; ++i) cs.symbols().intern("s" + std::to_string(i));
  SolveOptions opts;
  opts.exact.prime_options.max_terms = 50;
  const SolveResult res = Solver(cs).encode(opts);
  EXPECT_EQ(res.status, SolveResult::Status::kTruncated);
  EXPECT_TRUE(res.truncated);
  EXPECT_EQ(res.truncation, Truncation::kTermLimit);
}

TEST(ExactEncode, TwoSymbols) {
  ConstraintSet cs;
  cs.symbols().intern("a");
  cs.symbols().intern("b");
  const SolveResult res = Solver(cs).encode();
  ASSERT_EQ(res.status, SolveResult::Status::kEncoded);
  EXPECT_EQ(res.encoding.bits, 1);
  EXPECT_NE(res.encoding.codes[0], res.encoding.codes[1]);
}

TEST(ExactEncode, FaceCoveringAllSymbolsIsVacuous) {
  // A face containing every symbol generates no dichotomies; only
  // uniqueness remains.
  const ConstraintSet cs = parse_constraints("face a b c");
  const SolveResult res = Solver(cs).encode();
  ASSERT_EQ(res.status, SolveResult::Status::kEncoded);
  EXPECT_EQ(res.encoding.bits, 2);
}

TEST(ExactEncode, SelfDominanceLoopsAreIgnoredByParser) {
  // The parser rejects a > a outright.
  EXPECT_THROW(parse_constraints("dominance x x"), std::runtime_error);
}

TEST(ExactEncode, EqualCodesForcedByMutualDominanceIsInfeasible) {
  // a > b and b > a force equal codes, clashing with uniqueness.
  ConstraintSet cs;
  cs.add_dominance("a", "b");
  cs.add_dominance("b", "a");
  EXPECT_FALSE(Solver(cs).feasible());
}

TEST(ExactEncode, DominanceChainStillEncodable) {
  const ConstraintSet cs = parse_constraints(R"(
    dominance a b
    dominance b c
    dominance c d
  )");
  const SolveResult res = Solver(cs).encode();
  ASSERT_EQ(res.status, SolveResult::Status::kEncoded);
  // A chain a > b > c > d is satisfiable with nested codes.
  const auto& codes = res.encoding.codes;
  EXPECT_EQ(codes[0] & codes[1], codes[1]);
  EXPECT_EQ(codes[1] & codes[2], codes[2]);
  EXPECT_EQ(codes[2] & codes[3], codes[3]);
}

TEST(ExactEncode, DisjunctiveWithManyChildren) {
  const ConstraintSet cs = parse_constraints(R"(
    disjunctive p a b c d
    face a b
  )");
  const SolveResult res = Solver(cs).encode();
  ASSERT_EQ(res.status, SolveResult::Status::kEncoded);
  std::uint64_t orv = 0;
  const auto& sym = cs.symbols();
  for (const char* c : {"a", "b", "c", "d"})
    orv |= res.encoding.codes[sym.at(c)];
  EXPECT_EQ(res.encoding.codes[sym.at("p")], orv);
}

TEST(Extensions, PrimeLimitPropagates) {
  ConstraintSet cs;
  for (int i = 0; i < 14; ++i) cs.symbols().intern("s" + std::to_string(i));
  cs.add_distance2("s0", "s1");
  SolveOptions opts;
  opts.extensions.prime_options.max_terms = 20;
  const SolveResult res = Solver(cs).encode(opts);
  EXPECT_EQ(res.status, SolveResult::Status::kTruncated);
  EXPECT_TRUE(res.truncated);
}

TEST(BinateTable, OutputOnlyProblem) {
  const ConstraintSet cs = parse_constraints("dominance a b\nsymbol c");
  const auto res = binate_table_encode(cs);
  ASSERT_TRUE(res.feasible);
  const auto v = verify_encoding(res.encoding, cs);
  EXPECT_TRUE(v.empty());
}

TEST(MultiOutputConstraintFunction, BuilderShapes) {
  const ConstraintSet cs = parse_constraints("face a b\nface b c");
  Encoding enc;
  enc.bits = 2;
  enc.codes = {0b00, 0b01, 0b11};
  const auto [on, dc] = encoded_constraint_function(enc, cs);
  EXPECT_EQ(on.domain().num_outputs(), 2);
  EXPECT_EQ(on.domain().num_inputs(), 2);
  EXPECT_FALSE(on.empty());
  // Unused code 10 must appear as a DC point for both outputs.
  bool found_unused = false;
  for (const Cube& c : dc) {
    const bool x0 = c.bits.test(static_cast<std::size_t>(on.domain().pos(0, 0)));
    const bool x1 = c.bits.test(static_cast<std::size_t>(on.domain().pos(1, 1)));
    if (!x0 && x1) continue;
    // crude check: some DC cube covers input point (x0=0, x1=1) i.e. 10.
    Cube point(on.domain());
    point.bits.set(static_cast<std::size_t>(on.domain().pos(0, 0)));
    point.bits.set(static_cast<std::size_t>(on.domain().pos(1, 1)));
    point.bits.set(static_cast<std::size_t>(on.domain().out_pos(0)));
    point.bits.set(static_cast<std::size_t>(on.domain().out_pos(1)));
    if (cube_contains(c, point)) found_unused = true;
  }
  EXPECT_TRUE(found_unused);
}

TEST(Espresso, StatsPopulated) {
  const Domain dom = Domain::binary(2, 1);
  Cover on(dom);
  on.add(cube_from_string(dom, "00", "1"));
  on.add(cube_from_string(dom, "01", "1"));
  EspressoStats stats;
  const Cover min = espresso(on, Cover(dom), {}, &stats);
  EXPECT_EQ(stats.initial_cubes, 2u);
  EXPECT_EQ(stats.final_cubes, 1u);
  EXPECT_EQ(min.size(), stats.final_cubes);
}

TEST(Verify, SixtyFourSymbolUniverse) {
  // The extension solver and verifier must handle the top of the supported
  // range (codes in 64-bit words).
  ConstraintSet cs;
  for (int i = 0; i < 64; ++i) cs.symbols().intern("s" + std::to_string(i));
  Encoding enc;
  enc.bits = 6;
  enc.codes.resize(64);
  for (std::uint32_t s = 0; s < 64; ++s) enc.codes[s] = s;
  EXPECT_TRUE(verify_encoding(enc, cs).empty());
}

}  // namespace
}  // namespace encodesat
