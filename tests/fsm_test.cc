// Tests for the FSM substrate: KISS2 I/O, the symbolic cover, constraint
// generation, benchmark synthesis, and encoded-PLA construction.
#include <gtest/gtest.h>

#include "core/encoder.h"
#include "core/solver.h"
#include "core/verify.h"
#include "fsm/constraints_gen.h"
#include "fsm/encode_fsm.h"
#include "fsm/fsm.h"
#include "fsm/mcnc_like.h"
#include "logic/urp.h"

namespace encodesat {
namespace {

const char* kTinyKiss = R"(
.i 2
.o 1
.s 3
.p 6
.r idle
0- idle idle 0
1- idle run  1
-0 run  run  1
-1 run  done 0
-- done idle -
11 idle done 1
.e
)";

TEST(Kiss2, ParsesHeaderAndTransitions) {
  const Fsm fsm = parse_kiss2_string(kTinyKiss);
  EXPECT_EQ(fsm.num_inputs, 2);
  EXPECT_EQ(fsm.num_outputs, 1);
  EXPECT_EQ(fsm.num_states(), 3u);
  EXPECT_EQ(fsm.transitions.size(), 6u);
  EXPECT_EQ(fsm.reset_state, static_cast<int>(fsm.states.at("idle")));
  EXPECT_EQ(fsm.transitions[1].input, "1-");
  EXPECT_EQ(fsm.states.name(fsm.transitions[1].to), "run");
}

TEST(Kiss2, RoundTrip) {
  const Fsm fsm = parse_kiss2_string(kTinyKiss);
  const Fsm again = parse_kiss2_string(write_kiss2_string(fsm));
  EXPECT_EQ(again.num_inputs, fsm.num_inputs);
  EXPECT_EQ(again.num_states(), fsm.num_states());
  EXPECT_EQ(again.transitions.size(), fsm.transitions.size());
  EXPECT_EQ(write_kiss2_string(again), write_kiss2_string(fsm));
}

TEST(Kiss2, Errors) {
  EXPECT_THROW(parse_kiss2_string(".i 2\n.o 1\n0 a b 1\n"),
               std::runtime_error);
  EXPECT_THROW(parse_kiss2_string(".i 1\n.o 1\n0 a b\n"), std::runtime_error);
  EXPECT_THROW(parse_kiss2_string(".i 1\n.o 1\n.p 5\nz a b 1\n"),
               std::runtime_error);
  EXPECT_THROW(parse_kiss2_string(".i 1\n.o 1\n.p 3\n0 a b 1\n.e\n"),
               std::runtime_error);
}

TEST(SymbolicCover, OneCubePerTransition) {
  const Fsm fsm = parse_kiss2_string(kTinyKiss);
  const Cover on = fsm_symbolic_cover(fsm);
  EXPECT_EQ(on.size(), fsm.transitions.size());
  // Domain: 2 binary inputs + one 3-valued state var; 3 + 1 outputs.
  EXPECT_EQ(on.domain().num_inputs(), 3);
  EXPECT_EQ(on.domain().input_size(2), 3);
  EXPECT_EQ(on.domain().num_outputs(), 4);
}

TEST(InputConstraints, GroupsComeFromMinimizedCover) {
  // Two states with identical behaviour under input 1 must end up grouped.
  const char* kiss = R"(
.i 1
.o 1
.s 3
1 a c 1
1 b c 1
0 a a 0
0 b b 0
1 c a 0
0 c c 1
)";
  const Fsm fsm = parse_kiss2_string(kiss);
  const ConstraintSet cs = generate_input_constraints(fsm);
  EXPECT_EQ(cs.num_symbols(), 3u);
  bool found_ab = false;
  for (const auto& f : cs.faces()) {
    std::vector<std::string> names;
    for (auto m : f.members) names.push_back(cs.symbols().name(m));
    std::sort(names.begin(), names.end());
    if (names == std::vector<std::string>{"a", "b"}) found_ab = true;
  }
  EXPECT_TRUE(found_ab);
}

TEST(MixedConstraints, FeasibleByConstruction) {
  const Fsm fsm = make_mcnc_like(benchmark_spec("dk512"));
  ConstraintGenOptions opts;
  const ConstraintSet cs = generate_mixed_constraints(fsm, opts);
  EXPECT_TRUE(Solver(cs).feasible());
  EXPECT_EQ(cs.num_symbols(), fsm.num_states());
}

TEST(MixedConstraints, GeneratesOutputConstraintsSomewhere) {
  // At least one machine of the suite must yield dominance constraints,
  // otherwise Table 1 would degenerate to input-only encoding.
  bool any_dom = false;
  for (const char* name : {"dk512", "master", "cse"}) {
    const Fsm fsm = make_mcnc_like(benchmark_spec(name));
    const ConstraintSet cs = generate_mixed_constraints(fsm);
    if (!cs.dominances().empty()) any_dom = true;
  }
  EXPECT_TRUE(any_dom);
}

TEST(McncLike, SuiteCoversPaperBenchmarks) {
  const auto& suite = mcnc_like_suite();
  ASSERT_GE(suite.size(), 16u);
  EXPECT_EQ(benchmark_spec("dk16").states, 27);
  EXPECT_EQ(benchmark_spec("planet").states, 48);
  EXPECT_EQ(benchmark_spec("tbk").states, 32);
  EXPECT_EQ(benchmark_spec("viterbi").states, 68);
  EXPECT_THROW(benchmark_spec("nonexistent"), std::out_of_range);
}

TEST(McncLike, GenerationIsDeterministic) {
  const Fsm a = make_mcnc_like(benchmark_spec("cse"));
  const Fsm b = make_mcnc_like(benchmark_spec("cse"));
  EXPECT_EQ(write_kiss2_string(a), write_kiss2_string(b));
  EXPECT_EQ(a.num_states(), 16u);
  EXPECT_EQ(a.num_inputs, 7);
  EXPECT_GT(a.transitions.size(), a.num_states());
}

TEST(McncLike, EveryStatePresent) {
  const Fsm fsm = make_mcnc_like(benchmark_spec("donfile"));
  std::vector<bool> seen(fsm.num_states(), false);
  for (const auto& t : fsm.transitions) seen[t.from] = true;
  for (std::uint32_t s = 0; s < fsm.num_states(); ++s)
    EXPECT_TRUE(seen[s]) << "state " << s << " has no outgoing transition";
}

TEST(EncodeFsm, PlaShapeAndDc) {
  const Fsm fsm = parse_kiss2_string(kTinyKiss);
  Encoding enc;
  enc.bits = 2;
  enc.codes = {0b00, 0b01, 0b10};
  const Pla pla = encode_fsm(fsm, enc);
  EXPECT_EQ(pla.domain.num_inputs(), 4);   // 2 PI + 2 state bits
  EXPECT_EQ(pla.domain.num_outputs(), 3);  // 2 state bits + 1 PO
  EXPECT_FALSE(pla.on.empty());
  // The "-- done idle -" line contributes a DC output cube.
  EXPECT_FALSE(pla.dc.empty());
}

TEST(EncodeFsm, MinimizedStatsAreConsistent) {
  const Fsm fsm = parse_kiss2_string(kTinyKiss);
  Encoding enc;
  enc.bits = 2;
  enc.codes = {0b00, 0b01, 0b10};
  const auto stats = minimized_fsm_stats(fsm, enc);
  EXPECT_GT(stats.cubes, 0);
  EXPECT_GE(stats.literals, stats.cubes - 1);
}

TEST(EncodeFsm, RejectsWrongEncodingSize) {
  const Fsm fsm = parse_kiss2_string(kTinyKiss);
  Encoding enc;
  enc.bits = 1;
  enc.codes = {0, 1};
  EXPECT_THROW(encode_fsm(fsm, enc), std::invalid_argument);
}

TEST(Pipeline, GenerateEncodeVerify) {
  // End-to-end: synthesize a machine, derive mixed constraints, encode
  // exactly, verify, and build the encoded PLA.
  const Fsm fsm = make_mcnc_like(benchmark_spec("dk512"));
  const ConstraintSet cs = generate_mixed_constraints(fsm);
  SolveOptions opts;
  opts.exact.cover_options.max_nodes = 20000;  // best-effort cover is enough here
  const SolveResult res = Solver(cs).encode(opts);
  ASSERT_EQ(res.status, SolveResult::Status::kEncoded);
  EXPECT_TRUE(verify_encoding(res.encoding, cs).empty());
  const auto stats = minimized_fsm_stats(fsm, res.encoding);
  EXPECT_GT(stats.cubes, 0);
}

}  // namespace
}  // namespace encodesat
