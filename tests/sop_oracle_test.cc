// Brute-force oracle for the cs/ps 2-CNF -> SOP conversion: the terms must
// be exactly the minimal vertex covers of the incompatibility graph.
#include <gtest/gtest.h>

#include <set>

#include "core/primes.h"
#include "util/rng.h"

namespace encodesat {
namespace {

std::set<std::vector<std::size_t>> brute_force_minimal_covers(
    const std::vector<Bitset>& adj) {
  const std::size_t m = adj.size();
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = i + 1; j < m; ++j)
      if (adj[i].test(j)) edges.emplace_back(i, j);

  // All covers, then keep the minimal ones.
  std::vector<std::uint64_t> covers;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << m); ++mask) {
    bool ok = true;
    for (const auto& [i, j] : edges)
      if (!((mask >> i) & 1u) && !((mask >> j) & 1u)) {
        ok = false;
        break;
      }
    if (ok) covers.push_back(mask);
  }
  std::set<std::vector<std::size_t>> minimal;
  for (std::uint64_t c : covers) {
    bool is_minimal = true;
    for (std::uint64_t d : covers)
      if (d != c && (d & c) == d) {
        is_minimal = false;
        break;
      }
    if (!is_minimal) continue;
    std::vector<std::size_t> v;
    for (std::size_t i = 0; i < m; ++i)
      if ((c >> i) & 1u) v.push_back(i);
    minimal.insert(std::move(v));
  }
  return minimal;
}

class SopOracle : public ::testing::TestWithParam<int> {};

TEST_P(SopOracle, TermsAreExactlyMinimalVertexCovers) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 211 + 17);
  const std::size_t m = 3 + rng.next_below(8);
  std::vector<Bitset> adj(m, Bitset(m));
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = i + 1; j < m; ++j)
      if (rng.next_bool(0.35)) {
        adj[i].set(j);
        adj[j].set(i);
      }

  bool truncated = true;
  const auto sop = two_cnf_to_minimal_sop(adj, 1u << 16, &truncated);
  ASSERT_FALSE(truncated);
  std::set<std::vector<std::size_t>> got;
  for (const auto& t : sop) got.insert(t.to_vector());
  EXPECT_EQ(got, brute_force_minimal_covers(adj));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SopOracle, ::testing::Range(0, 30));

}  // namespace
}  // namespace encodesat
