// Solver facade tests (core/solver.h): facade/legacy equivalence, the
// parallel determinism contract (threads=N bit-identical to sequential),
// deadline / work-budget / cancellation truncation, batch encoding, the
// non-throwing parser, and the stats tree.
//
// ENCODESAT_EXAMPLES_DATA_DIR points at examples/data so the determinism
// tests run on the same bundled instances the CLI integration tests use.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/solver.h"
#include "covering/unate.h"

namespace encodesat {
namespace {

std::string read_data_file(const std::string& name) {
  const std::string path = std::string(ENCODESAT_EXAMPLES_DATA_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

ConstraintSet quickstart_constraints() {
  return parse_constraints(R"(
    face b c
    face c d
    face b a
    face a d
    dominance b c
    dominance a c
    disjunctive a b d
  )");
}

// A face-heavy instance whose prime generation runs long enough that a
// millisecond-scale deadline reliably expires mid-pipeline. Overlapping
// triples plus long-stride pairs make the incompatibility graph dense and
// irregular, so the cs/ps recursion has many folds (= poll points).
ConstraintSet hard_instance(int n) {
  ConstraintSet cs;
  for (int i = 0; i < n; ++i) cs.symbols().intern("s" + std::to_string(i));
  auto face = [&](std::vector<std::uint32_t> m) {
    cs.add_face_ids(std::move(m));
  };
  for (int i = 0; i + 2 < n; ++i)
    face({static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i + 1),
          static_cast<std::uint32_t>(i + 2)});
  for (int i = 0; i + 7 < n; i += 2)
    face({static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i + 7)});
  for (int i = 0; i + 11 < n; i += 3)
    face({static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i + 11)});
  return cs;
}

void expect_same_result(const SolveResult& a, const SolveResult& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.encoding.bits, b.encoding.bits);
  EXPECT_EQ(a.encoding.codes, b.encoding.codes);
  EXPECT_EQ(a.minimal, b.minimal);
  EXPECT_EQ(a.truncation, b.truncation);
  EXPECT_EQ(a.num_initial, b.num_initial);
  EXPECT_EQ(a.num_primes, b.num_primes);
  EXPECT_EQ(a.num_valid_primes, b.num_valid_primes);
  EXPECT_EQ(a.uncovered, b.uncovered);
}

TEST(Solver, FacadeMatchesDirectExactEncode) {
  const ConstraintSet cs = quickstart_constraints();
  const ExactEncodeResult direct = exact_encode(cs, {}, ExecContext{});
  const SolveResult facade = Solver(cs).encode();
  ASSERT_EQ(direct.status, ExactEncodeResult::Status::kEncoded);
  ASSERT_TRUE(facade.encoded());
  EXPECT_EQ(facade.encoding.bits, direct.encoding.bits);
  EXPECT_EQ(facade.encoding.codes, direct.encoding.codes);
  EXPECT_EQ(facade.minimal, direct.minimal);
  EXPECT_EQ(facade.num_primes, direct.num_primes);
}

TEST(Solver, FeasibilityMatchesDirectCheck) {
  const ConstraintSet cs = quickstart_constraints();
  EXPECT_TRUE(Solver(cs).feasible());
  EXPECT_TRUE(check_feasible(cs, ExecContext{}).feasible);

  const auto infeasible = parse_constraints(read_data_file("infeasible.constraints"), nullptr);
  ASSERT_TRUE(infeasible.has_value());
  EXPECT_FALSE(Solver(*infeasible).feasible());
}

TEST(Solver, ParallelBitIdenticalToSequentialOnBundledExamples) {
  for (const char* name : {"mixed.constraints", "infeasible.constraints"}) {
    SCOPED_TRACE(name);
    const auto cs = parse_constraints(read_data_file(name), nullptr);
    ASSERT_TRUE(cs.has_value());
    SolveOptions seq;
    seq.exec.threads = 1;
    SolveOptions par;
    par.exec.threads = 4;
    const SolveResult a = Solver(*cs).encode(seq);
    const SolveResult b = Solver(*cs).encode(par);
    expect_same_result(a, b);
  }
}

TEST(Solver, ParallelBitIdenticalToSequentialOnDenseInstance) {
  const ConstraintSet cs = hard_instance(10);
  SolveOptions seq;
  seq.exec.threads = 1;
  SolveOptions par;
  par.exec.threads = 4;
  const SolveResult a = Solver(cs).encode(seq);
  const SolveResult b = Solver(cs).encode(par);
  expect_same_result(a, b);
  // Repeated runs are stable too.
  expect_same_result(a, Solver(cs).encode(par));
}

TEST(Solver, MillisecondDeadlineTruncatesWithoutHanging) {
  const ConstraintSet cs = hard_instance(40);
  SolveOptions opts;
  opts.exec.timeout_seconds = 0.001;
  const auto start = std::chrono::steady_clock::now();
  const SolveResult res = Solver(cs).encode(opts);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(res.status, SolveResult::Status::kTruncated);
  EXPECT_NE(res.truncation, Truncation::kNone);
  // "Promptly" leaves slack for slow CI machines; the point is that an
  // expired deadline cannot hang in a stage that ignores the budget.
  EXPECT_LT(elapsed, 10.0);
}

TEST(Solver, ExpiredDeadlineReportsDeadlineTruncation) {
  const ConstraintSet cs = hard_instance(40);
  SolveOptions opts;
  opts.exec.timeout_seconds = 1e-9;
  const SolveResult res = Solver(cs).encode(opts);
  EXPECT_EQ(res.status, SolveResult::Status::kTruncated);
  EXPECT_EQ(res.truncation, Truncation::kDeadline);
}

TEST(Solver, WorkBudgetTruncationIsThreadCountIndependent) {
  const ConstraintSet cs = hard_instance(14);
  for (int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    SolveOptions opts;
    opts.exec.threads = threads;
    opts.exec.max_work = 2000;  // tiny: trips during prime generation
    const SolveResult res = Solver(cs).encode(opts);
    EXPECT_EQ(res.status, SolveResult::Status::kTruncated);
    EXPECT_EQ(res.truncation, Truncation::kWorkBudget);
  }
}

TEST(Solver, PreCancelledTokenTruncatesImmediately) {
  const ConstraintSet cs = hard_instance(40);
  CancelToken token;
  token.cancel();
  SolveOptions opts;
  opts.exec.cancel = &token;
  const SolveResult res = Solver(cs).encode(opts);
  EXPECT_EQ(res.status, SolveResult::Status::kTruncated);
  EXPECT_EQ(res.truncation, Truncation::kCancelled);
}

TEST(Solver, MidSolveCancellationReturnsPromptly) {
  const ConstraintSet cs = hard_instance(40);
  CancelToken token;
  SolveOptions opts;
  opts.exec.cancel = &token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    token.cancel();
  });
  const SolveResult res = Solver(cs).encode(opts);
  canceller.join();
  EXPECT_EQ(res.status, SolveResult::Status::kTruncated);
  EXPECT_NE(res.truncation, Truncation::kNone);
}

TEST(Solver, StatsTreeRecordsPipelineStages) {
  const ConstraintSet cs = quickstart_constraints();
  const SolveResult res = Solver(cs).encode();
  ASSERT_TRUE(res.encoded());
  EXPECT_EQ(res.stats.name, "solve");
  EXPECT_NE(res.stats.find("prime_generation"), nullptr);
  EXPECT_NE(res.stats.find("unate_cover"), nullptr);
  const std::string json = res.stats.to_json();
  EXPECT_NE(json.find("\"name\":\"solve\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"prime_generation\""), std::string::npos);
}

TEST(Solver, ExtensionPipelineRoutesAutomatically) {
  ConstraintSet cs;
  cs.symbols().intern("a");
  cs.symbols().intern("b");
  cs.symbols().intern("c");
  cs.add_distance2("a", "b");
  const SolveResult res = Solver(cs).encode();
  ASSERT_TRUE(res.encoded());
  EXPECT_NE(res.stats.find("extensions"), nullptr);
  // Same constraints, same result through the direct entry point.
  const ExtensionEncodeResult direct =
      encode_with_extensions(cs, {}, ExecContext{});
  EXPECT_EQ(res.encoding.codes, direct.encoding.codes);
}

TEST(Solver, CoverBudgetTruncationIsNotInfeasible) {
  // A feasible distance-2 instance under a one-node cover budget: the
  // extension pipeline must surface kCoverLimit / kTruncated, never a
  // false infeasibility certificate.
  ConstraintSet cs;
  cs.symbols().intern("a");
  cs.symbols().intern("b");
  cs.symbols().intern("c");
  cs.symbols().intern("d");
  cs.add_distance2("a", "b");
  cs.add_distance2("c", "d");
  ExtensionEncodeOptions eopts;
  eopts.cover_options.max_nodes = 1;
  const ExtensionEncodeResult direct =
      encode_with_extensions(cs, eopts, ExecContext{});
  EXPECT_EQ(direct.status, ExtensionEncodeResult::Status::kCoverLimit);
  EXPECT_TRUE(direct.truncated);
  EXPECT_EQ(direct.truncation, Truncation::kNodeLimit);

  SolveOptions opts;
  opts.extensions.cover_options.max_nodes = 1;
  const SolveResult res = Solver(cs).encode(opts);
  EXPECT_EQ(res.status, SolveResult::Status::kTruncated);
  EXPECT_TRUE(res.truncated);
  EXPECT_EQ(res.truncation, Truncation::kNodeLimit);

  // With the default budget the same instance encodes.
  EXPECT_TRUE(Solver(cs).encode().encoded());
}

TEST(EncodeBatch, MatchesIndividualSolves) {
  std::vector<ConstraintSet> sets;
  sets.push_back(quickstart_constraints());
  const auto mixed = parse_constraints(read_data_file("mixed.constraints"), nullptr);
  ASSERT_TRUE(mixed.has_value());
  sets.push_back(*mixed);
  const auto infeasible = parse_constraints(read_data_file("infeasible.constraints"), nullptr);
  ASSERT_TRUE(infeasible.has_value());
  sets.push_back(*infeasible);
  sets.push_back(hard_instance(10));

  SolveOptions opts;
  opts.exec.threads = 4;
  const std::vector<SolveResult> batch = encode_batch(sets, opts);
  ASSERT_EQ(batch.size(), sets.size());
  SolveOptions single;
  single.exec.threads = 1;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    SCOPED_TRACE(i);
    expect_same_result(batch[i], Solver(sets[i]).encode(single));
  }
}

TEST(BoundedEncodeLengths, MatchesIndividualCalls) {
  const ConstraintSet cs = hard_instance(9);
  const std::vector<int> lengths{4, 5, 6};
  const auto batch = bounded_encode_lengths(cs, lengths, {}, /*threads=*/3);
  ASSERT_EQ(batch.size(), lengths.size());
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    SCOPED_TRACE(lengths[i]);
    const BoundedEncodeResult one = bounded_encode(cs, lengths[i]);
    EXPECT_EQ(batch[i].encoding.codes, one.encoding.codes);
    EXPECT_EQ(batch[i].cost.cubes, one.cost.cubes);
  }
}

TEST(BoundedEncode, ExpiredBudgetStillProducesValidCodes) {
  const ConstraintSet cs = hard_instance(12);
  Budget budget;
  budget.set_deadline_after(-1.0);
  StageStats stats("solve");
  const ExecContext ctx{&budget, &stats, 1};
  const BoundedEncodeResult res = bounded_encode(cs, 4, {}, ctx);
  EXPECT_EQ(res.truncation, Truncation::kDeadline);
  // Codes stay unique (the structurally safe selection).
  std::vector<std::uint64_t> codes = res.encoding.codes;
  std::sort(codes.begin(), codes.end());
  EXPECT_EQ(std::adjacent_find(codes.begin(), codes.end()), codes.end());
  const StageStats* stage = stats.find("bounded_encode");
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(stage->truncation, Truncation::kDeadline);
}

TEST(ParseConstraints, NonThrowingOverloadReportsLineNumbers) {
  ParseError err;
  const auto bad = parse_constraints("face a b\n\ndominance a\n", &err);
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(err.line, 3);
  EXPECT_EQ(err.column, 1);
  EXPECT_EQ(err.message, "dominance takes two names");
  EXPECT_EQ(err.to_string(), "line 3, col 1: dominance takes two names");

  const auto good = parse_constraints("face a b\n", &err);
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(good->num_symbols(), 2u);

  // Null error pointer is allowed.
  EXPECT_FALSE(parse_constraints("bogus x y\n", nullptr).has_value());
  // The throwing overload still throws with the same diagnostic.
  EXPECT_THROW(parse_constraints("bogus x y\n"), std::runtime_error);
}

TEST(UnateCover, IndependentComponentsSolvedInParallelMatchSequential) {
  // Three disjoint 3-cycles (cyclic cores: no essential columns, no
  // dominance) — the root decomposition must find 3 components and the
  // merged optimum must be identical for every thread count.
  UnateCoverProblem p;
  p.num_columns = 9;
  for (int block = 0; block < 3; ++block) {
    const std::size_t base = static_cast<std::size_t>(block) * 3;
    for (int r = 0; r < 3; ++r) {
      Bitset row(p.num_columns);
      row.set(base + static_cast<std::size_t>(r));
      row.set(base + static_cast<std::size_t>((r + 1) % 3));
      p.rows.push_back(row);
    }
  }
  const UnateCoverSolution seq = solve_unate_cover(p, {}, ExecContext{});
  const ExecContext par_ctx{nullptr, nullptr, 4};
  const UnateCoverSolution par = solve_unate_cover(p, {}, par_ctx);
  ASSERT_TRUE(seq.feasible);
  EXPECT_TRUE(seq.optimal);
  EXPECT_EQ(seq.cost, 6);  // 2 columns per 3-cycle
  EXPECT_EQ(seq.components, 3u);
  EXPECT_EQ(par.components, 3u);
  EXPECT_EQ(par.cost, seq.cost);
  EXPECT_EQ(par.columns, seq.columns);
  EXPECT_EQ(par.optimal, seq.optimal);
}

}  // namespace
}  // namespace encodesat
