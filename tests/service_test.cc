// Tests for the solve service (src/service/) and its foundations: the JSON
// parser, the NDJSON protocol codec, the single-flight table, the broker's
// admission / deadline / drain semantics, and the pipe-mode server end to
// end (including SIGTERM-style drain with a cache flush).
//
// Concurrency assertions here are interleaving-independent: the coalescing
// stress pins `misses == 1` and `hits + coalesced == N - 1` (which split
// depends on scheduling) and bit-identity against fresh solo solves, never
// "coalesced > 0".
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/canonical.h"
#include "cache/inflight.h"
#include "cache/solve_cache.h"
#include "core/solver.h"
#include "obs/counters.h"
#include "obs/reqlog.h"
#include "obs/window.h"
#include "service/broker.h"
#include "service/json.h"
#include "service/protocol.h"
#include "service/server.h"

namespace encodesat {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(ServiceJson, ParsesScalarsAndContainers) {
  JsonValue v;
  ASSERT_TRUE(json_parse(R"({"a":1.5,"b":[true,false,null],"s":"x"})", &v));
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.find("a")->number, 1.5);
  ASSERT_EQ(v.find("b")->array.size(), 3u);
  EXPECT_TRUE(v.find("b")->array[0].boolean);
  EXPECT_TRUE(v.find("b")->array[2].is_null());
  EXPECT_EQ(v.find("s")->str, "x");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ServiceJson, DecodesEscapesAndSurrogatePairs) {
  JsonValue v;
  ASSERT_TRUE(json_parse(R"("a\n\t\"\\\u0041\u00e9\ud83d\ude00")", &v));
  EXPECT_EQ(v.str, "a\n\t\"\\A\xC3\xA9\xF0\x9F\x98\x80");
}

TEST(ServiceJson, RejectsMalformedInput) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(json_parse("", &v, &err));
  EXPECT_FALSE(json_parse("{\"a\":}", &v, &err));
  EXPECT_FALSE(json_parse("{\"a\":1} extra", &v, &err));
  EXPECT_FALSE(json_parse("\"unterminated", &v, &err));
  EXPECT_FALSE(json_parse("\"\\ud800\"", &v, &err));  // unpaired surrogate
  std::string deep(200, '[');
  EXPECT_FALSE(json_parse(deep, &v, &err));
  EXPECT_NE(err.find("offset"), std::string::npos);
}

TEST(ServiceJson, EscapeRoundTripsThroughParser) {
  const std::string raw = "line1\nline2\t\"quoted\" \\ \x01";
  JsonValue v;
  ASSERT_TRUE(json_parse("\"" + json_escape(raw) + "\"", &v));
  EXPECT_EQ(v.str, raw);
}

// ------------------------------------------------------------ protocol --

TEST(ServiceProtocol, ParsesSolveRequestWithOptions) {
  WireRequest req;
  std::string err;
  ASSERT_TRUE(parse_request(
      R"({"id":"r1","constraints":"face a b\n","deadline_s":2.5,)"
      R"("options":{"pipeline":"exact","max_work":100,"threads":2}})",
      &req, &err))
      << err;
  EXPECT_EQ(req.op, WireRequest::Op::kSolve);
  EXPECT_EQ(req.id, "r1");
  EXPECT_EQ(req.constraints, "face a b\n");
  EXPECT_DOUBLE_EQ(req.deadline_seconds, 2.5);
  EXPECT_EQ(req.pipeline, "exact");
  EXPECT_EQ(req.max_work, 100u);
  EXPECT_EQ(req.threads, 2);

  SolveOptions opts;
  ASSERT_TRUE(apply_wire_options(req, &opts));
  EXPECT_EQ(opts.pipeline, SolveOptions::Pipeline::kExact);
  EXPECT_EQ(opts.exec.max_work, 100u);
  EXPECT_EQ(opts.exec.threads, 2);
}

TEST(ServiceProtocol, ParsesStatsOpAndRejectsBadRequests) {
  WireRequest req;
  std::string err;
  ASSERT_TRUE(parse_request(R"({"id":"s","op":"stats"})", &req, &err));
  EXPECT_EQ(req.op, WireRequest::Op::kStats);

  EXPECT_FALSE(parse_request("[1,2]", &req, &err));
  EXPECT_FALSE(parse_request(R"({"id":7,"constraints":"x"})", &req, &err));
  EXPECT_FALSE(parse_request(R"({"id":"a","op":"frobnicate"})", &req, &err));
  EXPECT_FALSE(parse_request(R"({"id":"a"})", &req, &err))
      << "solve without constraints";
  EXPECT_EQ(req.id, "a") << "id recovered for the error response";
  EXPECT_FALSE(parse_request(
      R"({"id":"a","constraints":"x","deadline_s":-1})", &req, &err));

  WireRequest bad;
  bad.pipeline = "warp";
  SolveOptions opts;
  EXPECT_FALSE(apply_wire_options(bad, &opts));
}

TEST(ServiceProtocol, RejectsOutOfRangeNumericFields) {
  // Casting an out-of-range double to int/uint64 is UB, and a huge
  // deadline overflows steady_clock duration math — all three numeric
  // wire fields must bounce at parse time, before any cast.
  WireRequest req;
  std::string err;
  EXPECT_FALSE(parse_request(
      R"({"id":"a","constraints":"x","options":{"threads":1e18}})", &req,
      &err));
  EXPECT_NE(err.find("threads"), std::string::npos) << err;
  EXPECT_FALSE(parse_request(
      R"({"id":"a","constraints":"x","options":{"max_work":1e20}})", &req,
      &err));
  EXPECT_FALSE(parse_request(
      R"({"id":"a","constraints":"x","deadline_s":1e12})", &req, &err));
  // In-range values (including the documented maxima) still parse.
  ASSERT_TRUE(parse_request(
      R"({"id":"a","constraints":"x","deadline_s":1e9,)"
      R"("options":{"threads":4096,"max_work":1e18}})",
      &req, &err))
      << err;
  EXPECT_EQ(req.threads, 4096);
  EXPECT_EQ(req.max_work, 1000000000000000000u);
}

TEST(ServiceProtocol, RendersEveryStatusShape) {
  ConstraintSet cs = parse_constraints("face a b c\ndominance a b\n");
  SolveResponse ok;
  ok.id = "r1";
  ok.result = Solver(cs).encode({});
  ok.status = status_from_result(ok.result);
  const std::string line = render_response(ok, &cs.symbols());
  EXPECT_NE(line.find("\"id\":\"r1\""), std::string::npos);
  EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(line.find("\"codes\":{\"a\":\""), std::string::npos);

  SolveResponse parse_err;
  parse_err.id = "p";
  parse_err.status = StatusCode::kParseError;
  parse_err.parse_error = ParseError{3, 7, "bad token"};
  EXPECT_EQ(render_response(parse_err, nullptr),
            R"({"id":"p","status":"parse_error",)"
            R"("error":{"message":"bad token","line":3,"col":7}})");

  SolveResponse timeout;
  timeout.id = "t";
  timeout.status = StatusCode::kTimeout;
  timeout.result.truncation = Truncation::kDeadline;
  EXPECT_EQ(render_response(timeout, nullptr),
            R"({"id":"t","status":"timeout","truncation":"deadline"})");

  EXPECT_EQ(render_error_response("o", StatusCode::kOverloaded, "queue full"),
            R"({"id":"o","status":"overloaded",)"
            R"("error":{"message":"queue full"}})");
}

TEST(ServiceProtocol, StatusCodeNamesRoundTrip) {
  for (const StatusCode c :
       {StatusCode::kOk, StatusCode::kParseError, StatusCode::kInfeasible,
        StatusCode::kTimeout, StatusCode::kOverloaded, StatusCode::kCanceled,
        StatusCode::kInternal}) {
    StatusCode back = StatusCode::kOk;
    ASSERT_TRUE(status_code_from_name(status_code_name(c), &back));
    EXPECT_EQ(back, c);
  }
  StatusCode out;
  EXPECT_FALSE(status_code_from_name("bogus", &out));
}

// ------------------------------------------------------ in-flight table --

TEST(ServiceInFlight, LeaderFollowersAndLateHitDeterministic) {
  SolveCache cache;
  InFlightTable table;
  const std::string key = "k#0";

  CachedSolve hit;
  std::shared_ptr<InFlightTable::Slot> leader, f1, f2;
  ASSERT_EQ(table.join(&cache, key, &hit, &leader),
            InFlightTable::Join::kLeader);
  ASSERT_EQ(table.join(&cache, key, &hit, &f1),
            InFlightTable::Join::kFollower);
  ASSERT_EQ(table.join(&cache, key, &hit, &f2),
            InFlightTable::Join::kFollower);

  CachedSolve value;
  value.status = 0;
  value.bits = 2;
  value.codes = {0, 1, 3};
  table.publish(&cache, key, leader, value);

  CachedSolve got;
  ASSERT_TRUE(f1->wait(false, {}, &got));
  EXPECT_EQ(got.codes, value.codes);
  ASSERT_TRUE(f2->wait(false, {}, &got));
  EXPECT_EQ(got.bits, 2);

  // After publish the key is out of the table and in the cache: a late
  // arrival is a plain hit.
  std::shared_ptr<InFlightTable::Slot> late;
  EXPECT_EQ(table.join(&cache, key, &hit, &late), InFlightTable::Join::kHit);
  EXPECT_EQ(hit.codes, value.codes);

  const CoalesceStats s = table.stats();
  EXPECT_EQ(s.leaders, 1u);
  EXPECT_EQ(s.coalesced, 2u);
  EXPECT_EQ(s.abandoned, 0u);
  EXPECT_EQ(s.in_flight, 0u);
  // The accounting invariant: every join is exactly one of hit / leader /
  // follower.
  const CacheStats cstats = cache.stats();
  EXPECT_EQ(cstats.misses + s.coalesced + cstats.hits, 4u);
}

TEST(ServiceInFlight, AbandonWakesFollowersEmptyHanded) {
  InFlightTable table;
  CachedSolve hit;
  std::shared_ptr<InFlightTable::Slot> leader, follower;
  ASSERT_EQ(table.join(nullptr, "k", &hit, &leader),
            InFlightTable::Join::kLeader);
  ASSERT_EQ(table.join(nullptr, "k", &hit, &follower),
            InFlightTable::Join::kFollower);
  table.abandon("k", leader);
  CachedSolve got;
  EXPECT_FALSE(follower->wait(false, {}, &got));
  EXPECT_TRUE(follower->abandoned());
  EXPECT_EQ(table.stats().abandoned, 1u);
}

TEST(ServiceInFlight, FollowerDeadlineExpiresWhileWaiting) {
  InFlightTable table;
  CachedSolve hit;
  std::shared_ptr<InFlightTable::Slot> leader, follower;
  ASSERT_EQ(table.join(nullptr, "k", &hit, &leader),
            InFlightTable::Join::kLeader);
  ASSERT_EQ(table.join(nullptr, "k", &hit, &follower),
            InFlightTable::Join::kFollower);
  CachedSolve got;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  EXPECT_FALSE(follower->wait(true, deadline, &got));
  EXPECT_FALSE(follower->abandoned()) << "expiry, not abandonment";
  table.abandon("k", leader);
}

// -------------------------------------------------- coalescing (facade) --

ConstraintSet stress_instance() {
  // The paper's Figure 8 instance (examples/data/mixed.constraints):
  // encodable in 2 bits. Only 4 symbols, so with 8 threads rotations
  // repeat — duplicate requests are exactly what the single-flight path
  // must also serve correctly.
  return parse_constraints(
      "face s0 s1\n"
      "dominance s0 s1\n"
      "dominance s1 s2\n"
      "disjunctive s0 s1 s3\n");
}

TEST(ServiceCoalescing, NThreadsSameInstanceOneMissBitIdentical) {
  const ConstraintSet base = stress_instance();
  const std::uint32_t n = base.num_symbols();
  constexpr int kThreads = 8;

  // Rotation r: symbol i -> (i + r) mod n. Same canonical instance, so
  // all requests share one cache key; each response must come back in its
  // own symbol order.
  std::vector<ConstraintSet> instances;
  std::vector<SolveResult> fresh;
  for (int r = 0; r < kThreads; ++r) {
    std::vector<std::uint32_t> rot(n);
    for (std::uint32_t i = 0; i < n; ++i)
      rot[i] = (i + static_cast<std::uint32_t>(r)) % n;
    instances.push_back(apply_symbol_permutation(base, rot));
    // Baseline: a solo single-threaded solve of the same request down the
    // same canonicalizing (cache-enabled) path, with a private cold cache
    // — exactly what the request would get with no concurrency around.
    SolveCache solo;
    SolveOptions solo_opts;
    solo_opts.cache.store = &solo;
    fresh.push_back(Solver(instances.back()).encode(solo_opts));
    ASSERT_TRUE(fresh.back().encoded());
  }

  SolveCache cache;
  InFlightTable table;
  MetricsRegistry metrics;
  std::vector<SolveResult> got(kThreads);
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kThreads; ++r)
    threads.emplace_back([&, r] {
      // Crude start barrier to maximize in-flight overlap; the assertions
      // below hold for any interleaving.
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      SolveOptions opts;
      opts.cache.store = &cache;
      opts.cache.single_flight = &table;
      opts.exec.metrics = &metrics;
      got[r] = Solver(instances[r]).encode(opts);
    });
  for (std::thread& t : threads) t.join();

  const CacheStats cs = cache.stats();
  const CoalesceStats ts = table.stats();
  EXPECT_EQ(cs.misses, 1u) << "exactly one request pays the solve";
  EXPECT_EQ(ts.leaders, 1u);
  EXPECT_EQ(cs.hits + ts.coalesced, static_cast<std::uint64_t>(kThreads - 1));
  // The metric-level accounting is exact: every solve lands in exactly
  // one of the four buckets, under any interleaving.
  const std::uint64_t bucketed =
      metrics.counter("cache.hits", false)->value() +
      metrics.counter("cache.misses", false)->value() +
      metrics.counter("cache.coalesced", false)->value() +
      metrics.counter("cache.wait_expired", false)->value();
  EXPECT_EQ(bucketed, static_cast<std::uint64_t>(kThreads));

  for (int r = 0; r < kThreads; ++r) {
    EXPECT_EQ(got[r].encoding.bits, fresh[r].encoding.bits);
    EXPECT_EQ(got[r].encoding.codes, fresh[r].encoding.codes)
        << "rotation " << r << " must be bit-identical to its solo solve";
    EXPECT_EQ(got[r].minimal, fresh[r].minimal);
  }
  // Exactly one request did the solve fresh; the rest were served.
  int served = 0;
  for (const SolveResult& r : got) served += (r.from_cache || r.coalesced);
  EXPECT_EQ(served, kThreads - 1);
}

TEST(ServiceCoalescing, TruncatedLeaderNeverPublishesToFollowers) {
  // A leader whose own budget truncates its result must abandon, not
  // publish: a coalesced response is contractually bit-identical to a
  // fresh solo solve of that request, and followers may hold bigger
  // budgets (deadlines are excluded from the coalescing key). Every
  // request here truncates deterministically (max_work=1), so whatever
  // the interleaving — leader, follower-fallback, or no overlap at all —
  // each response must equal its own solo solve, nothing may land in the
  // cache, and every solve must count as a miss (a fallback re-runs the
  // pipeline itself).
  const ConstraintSet base = stress_instance();
  constexpr int kThreads = 4;

  SolveOptions truncating;
  truncating.exec.max_work = 1;  // deterministic work-budget truncation

  std::vector<SolveResult> fresh;
  for (int r = 0; r < kThreads; ++r) {
    SolveCache solo;
    SolveOptions solo_opts = truncating;
    solo_opts.cache.store = &solo;
    fresh.push_back(Solver(base).encode(solo_opts));
    EXPECT_TRUE(fresh.back().truncated);
    EXPECT_EQ(solo.stats().entries, 0u) << "truncated results never cached";
  }

  SolveCache cache;
  InFlightTable table;
  MetricsRegistry metrics;
  std::vector<SolveResult> got(kThreads);
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kThreads; ++r)
    threads.emplace_back([&, r] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      SolveOptions opts = truncating;
      opts.cache.store = &cache;
      opts.cache.single_flight = &table;
      opts.exec.metrics = &metrics;
      got[r] = Solver(base).encode(opts);
    });
  for (std::thread& t : threads) t.join();

  for (int r = 0; r < kThreads; ++r) {
    EXPECT_FALSE(got[r].coalesced)
        << "a truncated result must never be served coalesced";
    EXPECT_FALSE(got[r].from_cache);
    EXPECT_EQ(got[r].status, fresh[r].status);
    EXPECT_EQ(got[r].truncation, fresh[r].truncation);
    EXPECT_EQ(got[r].encoding.codes, fresh[r].encoding.codes)
        << "request " << r << " must match its solo solve";
  }
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(metrics.counter("cache.misses", false)->value(),
            static_cast<std::uint64_t>(kThreads))
      << "leaders and abandon-fallbacks all ran the pipeline";
  EXPECT_EQ(metrics.counter("cache.hits", false)->value(), 0u);
  EXPECT_EQ(metrics.counter("cache.coalesced", false)->value(), 0u);
}

TEST(ServiceCoalescing, SingleFlightWorksWithoutCache) {
  // BrokerConfig documents "null [cache] runs uncached (coalescing still
  // applies)": with only a single-flight table wired, the solve must
  // still go through join()/publish() — and return the same bits as the
  // cache-enabled path (both solve the canonical instance and permute
  // back).
  const ConstraintSet base = stress_instance();
  SolveCache solo;
  SolveOptions cached_opts;
  cached_opts.cache.store = &solo;
  const SolveResult reference = Solver(base).encode(cached_opts);
  ASSERT_TRUE(reference.encoded());

  InFlightTable table;
  SolveOptions opts;
  opts.cache.single_flight = &table;  // no cache anywhere
  const SolveResult got = Solver(base).encode(opts);
  ASSERT_TRUE(got.encoded());
  EXPECT_EQ(got.encoding.codes, reference.encoding.codes);
  const CoalesceStats ts = table.stats();
  EXPECT_EQ(ts.leaders, 1u) << "the uncached solve joined the table";
  EXPECT_EQ(ts.in_flight, 0u) << "and published (released its slot)";
}

// --------------------------------------------------------------- broker --

// A latch-controlled gate: solve_fn lambdas built on it block each call
// until release(), letting the tests park a worker deterministically.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::atomic<int> entered{0};

  void release() {
    std::lock_guard<std::mutex> lock(mu);
    open = true;
    cv.notify_all();
  }
  void wait_open() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return open; });
  }
  void wait_entered(int count) {
    while (entered.load() < count) std::this_thread::yield();
  }
};

struct Collected {
  std::mutex mu;
  std::vector<SolveResponse> responses;

  Broker::Callback collector() {
    return [this](SolveResponse resp) {
      std::lock_guard<std::mutex> lock(mu);
      responses.push_back(std::move(resp));
    };
  }
  const SolveResponse* find(const std::string& id) {
    std::lock_guard<std::mutex> lock(mu);
    for (const SolveResponse& r : responses)
      if (r.id == id) return &r;
    return nullptr;
  }
};

SolveRequest named_request(const std::string& id) {
  SolveRequest req;
  req.id = id;
  return req;
}

TEST(ServiceBroker, AdmissionControlRejectsInlineWhenQueueFull) {
  Gate gate;
  MetricsRegistry metrics;
  BrokerConfig cfg;
  cfg.workers = 1;
  cfg.max_queue = 1;
  cfg.metrics = &metrics;
  cfg.solve_fn = [&](const SolveRequest& req) {
    gate.entered.fetch_add(1);
    gate.wait_open();
    SolveResponse resp;
    resp.id = req.id;
    resp.status = StatusCode::kOk;
    return resp;
  };
  Broker broker(cfg);
  Collected out;

  EXPECT_TRUE(broker.submit(named_request("inflight"), out.collector()));
  gate.wait_entered(1);  // worker parked inside the solve
  EXPECT_TRUE(broker.submit(named_request("queued"), out.collector()));
  EXPECT_FALSE(broker.submit(named_request("rejected"), out.collector()))
      << "queue holds max_queue=1, third submit must bounce";
  const SolveResponse* rej = out.find("rejected");
  ASSERT_NE(rej, nullptr) << "rejection callback fires inline";
  EXPECT_EQ(rej->status, StatusCode::kOverloaded);
  EXPECT_EQ(rej->detail, "queue full");

  gate.release();
  broker.drain(DrainMode::kFinishQueued);
  EXPECT_EQ(out.find("inflight")->status, StatusCode::kOk);
  EXPECT_EQ(out.find("queued")->status, StatusCode::kOk);
  EXPECT_EQ(metrics.counter("service.accepted", false)->value(), 2u);
  EXPECT_EQ(metrics.counter("service.rejected_overload", false)->value(), 1u);
  EXPECT_FALSE(broker.submit(named_request("late"), out.collector()))
      << "post-drain submits are rejected";
}

TEST(ServiceBroker, DeadlineExpiresWhileQueued) {
  Gate gate;
  MetricsRegistry metrics;
  std::atomic<int> victim_solved{0};
  BrokerConfig cfg;
  cfg.workers = 1;
  cfg.metrics = &metrics;
  cfg.solve_fn = [&](const SolveRequest& req) {
    if (req.id == "victim") victim_solved.fetch_add(1);
    gate.entered.fetch_add(1);
    gate.wait_open();
    SolveResponse resp;
    resp.id = req.id;
    resp.status = StatusCode::kOk;
    return resp;
  };
  Broker broker(cfg);
  Collected out;

  EXPECT_TRUE(broker.submit(named_request("blocker"), out.collector()));
  gate.wait_entered(1);
  SolveRequest victim = named_request("victim");
  victim.deadline_seconds = 0.02;  // expires while the blocker holds the
                                   // only worker
  EXPECT_TRUE(broker.submit(std::move(victim), out.collector()));
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  gate.release();
  broker.drain(DrainMode::kFinishQueued);

  const SolveResponse* v = out.find("victim");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->status, StatusCode::kTimeout);
  EXPECT_EQ(v->result.truncation, Truncation::kDeadline);
  EXPECT_EQ(victim_solved.load(), 0) << "expired requests never solve";
  EXPECT_EQ(out.find("blocker")->status, StatusCode::kOk);
  EXPECT_GE(metrics.counter("service.deadline_expired", false)->value(), 1u);
}

TEST(ServiceBroker, SigtermStyleDrainFinishesInFlightRejectsQueued) {
  Gate gate;
  MetricsRegistry metrics;
  BrokerConfig cfg;
  cfg.workers = 1;
  cfg.max_queue = 0;  // probes below must only ever bounce off the drain
  cfg.metrics = &metrics;
  cfg.solve_fn = [&](const SolveRequest& req) {
    gate.entered.fetch_add(1);
    gate.wait_open();
    SolveResponse resp;
    resp.id = req.id;
    resp.status = StatusCode::kOk;
    return resp;
  };
  Broker broker(cfg);
  Collected out;

  EXPECT_TRUE(broker.submit(named_request("inflight"), out.collector()));
  gate.wait_entered(1);
  EXPECT_TRUE(broker.submit(named_request("queued"), out.collector()));

  std::thread drainer([&] { broker.drain(DrainMode::kRejectQueued); });
  // Hold the in-flight solve until the drain has provably closed admission
  // (a probe submit bounces); otherwise the freed worker could dequeue
  // "queued" before the drain flag is set. Probes accepted before that
  // land in the queue and are drained like "queued".
  Collected probes;
  while (broker.submit(named_request("probe"), probes.collector()))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  gate.release();
  drainer.join();

  EXPECT_EQ(out.find("inflight")->status, StatusCode::kOk);
  const SolveResponse* q = out.find("queued");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->status, StatusCode::kOverloaded);
  EXPECT_EQ(q->detail, "server draining");
  // "queued" plus any accepted probes; at least the one real request.
  EXPECT_GE(metrics.counter("service.drained", false)->value(), 1u);
}

// --------------------------------------------------------- pipe server --

struct PipePair {
  int fds[2] = {-1, -1};
  PipePair() { EXPECT_EQ(::pipe(fds), 0); }
  ~PipePair() {
    for (const int fd : fds)
      if (fd >= 0) ::close(fd);
  }
  int read_end() const { return fds[0]; }
  int write_end() const { return fds[1]; }
  void close_write() {
    ::close(fds[1]);
    fds[1] = -1;
  }
};

void write_str(int fd, const std::string& s) {
  ASSERT_EQ(::write(fd, s.data(), s.size()),
            static_cast<ssize_t>(s.size()));
}

std::string read_all(int fd) {
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof buf)) > 0)
    out.append(buf, static_cast<std::size_t>(n));
  return out;
}

TEST(ServiceServer, PipeModeAnswersInOrderAndDrainsOnEof) {
  PipePair req_pipe, resp_pipe;
  MetricsRegistry metrics;
  SolveCache cache;
  ServerConfig cfg;
  cfg.broker.workers = 4;
  cfg.broker.cache = &cache;
  cfg.broker.metrics = &metrics;
  cfg.metrics = &metrics;
  Server server(cfg);

  std::thread serving([&] {
    EXPECT_EQ(server.run_pipe(req_pipe.read_end(), resp_pipe.write_end()), 0);
    ::close(resp_pipe.fds[1]);
    resp_pipe.fds[1] = -1;
  });
  write_str(req_pipe.write_end(),
            "{\"id\":\"r1\",\"constraints\":\"face a b c\\ndominance a b\"}\n"
            "\n"  // blank lines are skipped
            "{\"id\":\"r2\",\"constraints\":\"dominance a\"}\n"
            "{\"id\":\"r3\",\"constraints\":\"face a b c\\ndominance a b\"}\n"
            "{\"id\":\"r4\",\"constraints\":\"face x y\\nface y z\\n"
            "dominance x z\"}");  // no trailing newline: still a request
  req_pipe.close_write();
  const std::string out = read_all(resp_pipe.read_end());
  serving.join();

  std::vector<std::string> lines;
  for (std::size_t start = 0; start < out.size();) {
    const std::size_t nl = out.find('\n', start);
    lines.push_back(out.substr(start, nl - start));
    if (nl == std::string::npos) break;
    start = nl + 1;
  }
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  ASSERT_EQ(lines.size(), 4u) << out;
  EXPECT_NE(lines[0].find("\"id\":\"r1\",\"status\":\"ok\""),
            std::string::npos)
      << lines[0];
  EXPECT_NE(lines[1].find("\"id\":\"r2\",\"status\":\"parse_error\""),
            std::string::npos)
      << lines[1];
  EXPECT_NE(lines[1].find("\"line\":1"), std::string::npos);
  EXPECT_NE(lines[2].find("\"id\":\"r3\",\"status\":\"ok\""),
            std::string::npos);
  EXPECT_NE(lines[3].find("\"id\":\"r4\",\"status\":\"ok\""),
            std::string::npos);
  // r1 and r3 are the same instance: the shared cache (or single-flight
  // coalescing, depending on timing) must serve one of them.
  const CacheStats cs = cache.stats();
  const CoalesceStats ts = server.broker().single_flight().stats();
  EXPECT_EQ(cs.misses + ts.coalesced + cs.hits, 3u);
  EXPECT_EQ(cs.misses, 2u) << "r1/r3 share a key; r4 is distinct";
  // Identical requests must render byte-identically regardless of which
  // was coalesced/cached.
  EXPECT_EQ(lines[0].substr(lines[0].find("\"status\"")),
            lines[2].substr(lines[2].find("\"status\"")));
}

TEST(ServiceServer, SigtermDrainsInFlightCompletesQueuedRejectedCacheFlushed) {
  PipePair req_pipe, resp_pipe;
  Gate gate;
  MetricsRegistry metrics;
  SolveCache cache;
  ServerConfig cfg;
  cfg.broker.workers = 1;
  cfg.broker.max_queue = 0;  // unbounded: probes below must never see
                             // "queue full", only "server draining"
  cfg.broker.cache = &cache;
  cfg.broker.metrics = &metrics;
  cfg.metrics = &metrics;
  // Gate the real solve: the test controls exactly when the in-flight
  // request finishes, and the solve still populates the shared cache.
  cfg.broker.solve_fn = [&](const SolveRequest& req) {
    gate.entered.fetch_add(1);
    gate.wait_open();
    return solve(req);
  };
  Server server(cfg);
  ScopedDrainSignals signals(&server);

  std::thread serving([&] {
    EXPECT_EQ(server.run_pipe(req_pipe.read_end(), resp_pipe.write_end()), 0);
    ::close(resp_pipe.fds[1]);
    resp_pipe.fds[1] = -1;
  });
  write_str(req_pipe.write_end(),
            "{\"id\":\"inflight\",\"constraints\":"
            "\"face a b c\\ndominance a b\"}\n"
            "{\"id\":\"queued\",\"constraints\":\"face x y\"}\n");
  gate.wait_entered(1);  // first request is on the worker; both lines were
                         // one atomic pipe write, so "queued" is submitted
  ASSERT_EQ(::kill(::getpid(), SIGTERM), 0);
  // The signal path (handler -> self-pipe -> poll -> drain) is
  // asynchronous; hold the in-flight solve until admission has provably
  // closed, so "queued" cannot sneak onto the freed worker. Probes
  // accepted before that land in the queue and are drained like "queued".
  Collected probes;
  while (server.broker().submit(named_request("probe"), probes.collector()))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  gate.release();
  const std::string out = read_all(resp_pipe.read_end());
  serving.join();

  EXPECT_NE(out.find("\"id\":\"inflight\",\"status\":\"ok\""),
            std::string::npos)
      << "in-flight request completes during drain: " << out;
  EXPECT_NE(out.find("\"id\":\"queued\",\"status\":\"overloaded\""),
            std::string::npos)
      << "queued request is rejected by the drain: " << out;
  // "queued" plus any accepted probes; at least the one real request.
  EXPECT_GE(metrics.counter("service.drained", false)->value(), 1u);

  // After run_pipe returned the broker is quiescent: the cache flush the
  // CLI does with --cache-save sees the in-flight solve's entry.
  const std::string path =
      (std::filesystem::temp_directory_path() / "service_drain_cache.txt")
          .string();
  std::string err;
  ASSERT_TRUE(cache.save(path, &err)) << err;
  SolveCache reloaded;
  ASSERT_TRUE(reloaded.load(path, &err)) << err;
  EXPECT_EQ(reloaded.stats().entries, 1u);
  std::remove(path.c_str());
}

TEST(ServiceServer, StalledClientDoesNotWedgeWorkersOrDrain) {
  // A client that stops reading (full pipe buffer) must not block a
  // broker worker forever inside a response write — that worker would
  // never be joined and drain would hang. With a write stall budget the
  // session goes dead, output is discarded, and run_pipe still returns.
  PipePair req_pipe, resp_pipe;
#ifdef F_SETPIPE_SZ
  // Shrink the response pipe to one page so a handful of responses fill
  // it; without the fcntl the default 64 KiB buffer would need far more.
  if (::fcntl(resp_pipe.write_end(), F_SETPIPE_SZ, 4096) < 0)
    GTEST_SKIP() << "cannot shrink pipe buffer";
#else
  GTEST_SKIP() << "F_SETPIPE_SZ unavailable";
#endif
  SolveCache cache;
  ServerConfig cfg;
  cfg.broker.workers = 2;
  cfg.broker.cache = &cache;
  cfg.write_timeout_ms = 50;
  Server server(cfg);

  std::thread serving([&] {
    EXPECT_EQ(server.run_pipe(req_pipe.read_end(), resp_pipe.write_end()), 0);
  });
  // ~120 responses at ~100 bytes each overflow the 4 KiB pipe many times
  // over while the test deliberately never reads the other end.
  std::string requests;
  for (int i = 0; i < 120; ++i)
    requests += "{\"id\":\"r" + std::to_string(i) +
                "\",\"constraints\":\"face a b c\\ndominance a b\"}\n";
  write_str(req_pipe.write_end(), requests);
  req_pipe.close_write();  // EOF: drain kFinishQueued
  // The only assertion that matters: the server comes back at all (the
  // test would time out if a worker wedged on the stalled write).
  serving.join();
}

// ----------------------------------------------------- telemetry ops ----

// Reads one newline-terminated response from the pipe (the server flushes
// per line, so byte-at-a-time is fine for a test).
std::string read_line(int fd) {
  std::string out;
  char c;
  while (::read(fd, &c, 1) == 1) {
    if (c == '\n') break;
    out.push_back(c);
  }
  return out;
}

TEST(ServiceServer, MetricsHealthAndStatsOpsExposeLiveTelemetry) {
  PipePair req_pipe, resp_pipe;
  MetricsRegistry metrics;
  SolveCache cache;
  RollingWindow window;
  ServerConfig cfg;
  cfg.broker.workers = 2;
  cfg.broker.cache = &cache;
  cfg.broker.metrics = &metrics;
  cfg.broker.window = &window;
  cfg.metrics = &metrics;
  cfg.window = &window;
  Server server(cfg);

  std::thread serving([&] {
    EXPECT_EQ(server.run_pipe(req_pipe.read_end(), resp_pipe.write_end()), 0);
    ::close(resp_pipe.fds[1]);
    resp_pipe.fds[1] = -1;
  });
  // Complete one solve before scraping: the broker observes its latency
  // histograms before delivering the response, so reading the response
  // guarantees the scrape sees count >= 1.
  write_str(req_pipe.write_end(),
            "{\"id\":\"r1\",\"constraints\":\"face a b c\\ndominance a b\"}\n");
  const std::string solve_line = read_line(resp_pipe.read_end());
  ASSERT_NE(solve_line.find("\"id\":\"r1\",\"status\":\"ok\""),
            std::string::npos)
      << solve_line;
  write_str(req_pipe.write_end(),
            "{\"id\":\"m1\",\"op\":\"metrics\"}\n"
            "{\"id\":\"s1\",\"op\":\"stats\"}\n"
            "{\"id\":\"h1\",\"op\":\"health\"}\n");
  req_pipe.close_write();
  const std::string rest = read_all(resp_pipe.read_end());
  serving.join();

  std::vector<std::string> lines;
  for (std::size_t start = 0; start < rest.size();) {
    const std::size_t nl = rest.find('\n', start);
    lines.push_back(rest.substr(start, nl - start));
    if (nl == std::string::npos) break;
    start = nl + 1;
  }
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  ASSERT_EQ(lines.size(), 3u) << rest;

  // metrics: Prometheus exposition embedded as a JSON string. The solve's
  // latency histogram has exactly one observation, and the +Inf bucket of
  // a cumulative series always equals _count.
  const std::string& m = lines[0];
  EXPECT_NE(m.find("\"id\":\"m1\",\"status\":\"ok\",\"metrics\":\""),
            std::string::npos)
      << m;
  EXPECT_NE(m.find("# TYPE encodesat_service_latency_total histogram"),
            std::string::npos)
      << m;
  EXPECT_NE(m.find("encodesat_service_latency_total_count 1"),
            std::string::npos)
      << m;
  EXPECT_NE(m.find("encodesat_service_latency_total_bucket{le="),
            std::string::npos)
      << m;
  EXPECT_NE(m.find("encodesat_service_queue_depth 0"), std::string::npos)
      << m;
  EXPECT_NE(m.find("encodesat_service_window_1m_rate"), std::string::npos)
      << m;

  // stats: the v2 telemetry JSON with the same live gauges (the staleness
  // fix — both scrape ops are built from one view).
  const std::string& s = lines[1];
  EXPECT_NE(s.find("\"id\":\"s1\",\"status\":\"ok\""), std::string::npos) << s;
  EXPECT_NE(s.find("encodesat-telemetry-v2"), std::string::npos) << s;
  EXPECT_NE(s.find("\"service.queue_depth\":0"), std::string::npos) << s;
  EXPECT_NE(s.find("\"service.in_flight\":0"), std::string::npos) << s;
  EXPECT_NE(s.find("\"service.window.1m.rate\":"), std::string::npos) << s;
  EXPECT_NE(s.find("\"service.latency.total\":{\"count\":1"),
            std::string::npos)
      << s;

  // health: serving state with live worker counts.
  const std::string& h = lines[2];
  EXPECT_NE(h.find("\"id\":\"h1\",\"status\":\"ok\",\"health\":{"
                   "\"state\":\"serving\""),
            std::string::npos)
      << h;
  EXPECT_NE(h.find("\"queue_depth\":0"), std::string::npos) << h;
  EXPECT_NE(h.find("\"workers\":2"), std::string::npos) << h;
  EXPECT_NE(h.find("\"workers_alive\":2"), std::string::npos) << h;
  EXPECT_NE(h.find("\"uptime_us\":"), std::string::npos) << h;

  // The window recorded the solve.
  EXPECT_EQ(window.stats(server.broker().now_us(), 0).count, 1u);
}

TEST(ServiceProtocol, ParsesMetricsAndHealthOps) {
  WireRequest wire;
  std::string err;
  ASSERT_TRUE(parse_request("{\"id\":\"m\",\"op\":\"metrics\"}", &wire, &err))
      << err;
  EXPECT_EQ(wire.op, WireRequest::Op::kMetrics);
  ASSERT_TRUE(parse_request("{\"id\":\"h\",\"op\":\"health\"}", &wire, &err))
      << err;
  EXPECT_EQ(wire.op, WireRequest::Op::kHealth);
}

TEST(ServiceBroker, RequestLogRecordsDispositionsAndLatencies) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "broker_reqlog_test.ndjson")
          .string();
  std::remove(path.c_str());
  {
    ReqLogConfig lcfg;
    lcfg.path = path;
    RequestLog reqlog(lcfg);
    ASSERT_TRUE(reqlog.ok()) << reqlog.open_error();
    MetricsRegistry metrics;
    BrokerConfig cfg;
    cfg.workers = 1;
    cfg.metrics = &metrics;
    cfg.reqlog = &reqlog;
    cfg.solve_fn = [](const SolveRequest& req) {
      SolveResponse resp;
      resp.id = req.id;
      resp.status = StatusCode::kOk;
      return resp;
    };
    Broker broker(cfg);
    Collected out;
    EXPECT_TRUE(broker.submit(named_request("a"), out.collector()));
    EXPECT_TRUE(broker.submit(named_request("b"), out.collector()));
    broker.drain(DrainMode::kFinishQueued);
    EXPECT_EQ(reqlog.lines_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  int solve_lines = 0;
  while (std::getline(in, line)) {
    EXPECT_NE(line.find("\"schema\":\"encodesat-reqlog-v1\""),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("\"disposition\":\"solve\""), std::string::npos)
        << line;
    EXPECT_NE(line.find("\"total_us\":"), std::string::npos) << line;
    ++solve_lines;
  }
  EXPECT_EQ(solve_lines, 2);
  std::remove(path.c_str());
}

// ------------------------------------------------ socket transports ----

std::string temp_socket_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// The server binds on another thread; retry until its listener is up.
int connect_unix_retry(const std::string& path) {
  for (int i = 0; i < 5000; ++i) {
    const int fd = connect_unix(path);
    if (fd >= 0) return fd;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return -1;
}

int connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Waits for run_tcp (on another thread) to publish its ephemeral port.
int wait_bound_port(const Server& server) {
  for (int i = 0; i < 5000 && server.bound_port() == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  return server.bound_port();
}

void wait_no_connections(const Server& server) {
  for (int i = 0; i < 5000 && server.live_connections() != 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

int count_open_fds() {
  int n = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd"))
    ++n;
  return n;
}

constexpr const char kSolveLine[] =
    "{\"id\":\"r\",\"constraints\":\"face a b c\\ndominance a b\"}\n";

TEST(ServiceServer, UnixChurnReapsEagerlyAndFdsReturnToBaseline) {
  // The regression this PR fixes: the old transport kept every
  // {fd, session, thread} triple until teardown, so connect/disconnect
  // churn grew resources without bound. Now a reap follows each
  // disconnect: after N churn cycles the process fd count is back at
  // the post-first-cycle baseline and accepted == reaped.
  const std::string path = temp_socket_path("encodesat_churn.sock");
  std::remove(path.c_str());
  MetricsRegistry metrics;
  SolveCache cache;
  ServerConfig cfg;
  cfg.broker.workers = 2;
  cfg.broker.cache = &cache;
  cfg.broker.metrics = &metrics;
  cfg.metrics = &metrics;
  Server server(cfg);
  std::thread serving([&] { EXPECT_EQ(server.run_unix_socket(path), 0); });

  const auto cycle = [&] {
    const int fd = connect_unix_retry(path);
    ASSERT_GE(fd, 0);
    write_str(fd, kSolveLine);
    const std::string resp = read_line(fd);
    EXPECT_NE(resp.find("\"status\":\"ok\""), std::string::npos) << resp;
    ::close(fd);
  };
  // Baseline after one full cycle (listener up, cache warm, conn reaped).
  cycle();
  wait_no_connections(server);
  ASSERT_EQ(server.live_connections(), 0);
  const int fd_baseline = count_open_fds();

  constexpr int kCycles = 200;
  for (int i = 0; i < kCycles; ++i) cycle();
  wait_no_connections(server);
  EXPECT_EQ(server.live_connections(), 0);
  EXPECT_EQ(count_open_fds(), fd_baseline)
      << "connection churn leaked file descriptors";
  EXPECT_EQ(metrics.counter("service.conn.accepted", false)->value(),
            static_cast<std::uint64_t>(kCycles) + 1);
  EXPECT_EQ(metrics.counter("service.conn.reaped", false)->value(),
            static_cast<std::uint64_t>(kCycles) + 1);

  server.request_drain();
  serving.join();
  EXPECT_EQ(metrics.counter("service.conn.reaped", false)->value(),
            metrics.counter("service.conn.accepted", false)->value());
}

TEST(ServiceServer, OversizedSocketLineAnswersParseErrorAndCloses) {
  const std::string path = temp_socket_path("encodesat_oversize.sock");
  std::remove(path.c_str());
  MetricsRegistry metrics;
  ServerConfig cfg;
  cfg.broker.workers = 1;
  cfg.broker.metrics = &metrics;
  cfg.metrics = &metrics;
  cfg.max_line_bytes = 64;
  Server server(cfg);
  std::thread serving([&] { EXPECT_EQ(server.run_unix_socket(path), 0); });

  const int fd = connect_unix_retry(path);
  ASSERT_GE(fd, 0);
  // 200 bytes, no newline in sight: past the cap the server must not
  // buffer on — one parse_error line, then the connection closes.
  write_str(fd, std::string(200, 'x'));
  const std::string resp = read_line(fd);
  EXPECT_NE(resp.find("\"status\":\"parse_error\""), std::string::npos)
      << resp;
  EXPECT_NE(resp.find("request line exceeds 64 bytes"), std::string::npos)
      << resp;
  EXPECT_EQ(read_all(fd), "") << "connection must close after the error";
  ::close(fd);
  wait_no_connections(server);
  EXPECT_EQ(metrics.counter("service.conn.oversized_line", false)->value(),
            1u);

  server.request_drain();
  serving.join();
}

TEST(ServiceServer, PipeModeOversizedLineEndsSessionWithParseError) {
  PipePair req_pipe, resp_pipe;
  ServerConfig cfg;
  cfg.broker.workers = 1;
  cfg.max_line_bytes = 64;
  Server server(cfg);
  std::thread serving([&] {
    EXPECT_EQ(server.run_pipe(req_pipe.read_end(), resp_pipe.write_end()), 0);
    ::close(resp_pipe.fds[1]);
    resp_pipe.fds[1] = -1;
  });
  write_str(req_pipe.write_end(), std::string(200, 'x') + "\n");
  const std::string out = read_all(resp_pipe.read_end());
  serving.join();
  EXPECT_NE(out.find("\"status\":\"parse_error\""), std::string::npos) << out;
  EXPECT_NE(out.find("request line exceeds 64 bytes"), std::string::npos)
      << out;
  req_pipe.close_write();
}

TEST(ServiceServer, MaxConnsRejectsWithDeterministicBusyLine) {
  const std::string path = temp_socket_path("encodesat_busy.sock");
  std::remove(path.c_str());
  MetricsRegistry metrics;
  SolveCache cache;
  ServerConfig cfg;
  cfg.broker.workers = 1;
  cfg.broker.cache = &cache;
  cfg.broker.metrics = &metrics;
  cfg.metrics = &metrics;
  cfg.max_conns = 1;
  Server server(cfg);
  std::thread serving([&] { EXPECT_EQ(server.run_unix_socket(path), 0); });

  const int first = connect_unix_retry(path);
  ASSERT_GE(first, 0);
  // A full round trip pins the first connection in the server's table
  // before the second connect, making the rejection deterministic.
  write_str(first, kSolveLine);
  EXPECT_NE(read_line(first).find("\"status\":\"ok\""), std::string::npos);

  const int second = connect_unix(path);
  ASSERT_GE(second, 0);
  const std::string busy = read_line(second);
  EXPECT_EQ(busy,
            "{\"id\":\"\",\"status\":\"overloaded\","
            "\"error\":{\"message\":\"server busy\"}}");
  EXPECT_EQ(read_all(second), "") << "rejected connection must close";
  ::close(second);
  EXPECT_EQ(
      metrics.counter("service.conn.rejected_overload", false)->value(), 1u);

  // The admitted connection still works after the rejection.
  write_str(first, kSolveLine);
  EXPECT_NE(read_line(first).find("\"status\":\"ok\""), std::string::npos);
  ::close(first);
  server.request_drain();
  serving.join();
}

TEST(ServiceServer, IdleTimeoutClosesSilentConnections) {
  const std::string path = temp_socket_path("encodesat_idle.sock");
  std::remove(path.c_str());
  MetricsRegistry metrics;
  ServerConfig cfg;
  cfg.broker.workers = 1;
  cfg.broker.metrics = &metrics;
  cfg.metrics = &metrics;
  cfg.idle_timeout_ms = 50;
  Server server(cfg);
  std::thread serving([&] { EXPECT_EQ(server.run_unix_socket(path), 0); });

  const int fd = connect_unix_retry(path);
  ASSERT_GE(fd, 0);
  // Say nothing; the server hangs up (EOF below) once the timeout fires.
  EXPECT_EQ(read_all(fd), "");
  ::close(fd);
  wait_no_connections(server);
  EXPECT_EQ(metrics.counter("service.conn.idle_closed", false)->value(), 1u);
  EXPECT_EQ(server.live_connections(), 0);

  server.request_drain();
  serving.join();
}

TEST(ServiceServer, RefusesLiveSocketReplacesStaleRejectsNonSocket) {
  const std::string path = temp_socket_path("encodesat_probe.sock");
  std::remove(path.c_str());
  ServerConfig cfg;
  cfg.broker.workers = 1;

  // Live: a second server must not steal (unlink) the first one's socket.
  Server first(cfg);
  std::thread serving([&] { EXPECT_EQ(first.run_unix_socket(path), 0); });
  const int probe = connect_unix_retry(path);
  ASSERT_GE(probe, 0);
  {
    Server second(cfg);
    EXPECT_EQ(second.run_unix_socket(path), -1);
    EXPECT_NE(second.last_error().find("in use by a live server"),
              std::string::npos)
        << second.last_error();
  }
  ::close(probe);
  first.request_drain();
  serving.join();

  // Stale: a socket file with no listener behind it is unlinked and
  // replaced. (run_listener unlinks on exit, so fabricate one.)
  {
    const int dead = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(dead, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ASSERT_EQ(::bind(dead, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof addr),
              0);
    ::close(dead);  // bound but never listening: probe-connect refuses
  }
  Server replacing(cfg);
  std::thread serving2([&] { EXPECT_EQ(replacing.run_unix_socket(path), 0); });
  const int fd = connect_unix_retry(path);
  ASSERT_GE(fd, 0);
  write_str(fd, kSolveLine);
  EXPECT_NE(read_line(fd).find("\"status\":\"ok\""), std::string::npos);
  ::close(fd);
  replacing.request_drain();
  serving2.join();

  // Non-socket: never unlink a path that is not a socket at all.
  const std::string file_path = temp_socket_path("encodesat_probe.txt");
  { std::ofstream(file_path) << "precious\n"; }
  Server refused(cfg);
  EXPECT_EQ(refused.run_unix_socket(file_path), -1);
  EXPECT_NE(refused.last_error().find("refusing to replace non-socket"),
            std::string::npos)
      << refused.last_error();
  std::ifstream still_there(file_path);
  EXPECT_TRUE(still_there.good());
  std::remove(file_path.c_str());
}

// ------------------------------------------------------ TCP transport --

TEST(ServiceTcp, MultiClientPipelinedSolvesAnswerInOrder) {
  MetricsRegistry metrics;
  SolveCache cache;
  ServerConfig cfg;
  cfg.broker.workers = 4;
  cfg.broker.cache = &cache;
  cfg.broker.metrics = &metrics;
  cfg.metrics = &metrics;
  Server server(cfg);
  std::thread serving([&] { EXPECT_EQ(server.run_tcp("127.0.0.1:0"), 0); });
  const int port = wait_bound_port(server);
  ASSERT_GT(port, 0);

  constexpr int kClients = 3;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      const int fd = connect_tcp(port);
      if (fd < 0) {
        failures.fetch_add(1);
        return;
      }
      const std::string tag = "c" + std::to_string(c);
      // Two pipelined requests; responses must come back in send order
      // even though the broker completes them on any worker.
      std::string batch;
      for (int r = 0; r < 2; ++r)
        batch += "{\"id\":\"" + tag + "r" + std::to_string(r) +
                 "\",\"constraints\":\"face a b c\\ndominance a b\"}\n";
      ::write(fd, batch.data(), batch.size());
      for (int r = 0; r < 2; ++r) {
        const std::string line = read_line(fd);
        if (line.find("\"id\":\"" + tag + "r" + std::to_string(r) +
                      "\",\"status\":\"ok\"") == std::string::npos)
          failures.fetch_add(1);
      }
      ::close(fd);
    });
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  wait_no_connections(server);
  server.request_drain();
  serving.join();
  EXPECT_EQ(metrics.counter("service.conn.accepted", false)->value(),
            static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(metrics.counter("service.conn.reaped", false)->value(),
            static_cast<std::uint64_t>(kClients));
}

TEST(ServiceTcp, MaxConnsRejectionMatchesUnixShape) {
  MetricsRegistry metrics;
  SolveCache cache;
  ServerConfig cfg;
  cfg.broker.workers = 1;
  cfg.broker.cache = &cache;
  cfg.broker.metrics = &metrics;
  cfg.metrics = &metrics;
  cfg.max_conns = 1;
  Server server(cfg);
  std::thread serving([&] { EXPECT_EQ(server.run_tcp("127.0.0.1:0"), 0); });
  const int port = wait_bound_port(server);
  ASSERT_GT(port, 0);

  const int first = connect_tcp(port);
  ASSERT_GE(first, 0);
  write_str(first, kSolveLine);
  EXPECT_NE(read_line(first).find("\"status\":\"ok\""), std::string::npos);
  const int second = connect_tcp(port);
  ASSERT_GE(second, 0);
  EXPECT_EQ(read_line(second),
            "{\"id\":\"\",\"status\":\"overloaded\","
            "\"error\":{\"message\":\"server busy\"}}");
  EXPECT_EQ(read_all(second), "");
  ::close(second);
  ::close(first);
  server.request_drain();
  serving.join();
  EXPECT_EQ(
      metrics.counter("service.conn.rejected_overload", false)->value(), 1u);
}

TEST(ServiceTcp, IdleTimeoutClosesSilentConnection) {
  MetricsRegistry metrics;
  ServerConfig cfg;
  cfg.broker.workers = 1;
  cfg.broker.metrics = &metrics;
  cfg.metrics = &metrics;
  cfg.idle_timeout_ms = 50;
  Server server(cfg);
  std::thread serving([&] { EXPECT_EQ(server.run_tcp("127.0.0.1:0"), 0); });
  const int port = wait_bound_port(server);
  ASSERT_GT(port, 0);

  const int fd = connect_tcp(port);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(read_all(fd), "") << "idle connection must be hung up";
  ::close(fd);
  wait_no_connections(server);
  EXPECT_EQ(metrics.counter("service.conn.idle_closed", false)->value(), 1u);
  server.request_drain();
  serving.join();
}

TEST(ServiceTcp, SigtermDrainFlushesAcceptedResponses) {
  // The graceful-drain contract over TCP: a response in flight when
  // SIGTERM lands is still written before the server exits.
  Gate gate;
  MetricsRegistry metrics;
  ServerConfig cfg;
  cfg.broker.workers = 1;
  cfg.broker.metrics = &metrics;
  cfg.metrics = &metrics;
  cfg.broker.solve_fn = [&](const SolveRequest& req) {
    gate.entered.fetch_add(1);
    gate.wait_open();
    return solve(req);
  };
  Server server(cfg);
  ScopedDrainSignals signals(&server);
  std::thread serving([&] { EXPECT_EQ(server.run_tcp("127.0.0.1:0"), 0); });
  const int port = wait_bound_port(server);
  ASSERT_GT(port, 0);

  const int fd = connect_tcp(port);
  ASSERT_GE(fd, 0);
  write_str(fd, kSolveLine);
  gate.wait_entered(1);  // the request is on the worker
  ASSERT_EQ(::kill(::getpid(), SIGTERM), 0);
  gate.release();
  const std::string resp = read_line(fd);
  EXPECT_NE(resp.find("\"id\":\"r\",\"status\":\"ok\""), std::string::npos)
      << resp;
  EXPECT_EQ(read_all(fd), "") << "server closes the connection after drain";
  ::close(fd);
  serving.join();
  EXPECT_EQ(metrics.counter("service.conn.reaped", false)->value(),
            metrics.counter("service.conn.accepted", false)->value());
}

TEST(ServiceTcp, RejectsUnparseableHostPort) {
  ServerConfig cfg;
  cfg.broker.workers = 1;
  Server server(cfg);
  EXPECT_EQ(server.run_tcp("127.0.0.1"), -1);
  EXPECT_NE(server.last_error().find("expects HOST:PORT"),
            std::string::npos)
      << server.last_error();
}

}  // namespace
}  // namespace encodesat
