// Tests for the comparison baselines: NOVA-like encoding and simulated
// annealing.
#include <gtest/gtest.h>

#include "baseline/annealing.h"
#include "baseline/nova.h"
#include "core/bounded.h"
#include "core/verify.h"

namespace encodesat {
namespace {

TEST(Nova, ProducesUniqueCodes) {
  const ConstraintSet cs = parse_constraints(R"(
    face a b
    face c d
    face a c e
  )");
  const Encoding enc = nova_encode(cs, 3);
  const auto v = verify_encoding(enc, cs);
  for (const auto& viol : v)
    EXPECT_NE(viol.kind, Violation::Kind::kDuplicateCode);
  EXPECT_EQ(enc.bits, 3);
}

TEST(Nova, SatisfiesTrivialDisjointFaces) {
  const ConstraintSet cs = parse_constraints("face a b\nface c d");
  const Encoding enc = nova_encode(cs, 2);
  EXPECT_EQ(count_satisfied_faces(enc, cs), 2);
}

TEST(Nova, RejectsTooFewBits) {
  ConstraintSet cs;
  for (int i = 0; i < 5; ++i) cs.symbols().intern("s" + std::to_string(i));
  EXPECT_THROW(nova_encode(cs, 2), std::invalid_argument);
}

TEST(Nova, Deterministic) {
  const ConstraintSet cs = parse_constraints("face a b c\nface b d\nsymbol e");
  const Encoding e1 = nova_encode(cs, 3);
  const Encoding e2 = nova_encode(cs, 3);
  EXPECT_EQ(e1.codes, e2.codes);
}

TEST(Anneal, ProducesUniqueCodes) {
  const ConstraintSet cs = parse_constraints(R"(
    face a b
    face b c
    face d e
  )");
  AnnealOptions opts;
  opts.temperature_points = 10;
  opts.moves_per_temperature = 5;
  const auto res = anneal_encode(cs, 3, opts);
  const auto v = verify_encoding(res.encoding, cs);
  for (const auto& viol : v)
    EXPECT_NE(viol.kind, Violation::Kind::kDuplicateCode);
  EXPECT_GT(res.evaluations, 0);
}

TEST(Anneal, MoreMovesNeverHurtsMuch) {
  // Statistical sanity: with the face-violation cost on an easy instance
  // the annealer should find a perfect assignment.
  const ConstraintSet cs = parse_constraints("face a b\nface c d");
  AnnealOptions opts;
  opts.cost = CostKind::kViolatedFaces;
  opts.temperature_points = 30;
  opts.moves_per_temperature = 20;
  const auto res = anneal_encode(cs, 2, opts);
  EXPECT_EQ(res.cost.violated_faces, 0);
}

TEST(Anneal, Deterministic) {
  const ConstraintSet cs = parse_constraints("face a b c\nsymbol d");
  AnnealOptions opts;
  opts.temperature_points = 5;
  opts.moves_per_temperature = 4;
  const auto r1 = anneal_encode(cs, 2, opts);
  const auto r2 = anneal_encode(cs, 2, opts);
  EXPECT_EQ(r1.encoding.codes, r2.encoding.codes);
}

}  // namespace
}  // namespace encodesat
