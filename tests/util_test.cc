// Tests for string helpers, the deterministic RNG, and the Encoding type.
#include <gtest/gtest.h>

#include "core/encoding.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/timer.h"

namespace encodesat {
namespace {

TEST(Strings, SplitWs) {
  EXPECT_EQ(split_ws("  a  b\tc \n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
  EXPECT_EQ(split_ws("one"), (std::vector<std::string>{"one"}));
  EXPECT_EQ(split_ws("a,b;c", ",;"), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\r\n"), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with(".i 4", ".i"));
  EXPECT_FALSE(starts_with(".i", ".inputs"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
    const auto v = rng.next_in(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, RoughlyUniform) {
  Rng rng(99);
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[rng.next_below(4)];
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(Timer, MonotoneAndResettable) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i * 0.5;
  const double first = t.elapsed_seconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(t.elapsed_seconds(), first);
  t.reset();
  EXPECT_LE(t.elapsed_seconds(), first + 1.0);
  EXPECT_GE(t.elapsed_ms(), 0.0);
}

TEST(Encoding, CodeStringMsbFirst) {
  Encoding e;
  e.bits = 3;
  e.codes = {0b101, 0b010};
  EXPECT_EQ(e.code_string(0), "101");
  EXPECT_EQ(e.code_string(1), "010");
}

TEST(Encoding, ToStringUsesNames) {
  SymbolTable t;
  t.intern("alpha");
  t.intern("beta");
  Encoding e;
  e.bits = 2;
  e.codes = {0b01, 0b10};
  EXPECT_EQ(e.to_string(t), "alpha = 01, beta = 10");
}

TEST(Encoding, DeriveCodesLeftZeroRightOneUnplacedOne) {
  // Column 0: a left, b right; column 1: a left only (b unplaced -> 1).
  std::vector<Dichotomy> cols;
  cols.push_back(Dichotomy::make(2, {0}, {1}));
  cols.push_back(Dichotomy::make(2, {0}, {}));
  const Encoding e = derive_codes(2, cols);
  EXPECT_EQ(e.bits, 2);
  EXPECT_EQ(e.codes[0], 0u);
  EXPECT_EQ(e.codes[1], 0b11u);
}

}  // namespace
}  // namespace encodesat
