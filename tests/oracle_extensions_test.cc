// Brute-force oracle tests for the Section 8 extension solver: on tiny
// universes, enumerate every injective code assignment and compare
// feasibility (and bound the length) against encode_with_extensions.
#include <gtest/gtest.h>

#include "core/extensions.h"
#include "core/solver.h"
#include "core/verify.h"
#include "util/rng.h"

namespace encodesat {
namespace {

// Smallest bits in [min_bits, max_bits] for which some injective assignment
// satisfies every constraint; -1 if none up to max_bits.
int brute_force_min_bits(const ConstraintSet& cs, int max_bits) {
  const std::uint32_t n = cs.num_symbols();
  for (int bits = 1; bits <= max_bits; ++bits) {
    const std::uint64_t space = std::uint64_t{1} << bits;
    if (space < n) continue;
    // Enumerate injective assignments recursively.
    Encoding enc;
    enc.bits = bits;
    enc.codes.assign(n, 0);
    std::vector<bool> used(space, false);
    std::function<bool(std::uint32_t)> place = [&](std::uint32_t s) -> bool {
      if (s == n) return verify_encoding(enc, cs).empty();
      for (std::uint64_t c = 0; c < space; ++c) {
        if (used[c]) continue;
        used[c] = true;
        enc.codes[s] = c;
        if (place(s + 1)) return true;
        used[c] = false;
      }
      return false;
    };
    if (place(0)) return bits;
  }
  return -1;
}

ConstraintSet random_extended(Rng& rng, std::uint32_t n) {
  ConstraintSet cs;
  for (std::uint32_t i = 0; i < n; ++i)
    cs.symbols().intern("s" + std::to_string(i));
  for (int f = 0; f < 2; ++f) {
    std::vector<std::uint32_t> members;
    for (std::uint32_t s = 0; s < n; ++s)
      if (rng.next_bool(0.45)) members.push_back(s);
    if (members.size() >= 2 && members.size() < n)
      cs.add_face_ids(std::move(members));
  }
  if (rng.next_bool(0.7)) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(n));
    const auto b = static_cast<std::uint32_t>(rng.next_below(n));
    if (a != b) cs.add_distance2("s" + std::to_string(a), "s" + std::to_string(b));
  }
  if (rng.next_bool(0.5)) {
    std::vector<std::uint32_t> members;
    for (std::uint32_t s = 0; s < n; ++s)
      if (rng.next_bool(0.5)) members.push_back(s);
    if (members.size() >= 2 && members.size() < n)
      cs.nonfaces().push_back(NonFaceConstraint{std::move(members)});
  }
  if (rng.next_bool(0.4)) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(n));
    const auto b = static_cast<std::uint32_t>(rng.next_below(n));
    if (a != b) cs.add_dominance_ids(a, b);
  }
  return cs;
}

class ExtensionsOracle : public ::testing::TestWithParam<int> {};

TEST_P(ExtensionsOracle, SoundAgainstBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 929 + 31);
  const std::uint32_t n = 3 + static_cast<std::uint32_t>(rng.next_below(2));
  const ConstraintSet cs = random_extended(rng, n);
  const int max_bits = 4;

  const int oracle = brute_force_min_bits(cs, max_bits);
  SolveOptions so;
  so.pipeline = SolveOptions::Pipeline::kExtensions;
  const SolveResult res = Solver(cs).encode(so);

  // Soundness: anything the solver emits must verify, and it can never
  // beat the brute-force optimum length.
  if (res.status == SolveResult::Status::kEncoded) {
    EXPECT_TRUE(verify_encoding(res.encoding, cs).empty()) << cs.to_string();
    if (oracle >= 0)
      EXPECT_GE(res.encoding.bits, oracle) << cs.to_string();
    else
      EXPECT_GT(res.encoding.bits, max_bits) << cs.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtensionsOracle, ::testing::Range(0, 30));

TEST(ExtensionsOracle, CompletenessRateIsBounded) {
  // The candidate pool is complete for face + output constraints (Theorem
  // 6.1) but only heuristic for distance-2/non-face (the paper's Section 8
  // sketch assumes a rich prime pool). This deterministic sweep pins the
  // rate of "oracle feasible, solver said infeasible" misses so pool
  // regressions are caught.
  int disagreements = 0, feasible_cases = 0;
  for (int seed = 0; seed < 30; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 929 + 31);
    const std::uint32_t n = 3 + static_cast<std::uint32_t>(rng.next_below(2));
    const ConstraintSet cs = random_extended(rng, n);
    const int oracle = brute_force_min_bits(cs, 4);
    if (oracle < 0) continue;
    ++feasible_cases;
    SolveOptions so;
    so.pipeline = SolveOptions::Pipeline::kExtensions;
    const SolveResult res = Solver(cs).encode(so);
    if (res.status != SolveResult::Status::kEncoded)
      ++disagreements;
  }
  EXPECT_GT(feasible_cases, 10);
  EXPECT_LE(disagreements, 2)
      << "extension-solver candidate pool lost completeness";
}

}  // namespace
}  // namespace encodesat
