// Tests for the unate and binate covering solvers, including brute-force
// optimality cross-checks on random instances.
#include <gtest/gtest.h>

#include "covering/binate.h"
#include "covering/unate.h"
#include "util/rng.h"

namespace encodesat {
namespace {

UnateCoverProblem make_unate(std::size_t cols,
                             const std::vector<std::vector<std::size_t>>& rows) {
  UnateCoverProblem p;
  p.num_columns = cols;
  for (const auto& r : rows) {
    Bitset row(cols);
    for (auto c : r) row.set(c);
    p.rows.push_back(std::move(row));
  }
  return p;
}

TEST(UnateCover, EmptyProblemIsFeasibleZeroCost) {
  UnateCoverProblem p;
  p.num_columns = 3;
  const auto sol = solve_unate_cover(p);
  EXPECT_TRUE(sol.feasible);
  EXPECT_EQ(sol.cost, 0);
  EXPECT_TRUE(sol.columns.empty());
}

TEST(UnateCover, EmptyRowInfeasible) {
  auto p = make_unate(2, {{0}, {}});
  EXPECT_FALSE(solve_unate_cover(p).feasible);
  EXPECT_FALSE(greedy_unate_cover(p).feasible);
}

TEST(UnateCover, EssentialColumnsPicked) {
  auto p = make_unate(3, {{0}, {1}, {0, 1, 2}});
  const auto sol = solve_unate_cover(p);
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.cost, 2);
  EXPECT_EQ(sol.columns, (std::vector<std::size_t>{0, 1}));
}

TEST(UnateCover, GreedyTrapExactEscapes) {
  // Greedy prefers column 0 (covers 3 rows) but the optimum is {1, 2}.
  auto p = make_unate(3, {{0, 1}, {0, 1}, {0, 2}, {1}, {2}});
  const auto sol = solve_unate_cover(p);
  ASSERT_TRUE(sol.feasible);
  EXPECT_TRUE(sol.optimal);
  EXPECT_EQ(sol.cost, 2);
  EXPECT_EQ(sol.columns, (std::vector<std::size_t>{1, 2}));
}

TEST(UnateCover, RespectsWeights) {
  auto p = make_unate(3, {{0, 1}, {0, 2}});
  p.weights = {5, 1, 1};  // column 0 covers both rows but costs more
  const auto sol = solve_unate_cover(p);
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.cost, 2);
  EXPECT_EQ(sol.columns, (std::vector<std::size_t>{1, 2}));
}

int brute_force_unate(const UnateCoverProblem& p) {
  int best = -1;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << p.num_columns);
       ++mask) {
    bool ok = true;
    for (const auto& row : p.rows) {
      bool covered = false;
      row.for_each([&](std::size_t c) {
        if ((mask >> c) & 1u) covered = true;
      });
      if (!covered && !row.empty()) {
        ok = false;
        break;
      }
      if (row.empty()) ok = false;
    }
    if (!ok) continue;
    int cost = 0;
    for (std::size_t c = 0; c < p.num_columns; ++c)
      if ((mask >> c) & 1u)
        cost += p.weights.empty() ? 1 : p.weights[c];
    if (best < 0 || cost < best) best = cost;
  }
  return best;
}

class UnateRandom : public ::testing::TestWithParam<int> {};

TEST_P(UnateRandom, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1337 + 5);
  const std::size_t cols = 4 + rng.next_below(8);
  const std::size_t rows = 2 + rng.next_below(10);
  UnateCoverProblem p;
  p.num_columns = cols;
  for (std::size_t r = 0; r < rows; ++r) {
    Bitset row(cols);
    for (std::size_t c = 0; c < cols; ++c)
      if (rng.next_bool(0.3)) row.set(c);
    if (row.empty()) row.set(rng.next_below(cols));
    p.rows.push_back(std::move(row));
  }
  if (GetParam() % 3 == 0) {
    p.weights.resize(cols);
    for (auto& w : p.weights) w = 1 + static_cast<int>(rng.next_below(4));
  }
  const auto sol = solve_unate_cover(p);
  ASSERT_TRUE(sol.feasible);
  ASSERT_TRUE(sol.optimal);
  EXPECT_EQ(sol.cost, brute_force_unate(p));
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnateRandom, ::testing::Range(0, 30));

TEST(BinateCover, PurePositiveMatchesUnate) {
  BinateCoverProblem p;
  p.num_columns = 3;
  p.add_row({0, 1}, {});
  p.add_row({1, 2}, {});
  const auto sol = solve_binate_cover(p);
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.cost, 1);
  EXPECT_EQ(sol.columns, (std::vector<std::size_t>{1}));
}

TEST(BinateCover, NegativeLiteralSatisfiedByDeselection) {
  BinateCoverProblem p;
  p.num_columns = 2;
  p.add_row({}, {0});  // forbid column 0
  p.add_row({0, 1}, {});
  const auto sol = solve_binate_cover(p);
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.columns, (std::vector<std::size_t>{1}));
}

TEST(BinateCover, ConflictIsInfeasible) {
  BinateCoverProblem p;
  p.num_columns = 1;
  p.add_row({0}, {});
  p.add_row({}, {0});
  EXPECT_FALSE(solve_binate_cover(p).feasible);
}

TEST(BinateCover, ImplicationChainPropagates) {
  // Select 0 -> must select 1 -> must select 2; row forces 0.
  BinateCoverProblem p;
  p.num_columns = 3;
  p.add_row({0}, {});
  p.add_row({1}, {0});
  p.add_row({2}, {1});
  const auto sol = solve_binate_cover(p);
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.cost, 3);
}

int brute_force_binate(const BinateCoverProblem& p) {
  int best = -1;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << p.num_columns);
       ++mask) {
    bool ok = true;
    for (const auto& row : p.rows) {
      bool sat = false;
      row.pos.for_each([&](std::size_t c) {
        if ((mask >> c) & 1u) sat = true;
      });
      row.neg.for_each([&](std::size_t c) {
        if (!((mask >> c) & 1u)) sat = true;
      });
      if (!sat) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    int cost = 0;
    for (std::size_t c = 0; c < p.num_columns; ++c)
      if ((mask >> c) & 1u)
        cost += p.weights.empty() ? 1 : p.weights[c];
    if (best < 0 || cost < best) best = cost;
  }
  return best;
}

class BinateRandom : public ::testing::TestWithParam<int> {};

TEST_P(BinateRandom, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 271 + 9);
  const std::size_t cols = 3 + rng.next_below(8);
  const std::size_t rows = 2 + rng.next_below(12);
  BinateCoverProblem p;
  p.num_columns = cols;
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::size_t> pos, neg;
    for (std::size_t c = 0; c < cols; ++c) {
      const double x = rng.next_double();
      if (x < 0.2) pos.push_back(c);
      else if (x < 0.3) neg.push_back(c);
    }
    if (pos.empty() && neg.empty()) pos.push_back(rng.next_below(cols));
    p.add_row(pos, neg);
  }
  const int expected = brute_force_binate(p);
  const auto sol = solve_binate_cover(p);
  if (expected < 0) {
    EXPECT_FALSE(sol.feasible);
  } else {
    ASSERT_TRUE(sol.feasible);
    ASSERT_TRUE(sol.optimal);
    EXPECT_EQ(sol.cost, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinateRandom, ::testing::Range(0, 30));

// A triangle of pure-positive rows: no unit rows, no row or column
// dominance, so the solver must actually branch. Minimum cover is any two
// columns (cost 2).
BinateCoverProblem binate_triangle() {
  BinateCoverProblem p;
  p.num_columns = 3;
  p.add_row({0, 1}, {});
  p.add_row({1, 2}, {});
  p.add_row({0, 2}, {});
  return p;
}

TEST(BinateCover, NodeBudgetTruncationIsNotInfeasibility) {
  const BinateCoverProblem p = binate_triangle();
  BinateCoverOptions tiny;
  tiny.max_nodes = 1;
  const auto sol = solve_binate_cover(p, tiny);
  EXPECT_FALSE(sol.feasible);
  EXPECT_TRUE(sol.truncated);
  EXPECT_EQ(sol.truncation, Truncation::kNodeLimit);
  EXPECT_FALSE(sol.proven_infeasible());
  EXPECT_EQ(sol.cost, -1);

  // The same instance solves — and proves optimality — with budget.
  const auto full = solve_binate_cover(p);
  ASSERT_TRUE(full.feasible);
  EXPECT_TRUE(full.optimal);
  EXPECT_FALSE(full.truncated);
  EXPECT_EQ(full.truncation, Truncation::kNone);
  EXPECT_EQ(full.cost, 2);
}

TEST(BinateCover, ProvenInfeasibilityIsNotTruncation) {
  BinateCoverProblem p;
  p.num_columns = 2;
  p.add_row({}, {});  // empty clause: unsatisfiable by any selection
  p.add_row({0, 1}, {});
  BinateCoverOptions tiny;
  tiny.max_nodes = 1;  // infeasibility must still be proven at the root
  const auto sol = solve_binate_cover(p, tiny);
  EXPECT_FALSE(sol.feasible);
  EXPECT_FALSE(sol.truncated);
  EXPECT_EQ(sol.truncation, Truncation::kNone);
  EXPECT_TRUE(sol.proven_infeasible());
  EXPECT_EQ(sol.cost, -1);
}

TEST(BinateCover, AddRowValidatesColumnIndices) {
  BinateCoverProblem p;
  p.num_columns = 2;
  EXPECT_THROW(p.add_row({2}, {}), std::invalid_argument);
  EXPECT_THROW(p.add_row({}, {5}), std::invalid_argument);
  EXPECT_TRUE(p.rows.empty());  // failed adds leave no partial row behind
  p.add_row({0}, {1});
  EXPECT_EQ(p.rows.size(), 1u);
}

TEST(BinateCover, SolveValidatesWeightSize) {
  BinateCoverProblem p;
  p.num_columns = 3;
  p.add_row({0, 1}, {});
  p.weights = {1, 2};  // shorter than num_columns
  EXPECT_THROW(solve_binate_cover(p), std::invalid_argument);
  p.weights = {1, 2, 3, 4};  // longer
  EXPECT_THROW(solve_binate_cover(p), std::invalid_argument);
  p.weights = {1, 2, 3};
  EXPECT_TRUE(solve_binate_cover(p).feasible);
}

TEST(BinateCover, ComponentsBitIdenticalAcrossThreadCounts) {
  // Two disjoint triangles plus an implication pair: three independent
  // components (the pair solves at cost 0 by deselecting both columns).
  BinateCoverProblem p;
  p.num_columns = 8;
  p.add_row({0, 1}, {});
  p.add_row({1, 2}, {});
  p.add_row({0, 2}, {});
  p.add_row({3, 4}, {});
  p.add_row({4, 5}, {});
  p.add_row({3, 5}, {});
  p.add_row({6}, {7});
  p.add_row({7}, {6});
  ExecContext seq;
  ExecContext par;
  par.num_threads = 4;
  const auto a = solve_binate_cover(p, {}, seq);
  const auto b = solve_binate_cover(p, {}, par);
  ASSERT_TRUE(a.feasible);
  EXPECT_TRUE(a.optimal);
  EXPECT_EQ(a.components, 3u);
  EXPECT_EQ(a.cost, 4);
  EXPECT_EQ(a.columns, b.columns);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.nodes_explored, b.nodes_explored);
  EXPECT_EQ(a.propagations, b.propagations);
  EXPECT_EQ(a.prune_hits, b.prune_hits);
  EXPECT_EQ(a.truncation, b.truncation);

  // Node-budget truncation points are per-component and deterministic, so
  // truncated runs stay bit-identical too.
  BinateCoverOptions tiny;
  tiny.max_nodes = 1;
  const auto ta = solve_binate_cover(p, tiny, seq);
  const auto tb = solve_binate_cover(p, tiny, par);
  EXPECT_FALSE(ta.feasible);
  EXPECT_TRUE(ta.truncated);
  EXPECT_EQ(ta.truncation, Truncation::kNodeLimit);
  EXPECT_EQ(ta.nodes_explored, tb.nodes_explored);
  EXPECT_EQ(ta.truncation, tb.truncation);
  EXPECT_EQ(ta.feasible, tb.feasible);
}

TEST(BinateCover, CancellationSurfacesAsTruncation) {
  Budget budget;
  CancelToken token;
  token.cancel();
  budget.set_cancel_token(&token);
  ExecContext ctx;
  ctx.budget = &budget;
  const auto sol = solve_binate_cover(binate_triangle(), {}, ctx);
  EXPECT_FALSE(sol.feasible);
  EXPECT_TRUE(sol.truncated);
  EXPECT_EQ(sol.truncation, Truncation::kCancelled);
  EXPECT_FALSE(sol.proven_infeasible());
}

TEST(BinateCover, RootReductionSolvesWithoutSearch) {
  // Forced chain: every assignment is unit-propagated at the root, so no
  // search nodes are spent and the result is optimal by construction.
  BinateCoverProblem p;
  p.num_columns = 3;
  p.add_row({0}, {});
  p.add_row({1}, {0});
  p.add_row({2}, {1});
  const auto sol = solve_binate_cover(p);
  ASSERT_TRUE(sol.feasible);
  EXPECT_TRUE(sol.optimal);
  EXPECT_EQ(sol.cost, 3);
  EXPECT_EQ(sol.nodes_explored, 0u);
  EXPECT_GE(sol.propagations, 3u);
}

}  // namespace
}  // namespace encodesat
