// Tests for the unate and binate covering solvers, including brute-force
// optimality cross-checks on random instances.
#include <gtest/gtest.h>

#include "covering/binate.h"
#include "covering/unate.h"
#include "util/rng.h"

namespace encodesat {
namespace {

UnateCoverProblem make_unate(std::size_t cols,
                             const std::vector<std::vector<std::size_t>>& rows) {
  UnateCoverProblem p;
  p.num_columns = cols;
  for (const auto& r : rows) {
    Bitset row(cols);
    for (auto c : r) row.set(c);
    p.rows.push_back(std::move(row));
  }
  return p;
}

TEST(UnateCover, EmptyProblemIsFeasibleZeroCost) {
  UnateCoverProblem p;
  p.num_columns = 3;
  const auto sol = solve_unate_cover(p);
  EXPECT_TRUE(sol.feasible);
  EXPECT_EQ(sol.cost, 0);
  EXPECT_TRUE(sol.columns.empty());
}

TEST(UnateCover, EmptyRowInfeasible) {
  auto p = make_unate(2, {{0}, {}});
  EXPECT_FALSE(solve_unate_cover(p).feasible);
  EXPECT_FALSE(greedy_unate_cover(p).feasible);
}

TEST(UnateCover, EssentialColumnsPicked) {
  auto p = make_unate(3, {{0}, {1}, {0, 1, 2}});
  const auto sol = solve_unate_cover(p);
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.cost, 2);
  EXPECT_EQ(sol.columns, (std::vector<std::size_t>{0, 1}));
}

TEST(UnateCover, GreedyTrapExactEscapes) {
  // Greedy prefers column 0 (covers 3 rows) but the optimum is {1, 2}.
  auto p = make_unate(3, {{0, 1}, {0, 1}, {0, 2}, {1}, {2}});
  const auto sol = solve_unate_cover(p);
  ASSERT_TRUE(sol.feasible);
  EXPECT_TRUE(sol.optimal);
  EXPECT_EQ(sol.cost, 2);
  EXPECT_EQ(sol.columns, (std::vector<std::size_t>{1, 2}));
}

TEST(UnateCover, RespectsWeights) {
  auto p = make_unate(3, {{0, 1}, {0, 2}});
  p.weights = {5, 1, 1};  // column 0 covers both rows but costs more
  const auto sol = solve_unate_cover(p);
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.cost, 2);
  EXPECT_EQ(sol.columns, (std::vector<std::size_t>{1, 2}));
}

int brute_force_unate(const UnateCoverProblem& p) {
  int best = -1;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << p.num_columns);
       ++mask) {
    bool ok = true;
    for (const auto& row : p.rows) {
      bool covered = false;
      row.for_each([&](std::size_t c) {
        if ((mask >> c) & 1u) covered = true;
      });
      if (!covered && !row.empty()) {
        ok = false;
        break;
      }
      if (row.empty()) ok = false;
    }
    if (!ok) continue;
    int cost = 0;
    for (std::size_t c = 0; c < p.num_columns; ++c)
      if ((mask >> c) & 1u)
        cost += p.weights.empty() ? 1 : p.weights[c];
    if (best < 0 || cost < best) best = cost;
  }
  return best;
}

class UnateRandom : public ::testing::TestWithParam<int> {};

TEST_P(UnateRandom, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1337 + 5);
  const std::size_t cols = 4 + rng.next_below(8);
  const std::size_t rows = 2 + rng.next_below(10);
  UnateCoverProblem p;
  p.num_columns = cols;
  for (std::size_t r = 0; r < rows; ++r) {
    Bitset row(cols);
    for (std::size_t c = 0; c < cols; ++c)
      if (rng.next_bool(0.3)) row.set(c);
    if (row.empty()) row.set(rng.next_below(cols));
    p.rows.push_back(std::move(row));
  }
  if (GetParam() % 3 == 0) {
    p.weights.resize(cols);
    for (auto& w : p.weights) w = 1 + static_cast<int>(rng.next_below(4));
  }
  const auto sol = solve_unate_cover(p);
  ASSERT_TRUE(sol.feasible);
  ASSERT_TRUE(sol.optimal);
  EXPECT_EQ(sol.cost, brute_force_unate(p));
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnateRandom, ::testing::Range(0, 30));

TEST(BinateCover, PurePositiveMatchesUnate) {
  BinateCoverProblem p;
  p.num_columns = 3;
  p.add_row({0, 1}, {});
  p.add_row({1, 2}, {});
  const auto sol = solve_binate_cover(p);
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.cost, 1);
  EXPECT_EQ(sol.columns, (std::vector<std::size_t>{1}));
}

TEST(BinateCover, NegativeLiteralSatisfiedByDeselection) {
  BinateCoverProblem p;
  p.num_columns = 2;
  p.add_row({}, {0});  // forbid column 0
  p.add_row({0, 1}, {});
  const auto sol = solve_binate_cover(p);
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.columns, (std::vector<std::size_t>{1}));
}

TEST(BinateCover, ConflictIsInfeasible) {
  BinateCoverProblem p;
  p.num_columns = 1;
  p.add_row({0}, {});
  p.add_row({}, {0});
  EXPECT_FALSE(solve_binate_cover(p).feasible);
}

TEST(BinateCover, ImplicationChainPropagates) {
  // Select 0 -> must select 1 -> must select 2; row forces 0.
  BinateCoverProblem p;
  p.num_columns = 3;
  p.add_row({0}, {});
  p.add_row({1}, {0});
  p.add_row({2}, {1});
  const auto sol = solve_binate_cover(p);
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.cost, 3);
}

int brute_force_binate(const BinateCoverProblem& p) {
  int best = -1;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << p.num_columns);
       ++mask) {
    bool ok = true;
    for (const auto& row : p.rows) {
      bool sat = false;
      row.pos.for_each([&](std::size_t c) {
        if ((mask >> c) & 1u) sat = true;
      });
      row.neg.for_each([&](std::size_t c) {
        if (!((mask >> c) & 1u)) sat = true;
      });
      if (!sat) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    int cost = 0;
    for (std::size_t c = 0; c < p.num_columns; ++c)
      if ((mask >> c) & 1u)
        cost += p.weights.empty() ? 1 : p.weights[c];
    if (best < 0 || cost < best) best = cost;
  }
  return best;
}

class BinateRandom : public ::testing::TestWithParam<int> {};

TEST_P(BinateRandom, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 271 + 9);
  const std::size_t cols = 3 + rng.next_below(8);
  const std::size_t rows = 2 + rng.next_below(12);
  BinateCoverProblem p;
  p.num_columns = cols;
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::size_t> pos, neg;
    for (std::size_t c = 0; c < cols; ++c) {
      const double x = rng.next_double();
      if (x < 0.2) pos.push_back(c);
      else if (x < 0.3) neg.push_back(c);
    }
    if (pos.empty() && neg.empty()) pos.push_back(rng.next_below(cols));
    p.add_row(pos, neg);
  }
  const int expected = brute_force_binate(p);
  const auto sol = solve_binate_cover(p);
  if (expected < 0) {
    EXPECT_FALSE(sol.feasible);
  } else {
    ASSERT_TRUE(sol.feasible);
    ASSERT_TRUE(sol.optimal);
    EXPECT_EQ(sol.cost, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinateRandom, ::testing::Range(0, 30));

}  // namespace
}  // namespace encodesat
