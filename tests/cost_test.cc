// Tests for the Section 7 cost functions (Figure 9 semantics).
#include <gtest/gtest.h>

#include "core/bounded.h"
#include "core/cost.h"
#include "core/encoder.h"
#include "core/solver.h"
#include "core/verify.h"
#include "logic/exact_minimize.h"
#include "util/rng.h"

namespace encodesat {
namespace {

// The Section 7 running example: (e,f,c), (e,d,g), (a,b,d), (a,g,f,d).
ConstraintSet section7_constraints() {
  return parse_constraints(R"(
    face e f c
    face e d g
    face a b d
    face a g f d
  )");
}

// The paper's 4-bit satisfying assignment for it.
Encoding section7_codes4() {
  const ConstraintSet cs = section7_constraints();
  Encoding enc;
  enc.bits = 4;
  enc.codes.assign(cs.num_symbols(), 0);
  auto set = [&](const char* name, std::uint64_t msb_first) {
    // The paper writes codes MSB-first; our bit 0 is column 0 (LSB).
    std::uint64_t code = 0;
    for (int b = 0; b < 4; ++b)
      if ((msb_first >> (3 - b)) & 1u) code |= std::uint64_t{1} << b;
    enc.codes[cs.symbols().at(name)] = code;
  };
  set("a", 0b1010);
  set("b", 0b0010);
  set("c", 0b0011);
  set("d", 0b1110);
  set("e", 0b0111);
  set("f", 0b1011);
  set("g", 0b1100);
  return enc;
}

TEST(Cost, Section7FourBitSolutionSatisfiesAll) {
  const ConstraintSet cs = section7_constraints();
  const Encoding enc = section7_codes4();
  EXPECT_EQ(count_satisfied_faces(enc, cs), 4);
  const EncodingCost cost = evaluate_encoding_cost(enc, cs);
  EXPECT_EQ(cost.violated_faces, 0);
  // Every satisfied constraint minimizes to a single product term.
  EXPECT_EQ(cost.cubes, 4);
}

TEST(Cost, Section7NeedsFourBits) {
  // "To satisfy all the constraints, a code-length of 4 bits is required."
  const SolveResult res = Solver(section7_constraints()).encode();
  ASSERT_EQ(res.status, SolveResult::Status::kEncoded);
  EXPECT_EQ(res.encoding.bits, 4);
}

TEST(Cost, ThreeBitsMustViolateSomething) {
  // Any 3-bit encoding violates at least one face constraint; the paper's
  // Figure 9 example violates 3 of them with 7 cubes / 14 literals.
  const ConstraintSet cs = section7_constraints();
  BoundedEncodeOptions opts;
  opts.cost = CostKind::kCubes;
  const auto res = bounded_encode(cs, 3, opts);
  EXPECT_GT(res.cost.violated_faces, 0);
  // A violated constraint needs at least two product terms (Section 7), so
  // the minimized multi-output cover cannot be as small as the constraint
  // count would allow if everything were satisfied.
  EXPECT_GE(res.cost.cubes, 2);
  EXPECT_GE(res.cost.literals, res.cost.cubes);
}

TEST(Cost, SatisfiedFaceIsOneCube) {
  const ConstraintSet cs = parse_constraints("face a b\nsymbol c\nsymbol d");
  Encoding enc;
  enc.bits = 2;
  enc.codes = {0b00, 0b01, 0b10, 0b11};  // a,b share the x1=0 face
  EXPECT_EQ(count_satisfied_faces(enc, cs), 1);
  const EncodingCost cost = evaluate_encoding_cost(enc, cs);
  EXPECT_EQ(cost.cubes, 1);
  EXPECT_EQ(cost.literals, 1);
}

TEST(Cost, ViolatedFaceNeedsAtLeastTwoCubes) {
  // Symbols intern in order of first mention: a, d, b, c.
  const ConstraintSet cs = parse_constraints("face a d\nsymbol b\nsymbol c");
  Encoding enc;
  enc.bits = 2;
  enc.codes = {0b00, 0b11, 0b01, 0b10};  // a=00, d=11: span is everything
  EXPECT_EQ(count_satisfied_faces(enc, cs), 0);
  const EncodingCost cost = evaluate_encoding_cost(enc, cs);
  EXPECT_GE(cost.cubes, 2);
}

TEST(Cost, DontCareMembersRelaxTheFunction) {
  // (a, b, [c], d): c's code is a don't-care point of the constraint
  // function, so it can never break single-cube minimization.
  const ConstraintSet cs =
      parse_constraints("face a b [c] d\nsymbol e\nsymbol f\nsymbol g\nsymbol h");
  Encoding enc;
  enc.bits = 3;
  enc.codes = {0, 1, 2, 3, 4, 5, 6, 7};  // a,b,c,d = 000,001,010,011
  EXPECT_EQ(count_satisfied_faces(enc, cs), 1);
  const EncodingCost cost = evaluate_encoding_cost(enc, cs);
  EXPECT_EQ(cost.cubes, 1);
}

TEST(Cost, UnusedCodesAreDontCares) {
  // Three symbols in 2 bits: the unused code 11 must be usable as DC.
  const ConstraintSet cs = parse_constraints("face a b\nsymbol c");
  Encoding enc;
  enc.bits = 2;
  enc.codes = {0b00, 0b10, 0b01};  // a=00, b=10 (x0 differs), c=01
  // Face of {a,b} spans x0; c=01 is outside; satisfied.
  EXPECT_EQ(count_satisfied_faces(enc, cs), 1);
  const EncodingCost cost = evaluate_encoding_cost(enc, cs);
  EXPECT_EQ(cost.cubes, 1);
  // The single cube is x1' (one literal), only possible if 11 is DC.
  EXPECT_EQ(cost.literals, 1);
}

TEST(Cost, NoFacesZeroCost) {
  ConstraintSet cs;
  cs.symbols().intern("a");
  cs.symbols().intern("b");
  Encoding enc;
  enc.bits = 1;
  enc.codes = {0, 1};
  const EncodingCost cost = evaluate_encoding_cost(enc, cs);
  EXPECT_EQ(cost.cubes, 0);
  EXPECT_EQ(cost.literals, 0);
  EXPECT_EQ(cost.violated_faces, 0);
}


TEST(Cost, PerFaceCubesMatchExactOracleOnSmallSpaces) {
  // The per-face ESPRESSO evaluation should be optimal (or within one cube)
  // of the exact Quine-McCluskey minimizer on small code spaces.
  Rng rng(20240705);
  for (int trial = 0; trial < 10; ++trial) {
    ConstraintSet cs;
    const std::uint32_t n = 5 + static_cast<std::uint32_t>(rng.next_below(3));
    for (std::uint32_t i = 0; i < n; ++i)
      cs.symbols().intern("s" + std::to_string(i));
    std::vector<std::uint32_t> members;
    for (std::uint32_t s = 0; s < n; ++s)
      if (rng.next_bool(0.45)) members.push_back(s);
    if (members.size() < 2 || members.size() >= n) continue;
    cs.add_face_ids(members);

    Encoding enc;
    enc.bits = 3;
    enc.codes.resize(n);
    // Random injective assignment into the 3-bit space.
    std::vector<std::uint64_t> codes{0, 1, 2, 3, 4, 5, 6, 7};
    for (std::size_t i = codes.size(); i > 1; --i)
      std::swap(codes[i - 1], codes[rng.next_below(i)]);
    for (std::uint32_t s = 0; s < n; ++s) enc.codes[s] = codes[s];

    const EncodingCost heur = evaluate_encoding_cost(enc, cs);

    // Exact oracle over the same per-face function.
    const Domain dom = Domain::binary(enc.bits, 1);
    Cover on(dom), dc(dom);
    Bitset out(1);
    out.set(0);
    std::vector<bool> used(8, false);
    for (std::uint32_t s = 0; s < n; ++s) used[enc.codes[s]] = true;
    for (auto m : cs.faces()[0].members) {
      Cube c(dom);
      for (int v = 0; v < 3; ++v)
        c.bits.set(static_cast<std::size_t>(
            dom.pos(v, static_cast<int>((enc.codes[m] >> v) & 1u))));
      c.bits.set(static_cast<std::size_t>(dom.out_pos(0)));
      on.add(c);
    }
    for (std::uint64_t code = 0; code < 8; ++code) {
      if (used[code]) continue;
      Cube c(dom);
      for (int v = 0; v < 3; ++v)
        c.bits.set(static_cast<std::size_t>(
            dom.pos(v, static_cast<int>((code >> v) & 1u))));
      c.bits.set(static_cast<std::size_t>(dom.out_pos(0)));
      dc.add(c);
    }
    const auto exact = exact_minimize(on, dc);
    ASSERT_EQ(exact.status, ExactMinimizeResult::Status::kMinimized);
    ASSERT_TRUE(exact.optimal);
    EXPECT_GE(heur.cubes, static_cast<int>(exact.cover.size()));
    EXPECT_LE(heur.cubes, static_cast<int>(exact.cover.size()) + 1);
    if (heur.violated_faces == 0) {
      EXPECT_EQ(static_cast<int>(exact.cover.size()), 1);
    }
  }
}

}  // namespace
}  // namespace encodesat
