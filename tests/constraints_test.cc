// Tests for the constraint IR, the text parser, and round-tripping.
#include <gtest/gtest.h>

#include "core/constraints.h"

namespace encodesat {
namespace {

TEST(Parse, FaceWithDontCares) {
  const ConstraintSet cs = parse_constraints("face a b [c d] e");
  ASSERT_EQ(cs.faces().size(), 1u);
  const auto& f = cs.faces()[0];
  EXPECT_EQ(f.members.size(), 3u);
  EXPECT_EQ(f.dontcares.size(), 2u);
  EXPECT_EQ(cs.num_symbols(), 5u);
  EXPECT_EQ(cs.symbols().name(f.members[2]), "e");
  EXPECT_EQ(cs.symbols().name(f.dontcares[0]), "c");
}

TEST(Parse, AllConstraintKinds) {
  const ConstraintSet cs = parse_constraints(R"(
    # a comment
    face a b c
    dominance a b     # trailing comment
    disjunctive a b c
    extdisjunctive a : b c | d e
    distance2 a d
    nonface b c d
    symbol lonely
  )");
  EXPECT_EQ(cs.faces().size(), 1u);
  EXPECT_EQ(cs.dominances().size(), 1u);
  EXPECT_EQ(cs.disjunctives().size(), 1u);
  ASSERT_EQ(cs.extended_disjunctives().size(), 1u);
  EXPECT_EQ(cs.extended_disjunctives()[0].conjunctions.size(), 2u);
  EXPECT_EQ(cs.distance2s().size(), 1u);
  EXPECT_EQ(cs.nonfaces().size(), 1u);
  EXPECT_TRUE(cs.symbols().contains("lonely"));
}

TEST(Parse, Errors) {
  EXPECT_THROW(parse_constraints("face a"), std::runtime_error);
  EXPECT_THROW(parse_constraints("dominance a"), std::runtime_error);
  EXPECT_THROW(parse_constraints("dominance a a"), std::runtime_error);
  EXPECT_THROW(parse_constraints("disjunctive a b"), std::runtime_error);
  EXPECT_THROW(parse_constraints("extdisjunctive a b c"), std::runtime_error);
  EXPECT_THROW(parse_constraints("frobnicate a b"), std::runtime_error);
  EXPECT_THROW(parse_constraints("face a [b c"), std::runtime_error);
  EXPECT_THROW(parse_constraints("face a b] c"), std::runtime_error);
  EXPECT_THROW(parse_constraints("extdisjunctive a : b |"), std::runtime_error);
}

TEST(Parse, RejectsDegenerateInputs) {
  // Self-dominance a > a is vacuous/contradictory depending on reading.
  EXPECT_THROW(parse_constraints("dominance a a"), std::runtime_error);
  // Duplicate symbols within one face constraint, in either section or
  // across the member/don't-care split.
  EXPECT_THROW(parse_constraints("face a b a"), std::runtime_error);
  EXPECT_THROW(parse_constraints("face a b [c c]"), std::runtime_error);
  EXPECT_THROW(parse_constraints("face a b [a]"), std::runtime_error);
  // A disjunctive parent in its own RHS makes the constraint vacuous.
  EXPECT_THROW(parse_constraints("disjunctive a a b"), std::runtime_error);
  EXPECT_THROW(parse_constraints("disjunctive a b a"), std::runtime_error);
  // Empty extended-disjunctive conjunction.
  EXPECT_THROW(parse_constraints("extdisjunctive a : b |"),
               std::runtime_error);
  EXPECT_THROW(parse_constraints("extdisjunctive a : | b"),
               std::runtime_error);
  // The reported message names the duplicate.
  ParseError err;
  EXPECT_EQ(parse_constraints("face a b a", &err), std::nullopt);
  EXPECT_NE(err.to_string().find("duplicate symbol 'a'"), std::string::npos);
}

TEST(Parse, ToStringKeepsUnreferencedSymbols) {
  // Symbols no constraint references still shape every verdict (distinct
  // codes, face intrusion), so to_string must emit them for a faithful
  // round trip — this is what makes fuzz reproducer files replayable.
  const ConstraintSet cs = parse_constraints("face a b c\nsymbol zzz");
  const std::string text = cs.to_string();
  EXPECT_NE(text.find("symbol zzz"), std::string::npos);
  const ConstraintSet again = parse_constraints(text);
  EXPECT_EQ(again.num_symbols(), cs.num_symbols());
  EXPECT_EQ(again.to_string(), text);
}

TEST(Parse, RoundTripThroughToString) {
  const std::string text = R"(face a b [c ] e
dominance a b
disjunctive a b e
extdisjunctive a : b c | e f
distance2 a e
nonface b c e
)";
  const ConstraintSet cs = parse_constraints(text);
  const ConstraintSet again = parse_constraints(cs.to_string());
  EXPECT_EQ(cs.faces().size(), again.faces().size());
  EXPECT_EQ(cs.dominances().size(), again.dominances().size());
  EXPECT_EQ(cs.disjunctives().size(), again.disjunctives().size());
  EXPECT_EQ(cs.extended_disjunctives().size(),
            again.extended_disjunctives().size());
  EXPECT_EQ(cs.num_symbols(), again.num_symbols());
  EXPECT_EQ(cs.to_string(), again.to_string());
}

TEST(Parse, SymbolsInternedInOrderOfMention) {
  const ConstraintSet cs = parse_constraints("face x y\nface a x");
  EXPECT_EQ(cs.symbols().at("x"), 0u);
  EXPECT_EQ(cs.symbols().at("y"), 1u);
  EXPECT_EQ(cs.symbols().at("a"), 2u);
}

TEST(Symbols, InternAndLookup) {
  SymbolTable t;
  EXPECT_EQ(t.intern("a"), 0u);
  EXPECT_EQ(t.intern("b"), 1u);
  EXPECT_EQ(t.intern("a"), 0u);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.name(1), "b");
  EXPECT_THROW(t.at("zzz"), std::out_of_range);
}

TEST(IndexBitset, Builds) {
  const Bitset b = index_bitset(6, {1, 4});
  EXPECT_TRUE(b.test(1));
  EXPECT_TRUE(b.test(4));
  EXPECT_EQ(b.count(), 2u);
}

}  // namespace
}  // namespace encodesat
