// Tests for the arena-backed flat term store (util/term_arena.h) behind
// the SOP fold and unate-covering hot paths.
#include "util/term_arena.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/bitset.h"
#include "util/rng.h"

namespace encodesat {
namespace {

TEST(TermArena, AllocStartsZeroedAndStrideMatchesUniverse) {
  TermArena a(130);  // 3 words
  EXPECT_EQ(a.universe(), 130u);
  EXPECT_EQ(a.words(), 3u);
  const TermRef t = a.alloc();
  EXPECT_TRUE(a.empty(t));
  EXPECT_EQ(a.count(t), 0u);
  EXPECT_EQ(a.first(t), 130u);
  a.set(t, 0);
  a.set(t, 64);
  a.set(t, 129);
  EXPECT_EQ(a.count(t), 3u);
  EXPECT_EQ(a.first(t), 0u);
  EXPECT_TRUE(a.test(t, 129));
  a.reset(t, 64);
  EXPECT_FALSE(a.test(t, 64));
  EXPECT_EQ(a.count(t), 2u);
}

TEST(TermArena, ReleaseReusesSlotsWithoutGrowingTheBuffer) {
  TermArena a(64);
  const TermRef t0 = a.alloc();
  const TermRef t1 = a.alloc();
  a.set(t1, 7);
  EXPECT_EQ(a.live_terms(), 2u);
  EXPECT_EQ(a.capacity_terms(), 2u);
  a.release(t1);
  EXPECT_EQ(a.live_terms(), 1u);
  // The freed slot comes back zeroed, and the buffer does not grow.
  const TermRef t2 = a.alloc();
  EXPECT_EQ(t2, t1);
  EXPECT_TRUE(a.empty(t2));
  EXPECT_EQ(a.capacity_terms(), 2u);
  EXPECT_EQ(a.peak_bytes(), 2 * sizeof(std::uint64_t));
  (void)t0;
}

TEST(TermArena, CloneCopiesAcrossBufferGrowth) {
  // clone() appends to the buffer, which may reallocate; the copy must
  // still read the source from its new location.
  TermArena a(200);
  const TermRef src = a.alloc();
  a.set(src, 3);
  a.set(src, 150);
  for (int i = 0; i < 50; ++i) {
    const TermRef c = a.clone(src);
    EXPECT_TRUE(a.equal(src, c));
  }
  EXPECT_EQ(a.live_terms(), 51u);
}

TEST(TermArena, WordLevelSetOpsMatchBitset) {
  Rng rng(20260806);
  TermArena a(190);
  for (int trial = 0; trial < 20; ++trial) {
    Bitset x(190), y(190);
    for (std::size_t i = 0; i < 190; ++i) {
      if (rng.next_bool(0.3)) x.set(i);
      if (rng.next_bool(0.3)) y.set(i);
    }
    const TermRef tx = a.from_bitset(x);
    const TermRef ty = a.from_bitset(y);
    EXPECT_EQ(a.to_bitset(tx), x);
    EXPECT_EQ(a.count(tx), x.count());
    EXPECT_EQ(a.is_subset(tx, ty), x.is_subset_of(y));
    EXPECT_EQ(a.intersects(tx, ty), x.intersects(y));
    EXPECT_EQ(a.equal(tx, ty), x == y);
    EXPECT_EQ(a.less(tx, ty), x < y);

    const TermRef u = a.clone(tx);
    a.or_into(u, ty);
    EXPECT_EQ(a.to_bitset(u), x | y);
    const TermRef d = a.alloc();
    a.andnot_of(d, tx, ty);
    Bitset diff = x;
    diff.subtract(y);
    EXPECT_EQ(a.to_bitset(d), diff);

    a.release(d);
    a.release(u);
    a.release(ty);
    a.release(tx);
  }
  EXPECT_EQ(a.live_terms(), 0u);
}

TEST(TermArena, SignatureIsSoundForSubsetPruning) {
  // a ⊆ b implies sig(a) & ~sig(b) == 0, for every pair: the contrapositive
  // is the one-word rejection used by keep_minimal_terms.
  Rng rng(77);
  TermArena a(300);
  std::vector<TermRef> terms;
  for (int i = 0; i < 30; ++i) {
    const TermRef t = a.alloc();
    for (std::size_t e = 0; e < 300; ++e)
      if (rng.next_bool(0.1)) a.set(t, e);
    terms.push_back(t);
  }
  for (const TermRef p : terms)
    for (const TermRef q : terms)
      if (a.is_subset(p, q)) {
        EXPECT_EQ(a.signature(p) & ~a.signature(q), 0u);
      }
}

TEST(TermArena, ForEachVisitsInIncreasingOrder) {
  TermArena a(140);
  const TermRef t = a.alloc();
  const std::size_t want[] = {0, 63, 64, 70, 139};
  for (std::size_t i : want) a.set(t, i);
  std::vector<std::size_t> got;
  a.for_each(t, [&](std::size_t i) { got.push_back(i); });
  ASSERT_EQ(got.size(), 5u);
  for (std::size_t k = 0; k < got.size(); ++k) EXPECT_EQ(got[k], want[k]);
}

TEST(TermArena, TermGuardReleasesOnScopeExit) {
  TermArena a(64);
  {
    TermGuard g(a);
    g.track(a.alloc());
    g.track(a.alloc());
    EXPECT_EQ(a.live_terms(), 2u);
  }
  EXPECT_EQ(a.live_terms(), 0u);
  // Slots freed by the guard are reused.
  (void)a.alloc();
  EXPECT_EQ(a.capacity_terms(), 2u);
}

TEST(TermArena, EmptyUniverseStillHasOneWordStride) {
  TermArena a(0);
  EXPECT_EQ(a.words(), 1u);
  const TermRef t = a.alloc();
  EXPECT_TRUE(a.empty(t));
  EXPECT_EQ(a.signature(t), 0u);
}

}  // namespace
}  // namespace encodesat
