// ThreadSanitizer smoke test for the execution-context concurrency layer.
//
// Built with -fsanitize=thread unconditionally (see tests/CMakeLists.txt)
// and run as part of the regular ctest pass, so every data-race regression
// in Budget / CancelToken / parallel_for fails the tier-1 suite even when
// the main build is uninstrumented. Plain main, no gtest: the gtest
// libraries in the toolchain are not TSan-instrumented.
//
// Exercises the exact sharing patterns the pipeline uses: one Budget
// charged and polled from many workers, cancellation flipped mid-flight
// from an outside thread, slot-per-index parallel fills, and exception
// propagation out of a worker.
#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/exec.h"
#include "util/thread_pool.h"

using namespace encodesat;

namespace {

int failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++failures;
  }
}

void shared_budget_charging() {
  Budget budget;
  budget.set_work_limit(50'000);
  StageStats stats("smoke");
  const ExecContext ctx{&budget, &stats, 4};
  std::atomic<int> trips{0};
  parallel_for(10'000, 4, [&](std::size_t) {
    if (!ctx.charge(7)) trips.fetch_add(1, std::memory_order_relaxed);
    ctx.poll();
  });
  check(budget.exhausted(), "work limit tripped");
  check(budget.reason() == Truncation::kWorkBudget, "work budget reason");
  check(budget.work_used() == 70'000u, "exact accumulation");
  check(trips.load() > 0, "some workers observed the trip");
}

void cancellation_mid_flight() {
  CancelToken token;
  Budget budget;
  budget.set_cancel_token(&token);
  std::thread canceller([&token] { token.cancel(); });
  // Workers poll while the cancel races in; TSan checks the accesses.
  parallel_for(5'000, 4, [&](std::size_t) { budget.poll(); });
  canceller.join();
  budget.poll();
  check(budget.reason() == Truncation::kCancelled, "cancellation observed");
}

void slot_fills_deterministic() {
  const std::size_t n = 20'000;
  std::vector<std::uint64_t> seq(n), par(n);
  parallel_for(n, 1, [&](std::size_t i) { seq[i] = i * 2654435761u; });
  parallel_for(n, 8, [&](std::size_t i) { par[i] = i * 2654435761u; });
  check(seq == par, "slot fills match sequential");
}

void exception_propagation() {
  bool threw = false;
  try {
    parallel_for(1'000, 4, [&](std::size_t i) {
      if (i == 500) throw std::runtime_error("boom");
    });
  } catch (const std::runtime_error&) {
    threw = true;
  }
  check(threw, "worker exception rethrown on caller");
}

void deadline_racing_pollers() {
  Budget budget;
  budget.set_deadline_after(-1.0);
  parallel_for(2'000, 4, [&](std::size_t) { budget.poll(); });
  check(budget.reason() == Truncation::kDeadline, "deadline tripped");
}

}  // namespace

int main() {
  shared_budget_charging();
  cancellation_mid_flight();
  slot_fills_deterministic();
  exception_propagation();
  deadline_racing_pollers();
  if (failures == 0) std::printf("tsan smoke: all checks passed\n");
  return failures == 0 ? 0 : 1;
}
