// Tests for the Section 8 extension constraints: distance-2 (testability)
// and non-face constraints, via the binate-covering solver.
#include <gtest/gtest.h>

#include "core/extensions.h"
#include "core/solver.h"
#include "core/verify.h"

namespace encodesat {
namespace {

// All extension behaviour is exercised through the Solver facade, pinned to
// the extension pipeline (kAuto would route plain sets to the exact one).
SolveResult solve_ext(const ConstraintSet& cs) {
  SolveOptions so;
  so.pipeline = SolveOptions::Pipeline::kExtensions;
  return Solver(cs).encode(so);
}

TEST(Extensions, MatchesExactOnPlainProblems) {
  const ConstraintSet cs = parse_constraints(R"(
    face s0 s1
    dominance s0 s1
    dominance s1 s2
    disjunctive s0 s1 s3
  )");
  const SolveResult res = solve_ext(cs);
  ASSERT_EQ(res.status, SolveResult::Status::kEncoded);
  EXPECT_EQ(res.encoding.bits, 2);  // same as Figure 8's exact answer
  EXPECT_TRUE(verify_encoding(res.encoding, cs).empty());
}

TEST(Extensions, Distance2IsEnforced) {
  const ConstraintSet cs = parse_constraints(R"(
    face a b
    distance2 a b
    symbol c
    symbol d
  )");
  const SolveResult res = solve_ext(cs);
  ASSERT_EQ(res.status, SolveResult::Status::kEncoded);
  EXPECT_TRUE(verify_encoding(res.encoding, cs).empty());
  // Distance-2 between face partners forces at least 3 bits... actually at
  // least one extra splitting column beyond the minimum 2.
  EXPECT_GE(res.encoding.bits, 3);
}

TEST(Extensions, Distance2WithoutFace) {
  const ConstraintSet cs = parse_constraints(R"(
    distance2 a b
    distance2 c d
    symbol e
  )");
  const SolveResult res = solve_ext(cs);
  ASSERT_EQ(res.status, SolveResult::Status::kEncoded);
  EXPECT_TRUE(verify_encoding(res.encoding, cs).empty());
}

TEST(Extensions, Section83NonFaceExample) {
  // Faces (a,b), (b,c,d), (a,e), (d,f) plus non-face (a,b,e): the paper
  // gives a 3-bit witness where the face of {a,b,e} also contains c.
  const ConstraintSet cs = parse_constraints(R"(
    face a b
    face b c d
    face a e
    face d f
    nonface a b e
  )");
  const SolveResult res = solve_ext(cs);
  ASSERT_EQ(res.status, SolveResult::Status::kEncoded);
  EXPECT_TRUE(verify_encoding(res.encoding, cs).empty());
}

TEST(Extensions, NonFaceAloneForcesSharing) {
  const ConstraintSet cs = parse_constraints(R"(
    nonface a b
    symbol c
    symbol d
  )");
  const SolveResult res = solve_ext(cs);
  ASSERT_EQ(res.status, SolveResult::Status::kEncoded);
  EXPECT_TRUE(verify_encoding(res.encoding, cs).empty());
}

TEST(Extensions, NonFaceWithNoOutsiderIsInfeasible) {
  // Every symbol is in the non-face set: nobody can intrude.
  const ConstraintSet cs = parse_constraints("nonface a b");
  const SolveResult res = solve_ext(cs);
  EXPECT_EQ(res.status, SolveResult::Status::kInfeasible);
}

TEST(Extensions, InfeasibleOutputConstraintsDetected) {
  const ConstraintSet cs = parse_constraints(R"(
    dominance a b
    dominance b a
    distance2 a b
  )");
  const SolveResult res = solve_ext(cs);
  EXPECT_EQ(res.status, SolveResult::Status::kInfeasible);
}

TEST(Extensions, ConflictingFaceAndNonFace) {
  // face (a,b) requires an exclusive face; nonface (a,b) requires an
  // intruder in that face: unsatisfiable together.
  const ConstraintSet cs = parse_constraints(R"(
    face a b
    nonface a b
    symbol c
    symbol d
  )");
  const SolveResult res = solve_ext(cs);
  EXPECT_EQ(res.status, SolveResult::Status::kInfeasible);
}

}  // namespace
}  // namespace encodesat
