// Tests for espresso-format PLA I/O.
#include <gtest/gtest.h>

#include "logic/pla.h"
#include "logic/urp.h"

namespace encodesat {
namespace {

TEST(Pla, ReadsTypeFd) {
  const Pla pla = read_pla_string(R"(
.i 3
.o 2
.ilb x y z
.ob f g
.type fd
.p 3
01- 10
1-1 01
110 --
.e
)");
  EXPECT_EQ(pla.domain.num_inputs(), 3);
  EXPECT_EQ(pla.domain.num_outputs(), 2);
  EXPECT_EQ(pla.on.size(), 2u);
  EXPECT_EQ(pla.dc.size(), 1u);
  EXPECT_EQ(pla.input_labels,
            (std::vector<std::string>{"x", "y", "z"}));
}

TEST(Pla, ReadsTypeFrOffset) {
  const Pla pla = read_pla_string(R"(
.i 2
.o 1
.type fr
11 1
00 0
)");
  EXPECT_EQ(pla.on.size(), 1u);
  EXPECT_EQ(pla.off.size(), 1u);
  EXPECT_TRUE(pla.dc.empty());
}

TEST(Pla, MixedOutputsSplitAcrossCovers) {
  const Pla pla = read_pla_string(R"(
.i 1
.o 3
.type fd
1 1-0
)");
  ASSERT_EQ(pla.on.size(), 1u);
  ASSERT_EQ(pla.dc.size(), 1u);
  EXPECT_TRUE(pla.on[0].bits.test(
      static_cast<std::size_t>(pla.domain.out_pos(0))));
  EXPECT_TRUE(pla.dc[0].bits.test(
      static_cast<std::size_t>(pla.domain.out_pos(1))));
}

TEST(Pla, RoundTripPreservesFunction) {
  const std::string text = R"(
.i 4
.o 2
.type fd
01-- 11
1--1 10
0011 --
)";
  const Pla pla = read_pla_string(text);
  const Pla again = read_pla_string(write_pla_string(pla));
  EXPECT_TRUE(covers_equivalent(pla.on, again.on, Cover(pla.domain)));
  EXPECT_TRUE(covers_equivalent(pla.dc, again.dc, Cover(pla.domain)));
}

TEST(Pla, Errors) {
  EXPECT_THROW(read_pla_string("01 1\n"), std::runtime_error);  // no header
  EXPECT_THROW(read_pla_string(".i 2\n.o 1\n011 1\n"), std::runtime_error);
  EXPECT_THROW(read_pla_string(".i 2\n.o 1\n.magic\n01 1\n"),
               std::runtime_error);
  EXPECT_THROW(read_pla_string(".i 2\n.o 1\n01 x\n"), std::runtime_error);
}

TEST(Pla, WhitespaceTolerant) {
  const Pla pla = read_pla_string(".i 2\n.o 1\n0 1   1\n");
  EXPECT_EQ(pla.on.size(), 1u);
}

}  // namespace
}  // namespace encodesat
