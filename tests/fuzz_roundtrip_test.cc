// Randomized round-trip ("fuzz-lite") tests for the text formats and the
// constraint IR: write → parse → write must be a fixpoint, and the parsed
// structures must be semantically identical.
#include <gtest/gtest.h>

#include "core/constraints.h"
#include "fsm/fsm.h"
#include "logic/pla.h"
#include "logic/urp.h"
#include "util/rng.h"

namespace encodesat {
namespace {

class PlaRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PlaRoundTrip, WriteParseWriteIsFixpoint) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 3);
  Pla pla;
  const int ni = 2 + static_cast<int>(rng.next_below(5));
  const int no = 1 + static_cast<int>(rng.next_below(4));
  pla.domain = Domain::binary(ni, no);
  pla.on = Cover(pla.domain);
  pla.dc = Cover(pla.domain);
  pla.off = Cover(pla.domain);
  const int cubes = 1 + static_cast<int>(rng.next_below(12));
  for (int i = 0; i < cubes; ++i) {
    std::string in, out;
    for (int v = 0; v < ni; ++v) in += "01--"[rng.next_below(4)];
    for (int o = 0; o < no; ++o) out += "01"[rng.next_below(2)];
    if (out.find('1') == std::string::npos) out[0] = '1';
    if (rng.next_bool(0.25))
      pla.dc.add(cube_from_string(pla.domain, in, out));
    else
      pla.on.add(cube_from_string(pla.domain, in, out));
  }
  const std::string text1 = write_pla_string(pla);
  const Pla again = read_pla_string(text1);
  const std::string text2 = write_pla_string(again);
  EXPECT_EQ(text1, text2);
  EXPECT_TRUE(covers_equivalent(pla.on, again.on, Cover(pla.domain)));
  EXPECT_TRUE(covers_equivalent(pla.dc, again.dc, Cover(pla.domain)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlaRoundTrip, ::testing::Range(0, 15));

class KissRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(KissRoundTrip, WriteParseWriteIsFixpoint) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 577 + 9);
  Fsm fsm;
  fsm.num_inputs = 1 + static_cast<int>(rng.next_below(4));
  fsm.num_outputs = 1 + static_cast<int>(rng.next_below(4));
  const int n = 2 + static_cast<int>(rng.next_below(6));
  for (int s = 0; s < n; ++s) fsm.states.intern("q" + std::to_string(s));
  fsm.reset_state = static_cast<int>(rng.next_below(n));
  const int edges = 2 + static_cast<int>(rng.next_below(12));
  for (int e = 0; e < edges; ++e) {
    FsmTransition t;
    for (int v = 0; v < fsm.num_inputs; ++v)
      t.input += "01--"[rng.next_below(4)];
    for (int o = 0; o < fsm.num_outputs; ++o)
      t.output += "01--"[rng.next_below(4)];
    t.from = static_cast<std::uint32_t>(rng.next_below(n));
    t.to = static_cast<std::uint32_t>(rng.next_below(n));
    fsm.transitions.push_back(std::move(t));
  }
  // Make every state appear in some transition so the .s count written
  // matches what a re-parse reconstructs.
  for (int s = 0; s < n; ++s) {
    FsmTransition t;
    t.input.assign(static_cast<std::size_t>(fsm.num_inputs), '-');
    t.output.assign(static_cast<std::size_t>(fsm.num_outputs), '0');
    t.from = static_cast<std::uint32_t>(s);
    t.to = static_cast<std::uint32_t>(s);
    fsm.transitions.push_back(std::move(t));
  }
  const std::string text1 = write_kiss2_string(fsm);
  const Fsm again = parse_kiss2_string(text1);
  EXPECT_EQ(write_kiss2_string(again), text1);
  // States are re-interned in order of appearance, so indices may differ;
  // identity is by name. (A state never mentioned in a transition can only
  // be the reset state itself, which the parser interns from .r.)
  ASSERT_GE(again.reset_state, 0);
  EXPECT_EQ(again.states.name(static_cast<std::uint32_t>(again.reset_state)),
            fsm.states.name(static_cast<std::uint32_t>(fsm.reset_state)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KissRoundTrip, ::testing::Range(0, 15));

class ConstraintRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ConstraintRoundTrip, ToStringParsesBack) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 947 + 21);
  ConstraintSet cs;
  const std::uint32_t n = 4 + static_cast<std::uint32_t>(rng.next_below(6));
  for (std::uint32_t i = 0; i < n; ++i)
    cs.symbols().intern("v" + std::to_string(i));
  for (int f = 0; f < 3; ++f) {
    std::vector<std::uint32_t> members, dcs;
    for (std::uint32_t s = 0; s < n; ++s) {
      const double r = rng.next_double();
      if (r < 0.3) members.push_back(s);
      else if (r < 0.4) dcs.push_back(s);
    }
    if (members.size() >= 2) cs.add_face_ids(members, dcs);
  }
  for (int i = 0; i < 2; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(n));
    const auto b = static_cast<std::uint32_t>(rng.next_below(n));
    if (a != b) cs.add_dominance_ids(a, b);
  }
  if (n >= 3)
    cs.add_disjunctive_ids(0, {1, 2});
  cs.add_distance2("v0", "v1");
  cs.add_extended_disjunctive("v0", {{"v1", "v2"}, {"v3"}});

  const ConstraintSet again = parse_constraints(cs.to_string());
  EXPECT_EQ(again.to_string(), cs.to_string());
  EXPECT_EQ(again.faces().size(), cs.faces().size());
  EXPECT_EQ(again.dominances().size(), cs.dominances().size());
  EXPECT_EQ(again.extended_disjunctives().size(),
            cs.extended_disjunctives().size());
  EXPECT_EQ(again.distance2s().size(), cs.distance2s().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstraintRoundTrip, ::testing::Range(0, 15));

}  // namespace
}  // namespace encodesat
