// Tests for the algebraic-factoring literal estimate.
#include <gtest/gtest.h>

#include "logic/factor.h"
#include "util/rng.h"

namespace encodesat {
namespace {

Cube bcube(const Domain& dom, const std::string& in, const std::string& out) {
  return cube_from_string(dom, in, out);
}

TEST(Factor, SingleCubeIsItsLiterals) {
  const Domain dom = Domain::binary(4, 1);
  Cover f(dom);
  f.add(bcube(dom, "10-1", "1"));
  EXPECT_EQ(factored_literal_estimate_single(f), 3);
}

TEST(Factor, CommonLiteralIsShared) {
  // ab + ac: SOP has 4 literals; a(b + c) has 3.
  const Domain dom = Domain::binary(3, 1);
  Cover f(dom);
  f.add(bcube(dom, "11-", "1"));
  f.add(bcube(dom, "1-1", "1"));
  EXPECT_EQ(f.input_literals(), 4);
  EXPECT_EQ(factored_literal_estimate_single(f), 3);
}

TEST(Factor, DeeperSharing) {
  // abc + abd + ae -> a(b(c + d) + e): 5 literals vs SOP's 8.
  const Domain dom = Domain::binary(5, 1);
  Cover f(dom);
  f.add(bcube(dom, "111--", "1"));
  f.add(bcube(dom, "11-1-", "1"));
  f.add(bcube(dom, "1---1", "1"));
  EXPECT_EQ(f.input_literals(), 8);
  EXPECT_EQ(factored_literal_estimate_single(f), 5);
}

TEST(Factor, NoSharingEqualsSop) {
  // ab + cd: nothing to factor.
  const Domain dom = Domain::binary(4, 1);
  Cover f(dom);
  f.add(bcube(dom, "11--", "1"));
  f.add(bcube(dom, "--11", "1"));
  EXPECT_EQ(factored_literal_estimate_single(f), 4);
}

TEST(Factor, MultiOutputSumsPerOutput) {
  const Domain dom = Domain::binary(2, 2);
  Cover f(dom);
  f.add(bcube(dom, "1-", "11"));  // appears in both outputs
  f.add(bcube(dom, "-1", "01"));
  EXPECT_EQ(factored_literal_estimate(f), 1 + 2);
}

TEST(Factor, EmptyCoverIsZero) {
  EXPECT_EQ(factored_literal_estimate(Cover(Domain::binary(2, 1))), 0);
}

class FactorBound : public ::testing::TestWithParam<int> {};

TEST_P(FactorBound, NeverExceedsSopLiterals) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 67 + 29);
  const Domain dom = Domain::binary(4 + static_cast<int>(rng.next_below(3)), 1);
  Cover f(dom);
  for (int i = 0; i < 8; ++i) {
    std::string in;
    for (int v = 0; v < dom.num_inputs(); ++v) in += "01--"[rng.next_below(4)];
    f.add(cube_from_string(dom, in, "1"));
  }
  const int factored = factored_literal_estimate_single(f);
  EXPECT_LE(factored, f.input_literals());
  EXPECT_GE(factored, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FactorBound, ::testing::Range(0, 15));

}  // namespace
}  // namespace encodesat
