// Tests for chain constraints (Section 8.4) — the class the paper leaves
// open for dichotomy methods, solved here by pruned backtracking.
#include <gtest/gtest.h>

#include "core/chains.h"
#include "core/verify.h"

namespace encodesat {
namespace {

TEST(Chains, Section84Example) {
  // Faces (b,c), (a,b) and the chain (d - b - c - a). The paper's witness:
  // a = 00, b = 10, c = 11, d = 01 (the chain wraps 11 -> 00).
  ConstraintSet cs = parse_constraints("face b c\nface a b\nsymbol d");
  ChainConstraint chain;
  for (const char* s : {"d", "b", "c", "a"})
    chain.sequence.push_back(cs.symbols().at(s));
  const auto res = encode_with_chains(cs, {chain}, 2);
  ASSERT_EQ(res.status, ChainEncodeResult::Status::kEncoded);
  EXPECT_TRUE(chains_satisfied(res.encoding, {chain}));
  EXPECT_TRUE(verify_encoding(res.encoding, cs).empty());
}

TEST(Chains, LongChainGetsConsecutiveCodes) {
  // The paper's 9-state chain (a - b - ... - i) in 4 bits.
  ConstraintSet cs;
  ChainConstraint chain;
  for (char c = 'a'; c <= 'i'; ++c)
    chain.sequence.push_back(cs.symbols().intern(std::string(1, c)));
  const auto res = encode_with_chains(cs, {chain}, 4);
  ASSERT_EQ(res.status, ChainEncodeResult::Status::kEncoded);
  EXPECT_TRUE(chains_satisfied(res.encoding, {chain}));
  // Consecutive modulo 16.
  for (std::size_t i = 0; i + 1 < chain.sequence.size(); ++i)
    EXPECT_EQ((res.encoding.codes[chain.sequence[i]] + 1) & 15,
              res.encoding.codes[chain.sequence[i + 1]]);
}

TEST(Chains, TwoChainsPlusFreeSymbols) {
  ConstraintSet cs;
  ChainConstraint c1, c2;
  for (const char* s : {"p", "q", "r"}) c1.sequence.push_back(cs.symbols().intern(s));
  for (const char* s : {"x", "y"}) c2.sequence.push_back(cs.symbols().intern(s));
  cs.symbols().intern("free1");
  cs.symbols().intern("free2");
  const auto res = encode_with_chains(cs, {c1, c2}, 3);
  ASSERT_EQ(res.status, ChainEncodeResult::Status::kEncoded);
  EXPECT_TRUE(chains_satisfied(res.encoding, {c1, c2}));
  EXPECT_TRUE(verify_encoding(res.encoding, cs).empty());
}

TEST(Chains, InfeasibleCombinationDetected) {
  // Chain (a-b-c-d) fills the whole 2-bit space; the face of the three
  // codes {a, b, d} always spans the entire 2-cube (three distinct points
  // of a 2-cube never lie on one edge), so c always intrudes: infeasible.
  ConstraintSet cs = parse_constraints("face a b d\nsymbol c");
  ChainConstraint chain;
  for (const char* s : {"a", "b", "c", "d"})
    chain.sequence.push_back(cs.symbols().at(s));
  const auto res = encode_with_chains(cs, {chain}, 2);
  EXPECT_EQ(res.status, ChainEncodeResult::Status::kInfeasible);
}

TEST(Chains, HonorsOutputConstraints) {
  ConstraintSet cs = parse_constraints("dominance a b\nsymbol c\nsymbol d");
  ChainConstraint chain;
  chain.sequence = {cs.symbols().at("c"), cs.symbols().at("d")};
  const auto res = encode_with_chains(cs, {chain}, 2);
  ASSERT_EQ(res.status, ChainEncodeResult::Status::kEncoded);
  EXPECT_TRUE(verify_encoding(res.encoding, cs).empty());
  EXPECT_TRUE(chains_satisfied(res.encoding, {chain}));
}

TEST(Chains, ArgumentValidation) {
  ConstraintSet cs = parse_constraints("symbol a\nsymbol b");
  ChainConstraint chain;
  chain.sequence = {0, 1};
  EXPECT_THROW(encode_with_chains(cs, {chain, chain}, 2),
               std::invalid_argument);
  EXPECT_THROW(encode_with_chains(cs, {}, 0), std::invalid_argument);
  ConstraintSet big;
  for (int i = 0; i < 5; ++i) big.symbols().intern("s" + std::to_string(i));
  EXPECT_THROW(encode_with_chains(big, {}, 2), std::invalid_argument);
}

}  // namespace
}  // namespace encodesat
