// Tests for constraint-set normalization.
#include <gtest/gtest.h>

#include "core/encoder.h"
#include "core/normalize.h"
#include "core/solver.h"
#include "util/rng.h"

namespace encodesat {
namespace {

TEST(Normalize, DedupesFaces) {
  ConstraintSet cs = parse_constraints(R"(
    face a b c
    face c b a
    face a b [d] c
    symbol e
  )");
  const auto stats = normalize_constraints(cs);
  EXPECT_EQ(stats.duplicate_faces, 1u);
  EXPECT_EQ(cs.faces().size(), 2u);  // the don't-care variant is distinct
}

TEST(Normalize, DropsTrivialFaces) {
  ConstraintSet cs;
  for (const char* s : {"a", "b", "c"}) cs.symbols().intern(s);
  cs.add_face_ids({0, 1, 2});     // covers everything: no dichotomies
  cs.add_face_ids({0});           // single member
  cs.add_face_ids({0, 1});        // genuine
  const auto stats = normalize_constraints(cs);
  EXPECT_EQ(stats.trivial_faces, 2u);
  ASSERT_EQ(cs.faces().size(), 1u);
  EXPECT_EQ(cs.faces()[0].members.size(), 2u);
}

TEST(Normalize, FaceWithDontCaresCoveringAllIsTrivial) {
  ConstraintSet cs;
  for (const char* s : {"a", "b", "c"}) cs.symbols().intern(s);
  cs.add_face_ids({0, 1}, {2});
  const auto stats = normalize_constraints(cs);
  EXPECT_EQ(stats.trivial_faces, 1u);
  EXPECT_TRUE(cs.faces().empty());
}

TEST(Normalize, TransitiveDominanceRemoved) {
  ConstraintSet cs = parse_constraints(R"(
    dominance a b
    dominance b c
    dominance a c
  )");
  const auto stats = normalize_constraints(cs);
  EXPECT_EQ(stats.transitive_dominances, 1u);
  EXPECT_EQ(cs.dominances().size(), 2u);
  for (const auto& d : cs.dominances()) {
    EXPECT_FALSE(d.dominator == cs.symbols().at("a") &&
                 d.dominated == cs.symbols().at("c"));
  }
}

TEST(Normalize, DominanceCycleKept) {
  ConstraintSet cs = parse_constraints("dominance a b\ndominance b a");
  normalize_constraints(cs);
  EXPECT_EQ(cs.dominances().size(), 2u);
  EXPECT_FALSE(Solver(cs).feasible());
}

TEST(Normalize, DuplicateDominanceAndDisjunctive) {
  ConstraintSet cs = parse_constraints(R"(
    dominance a b
    dominance a b
    disjunctive p a b
    disjunctive p b a
  )");
  const auto stats = normalize_constraints(cs);
  EXPECT_EQ(stats.duplicate_dominances, 1u);
  EXPECT_EQ(stats.duplicate_disjunctives, 1u);
  EXPECT_EQ(cs.dominances().size(), 1u);
  EXPECT_EQ(cs.disjunctives().size(), 1u);
}

class NormalizePreserves : public ::testing::TestWithParam<int> {};

TEST_P(NormalizePreserves, FeasibilityAndMinimumLengthUnchanged) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 409 + 13);
  ConstraintSet cs;
  const std::uint32_t n = 4 + static_cast<std::uint32_t>(rng.next_below(3));
  for (std::uint32_t i = 0; i < n; ++i)
    cs.symbols().intern("s" + std::to_string(i));
  for (int f = 0; f < 4; ++f) {
    std::vector<std::uint32_t> members;
    for (std::uint32_t s = 0; s < n; ++s)
      if (rng.next_bool(0.4)) members.push_back(s);
    if (members.size() >= 2) cs.add_face_ids(std::move(members));
  }
  for (int i = 0; i < 4; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(n));
    const auto b = static_cast<std::uint32_t>(rng.next_below(n));
    if (a != b) cs.add_dominance_ids(a, b);
  }
  ConstraintSet normalized = cs;
  normalize_constraints(normalized);

  const SolveResult before = Solver(cs).encode();
  const SolveResult after = Solver(normalized).encode();
  ASSERT_NE(before.status, SolveResult::Status::kTruncated);
  EXPECT_EQ(before.status, after.status);
  if (before.status == SolveResult::Status::kEncoded &&
      before.minimal && after.minimal) {
    EXPECT_EQ(before.encoding.bits, after.encoding.bits) << cs.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizePreserves, ::testing::Range(0, 25));

}  // namespace
}  // namespace encodesat
