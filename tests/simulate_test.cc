// Behavioural-equivalence tests: the encoded, ESPRESSO-minimized PLA must
// implement exactly the symbolic machine, for arbitrary valid encodings.
#include <gtest/gtest.h>

#include "core/bounded.h"
#include "fsm/encode_fsm.h"
#include "fsm/mcnc_like.h"
#include "fsm/simulate.h"
#include "logic/espresso.h"

namespace encodesat {
namespace {

TEST(EvalCover, OrsMatchingCubes) {
  const Domain dom = Domain::binary(2, 2);
  Cover f(dom);
  f.add(cube_from_string(dom, "1-", "10"));
  f.add(cube_from_string(dom, "-1", "01"));
  EXPECT_EQ(eval_cover(f, {true, true}).to_vector(),
            (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(eval_cover(f, {true, false}).to_vector(),
            (std::vector<std::size_t>{0}));
  EXPECT_TRUE(eval_cover(f, {false, false}).empty());
}

TEST(SymbolicStep, MatchesCubesAndReportsUnspecified) {
  Fsm fsm = parse_kiss2_string(R"(
.i 2
.o 1
10 a b 1
0- a a 0
-- b a 1
)");
  SymbolicStep step;
  ASSERT_TRUE(symbolic_step(fsm, {true, false}, fsm.states.at("a"), &step));
  EXPECT_EQ(step.next_state, fsm.states.at("b"));
  ASSERT_TRUE(symbolic_step(fsm, {false, true}, fsm.states.at("a"), &step));
  EXPECT_EQ(step.next_state, fsm.states.at("a"));
  // "11" from a is unspecified.
  EXPECT_FALSE(symbolic_step(fsm, {true, true}, fsm.states.at("a"), &step));
}

class EncodedEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(EncodedEquivalence, MinimizedPlaImplementsTheMachine) {
  const Fsm fsm = make_mcnc_like(benchmark_spec(GetParam()));
  // Arbitrary (naive) encoding: the equivalence must hold for any codes.
  Encoding enc;
  enc.bits = minimum_code_length(fsm.num_states());
  enc.codes.resize(fsm.num_states());
  for (std::uint32_t s = 0; s < fsm.num_states(); ++s) enc.codes[s] = s;

  const Pla pla = encode_fsm(fsm, enc);
  const Cover minimized = espresso(pla.on, pla.dc);
  const auto report =
      check_encoded_equivalence(fsm, enc, minimized, /*steps=*/400);
  EXPECT_TRUE(report.equivalent) << report.first_mismatch;
  EXPECT_GT(report.steps_checked, 100u);
}

INSTANTIATE_TEST_SUITE_P(Machines, EncodedEquivalence,
                         ::testing::Values("dk512", "master", "cse",
                                           "donfile", "keyb"));

TEST(EncodedEquivalence, HoldsForHeuristicCodesToo) {
  const Fsm fsm = make_mcnc_like(benchmark_spec("dk512"));
  const ConstraintSet cs = [&] {
    ConstraintSet c;
    for (std::uint32_t s = 0; s < fsm.num_states(); ++s)
      c.symbols().intern(fsm.states.name(s));
    return c;
  }();
  BoundedEncodeOptions opts;
  const auto res =
      bounded_encode(cs, minimum_code_length(fsm.num_states()), opts);
  const Pla pla = encode_fsm(fsm, res.encoding);
  const Cover minimized = espresso(pla.on, pla.dc);
  const auto report =
      check_encoded_equivalence(fsm, res.encoding, minimized, 300);
  EXPECT_TRUE(report.equivalent) << report.first_mismatch;
}

TEST(EncodedEquivalence, DetectsACorruptedCover) {
  const Fsm fsm = make_mcnc_like(benchmark_spec("dk512"));
  Encoding enc;
  enc.bits = minimum_code_length(fsm.num_states());
  enc.codes.resize(fsm.num_states());
  for (std::uint32_t s = 0; s < fsm.num_states(); ++s) enc.codes[s] = s;
  // An implementation that never asserts anything must be caught quickly.
  const Cover broken(encode_fsm(fsm, enc).domain);
  const auto report = check_encoded_equivalence(fsm, enc, broken, 2000);
  EXPECT_FALSE(report.equivalent);
  EXPECT_FALSE(report.first_mismatch.empty());
}

}  // namespace
}  // namespace encodesat
