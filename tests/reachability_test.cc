// Tests for FSM reachability analysis and unreachable-state pruning.
#include <gtest/gtest.h>

#include "fsm/mcnc_like.h"
#include "fsm/reachability.h"

namespace encodesat {
namespace {

TEST(Reachability, FindsReachableSet) {
  const Fsm fsm = parse_kiss2_string(R"(
.i 1
.o 1
.r a
0 a b 0
1 b a 1
0 c d 0
1 d c 1
)");
  const auto seen = reachable_states(fsm);
  EXPECT_TRUE(seen[fsm.states.at("a")]);
  EXPECT_TRUE(seen[fsm.states.at("b")]);
  EXPECT_FALSE(seen[fsm.states.at("c")]);
  EXPECT_FALSE(seen[fsm.states.at("d")]);
}

TEST(Reachability, PruneRemovesIslandAndKeepsBehaviour) {
  const Fsm fsm = parse_kiss2_string(R"(
.i 1
.o 1
.r a
0 a b 0
1 b a 1
0 c d 0
1 d c 1
)");
  const auto res = prune_unreachable(fsm);
  EXPECT_EQ(res.removed, 2u);
  EXPECT_EQ(res.fsm.num_states(), 2u);
  EXPECT_EQ(res.fsm.transitions.size(), 2u);
  EXPECT_EQ(res.fsm.states.name(
                static_cast<std::uint32_t>(res.fsm.reset_state)),
            "a");
  EXPECT_EQ(res.old_of_new.size(), 2u);
  EXPECT_EQ(fsm.states.name(res.old_of_new[0]), "a");
}

TEST(Reachability, DefaultsToStateZeroWithoutReset) {
  const Fsm fsm = parse_kiss2_string(R"(
.i 1
.o 1
0 x y 0
1 y x 1
0 z z 0
)");
  const auto seen = reachable_states(fsm);
  EXPECT_TRUE(seen[fsm.states.at("x")]);
  EXPECT_TRUE(seen[fsm.states.at("y")]);
  EXPECT_FALSE(seen[fsm.states.at("z")]);
}

TEST(Reachability, GeneratedMachinesAreFullyReachableAfterPrune) {
  for (const char* name : {"dk512", "cse", "donfile"}) {
    const Fsm fsm = make_mcnc_like(benchmark_spec(name));
    const auto res = prune_unreachable(fsm);
    const auto seen = reachable_states(res.fsm);
    for (std::uint32_t s = 0; s < res.fsm.num_states(); ++s)
      EXPECT_TRUE(seen[s]);
  }
}

TEST(Reachability, EmptyMachine) {
  Fsm fsm;
  fsm.num_inputs = 1;
  fsm.num_outputs = 1;
  EXPECT_TRUE(reachable_states(fsm).empty());
  EXPECT_EQ(prune_unreachable(fsm).removed, 0u);
}

}  // namespace
}  // namespace encodesat
