// Observability subsystem (src/obs): span tracer, counter registry,
// telemetry report. The deterministic surfaces under test are the ones the
// differential fuzzer and CI lean on: balanced spans under any drop
// pattern, span-name multisets and counter fingerprints identical across
// thread counts, and the telemetry-v2 schema pinned by a golden file
// (numbers normalized — shape is the contract). Regenerate the golden with:
//
//   ./build/tests/encodesat_tests --gtest_also_run_disabled_tests
//       --gtest_filter='*TelemetryGolden*PrintCurrent'
//
// and paste the output into tests/data/solve_telemetry.golden.json.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/solver.h"
#include "obs/counters.h"
#include "obs/reqlog.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace encodesat {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

ConstraintSet mixed_constraints() {
  return parse_constraints(read_file(
      std::string(ENCODESAT_EXAMPLES_DATA_DIR) + "/mixed.constraints"));
}

// --- Tracer ----------------------------------------------------------------

TEST(Tracer, RecordsBalancedSpans) {
  Tracer t;
  {
    TraceScope outer(&t, "outer");
    TraceScope inner(&t, "inner");
  }
  { TraceScope again(&t, "outer"); }
  EXPECT_EQ(t.event_count(), 6u);  // 3 begins + 3 ends
  EXPECT_EQ(t.dropped_events(), 0u);
  EXPECT_TRUE(t.spans_balanced());
  const auto counts = t.span_counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts.at("outer"), 2u);
  EXPECT_EQ(counts.at("inner"), 1u);
}

TEST(Tracer, TraceScopeOnNullSinkIsANoop) {
  // ExecContext{} carries no tracer; TRACE_SCOPE must compile to nothing
  // observable at such call sites.
  const ExecContext ctx{};
  TRACE_SCOPE(ctx, "nothing");
  SUCCEED();
}

TEST(Tracer, DropPolicyKeepsEveryThreadBalanced) {
  // Capacity 4 with nesting depth 3: the log fills mid-tree. Begins past
  // capacity are dropped with their matching ends; ends for *recorded*
  // begins are appended even past capacity, so the sequence stays a
  // balanced nesting string and the footer owns the drop count.
  Tracer t(4);
  for (int i = 0; i < 8; ++i) {
    TraceScope a(&t, "a");
    TraceScope b(&t, "b");
    TraceScope c(&t, "c");
  }
  EXPECT_TRUE(t.spans_balanced());
  EXPECT_GT(t.dropped_events(), 0u);
  EXPECT_GE(t.event_count(), 4u);
  // Each dropped span lost a begin and an end; the span total is the
  // lossiness signal the footer and obs.trace.dropped report.
  EXPECT_GT(t.dropped_spans(), 0u);
  EXPECT_EQ(t.dropped_events(), 2 * t.dropped_spans());
  std::ostringstream json;
  t.write_chrome_trace(json);
  EXPECT_NE(json.str().find("\"dropped_events\""), std::string::npos);
  EXPECT_NE(json.str().find("\"dropped_spans\":" +
                            std::to_string(t.dropped_spans())),
            std::string::npos);
}

TEST(Tracer, LosslessTraceReportsZeroDroppedSpans) {
  Tracer t;
  { TraceScope s(&t, "solve"); }
  EXPECT_EQ(t.dropped_spans(), 0u);
  std::ostringstream json;
  t.write_chrome_trace(json);
  EXPECT_NE(json.str().find("\"dropped_spans\":0"), std::string::npos);
}

TEST(Tracer, ChromeTraceJsonShape) {
  Tracer t;
  { TraceScope s(&t, "solve"); }
  std::ostringstream out;
  t.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"solve\""), std::string::npos);
  EXPECT_NE(json.find("\"schema\":\"encodesat-trace-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"events\":2"), std::string::npos);
}

TEST(Tracer, ThreadsGetSeparateTids) {
  Tracer t;
  { TraceScope main_span(&t, "main"); }
  std::thread worker([&t] { TraceScope s(&t, "worker"); });
  worker.join();
  EXPECT_EQ(t.event_count(), 4u);
  EXPECT_TRUE(t.spans_balanced());
  std::ostringstream out;
  t.write_chrome_trace(out);
  EXPECT_NE(out.str().find("\"tid\":1"), std::string::npos);
  EXPECT_NE(out.str().find("\"tid\":2"), std::string::npos);
}

TEST(Tracer, SolveSpanMultisetIdenticalAcrossThreads) {
  // The structural face of the determinism contract: the multiset of span
  // names a solve emits is a pure function of the inputs, not of the
  // thread count (only timestamps and tid assignment may differ).
  const ConstraintSet cs = mixed_constraints();
  Tracer t1, t4;
  SolveOptions o1, o4;
  o1.exec.threads = 1;
  o1.exec.tracer = &t1;
  o4.exec.threads = 4;
  o4.exec.tracer = &t4;
  const SolveResult r1 = Solver(cs).encode(o1);
  const SolveResult r4 = Solver(cs).encode(o4);
  ASSERT_EQ(r1.status, SolveResult::Status::kEncoded);
  ASSERT_EQ(r4.status, SolveResult::Status::kEncoded);
  EXPECT_TRUE(t1.spans_balanced());
  EXPECT_TRUE(t4.spans_balanced());
  EXPECT_GT(t1.event_count(), 0u);
  EXPECT_EQ(t1.span_counts(), t4.span_counts());
  // The existing StageScope tree and the explicit TRACE_SCOPE sites both
  // land in the same trace.
  const auto counts = t1.span_counts();
  EXPECT_EQ(counts.count("solve"), 1u);
  EXPECT_EQ(counts.count("prime_generation"), 1u);
  EXPECT_EQ(counts.count("sop_fold"), 1u);
}

// --- MetricsRegistry -------------------------------------------------------

TEST(Metrics, RegisterAddSnapshot) {
  MetricsRegistry m;
  m.counter("b.second")->add(2);
  m.counter("a.first")->add(40);
  m.counter("a.first")->add(2);
  m.counter("zero.registered");  // registration at value 0 still appears
  const auto samples = m.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a.first");  // name-sorted
  EXPECT_EQ(samples[0].value, 42u);
  EXPECT_EQ(samples[1].name, "b.second");
  EXPECT_EQ(samples[2].name, "zero.registered");
  EXPECT_EQ(samples[2].value, 0u);
}

TEST(Metrics, StablePointersAndRecordMax) {
  MetricsRegistry m;
  MetricsRegistry::Metric* peak = m.counter("peak", true);
  for (int i = 0; i < 100; ++i) m.counter("filler_" + std::to_string(i));
  peak->record_max(7);
  peak->record_max(3);  // lower value must not regress the high-water mark
  EXPECT_EQ(m.counter("peak")->value(), 7u);
  EXPECT_EQ(m.counter("peak"), peak);  // map-backed: address is stable
}

TEST(Metrics, FingerprintExcludesNonFingerprintMetrics) {
  MetricsRegistry a, b;
  a.counter("det")->add(5);
  b.counter("det")->add(5);
  a.counter("wall_ms", /*in_fingerprint=*/false)->add(123);
  b.counter("wall_ms", /*in_fingerprint=*/false)->add(987);
  EXPECT_EQ(a.fingerprint(), "det=5;");
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint_hash(), b.fingerprint_hash());
  a.counter("det")->add(1);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Metrics, MergeFromAccumulates) {
  MetricsRegistry total, run;
  total.counter("x")->add(1);
  run.counter("x")->add(2);
  run.counter("y")->add(3);
  total.merge_from(run);
  EXPECT_EQ(total.counter("x")->value(), 3u);
  EXPECT_EQ(total.counter("y")->value(), 3u);
}

TEST(Metrics, Fnv1a64KnownVectors) {
  // Published FNV-1a test vectors: offset basis for "", and "a".
  EXPECT_EQ(fnv1a64(std::string()), 14695981039346656037ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fingerprint_hex(0xaf63dc4c8601ec8cull), "af63dc4c8601ec8c");
}

TEST(Metrics, SolveFingerprintIdenticalAcrossThreads) {
  // The fuzzer's `counters` agreement rule, as a unit test: same inputs,
  // different thread counts, bit-identical fingerprint (names and values).
  const ConstraintSet cs = mixed_constraints();
  MetricsRegistry m1, m4;
  SolveOptions o1, o4;
  o1.exec.threads = 1;
  o1.exec.metrics = &m1;
  o4.exec.threads = 4;
  o4.exec.metrics = &m4;
  ASSERT_EQ(Solver(cs).encode(o1).status, SolveResult::Status::kEncoded);
  ASSERT_EQ(Solver(cs).encode(o4).status, SolveResult::Status::kEncoded);
  EXPECT_FALSE(m1.fingerprint().empty());
  EXPECT_EQ(m1.fingerprint(), m4.fingerprint());
  EXPECT_EQ(m1.counter("solve.runs")->value(), 1u);
  EXPECT_GT(m1.counter("primes.folds")->value(), 0u);
  EXPECT_GT(m1.counter("cover.nodes")->value(), 0u);
  // The fuzzer's `histograms` rule, same shape: work-valued histogram
  // bucket counts are bit-identical across thread counts, and duration
  // histograms (solve.stage_us) stay out of the fingerprint.
  EXPECT_FALSE(m1.histogram_fingerprint().empty());
  EXPECT_EQ(m1.histogram_fingerprint(), m4.histogram_fingerprint());
  EXPECT_EQ(m1.histogram("solve.work")->count(), 1u);
  EXPECT_GT(m1.histogram("solve.stage_us")->count(), 0u);
  EXPECT_EQ(m1.histogram_fingerprint().find("solve.stage_us"),
            std::string::npos);
}

// --- RequestLog ------------------------------------------------------------

ReqLogRecord ok_record(const std::string& id, std::uint64_t total_us) {
  ReqLogRecord rec;
  rec.id = id;
  rec.status = "ok";
  rec.disposition = "solve";
  rec.queue_us = 1;
  rec.solve_us = total_us > 1 ? total_us - 1 : 0;
  rec.total_us = total_us;
  rec.work = 10;
  rec.counters.emplace_back("bits", 2);
  return rec;
}

TEST(RequestLog, SamplesEveryNthAndAlwaysLogsErrors) {
  const std::string path = testing::TempDir() + "/reqlog_sampling.ndjson";
  std::remove(path.c_str());
  ReqLogConfig cfg;
  cfg.path = path;
  cfg.sample_every = 2;
  RequestLog log(cfg);
  ASSERT_TRUE(log.ok()) << log.open_error();
  // 4 ok requests at 1-in-2 sampling: the 1st and 3rd land.
  EXPECT_TRUE(log.log(ok_record("r1", 10)));
  EXPECT_FALSE(log.log(ok_record("r2", 10)));
  EXPECT_TRUE(log.log(ok_record("r3", 10)));
  EXPECT_FALSE(log.log(ok_record("r4", 10)));
  // Errors bypass sampling (and do not advance its phase).
  ReqLogRecord err = ok_record("r5", 10);
  err.status = "overloaded";
  err.disposition = "rejected";
  err.error = true;
  EXPECT_TRUE(log.log(err));
  EXPECT_EQ(log.lines_written(), 3u);

  std::istringstream lines(read_file(path));
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_NE(line.find("\"schema\":\"encodesat-reqlog-v1\""),
              std::string::npos);
  }
  EXPECT_EQ(n, 3u);
}

TEST(RequestLog, SlowRequestBypassesSamplingAndAttachesSpans) {
  const std::string path = testing::TempDir() + "/reqlog_slow.ndjson";
  std::remove(path.c_str());
  ReqLogConfig cfg;
  cfg.path = path;
  cfg.sample_every = 0;  // sampled logging off: only errors/slow land
  cfg.slow_us = 1000;
  RequestLog log(cfg);
  ASSERT_TRUE(log.ok());
  EXPECT_FALSE(log.log(ok_record("fast", 999)));

  StageStats stats("solve");
  stats.work = 7;
  stats.add_child("prime_generation")->items = 3;
  ReqLogRecord slow = ok_record("slow1", 5000);
  slow.stats = &stats;
  EXPECT_TRUE(log.log(slow));

  const std::string text = read_file(path);
  EXPECT_NE(text.find("\"id\":\"slow1\""), std::string::npos);
  EXPECT_NE(text.find("\"slow\":true"), std::string::npos);
  EXPECT_NE(text.find("\"spans\":{"), std::string::npos);
  EXPECT_NE(text.find("prime_generation"), std::string::npos);
  EXPECT_NE(text.find("\"counters\":{\"bits\":2}"), std::string::npos);
  EXPECT_EQ(text.find("\"id\":\"fast\""), std::string::npos);
}

TEST(RequestLog, UnopenableFileReportsError) {
  ReqLogConfig cfg;
  cfg.path = "/nonexistent-dir-zzz/reqlog.ndjson";
  RequestLog log(cfg);
  EXPECT_FALSE(log.ok());
  EXPECT_FALSE(log.open_error().empty());
  EXPECT_FALSE(log.log(ok_record("r1", 10)));
}

// --- Telemetry -------------------------------------------------------------

// Zeroes every numeric value, blanks the fingerprint hex and empties the
// histogram bucket maps: the schema (key set, order, counter and histogram
// *names*) is the contract, values are not. Buckets must go entirely —
// duration histograms (solve.stage_us) land in different buckets from run
// to run, so even the *keys* are not stable.
std::string normalize_telemetry(std::string json) {
  static const std::regex kFingerprint(
      "\"counter_fingerprint\":\"[0-9a-f]{16}\"");
  json = std::regex_replace(json, kFingerprint,
                            "\"counter_fingerprint\":\"0\"");
  static const std::regex kBuckets("\"buckets\":\\{[^}]*\\}");
  json = std::regex_replace(json, kBuckets, "\"buckets\":{}");
  static const std::regex kNumber(":[0-9.eE+-]+");
  return std::regex_replace(json, kNumber, ":0");
}

std::string solve_telemetry_json() {
  Tracer tracer;
  MetricsRegistry metrics;
  SolveOptions opts;
  opts.exec.tracer = &tracer;
  opts.exec.metrics = &metrics;
  const SolveResult res = Solver(mixed_constraints()).encode(opts);
  EXPECT_EQ(res.status, SolveResult::Status::kEncoded);
  TelemetryOptions topts;
  topts.tool = "solve";
  topts.stats = &res.stats;
  topts.metrics = &metrics;
  topts.tracer = &tracer;
  return telemetry_to_json(topts);
}

TEST(TelemetryGolden, SolveTelemetrySchemaMatchesGoldenFile) {
  const std::string golden =
      read_file(std::string(ENCODESAT_TESTS_DATA_DIR) +
                "/solve_telemetry.golden.json");
  std::string want = golden;
  while (!want.empty() && (want.back() == '\n' || want.back() == '\r'))
    want.pop_back();
  EXPECT_EQ(normalize_telemetry(solve_telemetry_json()), want)
      << "telemetry schema drifted; update "
      << "tests/data/solve_telemetry.golden.json (see header comment) and "
      << "document the change in docs/OBSERVABILITY.md";
}

TEST(TelemetryGolden, NullSectionsSerializeAsNull) {
  TelemetryOptions topts;
  topts.tool = "bench";
  const std::string json = telemetry_to_json(topts);
  EXPECT_NE(json.find("\"schema\":\"encodesat-telemetry-v2\""),
            std::string::npos);
  EXPECT_NE(json.find("\"tool\":\"bench\""), std::string::npos);
  EXPECT_NE(json.find("\"stats\":null"), std::string::npos);
  EXPECT_NE(json.find("\"trace\":null"), std::string::npos);
  EXPECT_NE(json.find("\"counters\":{}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{}"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{}"), std::string::npos);
  // Empty registry fingerprint = FNV-1a offset basis.
  EXPECT_NE(json.find(fingerprint_hex(fnv1a64(std::string()))),
            std::string::npos);
}

// Not a check: prints the current normalized schema for regeneration.
TEST(TelemetryGolden, DISABLED_PrintCurrent) {
  std::printf("%s\n", normalize_telemetry(solve_telemetry_json()).c_str());
}

}  // namespace
}  // namespace encodesat
