// Algebraic-law property tests for the dichotomy framework primitives —
// the invariants the paper's proofs lean on.
#include <gtest/gtest.h>

#include "core/dichotomy.h"
#include "core/generate.h"
#include "core/output_rules.h"
#include "util/rng.h"

namespace encodesat {
namespace {

Dichotomy random_dichotomy(Rng& rng, std::size_t n, double density = 0.35) {
  Dichotomy d(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    const double r = rng.next_double();
    if (r < density) d.left.set(s);
    else if (r < 2 * density) d.right.set(s);
  }
  return d;
}

class DichotomyAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(DichotomyAlgebra, CompatibilityIsSymmetric) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 11 + 1);
  const std::size_t n = 4 + rng.next_below(12);
  for (int i = 0; i < 20; ++i) {
    const auto a = random_dichotomy(rng, n);
    const auto b = random_dichotomy(rng, n);
    EXPECT_EQ(a.compatible(b), b.compatible(a));
  }
}

TEST_P(DichotomyAlgebra, UnionIsCommutativeAndCoversBoth) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 2);
  const std::size_t n = 4 + rng.next_below(12);
  for (int i = 0; i < 20; ++i) {
    const auto a = random_dichotomy(rng, n);
    const auto b = random_dichotomy(rng, n);
    if (!a.compatible(b)) continue;
    const auto u1 = a.union_with(b);
    const auto u2 = b.union_with(a);
    EXPECT_EQ(u1, u2);
    EXPECT_TRUE(u1.well_formed());
    EXPECT_TRUE(u1.covers(a));
    EXPECT_TRUE(u1.covers(b));
  }
}

TEST_P(DichotomyAlgebra, CoveringIsTransitiveAndFlipInvariant) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 3);
  const std::size_t n = 4 + rng.next_below(10);
  for (int i = 0; i < 30; ++i) {
    const auto a = random_dichotomy(rng, n);
    const auto b = random_dichotomy(rng, n);
    const auto c = random_dichotomy(rng, n);
    if (a.covers(b) && b.covers(c)) {
      EXPECT_TRUE(a.covers(c));
    }
    // Definition 3.4 allows the swapped orientation, so flipping either
    // side never changes coverage.
    EXPECT_EQ(a.covers(b), a.flipped().covers(b));
    EXPECT_EQ(a.covers(b), a.covers(b.flipped()));
  }
}

TEST_P(DichotomyAlgebra, CompatibleUnionPreservesValidity) {
  // Validity is an intersection of per-constraint conditions on block
  // membership; the union of two dichotomies valid for a dominance
  // constraint can violate it only through new left/right pairs, which is
  // exactly what this sweep exercises.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 23 + 4);
  const std::size_t n = 6;
  ConstraintSet cs;
  for (std::uint32_t i = 0; i < n; ++i)
    cs.symbols().intern("s" + std::to_string(i));
  cs.add_dominance_ids(0, 1);
  cs.add_dominance_ids(2, 3);
  for (int i = 0; i < 40; ++i) {
    auto a = random_dichotomy(rng, n);
    auto b = random_dichotomy(rng, n);
    if (!a.compatible(b)) continue;
    const auto u = a.union_with(b);
    // If the union is valid then each part must have been valid (validity
    // is monotone under removal of symbols).
    if (dichotomy_valid(u, cs)) {
      EXPECT_TRUE(dichotomy_valid(a, cs));
      EXPECT_TRUE(dichotomy_valid(b, cs));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DichotomyAlgebra, ::testing::Range(0, 10));

class RaisedValiditySweep : public ::testing::TestWithParam<int> {};

TEST_P(RaisedValiditySweep, RaisedDichotomiesSatisfyTheoremSixOne) {
  // Theorem 6.1's "if" direction: completing any valid maximally raised
  // dichotomy by sending all unplaced symbols to the right block yields a
  // column that satisfies every output constraint.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 9);
  const std::uint32_t n = 5 + static_cast<std::uint32_t>(rng.next_below(4));
  ConstraintSet cs;
  for (std::uint32_t i = 0; i < n; ++i)
    cs.symbols().intern("s" + std::to_string(i));
  for (int i = 0; i < 4; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(n));
    const auto b = static_cast<std::uint32_t>(rng.next_below(n));
    if (a != b) cs.add_dominance_ids(a, b);
  }
  if (n >= 4) {
    const auto p = static_cast<std::uint32_t>(rng.next_below(n));
    const auto c1 = static_cast<std::uint32_t>(rng.next_below(n));
    const auto c2 = static_cast<std::uint32_t>(rng.next_below(n));
    if (p != c1 && p != c2 && c1 != c2) cs.add_disjunctive_ids(p, {c1, c2});
  }

  auto column_satisfies_outputs = [&](const Dichotomy& d) {
    // left = 0, everything else = 1.
    auto bit = [&](std::uint32_t s) { return d.in_left(s) ? 0 : 1; };
    for (const auto& dom : cs.dominances())
      if (bit(dom.dominator) == 0 && bit(dom.dominated) == 1) return false;
    for (const auto& dj : cs.disjunctives()) {
      int orv = 0;
      for (auto c : dj.children) orv |= bit(c);
      if (orv != bit(dj.parent)) return false;
    }
    return true;
  };

  for (const auto& i : generate_initial_dichotomies(cs)) {
    if (!dichotomy_valid(i.dichotomy, cs)) continue;
    Dichotomy raised = i.dichotomy;
    if (!raise_dichotomy(raised, cs)) continue;
    if (!dichotomy_valid(raised, cs)) continue;
    EXPECT_TRUE(column_satisfies_outputs(raised))
        << raised.to_string(cs.symbols()) << "\n"
        << cs.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaisedValiditySweep, ::testing::Range(0, 25));

}  // namespace
}  // namespace encodesat
