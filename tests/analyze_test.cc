// Tests for FSM static analysis (determinism / completeness / stats).
#include <gtest/gtest.h>

#include "fsm/analyze.h"
#include "fsm/mcnc_like.h"

namespace encodesat {
namespace {

TEST(Analyze, CleanDeterministicCompleteMachine) {
  const Fsm fsm = parse_kiss2_string(R"(
.i 1
.o 1
0 a b 1
1 a a 0
- b a -
)");
  const auto res = analyze_fsm(fsm);
  EXPECT_TRUE(res.deterministic);
  EXPECT_TRUE(res.complete);
  EXPECT_TRUE(res.issues.empty());
  EXPECT_EQ(res.transitions, 3u);
  EXPECT_EQ(res.dont_care_outputs, 1u);
  EXPECT_EQ(res.max_fanout, 2);
}

TEST(Analyze, DetectsConflict) {
  const Fsm fsm = parse_kiss2_string(R"(
.i 2
.o 1
1- a b 1
11 a c 1
)");
  const auto res = analyze_fsm(fsm);
  EXPECT_FALSE(res.deterministic);
  bool found = false;
  for (const auto& i : res.issues)
    if (i.kind == FsmIssue::Kind::kConflict) found = true;
  EXPECT_TRUE(found);
}

TEST(Analyze, AgreeingOverlapIsBenign) {
  const Fsm fsm = parse_kiss2_string(R"(
.i 2
.o 1
1- a b 1
11 a b -
0- a a 0
)");
  const auto res = analyze_fsm(fsm);
  EXPECT_TRUE(res.deterministic);
  bool overlap = false;
  for (const auto& i : res.issues)
    if (i.kind == FsmIssue::Kind::kOverlap) overlap = true;
  EXPECT_TRUE(overlap);
}

TEST(Analyze, DetectsIncompleteness) {
  const Fsm fsm = parse_kiss2_string(R"(
.i 2
.o 1
00 a a 0
)");
  const auto res = analyze_fsm(fsm);
  EXPECT_FALSE(res.complete);
  ASSERT_FALSE(res.issues.empty());
  EXPECT_EQ(res.issues[0].kind, FsmIssue::Kind::kIncomplete);
}

TEST(Analyze, GeneratedSuiteIsDeterministic) {
  for (const char* name : {"dk512", "cse", "tbk"}) {
    const Fsm fsm = make_mcnc_like(benchmark_spec(name));
    const auto res = analyze_fsm(fsm);
    EXPECT_TRUE(res.deterministic) << name;
    EXPECT_TRUE(res.complete) << name;
  }
}

}  // namespace
}  // namespace encodesat
