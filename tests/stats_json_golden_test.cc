// Golden-file test pinning the `encodesat_cli solve --stats-json` output
// schema. The CLI prints SolveResult::stats.to_json() verbatim, so this
// pins the same serialization at the library level: stage names, tree
// structure, key set and key order are all frozen by a committed golden
// file. Volatile numbers (elapsed_s always; work/items for the schema
// comparison) are normalized to 0 — the *shape* is the contract, see
// docs/API.md. Regenerate with:
//
//   ./build/tests/encodesat_tests --gtest_also_run_disabled_tests
//       --gtest_filter='*StatsJsonGolden*PrintCurrent'
//
// and paste the output into tests/data/solve_stats.golden.json.
#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <sstream>
#include <string>

#include "core/solver.h"

namespace encodesat {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

ConstraintSet mixed_constraints() {
  return parse_constraints(read_file(
      std::string(ENCODESAT_EXAMPLES_DATA_DIR) + "/mixed.constraints"));
}

// Zeroes the wall-clock field only: work/items stay exact.
std::string normalize_elapsed(std::string json) {
  static const std::regex kElapsed("\"elapsed_s\":[0-9.eE+-]+");
  return std::regex_replace(json, kElapsed, "\"elapsed_s\":0");
}

// Zeroes every numeric value, leaving names/structure/truncation: the
// schema comparison against the golden file.
std::string normalize_numbers(std::string json) {
  static const std::regex kNumber(":[0-9.eE+-]+");
  return std::regex_replace(json, kNumber, ":0");
}

TEST(StatsJsonGolden, SolveStatsSchemaMatchesGoldenFile) {
  const SolveResult res = Solver(mixed_constraints()).encode();
  ASSERT_EQ(res.status, SolveResult::Status::kEncoded);
  const std::string golden =
      read_file(std::string(ENCODESAT_TESTS_DATA_DIR) +
                "/solve_stats.golden.json");
  // The golden file is committed with numbers already zeroed; tolerate a
  // trailing newline from editors.
  std::string want = golden;
  while (!want.empty() && (want.back() == '\n' || want.back() == '\r'))
    want.pop_back();
  EXPECT_EQ(normalize_numbers(res.stats.to_json()), want)
      << "stats-json schema drifted; update tests/data/solve_stats.golden.json"
      << " (see header comment) and document the change in docs/API.md";
}

TEST(StatsJsonGolden, StatsJsonDeterministicAcrossThreads) {
  // The determinism contract (docs/API.md): threads=4 must match the
  // sequential run bit-for-bit, including the stage tree and its exact
  // work/items counters — only wall-clock may differ.
  SolveOptions seq;
  seq.exec.threads = 1;
  SolveOptions par;
  par.exec.threads = 4;
  const ConstraintSet cs = mixed_constraints();
  const SolveResult a = Solver(cs).encode(seq);
  const SolveResult b = Solver(cs).encode(par);
  EXPECT_EQ(normalize_elapsed(a.stats.to_json()),
            normalize_elapsed(b.stats.to_json()));
  EXPECT_EQ(a.encoding.codes, b.encoding.codes);
}

TEST(StatsJsonGolden, TruncationFieldShapeIsUniform) {
  // Budget expiry must surface as the documented uniform shape: status
  // kTruncated, truncated == true, truncation naming the tripped budget —
  // and the stats tree still serializes.
  SolveOptions so;
  so.exec.max_work = 1;  // trip immediately
  const SolveResult res = Solver(mixed_constraints()).encode(so);
  EXPECT_EQ(res.status, SolveResult::Status::kTruncated);
  EXPECT_TRUE(res.truncated);
  EXPECT_NE(res.truncation, Truncation::kNone);
  EXPECT_EQ(res.truncated, res.truncation != Truncation::kNone);
  EXPECT_NE(res.stats.to_json().find("\"truncation\""), std::string::npos);
}

// Not a check: prints the current normalized schema for regeneration.
TEST(StatsJsonGolden, DISABLED_PrintCurrent) {
  const SolveResult res = Solver(mixed_constraints()).encode();
  std::printf("%s\n", normalize_numbers(res.stats.to_json()).c_str());
}

}  // namespace
}  // namespace encodesat
