// Tests for the Section 4 binate-covering abstraction (Figure 1), including
// its use as a brute-force oracle against the dichotomy-based exact encoder.
#include <gtest/gtest.h>

#include "core/binate_table.h"
#include "core/encoder.h"
#include "core/solver.h"
#include "core/verify.h"
#include "util/rng.h"

namespace encodesat {
namespace {

TEST(BinateTable, Figure1Structure) {
  // Symbols a, b, c with (a,b), b > c, b = a OR c: 6 encoding columns
  // (patterns 001..110) and negative rows for every column violating an
  // output constraint.
  const ConstraintSet cs = parse_constraints(R"(
    face a b
    dominance b c
    disjunctive b a c
  )");
  const BinateTable table = build_binate_table(cs);
  EXPECT_EQ(table.patterns.size(), 6u);  // 2^3 - 2
  EXPECT_GT(table.num_unate_rows, 0u);
  EXPECT_GT(table.num_negative_rows, 0u);
  // b > c forbids every column with bit(b)=0, bit(c)=1.
  for (std::size_t c = 0; c < table.patterns.size(); ++c) {
    const std::uint64_t p = table.patterns[c];
    const bool violates_dom = ((p >> 1) & 1u) == 0 && ((p >> 2) & 1u) == 1;
    const bool violates_disj =
        (((p >> 0) | (p >> 2)) & 1u) != ((p >> 1) & 1u);
    bool forbidden = false;
    for (std::size_t r = table.num_unate_rows; r < table.problem.rows.size();
         ++r)
      if (table.problem.rows[r].neg.test(c)) forbidden = true;
    EXPECT_EQ(forbidden, violates_dom || violates_disj) << "column " << c;
  }
}

TEST(BinateTable, Figure1Solves) {
  const ConstraintSet cs = parse_constraints(R"(
    face a b
    dominance b c
    disjunctive b a c
  )");
  const auto res = binate_table_encode(cs);
  ASSERT_TRUE(res.feasible);
  EXPECT_TRUE(res.minimal);
  EXPECT_TRUE(verify_encoding(res.encoding, cs).empty());
  EXPECT_EQ(res.encoding.bits, 2);
}

TEST(BinateTable, DetectsFigure4Infeasibility) {
  const ConstraintSet cs = parse_constraints(R"(
    face s1 s5
    face s2 s5
    face s4 s5
    symbol s0
    symbol s3
    dominance s0 s1
    dominance s0 s2
    dominance s0 s3
    dominance s0 s5
    dominance s1 s3
    dominance s2 s3
    dominance s4 s5
    dominance s5 s2
    dominance s5 s3
    disjunctive s0 s1 s2
  )");
  EXPECT_FALSE(binate_table_encode(cs).feasible);
}

TEST(BinateTable, NodeBudgetTruncationIsNotInfeasibility) {
  // Four symbols need two code bits chosen among seven distinct cuts, and
  // no root reduction decides between them — the search must branch. Under
  // a one-node budget the encode must report a truncated miss, never an
  // infeasibility certificate.
  const ConstraintSet cs = parse_constraints(R"(
    symbol a
    symbol b
    symbol c
    symbol d
  )");
  BinateCoverOptions tiny;
  tiny.max_nodes = 1;
  const auto res = binate_table_encode(cs, tiny);
  EXPECT_FALSE(res.feasible);
  EXPECT_TRUE(res.truncated);
  EXPECT_EQ(res.truncation, Truncation::kNodeLimit);
  EXPECT_FALSE(res.proven_infeasible());
}

TEST(BinateTable, InfeasibilityProvenEvenUnderTinyBudget) {
  // Mutual dominance forces equal codes, so every column separating a and
  // b is forbidden and a uniqueness row empties during root reduction:
  // proven infeasible (not truncated) even with a one-node budget.
  const ConstraintSet cs = parse_constraints(R"(
    face a b c
    dominance a b
    dominance b a
  )");
  BinateCoverOptions tiny;
  tiny.max_nodes = 1;
  const auto res = binate_table_encode(cs, tiny);
  EXPECT_FALSE(res.feasible);
  EXPECT_FALSE(res.truncated);
  EXPECT_EQ(res.truncation, Truncation::kNone);
  EXPECT_TRUE(res.proven_infeasible());
}

TEST(BinateTable, RefusesLargeUniverse) {
  ConstraintSet cs;
  for (int i = 0; i < 25; ++i) cs.symbols().intern("s" + std::to_string(i));
  EXPECT_THROW(build_binate_table(cs), std::invalid_argument);
}

// Random cross-check: the dichotomy-based exact encoder and the brute-force
// binate oracle must agree on feasibility and minimum code length.
class OracleCrossCheck : public ::testing::TestWithParam<int> {};

ConstraintSet random_constraints(Rng& rng, std::uint32_t n,
                                 bool with_outputs) {
  ConstraintSet cs;
  for (std::uint32_t i = 0; i < n; ++i)
    cs.symbols().intern("s" + std::to_string(i));
  const int nfaces = 1 + static_cast<int>(rng.next_below(3));
  for (int f = 0; f < nfaces; ++f) {
    std::vector<std::uint32_t> members;
    for (std::uint32_t s = 0; s < n; ++s)
      if (rng.next_bool(0.4)) members.push_back(s);
    if (members.size() < 2 || members.size() >= n) continue;
    cs.add_face_ids(std::move(members));
  }
  if (with_outputs) {
    const int ndom = static_cast<int>(rng.next_below(3));
    for (int i = 0; i < ndom; ++i) {
      const auto a = static_cast<std::uint32_t>(rng.next_below(n));
      const auto b = static_cast<std::uint32_t>(rng.next_below(n));
      if (a != b) cs.add_dominance_ids(a, b);
    }
    if (rng.next_bool(0.5) && n >= 3) {
      const auto p = static_cast<std::uint32_t>(rng.next_below(n));
      auto c1 = static_cast<std::uint32_t>(rng.next_below(n));
      auto c2 = static_cast<std::uint32_t>(rng.next_below(n));
      if (p != c1 && p != c2 && c1 != c2)
        cs.add_disjunctive_ids(p, {c1, c2});
    }
  }
  return cs;
}

TEST_P(OracleCrossCheck, ExactMatchesBinateOracle) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7321 + 17);
  const std::uint32_t n = 3 + static_cast<std::uint32_t>(rng.next_below(3));
  const ConstraintSet cs = random_constraints(rng, n, GetParam() % 2 == 0);

  const auto oracle = binate_table_encode(cs);
  const SolveResult exact = Solver(cs).encode();
  ASSERT_NE(exact.status, SolveResult::Status::kTruncated);

  if (!oracle.feasible) {
    EXPECT_EQ(exact.status, SolveResult::Status::kInfeasible)
        << cs.to_string();
    return;
  }
  ASSERT_EQ(exact.status, SolveResult::Status::kEncoded)
      << cs.to_string();
  EXPECT_TRUE(verify_encoding(exact.encoding, cs).empty()) << cs.to_string();
  ASSERT_TRUE(oracle.minimal);
  ASSERT_TRUE(exact.minimal);
  EXPECT_EQ(exact.encoding.bits, oracle.encoding.bits) << cs.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleCrossCheck, ::testing::Range(0, 40));

}  // namespace
}  // namespace encodesat
