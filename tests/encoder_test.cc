// Tests for the feasibility check (P-1) and the exact encoder (P-2),
// anchored on the paper's worked examples:
//  - the abstract's example (face + dominance + disjunctive, 2 bits),
//  - Figure 3 (input-only example, 4 prime columns),
//  - Figure 4 (infeasible mixed constraints; the local-consistency check
//    wrongly answers feasible),
//  - Figure 8 (exact mixed encoding, 2 bits),
//  - Section 8.1 (encoding don't-cares change the minimum from 4 to 3).
#include <gtest/gtest.h>

#include "core/encoder.h"
#include "core/local_check.h"
#include "core/solver.h"
#include "core/verify.h"

namespace encodesat {
namespace {

ConstraintSet figure4_constraints() {
  return parse_constraints(R"(
    symbol s0
    symbol s1
    symbol s2
    symbol s3
    symbol s4
    symbol s5
    face s1 s5
    face s2 s5
    face s4 s5
    dominance s0 s1
    dominance s0 s2
    dominance s0 s3
    dominance s0 s5
    dominance s1 s3
    dominance s2 s3
    dominance s4 s5
    dominance s5 s2
    dominance s5 s3
    disjunctive s0 s1 s2
  )");
}

TEST(Feasibility, Figure4IsInfeasible) {
  const ConstraintSet cs = figure4_constraints();
  const FeasibilityResult res = Solver(cs).feasibility();
  EXPECT_FALSE(res.feasible);
  // The paper reports (s0; s1 s5) and (s1 s5; s0) as the uncovered initial
  // dichotomies.
  const Dichotomy want =
      Dichotomy::make(6, {0}, {1, 5});
  bool found_same = false, found_flip = false;
  for (std::size_t i : res.uncovered) {
    if (res.initial[i].dichotomy == want) found_same = true;
    if (res.initial[i].dichotomy == want.flipped()) found_flip = true;
  }
  EXPECT_TRUE(found_same);
  EXPECT_TRUE(found_flip);
}

TEST(Feasibility, Figure4InitialDichotomyCount) {
  // The paper lists 26 initial encoding-dichotomies for Figure 4.
  const auto init = generate_initial_dichotomies(figure4_constraints());
  EXPECT_EQ(init.size(), 26u);
}

TEST(Feasibility, LocalCheckIsFooledByFigure4) {
  // Section 6.2: the check of [9] answers "satisfiable" on Figure 4.
  EXPECT_TRUE(local_consistency_feasible(figure4_constraints()));
}

TEST(Feasibility, LocalCheckRejectsDirectConflicts) {
  ConstraintSet cs = parse_constraints(R"(
    dominance a b
    dominance b a
  )");
  EXPECT_FALSE(local_consistency_feasible(cs));
}

TEST(Feasibility, SatisfiableMixedSet) {
  const ConstraintSet cs = parse_constraints(R"(
    face b c
    face c d
    face b a
    face a d
    dominance b c
    dominance a c
    disjunctive a b d
  )");
  EXPECT_TRUE(Solver(cs).feasible());
}

TEST(ExactEncode, AbstractExampleTwoBits) {
  // From Section 1: (b,c), (c,d), (b,a), (a,d), b > c, a > c, a = b OR d
  // has minimum code length two (e.g. a=11 b=01 c=00 d=10).
  const ConstraintSet cs = parse_constraints(R"(
    face b c
    face c d
    face b a
    face a d
    dominance b c
    dominance a c
    disjunctive a b d
  )");
  const SolveResult res = Solver(cs).encode();
  ASSERT_EQ(res.status, SolveResult::Status::kEncoded);
  EXPECT_TRUE(res.minimal);
  EXPECT_EQ(res.encoding.bits, 2);
  EXPECT_TRUE(verify_encoding(res.encoding, cs).empty());
}

TEST(ExactEncode, Figure8TwoBits) {
  const ConstraintSet cs = parse_constraints(R"(
    face s0 s1
    dominance s0 s1
    dominance s1 s2
    disjunctive s0 s1 s3
  )");
  const SolveResult res = Solver(cs).encode();
  ASSERT_EQ(res.status, SolveResult::Status::kEncoded);
  EXPECT_EQ(res.encoding.bits, 2);
  EXPECT_TRUE(verify_encoding(res.encoding, cs).empty());
  // The paper's raised set yields 4 valid prime encoding-dichotomies.
  EXPECT_EQ(res.num_valid_primes, 4u);
}

TEST(ExactEncode, Figure3InputOnly) {
  // (s0,s2,s4), (s0,s1,s4), (s1,s2,s3), (s1,s3,s4) over five symbols;
  // the paper's minimum cover uses 4 prime encoding-dichotomies.
  const ConstraintSet cs = parse_constraints(R"(
    face s0 s2 s4
    face s0 s1 s4
    face s1 s2 s3
    face s1 s3 s4
  )");
  const SolveResult res = Solver(cs).encode();
  ASSERT_EQ(res.status, SolveResult::Status::kEncoded);
  EXPECT_TRUE(res.minimal);
  EXPECT_EQ(res.encoding.bits, 4);
  EXPECT_TRUE(verify_encoding(res.encoding, cs).empty());
}

TEST(ExactEncode, Section81DontCares) {
  // (a,b), (a,c), (a,d), (a,b,[c,d],e): 3 bits suffice with the don't-cares
  // free; forcing them in or out of the face needs 4 bits.
  const ConstraintSet with_dc = parse_constraints(R"(
    face a b
    face a c
    face a d
    face a b [c d] e
    symbol f
  )");
  const SolveResult res_dc = Solver(with_dc).encode();
  ASSERT_EQ(res_dc.status, SolveResult::Status::kEncoded);
  EXPECT_EQ(res_dc.encoding.bits, 3);
  EXPECT_TRUE(verify_encoding(res_dc.encoding, with_dc).empty());

  const ConstraintSet forced_in = parse_constraints(R"(
    face a b
    face a c
    face a d
    face a b c d e
    symbol f
  )");
  const SolveResult res_in = Solver(forced_in).encode();
  ASSERT_EQ(res_in.status, SolveResult::Status::kEncoded);
  EXPECT_EQ(res_in.encoding.bits, 4);

  const ConstraintSet forced_out = parse_constraints(R"(
    face a b
    face a c
    face a d
    face a b e
    symbol f
  )");
  const SolveResult res_out = Solver(forced_out).encode();
  ASSERT_EQ(res_out.status, SolveResult::Status::kEncoded);
  EXPECT_EQ(res_out.encoding.bits, 4);
}

TEST(ExactEncode, UnconstrainedSymbolsGetMinimumLength) {
  ConstraintSet cs;
  for (const char* s : {"a", "b", "c", "d", "e"}) cs.symbols().intern(s);
  const SolveResult res = Solver(cs).encode();
  ASSERT_EQ(res.status, SolveResult::Status::kEncoded);
  EXPECT_EQ(res.encoding.bits, 3);  // ceil(log2 5)
  EXPECT_TRUE(verify_encoding(res.encoding, cs).empty());
}

TEST(ExactEncode, InfeasibleDominanceCycleReported) {
  const ConstraintSet cs = parse_constraints(R"(
    dominance a b
    dominance b a
  )");
  const SolveResult res = Solver(cs).encode();
  EXPECT_EQ(res.status, SolveResult::Status::kInfeasible);
  EXPECT_FALSE(res.uncovered.empty());
}

TEST(ExactEncode, SingleSymbol) {
  ConstraintSet cs;
  cs.symbols().intern("only");
  const SolveResult res = Solver(cs).encode();
  ASSERT_EQ(res.status, SolveResult::Status::kEncoded);
  EXPECT_EQ(res.encoding.codes.size(), 1u);
}

TEST(ExactEncode, ExtendedDisjunctiveSatisfied) {
  const ConstraintSet cs = parse_constraints(R"(
    face a b
    extdisjunctive a : b c | d e
  )");
  const SolveResult res = Solver(cs).encode();
  ASSERT_EQ(res.status, SolveResult::Status::kEncoded);
  EXPECT_TRUE(verify_encoding(res.encoding, cs).empty());
}

}  // namespace
}  // namespace encodesat
