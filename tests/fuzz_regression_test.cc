// Regression table over tests/fuzz_corpus/: every reproducer file is run
// through the full differential driver and must report zero divergences.
//
// The corpus starts as 20 generator-stratified cases (4 per --mix preset,
// run seed 2026). When a fuzz run finds a real divergence, minimize it
// (`encodesat_cli fuzz ... --minimize --out DIR`) and drop the .repro file
// here — this test then pins the fix forever.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/differential.h"
#include "fuzz/reproducer.h"

namespace encodesat {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  const std::filesystem::path dir = ENCODESAT_FUZZ_CORPUS_DIR;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.path().extension() == ".repro")
      files.push_back(entry.path().string());
  std::sort(files.begin(), files.end());
  return files;
}

TEST(FuzzRegression, CorpusIsPresent) {
  EXPECT_GE(corpus_files().size(), 20u);
}

TEST(FuzzRegression, EveryCorpusCaseIsDivergenceFree) {
  for (const std::string& path : corpus_files()) {
    ParseError err;
    const auto repro = load_reproducer_file(path, &err);
    ASSERT_TRUE(repro.has_value()) << path << ": " << err.to_string();
    const FuzzCaseResult r = run_differential_case(repro->constraints);
    for (const FuzzDivergence& d : r.divergences)
      ADD_FAILURE() << path << ": " << fuzz_rule_name(d.rule) << ": "
                    << d.detail;
  }
}

TEST(FuzzRegression, CorpusFilesRoundTrip) {
  // Reproducer files must survive a load -> render -> load cycle so that
  // minimizing or re-saving a case never silently changes it.
  for (const std::string& path : corpus_files()) {
    const auto repro = load_reproducer_file(path);
    ASSERT_TRUE(repro.has_value()) << path;
    const auto again = parse_reproducer(reproducer_to_text(*repro));
    ASSERT_TRUE(again.has_value()) << path;
    EXPECT_EQ(again->constraints.to_string(),
              repro->constraints.to_string())
        << path;
  }
}

}  // namespace
}  // namespace encodesat
