// Tests for prime encoding-dichotomy generation (Section 5.1, Figure 2),
// anchored on the paper's worked examples and cross-checked against the
// iterated-consensus baseline on random inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/consensus_primes.h"
#include "core/primes.h"
#include "util/rng.h"

namespace encodesat {
namespace {

Dichotomy d(std::size_t n, std::vector<std::uint32_t> l,
            std::vector<std::uint32_t> r) {
  return Dichotomy::make(n, l, r);
}

std::set<std::vector<std::size_t>> term_sets(const std::vector<Bitset>& sop) {
  std::set<std::vector<std::size_t>> out;
  for (const auto& t : sop) out.insert(t.to_vector());
  return out;
}

TEST(TwoCnfSop, PaperSection51Example) {
  // Incompatibilities (a+b)(a+c)(b+c)(c+d)(d+e) over a..e (indices 0..4).
  // The paper's example gives the SOP as acd + ace + bcd + bce and the
  // maximal compatibles as {b,e}, {b,d}, {a,e}, {a,d} — but that list is
  // incomplete: abd is also a minimal product term ((a+b)(a+c)(b+c)(c+d)
  // (d+e) multiplied out is ac d + ace + bcd + bce + abd), giving the fifth
  // maximal compatible {c,e}, which is indeed compatible (no (c+e) sum is
  // listed) and maximal. We assert the mathematically complete answer; see
  // EXPERIMENTS.md "Errata".
  std::vector<Bitset> inc(5, Bitset(5));
  auto edge = [&](std::size_t i, std::size_t j) {
    inc[i].set(j);
    inc[j].set(i);
  };
  edge(0, 1);
  edge(0, 2);
  edge(1, 2);
  edge(2, 3);
  edge(3, 4);
  bool truncated = true;
  const auto sop = two_cnf_to_minimal_sop(inc, 1000, &truncated);
  EXPECT_FALSE(truncated);
  EXPECT_EQ(term_sets(sop),
            (std::set<std::vector<std::size_t>>{
                {0, 2, 3}, {0, 2, 4}, {1, 2, 3}, {1, 2, 4}, {0, 1, 3}}));
}

TEST(TwoCnfSop, NoEdgesGivesConstantOne) {
  std::vector<Bitset> inc(4, Bitset(4));
  bool truncated = true;
  const auto sop = two_cnf_to_minimal_sop(inc, 10, &truncated);
  EXPECT_FALSE(truncated);
  ASSERT_EQ(sop.size(), 1u);
  EXPECT_TRUE(sop[0].empty());
}

TEST(TwoCnfSop, TriangleNeedsTwoDeletions) {
  // (a+b)(a+c)(b+c): minimal vertex covers are any pair.
  std::vector<Bitset> inc(3, Bitset(3));
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      if (i != j) inc[i].set(j);
  bool truncated = true;
  const auto sop = two_cnf_to_minimal_sop(inc, 10, &truncated);
  EXPECT_EQ(term_sets(sop), (std::set<std::vector<std::size_t>>{
                                {0, 1}, {0, 2}, {1, 2}}));
}

TEST(TwoCnfSop, TruncatesAtLimit) {
  // A perfect matching on 2k vertices yields 2^k minimal covers.
  const std::size_t k = 10;
  std::vector<Bitset> inc(2 * k, Bitset(2 * k));
  for (std::size_t i = 0; i < k; ++i) {
    inc[2 * i].set(2 * i + 1);
    inc[2 * i + 1].set(2 * i);
  }
  bool truncated = false;
  const auto sop = two_cnf_to_minimal_sop(inc, 100, &truncated);
  EXPECT_TRUE(truncated);
  EXPECT_TRUE(sop.empty());
}

TEST(Primes, SingleDichotomyIsItsOwnPrime) {
  const auto res = generate_prime_dichotomies({d(3, {0}, {1})});
  ASSERT_EQ(res.primes.size(), 1u);
  EXPECT_EQ(res.primes[0], d(3, {0}, {1}));
}

TEST(Primes, CompatiblePairMergesToOnePrime) {
  const auto res =
      generate_prime_dichotomies({d(4, {0}, {1}), d(4, {2}, {3})});
  ASSERT_EQ(res.primes.size(), 1u);
  EXPECT_EQ(res.primes[0], d(4, {0, 2}, {1, 3}));
}

TEST(Primes, FlippedPairGivesTwoPrimes) {
  const auto a = d(2, {0}, {1});
  const auto res = generate_prime_dichotomies({a, a.flipped()});
  EXPECT_EQ(res.primes.size(), 2u);
}

TEST(Primes, EveryPrimeCoversEveryInputItIsCompatibleWith) {
  // Definition 3.5: a prime is incompatible with every dichotomy it does
  // not cover.
  Rng rng(321);
  std::vector<Dichotomy> ds;
  const std::size_t n = 6;
  for (int i = 0; i < 10; ++i) {
    Dichotomy x(n);
    for (std::uint32_t s = 0; s < n; ++s) {
      const double r = rng.next_double();
      if (r < 0.3) x.left.set(s);
      else if (r < 0.6) x.right.set(s);
    }
    if (x.left.empty() || x.right.empty()) continue;
    ds.push_back(std::move(x));
  }
  ASSERT_FALSE(ds.empty());
  const auto res = generate_prime_dichotomies(ds);
  ASSERT_FALSE(res.truncated);
  for (const auto& p : res.primes)
    for (const auto& x : ds) {
      if (!p.compatible(x)) continue;
      EXPECT_TRUE(p.left.is_subset_of(p.union_with(x).left) &&
                  p.union_with(x).left == p.left &&
                  p.union_with(x).right == p.right)
          << "prime is not maximal";
    }
}

class PrimesVsConsensus : public ::testing::TestWithParam<int> {};

TEST_P(PrimesVsConsensus, SamePrimeSet) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 11);
  const std::size_t n = 4 + rng.next_below(4);
  std::vector<Dichotomy> ds;
  for (int i = 0; i < 8; ++i) {
    Dichotomy x(n);
    for (std::uint32_t s = 0; s < n; ++s) {
      const double r = rng.next_double();
      if (r < 0.35) x.left.set(s);
      else if (r < 0.7) x.right.set(s);
    }
    if (x.left.empty() && x.right.empty()) continue;
    ds.push_back(std::move(x));
  }
  if (ds.empty()) return;
  auto fast = generate_prime_dichotomies(ds);
  auto slow = consensus_prime_dichotomies(ds);
  ASSERT_FALSE(fast.truncated);
  ASSERT_FALSE(slow.truncated);
  auto key = [](const Dichotomy& x) {
    return std::make_pair(x.left.to_vector(), x.right.to_vector());
  };
  std::set<std::pair<std::vector<std::size_t>, std::vector<std::size_t>>> a, b;
  for (const auto& p : fast.primes) a.insert(key(p));
  for (const auto& p : slow.primes) b.insert(key(p));
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrimesVsConsensus, ::testing::Range(0, 20));

}  // namespace
}  // namespace encodesat
