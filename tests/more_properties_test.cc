// Additional property sweeps: chain-constraint search and URP laws.
#include <gtest/gtest.h>

#include "core/bounded.h"
#include "core/chains.h"
#include "core/verify.h"
#include "logic/cover_ops.h"
#include "logic/urp.h"
#include "util/rng.h"

namespace encodesat {
namespace {

class ChainSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChainSweep, SolutionsVerifyAndChainsHold) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 83 + 19);
  ConstraintSet cs;
  const std::uint32_t n = 4 + static_cast<std::uint32_t>(rng.next_below(4));
  for (std::uint32_t i = 0; i < n; ++i)
    cs.symbols().intern("s" + std::to_string(i));
  // One random chain over a prefix of the symbols, plus a random face.
  ChainConstraint chain;
  const std::uint32_t len = 2 + static_cast<std::uint32_t>(rng.next_below(n - 2));
  for (std::uint32_t i = 0; i < len; ++i) chain.sequence.push_back(i);
  std::vector<std::uint32_t> members;
  for (std::uint32_t s = 0; s < n; ++s)
    if (rng.next_bool(0.4)) members.push_back(s);
  if (members.size() >= 2 && members.size() < n)
    cs.add_face_ids(std::move(members));

  const int bits = minimum_code_length(n) + (rng.next_bool(0.5) ? 1 : 0);
  const auto res = encode_with_chains(cs, {chain}, bits);
  if (res.status != ChainEncodeResult::Status::kEncoded) return;
  EXPECT_TRUE(chains_satisfied(res.encoding, {chain})) << cs.to_string();
  EXPECT_TRUE(verify_encoding(res.encoding, cs).empty()) << cs.to_string();
  EXPECT_EQ(res.encoding.bits, bits);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainSweep, ::testing::Range(0, 20));

class UrpLaws : public ::testing::TestWithParam<int> {};

Cover random_cover(Rng& rng, const Domain& dom, int cubes) {
  Cover f(dom);
  for (int i = 0; i < cubes; ++i) {
    std::string in, out;
    for (int v = 0; v < dom.num_inputs(); ++v) in += "01--"[rng.next_below(4)];
    for (int o = 0; o < dom.num_outputs(); ++o) out += "01"[rng.next_below(2)];
    if (out.find('1') == std::string::npos) out[0] = '1';
    f.add(cube_from_string(dom, in, out));
  }
  return f;
}

TEST_P(UrpLaws, ShannonExpansionLaws) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 59 + 23);
  const Domain dom = Domain::binary(3 + static_cast<int>(rng.next_below(2)), 1);
  const Cover f = random_cover(rng, dom, 5);
  const int var = static_cast<int>(rng.next_below(
      static_cast<std::uint64_t>(dom.num_inputs())));

  // Tautology iff both cofactors are tautologies.
  const Cover f0 = cover_cofactor_var(f, var, 0);
  const Cover f1 = cover_cofactor_var(f, var, 1);
  EXPECT_EQ(is_tautology(f), is_tautology(f0) && is_tautology(f1));

  // f == x'·f_x' + x·f_x (rebuild via intersection with the literals).
  Cube lit0 = full_cube(dom), lit1 = full_cube(dom);
  lit0.bits.reset(static_cast<std::size_t>(dom.pos(var, 1)));
  lit1.bits.reset(static_cast<std::size_t>(dom.pos(var, 0)));
  Cover rebuilt(dom);
  for (const Cube& c : f0)
    if (auto m = cube_intersect(dom, c, lit0)) rebuilt.add(std::move(*m));
  for (const Cube& c : f1)
    if (auto m = cube_intersect(dom, c, lit1)) rebuilt.add(std::move(*m));
  EXPECT_TRUE(covers_equal(rebuilt, f));

  // Double complement is identity; f and its complement partition space.
  const Cover comp = complement(f);
  EXPECT_TRUE(covers_equal(complement(comp), f));
  Cover all = f;
  all.add_all(comp);
  EXPECT_TRUE(is_tautology(all) || (f.empty() && is_tautology(comp)));
  EXPECT_TRUE(cover_intersect(f, comp).empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, UrpLaws, ::testing::Range(0, 20));

}  // namespace
}  // namespace encodesat
