#!/usr/bin/env python3
"""Validate Prometheus-style expositions returned by the `metrics` op.

Usage:
    check_metrics.py RESPONSES.ndjson

Scans an NDJSON response stream from a pipe-mode serve session, extracts
every response carrying a "metrics" string field, and validates each
exposition:

  * every sample line belongs to a family announced by a preceding
    `# TYPE <family> <counter|gauge|histogram>` line (histogram samples
    match their family through the _bucket/_sum/_count suffixes);
  * sample values parse as numbers; counter/gauge families have exactly
    one sample line each;
  * histogram `le=` labels are strictly increasing finite integers
    followed by a mandatory `le="+Inf"` line;
  * histogram bucket values are cumulative (monotone non-decreasing) and
    the `+Inf` bucket equals the family's `_count` sample;
  * at least one histogram family is present in every exposition, and at
    least one exposition is present in the stream.

Exit status 0 = valid, 1 = validation failure, 2 = usage / I/O error.
Used by the `check_metrics` ctest (ctest -L ci).
"""

import json
import sys

TYPES = ("counter", "gauge", "histogram")


def fail(msg):
    print(f"check_metrics: FAIL: {msg}")
    return 1


def validate_exposition(text, which):
    families = {}  # name -> type
    histograms = {}  # family -> {"buckets": [(le, cum)], "count": int|None,
    #                             "sum": float|None, "inf": int|None}
    samples = {}  # family -> sample line count (counter/gauge)

    def err(msg):
        return fail(f"response {which}: {msg}")

    for ln, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in TYPES:
                return err(f"line {ln}: malformed TYPE line {line!r}")
            families[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        try:
            name_part, value_part = line.rsplit(" ", 1)
            value = float(value_part)
        except ValueError:
            return err(f"line {ln}: malformed sample {line!r}")
        label = None
        if "{" in name_part:
            name, rest = name_part.split("{", 1)
            if not rest.endswith("}"):
                return err(f"line {ln}: unbalanced labels in {line!r}")
            label = rest[:-1]
        else:
            name = name_part
        family, series = name, None
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families \
                    and families[name[: -len(suffix)]] == "histogram":
                family, series = name[: -len(suffix)], suffix
                break
        if family not in families:
            return err(f"line {ln}: sample {name!r} has no TYPE line")
        ftype = families[family]
        if ftype == "histogram":
            h = histograms.setdefault(
                family, {"buckets": [], "count": None, "sum": None})
            if series == "_bucket":
                if not label or not label.startswith('le="') \
                        or not label.endswith('"'):
                    return err(f"line {ln}: bucket without le= label")
                h["buckets"].append((label[4:-1], int(value)))
            elif series == "_sum":
                h["sum"] = value
            elif series == "_count":
                h["count"] = int(value)
            else:
                return err(f"line {ln}: bare sample {name!r} for a "
                           f"histogram family")
        else:
            samples[family] = samples.get(family, 0) + 1

    for family, ftype in families.items():
        if ftype == "histogram":
            h = histograms.get(family)
            if h is None:
                return err(f"histogram {family!r} announced but has no "
                           f"samples")
            if h["count"] is None or h["sum"] is None:
                return err(f"histogram {family!r} missing _count or _sum")
            if not h["buckets"] or h["buckets"][-1][0] != "+Inf":
                return err(f"histogram {family!r} does not end at "
                           f'le="+Inf"')
            prev_le, prev_cum = None, 0
            for le, cum in h["buckets"]:
                if cum < prev_cum:
                    return err(f"histogram {family!r}: cumulative count "
                               f"drops at le={le} ({cum} < {prev_cum})")
                prev_cum = cum
                if le == "+Inf":
                    continue
                try:
                    le_val = int(le)
                except ValueError:
                    return err(f"histogram {family!r}: non-integer "
                               f"boundary {le!r}")
                if prev_le is not None and le_val <= prev_le:
                    return err(f"histogram {family!r}: le labels not "
                               f"strictly increasing at {le}")
                prev_le = le_val
            if h["buckets"][-1][1] != h["count"]:
                return err(f"histogram {family!r}: +Inf bucket "
                           f"{h['buckets'][-1][1]} != _count {h['count']}")
        else:
            if samples.get(family, 0) != 1:
                return err(f"{ftype} {family!r} has "
                           f"{samples.get(family, 0)} sample lines, "
                           f"expected 1")

    if not histograms:
        return err("no histogram family in the exposition")
    return 0


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(argv[1]) as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"check_metrics: cannot read {argv[1]}: {e}", file=sys.stderr)
        return 2

    expositions = 0
    for line in lines:
        if '"metrics"' not in line:
            continue
        try:
            obj = json.loads(line)
        except ValueError as e:
            return fail(f"response line is not valid JSON: {e}")
        text = obj.get("metrics")
        if not isinstance(text, str):
            continue
        if obj.get("status") != "ok":
            return fail(f"metrics response status {obj.get('status')!r}")
        expositions += 1
        rc = validate_exposition(text, obj.get("id", f"#{expositions}"))
        if rc:
            return rc

    if expositions == 0:
        return fail("no metrics responses in the stream")
    print(f"check_metrics: OK: {expositions} exposition(s) validated")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
