#!/usr/bin/env python3
"""Validate a Chrome trace-event file written by the obs tracer.

Usage:
    check_trace.py TRACE.json [--min-events N]

Checks:

  * the file parses as JSON and carries the expected structure: a
    "traceEvents" array plus otherData.schema == "encodesat-trace-v1";
  * every event has the duration-event fields the tracer emits
    (name, ph in {B, E}, integer ts, pid, tid);
  * per (pid, tid) the B/E events form a balanced, properly nested
    sequence with matching names — the tracer's drop policy guarantees
    this even when per-thread logs overflow;
  * otherData.events equals the actual event count (dropped_events and
    dropped_spans are reported, not checked — they depend on capacity;
    a non-zero dropped_spans prints a warning so truncated traces are
    visible in CI logs);
  * at least --min-events events are present (default 2: a solve run
    always emits at least the outer "solve" span).

Exit status 0 = valid, 1 = validation failure, 2 = usage / I/O error.
Used by the `check_trace` ctest (ctest -L ci) over a smoke trace from
`encodesat_cli solve --trace-out`.
"""

import json
import sys

SCHEMA = "encodesat-trace-v1"


def fail(msg):
    print(f"check_trace: FAIL: {msg}")
    return 1


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    min_events = 2
    it = iter(argv[1:])
    for a in it:
        if a == "--min-events":
            try:
                min_events = int(next(it))
            except (StopIteration, ValueError):
                print("check_trace: --min-events needs an integer",
                      file=sys.stderr)
                return 2
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2

    try:
        with open(args[0]) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_trace: cannot read {args[0]}: {e}", file=sys.stderr)
        return 2

    if not isinstance(data, dict):
        return fail("top level is not a JSON object")
    other = data.get("otherData")
    if not isinstance(other, dict):
        return fail("missing otherData object")
    if other.get("schema") != SCHEMA:
        return fail(f"otherData.schema {other.get('schema')!r} != {SCHEMA!r}")
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return fail("traceEvents is not an array")

    stacks = {}  # (pid, tid) -> [names]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return fail(f"event {i} is not an object")
        name, ph, ts = ev.get("name"), ev.get("ph"), ev.get("ts")
        pid, tid = ev.get("pid"), ev.get("tid")
        if not isinstance(name, str) or not name:
            return fail(f"event {i}: missing name")
        if ph not in ("B", "E"):
            return fail(f"event {i}: ph {ph!r} not in {{B, E}}")
        if not isinstance(ts, int):
            return fail(f"event {i}: ts {ts!r} is not an integer")
        if not isinstance(pid, int) or not isinstance(tid, int):
            return fail(f"event {i}: pid/tid missing or non-integer")
        stack = stacks.setdefault((pid, tid), [])
        if ph == "B":
            stack.append(name)
        else:
            if not stack:
                return fail(f"event {i}: E {name!r} with empty stack "
                            f"(tid {tid})")
            top = stack.pop()
            if top != name:
                return fail(f"event {i}: E {name!r} does not match open "
                            f"B {top!r} (tid {tid})")
    for (pid, tid), stack in stacks.items():
        if stack:
            return fail(f"tid {tid}: {len(stack)} unclosed span(s), "
                        f"innermost {stack[-1]!r}")

    declared = other.get("events")
    if declared != len(events):
        return fail(f"otherData.events {declared!r} != actual {len(events)}")
    if len(events) < min_events:
        return fail(f"only {len(events)} event(s), expected >= {min_events}")

    dropped_spans = other.get("dropped_spans", 0)
    if isinstance(dropped_spans, int) and dropped_spans > 0:
        print(f"check_trace: WARNING: {dropped_spans} span(s) dropped "
              f"(per-thread log capacity) — the trace is valid but "
              f"incomplete")

    names = sorted({ev["name"] for ev in events})
    print(f"check_trace: OK: {len(events)} events, "
          f"{len(stacks)} thread(s), {len(names)} span name(s): "
          f"{', '.join(names)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
