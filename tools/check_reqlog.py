#!/usr/bin/env python3
"""Validate an encodesat-reqlog-v1 request-log stream.

Usage:
    check_reqlog.py REQLOG [--min-lines N]

REQLOG may be a captured stderr stream: only lines carrying the
`"schema":"encodesat-reqlog-v1"` tag are validated (the serve session
summary and other diagnostics are ignored). Each log line must:

  * parse as one JSON object with schema == "encodesat-reqlog-v1";
  * carry string fields id, status, disposition, truncation — with
    status a wire StatusCode name and disposition one of solve, hit,
    coalesced, rejected, expired, drained;
  * carry non-negative integer fields queue_us, solve_us, total_us,
    work, with total_us >= solve_us;
  * carry a boolean `slow` and an object `counters` mapping names to
    non-negative integers;
  * slow lines (and only lines) may carry a `spans` object — the
    request's stage tree.

At least --min-lines valid lines are required (default 1).

Exit status 0 = valid, 1 = validation failure, 2 = usage / I/O error.
Used by the `reqlog_smoke` ctest (ctest -L ci).
"""

import json
import sys

SCHEMA = "encodesat-reqlog-v1"
STATUSES = {"ok", "parse_error", "infeasible", "timeout", "canceled",
            "overloaded", "internal"}
DISPOSITIONS = {"solve", "hit", "coalesced", "rejected", "expired",
                "drained",
                # Connection-lifecycle events (no solve behind them):
                # admission rejection at accept, oversized request line,
                # idle-timeout close.
                "conn_busy", "conn_oversized", "conn_idle"}


def fail(msg):
    print(f"check_reqlog: FAIL: {msg}")
    return 1


def uint(obj, key):
    v = obj.get(key)
    return v if isinstance(v, int) and not isinstance(v, bool) and v >= 0 \
        else None


def main(argv):
    args = []
    min_lines = 1
    it = iter(argv[1:])
    for a in it:
        if a == "--min-lines":
            try:
                min_lines = int(next(it))
            except (StopIteration, ValueError):
                print("check_reqlog: --min-lines needs an integer",
                      file=sys.stderr)
                return 2
        elif a.startswith("--"):
            print(__doc__, file=sys.stderr)
            return 2
        else:
            args.append(a)
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(args[0]) as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"check_reqlog: cannot read {args[0]}: {e}", file=sys.stderr)
        return 2

    valid = 0
    dispositions = {}
    for ln, line in enumerate(lines, 1):
        if f'"schema":"{SCHEMA}"' not in line:
            continue
        try:
            rec = json.loads(line)
        except ValueError as e:
            return fail(f"line {ln}: tagged line is not valid JSON: {e}")
        if rec.get("schema") != SCHEMA:
            return fail(f"line {ln}: schema {rec.get('schema')!r}")
        if not isinstance(rec.get("id"), str):
            return fail(f"line {ln}: missing id")
        if rec.get("status") not in STATUSES:
            return fail(f"line {ln}: status {rec.get('status')!r}")
        disp = rec.get("disposition")
        if disp not in DISPOSITIONS:
            return fail(f"line {ln}: disposition {disp!r}")
        for key in ("queue_us", "solve_us", "total_us", "work"):
            if uint(rec, key) is None:
                return fail(f"line {ln}: {key} missing or not a "
                            f"non-negative integer")
        if rec["total_us"] < rec["solve_us"]:
            return fail(f"line {ln}: total_us {rec['total_us']} < "
                        f"solve_us {rec['solve_us']}")
        if not isinstance(rec.get("truncation"), str):
            return fail(f"line {ln}: missing truncation")
        if not isinstance(rec.get("slow"), bool):
            return fail(f"line {ln}: missing boolean slow")
        counters = rec.get("counters")
        if not isinstance(counters, dict):
            return fail(f"line {ln}: counters is not an object")
        for name, v in counters.items():
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                return fail(f"line {ln}: counter {name!r} value {v!r}")
        if "spans" in rec:
            if not rec["slow"]:
                return fail(f"line {ln}: spans attached to a non-slow "
                            f"request")
            if not isinstance(rec["spans"], dict):
                return fail(f"line {ln}: spans is not an object")
        valid += 1
        dispositions[disp] = dispositions.get(disp, 0) + 1

    if valid < min_lines:
        return fail(f"only {valid} valid log line(s), expected >= "
                    f"{min_lines}")
    summary = ", ".join(f"{k}={v}" for k, v in sorted(dispositions.items()))
    print(f"check_reqlog: OK: {valid} line(s): {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
