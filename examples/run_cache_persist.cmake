# Helper for the cache_persist_smoke test (see CMakeLists.txt here):
# exact-encode once with --cache-save, then again with --cache-load and
# require the "[cached]" marker — the whole solve must be served from the
# loaded cache. Expects CLI, KISS2, CACHE_FILE.
file(REMOVE ${CACHE_FILE})
execute_process(
  COMMAND ${CLI} encode ${KISS2} --exact --cache-save ${CACHE_FILE}
  RESULT_VARIABLE warm_rc
  ERROR_VARIABLE warm_err)
if(NOT warm_rc EQUAL 0)
  message(FATAL_ERROR "warm encode exited with ${warm_rc}: ${warm_err}")
endif()
if(NOT EXISTS ${CACHE_FILE})
  message(FATAL_ERROR "--cache-save did not write ${CACHE_FILE}")
endif()
execute_process(
  COMMAND ${CLI} encode ${KISS2} --exact --cache-load ${CACHE_FILE}
  RESULT_VARIABLE hit_rc
  ERROR_VARIABLE hit_err)
if(NOT hit_rc EQUAL 0)
  message(FATAL_ERROR "cached encode exited with ${hit_rc}: ${hit_err}")
endif()
if(NOT hit_err MATCHES "\\[cached\\]")
  message(FATAL_ERROR "second encode was not served from the cache:\n${hit_err}")
endif()
if(NOT hit_err MATCHES "cache: 1 hits, 0 misses")
  message(FATAL_ERROR "expected 1 hit / 0 misses, got:\n${hit_err}")
endif()
