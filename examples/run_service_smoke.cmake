# Helper for the service_smoke test (see CMakeLists.txt here): runs the
# pipe-mode server over the canned NDJSON request stream and requires the
# response stream to be byte-identical to the golden file — the protocol's
# determinism contract (no timings, no cache markers; in-order delivery)
# makes that comparison stable under any worker count or scheduling.
# Expects CLI, REQUESTS, GOLDEN, OUT.
execute_process(
  COMMAND ${CLI} serve --workers 4
  INPUT_FILE ${REQUESTS}
  OUTPUT_FILE ${OUT}
  ERROR_VARIABLE serve_err
  RESULT_VARIABLE serve_rc)
if(NOT serve_rc EQUAL 0)
  message(FATAL_ERROR "encodesat_cli serve exited with ${serve_rc}: ${serve_err}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  file(READ ${OUT} got)
  file(READ ${GOLDEN} want)
  message(FATAL_ERROR "serve output diverged from the golden stream.\n"
                      "--- got ---\n${got}\n--- want ---\n${want}")
endif()
# The session summary must land on stderr, never polluting the NDJSON
# stream clients parse.
if(NOT serve_err MATCHES "cache:")
  message(FATAL_ERROR "expected the cache summary on stderr, got: ${serve_err}")
endif()
