// Espresso-format PLA minimizer — a thin front-end over the logic
// substrate, interoperable with the Berkeley .pla format (type fd / fr).
//
//   $ ./pla_minimize in.pla > out.pla
//   $ ./pla_minimize < in.pla
//
#include <cstdio>
#include <fstream>
#include <iostream>

#include "logic/espresso.h"
#include "logic/pla.h"
#include "logic/urp.h"
#include "util/timer.h"

using namespace encodesat;

int main(int argc, char** argv) {
  Pla pla;
  try {
    if (argc > 1) {
      std::ifstream in(argv[1]);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", argv[1]);
        return 2;
      }
      pla = read_pla(in);
    } else {
      pla = read_pla(std::cin);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 2;
  }

  Timer t;
  EspressoStats stats;
  const Cover minimized = espresso(pla.on, pla.dc, {}, &stats);

  // Sanity: the result must be equivalent modulo the DC-set.
  if (!covers_equivalent(minimized, pla.on, pla.dc)) {
    std::fprintf(stderr, "INTERNAL ERROR: minimized cover not equivalent\n");
    return 1;
  }
  std::fprintf(stderr, "# %zu -> %zu cubes, %d literals, %d iterations, %.3fs\n",
               stats.initial_cubes, stats.final_cubes,
               minimized.input_literals(), stats.iterations,
               t.elapsed_seconds());

  Pla out = pla;
  out.on = minimized;
  out.dc = Cover(pla.domain);
  out.type = "fd";
  write_pla(std::cout, out);
  return 0;
}
