// State assignment of a finite state machine — the paper's motivating
// application. Reads a KISS2 machine (or synthesizes a benchmark-like one),
// derives input and output encoding constraints by symbolic minimization,
// encodes the states three ways, and reports the minimized two-level PLA
// size of each result:
//   1. naive binary (states numbered in order),
//   2. exact minimum-length constraint satisfaction (Figure 7),
//   3. bounded-length heuristic minimizing cubes (Section 7.1).
//
//   $ ./fsm_state_assignment [machine.kiss2]
//
#include <cstdio>
#include <fstream>

#include "core/bounded.h"
#include "core/solver.h"
#include "core/verify.h"
#include "fsm/constraints_gen.h"
#include "fsm/encode_fsm.h"
#include "logic/espresso.h"
#include "logic/factor.h"
#include "fsm/mcnc_like.h"
#include "util/timer.h"

using namespace encodesat;

int main(int argc, char** argv) {
  Fsm fsm;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    fsm = parse_kiss2(in);
    fsm.name = argv[1];
  } else {
    fsm = make_mcnc_like(benchmark_spec("dk512"));
  }
  std::printf("machine %s: %u states, %d inputs, %d outputs, %zu edges\n",
              fsm.name.c_str(), fsm.num_states(), fsm.num_inputs,
              fsm.num_outputs, fsm.transitions.size());

  // Phase 1 of the two-phase paradigm: symbolic minimization -> constraints.
  const ConstraintSet cs = generate_mixed_constraints(fsm);
  std::printf("constraints: %zu face, %zu dominance, %zu disjunctive\n",
              cs.faces().size(), cs.dominances().size(),
              cs.disjunctives().size());

  const int min_bits = minimum_code_length(fsm.num_states());

  // Reports SOP cubes/literals and the factored-form estimate (the
  // multi-level metric of the paper's Table 3).
  auto report = [&](const char* label, const Encoding& enc,
                    const char* extra) {
    const Pla pla = encode_fsm(fsm, enc);
    const Cover minimized = espresso(pla.on, pla.dc);
    std::printf("%-18s: %d bits, %3zu cubes, %4d sop-lit, %4d fact-lit%s\n",
                label, enc.bits, minimized.size(),
                minimized.input_literals(),
                factored_literal_estimate(minimized), extra);
  };

  // Naive binary assignment.
  Encoding naive;
  naive.bits = min_bits;
  naive.codes.resize(fsm.num_states());
  for (std::uint32_t s = 0; s < fsm.num_states(); ++s) naive.codes[s] = s;
  report("naive binary", naive, "");

  // Phase 2a: exact satisfaction of all constraints.
  Timer t;
  SolveOptions eopts;
  eopts.pipeline = SolveOptions::Pipeline::kExact;
  eopts.exact.cover_options.max_nodes = 200000;
  const SolveResult exact = Solver(cs).encode(eopts);
  if (exact.status == SolveResult::Status::kEncoded) {
    char extra[64];
    std::snprintf(extra, sizeof extra, "   [%zu primes, %.2fs]",
                  exact.num_primes, t.elapsed_seconds());
    report("exact (all sat)", exact.encoding, extra);
  } else {
    std::printf("exact: no feasible encoding / prime limit\n");
  }

  // Phase 2b: bounded-length heuristic at minimum code length.
  t.reset();
  BoundedEncodeOptions bopts;
  bopts.cost = CostKind::kCubes;
  const auto heur = bounded_encode(cs, min_bits, bopts);
  char extra[64];
  std::snprintf(extra, sizeof extra, "   [%d faces violated, %.2fs]",
                heur.cost.violated_faces, t.elapsed_seconds());
  report("heuristic (min)", heur.encoding, extra);
  return 0;
}
