# Helper for the check_metrics test (see CMakeLists.txt here): runs a
# pipe-mode serve session over a request stream that interleaves solves
# with `metrics` and `health` scrape ops, then validates every returned
# Prometheus exposition with tools/check_metrics.py (TYPE lines, le=
# ordering, monotone cumulative buckets, +Inf == _count). The scrape
# payloads carry wall-clock values, so this is a structural check, never
# a byte comparison. Expects CLI, REQUESTS, PYTHON, CHECKER, OUT.
execute_process(
  COMMAND ${CLI} serve --workers 2 --metrics-window 60
  INPUT_FILE ${REQUESTS}
  OUTPUT_FILE ${OUT}
  ERROR_VARIABLE serve_err
  RESULT_VARIABLE serve_rc)
if(NOT serve_rc EQUAL 0)
  message(FATAL_ERROR "encodesat_cli serve exited with ${serve_rc}: ${serve_err}")
endif()
execute_process(
  COMMAND ${PYTHON} ${CHECKER} ${OUT}
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "check_metrics.py rejected the scrape (rc=${check_rc})")
endif()
# Health responses ride the same stream; pin their shape here since they
# are excluded from the byte-golden service_smoke session.
file(READ ${OUT} responses)
if(NOT responses MATCHES "\"id\":\"h1\",\"status\":\"ok\",\"health\":{\"state\":\"serving\"")
  message(FATAL_ERROR "health op response missing or malformed:\n${responses}")
endif()
