// encodesat_cli — the one-stop command-line driver for the full flow.
//
//   encodesat_cli analyze     <machine.kiss2>
//       determinism/completeness/reachability report
//   encodesat_cli constraints <machine.kiss2>
//       symbolic minimization -> constraint text on stdout
//   encodesat_cli encode      <machine.kiss2> [--bits K] [--cost C] [--exact]
//       state assignment: heuristic at K bits (default: minimum length,
//       cost C in {violated, cubes, literals}; default cubes) or --exact
//       minimum-length satisfaction of all constraints; prints codes and
//       the minimized encoded PLA to stdout (espresso format)
//
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "core/bounded.h"
#include "core/encoder.h"
#include "core/normalize.h"
#include "core/verify.h"
#include "fsm/analyze.h"
#include "fsm/constraints_gen.h"
#include "fsm/encode_fsm.h"
#include "fsm/reachability.h"
#include "fsm/simulate.h"
#include "logic/espresso.h"
#include "util/timer.h"

using namespace encodesat;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s analyze|constraints|encode <machine.kiss2> "
               "[--bits K] [--cost violated|cubes|literals] [--exact]\n",
               argv0);
  return 2;
}

Fsm load(const char* path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error(std::string("cannot open ") + path);
  Fsm fsm = parse_kiss2(in);
  fsm.name = path;
  return fsm;
}

int cmd_analyze(const Fsm& fsm) {
  const FsmAnalysis a = analyze_fsm(fsm);
  std::printf("machine: %u states, %d inputs, %d outputs, %zu transitions\n",
              fsm.num_states(), fsm.num_inputs, fsm.num_outputs,
              a.transitions);
  std::printf("deterministic: %s, complete: %s, max fanout: %d, "
              "dc output bits: %zu\n",
              a.deterministic ? "yes" : "NO", a.complete ? "yes" : "no",
              a.max_fanout, a.dont_care_outputs);
  for (const auto& issue : a.issues)
    std::printf("  state %s: %s\n", fsm.states.name(issue.state).c_str(),
                issue.detail.c_str());
  const auto pruned = prune_unreachable(fsm);
  std::printf("unreachable states: %u\n", pruned.removed);
  return a.deterministic ? 0 : 1;
}

int cmd_constraints(const Fsm& fsm) {
  ConstraintSet cs = generate_mixed_constraints(fsm);
  normalize_constraints(cs);
  std::printf("# constraints for %s (%u states)\n", fsm.name.c_str(),
              fsm.num_states());
  std::fputs(cs.to_string().c_str(), stdout);
  return 0;
}

int cmd_encode(const Fsm& fsm, int bits, CostKind cost, bool exact) {
  ConstraintSet cs = generate_mixed_constraints(fsm);
  normalize_constraints(cs);
  std::fprintf(stderr, "constraints: %zu face, %zu dominance, %zu disjunctive\n",
               cs.faces().size(), cs.dominances().size(),
               cs.disjunctives().size());
  Timer t;
  Encoding enc;
  if (exact) {
    ExactEncodeOptions opts;
    opts.cover_options.max_nodes = 200000;
    const auto res = exact_encode(cs, opts);
    if (res.status != ExactEncodeResult::Status::kEncoded) {
      std::fprintf(stderr, "exact encoding failed (infeasible or budget)\n");
      return 1;
    }
    enc = res.encoding;
    std::fprintf(stderr, "exact: %d bits (%s) in %.2fs\n", enc.bits,
                 res.minimal ? "minimal" : "upper bound", t.elapsed_seconds());
  } else {
    if (bits <= 0) bits = minimum_code_length(fsm.num_states());
    BoundedEncodeOptions opts;
    opts.cost = cost;
    const auto res = bounded_encode(cs, bits, opts);
    enc = res.encoding;
    std::fprintf(stderr,
                 "heuristic: %d bits, %d faces violated, %d cubes, "
                 "%d literals in %.2fs\n",
                 enc.bits, res.cost.violated_faces, res.cost.cubes,
                 res.cost.literals, t.elapsed_seconds());
  }
  for (std::uint32_t s = 0; s < fsm.num_states(); ++s)
    std::fprintf(stderr, "  %-12s %s\n", fsm.states.name(s).c_str(),
                 enc.code_string(s).c_str());

  // Build, minimize, behaviourally check, and emit the encoded PLA.
  Pla pla = encode_fsm(fsm, enc);
  const Cover minimized = espresso(pla.on, pla.dc);
  const auto eq = check_encoded_equivalence(fsm, enc, minimized, 500);
  std::fprintf(stderr, "encoded PLA: %zu cubes, %d literals; equivalence "
               "walk: %s\n",
               minimized.size(), minimized.input_literals(),
               eq.equivalent ? "ok" : eq.first_mismatch.c_str());
  if (!eq.equivalent) return 1;
  Pla out = pla;
  out.on = minimized;
  out.dc = Cover(pla.domain);
  write_pla(std::cout, out);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string cmd = argv[1];
  int bits = 0;
  CostKind cost = CostKind::kCubes;
  bool exact = false;
  for (int i = 3; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--bits") && i + 1 < argc)
      bits = std::atoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--exact"))
      exact = true;
    else if (!std::strcmp(argv[i], "--cost") && i + 1 < argc) {
      const std::string c = argv[++i];
      if (c == "violated") cost = CostKind::kViolatedFaces;
      else if (c == "cubes") cost = CostKind::kCubes;
      else if (c == "literals") cost = CostKind::kLiterals;
      else return usage(argv[0]);
    } else {
      return usage(argv[0]);
    }
  }
  try {
    const Fsm fsm = load(argv[2]);
    if (cmd == "analyze") return cmd_analyze(fsm);
    if (cmd == "constraints") return cmd_constraints(fsm);
    if (cmd == "encode") return cmd_encode(fsm, bits, cost, exact);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  return usage(argv[0]);
}
