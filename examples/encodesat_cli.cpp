// encodesat_cli — the one-stop command-line driver for the full flow.
//
//   encodesat_cli analyze     <machine.kiss2>
//       determinism/completeness/reachability report
//   encodesat_cli constraints <machine.kiss2>
//       symbolic minimization -> constraint text on stdout
//   encodesat_cli encode      <machine.kiss2> [--bits K] [--cost C] [--exact]
//       state assignment: heuristic at K bits (default: minimum length,
//       cost C in {violated, cubes, literals}; default cubes) or --exact
//       minimum-length satisfaction of all constraints; prints codes and
//       the minimized encoded PLA to stdout (espresso format)
//   encodesat_cli solve       <constraints.txt>
//       minimum-length encoding of a constraint file via the Solver facade;
//       prints the code table to stdout
//   encodesat_cli fuzz        [--seed S] [--cases N] [--mix M] [--minimize]
//                             [--out DIR]
//       differential fuzzing: random constraint sets through the exact
//       solver, the local check, the baselines and the verify_encoding
//       oracle, cross-checked by the agreement rules of
//       src/fuzz/differential.h; exits 0 iff zero divergences. --minimize
//       delta-debugs each divergent case; --out writes reproducer files
//   encodesat_cli serve       [--socket PATH | --tcp HOST:PORT]
//                             [--workers N] [--max-queue N]
//                             [--default-deadline SECS] [--max-conns N]
//                             [--idle-timeout SECS] [--max-line-bytes N]
//                             [--backlog N]
//       long-running solve service speaking the NDJSON protocol
//       "encodesat-service-v1" (docs/SERVICE.md) on stdin/stdout, on a
//       Unix-domain socket with --socket, or on TCP with --tcp. All
//       clients share one solve cache with single-flight coalescing;
//       connections are reaped eagerly as clients disconnect; SIGTERM
//       drains gracefully (in-flight finishes, queued rejected as
//       overloaded, --cache-save flushed). --timeout sets the default
//       per-request deadline
//
// Flag parsing: every subcommand consumes the shared table below through
// parse_common_flag(); only the subcommand-specific flags are parsed in
// each cmd_* function.
//
// Shared budget/observability flags (encode, solve and fuzz):
//   --timeout SECS    wall-clock budget; expiry yields a truncated result,
//                     never a hang (encode/solve only)
//   --threads N       worker threads (0 = all hardware threads)
//   --stats-out DEST  "encodesat-telemetry-v2" report (stage stats, work
//                     counters, counter fingerprint, gauges, histograms,
//                     trace totals) written to DEST; '-' means stderr
//   --trace-out FILE  Chrome trace-event JSON ("encodesat-trace-v1") of the
//                     pipeline spans, loadable in chrome://tracing/Perfetto
//   --stats-json      deprecated alias for --stats-out - (telemetry now
//                     goes to stderr, keeping stdout for the result)
//
// Solve-cache flags:
//   --cache           encode/solve: consult the canonical-form solve cache
//                     (src/cache/); fuzz: run the `cache` agreement rule
//                     (on by default; --no-cache disables it)
//   --cache-size B    cache byte budget (default 64 MiB; 0 = unlimited)
//   --cache-load F    encode/solve: pre-load the cache from an
//                     `encodesat-cache-v1` file (implies --cache)
//   --cache-save F    encode/solve: save the cache to F afterwards
//                     (implies --cache)
//
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "core/bounded.h"
#include "core/normalize.h"
#include "core/solver.h"
#include "core/verify.h"
#include "fsm/analyze.h"
#include "fuzz/differential.h"
#include "fuzz/minimizer.h"
#include "fuzz/reproducer.h"
#include "fsm/constraints_gen.h"
#include "fsm/encode_fsm.h"
#include "fsm/reachability.h"
#include "fsm/simulate.h"
#include "logic/espresso.h"
#include "obs/counters.h"
#include "obs/reqlog.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "service/server.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace encodesat;

namespace {

struct CliOptions {
  int bits = 0;
  CostKind cost = CostKind::kCubes;
  bool exact = false;
  double timeout_seconds = 0;
  int threads = 1;
  /// Solve cache (--cache / --cache-size / --cache-load / --cache-save).
  bool cache = false;
  std::uint64_t cache_size = 64u << 20;
  std::string cache_load;
  std::string cache_save;
  /// Deprecated bare flag; behaves as `--stats-out -`.
  bool stats_json = false;
  /// Telemetry destination: empty = off, "-" = stderr, else a file path.
  std::string stats_out;
  /// Chrome-trace output file; empty disables tracing entirely.
  std::string trace_out;
};

// Writes one observability artifact to a --stats-out style destination
// ("-" = stderr, else a file path). Failures warn but do not change the
// command's exit status — the solve result is the contract.
void write_text_to(const std::string& dest, const std::string& text,
                   const char* what) {
  if (dest == "-") {
    std::fprintf(stderr, "%s\n", text.c_str());
    return;
  }
  std::ofstream out(dest);
  if (!out)
    std::fprintf(stderr, "cannot write %s to %s\n", what, dest.c_str());
  else
    out << text << '\n';
}

// Emits the telemetry report and/or the Chrome trace per the CLI flags.
void emit_observability(const CliOptions& cli, const char* tool,
                        const StageStats* stats, MetricsRegistry* metrics,
                        Tracer* tracer) {
  if (metrics && tracer)
    // High-water gauge (not add): idempotent however many surfaces report.
    metrics->counter("obs.trace.dropped", /*in_fingerprint=*/false)
        ->record_max(tracer->dropped_spans());
  if (cli.stats_json || !cli.stats_out.empty()) {
    TelemetryOptions topts;
    topts.tool = tool;
    topts.stats = stats;
    topts.metrics = metrics;
    topts.tracer = tracer;
    write_text_to(cli.stats_out.empty() ? "-" : cli.stats_out,
                  telemetry_to_json(topts), "telemetry");
  }
  if (tracer && !cli.trace_out.empty()) {
    std::ofstream out(cli.trace_out);
    if (!out)
      std::fprintf(stderr, "cannot write trace to %s\n",
                   cli.trace_out.c_str());
    else
      tracer->write_chrome_trace(out);
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s analyze|constraints|encode <machine.kiss2> "
               "[--bits K] [--cost violated|cubes|literals] [--exact]\n"
               "       %s solve <constraints.txt>\n"
               "       %s fuzz [--seed S] [--cases N] "
               "[--mix default|input|output|extensions|infeasible] "
               "[--minimize] [--out DIR]\n"
               "       %s serve [--socket PATH | --tcp HOST:PORT] "
               "[--workers N] [--max-queue N] [--default-deadline SECS]\n"
               "                [--max-conns N] [--idle-timeout SECS] "
               "[--max-line-bytes N] [--backlog N]\n"
               "                [--reqlog FILE] [--reqlog-sample N] "
               "[--slow-ms N] [--metrics-window SECS]\n"
               "  common flags: [--timeout SECS] [--threads N] "
               "[--stats-out DEST] [--trace-out FILE]\n"
               "  cache flags:  [--cache] [--cache-size BYTES] "
               "[--cache-load FILE] [--cache-save FILE]\n"
               "  (fuzz takes --cache/--no-cache/--cache-size for the cache "
               "agreement rule;\n"
               "   '-' as DEST means stderr; --stats-json is a deprecated "
               "alias for --stats-out -)\n",
               argv0, argv0, argv0, argv0);
  return 2;
}

Fsm load(const char* path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error(std::string("cannot open ") + path);
  Fsm fsm = parse_kiss2(in);
  fsm.name = path;
  return fsm;
}

int cmd_analyze(const Fsm& fsm) {
  const FsmAnalysis a = analyze_fsm(fsm);
  std::printf("machine: %u states, %d inputs, %d outputs, %zu transitions\n",
              fsm.num_states(), fsm.num_inputs, fsm.num_outputs,
              a.transitions);
  std::printf("deterministic: %s, complete: %s, max fanout: %d, "
              "dc output bits: %zu\n",
              a.deterministic ? "yes" : "NO", a.complete ? "yes" : "no",
              a.max_fanout, a.dont_care_outputs);
  for (const auto& issue : a.issues)
    std::printf("  state %s: %s\n", fsm.states.name(issue.state).c_str(),
                issue.detail.c_str());
  const auto pruned = prune_unreachable(fsm);
  std::printf("unreachable states: %u\n", pruned.removed);
  return a.deterministic ? 0 : 1;
}

int cmd_constraints(const Fsm& fsm) {
  ConstraintSet cs = generate_mixed_constraints(fsm);
  normalize_constraints(cs);
  std::printf("# constraints for %s (%u states)\n", fsm.name.c_str(),
              fsm.num_states());
  std::fputs(cs.to_string().c_str(), stdout);
  return 0;
}

SolveOptions to_solve_options(const CliOptions& cli) {
  SolveOptions opts;
  opts.exec.timeout_seconds = cli.timeout_seconds;
  opts.exec.threads = cli.threads;
  return opts;
}

bool cli_wants_cache(const CliOptions& cli) {
  return cli.cache || !cli.cache_load.empty() || !cli.cache_save.empty();
}

// Builds the CLI-owned solve cache when any cache flag was given, loading
// --cache-load first. A load failure is fatal (exit 2 upstream) — silently
// solving cold would mask a typo'd path.
std::unique_ptr<SolveCache> make_cli_cache(const CliOptions& cli, bool* ok) {
  *ok = true;
  if (!cli_wants_cache(cli)) return nullptr;
  CacheConfig config;
  config.max_bytes = static_cast<std::size_t>(cli.cache_size);
  auto cache = std::make_unique<SolveCache>(config);
  if (!cli.cache_load.empty()) {
    std::string err;
    if (!cache->load(cli.cache_load, &err)) {
      std::fprintf(stderr, "--cache-load %s: %s\n", cli.cache_load.c_str(),
                   err.c_str());
      *ok = false;
      return nullptr;
    }
  }
  return cache;
}

// Saves per --cache-save and reports hit/miss totals. Save failures warn
// but keep the solve's exit status — the result already went to stdout.
void finish_cli_cache(const CliOptions& cli, SolveCache* cache) {
  if (!cache) return;
  if (!cli.cache_save.empty()) {
    std::string err;
    if (!cache->save(cli.cache_save, &err))
      std::fprintf(stderr, "--cache-save %s: %s\n", cli.cache_save.c_str(),
                   err.c_str());
  }
  const CacheStats s = cache->stats();
  std::fprintf(stderr,
               "cache: %llu hits, %llu misses, %zu entries (%zu bytes)\n",
               static_cast<unsigned long long>(s.hits),
               static_cast<unsigned long long>(s.misses), s.entries, s.bytes);
}

int cmd_encode(const Fsm& fsm, const CliOptions& cli) {
  ConstraintSet cs = generate_mixed_constraints(fsm);
  normalize_constraints(cs);
  std::fprintf(stderr, "constraints: %zu face, %zu dominance, %zu disjunctive\n",
               cs.faces().size(), cs.dominances().size(),
               cs.disjunctives().size());
  Timer t;
  Encoding enc;
  std::unique_ptr<Tracer> tracer;
  if (!cli.trace_out.empty()) tracer = std::make_unique<Tracer>();
  MetricsRegistry metrics;
  if (cli.exact) {
    bool cache_ok = true;
    std::unique_ptr<SolveCache> cache = make_cli_cache(cli, &cache_ok);
    if (!cache_ok) return 2;
    SolveRequest req;
    req.constraints = cs;
    req.options = to_solve_options(cli);
    req.options.exact.cover_options.max_nodes = 200000;
    req.options.exec.tracer = tracer.get();
    req.options.exec.metrics = &metrics;
    req.options.cache.store = cache.get();
    const SolveResponse resp = solve(req);
    const SolveResult& res = resp.result;
    emit_observability(cli, "encode", &res.stats, &metrics, tracer.get());
    finish_cli_cache(cli, cache.get());
    if (resp.status == StatusCode::kInternal) {
      std::fprintf(stderr, "%s\n", resp.detail.c_str());
      return 2;
    }
    if (!resp.ok()) {
      std::fprintf(stderr, "exact encoding failed (%s)\n",
                   res.status == SolveResult::Status::kTruncated
                       ? truncation_name(res.truncation)
                       : "infeasible");
      return 1;
    }
    enc = res.encoding;
    std::fprintf(stderr, "exact: %d bits (%s)%s in %.2fs\n", enc.bits,
                 res.minimal ? "minimal" : "upper bound",
                 res.from_cache ? " [cached]" : "", t.elapsed_seconds());
  } else {
    int bits = cli.bits;
    if (bits <= 0) bits = minimum_code_length(fsm.num_states());
    SolveOptions opts = to_solve_options(cli);
    opts.bounded.cost = cli.cost;
    opts.exec.tracer = tracer.get();
    opts.exec.metrics = &metrics;
    StageStats stats;
    const auto res = Solver(cs).encode_bounded(bits, opts, &stats);
    emit_observability(cli, "encode", &stats, &metrics, tracer.get());
    enc = res.encoding;
    std::fprintf(stderr,
                 "heuristic: %d bits, %d faces violated, %d cubes, "
                 "%d literals in %.2fs%s\n",
                 enc.bits, res.cost.violated_faces, res.cost.cubes,
                 res.cost.literals, t.elapsed_seconds(),
                 res.truncation == Truncation::kNone ? "" : " (truncated)");
  }
  for (std::uint32_t s = 0; s < fsm.num_states(); ++s)
    std::fprintf(stderr, "  %-12s %s\n", fsm.states.name(s).c_str(),
                 enc.code_string(s).c_str());

  // Build, minimize, behaviourally check, and emit the encoded PLA.
  Pla pla = encode_fsm(fsm, enc);
  const Cover minimized = espresso(pla.on, pla.dc);
  const auto eq = check_encoded_equivalence(fsm, enc, minimized, 500);
  std::fprintf(stderr, "encoded PLA: %zu cubes, %d literals; equivalence "
               "walk: %s\n",
               minimized.size(), minimized.input_literals(),
               eq.equivalent ? "ok" : eq.first_mismatch.c_str());
  if (!eq.equivalent) return 1;
  Pla out = pla;
  out.on = minimized;
  out.dc = Cover(pla.domain);
  write_pla(std::cout, out);
  return 0;
}

int cmd_solve(const char* path, const CliOptions& cli) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  ParseError err;
  const auto cs = parse_constraints(buf.str(), &err);
  if (!cs) {
    std::fprintf(stderr, "%s: parse error at %s\n", path,
                 err.to_string().c_str());
    return 2;
  }

  Timer t;
  std::unique_ptr<Tracer> tracer;
  if (!cli.trace_out.empty()) tracer = std::make_unique<Tracer>();
  MetricsRegistry metrics;
  bool cache_ok = true;
  std::unique_ptr<SolveCache> cache = make_cli_cache(cli, &cache_ok);
  if (!cache_ok) return 2;
  SolveRequest req;
  req.constraints = *cs;
  req.options = to_solve_options(cli);
  req.options.exec.tracer = tracer.get();
  req.options.exec.metrics = &metrics;
  req.options.cache.store = cache.get();
  const SolveResponse resp = solve(req);
  const SolveResult& res = resp.result;
  emit_observability(cli, "solve", &res.stats, &metrics, tracer.get());
  finish_cli_cache(cli, cache.get());
  switch (resp.status) {
    case StatusCode::kInfeasible:
      std::printf("INFEASIBLE\n");
      return 1;
    case StatusCode::kTimeout:
    case StatusCode::kCanceled:
      std::printf("TRUNCATED (%s)\n", truncation_name(res.truncation));
      return 1;
    case StatusCode::kInternal:
      std::fprintf(stderr, "%s\n", resp.detail.c_str());
      return 2;
    default:
      break;
  }
  std::fprintf(stderr, "encoded %u symbols in %d bits (%s)%s in %.2fs\n",
               cs->num_symbols(), res.encoding.bits,
               res.minimal ? "minimal" : "upper bound",
               res.from_cache ? " [cached]" : "", t.elapsed_seconds());
  std::printf("bits: %d\n", res.encoding.bits);
  for (std::uint32_t s = 0; s < cs->num_symbols(); ++s)
    std::printf("%-12s %s\n", cs->symbols().name(s).c_str(),
                res.encoding.code_string(s).c_str());
  return 0;
}

// atoi/atof silently map garbage to 0, which for --timeout means
// "no timeout" — reject anything that doesn't parse fully instead.
bool parse_number(const char* flag, const char* text, double* out) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || v < 0) {
    std::fprintf(stderr, "%s: expected a non-negative number, got '%s'\n",
                 flag, text);
    return false;
  }
  *out = v;
  return true;
}

bool parse_int(const char* flag, const char* text, int* out) {
  double v = 0;
  if (!parse_number(flag, text, &v)) return false;
  if (v != static_cast<int>(v)) {
    std::fprintf(stderr, "%s: expected an integer, got '%s'\n", flag, text);
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

bool parse_u64(const char* flag, const char* text, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "%s: expected a non-negative integer, got '%s'\n",
                 flag, text);
    return false;
  }
  *out = v;
  return true;
}

// The one shared flag table (budget, observability, cache) consumed by
// every subcommand. Returns the number of argv slots consumed at position
// `i` (0 = not a shared flag, caller tries its own flags), or -1 when the
// flag was recognized but its value was malformed (caller exits 2).
int parse_common_flag(int argc, char** argv, int i, CliOptions* cli) {
  const char* flag = argv[i];
  const bool has_value = i + 1 < argc;
  if (!std::strcmp(flag, "--timeout") && has_value)
    return parse_number(flag, argv[i + 1], &cli->timeout_seconds) ? 2 : -1;
  if (!std::strcmp(flag, "--threads") && has_value)
    return parse_int(flag, argv[i + 1], &cli->threads) ? 2 : -1;
  if (!std::strcmp(flag, "--cache")) {
    cli->cache = true;
    return 1;
  }
  if (!std::strcmp(flag, "--cache-size") && has_value)
    return parse_u64(flag, argv[i + 1], &cli->cache_size) ? 2 : -1;
  if (!std::strcmp(flag, "--cache-load") && has_value) {
    cli->cache_load = argv[i + 1];
    return 2;
  }
  if (!std::strcmp(flag, "--cache-save") && has_value) {
    cli->cache_save = argv[i + 1];
    return 2;
  }
  if (!std::strcmp(flag, "--stats-out") && has_value) {
    cli->stats_out = argv[i + 1];
    return 2;
  }
  if (!std::strcmp(flag, "--trace-out") && has_value) {
    cli->trace_out = argv[i + 1];
    return 2;
  }
  if (!std::strcmp(flag, "--stats-json")) {
    cli->stats_json = true;
    std::fprintf(stderr,
                 "note: --stats-json is deprecated; use --stats-out FILE "
                 "('-' for stderr)\n");
    return 1;
  }
  return 0;
}

int cmd_fuzz(int argc, char** argv) {
  std::uint64_t seed = 1;
  std::uint64_t cases = 1000;
  FuzzRunOptions opts;
  bool minimize = false;
  bool no_cache = false;
  std::string out_dir;
  CliOptions obs_cli;  // shared flags (threads, cache sizing, observability)
  obs_cli.cache_size = opts.differential.cache_max_bytes;
  for (int i = 2; i < argc; ++i) {
    const int used = parse_common_flag(argc, argv, i, &obs_cli);
    if (used < 0) return 2;
    if (used > 0) {
      i += used - 1;
      continue;
    }
    if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      if (!parse_u64("--seed", argv[++i], &seed)) return 2;
    } else if (!std::strcmp(argv[i], "--cases") && i + 1 < argc) {
      if (!parse_u64("--cases", argv[++i], &cases)) return 2;
    } else if (!std::strcmp(argv[i], "--mix") && i + 1 < argc) {
      const auto mix = generator_mix(argv[++i]);
      if (!mix) {
        std::fprintf(stderr, "--mix: unknown mix '%s'\n", argv[i]);
        return 2;
      }
      opts.generator = *mix;
    } else if (!std::strcmp(argv[i], "--minimize"))
      minimize = true;
    else if (!std::strcmp(argv[i], "--no-cache"))
      no_cache = true;
    else if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
      out_dir = argv[++i];
    else
      return usage(argv[0]);
  }
  // Shared-table flags map onto the fuzz run: --cache/--no-cache toggle
  // the cache agreement rule (on by default), --cache-size bounds its
  // per-case caches, --threads is the case fan-out width.
  opts.threads = obs_cli.threads;
  if (obs_cli.cache) opts.differential.check_cache = true;
  if (no_cache) opts.differential.check_cache = false;
  opts.differential.cache_max_bytes =
      static_cast<std::size_t>(obs_cli.cache_size);

  std::unique_ptr<Tracer> tracer;
  if (!obs_cli.trace_out.empty()) tracer = std::make_unique<Tracer>();
  MetricsRegistry metrics;
  opts.tracer = tracer.get();
  opts.differential.metrics = &metrics;

  const FuzzReport report = run_fuzz(seed, cases, opts);
  for (const FuzzDivergentCase& dc : report.divergent) {
    std::fprintf(stderr, "divergence: case %llu (seed %llu)\n",
                 static_cast<unsigned long long>(dc.index),
                 static_cast<unsigned long long>(dc.case_seed));
    for (const FuzzDivergence& d : dc.result.divergences)
      std::fprintf(stderr, "  %s: %s\n", fuzz_rule_name(d.rule),
                   d.detail.c_str());

    FuzzReproducer repro;
    repro.run_seed = seed;
    repro.case_index = dc.index;
    repro.rule = fuzz_rule_name(dc.result.divergences.front().rule);
    repro.detail = dc.result.divergences.front().detail;
    ParseError err;
    const auto cs = parse_constraints(dc.constraints_text, &err);
    if (!cs) {
      std::fprintf(stderr, "  internal: case does not re-parse (%s)\n",
                   err.to_string().c_str());
      continue;
    }
    repro.constraints = *cs;
    if (minimize) {
      const auto pred = rule_predicate(dc.result.divergences.front().rule,
                                       opts.differential);
      const MinimizeResult min = minimize_divergence(*cs, pred);
      std::fprintf(stderr,
                   "  minimized: -%d constraints, -%d elements, -%d symbols "
                   "(%d probes)\n",
                   min.removed_constraints, min.removed_elements,
                   min.removed_symbols, min.probes);
      repro.constraints = min.constraints;
      repro.minimized = true;
    }
    if (!out_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(out_dir, ec);
      const std::string path = out_dir + "/" + reproducer_filename(repro);
      if (write_reproducer_file(path, repro))
        std::fprintf(stderr, "  reproducer: %s\n", path.c_str());
      else
        std::fprintf(stderr, "  cannot write reproducer %s\n", path.c_str());
    } else {
      std::fputs(reproducer_to_text(repro).c_str(), stdout);
    }
  }
  // Run-level counters land next to the per-case pipeline totals the
  // differential driver merged into `metrics`.
  metrics.counter("fuzz.cases")->add(report.cases);
  metrics.counter("fuzz.feasible")->add(report.feasible);
  metrics.counter("fuzz.infeasible")->add(report.infeasible);
  metrics.counter("fuzz.truncated")->add(report.truncated);
  metrics.counter("fuzz.divergences")->add(report.divergent.size());
  emit_observability(obs_cli, "fuzz", nullptr, &metrics, tracer.get());

  std::printf("%s\n", report.summary().c_str());
  return report.divergent.empty() ? 0 : 1;
}

int cmd_serve(int argc, char** argv) {
  CliOptions cli;
  std::string socket_path;
  std::string tcp_host_port;
  int workers = 2;
  int max_queue = 64;
  double default_deadline = 0;
  std::string reqlog_path;
  int reqlog_sample = 1;
  double slow_ms = 0;
  double metrics_window_s = 300;
  int max_conns = 0;
  double idle_timeout_s = 0;
  int max_line_bytes = 1 << 20;
  int backlog = 128;
  for (int i = 2; i < argc; ++i) {
    const int used = parse_common_flag(argc, argv, i, &cli);
    if (used < 0) return 2;
    if (used > 0) {
      i += used - 1;
      continue;
    }
    if (!std::strcmp(argv[i], "--socket") && i + 1 < argc)
      socket_path = argv[++i];
    else if (!std::strcmp(argv[i], "--tcp") && i + 1 < argc)
      tcp_host_port = argv[++i];
    else if (!std::strcmp(argv[i], "--max-conns") && i + 1 < argc) {
      if (!parse_int("--max-conns", argv[++i], &max_conns)) return 2;
    } else if (!std::strcmp(argv[i], "--idle-timeout") && i + 1 < argc) {
      if (!parse_number("--idle-timeout", argv[++i], &idle_timeout_s))
        return 2;
    } else if (!std::strcmp(argv[i], "--max-line-bytes") && i + 1 < argc) {
      if (!parse_int("--max-line-bytes", argv[++i], &max_line_bytes))
        return 2;
    } else if (!std::strcmp(argv[i], "--backlog") && i + 1 < argc) {
      if (!parse_int("--backlog", argv[++i], &backlog)) return 2;
    } else if (!std::strcmp(argv[i], "--workers") && i + 1 < argc) {
      if (!parse_int("--workers", argv[++i], &workers)) return 2;
    } else if (!std::strcmp(argv[i], "--max-queue") && i + 1 < argc) {
      if (!parse_int("--max-queue", argv[++i], &max_queue)) return 2;
    } else if (!std::strcmp(argv[i], "--default-deadline") && i + 1 < argc) {
      if (!parse_number("--default-deadline", argv[++i], &default_deadline))
        return 2;
    } else if (!std::strcmp(argv[i], "--reqlog") && i + 1 < argc) {
      reqlog_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--reqlog-sample") && i + 1 < argc) {
      if (!parse_int("--reqlog-sample", argv[++i], &reqlog_sample)) return 2;
    } else if (!std::strcmp(argv[i], "--slow-ms") && i + 1 < argc) {
      if (!parse_number("--slow-ms", argv[++i], &slow_ms)) return 2;
    } else if (!std::strcmp(argv[i], "--metrics-window") && i + 1 < argc) {
      if (!parse_number("--metrics-window", argv[++i], &metrics_window_s))
        return 2;
    } else
      return usage(argv[0]);
  }

  std::unique_ptr<Tracer> tracer;
  if (!cli.trace_out.empty()) tracer = std::make_unique<Tracer>();
  MetricsRegistry metrics;
  bool cache_ok = true;
  std::unique_ptr<SolveCache> cache = make_cli_cache(cli, &cache_ok);
  if (!cache_ok) return 2;
  if (!cache) {
    // The shared cache is the service's raison d'être: serve always runs
    // one, flags or not (--cache-size still bounds it).
    CacheConfig config;
    config.max_bytes = static_cast<std::size_t>(cli.cache_size);
    cache = std::make_unique<SolveCache>(config);
  }

  // Rolling latency window: --metrics-window spans the whole ring across
  // a fixed 60 sub-windows (so a 300 s window rotates every 5 s).
  RollingWindow::Config wcfg;
  if (metrics_window_s < 1) metrics_window_s = 1;
  wcfg.sub_windows = 60;
  wcfg.sub_window_us = static_cast<std::uint64_t>(
      std::max(1.0, metrics_window_s * 1e6 / 60));
  RollingWindow window(wcfg);

  std::unique_ptr<RequestLog> reqlog;
  if (!reqlog_path.empty()) {
    ReqLogConfig rcfg;
    rcfg.path = reqlog_path;
    rcfg.sample_every =
        reqlog_sample < 0 ? 0 : static_cast<std::uint64_t>(reqlog_sample);
    rcfg.slow_us = static_cast<std::uint64_t>(slow_ms * 1000);
    reqlog = std::make_unique<RequestLog>(rcfg);
    if (!reqlog->ok()) {
      std::fprintf(stderr, "%s\n", reqlog->open_error().c_str());
      return 2;
    }
  }

  ServerConfig scfg;
  scfg.broker.workers = workers;
  scfg.broker.max_queue = static_cast<std::size_t>(max_queue);
  // --timeout doubles as the default per-request deadline; the broker
  // turns it into remaining-time budgets, so the base options carry none.
  scfg.broker.default_deadline_seconds =
      default_deadline > 0 ? default_deadline : cli.timeout_seconds;
  scfg.broker.base_options = to_solve_options(cli);
  scfg.broker.base_options.exec.timeout_seconds = 0;
  scfg.broker.cache = cache.get();
  scfg.broker.metrics = &metrics;
  scfg.broker.tracer = tracer.get();
  scfg.broker.window = &window;
  scfg.broker.reqlog = reqlog.get();
  scfg.metrics = &metrics;
  scfg.tracer = tracer.get();
  scfg.window = &window;
  scfg.max_conns = max_conns;
  scfg.idle_timeout_ms = static_cast<int>(idle_timeout_s * 1000);
  scfg.max_line_bytes =
      max_line_bytes < 1 ? 1 : static_cast<std::size_t>(max_line_bytes);
  scfg.backlog = backlog;

  if (!socket_path.empty() && !tcp_host_port.empty()) {
    std::fprintf(stderr, "--socket and --tcp are mutually exclusive\n");
    return 2;
  }
  Server server(std::move(scfg));
  ScopedDrainSignals signals(&server);
  int rc;
  if (!tcp_host_port.empty())
    rc = server.run_tcp(tcp_host_port);
  else if (!socket_path.empty())
    rc = server.run_unix_socket(socket_path);
  else
    rc = server.run_pipe(0, 1);
  if (rc != 0 && !server.last_error().empty())
    std::fprintf(stderr, "%s\n", server.last_error().c_str());
  // run_* returns only after the drain: every in-flight solve finished, so
  // the cache is quiescent for --cache-save and the counters are final.
  emit_observability(cli, "serve", nullptr, &metrics, tracer.get());
  finish_cli_cache(cli, cache.get());
  return rc == 0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  if (cmd == "fuzz" || cmd == "serve") {
    try {
      return cmd == "fuzz" ? cmd_fuzz(argc, argv) : cmd_serve(argc, argv);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  if (argc < 3) return usage(argv[0]);
  CliOptions cli;
  for (int i = 3; i < argc; ++i) {
    const int used = parse_common_flag(argc, argv, i, &cli);
    if (used < 0) return 2;
    if (used > 0) {
      i += used - 1;
      continue;
    }
    if (!std::strcmp(argv[i], "--bits") && i + 1 < argc) {
      if (!parse_int("--bits", argv[++i], &cli.bits)) return 2;
    } else if (!std::strcmp(argv[i], "--exact"))
      cli.exact = true;
    else if (!std::strcmp(argv[i], "--cost") && i + 1 < argc) {
      const std::string c = argv[++i];
      if (c == "violated") cli.cost = CostKind::kViolatedFaces;
      else if (c == "cubes") cli.cost = CostKind::kCubes;
      else if (c == "literals") cli.cost = CostKind::kLiterals;
      else return usage(argv[0]);
    } else {
      return usage(argv[0]);
    }
  }
  try {
    if (cmd == "solve") return cmd_solve(argv[2], cli);
    const Fsm fsm = load(argv[2]);
    if (cmd == "analyze") return cmd_analyze(fsm);
    if (cmd == "constraints") return cmd_constraints(fsm);
    if (cmd == "encode") return cmd_encode(fsm, cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  return usage(argv[0]);
}
