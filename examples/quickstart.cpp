// Quickstart: build a constraint set, check feasibility, find a minimum
// length encoding, and verify it — the paper's abstract example, driven
// through the Solver facade (core/solver.h).
//
//   $ ./quickstart
//
#include <cstdio>

#include "core/solver.h"
#include "core/verify.h"

using namespace encodesat;

int main() {
  // Input (face-embedding) and output (dominance / disjunctive)
  // constraints, as a symbolic minimizer would emit them.
  const Solver solver(parse_constraints(R"(
    face b c
    face c d
    face b a
    face a d
    dominance b c
    dominance a c
    disjunctive a b d
  )"));
  const ConstraintSet& cs = solver.constraints();

  // P-1: is the set satisfiable at all? (Polynomial time, Theorem 6.1.)
  std::printf("feasible: %s\n", solver.feasible() ? "yes" : "no");
  if (!solver.feasible()) return 1;

  // P-2: minimum-length codes satisfying every constraint (Figure 7).
  const SolveResult res = solver.encode();
  if (!res.encoded()) {
    std::printf("encoding failed\n");
    return 1;
  }
  std::printf("minimum code length: %d bits%s\n", res.encoding.bits,
              res.minimal ? " (proved minimal)" : "");
  std::printf("codes: %s\n", res.encoding.to_string(cs.symbols()).c_str());

  // Independent verification against the constraint semantics.
  const auto violations = verify_encoding(res.encoding, cs);
  std::printf("violations: %zu\n", violations.size());
  for (const auto& v : violations) std::printf("  %s\n", v.detail.c_str());
  return violations.empty() ? 0 : 1;
}
