// Quickstart: build a constraint set, check feasibility, find a minimum
// length encoding, and verify it — the paper's abstract example.
//
//   $ ./quickstart
//
#include <cstdio>

#include "core/encoder.h"
#include "core/verify.h"

using namespace encodesat;

int main() {
  // Input (face-embedding) and output (dominance / disjunctive)
  // constraints, as a symbolic minimizer would emit them.
  const ConstraintSet cs = parse_constraints(R"(
    face b c
    face c d
    face b a
    face a d
    dominance b c
    dominance a c
    disjunctive a b d
  )");

  // P-1: is the set satisfiable at all? (Polynomial time, Theorem 6.1.)
  const FeasibilityResult feasible = check_feasible(cs);
  std::printf("feasible: %s\n", feasible.feasible ? "yes" : "no");
  if (!feasible.feasible) return 1;

  // P-2: minimum-length codes satisfying every constraint (Figure 7).
  const ExactEncodeResult res = exact_encode(cs);
  if (res.status != ExactEncodeResult::Status::kEncoded) {
    std::printf("encoding failed\n");
    return 1;
  }
  std::printf("minimum code length: %d bits%s\n", res.encoding.bits,
              res.minimal ? " (proved minimal)" : "");
  std::printf("codes: %s\n", res.encoding.to_string(cs.symbols()).c_str());

  // Independent verification against the constraint semantics.
  const auto violations = verify_encoding(res.encoding, cs);
  std::printf("violations: %zu\n", violations.size());
  for (const auto& v : violations) std::printf("  %s\n", v.detail.c_str());
  return violations.empty() ? 0 : 1;
}
