# Helper for the reqlog_smoke test (see CMakeLists.txt here): replays the
# golden pipe session with the request log on stderr (--reqlog -). The
# NDJSON response stream must still match the golden byte for byte (the
# log must never pollute stdout), and every stderr line tagged with the
# encodesat-reqlog-v1 schema must pass tools/check_reqlog.py. A 1 ms slow
# threshold plus per-request solves make slow lines (with attached spans)
# likely but not guaranteed — the checker validates whatever appeared.
# Expects CLI, REQUESTS, GOLDEN, PYTHON, CHECKER, OUT, ERRFILE.
execute_process(
  COMMAND ${CLI} serve --workers 2 --reqlog - --slow-ms 1
  INPUT_FILE ${REQUESTS}
  OUTPUT_FILE ${OUT}
  ERROR_FILE ${ERRFILE}
  RESULT_VARIABLE serve_rc)
if(NOT serve_rc EQUAL 0)
  file(READ ${ERRFILE} serve_err)
  message(FATAL_ERROR "encodesat_cli serve exited with ${serve_rc}: ${serve_err}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  file(READ ${OUT} got)
  message(FATAL_ERROR "responses diverged from the golden stream with "
                      "--reqlog active:\n${got}")
endif()
execute_process(
  COMMAND ${PYTHON} ${CHECKER} ${ERRFILE} --min-lines 3
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "check_reqlog.py rejected the log (rc=${check_rc})")
endif()
