// Command-line constraint-satisfaction tool: reads a constraint file in the
// text grammar of core/constraints.h, answers P-1 (feasibility), and — when
// satisfiable — solves P-2 (minimum-length codes) or P-3 (bounded length,
// chosen cost function). Uses the Solver facade of core/solver.h.
//
//   $ ./feasibility_tool constraints.txt            # P-1 + P-2
//   $ ./feasibility_tool constraints.txt 4 cubes    # P-3 at 4 bits
//
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/normalize.h"
#include "core/solver.h"
#include "core/verify.h"

using namespace encodesat;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <constraints.txt> [code_length "
                 "[violated|cubes|literals]]\n",
                 argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  ParseError err;
  auto parsed = parse_constraints(buf.str(), &err);
  if (!parsed) {
    std::fprintf(stderr, "constraint parse error at %s\n",
                 err.to_string().c_str());
    return 2;
  }
  ConstraintSet cs = std::move(*parsed);
  const NormalizeStats norm = normalize_constraints(cs);
  std::printf("%u symbols, %zu face, %zu dominance, %zu disjunctive, "
              "%zu extended\n",
              cs.num_symbols(), cs.faces().size(), cs.dominances().size(),
              cs.disjunctives().size(), cs.extended_disjunctives().size());
  const std::size_t removed = norm.duplicate_faces + norm.trivial_faces +
                              norm.duplicate_dominances +
                              norm.transitive_dominances +
                              norm.duplicate_disjunctives;
  if (removed > 0)
    std::printf("(normalization removed %zu redundant constraints)\n",
                removed);

  const Solver solver(std::move(cs));
  const ConstraintSet& ncs = solver.constraints();
  const FeasibilityResult feas = solver.feasibility();
  if (!feas.feasible) {
    std::printf("INFEASIBLE — uncovered initial encoding-dichotomies:\n");
    for (std::size_t i : feas.uncovered)
      std::printf("  %s\n",
                  feas.initial[i].dichotomy.to_string(ncs.symbols()).c_str());
    return 1;
  }
  std::printf("feasible\n");

  if (argc >= 3) {
    const int bits = std::atoi(argv[2]);
    BoundedEncodeOptions opts;
    if (argc >= 4) {
      if (!std::strcmp(argv[3], "violated")) opts.cost = CostKind::kViolatedFaces;
      else if (!std::strcmp(argv[3], "cubes")) opts.cost = CostKind::kCubes;
      else if (!std::strcmp(argv[3], "literals")) opts.cost = CostKind::kLiterals;
      else {
        std::fprintf(stderr, "unknown cost function %s\n", argv[3]);
        return 2;
      }
    }
    const auto res = bounded_encode(ncs, bits, opts);
    std::printf("bounded %d-bit encoding: %s\n", bits,
                res.encoding.to_string(ncs.symbols()).c_str());
    std::printf("cost: %d violated faces, %d cubes, %d literals\n",
                res.cost.violated_faces, res.cost.cubes, res.cost.literals);
    return 0;
  }

  const SolveResult res = solver.encode();
  if (res.status == SolveResult::Status::kTruncated) {
    std::printf("prime generation exceeded its budget; retry bounded mode\n");
    return 1;
  }
  std::printf("minimum code length: %d bits%s\n", res.encoding.bits,
              res.minimal ? "" : " (upper bound; search budget exhausted)");
  std::printf("codes: %s\n", res.encoding.to_string(ncs.symbols()).c_str());
  const auto v = verify_encoding(res.encoding, ncs);
  if (!v.empty()) {
    std::printf("INTERNAL ERROR: verification failed: %s\n",
                v[0].detail.c_str());
    return 1;
  }
  return 0;
}
