# Helper for the check_trace test (see CMakeLists.txt here): runs the CLI
# with --trace-out — once as a one-shot solve, once as a pipe-mode serve
# session over the smoke request stream — then tools/check_trace.py on each
# result. Expects CLI, CONSTRAINTS, REQUESTS, PYTHON, CHECKER, OUT_TRACE,
# OUT_SERVE_TRACE.
execute_process(
  COMMAND ${CLI} solve ${CONSTRAINTS} --threads 4 --trace-out ${OUT_TRACE}
  RESULT_VARIABLE solve_rc)
if(NOT solve_rc EQUAL 0)
  message(FATAL_ERROR "encodesat_cli solve exited with ${solve_rc}")
endif()
execute_process(
  COMMAND ${PYTHON} ${CHECKER} ${OUT_TRACE}
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "check_trace.py rejected the trace (rc=${check_rc})")
endif()
execute_process(
  COMMAND ${CLI} serve --workers 4 --trace-out ${OUT_SERVE_TRACE}
  INPUT_FILE ${REQUESTS}
  OUTPUT_QUIET
  ERROR_VARIABLE serve_err
  RESULT_VARIABLE serve_rc)
if(NOT serve_rc EQUAL 0)
  message(FATAL_ERROR "encodesat_cli serve exited with ${serve_rc}: ${serve_err}")
endif()
execute_process(
  COMMAND ${PYTHON} ${CHECKER} ${OUT_SERVE_TRACE}
  RESULT_VARIABLE serve_check_rc)
if(NOT serve_check_rc EQUAL 0)
  message(FATAL_ERROR
          "check_trace.py rejected the serve trace (rc=${serve_check_rc})")
endif()
