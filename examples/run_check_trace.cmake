# Helper for the check_trace test (see CMakeLists.txt here): runs the CLI
# with --trace-out, then tools/check_trace.py on the result. Expects CLI,
# CONSTRAINTS, PYTHON, CHECKER, OUT_TRACE.
execute_process(
  COMMAND ${CLI} solve ${CONSTRAINTS} --threads 4 --trace-out ${OUT_TRACE}
  RESULT_VARIABLE solve_rc)
if(NOT solve_rc EQUAL 0)
  message(FATAL_ERROR "encodesat_cli solve exited with ${solve_rc}")
endif()
execute_process(
  COMMAND ${PYTHON} ${CHECKER} ${OUT_TRACE}
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "check_trace.py rejected the trace (rc=${check_rc})")
endif()
