// Encoding for sequential testability (Section 8 extensions): distance-2
// constraints keep critical state pairs two bit-flips apart (single-bit
// upsets cannot alias them), and non-face constraints deliberately embed a
// foreign code inside a state group's face.
//
//   $ ./testable_encoding
//
#include <cstdio>

#include "core/solver.h"
#include "core/verify.h"

using namespace encodesat;

namespace {

void run(const char* title, const ConstraintSet& cs) {
  std::printf("--- %s ---\n", title);
  SolveOptions so;
  so.pipeline = SolveOptions::Pipeline::kExtensions;
  const SolveResult res = Solver(cs).encode(so);
  switch (res.status) {
    case SolveResult::Status::kEncoded: {
      std::printf("encoded in %d bits (%zu candidate columns, %llu nodes)\n",
                  res.encoding.bits, res.num_candidates,
                  static_cast<unsigned long long>(res.nodes_explored));
      std::printf("codes: %s\n", res.encoding.to_string(cs.symbols()).c_str());
      const auto v = verify_encoding(res.encoding, cs);
      std::printf("verified: %s\n", v.empty() ? "all constraints hold"
                                              : v[0].detail.c_str());
      break;
    }
    case SolveResult::Status::kInfeasible:
      std::printf("infeasible (as expected for contradictory demands)\n");
      break;
    case SolveResult::Status::kTruncated:
      std::printf("a solve budget expired before an answer\n");
      break;
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // A controller whose error states must be distance-2 from their normal
  // counterparts, on top of ordinary face constraints from minimization.
  run("fault-secure controller (distance-2)", parse_constraints(R"(
    face idle run
    face run flush done
    distance2 idle err_idle
    distance2 run err_run
    symbol err_idle
    symbol err_run
  )"));

  // Section 8.3's example: faces plus a non-face requirement.
  run("non-face constraint (Section 8.3 example)", parse_constraints(R"(
    face a b
    face b c d
    face a e
    face d f
    nonface a b e
  )"));

  // Contradictory demands are detected, not silently dropped.
  run("contradiction detection", parse_constraints(R"(
    face a b
    nonface a b
    symbol c
    symbol d
  )"));
  return 0;
}
