// Symbolic input encoding beyond state assignment: choosing the binary
// opcode field of an instruction decoder.
//
// The decoder is specified with a *symbolic* operation input. Multi-valued
// minimization groups the opcodes that share control signals; each group
// becomes a face constraint. An encoding satisfying all faces lets every
// multi-valued cube become ONE binary cube — the encoded decoder has the
// same cardinality as the MV-minimized cover (the paper's central claim
// for input constraints). A naive opcode numbering typically does not.
//
//   $ ./opcode_encoding
//
#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/solver.h"
#include "core/verify.h"
#include "logic/espresso.h"
#include "util/rng.h"

using namespace encodesat;

namespace {

const char* kOpcodes[] = {"ADD", "SUB", "AND", "OR", "LD", "ST", "BR", "NOP"};
constexpr int kNumOps = 8;
constexpr int kNumSignals = 5;
// Control signals per opcode: alu_en, mem_rd, mem_wr, wb_en, branch.
const char* kSignals[kNumOps] = {
    "10010",  // ADD
    "10010",  // SUB
    "10010",  // AND
    "10010",  // OR
    "01010",  // LD
    "00100",  // ST
    "00001",  // BR
    "00000",  // NOP
};

// Builds the decoder cover with the opcode as one MV(8) input variable.
Cover symbolic_decoder() {
  const Domain dom({kNumOps}, kNumSignals);
  Cover on(dom);
  for (int op = 0; op < kNumOps; ++op) {
    bool any = false;
    Cube c(dom);
    c.bits.set(static_cast<std::size_t>(dom.pos(0, op)));
    for (int s = 0; s < kNumSignals; ++s)
      if (kSignals[op][s] == '1') {
        c.bits.set(static_cast<std::size_t>(dom.out_pos(s)));
        any = true;
      }
    if (any) on.add(c);
  }
  return on;
}

// Encoded decoder: replace each opcode by its code and minimize.
Cover encoded_decoder(const Encoding& enc) {
  const Domain dom = Domain::binary(enc.bits, kNumSignals);
  Cover on(dom);
  for (int op = 0; op < kNumOps; ++op) {
    Cube c(dom);
    for (int v = 0; v < enc.bits; ++v)
      c.bits.set(static_cast<std::size_t>(
          dom.pos(v, static_cast<int>((enc.codes[static_cast<std::size_t>(op)] >> v) & 1u))));
    bool any = false;
    for (int s = 0; s < kNumSignals; ++s)
      if (kSignals[op][s] == '1') {
        c.bits.set(static_cast<std::size_t>(dom.out_pos(s)));
        any = true;
      }
    if (any) on.add(c);
  }
  return espresso(on, Cover(on.domain()));
}

}  // namespace

int main() {
  // Phase 1: multi-valued minimization of the symbolic decoder.
  const Cover symbolic = symbolic_decoder();
  const Cover mv_min = espresso(symbolic, Cover(symbolic.domain()));
  std::printf("symbolic decoder: %zu MV cubes after minimization\n",
              mv_min.size());

  // Face constraints: the opcode groups of the minimized MV cubes.
  ConstraintSet cs;
  for (const char* op : kOpcodes) cs.symbols().intern(op);
  for (const Cube& c : mv_min) {
    std::vector<std::uint32_t> group;
    for (int op = 0; op < kNumOps; ++op)
      if (c.bits.test(static_cast<std::size_t>(mv_min.domain().pos(0, op))))
        group.push_back(static_cast<std::uint32_t>(op));
    if (group.size() >= 2 && group.size() < kNumOps)
      cs.add_face_ids(std::move(group));
  }
  std::printf("face constraints from MV literals: %zu\n", cs.faces().size());
  for (const auto& f : cs.faces()) {
    std::printf("  face:");
    for (auto m : f.members) std::printf(" %s", cs.symbols().name(m).c_str());
    std::printf("\n");
  }

  // Phase 2: constraint satisfaction.
  const SolveResult res = Solver(cs).encode();
  if (res.status != SolveResult::Status::kEncoded) {
    std::printf("no satisfying encoding found\n");
    return 1;
  }
  std::printf("opcode field: %d bits, all faces satisfied: %s\n",
              res.encoding.bits,
              verify_encoding(res.encoding, cs).empty() ? "yes" : "NO");
  for (int op = 0; op < kNumOps; ++op)
    std::printf("  %-4s = %s\n", kOpcodes[op],
                res.encoding.code_string(static_cast<std::uint32_t>(op)).c_str());

  // Compare decoder sizes: constraint-aware codes vs a naive numbering (by
  // mnemonic, alphabetically — a perfectly natural choice that scatters the
  // ALU group across the cube).
  const Cover smart = encoded_decoder(res.encoding);
  Encoding naive;
  naive.bits = res.encoding.bits;
  naive.codes.resize(kNumOps);
  {
    std::vector<std::pair<std::string, std::uint32_t>> by_name;
    for (std::uint32_t op = 0; op < kNumOps; ++op)
      by_name.emplace_back(kOpcodes[op], op);
    std::sort(by_name.begin(), by_name.end());
    for (std::uint32_t rank = 0; rank < kNumOps; ++rank)
      naive.codes[by_name[rank].second] = rank;
  }
  const Cover plain = encoded_decoder(naive);
  std::printf("encoded decoder: %zu cubes with satisfied faces "
              "(MV cover had %zu), %zu cubes with naive numbering\n",
              smart.size(), mv_min.size(), plain.size());
  return smart.size() <= plain.size() ? 0 : 1;
}
