// Unate recursive paradigm (URP) operations on covers: tautology,
// complement, and cover-containment checks.
//
// The output part is treated as one more multi-valued variable, so every
// routine works uniformly for multi-output functions over the characteristic
// set of (input minterm, output) pairs — the classical ESPRESSO view.
#pragma once

#include "logic/cover.h"

namespace encodesat {

/// True iff the cover denotes the universe of (minterm, output) pairs.
bool is_tautology(const Cover& f);

/// Complement of the cover (URP with single-cube DeMorgan leaf and
/// single-cube-containment minimization of partial results).
Cover complement(const Cover& f);

/// True iff cube c is covered by f (tautology of the cofactor of f by c).
bool cover_contains_cube(const Cover& f, const Cube& c);

/// True iff every cube of g is covered by f.
bool cover_contains(const Cover& f, const Cover& g);

/// True iff f and g denote the same function modulo the don't-care set dc:
/// f ⊆ g ∪ dc and g ⊆ f ∪ dc.
bool covers_equivalent(const Cover& f, const Cover& g, const Cover& dc);

}  // namespace encodesat
