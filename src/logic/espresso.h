// ESPRESSO-style heuristic two-level minimization: EXPAND / IRREDUNDANT /
// REDUCE iterated to a local minimum (Brayton et al., 1984; Rudell &
// Sangiovanni-Vincentelli, "Multiple-Valued Minimization for PLA
// Optimization", 1987).
//
// This is the workhorse behind (a) symbolic-minimization constraint
// generation from FSMs, (b) the paper's Fig. 9 cost functions (#cubes and
// #literals of the encoded constraints), and (c) encoded-PLA size reporting.
#pragma once

#include "logic/cover.h"

namespace encodesat {

struct EspressoOptions {
  /// Maximum EXPAND/IRREDUNDANT/REDUCE round-trips after the first pass.
  int max_iterations = 8;
  /// Skip the REDUCE refinement loop: single EXPAND + IRREDUNDANT pass
  /// (faster, slightly larger covers) — used by inner-loop cost evaluation.
  bool single_pass = false;
};

struct EspressoStats {
  int iterations = 0;
  std::size_t initial_cubes = 0;
  std::size_t final_cubes = 0;
};

/// Minimizes the ON-set cover `on` against don't-care cover `dc` (same
/// domain). Returns a cover equivalent to `on` modulo `dc` that is
/// irredundant and prime with respect to the OFF-set.
Cover espresso(const Cover& on, const Cover& dc,
               const EspressoOptions& opts = {}, EspressoStats* stats = nullptr);

/// Convenience wrapper with an empty don't-care set.
Cover espresso_nodc(const Cover& on);

/// EXPAND: makes each cube prime against the given OFF-set, removing cubes
/// that become covered by an expanded one. Exposed for tests/ablations.
void expand_against_offset(Cover& f, const Cover& off);

/// IRREDUNDANT: removes cubes covered by the rest of the cover plus dc.
void make_irredundant(Cover& f, const Cover& dc);

/// REDUCE: shrinks each cube to the smallest cube still covering the part of
/// it not covered by the rest of the cover plus dc.
void reduce_cover(Cover& f, const Cover& dc);

}  // namespace encodesat
