#include "logic/domain.h"

#include <cassert>

namespace encodesat {

Domain::Domain(std::vector<int> input_sizes, int num_outputs)
    : input_sizes_(std::move(input_sizes)), num_outputs_(num_outputs) {
  assert(num_outputs_ >= 1);
  offsets_.reserve(input_sizes_.size());
  int off = 0;
  for (int s : input_sizes_) {
    assert(s >= 2);
    offsets_.push_back(off);
    off += s;
  }
  output_offset_ = off;
  total_parts_ = off + num_outputs_;
}

Domain Domain::binary(int num_inputs, int num_outputs) {
  return Domain(std::vector<int>(static_cast<std::size_t>(num_inputs), 2),
                num_outputs);
}

unsigned long long Domain::num_input_minterms() const {
  unsigned long long n = 1;
  for (int s : input_sizes_) n *= static_cast<unsigned long long>(s);
  return n;
}

}  // namespace encodesat
