// Cover-level set algebra: intersection, sharp (difference), supercube,
// variable cofactors and containment helpers — the operations a downstream
// user of the two-level substrate reaches for first.
#pragma once

#include "logic/cover.h"

namespace encodesat {

/// Pairwise intersection of the two covers (the AND of the functions over
/// the characteristic (minterm, output) space), SCC-minimized.
Cover cover_intersect(const Cover& a, const Cover& b);

/// Sharp / difference: the set of (minterm, output) pairs in a but not in
/// b, as a cover (a ∩ complement(b)), SCC-minimized.
Cover cover_sharp(const Cover& a, const Cover& b);

/// Union, SCC-minimized (convenience over add_all + make_scc_minimal).
Cover cover_union(const Cover& a, const Cover& b);

/// Smallest single cube containing every cube of f; the empty cube (of the
/// right width) when f is empty.
Cube cover_supercube(const Cover& f);

/// Cofactor with respect to input variable `var` = `value` (a cover over
/// the same domain whose var-part is full in every cube).
Cover cover_cofactor_var(const Cover& f, int var, int value);

/// True iff the two covers denote the same function (no don't-cares).
bool covers_equal(const Cover& a, const Cover& b);

/// True iff a's function is a subset of b's.
bool cover_subset(const Cover& a, const Cover& b);

}  // namespace encodesat
