#include "logic/exact_minimize.h"

#include <optional>
#include <unordered_set>

#include "util/bitset.h"

namespace encodesat {

namespace {

// Generalized multi-valued consensus: for each part p, the p-consensus is
// the intersection everywhere else with the union at p; it is a valid
// implicant of a + b iff the cubes conflict in no part other than p. For
// binary single-output functions this degenerates to the classical
// distance-1 consensus; for MV/multi-output covers the distance-0 cases are
// required for prime completeness (Brayton et al., ch. 4).
std::vector<Cube> cube_consensus_all(const Domain& dom, const Cube& a,
                                     const Cube& b) {
  const int d = cube_distance(dom, a, b);
  if (d > 1) return {};
  Cube meet = a;
  meet.bits &= b.bits;
  Cube join = a;
  join.bits |= b.bits;

  auto part_empty = [&](const Cube& c, int off, int len) {
    for (int i = 0; i < len; ++i)
      if (c.bits.test(static_cast<std::size_t>(off + i))) return false;
    return true;
  };
  auto consensus_at = [&](int off, int len) -> std::optional<Cube> {
    // Valid only if every *other* part of the meet is nonempty, i.e. the
    // only possible conflict is at this part.
    if (d == 1 && !part_empty(meet, off, len)) return std::nullopt;
    Cube c = meet;
    for (int i = 0; i < len; ++i)
      c.bits.assign(static_cast<std::size_t>(off + i),
                    join.bits.test(static_cast<std::size_t>(off + i)));
    if (cube_is_empty(dom, c)) return std::nullopt;
    return c;
  };

  std::vector<Cube> out;
  for (int v = 0; v < dom.num_inputs(); ++v)
    if (auto c = consensus_at(dom.input_offset(v), dom.input_size(v)))
      out.push_back(std::move(*c));
  if (auto c = consensus_at(dom.output_offset(), dom.num_outputs()))
    out.push_back(std::move(*c));
  return out;
}

struct CubeHash {
  std::size_t operator()(const Cube& c) const { return c.bits.hash(); }
};

}  // namespace

Cover generate_all_primes(const Cover& on, const Cover& dc,
                          std::size_t max_primes, bool* truncated) {
  const Domain& dom = on.domain();
  if (truncated) *truncated = false;
  Cover work = on;
  work.add_all(dc);
  work.make_scc_minimal();

  std::vector<Cube> cubes(work.begin(), work.end());
  std::unordered_set<Cube, CubeHash> seen(cubes.begin(), cubes.end());

  // Iterated consensus closure: any prime is reachable as a chain of
  // consensus steps from the initial cover (Quine / Brayton et al. ch. 4).
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      for (Cube& c : cube_consensus_all(dom, cubes[i], cubes[j])) {
        // Skip consensus cubes already contained somewhere.
        bool contained = false;
        for (const Cube& k : cubes)
          if (cube_contains(k, c)) {
            contained = true;
            break;
          }
        if (contained) continue;
        if (!seen.insert(c).second) continue;
        cubes.push_back(std::move(c));
        if (cubes.size() > max_primes) {
          if (truncated) *truncated = true;
          return Cover(dom);
        }
      }
    }
  }

  Cover closure(dom);
  for (Cube& c : cubes) closure.add(std::move(c));
  closure.make_scc_minimal();  // keep the maximal cubes: the primes
  return closure;
}

ExactMinimizeResult exact_minimize(const Cover& on, const Cover& dc,
                                   const ExactMinimizeOptions& opts) {
  const Domain& dom = on.domain();
  ExactMinimizeResult res;
  res.cover = Cover(dom);
  if (on.empty()) {
    res.status = ExactMinimizeResult::Status::kMinimized;
    res.optimal = true;
    return res;
  }
  if (dom.num_input_minterms() > opts.max_minterms) return res;

  bool truncated = false;
  const Cover primes = generate_all_primes(on, dc, opts.max_primes, &truncated);
  if (truncated) {
    res.status = ExactMinimizeResult::Status::kPrimeLimit;
    return res;
  }
  res.num_primes = primes.size();

  // Rows: every (input minterm, output) pair of the ON-set not absorbed by
  // the DC-set; columns: the primes.
  const int ni = dom.num_inputs();
  std::vector<int> values(static_cast<std::size_t>(ni), 0);
  UnateCoverProblem problem;
  problem.num_columns = primes.size();

  const unsigned long long total = dom.num_input_minterms();
  for (unsigned long long idx = 0; idx < total; ++idx) {
    // Decode idx into one value per input variable.
    unsigned long long rest = idx;
    for (int v = 0; v < ni; ++v) {
      values[static_cast<std::size_t>(v)] =
          static_cast<int>(rest % static_cast<unsigned long long>(dom.input_size(v)));
      rest /= static_cast<unsigned long long>(dom.input_size(v));
    }
    Cube point(dom);
    for (int v = 0; v < ni; ++v)
      point.bits.set(
          static_cast<std::size_t>(dom.pos(v, values[static_cast<std::size_t>(v)])));
    for (int o = 0; o < dom.num_outputs(); ++o) {
      point.bits.set(static_cast<std::size_t>(dom.out_pos(o)));
      auto member = [&](const Cover& cover) {
        for (const Cube& c : cover)
          if (cube_contains(c, point)) return true;
        return false;
      };
      if (member(on) && !member(dc)) {
        Bitset row(problem.num_columns);
        for (std::size_t p = 0; p < primes.size(); ++p)
          if (cube_contains(primes[p], point)) row.set(p);
        problem.rows.push_back(std::move(row));
      }
      point.bits.reset(static_cast<std::size_t>(dom.out_pos(o)));
    }
  }

  const UnateCoverSolution sol =
      solve_unate_cover(problem, opts.cover_options);
  if (!sol.feasible) return res;  // cannot happen: primes cover the ON-set
  res.status = ExactMinimizeResult::Status::kMinimized;
  res.optimal = sol.optimal;
  for (std::size_t p : sol.columns) res.cover.add(primes[p]);
  return res;
}

}  // namespace encodesat
