// Exact two-level minimization (Quine-McCluskey generalized to
// multi-valued, multi-output covers): all primes by iterated consensus,
// then a minimum unate cover of the ON-set minterms.
//
// Exponential by nature — guarded by minterm/prime budgets — and used as
// the optimality oracle for the heuristic ESPRESSO loop and for exact
// cost-function evaluations on small code spaces.
#pragma once

#include <cstdint>

#include "covering/unate.h"
#include "logic/cover.h"

namespace encodesat {

struct ExactMinimizeOptions {
  /// Refuse domains with more input minterms than this.
  unsigned long long max_minterms = 1ull << 14;
  /// Abort prime generation beyond this many primes.
  std::size_t max_primes = 20000;
  UnateCoverOptions cover_options;
};

struct ExactMinimizeResult {
  enum class Status { kMinimized, kTooLarge, kPrimeLimit };
  Status status = Status::kTooLarge;
  Cover cover;
  /// True when the covering search proved cube-count minimality.
  bool optimal = false;
  std::size_t num_primes = 0;
};

/// All primes of on ∪ dc by iterated consensus (Quine's theorem holds for
/// the positional-cube representation; consensus on the output part merges
/// multi-output primes). Returns an SCC-maximal set.
Cover generate_all_primes(const Cover& on, const Cover& dc,
                          std::size_t max_primes, bool* truncated);

/// Minimum-cube cover of `on` modulo `dc` (exact when result.optimal).
ExactMinimizeResult exact_minimize(const Cover& on, const Cover& dc,
                                   const ExactMinimizeOptions& opts = {});

}  // namespace encodesat
