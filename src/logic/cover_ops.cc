#include "logic/cover_ops.h"

#include "logic/urp.h"

namespace encodesat {

Cover cover_intersect(const Cover& a, const Cover& b) {
  Cover out(a.domain());
  for (const Cube& x : a)
    for (const Cube& y : b)
      if (auto meet = cube_intersect(a.domain(), x, y))
        out.add(std::move(*meet));
  out.make_scc_minimal();
  return out;
}

Cover cover_sharp(const Cover& a, const Cover& b) {
  Cover out = cover_intersect(a, complement(b));
  out.make_scc_minimal();
  return out;
}

Cover cover_union(const Cover& a, const Cover& b) {
  Cover out = a;
  out.add_all(b);
  out.make_scc_minimal();
  return out;
}

Cube cover_supercube(const Cover& f) {
  Cube sc(f.domain());
  for (const Cube& c : f) sc = cube_supercube(sc, c);
  return sc;
}

Cover cover_cofactor_var(const Cover& f, int var, int value) {
  const Domain& dom = f.domain();
  Cube lit = full_cube(dom);
  for (int j = 0; j < dom.input_size(var); ++j)
    if (j != value) lit.bits.reset(static_cast<std::size_t>(dom.pos(var, j)));
  return cover_cofactor(f, lit);
}

bool covers_equal(const Cover& a, const Cover& b) {
  return cover_contains(a, b) && cover_contains(b, a);
}

bool cover_subset(const Cover& a, const Cover& b) {
  return cover_contains(b, a);
}

}  // namespace encodesat
