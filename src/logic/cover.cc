#include "logic/cover.h"

#include <algorithm>

namespace encodesat {

void Cover::add(Cube c) {
  if (cube_is_empty(dom_, c)) return;
  cubes_.push_back(std::move(c));
}

void Cover::add_all(const Cover& o) {
  for (const Cube& c : o) add(c);
}

void Cover::make_scc_minimal() {
  // Sort by descending popcount so a containing cube precedes the cubes it
  // contains; then a single forward pass suffices.
  std::stable_sort(cubes_.begin(), cubes_.end(),
                   [](const Cube& a, const Cube& b) {
                     return a.bits.count() > b.bits.count();
                   });
  std::vector<Cube> kept;
  kept.reserve(cubes_.size());
  for (const Cube& c : cubes_) {
    bool contained = false;
    for (const Cube& k : kept) {
      if (cube_contains(k, c)) {
        contained = true;
        break;
      }
    }
    if (!contained) kept.push_back(c);
  }
  cubes_ = std::move(kept);
}

void Cover::sort_canonical() {
  std::sort(cubes_.begin(), cubes_.end());
}

bool Cover::has_full_cube() const {
  const std::size_t all = static_cast<std::size_t>(dom_.total_parts());
  for (const Cube& c : cubes_)
    if (c.bits.count() == all) return true;
  return false;
}

int Cover::input_literals() const {
  int n = 0;
  for (const Cube& c : cubes_) n += cube_input_literals(dom_, c);
  return n;
}

std::string Cover::to_string() const {
  std::string s;
  for (const Cube& c : cubes_) {
    s += cube_to_string(dom_, c);
    s += '\n';
  }
  return s;
}

Cover cover_of(const Domain& dom, const Cube& c) {
  Cover out(dom);
  out.add(c);
  return out;
}

Cover universe_cover(const Domain& dom) {
  Cover out(dom);
  out.add(full_cube(dom));
  return out;
}

Cover cover_cofactor(const Cover& c, const Cube& p) {
  Cover out(c.domain());
  for (const Cube& q : c)
    if (auto r = cube_cofactor(c.domain(), q, p)) out.add(*r);
  return out;
}

}  // namespace encodesat
