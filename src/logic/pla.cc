#include "logic/pla.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace encodesat {

namespace {

// Splits a PLA cube line into input field and output field, tolerating
// arbitrary whitespace (espresso allows "01-1 10" and "01-1|10" variants are
// not supported).
void parse_cube_line(const std::string& line, int ni, int no,
                     std::string& inputs, std::string& outputs) {
  std::string compact;
  for (char ch : line)
    if (ch != ' ' && ch != '\t') compact += ch;
  if (static_cast<int>(compact.size()) != ni + no)
    throw std::runtime_error("PLA cube line has wrong width: " + line);
  inputs = compact.substr(0, static_cast<std::size_t>(ni));
  outputs = compact.substr(static_cast<std::size_t>(ni));
}

}  // namespace

Pla read_pla(std::istream& in) {
  int ni = -1, no = -1;
  std::string type = "fd";
  std::vector<std::string> ilb, ob;
  std::vector<std::string> cube_lines;

  std::string raw;
  while (std::getline(in, raw)) {
    std::string line{trim(raw)};
    if (line.empty() || line[0] == '#') continue;
    if (line[0] == '.') {
      auto tok = split_ws(line);
      const std::string& dir = tok[0];
      if (dir == ".i" && tok.size() >= 2) ni = std::stoi(tok[1]);
      else if (dir == ".o" && tok.size() >= 2) no = std::stoi(tok[1]);
      else if (dir == ".type" && tok.size() >= 2) type = tok[1];
      else if (dir == ".ilb") ilb.assign(tok.begin() + 1, tok.end());
      else if (dir == ".ob") ob.assign(tok.begin() + 1, tok.end());
      else if (dir == ".e" || dir == ".end") break;
      else if (dir == ".p") { /* cube count: informative only */ }
      else throw std::runtime_error("unsupported PLA directive: " + dir);
      continue;
    }
    cube_lines.push_back(line);
  }
  if (ni <= 0 || no <= 0)
    throw std::runtime_error("PLA missing .i/.o declarations");

  Pla pla;
  pla.domain = Domain::binary(ni, no);
  pla.on = Cover(pla.domain);
  pla.dc = Cover(pla.domain);
  pla.off = Cover(pla.domain);
  pla.type = type;
  pla.input_labels = std::move(ilb);
  pla.output_labels = std::move(ob);

  for (const std::string& line : cube_lines) {
    std::string inputs, outputs;
    parse_cube_line(line, ni, no, inputs, outputs);
    std::string on_out(static_cast<std::size_t>(no), '0');
    std::string dc_out(static_cast<std::size_t>(no), '0');
    std::string off_out(static_cast<std::size_t>(no), '0');
    bool has_on = false, has_dc = false, has_off = false;
    for (int o = 0; o < no; ++o) {
      const char ch = outputs[static_cast<std::size_t>(o)];
      switch (ch) {
        case '1':
        case '4':
          on_out[static_cast<std::size_t>(o)] = '1';
          has_on = true;
          break;
        case '-':
        case '~':
        case '2':
          if (type == "fd" || type == "fdr") {
            dc_out[static_cast<std::size_t>(o)] = '1';
            has_dc = true;
          }
          break;
        case '0':
          if (type == "fr" || type == "fdr") {
            off_out[static_cast<std::size_t>(o)] = '1';
            has_off = true;
          }
          break;
        default:
          throw std::runtime_error("bad PLA output character");
      }
    }
    if (has_on) pla.on.add(cube_from_string(pla.domain, inputs, on_out));
    if (has_dc) pla.dc.add(cube_from_string(pla.domain, inputs, dc_out));
    if (has_off) pla.off.add(cube_from_string(pla.domain, inputs, off_out));
  }
  return pla;
}

Pla read_pla_string(const std::string& text) {
  std::istringstream in(text);
  return read_pla(in);
}

namespace {

// Writes one cube line; asserted output positions print as `on_char` ('1'
// for ON-set rows, '-' for DC rows of a type-fd file).
void write_cube(std::ostream& out, const Domain& dom, const Cube& c,
                char on_char) {
  for (int v = 0; v < dom.num_inputs(); ++v) {
    const bool b0 = c.bits.test(static_cast<std::size_t>(dom.pos(v, 0)));
    const bool b1 = c.bits.test(static_cast<std::size_t>(dom.pos(v, 1)));
    out << ((b0 && b1) ? '-' : (b1 ? '1' : '0'));
  }
  out << ' ';
  for (int o = 0; o < dom.num_outputs(); ++o)
    out << (c.bits.test(static_cast<std::size_t>(dom.out_pos(o))) ? on_char
                                                                  : '0');
  out << '\n';
}

}  // namespace

void write_pla(std::ostream& out, const Pla& pla) {
  const Domain& dom = pla.domain;
  out << ".i " << dom.num_inputs() << '\n';
  out << ".o " << dom.num_outputs() << '\n';
  if (!pla.input_labels.empty()) {
    out << ".ilb";
    for (const auto& s : pla.input_labels) out << ' ' << s;
    out << '\n';
  }
  if (!pla.output_labels.empty()) {
    out << ".ob";
    for (const auto& s : pla.output_labels) out << ' ' << s;
    out << '\n';
  }
  out << ".type " << pla.type << '\n';
  out << ".p " << (pla.on.size() + pla.dc.size()) << '\n';
  for (const Cube& c : pla.on) write_cube(out, dom, c, '1');
  if (pla.type == "fd" || pla.type == "fdr")
    for (const Cube& c : pla.dc) write_cube(out, dom, c, '-');
  out << ".e\n";
}

std::string write_pla_string(const Pla& pla) {
  std::ostringstream out;
  write_pla(out, pla);
  return out.str();
}

}  // namespace encodesat
