#include "logic/factor.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

namespace encodesat {

namespace {

// A literal is (input variable, admitted-value mask); cubes are literal
// sets. Full parts are not literals.
using Literal = std::pair<int, std::uint64_t>;
using LiteralCube = std::vector<Literal>;

std::uint64_t part_mask(const Domain& dom, const Cube& c, int var) {
  std::uint64_t m = 0;
  for (int j = 0; j < dom.input_size(var); ++j)
    if (c.bits.test(static_cast<std::size_t>(dom.pos(var, j))))
      m |= std::uint64_t{1} << j;
  return m;
}

std::uint64_t full_mask(const Domain& dom, int var) {
  return (std::uint64_t{1} << dom.input_size(var)) - 1;
}

int factor_rec(std::vector<LiteralCube> cubes) {
  if (cubes.empty()) return 0;
  if (cubes.size() == 1) return static_cast<int>(cubes[0].size());

  // Most frequent literal.
  std::map<Literal, int> freq;
  for (const auto& c : cubes)
    for (const auto& l : c) ++freq[l];
  Literal best{-1, 0};
  int best_count = 1;
  for (const auto& [lit, count] : freq)
    if (count > best_count) {
      best_count = count;
      best = lit;
    }
  if (best.first < 0) {
    // No literal occurs twice: flat SOP, nothing to factor.
    int total = 0;
    for (const auto& c : cubes) total += static_cast<int>(c.size());
    return total;
  }

  // Divide: quotient = cubes containing `best` with it removed;
  // remainder = the rest.
  std::vector<LiteralCube> quotient, remainder;
  for (auto& c : cubes) {
    const auto it = std::find(c.begin(), c.end(), best);
    if (it == c.end()) {
      remainder.push_back(std::move(c));
    } else {
      LiteralCube q;
      q.reserve(c.size() - 1);
      for (const auto& l : c)
        if (!(l == best)) q.push_back(l);
      quotient.push_back(std::move(q));
    }
  }
  // best * (quotient) + remainder
  return 1 + factor_rec(std::move(quotient)) + factor_rec(std::move(remainder));
}

std::vector<LiteralCube> to_literal_cubes(const Cover& f, int output) {
  const Domain& dom = f.domain();
  std::vector<LiteralCube> cubes;
  for (const Cube& c : f) {
    if (output >= 0 &&
        !c.bits.test(static_cast<std::size_t>(dom.out_pos(output))))
      continue;
    LiteralCube lc;
    for (int v = 0; v < dom.num_inputs(); ++v) {
      const std::uint64_t m = part_mask(dom, c, v);
      if (m != full_mask(dom, v)) lc.emplace_back(v, m);
    }
    cubes.push_back(std::move(lc));
  }
  return cubes;
}

}  // namespace

int factored_literal_estimate_single(const Cover& f) {
  return factor_rec(to_literal_cubes(f, -1));
}

int factored_literal_estimate(const Cover& f) {
  int total = 0;
  for (int o = 0; o < f.domain().num_outputs(); ++o)
    total += factor_rec(to_literal_cubes(f, o));
  return total;
}

}  // namespace encodesat
