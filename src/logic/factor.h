// Algebraic factoring (literal-count estimation) for multi-level cost.
//
// The multi-level flow the paper's Table 3 models (MIS-MV) scores
// encodings by *factored-form* literals; during constraint satisfaction the
// paper approximates that with SOP literals, which core/cost.h follows.
// This module provides the real metric for final reporting: a quick-factor
// style recursive estimate — divide by the most frequent literal, recurse
// on quotient and remainder — in the spirit of SIS's `print_stats -f`.
#pragma once

#include "logic/cover.h"

namespace encodesat {

/// Estimated literal count of a good algebraic factorization of the
/// single-output projection of each output, summed over outputs. Always
/// <= the SOP literal count (equal when no factoring is possible).
int factored_literal_estimate(const Cover& f);

/// Single function (ignores the output part): factoring estimate of the
/// cover's input literals.
int factored_literal_estimate_single(const Cover& f);

}  // namespace encodesat
