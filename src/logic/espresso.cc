#include "logic/espresso.h"

#include <algorithm>
#include <utility>

#include "logic/urp.h"

namespace encodesat {

namespace {

using Cost = std::pair<std::size_t, int>;  // (#cubes, #input literals)

Cost cover_cost(const Cover& f) { return {f.size(), f.input_literals()}; }

}  // namespace

void expand_against_offset(Cover& f, const Cover& off) {
  const Domain& dom = f.domain();
  // Expand small cubes first: they have the most raising opportunities and
  // the cubes they grow to cover are deleted, shortening later work.
  std::stable_sort(f.cubes().begin(), f.cubes().end(),
                   [](const Cube& a, const Cube& b) {
                     return a.bits.count() < b.bits.count();
                   });
  // Raise order heuristic: positions admitted by many other ON-set cubes
  // first, so expansion grows toward (and swallows) the rest of the cover.
  std::vector<std::size_t> popularity(static_cast<std::size_t>(dom.total_parts()),
                                      0);
  for (const Cube& c : f)
    c.bits.for_each([&](std::size_t b) { ++popularity[b]; });
  std::vector<std::size_t> order(popularity.size());
  for (std::size_t b = 0; b < order.size(); ++b) order[b] = b;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return popularity[a] > popularity[b];
                   });

  std::vector<bool> dead(f.size(), false);
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (dead[i]) continue;
    Cube& c = f[i];
    // Raising a bit only grows the cube, so one pass over the positions
    // suffices: a raise blocked now stays blocked.
    for (std::size_t b : order) {
      if (c.bits.test(b)) continue;
      c.bits.set(b);
      bool hits_off = false;
      for (const Cube& r : off) {
        if (cubes_intersect(dom, c, r)) {
          hits_off = true;
          break;
        }
      }
      if (hits_off) c.bits.reset(b);
    }
    for (std::size_t j = 0; j < f.size(); ++j)
      if (j != i && !dead[j] && cube_contains(c, f[j])) dead[j] = true;
  }
  Cover kept(dom);
  for (std::size_t i = 0; i < f.size(); ++i)
    if (!dead[i]) kept.add(f[i]);
  f = std::move(kept);
}

void make_irredundant(Cover& f, const Cover& dc) {
  // Try to delete small cubes first; they are the most likely to be covered
  // by the remainder.
  std::stable_sort(f.cubes().begin(), f.cubes().end(),
                   [](const Cube& a, const Cube& b) {
                     return a.bits.count() < b.bits.count();
                   });
  for (std::size_t i = 0; i < f.size();) {
    Cover rest(f.domain());
    for (std::size_t j = 0; j < f.size(); ++j)
      if (j != i) rest.add(f[j]);
    rest.add_all(dc);
    if (cover_contains_cube(rest, f[i]))
      f.remove(i);
    else
      ++i;
  }
}

void reduce_cover(Cover& f, const Cover& dc) {
  const Domain& dom = f.domain();
  // Reduce large cubes first (the standard ESPRESSO heuristic): shrinking a
  // big cube frees the most room for subsequent expansions.
  std::stable_sort(f.cubes().begin(), f.cubes().end(),
                   [](const Cube& a, const Cube& b) {
                     return a.bits.count() > b.bits.count();
                   });
  for (std::size_t i = 0; i < f.size();) {
    Cover rest(dom);
    for (std::size_t j = 0; j < f.size(); ++j)
      if (j != i) rest.add(f[j]);
    rest.add_all(dc);
    const Cover comp = complement(cover_cofactor(rest, f[i]));
    if (comp.empty()) {
      // The rest covers this cube entirely — it is redundant.
      f.remove(i);
      continue;
    }
    Cube sc(dom);
    for (const Cube& c : comp) sc = cube_supercube(sc, c);
    f[i].bits &= sc.bits;
    ++i;
  }
}

Cover espresso(const Cover& on, const Cover& dc, const EspressoOptions& opts,
               EspressoStats* stats) {
  Cover f = on;
  f.make_scc_minimal();
  if (stats) {
    *stats = EspressoStats{};
    stats->initial_cubes = on.size();
  }
  if (f.empty()) {
    if (stats) stats->final_cubes = 0;
    return f;
  }

  Cover on_dc = f;
  on_dc.add_all(dc);
  const Cover off = complement(on_dc);

  expand_against_offset(f, off);
  make_irredundant(f, dc);

  if (!opts.single_pass) {
    Cost best = cover_cost(f);
    Cover best_cover = f;
    for (int it = 0; it < opts.max_iterations; ++it) {
      if (stats) stats->iterations = it + 1;
      reduce_cover(f, dc);
      expand_against_offset(f, off);
      make_irredundant(f, dc);
      const Cost cost = cover_cost(f);
      if (cost < best) {
        best = cost;
        best_cover = f;
      } else {
        break;
      }
    }
    f = std::move(best_cover);
  }
  if (stats) stats->final_cubes = f.size();
  return f;
}

Cover espresso_nodc(const Cover& on) {
  return espresso(on, Cover(on.domain()));
}

}  // namespace encodesat
