#include "logic/cube.h"

#include <cassert>
#include <stdexcept>

namespace encodesat {

namespace {

bool part_empty(const Cube& c, int off, int len) {
  for (int i = 0; i < len; ++i)
    if (c.bits.test(static_cast<std::size_t>(off + i))) return false;
  return true;
}

bool part_full(const Cube& c, int off, int len) {
  for (int i = 0; i < len; ++i)
    if (!c.bits.test(static_cast<std::size_t>(off + i))) return false;
  return true;
}

}  // namespace

Cube full_cube(const Domain& dom) {
  Cube c(dom);
  c.bits.set_all();
  return c;
}

bool cube_is_empty(const Domain& dom, const Cube& c) {
  for (int v = 0; v < dom.num_inputs(); ++v)
    if (part_empty(c, dom.input_offset(v), dom.input_size(v))) return true;
  return part_empty(c, dom.output_offset(), dom.num_outputs());
}

bool cube_contains(const Cube& outer, const Cube& inner) {
  return inner.bits.is_subset_of(outer.bits);
}

std::optional<Cube> cube_intersect(const Domain& dom, const Cube& a,
                                   const Cube& b) {
  Cube r = a;
  r.bits &= b.bits;
  if (cube_is_empty(dom, r)) return std::nullopt;
  return r;
}

bool cubes_intersect(const Domain& dom, const Cube& a, const Cube& b) {
  Cube r = a;
  r.bits &= b.bits;
  return !cube_is_empty(dom, r);
}

int cube_distance(const Domain& dom, const Cube& a, const Cube& b) {
  Cube r = a;
  r.bits &= b.bits;
  int d = 0;
  for (int v = 0; v < dom.num_inputs(); ++v)
    if (part_empty(r, dom.input_offset(v), dom.input_size(v))) ++d;
  if (part_empty(r, dom.output_offset(), dom.num_outputs())) ++d;
  return d;
}

std::optional<Cube> cube_cofactor(const Domain& dom, const Cube& c,
                                  const Cube& p) {
  if (!cubes_intersect(dom, c, p)) return std::nullopt;
  // r = c | ~p, computed part-free since the layout is uniform.
  Cube r(dom);
  Bitset notp(static_cast<std::size_t>(dom.total_parts()));
  notp.set_all();
  notp.subtract(p.bits);
  r.bits = c.bits | notp;
  return r;
}

std::vector<Cube> cube_complement(const Domain& dom, const Cube& c) {
  std::vector<Cube> out;
  auto emit_part = [&](int off, int len) {
    if (part_full(c, off, len)) return;
    Cube r = full_cube(dom);
    for (int i = 0; i < len; ++i)
      r.bits.assign(static_cast<std::size_t>(off + i),
                    !c.bits.test(static_cast<std::size_t>(off + i)));
    out.push_back(std::move(r));
  };
  for (int v = 0; v < dom.num_inputs(); ++v)
    emit_part(dom.input_offset(v), dom.input_size(v));
  emit_part(dom.output_offset(), dom.num_outputs());
  return out;
}

Cube cube_supercube(const Cube& a, const Cube& b) {
  Cube r = a;
  r.bits |= b.bits;
  return r;
}

bool input_part_full(const Domain& dom, const Cube& c, int var) {
  return part_full(c, dom.input_offset(var), dom.input_size(var));
}

int cube_input_literals(const Domain& dom, const Cube& c) {
  int n = 0;
  for (int v = 0; v < dom.num_inputs(); ++v)
    if (!input_part_full(dom, c, v)) ++n;
  return n;
}

std::string cube_to_string(const Domain& dom, const Cube& c) {
  std::string s;
  for (int v = 0; v < dom.num_inputs(); ++v) {
    if (dom.input_size(v) == 2) {
      const bool b0 = c.bits.test(static_cast<std::size_t>(dom.pos(v, 0)));
      const bool b1 = c.bits.test(static_cast<std::size_t>(dom.pos(v, 1)));
      s += (b0 && b1) ? '-' : (b1 ? '1' : (b0 ? '0' : '~'));
    } else {
      s += '[';
      for (int j = 0; j < dom.input_size(v); ++j)
        s += c.bits.test(static_cast<std::size_t>(dom.pos(v, j))) ? '1' : '0';
      s += ']';
    }
  }
  s += " | ";
  for (int o = 0; o < dom.num_outputs(); ++o)
    s += c.bits.test(static_cast<std::size_t>(dom.out_pos(o))) ? '1' : '0';
  return s;
}

Cube cube_from_string(const Domain& dom, const std::string& inputs,
                      const std::string& outputs) {
  if (static_cast<int>(inputs.size()) != dom.num_inputs())
    throw std::invalid_argument("cube_from_string: bad input width");
  if (static_cast<int>(outputs.size()) != dom.num_outputs())
    throw std::invalid_argument("cube_from_string: bad output width");
  Cube c(dom);
  for (int v = 0; v < dom.num_inputs(); ++v) {
    if (dom.input_size(v) != 2)
      throw std::invalid_argument("cube_from_string: MV variable in text cube");
    switch (inputs[static_cast<std::size_t>(v)]) {
      case '0': c.bits.set(static_cast<std::size_t>(dom.pos(v, 0))); break;
      case '1': c.bits.set(static_cast<std::size_t>(dom.pos(v, 1))); break;
      case '-':
      case '2':
        c.bits.set(static_cast<std::size_t>(dom.pos(v, 0)));
        c.bits.set(static_cast<std::size_t>(dom.pos(v, 1)));
        break;
      default:
        throw std::invalid_argument("cube_from_string: bad input char");
    }
  }
  for (int o = 0; o < dom.num_outputs(); ++o) {
    const char ch = outputs[static_cast<std::size_t>(o)];
    if (ch == '1')
      c.bits.set(static_cast<std::size_t>(dom.out_pos(o)));
    else if (ch != '0' && ch != '-' && ch != '~')
      throw std::invalid_argument("cube_from_string: bad output char");
  }
  return c;
}

}  // namespace encodesat
