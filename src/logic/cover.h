// A Cover is a set of cubes over a shared Domain — a two-level (PLA-style)
// representation of a multi-valued-input, multi-output function.
#pragma once

#include <string>
#include <vector>

#include "logic/cube.h"
#include "logic/domain.h"

namespace encodesat {

class Cover {
 public:
  Cover() = default;
  explicit Cover(Domain dom) : dom_(std::move(dom)) {}

  const Domain& domain() const { return dom_; }

  bool empty() const { return cubes_.empty(); }
  std::size_t size() const { return cubes_.size(); }
  const Cube& operator[](std::size_t i) const { return cubes_[i]; }
  Cube& operator[](std::size_t i) { return cubes_[i]; }

  const std::vector<Cube>& cubes() const { return cubes_; }
  std::vector<Cube>& cubes() { return cubes_; }

  auto begin() const { return cubes_.begin(); }
  auto end() const { return cubes_.end(); }

  /// Appends a cube; empty cubes are silently dropped since they denote the
  /// empty set and would confuse the URP special cases.
  void add(Cube c);
  void add_all(const Cover& o);
  void remove(std::size_t i) { cubes_.erase(cubes_.begin() + static_cast<long>(i)); }

  /// Single-cube containment: deletes every cube contained in another cube
  /// of the cover (ties broken by keeping the earlier cube). For a unate
  /// function this yields the unique minimal SOP (Brayton et al., ch. 3).
  void make_scc_minimal();

  /// Sorts cubes canonically (by bit pattern) — for deterministic output
  /// and equality testing of normalized covers.
  void sort_canonical();

  bool has_full_cube() const;

  /// Total input literals over all cubes (Fig. 9 cost semantics).
  int input_literals() const;

  /// Multi-line dump for diagnostics.
  std::string to_string() const;

 private:
  Domain dom_;
  std::vector<Cube> cubes_;
};

/// Cover of one cube, or the empty cover if the cube is empty.
Cover cover_of(const Domain& dom, const Cube& c);

/// The universe cover (single full cube).
Cover universe_cover(const Domain& dom);

/// Cofactor of a cover with respect to a cube: cofactors each cube,
/// dropping those that do not intersect p.
Cover cover_cofactor(const Cover& c, const Cube& p);

}  // namespace encodesat
