// Variable domain for multi-valued, multi-output logic covers in
// positional-cube notation (Brayton et al., "Logic Minimization Algorithms
// for VLSI Synthesis", 1984).
//
// A Domain describes k multi-valued input variables (a binary variable is
// the 2-valued special case) and one output "variable" with one position per
// output function. Every cube over the domain is a single Bitset with one
// bit per (variable, value) pair followed by one bit per output; bit set
// means the value is admitted (inputs) or the output is asserted.
#pragma once

#include <cstddef>
#include <vector>

#include "util/bitset.h"

namespace encodesat {

class Domain {
 public:
  Domain() = default;

  /// input_sizes[v] is the number of values of input variable v (>= 2);
  /// num_outputs >= 1 output positions form the trailing output part.
  Domain(std::vector<int> input_sizes, int num_outputs);

  /// Convenience: n binary inputs, m outputs.
  static Domain binary(int num_inputs, int num_outputs);

  int num_inputs() const { return static_cast<int>(input_sizes_.size()); }
  int num_outputs() const { return num_outputs_; }
  int input_size(int var) const { return input_sizes_[var]; }

  /// First bit position of input variable var.
  int input_offset(int var) const { return offsets_[var]; }
  /// First bit position of the output part.
  int output_offset() const { return output_offset_; }
  /// Total bit positions of a cube over this domain.
  int total_parts() const { return total_parts_; }

  /// Bit position of value `value` of input variable `var`.
  int pos(int var, int value) const { return offsets_[var] + value; }
  /// Bit position of output `out`.
  int out_pos(int out) const { return output_offset_ + out; }

  bool operator==(const Domain& o) const {
    return input_sizes_ == o.input_sizes_ && num_outputs_ == o.num_outputs_;
  }
  bool operator!=(const Domain& o) const { return !(*this == o); }

  /// Number of input minterms = product of input sizes (useful only for
  /// small domains; callers guard against overflow by construction).
  unsigned long long num_input_minterms() const;

 private:
  std::vector<int> input_sizes_;
  int num_outputs_ = 0;
  std::vector<int> offsets_;
  int output_offset_ = 0;
  int total_parts_ = 0;
};

}  // namespace encodesat
