#include "logic/urp.h"

#include <cassert>
#include <vector>

namespace encodesat {

namespace {

// Uniform view of the parts of a domain: num_inputs() input parts followed
// by the output part, addressed as "part index" 0..num_inputs().
int num_parts(const Domain& dom) { return dom.num_inputs() + 1; }

int part_offset(const Domain& dom, int part) {
  return part < dom.num_inputs() ? dom.input_offset(part) : dom.output_offset();
}

int part_size(const Domain& dom, int part) {
  return part < dom.num_inputs() ? dom.input_size(part) : dom.num_outputs();
}

bool cube_part_full(const Domain& dom, const Cube& c, int part) {
  const int off = part_offset(dom, part), len = part_size(dom, part);
  for (int i = 0; i < len; ++i)
    if (!c.bits.test(static_cast<std::size_t>(off + i))) return false;
  return true;
}

// The literal cube for (part, value): full everywhere except the given part,
// which admits only `value`.
Cube literal_cube(const Domain& dom, int part, int value) {
  Cube c = full_cube(dom);
  const int off = part_offset(dom, part), len = part_size(dom, part);
  for (int i = 0; i < len; ++i)
    if (i != value) c.bits.reset(static_cast<std::size_t>(off + i));
  return c;
}

// Selects the "most binate" part: the part with the largest number of cubes
// having a non-full literal in it. Returns -1 if every cube is full in every
// part (i.e. all cubes are the universe).
int select_binate_part(const Cover& f) {
  const Domain& dom = f.domain();
  int best = -1, best_count = 0;
  for (int p = 0; p < num_parts(dom); ++p) {
    int cnt = 0;
    for (const Cube& c : f)
      if (!cube_part_full(dom, c, p)) ++cnt;
    if (cnt > best_count) {
      best_count = cnt;
      best = p;
    }
  }
  return best;
}

// Quick necessary condition for tautology: every (part, value) position must
// be admitted by at least one cube. Returns false if some position is
// missing from all cubes.
bool all_columns_covered(const Cover& f) {
  const Domain& dom = f.domain();
  Bitset unionBits(static_cast<std::size_t>(dom.total_parts()));
  for (const Cube& c : f) unionBits |= c.bits;
  return unionBits.count() == static_cast<std::size_t>(dom.total_parts());
}

// Unate reduction for tautology: if some (part, value) position is admitted
// only by cubes that are full in that part, then the cofactor with respect
// to that value retains exactly the part-full cubes and is the binding
// subproblem; the cover is a tautology iff that subcover is. Applies the
// reduction to a fixpoint. May shrink f in place.
void unate_reduce(Cover& f) {
  const Domain& dom = f.domain();
  bool changed = true;
  while (changed && !f.empty()) {
    changed = false;
    for (int p = 0; p < num_parts(dom) && !changed; ++p) {
      const int off = part_offset(dom, p), len = part_size(dom, p);
      // Union of the part over cubes that are NOT full in this part.
      std::vector<bool> seen(static_cast<std::size_t>(len), false);
      bool any_nonfull = false;
      for (const Cube& c : f) {
        if (cube_part_full(dom, c, p)) continue;
        any_nonfull = true;
        for (int i = 0; i < len; ++i)
          if (c.bits.test(static_cast<std::size_t>(off + i)))
            seen[static_cast<std::size_t>(i)] = true;
      }
      if (!any_nonfull) continue;
      int missing = -1;
      for (int i = 0; i < len; ++i)
        if (!seen[static_cast<std::size_t>(i)]) {
          missing = i;
          break;
        }
      if (missing < 0) continue;
      // Keep only cubes full in part p.
      Cover kept(dom);
      for (const Cube& c : f)
        if (cube_part_full(dom, c, p)) kept.add(c);
      f = std::move(kept);
      changed = true;
    }
  }
}

bool is_tautology_rec(Cover f) {
  if (f.empty()) return false;
  if (f.has_full_cube()) return true;
  if (!all_columns_covered(f)) return false;
  unate_reduce(f);
  if (f.empty()) return false;
  if (f.has_full_cube()) return true;
  if (!all_columns_covered(f)) return false;
  f.make_scc_minimal();

  const int p = select_binate_part(f);
  if (p < 0) return f.has_full_cube();
  const Domain& dom = f.domain();
  for (int j = 0; j < part_size(dom, p); ++j) {
    const Cube lit = literal_cube(dom, p, j);
    if (!is_tautology_rec(cover_cofactor(f, lit))) return false;
  }
  return true;
}

Cover complement_rec(Cover f) {
  const Domain& dom = f.domain();
  if (f.empty()) return universe_cover(dom);
  if (f.has_full_cube()) return Cover(dom);
  if (f.size() == 1) {
    Cover out(dom);
    for (Cube& c : cube_complement(dom, f[0])) out.add(std::move(c));
    return out;
  }
  f.make_scc_minimal();
  if (f.size() == 1) return complement_rec(std::move(f));

  const int p = select_binate_part(f);
  assert(p >= 0);
  Cover out(dom);
  for (int j = 0; j < part_size(dom, p); ++j) {
    const Cube lit = literal_cube(dom, p, j);
    Cover sub = complement_rec(cover_cofactor(f, lit));
    for (const Cube& c : sub) {
      if (auto r = cube_intersect(dom, c, lit)) out.add(std::move(*r));
    }
  }
  out.make_scc_minimal();
  return out;
}

}  // namespace

bool is_tautology(const Cover& f) { return is_tautology_rec(f); }

Cover complement(const Cover& f) { return complement_rec(f); }

bool cover_contains_cube(const Cover& f, const Cube& c) {
  if (cube_is_empty(f.domain(), c)) return true;
  return is_tautology(cover_cofactor(f, c));
}

bool cover_contains(const Cover& f, const Cover& g) {
  for (const Cube& c : g)
    if (!cover_contains_cube(f, c)) return false;
  return true;
}

bool covers_equivalent(const Cover& f, const Cover& g, const Cover& dc) {
  Cover f_dc = f;
  f_dc.add_all(dc);
  Cover g_dc = g;
  g_dc.add_all(dc);
  return cover_contains(g_dc, f) && cover_contains(f_dc, g);
}

}  // namespace encodesat
