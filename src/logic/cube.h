// Cubes in positional-cube notation over a Domain.
//
// A cube is one Bitset laid out per Domain: for each input variable the bits
// of the admitted values, then one bit per asserted output. The usual
// two-level operations (intersection, containment, cofactor, distance,
// single-cube complement) are provided as free functions parameterized by
// the Domain, so the Cube itself stays a cheap value type.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "logic/domain.h"
#include "util/bitset.h"

namespace encodesat {

struct Cube {
  Bitset bits;

  Cube() = default;
  explicit Cube(const Domain& dom)
      : bits(static_cast<std::size_t>(dom.total_parts())) {}

  bool operator==(const Cube& o) const { return bits == o.bits; }
  bool operator!=(const Cube& o) const { return bits != o.bits; }
  bool operator<(const Cube& o) const { return bits < o.bits; }
};

/// The universe cube: all input values admitted, all outputs asserted.
Cube full_cube(const Domain& dom);

/// True if some input part of c admits no value, or no output is asserted —
/// i.e. the cube denotes the empty set of (minterm, output) pairs.
bool cube_is_empty(const Domain& dom, const Cube& c);

/// True if every part of `inner` is a subset of the corresponding part of
/// `outer` (set containment of the denoted minterm/output pairs).
bool cube_contains(const Cube& outer, const Cube& inner);

/// Part-wise intersection; returns std::nullopt if the result is empty.
std::optional<Cube> cube_intersect(const Domain& dom, const Cube& a,
                                   const Cube& b);

/// True iff the intersection of a and b is non-empty.
bool cubes_intersect(const Domain& dom, const Cube& a, const Cube& b);

/// Number of parts (input variables or the output part) in which a and b
/// have an empty part-wise intersection. Distance 0 means the cubes
/// intersect; distance 1 enables consensus.
int cube_distance(const Domain& dom, const Cube& a, const Cube& b);

/// Cofactor of c with respect to cube p (Brayton et al.): defined only when
/// c and p intersect; each part becomes c_part | ~p_part.
std::optional<Cube> cube_cofactor(const Domain& dom, const Cube& c,
                                  const Cube& p);

/// Complement of a single cube as a list of cubes (DeMorgan sharp): one cube
/// per non-full part, with that part complemented and the rest full.
std::vector<Cube> cube_complement(const Domain& dom, const Cube& c);

/// Smallest cube containing both a and b (part-wise union).
Cube cube_supercube(const Cube& a, const Cube& b);

/// True if the part of input variable `var` is full in c.
bool input_part_full(const Domain& dom, const Cube& c, int var);

/// Number of input literals of c: one per input variable whose part is not
/// full (the standard SOP literal count for binary variables; for MV
/// variables a non-full part counts as one literal, matching ESPRESSO-MV).
int cube_input_literals(const Domain& dom, const Cube& c);

/// Render as espresso-style text: per binary var 0/1/-, per MV var the value
/// bitstring in brackets, then " | " and the output bits.
std::string cube_to_string(const Domain& dom, const Cube& c);

/// Builds a cube from espresso-style input text for binary domains, e.g.
/// "01-0" with output part "10". Throws std::invalid_argument on bad text.
Cube cube_from_string(const Domain& dom, const std::string& inputs,
                      const std::string& outputs);

}  // namespace encodesat
