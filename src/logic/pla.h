// Berkeley espresso PLA-format I/O for binary-input covers.
//
// Supported directives: .i .o .p .ilb .ob .type (fd | fr | f) .e/.end.
// Reading a type-fd PLA yields an ON-set cover plus a DC cover ('-' output
// positions); type-fr yields ON and OFF ('0' output positions are OFF-set).
// This keeps the library interoperable with espresso-format benchmark data.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "logic/cover.h"

namespace encodesat {

struct Pla {
  Domain domain;                     ///< binary inputs, m outputs
  Cover on;                          ///< ON-set
  Cover dc;                          ///< DC-set (type fd)
  Cover off;                         ///< OFF-set (type fr)
  std::string type = "fd";
  std::vector<std::string> input_labels;
  std::vector<std::string> output_labels;
};

/// Parses a PLA from a stream. Throws std::runtime_error on malformed input.
Pla read_pla(std::istream& in);
Pla read_pla_string(const std::string& text);

/// Writes the ON-set (and DC-set for type fd) in espresso format.
void write_pla(std::ostream& out, const Pla& pla);
std::string write_pla_string(const Pla& pla);

}  // namespace encodesat
