// Sharded in-memory LRU cache for solve results, keyed by canonical form.
//
// The Solver facade (src/core/solver.h, SolveOptions::cache) canonicalizes
// the instance, composes the cache key from the canonical key plus an
// options fingerprint, and consults this cache before running the pipeline.
// The cache itself is deliberately dumb: string keys in, CachedSolve values
// out. It never inspects constraint sets and never depends on the solver —
// which is also what lets it compile into encodesat_core underneath
// core/solver without a dependency cycle.
//
// Soundness: lookups compare the full key string, not its hash, so a
// 128-bit hash collision can cost a miss but never return a wrong result.
//
// Concurrency: keys are distributed over shards by hash; each shard has its
// own mutex, LRU list and byte budget (total budget / shards), so parallel
// solves on different instances rarely contend. Hit/miss/insert/evict
// counts are process-wide atomics.
//
// Persistence: save()/load() serialize entries in the `encodesat-cache-v1`
// text format (docs/FORMATS.md) for warm-starting batch runs
// (`--cache-save` / `--cache-load` on the CLI).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace encodesat {

struct CacheConfig {
  /// Number of independent shards (>= 1); keys are distributed by hash.
  std::size_t shards = 8;
  /// Total byte budget across all shards; least-recently-used entries are
  /// evicted per shard once its share (max_bytes / shards) is exceeded.
  /// 0 means unlimited.
  std::size_t max_bytes = 64u << 20;
};

/// A cached solve outcome — the deterministic payload of a SolveResult
/// (everything except the per-run StageStats tree), in *canonical* symbol
/// space. The facade permutes `codes` back through the SymbolPermutation of
/// the instance it is serving.
struct CachedSolve {
  /// Mirrors SolveResult::Status: 0 encoded, 1 infeasible, 2 truncated.
  int status = 1;
  int bits = 0;
  std::vector<std::uint64_t> codes;
  bool minimal = false;
  /// Mirrors Truncation (util/exec.h) numerically; kNone for every entry
  /// the facade stores (only untruncated results are cached), but the field
  /// round-trips through the persistent format for forward compatibility.
  int truncation = 0;
  /// Uncovered initial-dichotomy indices (canonical-space, infeasible exact
  /// runs only).
  std::vector<std::size_t> uncovered;

  // Table-1 style counters of the solve that produced the entry.
  std::size_t num_initial = 0;
  std::size_t num_raised = 0;
  std::size_t num_primes = 0;
  std::size_t num_valid_primes = 0;
  std::size_t num_candidates = 0;
  std::size_t num_aux_columns = 0;
  std::uint64_t nodes_explored = 0;

  /// fnv1a64 fingerprint of the producing run's stats tree rendered as
  /// "name:work:items;..." — lets tools spot-check that a hit corresponds
  /// to the same amount of underlying work without storing the whole tree.
  std::uint64_t stats_fingerprint = 0;

  /// Approximate heap footprint for the byte budget.
  std::size_t approx_bytes() const {
    return sizeof(CachedSolve) + codes.size() * sizeof(std::uint64_t) +
           uncovered.size() * sizeof(std::size_t);
  }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
};

class SolveCache {
 public:
  explicit SolveCache(CacheConfig config = {});

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// Copies the entry for `key` into `*out` and marks it most recently
  /// used. Counts a hit or a miss.
  bool lookup(const std::string& key, CachedSolve* out);

  /// Inserts or replaces the entry for `key`, then evicts LRU entries from
  /// the key's shard until the shard fits its byte share.
  void insert(const std::string& key, CachedSolve value);

  /// Point-in-time aggregate across shards.
  CacheStats stats() const;

  const CacheConfig& config() const { return config_; }

  /// Serializes every entry in `encodesat-cache-v1` format. Entries are
  /// emitted in key order so the output is deterministic.
  std::string to_text() const;
  /// Merges entries from `text` (on top of current contents; loaded entries
  /// count as inserts and respect the byte budget). Returns false and fills
  /// `*error` on a malformed header or entry.
  bool from_text(const std::string& text, std::string* error = nullptr);

  /// to_text()/from_text() against a file. Returns false and fills `*error`
  /// (when non-null) on I/O or parse failure.
  bool save(const std::string& path, std::string* error = nullptr) const;
  bool load(const std::string& path, std::string* error = nullptr);

 private:
  struct Entry {
    std::string key;
    CachedSolve value;
  };
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    std::size_t bytes = 0;
  };

  Shard& shard_for(const std::string& key);
  void evict_locked(Shard& s);
  std::size_t shard_budget() const {
    return config_.max_bytes == 0 ? 0 : config_.max_bytes / config_.shards;
  }

  CacheConfig config_;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace encodesat
