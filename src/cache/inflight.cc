#include "cache/inflight.h"

namespace encodesat {

bool InFlightTable::Slot::wait(bool has_deadline,
                               std::chrono::steady_clock::time_point deadline,
                               CachedSolve* out) {
  std::unique_lock<std::mutex> lock(mu_);
  if (has_deadline) {
    if (!cv_.wait_until(lock, deadline, [&] { return done_; })) return false;
  } else {
    cv_.wait(lock, [&] { return done_; });
  }
  if (!has_value_) return false;
  if (out) *out = value_;
  return true;
}

bool InFlightTable::Slot::abandoned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_ && !has_value_;
}

InFlightTable::Join InFlightTable::join(SolveCache* cache,
                                        const std::string& key,
                                        CachedSolve* hit,
                                        std::shared_ptr<Slot>* slot) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(key);
  if (it != slots_.end()) {
    ++coalesced_;
    if (slot) *slot = it->second;
    return Join::kFollower;
  }
  // The cache lookup happens under the table mutex so the miss and the
  // leader registration are one atomic step: a duplicate arriving next
  // either sees the slot (follower) or, after publish, the cache entry
  // (hit) — never a second miss for the same burst.
  if (cache != nullptr && cache->lookup(key, hit)) return Join::kHit;
  ++leaders_;
  auto fresh = std::make_shared<Slot>();
  slots_.emplace(key, fresh);
  if (slot) *slot = std::move(fresh);
  return Join::kLeader;
}

void InFlightTable::publish(SolveCache* cache, const std::string& key,
                            const std::shared_ptr<Slot>& slot,
                            const CachedSolve& value) {
  if (cache != nullptr) cache->insert(key, value);
  {
    std::lock_guard<std::mutex> lock(mu_);
    slots_.erase(key);
  }
  {
    std::lock_guard<std::mutex> lock(slot->mu_);
    slot->value_ = value;
    slot->has_value_ = true;
    slot->done_ = true;
  }
  slot->cv_.notify_all();
}

void InFlightTable::abandon(const std::string& key,
                            const std::shared_ptr<Slot>& slot) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    slots_.erase(key);
    ++abandoned_;
  }
  {
    std::lock_guard<std::mutex> lock(slot->mu_);
    slot->done_ = true;
  }
  slot->cv_.notify_all();
}

CoalesceStats InFlightTable::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CoalesceStats s;
  s.leaders = leaders_;
  s.coalesced = coalesced_;
  s.abandoned = abandoned_;
  s.in_flight = slots_.size();
  return s;
}

}  // namespace encodesat
