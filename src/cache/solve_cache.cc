#include "cache/solve_cache.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

namespace encodesat {
namespace {

constexpr char kFormatHeader[] = "encodesat-cache-v1";

std::uint64_t key_hash64(const std::string& key) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

const char* status_token(int status) {
  switch (status) {
    case 0: return "encoded";
    case 1: return "infeasible";
    case 2: return "truncated";
  }
  return "infeasible";
}

bool status_from_token(const std::string& tok, int* out) {
  if (tok == "encoded") *out = 0;
  else if (tok == "infeasible") *out = 1;
  else if (tok == "truncated") *out = 2;
  else return false;
  return true;
}

// Names match truncation_name() (util/exec.cc) so the file format and the
// stats JSON agree on vocabulary.
const char* truncation_token(int t) {
  static const char* kNames[] = {"none",       "deadline",   "work_budget",
                                 "term_limit", "node_limit", "cancelled"};
  return (t >= 0 && t < 6) ? kNames[t] : "none";
}

bool truncation_from_token(const std::string& tok, int* out) {
  static const char* kNames[] = {"none",       "deadline",   "work_budget",
                                 "term_limit", "node_limit", "cancelled"};
  for (int i = 0; i < 6; ++i)
    if (tok == kNames[i]) {
      *out = i;
      return true;
    }
  return false;
}

template <typename T>
void append_list_line(std::string& out, const char* field,
                      const std::vector<T>& values) {
  if (values.empty()) return;
  out += field;
  for (T v : values) {
    out += ' ';
    out += std::to_string(v);
  }
  out += '\n';
}

template <typename T>
bool parse_list(std::istringstream& in, std::vector<T>* out) {
  unsigned long long v = 0;
  while (in >> v) out->push_back(static_cast<T>(v));
  return in.eof();
}

}  // namespace

SolveCache::SolveCache(CacheConfig config) : config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  shards_ = std::vector<Shard>(config_.shards);
}

SolveCache::Shard& SolveCache::shard_for(const std::string& key) {
  return shards_[key_hash64(key) % shards_.size()];
}

bool SolveCache::lookup(const std::string& key, CachedSolve* out) {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.index.find(key);
  if (it == s.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  if (out) *out = it->second->value;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void SolveCache::insert(const std::string& key, CachedSolve value) {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const std::size_t entry_bytes = key.size() + value.approx_bytes();
  auto it = s.index.find(key);
  if (it != s.index.end()) {
    s.bytes -= it->second->key.size() + it->second->value.approx_bytes();
    it->second->value = std::move(value);
    s.lru.splice(s.lru.begin(), s.lru, it->second);
  } else {
    s.lru.push_front(Entry{key, std::move(value)});
    s.index.emplace(key, s.lru.begin());
  }
  s.bytes += entry_bytes;
  inserts_.fetch_add(1, std::memory_order_relaxed);
  evict_locked(s);
}

void SolveCache::evict_locked(Shard& s) {
  const std::size_t budget = shard_budget();
  if (budget == 0) return;  // unlimited
  // Never evict the entry just touched: a single oversized entry stays
  // resident (and alone) rather than making its own insert a no-op.
  while (s.bytes > budget && s.lru.size() > 1) {
    const Entry& victim = s.lru.back();
    s.bytes -= victim.key.size() + victim.value.approx_bytes();
    s.index.erase(victim.key);
    s.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

CacheStats SolveCache::stats() const {
  CacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.inserts = inserts_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    out.entries += s.lru.size();
    out.bytes += s.bytes;
  }
  return out;
}

std::string SolveCache::to_text() const {
  // Snapshot entries, then sort by key for a deterministic rendering.
  std::vector<Entry> entries;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const Entry& e : s.lru) entries.push_back(e);
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });

  std::string out = std::string(kFormatHeader) + "\n";
  char hex[17];
  for (const Entry& e : entries) {
    const CachedSolve& v = e.value;
    out += "entry " + e.key + "\n";
    out += "status ";
    out += status_token(v.status);
    out += "\nbits " + std::to_string(v.bits) + "\n";
    append_list_line(out, "codes", v.codes);
    out += "minimal ";
    out += v.minimal ? '1' : '0';
    out += "\ntruncation ";
    out += truncation_token(v.truncation);
    out += '\n';
    append_list_line(out, "uncovered", v.uncovered);
    out += "counters " + std::to_string(v.num_initial) + ' ' +
           std::to_string(v.num_raised) + ' ' + std::to_string(v.num_primes) +
           ' ' + std::to_string(v.num_valid_primes) + ' ' +
           std::to_string(v.num_candidates) + ' ' +
           std::to_string(v.num_aux_columns) + ' ' +
           std::to_string(v.nodes_explored) + '\n';
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(v.stats_fingerprint));
    out += std::string("fingerprint ") + hex + "\nend\n";
  }
  return out;
}

bool SolveCache::from_text(const std::string& text, std::string* error) {
  auto fail = [&](int line, const std::string& msg) {
    if (error)
      *error = "line " + std::to_string(line) + ": " + msg;
    return false;
  };

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  if (!std::getline(in, line)) return fail(1, "empty cache file");
  ++line_no;
  if (line != kFormatHeader)
    return fail(1, "expected header '" + std::string(kFormatHeader) + "'");

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string word, key;
    ls >> word;
    if (word != "entry" || !(ls >> key))
      return fail(line_no, "expected 'entry <key>'");

    CachedSolve v;
    bool saw_end = false;
    while (std::getline(in, line)) {
      ++line_no;
      std::istringstream fs(line);
      std::string field;
      fs >> field;
      if (field == "end") {
        saw_end = true;
        break;
      } else if (field == "status") {
        std::string tok;
        if (!(fs >> tok) || !status_from_token(tok, &v.status))
          return fail(line_no, "bad status");
      } else if (field == "bits") {
        if (!(fs >> v.bits) || v.bits < 0) return fail(line_no, "bad bits");
      } else if (field == "codes") {
        if (!parse_list(fs, &v.codes)) return fail(line_no, "bad codes");
      } else if (field == "minimal") {
        int b = 0;
        if (!(fs >> b) || (b != 0 && b != 1))
          return fail(line_no, "bad minimal");
        v.minimal = b == 1;
      } else if (field == "truncation") {
        std::string tok;
        if (!(fs >> tok) || !truncation_from_token(tok, &v.truncation))
          return fail(line_no, "bad truncation");
      } else if (field == "uncovered") {
        if (!parse_list(fs, &v.uncovered))
          return fail(line_no, "bad uncovered");
      } else if (field == "counters") {
        unsigned long long c[7];
        for (int i = 0; i < 7; ++i)
          if (!(fs >> c[i])) return fail(line_no, "bad counters");
        v.num_initial = c[0];
        v.num_raised = c[1];
        v.num_primes = c[2];
        v.num_valid_primes = c[3];
        v.num_candidates = c[4];
        v.num_aux_columns = c[5];
        v.nodes_explored = c[6];
      } else if (field == "fingerprint") {
        std::string hex;
        if (!(fs >> hex)) return fail(line_no, "bad fingerprint");
        v.stats_fingerprint = std::strtoull(hex.c_str(), nullptr, 16);
      } else {
        return fail(line_no, "unknown field '" + field + "'");
      }
    }
    if (!saw_end) return fail(line_no, "entry without 'end'");
    insert(key, std::move(v));
  }
  return true;
}

bool SolveCache::save(const std::string& path, std::string* error) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    if (error) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  out << to_text();
  out.flush();
  if (!out) {
    if (error) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

bool SolveCache::load(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot open '" + path + "' for reading";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string parse_error;
  if (!from_text(buf.str(), &parse_error)) {
    if (error) *error = path + ": " + parse_error;
    return false;
  }
  return true;
}

}  // namespace encodesat
