// Single-flight table for concurrent duplicate solves.
//
// When many clients ask for the same instance at once (the service broker's
// bread and butter — identical constraint sets recur under symbol renaming,
// so they share one canonical cache key), running the pipeline once per
// request wastes every core but the first's. The InFlightTable closes that
// window: the first request to miss the SolveCache for a key registers an
// in-flight *slot* and becomes the **leader**; every concurrent duplicate
// that arrives before the leader publishes becomes a **follower** and
// blocks on the slot instead of solving. The leader publishes the solved
// value (in canonical symbol space, exactly the payload the cache stores),
// inserts it into the cache, and wakes the followers — each of which maps
// the canonical codes back through its *own* symbol permutation, so a
// coalesced response is bit-identical to the response a fresh solo solve
// of that request would have produced.
//
// Atomicity: join() checks the in-flight table and the cache under the
// table mutex, so a key is in exactly one of three states per caller —
// cache hit, leader, or follower. At the metric level every solve lands
// in exactly one bucket: `cache.hits + cache.misses + cache.coalesced +
// cache.wait_expired` sums to the solve count (a follower whose leader
// abandoned re-runs the pipeline and counts as a miss; one whose own
// deadline expired mid-wait counts as wait_expired) — the accounting
// invariant the service tests pin.
//
// Failure: a leader that cannot publish — the pipeline threw, or its own
// budget truncated the result — must call abandon(), which wakes followers
// empty-handed; they fall back to solving locally under their *own*
// budgets. (Deadlines are excluded from the coalescing key, so a follower
// may hold a larger budget than its leader; handing it the leader's
// truncated result would break the bit-identical-to-a-solo-solve
// contract.) Followers with a deadline stop waiting when it passes and
// report deadline truncation.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cache/solve_cache.h"

namespace encodesat {

/// Point-in-time accounting of the table (atomics, process-wide).
struct CoalesceStats {
  std::uint64_t leaders = 0;    ///< join() calls that became the leader
  std::uint64_t coalesced = 0;  ///< join() calls that attached to a leader
  std::uint64_t abandoned = 0;  ///< leader failures (followers fell back)
  std::uint64_t in_flight = 0;  ///< keys currently being solved
};

class InFlightTable {
 public:
  /// One in-flight solve. Held by shared_ptr so followers outlive the
  /// table entry (the key is removed at publish time, waiters drain after).
  class Slot {
   public:
    /// Blocks until the leader publishes or `deadline` passes (when
    /// `has_deadline`). Returns true and fills `*out` when a value
    /// arrived; false on deadline expiry or an abandoned leader (check
    /// `abandoned()` to tell the two apart).
    bool wait(bool has_deadline,
              std::chrono::steady_clock::time_point deadline,
              CachedSolve* out);
    bool abandoned() const;

   private:
    friend class InFlightTable;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    bool done_ = false;
    bool has_value_ = false;
    CachedSolve value_;
  };

  enum class Join {
    kHit,       ///< `*hit` filled from the cache; no slot involved
    kLeader,    ///< caller must solve, then publish() or abandon()
    kFollower,  ///< caller should Slot::wait()
  };

  /// Resolves `key` atomically against the in-flight table and `cache`
  /// (which may be null: then only leader/follower outcomes occur). On
  /// kHit fills `*hit`; on kLeader/kFollower fills `*slot`.
  Join join(SolveCache* cache, const std::string& key, CachedSolve* hit,
            std::shared_ptr<Slot>* slot);

  /// Leader hand-off for an untruncated result: inserts `value` into
  /// `cache` first (when non-null) so late arrivals hit, then removes the
  /// key and wakes the slot's followers. A kLeader join must be resolved
  /// by exactly one publish() or abandon() call.
  void publish(SolveCache* cache, const std::string& key,
               const std::shared_ptr<Slot>& slot, const CachedSolve& value);

  /// Leader failure path (pipeline threw, or the result was truncated and
  /// must not be handed to followers): removes the key and wakes followers
  /// with no value (they solve locally under their own budgets).
  void abandon(const std::string& key, const std::shared_ptr<Slot>& slot);

  CoalesceStats stats() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Slot>> slots_;
  std::uint64_t leaders_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t abandoned_ = 0;
};

}  // namespace encodesat
