// Canonical form for ConstraintSet: a deterministic, symbol-renaming-
// invariant normalization that lets structurally identical instances share
// one solve-cache entry (src/cache/solve_cache.h).
//
// Two constraint sets that differ only in symbol names, symbol interning
// order, or constraint order produce the same CanonicalSet: symbols are
// relabeled to dense canonical indices by a colour-refinement search
// (Weisfeiler–Lehman refinement plus individualization, minimizing the
// rendered key over the explored labelings), constraints are rewritten in
// canonical member order and sorted per class, and the result is rendered
// as a single-line `key` with a 128-bit structural hash over it.
//
// Soundness vs completeness: the key retains the full structure, so equal
// keys always mean isomorphic instances — a cache that compares keys on
// lookup can never return the wrong result. Completeness (isomorphic
// instances always map to the same key) holds whenever the refinement
// search finishes within its leaf budget; on highly symmetric instances
// that exceed it, canonicalize() falls back to a deterministic but
// order-dependent labeling and reports `exact = false` (a cache miss, not
// a wrong answer). §8.1 don't-cares participate in the refinement as their
// own role, so member/don't-care swaps never collide.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/constraints.h"

namespace encodesat {

/// 128-bit structural hash (two independent FNV-1a lanes over the key).
struct Hash128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Hash128& o) const { return hi == o.hi && lo == o.lo; }
  bool operator!=(const Hash128& o) const { return !(*this == o); }

  /// 32 hex digits, hi lane first.
  std::string to_hex() const;
};

/// Computes the structural hash of an arbitrary byte string.
Hash128 hash128(const std::string& bytes);

/// The bijection between original and canonical symbol indices; results
/// computed in canonical space map back through `from_canonical`.
struct SymbolPermutation {
  std::vector<std::uint32_t> to_canonical;    ///< original id -> canonical id
  std::vector<std::uint32_t> from_canonical;  ///< canonical id -> original id
};

struct CanonicalSet {
  /// The relabeled instance: symbol i is named "v<i>", constraints are in
  /// canonical member order and sorted per class. Solving this instance
  /// and permuting the codes through SymbolPermutation gives a valid
  /// result for the original instance.
  ConstraintSet set;
  /// Single-line canonical rendering — the cache key material. Equal keys
  /// mean isomorphic instances (and vice versa when `exact`).
  std::string key;
  /// hash128(key), for sharding and compact fingerprints.
  Hash128 hash;
  /// True when the refinement search ran to completion, making the key
  /// invariant under any symbol renaming. False after a leaf-budget
  /// fallback: the key is still deterministic for this in-memory instance,
  /// just not guaranteed to match a differently-ordered rendering.
  bool exact = true;
};

struct Canonicalization {
  CanonicalSet canon;
  SymbolPermutation perm;
};

/// Canonicalizes `cs`. `max_leaves` bounds the individualization search
/// (the number of complete labelings rendered and compared); beyond it the
/// result is flagged `exact = false`.
Canonicalization canonicalize(const ConstraintSet& cs,
                              std::size_t max_leaves = 4096);

/// Rebuilds `cs` with symbol `i` moved to index `to_new[i]` (names travel
/// with their symbols). `to_new` must be a permutation of 0..n-1. Used by
/// tests and the fuzzer's `cache` agreement rule to manufacture renamed
/// copies of an instance.
ConstraintSet apply_symbol_permutation(const ConstraintSet& cs,
                                       const std::vector<std::uint32_t>& to_new);

}  // namespace encodesat
