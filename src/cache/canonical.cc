#include "cache/canonical.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <utility>

namespace encodesat {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv_bytes(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Running structural hash; values are fed as fixed-width little-endian so
/// the stream is self-delimiting.
struct Mix {
  std::uint64_t h = kFnvOffset;
  Mix& add(std::uint64_t v) {
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    h = fnv_bytes(h, b, 8);
    return *this;
  }
  Mix& add_all(const std::vector<std::uint64_t>& vs) {
    add(vs.size());
    for (std::uint64_t v : vs) add(v);
    return *this;
  }
};

// Role tags keep contributions from different constraint classes (and
// different roles within one class) from colliding.
enum RoleTag : std::uint64_t {
  kTagFaceMember = 1,
  kTagFaceDontcare,
  kTagDominator,
  kTagDominated,
  kTagDisjParent,
  kTagDisjChild,
  kTagExtParent,
  kTagExtMember,
  kTagDistance2,
  kTagNonFace,
  kTagIndividualize,
};

std::vector<std::uint64_t> sorted_colors(
    const std::vector<std::uint64_t>& colors,
    const std::vector<std::uint32_t>& ids) {
  std::vector<std::uint64_t> out;
  out.reserve(ids.size());
  for (std::uint32_t id : ids) out.push_back(colors[id]);
  std::sort(out.begin(), out.end());
  return out;
}

/// One Weisfeiler–Lehman round: every symbol's new colour hashes its old
/// colour with the sorted multiset of its per-constraint role signatures.
std::vector<std::uint64_t> refine_round(const ConstraintSet& cs,
                                        const std::vector<std::uint64_t>& c) {
  const std::size_t n = cs.num_symbols();
  std::vector<std::vector<std::uint64_t>> contrib(n);

  for (const FaceConstraint& f : cs.faces()) {
    Mix sig;
    sig.add_all(sorted_colors(c, f.members)).add_all(
        sorted_colors(c, f.dontcares));
    for (std::uint32_t s : f.members)
      contrib[s].push_back(Mix().add(kTagFaceMember).add(sig.h).h);
    for (std::uint32_t s : f.dontcares)
      contrib[s].push_back(Mix().add(kTagFaceDontcare).add(sig.h).h);
  }
  for (const DominanceConstraint& d : cs.dominances()) {
    contrib[d.dominator].push_back(
        Mix().add(kTagDominator).add(c[d.dominated]).h);
    contrib[d.dominated].push_back(
        Mix().add(kTagDominated).add(c[d.dominator]).h);
  }
  for (const DisjunctiveConstraint& d : cs.disjunctives()) {
    Mix kids;
    kids.add_all(sorted_colors(c, d.children));
    contrib[d.parent].push_back(Mix().add(kTagDisjParent).add(kids.h).h);
    for (std::uint32_t s : d.children)
      contrib[s].push_back(
          Mix().add(kTagDisjChild).add(c[d.parent]).add(kids.h).h);
  }
  for (const ExtendedDisjunctiveConstraint& e : cs.extended_disjunctives()) {
    std::vector<std::uint64_t> conj_hashes;
    conj_hashes.reserve(e.conjunctions.size());
    for (const auto& conj : e.conjunctions)
      conj_hashes.push_back(Mix().add_all(sorted_colors(c, conj)).h);
    std::vector<std::uint64_t> all = conj_hashes;
    std::sort(all.begin(), all.end());
    const std::uint64_t all_h = Mix().add_all(all).h;
    contrib[e.parent].push_back(Mix().add(kTagExtParent).add(all_h).h);
    for (std::size_t ci = 0; ci < e.conjunctions.size(); ++ci)
      for (std::uint32_t s : e.conjunctions[ci])
        contrib[s].push_back(Mix()
                                 .add(kTagExtMember)
                                 .add(c[e.parent])
                                 .add(conj_hashes[ci])
                                 .add(all_h)
                                 .h);
  }
  for (const Distance2Constraint& d : cs.distance2s()) {
    contrib[d.a].push_back(Mix().add(kTagDistance2).add(c[d.b]).h);
    contrib[d.b].push_back(Mix().add(kTagDistance2).add(c[d.a]).h);
  }
  for (const NonFaceConstraint& f : cs.nonfaces()) {
    Mix sig;
    sig.add_all(sorted_colors(c, f.members));
    for (std::uint32_t s : f.members)
      contrib[s].push_back(Mix().add(kTagNonFace).add(sig.h).h);
  }

  std::vector<std::uint64_t> next(n);
  for (std::size_t s = 0; s < n; ++s) {
    std::sort(contrib[s].begin(), contrib[s].end());
    next[s] = Mix().add(c[s]).add_all(contrib[s]).h;
  }
  return next;
}

bool same_partition(const std::vector<std::uint64_t>& a,
                    const std::vector<std::uint64_t>& b) {
  // a -> b must be a consistent (injective) colour renaming.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> fwd, rev;
  for (std::size_t i = 0; i < a.size(); ++i) {
    fwd.emplace_back(a[i], b[i]);
    rev.emplace_back(b[i], a[i]);
  }
  auto consistent = [](std::vector<std::pair<std::uint64_t, std::uint64_t>>&
                           m) {
    std::sort(m.begin(), m.end());
    for (std::size_t i = 1; i < m.size(); ++i)
      if (m[i].first == m[i - 1].first && m[i].second != m[i - 1].second)
        return false;
    return true;
  };
  return consistent(fwd) && consistent(rev);
}

void refine_to_fixpoint(const ConstraintSet& cs,
                        std::vector<std::uint64_t>& colors) {
  const std::size_t n = cs.num_symbols();
  for (std::size_t round = 0; round <= n; ++round) {
    std::vector<std::uint64_t> next = refine_round(cs, colors);
    const bool stable = same_partition(colors, next);
    colors = std::move(next);
    if (stable) return;
  }
}

/// Cells of the colour partition, ordered by colour value (a structural,
/// renaming-invariant order); members within a cell keep index order.
std::vector<std::vector<std::uint32_t>> cells_of(
    const std::vector<std::uint64_t>& colors) {
  std::vector<std::pair<std::uint64_t, std::uint32_t>> by_color;
  by_color.reserve(colors.size());
  for (std::uint32_t i = 0; i < colors.size(); ++i)
    by_color.emplace_back(colors[i], i);
  std::sort(by_color.begin(), by_color.end());
  std::vector<std::vector<std::uint32_t>> cells;
  for (const auto& [color, id] : by_color) {
    if (cells.empty() || colors[cells.back().front()] != color)
      cells.emplace_back();
    cells.back().push_back(id);
  }
  return cells;
}

// ---------------------------------------------------------------------------
// Normalized rendering under a symbol mapping.

struct Normalized {
  std::vector<FaceConstraint> faces;
  std::vector<DominanceConstraint> dominances;
  std::vector<DisjunctiveConstraint> disjunctives;
  std::vector<ExtendedDisjunctiveConstraint> extended;
  std::vector<Distance2Constraint> distance2s;
  std::vector<NonFaceConstraint> nonfaces;
};

std::vector<std::uint32_t> mapped_sorted(
    const std::vector<std::uint32_t>& ids,
    const std::vector<std::uint32_t>& to_new) {
  std::vector<std::uint32_t> out;
  out.reserve(ids.size());
  for (std::uint32_t id : ids) out.push_back(to_new[id]);
  std::sort(out.begin(), out.end());
  return out;
}

/// Applies `to_new` to every constraint, sorts members within each
/// constraint and constraints within each class — the unique rendering of
/// the instance under that labeling.
Normalized normalize_mapped(const ConstraintSet& cs,
                            const std::vector<std::uint32_t>& to_new) {
  Normalized out;
  for (const FaceConstraint& f : cs.faces())
    out.faces.push_back(
        {mapped_sorted(f.members, to_new), mapped_sorted(f.dontcares, to_new)});
  std::sort(out.faces.begin(), out.faces.end(),
            [](const FaceConstraint& a, const FaceConstraint& b) {
              if (a.members != b.members) return a.members < b.members;
              return a.dontcares < b.dontcares;
            });

  for (const DominanceConstraint& d : cs.dominances())
    out.dominances.push_back({to_new[d.dominator], to_new[d.dominated]});
  std::sort(out.dominances.begin(), out.dominances.end(),
            [](const DominanceConstraint& a, const DominanceConstraint& b) {
              if (a.dominator != b.dominator) return a.dominator < b.dominator;
              return a.dominated < b.dominated;
            });

  for (const DisjunctiveConstraint& d : cs.disjunctives())
    out.disjunctives.push_back(
        {to_new[d.parent], mapped_sorted(d.children, to_new)});
  std::sort(out.disjunctives.begin(), out.disjunctives.end(),
            [](const DisjunctiveConstraint& a, const DisjunctiveConstraint& b) {
              if (a.parent != b.parent) return a.parent < b.parent;
              return a.children < b.children;
            });

  for (const ExtendedDisjunctiveConstraint& e : cs.extended_disjunctives()) {
    ExtendedDisjunctiveConstraint m;
    m.parent = to_new[e.parent];
    for (const auto& conj : e.conjunctions)
      m.conjunctions.push_back(mapped_sorted(conj, to_new));
    std::sort(m.conjunctions.begin(), m.conjunctions.end());
    out.extended.push_back(std::move(m));
  }
  std::sort(out.extended.begin(), out.extended.end(),
            [](const ExtendedDisjunctiveConstraint& a,
               const ExtendedDisjunctiveConstraint& b) {
              if (a.parent != b.parent) return a.parent < b.parent;
              return a.conjunctions < b.conjunctions;
            });

  for (const Distance2Constraint& d : cs.distance2s()) {
    const std::uint32_t x = to_new[d.a], y = to_new[d.b];
    out.distance2s.push_back({std::min(x, y), std::max(x, y)});
  }
  std::sort(out.distance2s.begin(), out.distance2s.end(),
            [](const Distance2Constraint& a, const Distance2Constraint& b) {
              if (a.a != b.a) return a.a < b.a;
              return a.b < b.b;
            });

  for (const NonFaceConstraint& f : cs.nonfaces())
    out.nonfaces.push_back({mapped_sorted(f.members, to_new)});
  std::sort(out.nonfaces.begin(), out.nonfaces.end(),
            [](const NonFaceConstraint& a, const NonFaceConstraint& b) {
              return a.members < b.members;
            });
  return out;
}

void append_ids(std::string& out, const std::vector<std::uint32_t>& ids) {
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(ids[i]);
  }
}

/// Single-line key grammar (docs/FORMATS.md):
///   n<N>; then per constraint one of
///   f<ids>[|<ids>];  d<a>><b>;  j<p>=<ids>;  x<p>=<c.c|c.c>;
///   t<a>,<b>;  u<ids>;
std::string render_key(const Normalized& nz, std::size_t num_symbols) {
  std::string out = "n" + std::to_string(num_symbols) + ";";
  for (const FaceConstraint& f : nz.faces) {
    out += 'f';
    append_ids(out, f.members);
    if (!f.dontcares.empty()) {
      out += '|';
      append_ids(out, f.dontcares);
    }
    out += ';';
  }
  for (const DominanceConstraint& d : nz.dominances)
    out += 'd' + std::to_string(d.dominator) + '>' +
           std::to_string(d.dominated) + ';';
  for (const DisjunctiveConstraint& d : nz.disjunctives) {
    out += 'j' + std::to_string(d.parent) + '=';
    append_ids(out, d.children);
    out += ';';
  }
  for (const ExtendedDisjunctiveConstraint& e : nz.extended) {
    out += 'x' + std::to_string(e.parent) + '=';
    for (std::size_t ci = 0; ci < e.conjunctions.size(); ++ci) {
      if (ci) out += '|';
      for (std::size_t i = 0; i < e.conjunctions[ci].size(); ++i) {
        if (i) out += '.';
        out += std::to_string(e.conjunctions[ci][i]);
      }
    }
    out += ';';
  }
  for (const Distance2Constraint& d : nz.distance2s)
    out += 't' + std::to_string(d.a) + ',' + std::to_string(d.b) + ';';
  for (const NonFaceConstraint& f : nz.nonfaces) {
    out += 'u';
    append_ids(out, f.members);
    out += ';';
  }
  return out;
}

std::vector<std::uint32_t> identity_mapping(std::size_t n) {
  std::vector<std::uint32_t> id(n);
  for (std::size_t i = 0; i < n; ++i) id[i] = static_cast<std::uint32_t>(i);
  return id;
}

/// True when swapping symbols a and b leaves the instance unchanged — an
/// automorphism check for one transposition.
bool transposition_is_automorphism(const ConstraintSet& cs,
                                   const std::string& identity_key,
                                   std::uint32_t a, std::uint32_t b) {
  std::vector<std::uint32_t> swap_map = identity_mapping(cs.num_symbols());
  std::swap(swap_map[a], swap_map[b]);
  return render_key(normalize_mapped(cs, swap_map), cs.num_symbols()) ==
         identity_key;
}

// ---------------------------------------------------------------------------
// Individualization-refinement search.

struct Search {
  const ConstraintSet& cs;
  std::size_t max_leaves;
  std::string identity_key;  // for transposition checks

  std::size_t leaves = 0;
  bool exact = true;
  std::string best_key;
  std::vector<std::uint32_t> best_to_canonical;

  void run(std::vector<std::uint64_t> colors, std::uint64_t depth) {
    while (true) {
      refine_to_fixpoint(cs, colors);
      const auto cells = cells_of(colors);
      const auto target = std::find_if(
          cells.begin(), cells.end(),
          [](const std::vector<std::uint32_t>& c) { return c.size() > 1; });
      if (target == cells.end()) {
        leaf(cells);
        return;
      }
      // Transpositions (c0 ci) generate the full symmetric group on the
      // cell, so if every one is an automorphism all orderings of the cell
      // yield the same key — fix an arbitrary order instead of branching.
      bool interchangeable = true;
      for (std::size_t i = 1; i < target->size() && interchangeable; ++i)
        interchangeable = transposition_is_automorphism(
            cs, identity_key, (*target)[0], (*target)[i]);
      if (interchangeable) {
        for (std::size_t i = 0; i < target->size(); ++i)
          colors[(*target)[i]] = Mix()
                                     .add(kTagIndividualize)
                                     .add(colors[(*target)[i]])
                                     .add(depth)
                                     .add(i)
                                     .h;
        ++depth;
        continue;
      }
      // Branch on every member of the first non-singleton cell. Exploring
      // all of them keeps the min-key renaming-invariant; stopping early at
      // the leaf budget loses that guarantee, so flag inexact.
      for (std::uint32_t member : *target) {
        if (leaves >= max_leaves) {
          exact = false;
          return;
        }
        std::vector<std::uint64_t> branch = colors;
        branch[member] =
            Mix().add(kTagIndividualize).add(branch[member]).add(depth).h;
        run(std::move(branch), depth + 1);
      }
      return;
    }
  }

  void leaf(const std::vector<std::vector<std::uint32_t>>& cells) {
    ++leaves;
    std::vector<std::uint32_t> to_canonical(cs.num_symbols());
    std::uint32_t rank = 0;
    for (const auto& cell : cells)
      for (std::uint32_t id : cell) to_canonical[id] = rank++;
    std::string key =
        render_key(normalize_mapped(cs, to_canonical), cs.num_symbols());
    if (best_key.empty() || key < best_key) {
      best_key = std::move(key);
      best_to_canonical = std::move(to_canonical);
    }
  }
};

}  // namespace

std::string Hash128::to_hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

Hash128 hash128(const std::string& bytes) {
  Hash128 h;
  h.hi = fnv_bytes(kFnvOffset, bytes.data(), bytes.size());
  // Second lane: different offset basis and a leading tag byte so the two
  // lanes are independent functions of the input.
  const unsigned char tag = 0x9e;
  h.lo = fnv_bytes(fnv_bytes(0x2545F4914F6CDD1Dull, &tag, 1), bytes.data(),
                   bytes.size());
  return h;
}

ConstraintSet apply_symbol_permutation(
    const ConstraintSet& cs, const std::vector<std::uint32_t>& to_new) {
  const std::size_t n = cs.num_symbols();
  std::vector<std::string> names(n);
  for (std::size_t i = 0; i < n; ++i)
    names[to_new[i]] = cs.symbols().name(static_cast<std::uint32_t>(i));
  SymbolTable table;
  for (const std::string& name : names) table.intern(name);

  ConstraintSet out(std::move(table));
  auto map_ids = [&](const std::vector<std::uint32_t>& ids) {
    std::vector<std::uint32_t> m;
    m.reserve(ids.size());
    for (std::uint32_t id : ids) m.push_back(to_new[id]);
    return m;
  };
  for (const FaceConstraint& f : cs.faces())
    out.faces().push_back({map_ids(f.members), map_ids(f.dontcares)});
  for (const DominanceConstraint& d : cs.dominances())
    out.dominances().push_back({to_new[d.dominator], to_new[d.dominated]});
  for (const DisjunctiveConstraint& d : cs.disjunctives())
    out.disjunctives().push_back({to_new[d.parent], map_ids(d.children)});
  for (const ExtendedDisjunctiveConstraint& e : cs.extended_disjunctives()) {
    ExtendedDisjunctiveConstraint m;
    m.parent = to_new[e.parent];
    for (const auto& conj : e.conjunctions)
      m.conjunctions.push_back(map_ids(conj));
    out.extended_disjunctives().push_back(std::move(m));
  }
  for (const Distance2Constraint& d : cs.distance2s())
    out.distance2s().push_back({to_new[d.a], to_new[d.b]});
  for (const NonFaceConstraint& f : cs.nonfaces())
    out.nonfaces().push_back({map_ids(f.members)});
  return out;
}

Canonicalization canonicalize(const ConstraintSet& cs,
                              std::size_t max_leaves) {
  const std::size_t n = cs.num_symbols();
  Canonicalization result;

  Search search{cs, std::max<std::size_t>(max_leaves, 1),
                render_key(normalize_mapped(cs, identity_mapping(n)), n)};
  search.run(std::vector<std::uint64_t>(n, 0), /*depth=*/0);

  SymbolPermutation& perm = result.perm;
  perm.to_canonical = std::move(search.best_to_canonical);
  perm.from_canonical.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    perm.from_canonical[perm.to_canonical[i]] = static_cast<std::uint32_t>(i);

  CanonicalSet& canon = result.canon;
  canon.exact = search.exact;
  canon.key = std::move(search.best_key);
  canon.hash = hash128(canon.key);

  // Materialize the canonical instance: symbols v0..v{n-1}, constraints in
  // the exact order the key renders them.
  SymbolTable table;
  for (std::size_t i = 0; i < n; ++i) table.intern("v" + std::to_string(i));
  ConstraintSet canon_set(std::move(table));
  Normalized nz = normalize_mapped(cs, perm.to_canonical);
  canon_set.faces() = std::move(nz.faces);
  canon_set.dominances() = std::move(nz.dominances);
  canon_set.disjunctives() = std::move(nz.disjunctives);
  canon_set.extended_disjunctives() = std::move(nz.extended);
  canon_set.distance2s() = std::move(nz.distance2s);
  canon_set.nonfaces() = std::move(nz.nonfaces);
  canon.set = std::move(canon_set);
  return result;
}

}  // namespace encodesat
