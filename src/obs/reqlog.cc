#include "obs/reqlog.h"

#include <cstdio>
#include <iostream>
#include <sstream>

namespace encodesat {

namespace {

// Minimal JSON string escaping, local to keep src/obs independent of the
// service-layer parser (same idiom as trace.cc).
void escape_json(const std::string& s, std::ostream& out) {
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

void string_field(std::ostream& out, const char* key, const std::string& v) {
  out << '"' << key << "\":\"";
  escape_json(v, out);
  out << '"';
}

}  // namespace

RequestLog::RequestLog(ReqLogConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.path == "-") {
    out_ = &std::cerr;
    return;
  }
  file_.open(cfg_.path, std::ios::out | std::ios::app);
  if (!file_) {
    error_ = "cannot open request log '" + cfg_.path + "'";
    return;
  }
  out_ = &file_;
}

bool RequestLog::log(const ReqLogRecord& rec) {
  if (!out_) return false;
  const bool slow = cfg_.slow_us > 0 && rec.total_us >= cfg_.slow_us;
  std::lock_guard<std::mutex> lock(mu_);
  bool write = rec.error || slow;
  if (!write && cfg_.sample_every > 0)
    write = (seq_++ % cfg_.sample_every) == 0;
  if (!write) return false;

  std::ostringstream line;
  line << "{\"schema\":\"encodesat-reqlog-v1\",";
  string_field(line, "id", rec.id);
  line << ',';
  string_field(line, "status", rec.status);
  line << ',';
  string_field(line, "disposition", rec.disposition);
  line << ",\"queue_us\":" << rec.queue_us
       << ",\"solve_us\":" << rec.solve_us
       << ",\"total_us\":" << rec.total_us << ",\"truncation\":\""
       << rec.truncation << "\",\"work\":" << rec.work
       << ",\"slow\":" << (slow ? "true" : "false") << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : rec.counters) {
    if (!first) line << ',';
    first = false;
    line << '"';
    escape_json(name, line);
    line << "\":" << value;
  }
  line << '}';
  if (slow && rec.stats) line << ",\"spans\":" << rec.stats->to_json();
  line << "}\n";

  (*out_) << line.str();
  out_->flush();
  ++lines_;
  return true;
}

}  // namespace encodesat
