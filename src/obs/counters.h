// Named-counter registry for the observability subsystem.
//
// Pipeline stages report monotonic counters and high-water gauges (arena
// allocations and reuses, subset-prune signature hits, dichotomy raise
// attempts, covering nodes and components, budget truncations) into the
// MetricsRegistry installed on ExecContext. The registry is shared across
// threads: value updates are relaxed atomic adds, registration takes a
// mutex once per (stage call, name).
//
// Determinism contract: every metric registered with `in_fingerprint`
// (the default) must be a pure function of the solve inputs — the same
// names and values for every `threads` value and every scheduling. The
// structural *fingerprint* (sorted names + values, no timestamps) is
// checked bit-identical across thread counts by the differential fuzzer's
// `counters` agreement rule. Scheduling-dependent metrics (pool worker
// spawns, wall-clock-budget trips) must be registered with
// `in_fingerprint = false`, or reported through the separate process
// section of the telemetry report (util/thread_pool.h pool_counters()).
//
// Snapshot order is deterministic: samples are sorted by name (the
// registry is map-backed), so serialized reports are stable.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"
#include "util/exec.h"

namespace encodesat {

class MetricsRegistry {
 public:
  /// One named value. Pointers are stable for the registry's lifetime
  /// (map-backed), so hot loops can resolve a metric once and add to it.
  class Metric {
   public:
    /// Constructed in place by the registry map (atomics are immovable);
    /// create metrics through MetricsRegistry::counter, not directly.
    explicit Metric(bool in_fingerprint) : in_fingerprint_(in_fingerprint) {}
    Metric(const Metric&) = delete;
    Metric& operator=(const Metric&) = delete;

    void add(std::uint64_t v) {
      value_.fetch_add(v, std::memory_order_relaxed);
    }
    /// High-water update (gauge semantics): value = max(value, v).
    void record_max(std::uint64_t v) {
      std::uint64_t cur = value_.load(std::memory_order_relaxed);
      while (v > cur && !value_.compare_exchange_weak(
                            cur, v, std::memory_order_relaxed)) {
      }
    }
    std::uint64_t value() const {
      return value_.load(std::memory_order_relaxed);
    }
    bool in_fingerprint() const { return in_fingerprint_; }

   private:
    std::atomic<std::uint64_t> value_{0};
    bool in_fingerprint_;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the metric named `name`, registering it (at value 0) on first
  /// use. The fingerprint flag is fixed by the first registration.
  Metric* counter(const std::string& name, bool in_fingerprint = true);

  /// Returns the histogram named `name`, registering it (empty) on first
  /// use. Same pointer-stability and fingerprint-flag rules as counter().
  /// Histograms observing deterministic values (work units, item counts)
  /// keep the default; duration-valued histograms must pass
  /// `in_fingerprint = false` — their bucket counts depend on wall time.
  Histogram* histogram(const std::string& name, bool in_fingerprint = true);

  struct Sample {
    std::string name;
    std::uint64_t value = 0;
    bool in_fingerprint = true;
  };
  /// All metrics, sorted by name — the deterministic serialization order.
  std::vector<Sample> snapshot() const;

  struct HistogramSample {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    bool in_fingerprint = true;
    /// Sparse (bucket index, count), ascending by index.
    std::vector<std::pair<std::size_t, std::uint64_t>> buckets;
  };
  /// All histograms, sorted by name.
  std::vector<HistogramSample> histogram_snapshot() const;

  /// Structural fingerprint: "name=value;..." over the fingerprint metrics
  /// in name order, followed by histogram_fingerprint() when any
  /// fingerprint histogram exists. Bit-identical across thread counts by
  /// the determinism contract above; no timestamps, no ordering dependence.
  std::string fingerprint() const;
  /// The histogram section alone: "name#bucket=count;..." over the
  /// nonzero buckets of fingerprint histograms in name order. Value sums
  /// are excluded by construction (they are wall-clock noise for duration
  /// histograms; counts are the deterministic part).
  std::string histogram_fingerprint() const;
  /// FNV-1a 64-bit hash of fingerprint(), for compact report embedding.
  std::uint64_t fingerprint_hash() const;

  /// Adds every metric of `other` into this registry (registering missing
  /// names with other's fingerprint flag). Used to aggregate per-run
  /// registries into a report-level one (e.g. across fuzz cases).
  void merge_from(const MetricsRegistry& other);

 private:
  mutable std::mutex mu_;
  std::map<std::string, Metric> metrics_;
  std::map<std::string, Histogram> histograms_;
};

/// Call-site helpers: no-ops when the context carries no registry. The
/// registration happens even for v == 0 so the set of names — part of the
/// fingerprint — does not depend on which branches executed work.
inline void metric_add(const ExecContext& ctx, const char* name,
                       std::uint64_t v) {
  if (ctx.metrics) ctx.metrics->counter(name)->add(v);
}
inline void metric_max(const ExecContext& ctx, const char* name,
                       std::uint64_t v) {
  if (ctx.metrics) ctx.metrics->counter(name)->record_max(v);
}
/// Histogram observation. `in_fingerprint` follows the counter rules: keep
/// the default only for deterministically-valued observations.
inline void metric_observe(const ExecContext& ctx, const char* name,
                           std::uint64_t v, bool in_fingerprint = true) {
  if (ctx.metrics) ctx.metrics->histogram(name, in_fingerprint)->observe(v);
}

/// 64-bit FNV-1a over a byte string (the fingerprint hash primitive).
std::uint64_t fnv1a64(const std::string& bytes);

}  // namespace encodesat
