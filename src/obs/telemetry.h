// Versioned telemetry report ("encodesat-telemetry-v1").
//
// One JSON object unifying the three observability surfaces:
//
//   {"schema":"encodesat-telemetry-v1",
//    "tool":"solve",                       // emitting binary/subcommand
//    "stats":{...} | null,                 // StageStats tree (--stats-json)
//    "counters":{"name":value,...},        // MetricsRegistry, name-sorted
//    "counter_fingerprint":"<16 hex>",     // FNV-1a of the fingerprint
//    "process":{"parallel_calls":n,        // pool_counters(): scheduling-
//               "tasks":n,                 // dependent, never fingerprinted
//               "workers_spawned":n},
//    "trace":{"events":n,"dropped":n} | null}
//
// Emitted by the solve/encode/fuzz CLI subcommands (--stats-out) and, per
// case, by the primes benchmark (bench schema v2). Everything except the
// "process" section and StageStats elapsed times is deterministic across
// thread counts. See docs/OBSERVABILITY.md for the field catalog.
#pragma once

#include <string>

#include "util/exec.h"

namespace encodesat {

class MetricsRegistry;
class Tracer;

inline constexpr const char* kTelemetrySchema = "encodesat-telemetry-v1";

struct TelemetryOptions {
  /// Name of the emitting tool/subcommand (e.g. "solve", "fuzz").
  const char* tool = "unknown";
  /// Stage tree to embed under "stats"; null emits `"stats":null`.
  const StageStats* stats = nullptr;
  /// Counter registry for "counters"/"counter_fingerprint"; null emits an
  /// empty counters object with the fingerprint of the empty registry.
  const MetricsRegistry* metrics = nullptr;
  /// Tracer whose event totals go under "trace"; null emits `"trace":null`.
  const Tracer* tracer = nullptr;
};

/// Serializes one telemetry report (single line, no trailing newline).
std::string telemetry_to_json(const TelemetryOptions& opts);

/// `fingerprint_hash()` rendered as the canonical 16-digit lowercase hex
/// string used in telemetry and fuzz divergence messages.
std::string fingerprint_hex(std::uint64_t hash);

}  // namespace encodesat
