// Versioned telemetry report ("encodesat-telemetry-v2").
//
// One JSON object unifying the observability surfaces:
//
//   {"schema":"encodesat-telemetry-v2",
//    "tool":"solve",                       // emitting binary/subcommand
//    "stats":{...} | null,                 // StageStats tree (--stats-json)
//    "counters":{"name":value,...},        // MetricsRegistry, name-sorted
//    "counter_fingerprint":"<16 hex>",     // FNV-1a of the fingerprint
//    "gauges":{"name":value,...},          // point-in-time values supplied
//                                          // by the caller (queue depth,
//                                          // window rates/percentiles)
//    "histograms":{"name":{"count":n,"sum":n,
//                          "buckets":{"<boundary>":count,...,"+inf":n}}},
//    "process":{"parallel_calls":n,        // pool_counters(): scheduling-
//               "tasks":n,                 // dependent, never fingerprinted
//               "workers_spawned":n},
//    "trace":{"events":n,"dropped":n,"dropped_spans":n} | null}
//
// v2 additions over v1: the "gauges" and "histograms" blocks and the
// trace "dropped_spans" field. Histogram bucket keys are the shared
// boundary table of obs/histogram.h; only non-empty buckets appear.
//
// Emitted by the solve/encode/fuzz/serve CLI subcommands (--stats-out)
// and, per case, by the primes benchmark. Everything except the "process"
// section, "gauges", StageStats elapsed times and duration-histogram
// contents is deterministic across thread counts. See
// docs/OBSERVABILITY.md for the field catalog.
//
// render_prometheus_text() renders the same counters/gauges/histograms as
// a Prometheus-style text exposition (`# TYPE` lines, `_bucket{le="..."}`
// cumulative series) for the `metrics` server op; see docs/SERVICE.md.
#pragma once

#include <string>
#include <vector>

#include "util/exec.h"

namespace encodesat {

class MetricsRegistry;
class Tracer;

inline constexpr const char* kTelemetrySchema = "encodesat-telemetry-v2";

/// One point-in-time value sampled by the caller at render time (queue
/// depth, in-flight count, rolling-window rates and percentiles). Doubles,
/// because window rates are fractional; integral gauges render exactly.
struct TelemetryGauge {
  std::string name;
  double value = 0;
};

struct TelemetryOptions {
  /// Name of the emitting tool/subcommand (e.g. "solve", "fuzz").
  const char* tool = "unknown";
  /// Stage tree to embed under "stats"; null emits `"stats":null`.
  const StageStats* stats = nullptr;
  /// Counter registry for "counters"/"counter_fingerprint"/"histograms";
  /// null emits empty objects with the fingerprint of the empty registry.
  const MetricsRegistry* metrics = nullptr;
  /// Tracer whose event totals go under "trace"; null emits `"trace":null`.
  const Tracer* tracer = nullptr;
  /// Gauges for the "gauges" block, emitted in the given order.
  std::vector<TelemetryGauge> gauges;
};

/// Serializes one telemetry report (single line, no trailing newline).
std::string telemetry_to_json(const TelemetryOptions& opts);

/// Renders counters, gauges and histograms as Prometheus-style text
/// exposition: names prefixed `encodesat_` with dots mapped to
/// underscores, `# TYPE` comment per family, histogram families as
/// cumulative `_bucket{le="..."}` series (non-empty buckets plus
/// `le="+Inf"`) with `_sum` and `_count`. Ends with a newline.
std::string render_prometheus_text(const TelemetryOptions& opts);

/// `fingerprint_hash()` rendered as the canonical 16-digit lowercase hex
/// string used in telemetry and fuzz divergence messages.
std::string fingerprint_hex(std::uint64_t hash);

}  // namespace encodesat
