#include "obs/trace.h"

#include <atomic>
#include <ostream>

namespace encodesat {

namespace {

std::atomic<std::uint64_t> g_next_tracer_id{1};

/// Thread-local cache: tracer id -> this thread's log. Linear scan — a
/// thread sees a handful of tracers over its lifetime. Entries for
/// destroyed tracers are dead weight but harmless: ids are never reused,
/// so a stale entry can never match a live tracer.
struct CacheEntry {
  std::uint64_t tracer_id;
  void* log;
};
thread_local std::vector<CacheEntry> t_log_cache;

}  // namespace

Tracer::Tracer(std::size_t capacity_per_thread)
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      capacity_(capacity_per_thread == 0 ? 1 : capacity_per_thread),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

std::int64_t Tracer::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::ThreadLog* Tracer::log_for_this_thread() {
  for (const CacheEntry& e : t_log_cache)
    if (e.tracer_id == id_) return static_cast<ThreadLog*>(e.log);
  std::lock_guard<std::mutex> lock(mu_);
  logs_.emplace_back();
  ThreadLog* log = &logs_.back();
  log->tid = static_cast<int>(logs_.size());
  t_log_cache.push_back({id_, log});
  return log;
}

void Tracer::begin_span(const char* name) {
  ThreadLog* log = log_for_this_thread();
  if (log->open_dropped > 0 || log->events.size() >= capacity_) {
    // Once one begin is dropped, every nested begin must be dropped too so
    // the open_dropped depth pairs ends with the right (dropped) begins.
    ++log->open_dropped;
    ++log->dropped;
    ++log->dropped_spans;
    return;
  }
  log->events.push_back({name, now_us(), 'B'});
}

void Tracer::end_span(const char* name) {
  ThreadLog* log = log_for_this_thread();
  if (log->open_dropped > 0) {
    --log->open_dropped;
    ++log->dropped;
    return;
  }
  // Matching begin was recorded: always append, even past capacity, to
  // keep the trace balanced (overshoot bounded by nesting depth).
  log->events.push_back({name, now_us(), 'E'});
}

namespace {

void escape_json(const char* s, std::ostream& out) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

}  // namespace

void Tracer::write_chrome_trace(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const ThreadLog& log : logs_) {
    for (const Event& e : log.events) {
      if (!first) out << ',';
      first = false;
      out << "{\"name\":\"";
      escape_json(e.name, out);
      out << "\",\"ph\":\"" << e.phase << "\",\"ts\":" << e.ts_us
          << ",\"pid\":1,\"tid\":" << log.tid << '}';
    }
  }
  std::uint64_t dropped = 0;
  std::uint64_t dropped_spans = 0;
  std::size_t events = 0;
  for (const ThreadLog& log : logs_) {
    dropped += log.dropped;
    dropped_spans += log.dropped_spans;
    events += log.events.size();
  }
  out << "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
      << "\"schema\":\"encodesat-trace-v1\",\"events\":" << events
      << ",\"dropped_events\":" << dropped
      << ",\"dropped_spans\":" << dropped_spans << "}}";
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const ThreadLog& log : logs_) n += log.events.size();
  return n;
}

std::uint64_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const ThreadLog& log : logs_) n += log.dropped;
  return n;
}

std::uint64_t Tracer::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const ThreadLog& log : logs_) n += log.dropped_spans;
  return n;
}

std::map<std::string, std::size_t> Tracer::span_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::size_t> counts;
  for (const ThreadLog& log : logs_)
    for (const Event& e : log.events)
      if (e.phase == 'B') ++counts[e.name];
  return counts;
}

bool Tracer::spans_balanced() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const ThreadLog& log : logs_) {
    std::vector<const char*> stack;
    for (const Event& e : log.events) {
      if (e.phase == 'B') {
        stack.push_back(e.name);
      } else {
        if (stack.empty() ||
            std::string(stack.back()) != std::string(e.name))
          return false;
        stack.pop_back();
      }
    }
    if (!stack.empty()) return false;
  }
  return true;
}

}  // namespace encodesat
