#include "obs/histogram.h"

#include <algorithm>

namespace encodesat {

namespace histogram_buckets {

namespace {

std::vector<std::uint64_t> build_boundaries() {
  constexpr std::uint64_t kMax = 1'000'000'000'000'000'000ull;  // 1e18
  std::vector<std::uint64_t> b;
  b.reserve(180);
  std::uint64_t v = 1;
  for (;;) {
    b.push_back(v);
    if (v >= kMax) break;
    v += std::max<std::uint64_t>(1, v / 4);
  }
  return b;
}

}  // namespace

const std::vector<std::uint64_t>& boundaries() {
  // Function-local static: built once, thread-safe, fixed for the process
  // lifetime (and, because the recurrence is integer-exact, fixed across
  // platforms and builds — the determinism contract).
  static const std::vector<std::uint64_t> kBoundaries = build_boundaries();
  return kBoundaries;
}

std::size_t bucket_count() { return boundaries().size() + 1; }

std::size_t bucket_index(std::uint64_t v) {
  const std::vector<std::uint64_t>& b = boundaries();
  // First boundary >= v; values past the last boundary overflow.
  return static_cast<std::size_t>(
      std::lower_bound(b.begin(), b.end(), v) - b.begin());
}

std::uint64_t percentile(const std::vector<std::uint64_t>& counts, double p) {
  const std::vector<std::uint64_t>& b = boundaries();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  // Rank of the target observation, 1-based; p = 0 maps to the first.
  std::uint64_t rank = static_cast<std::uint64_t>(
      p * static_cast<double>(total) + 0.9999999999);
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cum += counts[i];
    if (cum >= rank) return i < b.size() ? b[i] : b.back();
  }
  return b.back();
}

}  // namespace histogram_buckets

Histogram::Histogram(bool in_fingerprint)
    : buckets_(histogram_buckets::bucket_count()),
      in_fingerprint_(in_fingerprint) {}

void Histogram::observe(std::uint64_t v) {
  buckets_[histogram_buckets::bucket_index(v)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::sum() const {
  return sum_.load(std::memory_order_relaxed);
}

std::vector<std::pair<std::size_t, std::uint64_t>>
Histogram::nonzero_buckets() const {
  std::vector<std::pair<std::size_t, std::uint64_t>> out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) out.emplace_back(i, c);
  }
  return out;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

std::uint64_t Histogram::percentile(double p) const {
  return histogram_buckets::percentile(bucket_counts(), p);
}

void Histogram::merge_from(const Histogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
}

}  // namespace encodesat
