// Deterministic log-bucketed histograms for the observability subsystem.
//
// A Histogram counts observations into a fixed, process-wide table of
// bucket boundaries growing by a factor of ~1.25 (b[0] = 1, b[i+1] =
// b[i] + max(1, b[i]/4), pure integer arithmetic — no floating point, no
// platform dependence). Because the boundaries are fixed and counting is
// commutative, the bucket-count vector of a histogram observing
// deterministic values (work units, item counts) is bit-identical across
// `--threads` values and scheduling — so bucket counts can join the
// MetricsRegistry structural fingerprint. Value *sums* are reported but
// excluded from the fingerprint, like wall times: a histogram observing
// durations keeps exact counts but nondeterministic values, and belongs
// outside the fingerprint (`in_fingerprint = false`), same as the
// `cache.` / `service.` counter families.
//
// Observation is a relaxed atomic add on the target bucket plus count/sum
// totals — safe from any thread, cheap enough for per-request paths.
// Percentile queries are bucket-resolution upper bounds (the bucket's
// boundary), which the ~1.25 growth factor keeps within ~25% of the true
// value — the standard latency-histogram trade.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace encodesat {

namespace histogram_buckets {

/// The shared boundary table: strictly increasing, b[0] = 1, growth
/// b[i+1] = b[i] + max(1, b[i]/4), extended until the last boundary
/// reaches 1e18 (covers work units and microsecond latencies alike).
/// Values above the last boundary land in the overflow ("+Inf") bucket.
const std::vector<std::uint64_t>& boundaries();

/// Number of buckets including the overflow bucket:
/// boundaries().size() + 1.
std::size_t bucket_count();

/// Index of the bucket counting `v`: the smallest i with
/// v <= boundaries()[i], or boundaries().size() (overflow) when v exceeds
/// every boundary. bucket_index(0) == bucket_index(1) == 0.
std::size_t bucket_index(std::uint64_t v);

/// Upper-bound percentile over a dense bucket-count vector (size
/// bucket_count()): the boundary of the bucket holding the ceil(p * n)-th
/// observation. Returns 0 for an empty vector/zero counts; the overflow
/// bucket reports the last finite boundary. `p` is clamped to [0, 1].
std::uint64_t percentile(const std::vector<std::uint64_t>& counts, double p);

}  // namespace histogram_buckets

/// One named distribution. Like MetricsRegistry::Metric, histograms are
/// constructed in place by the registry map (atomics are immovable) and
/// their pointers stay valid for the registry's lifetime.
class Histogram {
 public:
  explicit Histogram(bool in_fingerprint);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(std::uint64_t v);

  std::uint64_t count() const;
  /// Sum of observed values. Reported, never fingerprinted (value sums of
  /// duration-valued histograms are wall-clock noise).
  std::uint64_t sum() const;
  bool in_fingerprint() const { return in_fingerprint_; }

  /// Sparse non-zero buckets as (bucket index, count), ascending by index.
  /// Deterministic serialization order for fingerprints and reports.
  std::vector<std::pair<std::size_t, std::uint64_t>> nonzero_buckets() const;
  /// Dense per-bucket counts (size histogram_buckets::bucket_count()).
  std::vector<std::uint64_t> bucket_counts() const;

  /// Upper-bound percentile of the recorded distribution (see
  /// histogram_buckets::percentile). 0 when empty.
  std::uint64_t percentile(double p) const;

  /// Adds every bucket (and count/sum) of `other` into this histogram.
  /// Merging is associative and commutative — bucket counts add.
  void merge_from(const Histogram& other);

 private:
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  bool in_fingerprint_;
};

}  // namespace encodesat
