// Span tracer: Chrome trace-event output for pipeline stages.
//
// A Tracer installed on ExecContext receives the begin/end span events that
// every StageScope already emits (util/exec.h), so the existing stage tree
// — solve, initial_dichotomies, raise, prime_generation, unate_cover, ... —
// shows up in chrome://tracing / Perfetto with zero call-site changes. Hot
// loops add finer spans explicitly with TRACE_SCOPE(ctx, "name").
//
// Threading model: each OS thread that emits events gets its own bounded
// event log. The log is registered once under a mutex (first event from
// that thread) and thereafter written only by its owner thread — no
// locking, no atomics on the hot path. A thread-local cache maps the
// tracer's unique id to the thread's log; ids come from a process-global
// counter so a cache entry can never alias a destroyed tracer whose
// address was reused.
//
// Overflow policy keeps spans balanced: when a thread's log is full a
// begin event is dropped and the open-drop depth is bumped; the matching
// end event (strict LIFO nesting, guaranteed by RAII emission) is dropped
// too. End events for *recorded* begins are always appended, even past
// capacity — the overshoot is bounded by the nesting depth at the moment
// the log filled, so `spans_balanced()` holds for every trace regardless
// of truncation. Dropped-event totals are reported in the trace footer.
//
// Timestamps are microseconds from tracer construction (steady clock).
// They are wall-clock noise by nature; structural checks (span name
// multisets, balance) are the deterministic surface tests rely on.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/exec.h"

namespace encodesat {

class Tracer : public TraceSink {
 public:
  /// `capacity_per_thread` bounds recorded events per emitting thread
  /// (begin events beyond it are dropped, balanced as described above).
  explicit Tracer(std::size_t capacity_per_thread = kDefaultCapacity);
  ~Tracer() override;

  void begin_span(const char* name) override;
  void end_span(const char* name) override;

  /// Serializes the Chrome trace-event JSON object (schema
  /// "encodesat-trace-v1"). Call after emitting threads have quiesced
  /// (e.g. after run_solve returned); concurrent emission is a race.
  void write_chrome_trace(std::ostream& out) const;

  /// Total recorded events across all threads.
  std::size_t event_count() const;
  /// Events dropped to the capacity bound (begin/end both counted).
  std::uint64_t dropped_events() const;
  /// Whole spans dropped (each dropped begin counts one span; its paired
  /// end is implied). The lossiness signal for check_trace.py and the
  /// `obs.trace.dropped` gauge — dropped_events() double-counts pairs.
  std::uint64_t dropped_spans() const;
  /// Recorded begin-event count per span name — the structural multiset
  /// that is identical across `threads` values for budget-free runs.
  std::map<std::string, std::size_t> span_counts() const;
  /// True iff every thread's event sequence is a balanced, properly
  /// nested begin/end string with matching names.
  bool spans_balanced() const;

  static constexpr std::size_t kDefaultCapacity = 1u << 16;

 private:
  struct Event {
    const char* name;
    std::int64_t ts_us;
    char phase;  // 'B' or 'E'
  };
  struct ThreadLog {
    std::vector<Event> events;
    std::size_t open_dropped = 0;  // open spans whose begin was dropped
    std::uint64_t dropped = 0;        // dropped events (begin + end)
    std::uint64_t dropped_spans = 0;  // dropped begins = whole spans lost
    int tid = 0;
  };

  ThreadLog* log_for_this_thread();
  std::int64_t now_us() const;

  const std::uint64_t id_;  // process-unique, never reused
  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;             // guards logs_ registration
  std::deque<ThreadLog> logs_;        // deque: stable pointers for owners
};

/// RAII span over a nullable sink: no-op when `sink` is null, so call
/// sites need no branching. Prefer the TRACE_SCOPE macro.
class TraceScope {
 public:
  TraceScope(TraceSink* sink, const char* name) : sink_(sink), name_(name) {
    if (sink_) sink_->begin_span(name_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope() {
    if (sink_) sink_->end_span(name_);
  }

 private:
  TraceSink* sink_;
  const char* name_;
};

/// Emits a span covering the rest of the enclosing block. `name` must be a
/// string literal (outlives the tracer); compiles to two null checks when
/// no tracer is installed.
#define ENCODESAT_TRACE_CAT2(a, b) a##b
#define ENCODESAT_TRACE_CAT(a, b) ENCODESAT_TRACE_CAT2(a, b)
#define TRACE_SCOPE(ctx, name)                                      \
  ::encodesat::TraceScope ENCODESAT_TRACE_CAT(trace_scope_,         \
                                              __LINE__)((ctx).tracer, name)

}  // namespace encodesat
