#include "obs/telemetry.h"

#include <cstdio>
#include <sstream>

#include "obs/counters.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace encodesat {

std::string fingerprint_hex(std::uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

std::string telemetry_to_json(const TelemetryOptions& opts) {
  std::ostringstream out;
  out << "{\"schema\":\"" << kTelemetrySchema << "\",\"tool\":\""
      << (opts.tool ? opts.tool : "unknown") << "\",\"stats\":";
  if (opts.stats)
    out << opts.stats->to_json();
  else
    out << "null";

  out << ",\"counters\":{";
  std::uint64_t fp_hash;
  if (opts.metrics) {
    bool first = true;
    for (const MetricsRegistry::Sample& s : opts.metrics->snapshot()) {
      if (!first) out << ',';
      first = false;
      out << '"' << s.name << "\":" << s.value;
    }
    fp_hash = opts.metrics->fingerprint_hash();
  } else {
    fp_hash = fnv1a64(std::string());
  }
  out << "},\"counter_fingerprint\":\"" << fingerprint_hex(fp_hash) << '"';

  const PoolCounters pool = pool_counters();
  out << ",\"process\":{\"parallel_calls\":" << pool.parallel_calls
      << ",\"tasks\":" << pool.tasks
      << ",\"workers_spawned\":" << pool.workers_spawned << '}';

  out << ",\"trace\":";
  if (opts.tracer)
    out << "{\"events\":" << opts.tracer->event_count()
        << ",\"dropped\":" << opts.tracer->dropped_events() << '}';
  else
    out << "null";
  out << '}';
  return out.str();
}

}  // namespace encodesat
