#include "obs/telemetry.h"

#include <cstdio>
#include <sstream>

#include "obs/counters.h"
#include "obs/histogram.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace encodesat {

namespace {

/// Metric name in exposition form: "encodesat_" prefix, dots mapped to
/// underscores (registry names only use [a-z0-9._]).
std::string prometheus_name(const std::string& name) {
  std::string out = "encodesat_";
  out.reserve(out.size() + name.size());
  for (char c : name) out.push_back(c == '.' ? '_' : c);
  return out;
}

void write_gauge_value(std::ostream& out, double v) {
  // Integral gauges (queue depth, percentile boundaries) render exactly;
  // rates keep their fraction. ostream default formatting is JSON-valid
  // for finite doubles, which gauges are by construction.
  if (v == static_cast<double>(static_cast<long long>(v)))
    out << static_cast<long long>(v);
  else
    out << v;
}

}  // namespace

std::string fingerprint_hex(std::uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

std::string telemetry_to_json(const TelemetryOptions& opts) {
  std::ostringstream out;
  out << "{\"schema\":\"" << kTelemetrySchema << "\",\"tool\":\""
      << (opts.tool ? opts.tool : "unknown") << "\",\"stats\":";
  if (opts.stats)
    out << opts.stats->to_json();
  else
    out << "null";

  out << ",\"counters\":{";
  std::uint64_t fp_hash;
  if (opts.metrics) {
    bool first = true;
    for (const MetricsRegistry::Sample& s : opts.metrics->snapshot()) {
      if (!first) out << ',';
      first = false;
      out << '"' << s.name << "\":" << s.value;
    }
    fp_hash = opts.metrics->fingerprint_hash();
  } else {
    fp_hash = fnv1a64(std::string());
  }
  out << "},\"counter_fingerprint\":\"" << fingerprint_hex(fp_hash) << '"';

  out << ",\"gauges\":{";
  {
    bool first = true;
    for (const TelemetryGauge& g : opts.gauges) {
      if (!first) out << ',';
      first = false;
      out << '"' << g.name << "\":";
      write_gauge_value(out, g.value);
    }
  }
  out << '}';

  out << ",\"histograms\":{";
  if (opts.metrics) {
    const std::vector<std::uint64_t>& bounds = histogram_buckets::boundaries();
    bool first = true;
    for (const MetricsRegistry::HistogramSample& h :
         opts.metrics->histogram_snapshot()) {
      if (!first) out << ',';
      first = false;
      out << '"' << h.name << "\":{\"count\":" << h.count
          << ",\"sum\":" << h.sum << ",\"buckets\":{";
      bool first_bucket = true;
      for (const auto& [bucket, count] : h.buckets) {
        if (!first_bucket) out << ',';
        first_bucket = false;
        out << '"';
        if (bucket < bounds.size())
          out << bounds[bucket];
        else
          out << "+inf";
        out << "\":" << count;
      }
      out << "}}";
    }
  }
  out << '}';

  const PoolCounters pool = pool_counters();
  out << ",\"process\":{\"parallel_calls\":" << pool.parallel_calls
      << ",\"tasks\":" << pool.tasks
      << ",\"workers_spawned\":" << pool.workers_spawned << '}';

  out << ",\"trace\":";
  if (opts.tracer)
    out << "{\"events\":" << opts.tracer->event_count()
        << ",\"dropped\":" << opts.tracer->dropped_events()
        << ",\"dropped_spans\":" << opts.tracer->dropped_spans() << '}';
  else
    out << "null";
  out << '}';
  return out.str();
}

std::string render_prometheus_text(const TelemetryOptions& opts) {
  std::ostringstream out;
  if (opts.metrics) {
    for (const MetricsRegistry::Sample& s : opts.metrics->snapshot()) {
      const std::string name = prometheus_name(s.name);
      out << "# TYPE " << name << " counter\n"
          << name << ' ' << s.value << '\n';
    }
  }
  for (const TelemetryGauge& g : opts.gauges) {
    const std::string name = prometheus_name(g.name);
    out << "# TYPE " << name << " gauge\n" << name << ' ';
    write_gauge_value(out, g.value);
    out << '\n';
  }
  if (opts.metrics) {
    const std::vector<std::uint64_t>& bounds = histogram_buckets::boundaries();
    for (const MetricsRegistry::HistogramSample& h :
         opts.metrics->histogram_snapshot()) {
      const std::string name = prometheus_name(h.name);
      out << "# TYPE " << name << " histogram\n";
      std::uint64_t cum = 0;
      for (const auto& [bucket, count] : h.buckets) {
        cum += count;
        // The overflow bucket folds into the mandatory +Inf series below.
        if (bucket >= bounds.size()) break;
        out << name << "_bucket{le=\"" << bounds[bucket] << "\"} " << cum
            << '\n';
      }
      out << name << "_bucket{le=\"+Inf\"} " << h.count << '\n'
          << name << "_sum " << h.sum << '\n'
          << name << "_count " << h.count << '\n';
    }
  }
  return out.str();
}

}  // namespace encodesat
