#include "obs/window.h"

#include <algorithm>

#include "obs/histogram.h"

namespace encodesat {

RollingWindow::RollingWindow(Config cfg) : cfg_(cfg) {
  if (cfg_.sub_window_us == 0) cfg_.sub_window_us = 1;
  if (cfg_.sub_windows == 0) cfg_.sub_windows = 1;
  ring_.resize(cfg_.sub_windows);
}

void RollingWindow::record(std::uint64_t now_us, std::uint64_t value) {
  const std::uint64_t epoch = now_us / cfg_.sub_window_us;
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = ring_[static_cast<std::size_t>(epoch % cfg_.sub_windows)];
  const std::uint64_t start = epoch * cfg_.sub_window_us;
  if (!slot.used || slot.start_us != start) {
    // Lazy recycle: this slot last held a sub-window a full ring ago.
    slot.used = true;
    slot.start_us = start;
    slot.count = 0;
    slot.buckets.assign(histogram_buckets::bucket_count(), 0);
  }
  ++slot.count;
  ++slot.buckets[histogram_buckets::bucket_index(value)];
}

RollingWindow::Stats RollingWindow::stats(std::uint64_t now_us,
                                          std::uint64_t horizon_us) const {
  Stats out;
  const std::uint64_t horizon = std::min(
      horizon_us == 0 ? span_us() : horizon_us, span_us());
  const std::uint64_t oldest =
      now_us >= horizon ? now_us - horizon : 0;
  std::vector<std::uint64_t> merged(histogram_buckets::bucket_count(), 0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Slot& slot : ring_) {
      // Within the horizon and not a stale future-looking slot (a caller
      // whose clock moved backwards simply sees an empty window).
      if (!slot.used || slot.start_us < oldest || slot.start_us > now_us)
        continue;
      out.count += slot.count;
      for (std::size_t i = 0; i < merged.size(); ++i)
        merged[i] += slot.buckets[i];
    }
  }
  if (horizon > 0)
    out.rate_per_s = static_cast<double>(out.count) /
                     (static_cast<double>(horizon) / 1e6);
  out.p50 = histogram_buckets::percentile(merged, 0.50);
  out.p95 = histogram_buckets::percentile(merged, 0.95);
  out.p99 = histogram_buckets::percentile(merged, 0.99);
  return out;
}

}  // namespace encodesat
