#include "obs/counters.h"

#include <sstream>

namespace encodesat {

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

MetricsRegistry::Metric* MetricsRegistry::counter(const std::string& name,
                                                  bool in_fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  return &metrics_.try_emplace(name, in_fingerprint).first->second;
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      bool in_fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  return &histograms_.try_emplace(name, in_fingerprint).first->second;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(metrics_.size());
  for (const auto& [name, metric] : metrics_)
    out.push_back({name, metric.value(), metric.in_fingerprint()});
  return out;
}

std::vector<MetricsRegistry::HistogramSample>
MetricsRegistry::histogram_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramSample> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_)
    out.push_back(
        {name, h.count(), h.sum(), h.in_fingerprint(), h.nonzero_buckets()});
  return out;
}

std::string MetricsRegistry::fingerprint() const {
  std::ostringstream out;
  for (const Sample& s : snapshot()) {
    if (!s.in_fingerprint) continue;
    out << s.name << '=' << s.value << ';';
  }
  out << histogram_fingerprint();
  return out.str();
}

std::string MetricsRegistry::histogram_fingerprint() const {
  std::ostringstream out;
  for (const HistogramSample& h : histogram_snapshot()) {
    if (!h.in_fingerprint) continue;
    for (const auto& [bucket, count] : h.buckets)
      out << h.name << '#' << bucket << '=' << count << ';';
  }
  return out.str();
}

std::uint64_t MetricsRegistry::fingerprint_hash() const {
  return fnv1a64(fingerprint());
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const Sample& s : other.snapshot())
    counter(s.name, s.in_fingerprint)->add(s.value);
  // Histograms merge object-to-object (bucket adds in one pass). Collect
  // stable pointers under other's lock, then merge lock-free: never hold
  // both registries' mutexes at once.
  std::vector<std::pair<std::string, const Histogram*>> theirs;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    theirs.reserve(other.histograms_.size());
    for (const auto& [name, h] : other.histograms_)
      theirs.emplace_back(name, &h);
  }
  for (const auto& [name, h] : theirs)
    histogram(name, h->in_fingerprint())->merge_from(*h);
}

}  // namespace encodesat
