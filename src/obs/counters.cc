#include "obs/counters.h"

#include <sstream>

namespace encodesat {

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

MetricsRegistry::Metric* MetricsRegistry::counter(const std::string& name,
                                                  bool in_fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  return &metrics_.try_emplace(name, in_fingerprint).first->second;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(metrics_.size());
  for (const auto& [name, metric] : metrics_)
    out.push_back({name, metric.value(), metric.in_fingerprint()});
  return out;
}

std::string MetricsRegistry::fingerprint() const {
  std::ostringstream out;
  for (const Sample& s : snapshot()) {
    if (!s.in_fingerprint) continue;
    out << s.name << '=' << s.value << ';';
  }
  return out.str();
}

std::uint64_t MetricsRegistry::fingerprint_hash() const {
  return fnv1a64(fingerprint());
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const Sample& s : other.snapshot())
    counter(s.name, s.in_fingerprint)->add(s.value);
}

}  // namespace encodesat
