// Rolling time-window aggregation over the shared histogram buckets.
//
// A RollingWindow is a ring of N sub-window snapshots (default 60 slots of
// 5 s = 5 min of history). record(now_us, value) drops the observation
// into the sub-window owning `now_us`, lazily recycling slots whose epoch
// has passed — there is no background thread and no timer. stats(now_us,
// horizon_us) merges the sub-windows younger than the horizon into one
// bucket vector and reports count, rate and p50/p95/p99 upper bounds over
// exactly that span — the "what is p99 over the last minute" question the
// cumulative process-lifetime histograms cannot answer.
//
// The clock is injected: callers pass a monotonic microsecond timestamp
// (the service layer uses microseconds since broker start), so tests drive
// rotation and expiry with a synthetic clock and zero sleeps. Resolution
// is one sub-window: an observation counts toward a horizon while its
// sub-window's *start* is within the horizon.
//
// Thread safety: a single mutex guards the ring. Recording happens once
// per service request (not per pipeline operation), so contention is not
// a concern at this layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace encodesat {

class RollingWindow {
 public:
  struct Config {
    /// Width of one sub-window slot.
    std::uint64_t sub_window_us = 5'000'000;
    /// Ring size; total history = sub_windows * sub_window_us.
    std::size_t sub_windows = 60;
  };

  RollingWindow() : RollingWindow(Config()) {}
  explicit RollingWindow(Config cfg);
  RollingWindow(const RollingWindow&) = delete;
  RollingWindow& operator=(const RollingWindow&) = delete;

  /// Records one observation (e.g. a request latency in microseconds) at
  /// monotonic time `now_us`.
  void record(std::uint64_t now_us, std::uint64_t value);

  struct Stats {
    std::uint64_t count = 0;      ///< observations within the horizon
    double rate_per_s = 0;        ///< count / horizon seconds
    std::uint64_t p50 = 0;        ///< bucket-resolution upper bounds
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;
  };

  /// Aggregates the sub-windows whose start lies within `horizon_us`
  /// before `now_us`. The horizon is clamped to the ring's total span.
  Stats stats(std::uint64_t now_us, std::uint64_t horizon_us) const;

  /// Total history the ring can hold, in microseconds.
  std::uint64_t span_us() const {
    return cfg_.sub_window_us * cfg_.sub_windows;
  }

 private:
  struct Slot {
    std::uint64_t start_us = 0;
    bool used = false;
    std::uint64_t count = 0;
    std::vector<std::uint64_t> buckets;  // dense, bucket_count() wide
  };

  Config cfg_;
  mutable std::mutex mu_;
  std::vector<Slot> ring_;
};

}  // namespace encodesat
