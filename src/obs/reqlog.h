// Structured per-request NDJSON log for the solve service.
//
// Each logged request is one line of JSON tagged
// `"schema":"encodesat-reqlog-v1"`: request id, status, cache/coalesce
// disposition, the three latencies (queue wait, solve, end-to-end),
// truncation reason, work units and any request-scoped counter deltas the
// caller attaches. Lines are self-describing so a stream multiplexed onto
// stderr ("-") can be filtered back out by the schema tag.
//
// Volume control is sampling plus overrides: every `sample_every`-th
// request is logged, and error or slow requests (end-to-end latency at or
// past `slow_us`) are always logged regardless of the sampling phase. A
// slow request additionally attaches its per-stage span tree (the
// request's own StageStats, serialized with StageStats::to_json) so the
// operator sees *where* the time went without re-running under a tracer.
//
// Thread safety: one mutex serializes line assembly and the write+flush,
// so concurrent workers never interleave partial lines.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/exec.h"

namespace encodesat {

struct ReqLogConfig {
  /// Output path; "-" writes to stderr.
  std::string path;
  /// Log every Nth non-error, non-slow request; 0 disables sampled
  /// logging entirely (errors and slow requests still log).
  std::uint64_t sample_every = 1;
  /// End-to-end latency at or above this is "slow": always logged, with
  /// the request's span tree attached. 0 disables the threshold.
  std::uint64_t slow_us = 0;
};

/// One request's worth of log fields, filled by the service layer.
struct ReqLogRecord {
  std::string id;
  std::string status;       ///< wire status ("ok", "infeasible", ...)
  std::string disposition;  ///< "solve", "hit", "coalesced", "rejected", ...
  std::uint64_t queue_us = 0;
  std::uint64_t solve_us = 0;
  std::uint64_t total_us = 0;
  const char* truncation = "none";
  std::uint64_t work = 0;
  /// True for any non-success outcome; forces the line past sampling.
  bool error = false;
  /// Request-scoped counter deltas (emitted in the given order).
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// The request's stage tree; attached as "spans" when the request is
  /// slow. Borrowed for the duration of the log() call only.
  const StageStats* stats = nullptr;
};

class RequestLog {
 public:
  explicit RequestLog(ReqLogConfig cfg);
  RequestLog(const RequestLog&) = delete;
  RequestLog& operator=(const RequestLog&) = delete;

  /// False when the configured file could not be opened (see open_error).
  bool ok() const { return error_.empty(); }
  const std::string& open_error() const { return error_; }

  /// Applies the sampling/override policy and writes one NDJSON line if
  /// the request qualifies. Returns true when a line was written.
  bool log(const ReqLogRecord& rec);

  std::uint64_t lines_written() const { return lines_; }

 private:
  ReqLogConfig cfg_;
  std::string error_;
  std::ofstream file_;
  std::ostream* out_ = nullptr;  // file_ or std::cerr
  std::mutex mu_;
  std::uint64_t seq_ = 0;    // sampled (non-forced) requests seen
  std::uint64_t lines_ = 0;  // lines written
};

}  // namespace encodesat
