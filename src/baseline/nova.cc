#include "baseline/nova.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/bounded.h"
#include "core/verify.h"
#include "util/rng.h"

namespace encodesat {

namespace {

int count_satisfied(const Encoding& enc, const ConstraintSet& cs) {
  return count_satisfied_faces(enc, cs);
}

}  // namespace

Encoding nova_encode(const ConstraintSet& cs, int bits,
                     const NovaOptions& opts) {
  const std::uint32_t n = cs.num_symbols();
  if (bits < minimum_code_length(n))
    throw std::invalid_argument("code length too small for symbol count");
  if (bits > 20) throw std::invalid_argument("code length too large");
  const std::uint64_t space = std::uint64_t{1} << bits;

  // Symbol order: most-constrained first (sum of face-constraint
  // memberships, larger faces weighing less since they are easier).
  std::vector<double> weight(n, 0.0);
  for (const auto& f : cs.faces())
    for (auto m : f.members)
      weight[m] += 1.0 / static_cast<double>(f.members.size());
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return weight[a] > weight[b];
                   });

  Rng rng(opts.seed);
  Encoding enc;
  enc.bits = bits;
  enc.codes.assign(n, 0);
  std::vector<bool> used(space, false);
  std::vector<bool> placed(n, false);

  // Greedy placement: each symbol takes the free code closest (total
  // hamming distance) to its already-placed face-constraint partners —
  // adjacent codes keep faces small.
  for (std::uint32_t s : order) {
    std::uint64_t best_code = 0;
    long best_score = std::numeric_limits<long>::max();
    for (std::uint64_t code = 0; code < space; ++code) {
      if (used[code]) continue;
      long score = 0;
      for (const auto& f : cs.faces()) {
        const bool member =
            std::find(f.members.begin(), f.members.end(), s) != f.members.end();
        if (!member) continue;
        for (auto m : f.members)
          if (m != s && placed[m])
            score += std::popcount(code ^ enc.codes[m]);
      }
      // Light random tiebreak keeps the heuristic from degenerate runs.
      score = score * 16 + static_cast<long>(rng.next_below(16));
      if (score < best_score) {
        best_score = score;
        best_code = code;
      }
    }
    enc.codes[s] = best_code;
    used[best_code] = true;
    placed[s] = true;
  }

  // Iterative improvement: swap two symbols' codes, or move a symbol to a
  // free code, accepting strict improvements in satisfied faces.
  int best = count_satisfied(enc, cs);
  for (int pass = 0; pass < opts.improvement_passes; ++pass) {
    bool improved = false;
    for (std::uint32_t a = 0; a < n; ++a) {
      for (std::uint32_t b = a + 1; b < n; ++b) {
        std::swap(enc.codes[a], enc.codes[b]);
        const int sat = count_satisfied(enc, cs);
        if (sat > best) {
          best = sat;
          improved = true;
        } else {
          std::swap(enc.codes[a], enc.codes[b]);
        }
      }
      for (std::uint64_t code = 0; code < space; ++code) {
        if (used[code]) continue;
        const std::uint64_t old = enc.codes[a];
        enc.codes[a] = code;
        const int sat = count_satisfied(enc, cs);
        if (sat > best) {
          best = sat;
          used[old] = false;
          used[code] = true;
          improved = true;
        } else {
          enc.codes[a] = old;
        }
      }
    }
    if (!improved) break;
  }
  return enc;
}

}  // namespace encodesat
