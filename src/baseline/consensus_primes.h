// Prime encoding-dichotomy generation by iterated pairwise merging — the
// approach of Yang & Ciesielski [TCAD Jan 1991] / Tracey [1966] that
// Section 5.1 replaces. Repeatedly unions compatible dichotomies until
// closure, then keeps the maximal elements. Many different merge orders
// produce the same prime, so the same prime is rediscovered over and over;
// the ablation bench quantifies the waste against the cs/ps algorithm.
#pragma once

#include <cstddef>
#include <vector>

#include "core/dichotomy.h"

namespace encodesat {

struct ConsensusPrimesOptions {
  /// Hard cap on the working set; generation reports truncation beyond it.
  std::size_t max_dichotomies = 100000;
};

struct ConsensusPrimesResult {
  std::vector<Dichotomy> primes;
  bool truncated = false;
  /// Pairwise merge attempts performed (the wasted-work metric).
  std::size_t merge_attempts = 0;
};

ConsensusPrimesResult consensus_prime_dichotomies(
    const std::vector<Dichotomy>& ds, const ConsensusPrimesOptions& opts = {});

}  // namespace encodesat
