#include "baseline/annealing.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/bounded.h"
#include "core/verify.h"
#include "util/rng.h"

namespace encodesat {

namespace {

long evaluate(const Encoding& enc, const ConstraintSet& cs, CostKind kind,
              int* evals) {
  ++*evals;
  if (kind == CostKind::kViolatedFaces)
    return static_cast<long>(cs.faces().size()) -
           count_satisfied_faces(enc, cs);
  return evaluate_encoding_cost(enc, cs, /*fast=*/true).by_kind(kind);
}

}  // namespace

AnnealResult anneal_encode(const ConstraintSet& cs, int bits,
                           const AnnealOptions& opts) {
  const std::uint32_t n = cs.num_symbols();
  if (bits < minimum_code_length(n))
    throw std::invalid_argument("code length too small for symbol count");
  if (bits > 20) throw std::invalid_argument("code length too large");
  const std::uint64_t space = std::uint64_t{1} << bits;

  Rng rng(opts.seed);
  AnnealResult res;
  res.encoding.bits = bits;
  res.encoding.codes.assign(n, 0);
  std::vector<std::uint64_t> free_codes;
  {
    // Initial assignment: identity order through the code space.
    std::vector<bool> used(space, false);
    for (std::uint32_t s = 0; s < n; ++s) {
      res.encoding.codes[s] = s;
      used[s] = true;
    }
    for (std::uint64_t c = 0; c < space; ++c)
      if (!used[c]) free_codes.push_back(c);
  }

  Encoding current = res.encoding;
  long cur_cost = evaluate(current, cs, opts.cost, &res.evaluations);
  Encoding best = current;
  long best_cost = cur_cost;

  double temperature = opts.initial_temperature;
  for (int tp = 0; tp < opts.temperature_points; ++tp) {
    for (int mv = 0; mv < opts.moves_per_temperature; ++mv) {
      Encoding trial = current;
      const bool free_move = !free_codes.empty() && rng.next_bool(0.3);
      std::uint32_t moved_symbol = 0;
      std::size_t free_index = 0;
      if (free_move) {
        // Move a symbol to an unused code (the pool is updated only if the
        // move is accepted).
        moved_symbol = static_cast<std::uint32_t>(rng.next_below(n));
        free_index = rng.next_below(free_codes.size());
        trial.codes[moved_symbol] = free_codes[free_index];
      } else {
        // Swap two symbols' codes.
        const std::uint32_t a = static_cast<std::uint32_t>(rng.next_below(n));
        std::uint32_t b = static_cast<std::uint32_t>(rng.next_below(n));
        while (b == a) b = static_cast<std::uint32_t>(rng.next_below(n));
        std::swap(trial.codes[a], trial.codes[b]);
      }
      const long trial_cost = evaluate(trial, cs, opts.cost, &res.evaluations);
      const long delta = trial_cost - cur_cost;
      const bool accept =
          delta <= 0 ||
          rng.next_double() <
              std::exp(-static_cast<double>(delta) / std::max(temperature, 1e-9));
      if (accept) {
        if (free_move) free_codes[free_index] = current.codes[moved_symbol];
        current = std::move(trial);
        cur_cost = trial_cost;
        if (cur_cost < best_cost) {
          best_cost = cur_cost;
          best = current;
        }
      }
    }
    temperature *= opts.cooling;
  }

  res.encoding = best;
  res.cost = evaluate_encoding_cost(res.encoding, cs, /*fast=*/false);
  return res;
}

}  // namespace encodesat
