#include "baseline/consensus_primes.h"

#include <unordered_set>

namespace encodesat {

ConsensusPrimesResult consensus_prime_dichotomies(
    const std::vector<Dichotomy>& ds, const ConsensusPrimesOptions& opts) {
  ConsensusPrimesResult res;
  std::vector<Dichotomy> work = ds;
  dedupe_dichotomies(work);
  std::unordered_set<Dichotomy, DichotomyHash> seen(work.begin(), work.end());

  // Closure under union of compatible pairs.
  for (std::size_t i = 0; i < work.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      ++res.merge_attempts;
      if (!work[i].compatible(work[j])) continue;
      Dichotomy u = work[i].union_with(work[j]);
      if (seen.insert(u).second) {
        work.push_back(std::move(u));
        if (work.size() > opts.max_dichotomies) {
          res.truncated = true;
          return res;
        }
      }
    }
  }

  // Keep the maximal elements: those covered (same orientation) by no other.
  for (std::size_t i = 0; i < work.size(); ++i) {
    bool maximal = true;
    for (std::size_t j = 0; j < work.size() && maximal; ++j) {
      if (i == j) continue;
      const bool strictly_larger =
          work[i].left.is_subset_of(work[j].left) &&
          work[i].right.is_subset_of(work[j].right) &&
          !(work[i] == work[j]);
      if (strictly_larger) maximal = false;
    }
    if (maximal) res.primes.push_back(work[i]);
  }
  dedupe_dichotomies(res.primes);
  return res;
}

}  // namespace encodesat
