// NOVA-like baseline for bounded-length input encoding (Villa &
// Sangiovanni-Vincentelli, "NOVA: State Assignment of Finite State Machines
// for Optimal Two-Level Logic Implementations", TCAD Sept 1990).
//
// Reimplemented from the published description for the Table 2 comparison:
// greedy placement of symbols into the code hypercube ordered by constraint
// involvement, followed by iterative improvement via code swaps, maximizing
// the number of satisfied face constraints (NOVA's "iohybrid" objective at
// minimum code length).
#pragma once

#include <cstdint>

#include "core/constraints.h"
#include "core/encoding.h"

namespace encodesat {

struct NovaOptions {
  int improvement_passes = 6;
  std::uint64_t seed = 7;
};

/// Encodes all symbols in `bits` bits (bits >= ceil(log2 n)) maximizing
/// satisfied face constraints. Output constraints are ignored (NOVA's
/// constraint satisfaction handles input constraints).
Encoding nova_encode(const ConstraintSet& cs, int bits,
                     const NovaOptions& opts = {});

}  // namespace encodesat
