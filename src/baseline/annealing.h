// Simulated-annealing baseline for bounded-length encoding under the
// literal/cube cost functions — the comparison point of the paper's
// Table 3 (the annealer built into MIS-MV was, before this paper, "the only
// known algorithm" for minimizing literal counts of encoded constraints
// with encoding don't-cares).
#pragma once

#include <cstdint>

#include "core/constraints.h"
#include "core/cost.h"
#include "core/encoding.h"

namespace encodesat {

struct AnnealOptions {
  CostKind cost = CostKind::kLiterals;
  /// Moves attempted per temperature point (the paper varies 4 vs 10).
  int moves_per_temperature = 10;
  int temperature_points = 40;
  double initial_temperature = 4.0;
  double cooling = 0.85;
  std::uint64_t seed = 99;
};

struct AnnealResult {
  Encoding encoding;
  EncodingCost cost;       ///< full-quality evaluation of the final codes
  int evaluations = 0;     ///< number of cost-function calls performed
};

/// Anneals over code assignments: moves are pairwise code swaps or moves of
/// one symbol to an unused code. Output constraints are not modeled in the
/// move set (matching the MIS-MV usage on input constraints).
AnnealResult anneal_encode(const ConstraintSet& cs, int bits,
                           const AnnealOptions& opts = {});

}  // namespace encodesat
