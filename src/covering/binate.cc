#include "covering/binate.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "obs/counters.h"
#include "obs/trace.h"
#include "util/term_arena.h"
#include "util/thread_pool.h"

namespace encodesat {

void BinateCoverProblem::add_row(const std::vector<std::size_t>& pos_cols,
                                 const std::vector<std::size_t>& neg_cols) {
  for (std::size_t c : pos_cols)
    if (c >= num_columns)
      throw std::invalid_argument(
          "BinateCoverProblem::add_row: positive column index " +
          std::to_string(c) + " >= num_columns " +
          std::to_string(num_columns));
  for (std::size_t c : neg_cols)
    if (c >= num_columns)
      throw std::invalid_argument(
          "BinateCoverProblem::add_row: negative column index " +
          std::to_string(c) + " >= num_columns " +
          std::to_string(num_columns));
  BinateRow row{Bitset(num_columns), Bitset(num_columns)};
  for (std::size_t c : pos_cols) row.pos.set(c);
  for (std::size_t c : neg_cols) row.neg.set(c);
  rows.push_back(std::move(row));
}

namespace {

int column_weight(const BinateCoverProblem& p, std::size_t c) {
  return p.weights.empty() ? 1 : p.weights[c];
}

void validate_problem(const BinateCoverProblem& p) {
  if (!p.weights.empty() && p.weights.size() != p.num_columns)
    throw std::invalid_argument(
        "solve_binate_cover: weights has " + std::to_string(p.weights.size()) +
        " entries for " + std::to_string(p.num_columns) + " columns");
  for (const BinateRow& r : p.rows)
    if (r.pos.size() != p.num_columns || r.neg.size() != p.num_columns)
      throw std::invalid_argument(
          "solve_binate_cover: row universe does not match num_columns");
}

// --- root reduction --------------------------------------------------------

// Polynomial presolve applied once before the search: unit rows (a clause
// with one free literal forces it), pure-literal columns (a column in no
// positive literal is never worth selecting), row dominance (clause i a
// sub-clause of clause j drops j) and column dominance on the
// pure-positive subtable (both columns only ever positive, one covers a
// superset of the other's rows at no greater weight). Every step preserves
// at least one optimal solution; a row running out of literals here is a
// proven infeasibility certificate, not a truncation.
struct RootReduction {
  bool infeasible = false;
  Bitset assigned{0};
  Bitset value{0};
  int forced_cost = 0;
  std::uint64_t propagations = 0;
  std::vector<std::size_t> live_rows;  // indexes into p.rows
};

bool row_satisfied_root(const BinateRow& r, const Bitset& assigned,
                        const Bitset& value) {
  Bitset t = r.pos;
  t &= value;
  if (t.any()) return true;
  Bitset f = r.neg;
  f &= assigned;
  f.subtract(value);
  return f.any();
}

RootReduction reduce_root(const BinateCoverProblem& p) {
  RootReduction red;
  red.assigned = Bitset(p.num_columns);
  red.value = Bitset(p.num_columns);
  std::vector<bool> dead(p.rows.size(), false);

  // Tautological rows (a column in both pos and neg) are satisfied by any
  // total assignment — drop them up front.
  for (std::size_t r = 0; r < p.rows.size(); ++r) {
    Bitset both = p.rows[r].pos;
    both &= p.rows[r].neg;
    if (both.any()) dead[r] = true;
  }

  bool changed = true;
  while (changed && !red.infeasible) {
    changed = false;

    // Unit propagation to fixpoint.
    bool prop = true;
    while (prop && !red.infeasible) {
      prop = false;
      for (std::size_t r = 0; r < p.rows.size(); ++r) {
        if (dead[r]) continue;
        if (row_satisfied_root(p.rows[r], red.assigned, red.value)) {
          dead[r] = true;
          continue;
        }
        Bitset fp = p.rows[r].pos;
        fp.subtract(red.assigned);
        Bitset fn = p.rows[r].neg;
        fn.subtract(red.assigned);
        const std::size_t nfree = fp.count() + fn.count();
        if (nfree == 0) {
          red.infeasible = true;  // certificate: clause with no literal left
          break;
        }
        if (nfree == 1) {
          ++red.propagations;
          if (fp.any()) {
            const std::size_t c = fp.first();
            red.assigned.set(c);
            red.value.set(c);
            red.forced_cost += column_weight(p, c);
          } else {
            red.assigned.set(fn.first());
          }
          dead[r] = true;
          prop = changed = true;
        }
      }
    }
    if (red.infeasible) break;

    // Pure-literal columns: a free column in no live row's positive part
    // never pays for itself — fix it to 0, satisfying its negative rows.
    {
      Bitset in_pos(p.num_columns);
      for (std::size_t r = 0; r < p.rows.size(); ++r)
        if (!dead[r]) {
          Bitset fp = p.rows[r].pos;
          fp.subtract(red.assigned);
          in_pos |= fp;
        }
      for (std::size_t c = 0; c < p.num_columns; ++c) {
        if (red.assigned.test(c) || in_pos.test(c)) continue;
        bool used = false;
        for (std::size_t r = 0; r < p.rows.size(); ++r)
          if (!dead[r] && p.rows[r].neg.test(c)) {
            used = true;
            break;
          }
        red.assigned.set(c);
        if (used) {
          ++red.propagations;
          changed = true;
        }
      }
    }

    // Collect live rows and their free literal sets once for the two
    // dominance passes.
    std::vector<std::size_t> live;
    std::vector<Bitset> fpos, fneg;
    for (std::size_t r = 0; r < p.rows.size(); ++r) {
      if (dead[r]) continue;
      if (row_satisfied_root(p.rows[r], red.assigned, red.value)) {
        dead[r] = true;
        continue;
      }
      Bitset fp = p.rows[r].pos;
      fp.subtract(red.assigned);
      Bitset fn = p.rows[r].neg;
      fn.subtract(red.assigned);
      live.push_back(r);
      fpos.push_back(std::move(fp));
      fneg.push_back(std::move(fn));
    }

    // Row dominance: clause i ⊆ clause j (as free literal sets) makes j
    // redundant. Quadratic — only worth it on smallish tables.
    if (live.size() <= 1024) {
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (dead[live[i]]) continue;
        for (std::size_t j = 0; j < live.size(); ++j) {
          if (i == j || dead[live[j]]) continue;
          if (!fpos[i].is_subset_of(fpos[j]) || !fneg[i].is_subset_of(fneg[j]))
            continue;
          const bool equal = fpos[i].count() == fpos[j].count() &&
                             fneg[i].count() == fneg[j].count();
          if (equal && i > j) continue;  // keep the earlier of duplicates
          dead[live[j]] = true;
          changed = true;
        }
      }
    }

    // Column dominance on the pure-positive subtable: among free columns
    // that appear in no live negative literal, c is dominated by d when d
    // covers every live row c covers at no greater weight — selecting c
    // can always be replaced by selecting d, so fix c to 0.
    {
      std::vector<std::size_t> lrows;
      for (std::size_t i = 0; i < live.size(); ++i)
        if (!dead[live[i]]) lrows.push_back(i);
      Bitset impure(p.num_columns);
      for (std::size_t i : lrows) impure |= fneg[i];
      std::vector<std::size_t> pure;
      std::vector<Bitset> coverage;
      for (std::size_t c = 0; c < p.num_columns; ++c) {
        if (red.assigned.test(c) || impure.test(c)) continue;
        Bitset cov(lrows.size());
        for (std::size_t k = 0; k < lrows.size(); ++k)
          if (fpos[lrows[k]].test(c)) cov.set(k);
        if (!cov.any()) continue;
        pure.push_back(c);
        coverage.push_back(std::move(cov));
      }
      if (!pure.empty() && pure.size() <= 4096) {
        std::vector<std::size_t> order(pure.size());
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                    const std::size_t ca = coverage[a].count(),
                                      cb = coverage[b].count();
                    if (ca != cb) return ca > cb;
                    const int wa = column_weight(p, pure[a]),
                              wb = column_weight(p, pure[b]);
                    if (wa != wb) return wa < wb;
                    return pure[a] < pure[b];
                  });
        std::vector<std::size_t> kept;
        for (std::size_t i : order) {
          bool dominated = false;
          for (std::size_t k : kept)
            if (column_weight(p, pure[k]) <= column_weight(p, pure[i]) &&
                coverage[i].is_subset_of(coverage[k])) {
              dominated = true;
              break;
            }
          if (dominated) {
            red.assigned.set(pure[i]);  // value stays 0: excluded
            ++red.propagations;
            changed = true;
          } else {
            kept.push_back(i);
          }
        }
      }
    }
  }

  if (!red.infeasible)
    for (std::size_t r = 0; r < p.rows.size(); ++r)
      if (!dead[r] && !row_satisfied_root(p.rows[r], red.assigned, red.value))
        red.live_rows.push_back(r);
  return red;
}

// --- per-component branch-and-bound ----------------------------------------

struct ComponentResult {
  bool feasible = false;
  bool complete = true;  // search ran to exhaustion (optimality/infeasibility
                         // proved)
  Truncation truncation = Truncation::kNone;
  std::vector<std::size_t> columns;  // component-local indices
  int cost = 0;                      // valid only when feasible
  std::uint64_t nodes = 0;
  std::uint64_t propagations = 0;
  std::uint64_t prune_hits = 0;
  std::uint64_t arena_allocs = 0;
  std::uint64_t arena_reuses = 0;
  std::size_t peak_arena_bytes = 0;
};

// Explicit-stack DPLL over one component. All working sets live in two
// TermArenas: `cols` holds column sets (per-row free-literal tables and the
// per-frame assigned/value pair), `rows` holds row sets (the satisfied-row
// mask and the immutable column→rows occurrence tables used for O(words)
// satisfaction updates). Frames own their refs; every exit path returns
// them to the free list, so the search performs no per-node heap
// allocation for set data and the recursion depth is bounded by the
// explicit stack, not the call stack.
struct Search {
  const BinateCoverProblem& q;
  const BinateCoverOptions& opts;
  ExecContext ctx;
  TermArena cols;
  TermArena rows;
  std::vector<TermRef> row_pos, row_neg;  // row -> literal sets (immutable)
  std::vector<TermRef> occ_pos, occ_neg;  // col -> rows containing it
  std::uint64_t nodes = 0;
  std::uint64_t propagations = 0;
  std::uint64_t prune_hits = 0;
  bool budget_exhausted = false;
  Truncation truncation = Truncation::kNone;
  int best_cost = std::numeric_limits<int>::max();
  bool found = false;
  std::vector<std::size_t> best_columns;

  struct Frame {
    TermRef assigned;   // cols
    TermRef value;      // cols, invariant: value ⊆ assigned
    TermRef satisfied;  // rows
    int cost;
  };
  std::vector<Frame> stack;

  explicit Search(const BinateCoverProblem& problem,
                  const BinateCoverOptions& options, const ExecContext& context)
      : q(problem),
        opts(options),
        ctx(context),
        cols(problem.num_columns, 2 * problem.rows.size() + 64),
        rows(problem.rows.size(), 2 * problem.num_columns + 64) {
    row_pos.reserve(q.rows.size());
    row_neg.reserve(q.rows.size());
    for (const BinateRow& r : q.rows) {
      row_pos.push_back(cols.from_bitset(r.pos));
      row_neg.push_back(cols.from_bitset(r.neg));
    }
    occ_pos.reserve(q.num_columns);
    occ_neg.reserve(q.num_columns);
    for (std::size_t c = 0; c < q.num_columns; ++c) {
      const TermRef op = rows.alloc();
      const TermRef on = rows.alloc();
      for (std::size_t r = 0; r < q.rows.size(); ++r) {
        if (q.rows[r].pos.test(c)) rows.set(op, r);
        if (q.rows[r].neg.test(c)) rows.set(on, r);
      }
      occ_pos.push_back(op);
      occ_neg.push_back(on);
    }
  }

  void release_frame(const Frame& f) {
    cols.release(f.assigned);
    cols.release(f.value);
    rows.release(f.satisfied);
  }

  void assign(Frame& f, std::size_t c, bool select) {
    cols.set(f.assigned, c);
    if (select) {
      cols.set(f.value, c);
      f.cost += column_weight(q, c);
      rows.or_into(f.satisfied, occ_pos[c]);
    } else {
      rows.or_into(f.satisfied, occ_neg[c]);
    }
  }

  // Greedy maximal-independent-set lower bound over the unsatisfied rows
  // whose free literals are all positive (rows with a free negative
  // literal can be satisfied for free): pairwise column-disjoint rows each
  // force at least their cheapest free column. Short rows first — they
  // are more likely independent and carry tighter per-row bounds.
  int lower_bound(const std::vector<TermRef>& avail,
                  const std::vector<std::uint32_t>& acount,
                  std::vector<std::size_t>& order, TermRef used) {
    order.resize(avail.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (acount[a] != acount[b]) return acount[a] < acount[b];
      return a < b;
    });
    int bound = 0;
    for (std::size_t i : order) {
      if (cols.intersects(avail[i], used)) continue;
      cols.or_into(used, avail[i]);
      int cheapest = std::numeric_limits<int>::max();
      cols.for_each(avail[i], [&](std::size_t c) {
        cheapest = std::min(cheapest, column_weight(q, c));
      });
      bound += cheapest;
    }
    return bound;
  }

  void run() {
    stack.push_back(
        Frame{cols.alloc(), cols.alloc(), rows.alloc(), /*cost=*/0});
    while (!stack.empty()) {
      Frame f = stack.back();
      stack.pop_back();
      process(f);
      if (budget_exhausted) break;
    }
    for (const Frame& f : stack) release_frame(f);
    stack.clear();
  }

  void process(Frame f) {
    if (++nodes > opts.max_nodes) {
      budget_exhausted = true;
      truncation = Truncation::kNodeLimit;
      release_frame(f);
      return;
    }
    // Shared-budget checks: a cheap exhaustion flag every node, a clock
    // poll every 1024 nodes — a pathological instance inside a serve
    // request stays cancellable and deadline-bounded.
    if (ctx.exhausted() || ((nodes & 1023u) == 0 && !ctx.poll())) {
      budget_exhausted = true;
      truncation = ctx.reason();
      release_frame(f);
      return;
    }
    if (f.cost >= best_cost) {
      ++prune_hits;
      release_frame(f);
      return;
    }

    TermGuard cguard(cols);
    const TermRef fp = cguard.track(cols.alloc());
    const TermRef fn = cguard.track(cols.alloc());

    // Unit propagation to fixpoint; shared by both children below.
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t r = 0; r < q.rows.size(); ++r) {
        if (rows.test(f.satisfied, r)) continue;
        cols.andnot_of(fp, row_pos[r], f.assigned);
        cols.andnot_of(fn, row_neg[r], f.assigned);
        const std::size_t np = cols.count(fp);
        const std::size_t nfree = np + cols.count(fn);
        if (nfree == 0) {  // conflict: dead branch
          release_frame(f);
          return;
        }
        if (nfree == 1) {
          ++propagations;
          assign(f, np == 1 ? cols.first(fp) : cols.first(fn), np == 1);
          if (f.cost >= best_cost) {
            ++prune_hits;
            release_frame(f);
            return;
          }
          changed = true;
        }
      }
    }

    // One pass over the unsatisfied rows: pick the pivot (fewest free
    // literals) and collect the pure-positive residual rows for the bound.
    std::vector<TermRef> avail;
    std::vector<std::uint32_t> acount;
    TermGuard aguard(cols);
    std::size_t pivot = q.rows.size();
    std::size_t pivot_free = std::numeric_limits<std::size_t>::max();
    for (std::size_t r = 0; r < q.rows.size(); ++r) {
      if (rows.test(f.satisfied, r)) continue;
      cols.andnot_of(fp, row_pos[r], f.assigned);
      cols.andnot_of(fn, row_neg[r], f.assigned);
      const std::size_t np = cols.count(fp);
      const std::size_t nn = cols.count(fn);
      if (np + nn < pivot_free) {
        pivot_free = np + nn;
        pivot = r;
      }
      if (nn == 0) {
        const TermRef a = aguard.track(cols.alloc());
        cols.copy(a, fp);
        avail.push_back(a);
        acount.push_back(static_cast<std::uint32_t>(np));
      }
    }
    if (pivot == q.rows.size()) {
      // Every row satisfied; unassigned columns default to unselected.
      found = true;
      best_cost = f.cost;
      best_columns.clear();
      cols.for_each(f.value,
                    [&](std::size_t c) { best_columns.push_back(c); });
      release_frame(f);
      return;
    }

    {
      const TermRef used = cguard.track(cols.alloc());
      std::vector<std::size_t> order;
      if (f.cost + lower_bound(avail, acount, order, used) >= best_cost) {
        ++prune_hits;
        release_frame(f);
        return;
      }
    }

    // Branch on a free literal of the pivot row, cost-free direction
    // (leave the column unselected) first.
    cols.andnot_of(fn, row_neg[pivot], f.assigned);
    std::size_t var;
    if (!cols.empty(fn)) {
      var = cols.first(fn);
    } else {
      cols.andnot_of(fp, row_pos[pivot], f.assigned);
      assert(!cols.empty(fp));
      var = cols.first(fp);
    }

    // Push select first, exclude second: the stack pops exclude (var = 0)
    // before select, matching the cost-free-first exploration order.
    Frame select{cols.clone(f.assigned), cols.clone(f.value),
                 rows.clone(f.satisfied), f.cost};
    assign(select, var, /*select=*/true);
    stack.push_back(select);
    assign(f, var, /*select=*/false);  // f's refs transfer to this child
    stack.push_back(f);
  }
};

ComponentResult solve_component(const BinateCoverProblem& q,
                                const BinateCoverOptions& options,
                                const ExecContext& ctx) {
  TRACE_SCOPE(ctx, "binate_component");
  ComponentResult out;
  Search search(q, options, ctx);
  search.run();
  out.feasible = search.found;
  out.complete = !search.budget_exhausted;
  out.truncation = search.truncation;
  out.columns = std::move(search.best_columns);
  out.cost = search.found ? search.best_cost : 0;
  out.nodes = search.nodes;
  out.propagations = search.propagations;
  out.prune_hits = search.prune_hits;
  out.arena_allocs =
      search.cols.total_allocs() + search.rows.total_allocs();
  out.arena_reuses =
      search.cols.total_reuses() + search.rows.total_reuses();
  out.peak_arena_bytes =
      search.cols.peak_bytes() + search.rows.peak_bytes();
  return out;
}

// Union-find with path halving.
std::size_t dsu_find(std::vector<std::size_t>& parent, std::size_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

void report_metrics(const ExecContext& ctx, const BinateCoverSolution& sol) {
  // Per-component totals are deterministic (private node budgets, summed
  // in component order), so they are fingerprint-safe.
  metric_add(ctx, "cover.binate.nodes", sol.nodes_explored);
  metric_add(ctx, "cover.binate.components", sol.components);
  metric_add(ctx, "cover.binate.propagations", sol.propagations);
  metric_add(ctx, "cover.binate.prune_hits", sol.prune_hits);
  metric_add(ctx, "cover.binate.arena_allocs", sol.arena_allocs);
  metric_add(ctx, "cover.binate.arena_reuses", sol.arena_reuses);
  metric_max(ctx, "cover.binate.peak_arena_bytes", sol.peak_arena_bytes);
}

}  // namespace

BinateCoverSolution solve_binate_cover(const BinateCoverProblem& p,
                                       const BinateCoverOptions& options,
                                       const ExecContext& ctx) {
  validate_problem(p);
  StageScope stage(ctx, "binate_cover");
  BinateCoverSolution sol;

  // A budget that is already exhausted (or a pending cancellation) returns
  // before any work — truncated, never "infeasible".
  if (!stage.ctx().poll()) {
    sol.truncated = true;
    sol.truncation = stage.ctx().reason();
    stage.set_truncation(sol.truncation);
    report_metrics(ctx, sol);
    return sol;
  }

  RootReduction red;
  {
    TRACE_SCOPE(stage.ctx(), "binate_reduce");
    red = reduce_root(p);
  }
  sol.propagations = red.propagations;
  if (red.infeasible) {
    // Certificate, not a budget artifact: feasible=false, truncated=false.
    stage.set_truncation(Truncation::kNone);
    report_metrics(ctx, sol);
    return sol;
  }

  // Residual problem over the free columns of the live rows, renumbered.
  std::vector<std::size_t> column_map;  // residual column -> original
  std::vector<std::size_t> local_of(p.num_columns, p.num_columns);
  for (const std::size_t r : red.live_rows) {
    Bitset free = p.rows[r].pos;
    free |= p.rows[r].neg;
    free.subtract(red.assigned);
    free.for_each([&](std::size_t c) {
      if (local_of[c] == p.num_columns) {
        local_of[c] = column_map.size();
        column_map.push_back(c);
      }
    });
  }
  sol.columns_after_reduction = column_map.size();

  if (red.live_rows.empty()) {
    sol.feasible = true;
    sol.optimal = true;
    sol.cost = red.forced_cost;
    red.value.for_each([&](std::size_t c) { sol.columns.push_back(c); });
    std::sort(sol.columns.begin(), sol.columns.end());
    sol.components = 1;
    stage.set_truncation(Truncation::kNone);
    report_metrics(ctx, sol);
    return sol;
  }

  // Independent-subproblem fan-out: live rows sharing no free columns are
  // satisfiable independently, and the union of per-component optima is a
  // global optimum. Components are numbered in column order so the
  // decomposition — and the merged solution — is schedule-independent.
  std::vector<std::size_t> parent(column_map.size());
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<Bitset> row_free;  // per live row, free literal columns
  row_free.reserve(red.live_rows.size());
  for (const std::size_t r : red.live_rows) {
    Bitset free = p.rows[r].pos;
    free |= p.rows[r].neg;
    free.subtract(red.assigned);
    Bitset local(column_map.size());
    free.for_each([&](std::size_t c) { local.set(local_of[c]); });
    const std::size_t first = dsu_find(parent, local.first());
    local.for_each(
        [&](std::size_t c) { parent[dsu_find(parent, c)] = first; });
    row_free.push_back(std::move(local));
  }
  std::vector<std::size_t> comp_of_col(column_map.size());
  std::vector<std::size_t> roots;
  for (std::size_t c = 0; c < column_map.size(); ++c) {
    const std::size_t r = dsu_find(parent, c);
    auto it = std::find(roots.begin(), roots.end(), r);
    if (it == roots.end()) {
      roots.push_back(r);
      it = roots.end() - 1;
    }
    comp_of_col[c] = static_cast<std::size_t>(it - roots.begin());
  }
  const std::size_t num_components = roots.size();

  // Build one subproblem per component (columns and rows renumbered).
  std::vector<BinateCoverProblem> subs(num_components);
  std::vector<std::vector<std::size_t>> col_maps(num_components);
  std::vector<std::size_t> sub_local(column_map.size());
  for (std::size_t c = 0; c < column_map.size(); ++c) {
    auto& map = col_maps[comp_of_col[c]];
    sub_local[c] = map.size();
    map.push_back(c);
  }
  for (std::size_t k = 0; k < num_components; ++k) {
    subs[k].num_columns = col_maps[k].size();
    if (!p.weights.empty()) {
      subs[k].weights.reserve(col_maps[k].size());
      for (std::size_t c : col_maps[k])
        subs[k].weights.push_back(p.weights[column_map[c]]);
    }
  }
  for (std::size_t i = 0; i < red.live_rows.size(); ++i) {
    const std::size_t k = comp_of_col[row_free[i].first()];
    const BinateRow& src = p.rows[red.live_rows[i]];
    BinateRow local{Bitset(subs[k].num_columns), Bitset(subs[k].num_columns)};
    row_free[i].for_each([&](std::size_t c) {
      if (src.pos.test(column_map[c])) local.pos.set(sub_local[c]);
      if (src.neg.test(column_map[c])) local.neg.set(sub_local[c]);
    });
    subs[k].rows.push_back(std::move(local));
  }

  // Each component gets the full node budget and a private result slot, so
  // the merged outcome is bit-identical for every thread count (only
  // wall-clock deadlines can break the tie, by design).
  std::vector<ComponentResult> results(num_components);
  const ExecContext sub_ctx{ctx.budget, nullptr, 1, ctx.tracer, ctx.metrics};
  parallel_for(num_components, ctx.num_threads, [&](std::size_t k) {
    results[k] = solve_component(subs[k], options, sub_ctx);
  });

  // Merge in component order. A proven-infeasible component is a
  // certificate for the whole problem regardless of what happened to its
  // siblings; a component that truncated without a solution makes the
  // outcome "unknown", never "infeasible".
  bool proven_infeasible = false;
  bool unknown = false;
  Truncation first_trunc = Truncation::kNone;
  sol.feasible = true;
  sol.optimal = true;
  sol.cost = red.forced_cost;
  red.value.for_each([&](std::size_t c) { sol.columns.push_back(c); });
  for (std::size_t k = 0; k < num_components; ++k) {
    const ComponentResult& r = results[k];
    sol.nodes_explored += r.nodes;
    sol.propagations += r.propagations;
    sol.prune_hits += r.prune_hits;
    sol.arena_allocs += r.arena_allocs;
    sol.arena_reuses += r.arena_reuses;
    sol.peak_arena_bytes = std::max(sol.peak_arena_bytes, r.peak_arena_bytes);
    if (first_trunc == Truncation::kNone) first_trunc = r.truncation;
    if (!r.feasible) {
      if (r.complete)
        proven_infeasible = true;
      else
        unknown = true;
      continue;
    }
    sol.optimal = sol.optimal && r.complete;
    sol.cost += r.cost;
    for (std::size_t c : r.columns)
      sol.columns.push_back(column_map[col_maps[k][c]]);
  }
  if (proven_infeasible) {
    sol.feasible = false;
    sol.optimal = false;
    sol.cost = -1;
    sol.columns.clear();
    sol.truncation = Truncation::kNone;  // the certificate stands
  } else if (unknown) {
    sol.feasible = false;
    sol.optimal = false;
    sol.cost = -1;
    sol.columns.clear();
    sol.truncation = first_trunc;
  } else {
    sol.truncation = sol.optimal ? Truncation::kNone : first_trunc;
    std::sort(sol.columns.begin(), sol.columns.end());
  }
  sol.components = num_components == 0 ? 1 : num_components;
  sol.truncated = sol.truncation != Truncation::kNone;
  stage.add_items(sol.nodes_explored);
  stage.set_truncation(sol.truncation);
  report_metrics(ctx, sol);
  return sol;
}

}  // namespace encodesat
