#include "covering/binate.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace encodesat {

void BinateCoverProblem::add_row(const std::vector<std::size_t>& pos_cols,
                                 const std::vector<std::size_t>& neg_cols) {
  BinateRow row{Bitset(num_columns), Bitset(num_columns)};
  for (std::size_t c : pos_cols) row.pos.set(c);
  for (std::size_t c : neg_cols) row.neg.set(c);
  rows.push_back(std::move(row));
}

namespace {

int column_weight(const BinateCoverProblem& p, std::size_t c) {
  return p.weights.empty() ? 1 : p.weights[c];
}

struct Search {
  const BinateCoverProblem& p;
  const BinateCoverOptions& opts;
  std::uint64_t nodes = 0;
  bool budget_exhausted = false;
  int best_cost = std::numeric_limits<int>::max();
  bool found = false;
  std::vector<std::size_t> best_columns;

  Search(const BinateCoverProblem& problem, const BinateCoverOptions& options)
      : p(problem), opts(options) {}

  bool row_satisfied(const BinateRow& r, const Bitset& assigned,
                     const Bitset& value) const {
    // Positive literal true: assigned and selected.
    Bitset t = r.pos;
    t &= assigned;
    t &= value;
    if (t.any()) return true;
    // Negative literal true: assigned and not selected.
    Bitset f = r.neg;
    f &= assigned;
    f.subtract(value);
    return f.any();
  }

  // Lower bound: pairwise variable-disjoint unsatisfied rows whose free
  // literals are all positive each force at least their cheapest column.
  int lower_bound(const Bitset& assigned, const Bitset& value) const {
    Bitset used(p.num_columns);
    int bound = 0;
    for (const BinateRow& r : p.rows) {
      if (row_satisfied(r, assigned, value)) continue;
      Bitset free_neg = r.neg;
      free_neg.subtract(assigned);
      if (free_neg.any()) continue;  // can be satisfied for free
      Bitset free_pos = r.pos;
      free_pos.subtract(assigned);
      if (free_pos.empty() || free_pos.intersects(used)) continue;
      used |= free_pos;
      int cheapest = std::numeric_limits<int>::max();
      free_pos.for_each([&](std::size_t c) {
        cheapest = std::min(cheapest, column_weight(p, c));
      });
      bound += cheapest;
    }
    return bound;
  }

  void solve(Bitset assigned, Bitset value, int cost) {
    if (budget_exhausted) return;
    if (++nodes > opts.max_nodes) {
      budget_exhausted = true;
      return;
    }
    if (cost >= best_cost) return;

    // Unit propagation to fixpoint.
    bool changed = true;
    while (changed) {
      changed = false;
      for (const BinateRow& r : p.rows) {
        if (row_satisfied(r, assigned, value)) continue;
        Bitset free_pos = r.pos;
        free_pos.subtract(assigned);
        Bitset free_neg = r.neg;
        free_neg.subtract(assigned);
        const std::size_t nfree = free_pos.count() + free_neg.count();
        if (nfree == 0) return;  // conflict
        if (nfree == 1) {
          if (free_pos.any()) {
            const std::size_t c = free_pos.first();
            assigned.set(c);
            value.set(c);
            cost += column_weight(p, c);
            if (cost >= best_cost) return;
          } else {
            const std::size_t c = free_neg.first();
            assigned.set(c);
          }
          changed = true;
        }
      }
    }

    // Find the unsatisfied row with the fewest free literals.
    const BinateRow* pivot = nullptr;
    std::size_t pivot_free = std::numeric_limits<std::size_t>::max();
    for (const BinateRow& r : p.rows) {
      if (row_satisfied(r, assigned, value)) continue;
      Bitset free_pos = r.pos;
      free_pos.subtract(assigned);
      Bitset free_neg = r.neg;
      free_neg.subtract(assigned);
      const std::size_t nfree = free_pos.count() + free_neg.count();
      if (nfree < pivot_free) {
        pivot_free = nfree;
        pivot = &r;
      }
    }
    if (pivot == nullptr) {
      // All rows satisfied; unassigned columns default to unselected.
      found = true;
      best_cost = cost;
      best_columns.clear();
      Bitset sel = value;
      sel &= assigned;
      sel.for_each([&](std::size_t c) { best_columns.push_back(c); });
      return;
    }

    if (cost + lower_bound(assigned, value) >= best_cost) return;

    // Branch on a free literal of the pivot row: prefer the cost-free
    // direction (negative literal, i.e. leave the column unselected) first.
    Bitset free_neg = pivot->neg;
    free_neg.subtract(assigned);
    std::size_t var;
    if (free_neg.any())
      var = free_neg.first();
    else {
      Bitset free_pos = pivot->pos;
      free_pos.subtract(assigned);
      assert(free_pos.any());
      var = free_pos.first();
    }

    // Branch A: var = 0 (unselected).
    {
      Bitset a = assigned, v = value;
      a.set(var);
      v.reset(var);
      solve(std::move(a), std::move(v), cost);
    }
    // Branch B: var = 1 (selected).
    {
      Bitset a = assigned, v = value;
      a.set(var);
      v.set(var);
      solve(std::move(a), std::move(v), cost + column_weight(p, var));
    }
  }
};

}  // namespace

BinateCoverSolution solve_binate_cover(const BinateCoverProblem& p,
                                       const BinateCoverOptions& options) {
  Search search(p, options);
  search.solve(Bitset(p.num_columns), Bitset(p.num_columns), 0);
  BinateCoverSolution sol;
  sol.feasible = search.found;
  sol.optimal = search.found && !search.budget_exhausted;
  sol.columns = search.best_columns;
  sol.cost = search.best_cost == std::numeric_limits<int>::max()
                 ? 0
                 : search.best_cost;
  sol.nodes_explored = search.nodes;
  return sol;
}

}  // namespace encodesat
