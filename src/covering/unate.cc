#include "covering/unate.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

#include "obs/counters.h"
#include "obs/trace.h"
#include "util/term_arena.h"
#include "util/thread_pool.h"

namespace encodesat {

namespace {

int column_weight(const UnateCoverProblem& p, std::size_t c) {
  return p.weights.empty() ? 1 : p.weights[c];
}

// Search state shared across the branch-and-bound recursion. Rows are
// immutable; a node is characterized by the set of excluded columns and the
// set of still-uncovered rows.
//
// All working sets live in two TermArenas (util/term_arena.h): `col_sets`
// holds column sets (the immutable row→columns table, the exclusion set and
// the per-node available-column sets), `row_sets` holds row sets (the
// covered-rows mask). Each solve() frame owns the refs it receives and the
// per-node scratch it allocates; TermGuard returns them to the free list on
// every exit path, so the recursion performs no per-node heap allocation
// for set data — the arena high-water mark is O(depth · active rows).
struct Search {
  const UnateCoverProblem& p;
  const UnateCoverOptions& opts;
  ExecContext ctx;
  TermArena col_sets;
  TermArena row_sets;
  std::vector<TermRef> row_cols;  // row -> its column set (immutable)
  std::uint64_t nodes = 0;
  bool budget_exhausted = false;
  Truncation truncation = Truncation::kNone;
  int best_cost = std::numeric_limits<int>::max();
  std::vector<std::size_t> best_columns;

  Search(const UnateCoverProblem& problem, const UnateCoverOptions& options,
         const ExecContext& context)
      : p(problem),
        opts(options),
        ctx(context),
        col_sets(problem.num_columns, problem.rows.size() + 64),
        row_sets(problem.rows.size(), 64) {
    row_cols.reserve(p.rows.size());
    for (const Bitset& r : p.rows) row_cols.push_back(col_sets.from_bitset(r));
  }

  void record(const std::vector<std::size_t>& selected, int cost) {
    if (cost < best_cost) {
      best_cost = cost;
      best_columns = selected;
    }
  }

  // Greedy maximal-independent-set lower bound: a set of pairwise
  // column-disjoint uncovered rows; any cover pays at least the cheapest
  // column of each row in the set. `acount` caches the avail popcounts.
  int lower_bound(const std::vector<TermRef>& avail,
                  const std::vector<std::uint32_t>& acount,
                  std::vector<std::size_t>& order, TermRef used) {
    // Consider short rows first: they are more likely to be independent and
    // carry tighter bounds.
    order.resize(avail.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return acount[a] < acount[b];
    });
    int bound = 0;
    for (std::size_t i : order) {
      if (col_sets.intersects(avail[i], used)) continue;
      col_sets.or_into(used, avail[i]);
      int cheapest = std::numeric_limits<int>::max();
      col_sets.for_each(avail[i], [&](std::size_t c) {
        cheapest = std::min(cheapest, column_weight(p, c));
      });
      bound += cheapest;
    }
    return bound;
  }

  // Takes ownership of `excluded` (col_sets) and `covered` (row_sets).
  void solve(TermRef excluded, TermRef covered,
             std::vector<std::size_t> selected, int cost) {
    TermGuard cguard(col_sets);
    TermGuard rguard(row_sets);
    cguard.track(excluded);
    rguard.track(covered);
    if (budget_exhausted) return;
    if (++nodes > opts.max_nodes) {
      budget_exhausted = true;
      truncation = Truncation::kNodeLimit;
      return;
    }
    // Shared-budget checks: a cheap exhaustion flag every node (catches a
    // limit tripped by a sibling component's thread), a clock poll every
    // 1024 nodes. Either way the greedy/best-so-far cover stays valid.
    if (ctx.exhausted() || ((nodes & 1023u) == 0 && !ctx.poll())) {
      budget_exhausted = true;
      truncation = ctx.reason();
      return;
    }

    // --- Reductions to fixpoint -----------------------------------------
    const TermRef tmp = cguard.track(col_sets.alloc());
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t r = 0; r < p.rows.size(); ++r) {
        if (row_sets.test(covered, r)) continue;
        col_sets.andnot_of(tmp, row_cols[r], excluded);
        const std::size_t n = col_sets.count(tmp);
        if (n == 0) return;  // row uncoverable: dead branch
        if (n == 1) {
          // Essential column.
          const std::size_t c = col_sets.first(tmp);
          selected.push_back(c);
          cost += column_weight(p, c);
          if (cost >= best_cost) return;
          for (std::size_t q = 0; q < p.rows.size(); ++q)
            if (!row_sets.test(covered, q) && p.rows[q].test(c))
              row_sets.set(covered, q);
          changed = true;
        }
      }
    }

    // Collect active rows and their available column sets.
    std::vector<std::size_t> active;
    std::vector<TermRef> avail;
    std::vector<std::uint32_t> acount;
    for (std::size_t r = 0; r < p.rows.size(); ++r) {
      if (!row_sets.test(covered, r)) {
        const TermRef a = cguard.track(col_sets.alloc());
        col_sets.andnot_of(a, row_cols[r], excluded);
        active.push_back(r);
        avail.push_back(a);
        acount.push_back(static_cast<std::uint32_t>(col_sets.count(a)));
      }
    }
    if (active.empty()) {
      record(selected, cost);
      return;
    }

    // Row dominance: if avail[i] ⊆ avail[j], covering row i covers row j,
    // so row j can be dropped. Quadratic — only worth it on smallish sets.
    if (active.size() <= 512) {
      std::vector<bool> drop(active.size(), false);
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (drop[i]) continue;
        for (std::size_t j = 0; j < active.size(); ++j) {
          if (i == j || drop[j]) continue;
          if (acount[i] > acount[j]) continue;
          if (col_sets.is_subset(avail[i], avail[j]) &&
              !(acount[i] == acount[j] &&
                col_sets.equal(avail[i], avail[j]) && i > j))
            drop[j] = true;
        }
      }
      std::size_t kept = 0;
      for (std::size_t i = 0; i < active.size(); ++i)
        if (!drop[i]) {
          active[kept] = active[i];
          avail[kept] = avail[i];
          acount[kept] = acount[i];
          ++kept;
        }
      active.resize(kept);
      avail.resize(kept);
      acount.resize(kept);
    }

    {
      const TermRef used = cguard.track(col_sets.alloc());
      std::vector<std::size_t> order;
      if (cost + lower_bound(avail, acount, order, used) >= best_cost)
        return;
    }

    // Branch on the most-covering column of the shortest row.
    std::size_t pivot_row = 0;
    for (std::size_t i = 1; i < avail.size(); ++i)
      if (acount[i] < acount[pivot_row]) pivot_row = i;

    std::size_t branch_col = p.num_columns;
    std::size_t best_score = 0;
    col_sets.for_each(avail[pivot_row], [&](std::size_t c) {
      std::size_t score = 0;
      for (std::size_t i = 0; i < avail.size(); ++i)
        if (col_sets.test(avail[i], c)) ++score;
      if (branch_col == p.num_columns || score > best_score ||
          (score == best_score && c < branch_col)) {
        best_score = score;
        branch_col = c;
      }
    });
    assert(branch_col < p.num_columns);

    // Branch 1: select the column.
    {
      const TermRef cov = row_sets.clone(covered);
      for (std::size_t q = 0; q < p.rows.size(); ++q)
        if (!row_sets.test(cov, q) && p.rows[q].test(branch_col))
          row_sets.set(cov, q);
      auto sel = selected;
      sel.push_back(branch_col);
      solve(col_sets.clone(excluded), cov, std::move(sel),
            cost + column_weight(p, branch_col));
    }
    // Branch 2: exclude the column.
    {
      const TermRef exc = col_sets.clone(excluded);
      col_sets.set(exc, branch_col);
      solve(exc, row_sets.clone(covered), std::move(selected), cost);
    }
  }
};

}  // namespace

UnateCoverSolution greedy_unate_cover(const UnateCoverProblem& p) {
  UnateCoverSolution sol;
  Bitset covered(p.rows.size());
  std::size_t remaining = p.rows.size();
  for (const Bitset& r : p.rows)
    if (r.empty()) return sol;  // infeasible

  while (remaining > 0) {
    // Pick the column covering the most uncovered rows per unit weight.
    std::vector<std::size_t> cover_count(p.num_columns, 0);
    for (std::size_t r = 0; r < p.rows.size(); ++r)
      if (!covered.test(r))
        p.rows[r].for_each([&](std::size_t c) { ++cover_count[c]; });
    std::size_t best = p.num_columns;
    double best_ratio = -1.0;
    for (std::size_t c = 0; c < p.num_columns; ++c) {
      if (cover_count[c] == 0) continue;
      const double ratio =
          static_cast<double>(cover_count[c]) / column_weight(p, c);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = c;
      }
    }
    if (best == p.num_columns) return sol;  // cannot make progress
    sol.columns.push_back(best);
    sol.cost += column_weight(p, best);
    for (std::size_t r = 0; r < p.rows.size(); ++r)
      if (!covered.test(r) && p.rows[r].test(best)) {
        covered.set(r);
        --remaining;
      }
  }
  sol.feasible = true;
  std::sort(sol.columns.begin(), sol.columns.end());
  return sol;
}

namespace {

// Root-level column reduction: a column is dominated when another column
// covers a superset of its rows at no greater weight; dominated columns can
// never be needed in an optimal cover. This typically collapses thousands
// of prime-dichotomy columns to a few hundred distinct useful ones.
struct ReducedProblem {
  UnateCoverProblem problem;
  std::vector<std::size_t> column_map;  // reduced column -> original column
};

ReducedProblem reduce_columns(const UnateCoverProblem& p) {
  const std::size_t rows = p.rows.size();
  // Coverage set per column.
  std::vector<Bitset> coverage(p.num_columns, Bitset(rows));
  for (std::size_t r = 0; r < rows; ++r)
    p.rows[r].for_each([&](std::size_t c) { coverage[c].set(r); });

  auto weight = [&](std::size_t c) { return column_weight(p, c); };

  // Sort candidates by (coverage size desc, weight asc) so a dominating
  // column precedes the columns it dominates; then a forward keep-scan.
  std::vector<std::size_t> order;
  order.reserve(p.num_columns);
  for (std::size_t c = 0; c < p.num_columns; ++c)
    if (coverage[c].any()) order.push_back(c);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const std::size_t ca = coverage[a].count(), cb = coverage[b].count();
    if (ca != cb) return ca > cb;
    if (weight(a) != weight(b)) return weight(a) < weight(b);
    return a < b;
  });
  std::vector<std::size_t> kept;
  for (std::size_t c : order) {
    bool dominated = false;
    for (std::size_t k : kept) {
      if (weight(k) <= weight(c) && coverage[c].is_subset_of(coverage[k])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) kept.push_back(c);
  }

  ReducedProblem out;
  out.column_map = kept;
  out.problem.num_columns = kept.size();
  if (!p.weights.empty()) {
    out.problem.weights.reserve(kept.size());
    for (std::size_t c : kept) out.problem.weights.push_back(p.weights[c]);
  }
  out.problem.rows.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    Bitset row(kept.size());
    for (std::size_t i = 0; i < kept.size(); ++i)
      if (p.rows[r].test(kept[i])) row.set(i);
    out.problem.rows.push_back(std::move(row));
  }
  return out;
}

}  // namespace

namespace {

// Greedy seed + branch-and-bound over an already column-reduced problem;
// columns are returned in the reduced space. Runs single-threaded — the
// parallelism lives one level up, across independent components.
UnateCoverSolution solve_reduced(const UnateCoverProblem& q,
                                 const UnateCoverOptions& options,
                                 const ExecContext& ctx) {
  TRACE_SCOPE(ctx, "unate_component");
  UnateCoverSolution greedy = greedy_unate_cover(q);
  if (!greedy.feasible) return greedy;

  UnateCoverSolution sol;
  sol.feasible = true;
  sol.cost = greedy.cost;
  sol.columns = greedy.columns;
  sol.columns_after_reduction = q.num_columns;
  if (options.max_nodes > 0) {
    Search search(q, options, ctx);
    search.best_cost = greedy.cost;
    search.best_columns = greedy.columns;
    search.solve(search.col_sets.alloc(), search.row_sets.alloc(), {}, 0);
    sol.optimal = !search.budget_exhausted;
    sol.truncation = search.truncation;
    sol.columns = search.best_columns;
    sol.cost = search.best_cost;
    sol.nodes_explored = search.nodes;
    sol.arena_allocs =
        search.col_sets.total_allocs() + search.row_sets.total_allocs();
    sol.arena_reuses =
        search.col_sets.total_reuses() + search.row_sets.total_reuses();
    sol.peak_arena_bytes =
        search.col_sets.peak_bytes() + search.row_sets.peak_bytes();
  } else {
    // Greedy only, by configuration: no optimality proof was attempted.
    sol.truncation = Truncation::kNodeLimit;
  }
  return sol;
}

// Union-find with path halving over the reduced columns.
std::size_t dsu_find(std::vector<std::size_t>& parent, std::size_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

}  // namespace

UnateCoverSolution solve_unate_cover(const UnateCoverProblem& p,
                                     const UnateCoverOptions& options,
                                     const ExecContext& ctx) {
  StageScope stage(ctx, "unate_cover");
  for (const Bitset& r : p.rows)
    if (r.empty()) return UnateCoverSolution{};  // infeasible

  ReducedProblem reduced;
  {
    TRACE_SCOPE(stage.ctx(), "reduce_columns");
    reduced = reduce_columns(p);
  }
  const UnateCoverProblem& q = reduced.problem;

  // Independent-subproblem fan-out: rows that share no columns (after
  // reduction) can be covered independently, and the union of the
  // per-component optima is a global optimum. Components are discovered by
  // union-find over the columns of each row.
  std::vector<std::size_t> parent(q.num_columns);
  std::iota(parent.begin(), parent.end(), 0);
  for (const Bitset& row : q.rows) {
    const std::size_t first = dsu_find(parent, row.first());
    row.for_each([&](std::size_t c) { parent[dsu_find(parent, c)] = first; });
  }
  // Number components in column order so the decomposition — and therefore
  // the merged solution — is independent of scheduling.
  std::vector<std::size_t> comp_of_col(q.num_columns);
  std::vector<std::size_t> roots;
  for (std::size_t c = 0; c < q.num_columns; ++c) {
    const std::size_t r = dsu_find(parent, c);
    auto it = std::find(roots.begin(), roots.end(), r);
    if (it == roots.end()) {
      roots.push_back(r);
      it = roots.end() - 1;
    }
    comp_of_col[c] = static_cast<std::size_t>(it - roots.begin());
  }
  const std::size_t num_components = roots.size();

  UnateCoverSolution sol;
  if (num_components <= 1) {
    sol = solve_reduced(
        q, options,
        ExecContext{ctx.budget, nullptr, 1, ctx.tracer, ctx.metrics});
  } else {
    // Build one subproblem per component (columns and rows renumbered).
    std::vector<UnateCoverProblem> subs(num_components);
    std::vector<std::vector<std::size_t>> col_maps(num_components);
    std::vector<std::size_t> local_of_col(q.num_columns);
    for (std::size_t c = 0; c < q.num_columns; ++c) {
      auto& map = col_maps[comp_of_col[c]];
      local_of_col[c] = map.size();
      map.push_back(c);
    }
    for (std::size_t k = 0; k < num_components; ++k) {
      subs[k].num_columns = col_maps[k].size();
      if (!q.weights.empty()) {
        subs[k].weights.reserve(col_maps[k].size());
        for (std::size_t c : col_maps[k])
          subs[k].weights.push_back(q.weights[c]);
      }
    }
    for (const Bitset& row : q.rows) {
      const std::size_t k = comp_of_col[row.first()];
      Bitset local(subs[k].num_columns);
      row.for_each([&](std::size_t c) { local.set(local_of_col[c]); });
      subs[k].rows.push_back(std::move(local));
    }

    // Each component gets the full node budget and a private result slot,
    // so the merged outcome is bit-identical for every thread count (only
    // wall-clock deadlines can break the tie, by design).
    std::vector<UnateCoverSolution> results(num_components);
    const ExecContext sub_ctx{ctx.budget, nullptr, 1, ctx.tracer,
                              ctx.metrics};
    parallel_for(num_components, ctx.num_threads, [&](std::size_t k) {
      results[k] = solve_reduced(subs[k], options, sub_ctx);
    });

    sol.feasible = true;
    sol.optimal = true;
    for (std::size_t k = 0; k < num_components; ++k) {
      const UnateCoverSolution& r = results[k];
      if (!r.feasible) return UnateCoverSolution{};
      sol.cost += r.cost;
      sol.nodes_explored += r.nodes_explored;
      sol.arena_allocs += r.arena_allocs;
      sol.arena_reuses += r.arena_reuses;
      sol.peak_arena_bytes = std::max(sol.peak_arena_bytes,
                                      r.peak_arena_bytes);
      sol.optimal = sol.optimal && r.optimal;
      if (sol.truncation == Truncation::kNone) sol.truncation = r.truncation;
      for (std::size_t c : r.columns) sol.columns.push_back(col_maps[k][c]);
    }
  }
  sol.columns_after_reduction = q.num_columns;
  sol.components = num_components == 0 ? 1 : num_components;

  for (auto& c : sol.columns) c = reduced.column_map[c];
  std::sort(sol.columns.begin(), sol.columns.end());
  sol.truncated = sol.truncation != Truncation::kNone;
  stage.add_items(sol.nodes_explored);
  stage.set_truncation(sol.truncation);
  // Per-component node/arena totals are deterministic (private budgets,
  // summed in component order), so they are fingerprint-safe.
  metric_add(ctx, "cover.nodes", sol.nodes_explored);
  metric_add(ctx, "cover.components", sol.components);
  metric_add(ctx, "cover.arena_allocs", sol.arena_allocs);
  metric_add(ctx, "cover.arena_reuses", sol.arena_reuses);
  metric_max(ctx, "cover.peak_arena_bytes", sol.peak_arena_bytes);
  return sol;
}

}  // namespace encodesat
