// Binate covering: minimum-cost satisfaction of a product-of-sums with
// positive and negative literals (Section 4 of the paper abstracts all
// encoding-constraint satisfaction as this problem; we also use it for the
// distance-2 and non-face constraint extensions of Section 8).
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitset.h"

namespace encodesat {

/// One clause: satisfied if some variable in `pos` is selected or some
/// variable in `neg` is unselected.
struct BinateRow {
  Bitset pos;
  Bitset neg;
};

struct BinateCoverProblem {
  std::size_t num_columns = 0;
  /// Per-column selection weights; empty means unit weights.
  std::vector<int> weights;
  std::vector<BinateRow> rows;

  /// Appends a clause given explicit literal lists.
  void add_row(const std::vector<std::size_t>& pos_cols,
               const std::vector<std::size_t>& neg_cols);
};

struct BinateCoverOptions {
  std::uint64_t max_nodes = 5'000'000;
};

struct BinateCoverSolution {
  bool feasible = false;
  bool optimal = false;
  /// Selected columns (variables assigned 1).
  std::vector<std::size_t> columns;
  int cost = 0;
  std::uint64_t nodes_explored = 0;
};

/// Branch-and-bound DPLL-style search with unit propagation and an
/// independent-row lower bound over the purely-positive residual rows.
BinateCoverSolution solve_binate_cover(const BinateCoverProblem& problem,
                                       const BinateCoverOptions& options = {});

}  // namespace encodesat
