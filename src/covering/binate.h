// Binate covering: minimum-cost satisfaction of a product-of-sums with
// positive and negative literals (Section 4 of the paper abstracts all
// encoding-constraint satisfaction as this problem; we also use it for the
// distance-2 and non-face constraint extensions of Section 8).
//
// The solver mirrors covering/unate.cc: root reductions (unit rows, pure
// literals, row dominance, column dominance on the pure-positive
// subtable), decomposition into independent components searched
// concurrently with bit-identical results for every thread count, an
// arena-backed explicit-stack branch-and-bound with unit propagation, and
// a maximal-independent-set lower bound over the pure-positive residual
// rows.
//
// Truncation honesty: a budget that expires before the search finishes is
// *never* an infeasibility certificate. Proven infeasibility is exactly
// `!feasible && !truncated`; `!feasible && truncated` means "unknown —
// the budget ran out first" and callers must surface it as truncation.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitset.h"
#include "util/exec.h"

namespace encodesat {

/// One clause: satisfied if some variable in `pos` is selected or some
/// variable in `neg` is unselected.
struct BinateRow {
  Bitset pos;
  Bitset neg;
};

struct BinateCoverProblem {
  std::size_t num_columns = 0;
  /// Per-column selection weights; empty means unit weights. When
  /// non-empty the size must equal `num_columns` (checked by
  /// solve_binate_cover, matching the Bitset mismatched-universe policy).
  std::vector<int> weights;
  std::vector<BinateRow> rows;

  /// Appends a clause given explicit literal lists. Throws
  /// std::invalid_argument on a column index >= num_columns.
  void add_row(const std::vector<std::size_t>& pos_cols,
               const std::vector<std::size_t>& neg_cols);
};

struct BinateCoverOptions {
  /// Branch-and-bound node budget per independent component (the same
  /// full-budget-per-component rule as unate, so the decomposition is
  /// thread-count invariant).
  std::uint64_t max_nodes = 5'000'000;
};

struct BinateCoverSolution {
  /// True when a satisfying selection was found. False means *either*
  /// proven infeasible (`truncated == false`) or unknown because a budget
  /// expired first (`truncated == true`) — check `truncated` before
  /// treating it as a certificate.
  bool feasible = false;
  /// True when branch-and-bound proved optimality within every budget.
  bool optimal = false;
  /// Selected columns (variables assigned 1), ascending.
  std::vector<std::size_t> columns;
  /// Total weight of `columns`. Meaningful only when `feasible`; -1
  /// otherwise (so "no solution" can never be mistaken for a legitimate
  /// zero-cost cover of an empty problem).
  int cost = -1;
  std::uint64_t nodes_explored = 0;
  /// Unit-propagation forced assignments (root + search), and
  /// cost-/bound-based subtree prunes.
  std::uint64_t propagations = 0;
  std::uint64_t prune_hits = 0;
  /// Free columns surviving the root reduction (the search ran over
  /// these); see the covering bench.
  std::size_t columns_after_reduction = 0;
  /// Independent connected components the root decomposed the search into.
  std::size_t components = 1;
  /// Search-arena traffic summed over components (column + row sets):
  /// fresh slot creations and free-list reuses. Deterministic across
  /// thread counts — each component runs single-threaded with a private
  /// node budget.
  std::uint64_t arena_allocs = 0;
  std::uint64_t arena_reuses = 0;
  /// Largest single-component arena footprint in bytes.
  std::size_t peak_arena_bytes = 0;
  /// Uniform truncation shape (see docs/API.md): `truncated` always
  /// mirrors `truncation != Truncation::kNone`.
  bool truncated = false;
  /// Why the search stopped early (kNone on a complete run): kNodeLimit
  /// for the per-component node budget, kDeadline/kWorkBudget/kCancelled
  /// for a shared Budget on `ctx`.
  Truncation truncation = Truncation::kNone;

  /// The search ran to completion and found no cover — a certificate.
  bool proven_infeasible() const { return !feasible && !truncated; }
};

/// DPLL-style branch-and-bound with unit propagation, root reductions and
/// component decomposition. After the root reduction the problem splits
/// into its connected components (rows sharing no columns), each searched
/// independently with its own `max_nodes` budget — and, when
/// `ctx.num_threads` > 1, concurrently. The selected columns are identical
/// for every thread count; `ctx.budget` (deadline/cancellation, polled
/// every 1024 nodes) only affects whether the search completes. Throws
/// std::invalid_argument when `weights` is non-empty with a size other
/// than `num_columns`, or when a row's universe differs from it.
BinateCoverSolution solve_binate_cover(const BinateCoverProblem& problem,
                                       const BinateCoverOptions& options = {},
                                       const ExecContext& ctx = {});

}  // namespace encodesat
