// Exact and heuristic unate covering.
//
// The final step of the paper's exact encoder (Fig. 7) selects a minimum
// set of prime encoding-dichotomies covering every initial
// encoding-dichotomy — a classical unate covering problem. The solver uses
// the standard reductions (essential columns, row dominance, column
// dominance) plus a maximal-independent-set lower bound inside
// branch-and-bound, with a node budget so callers can fall back to the
// greedy solution on pathological instances.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitset.h"
#include "util/exec.h"

namespace encodesat {

struct UnateCoverProblem {
  /// Number of selectable columns.
  std::size_t num_columns = 0;
  /// Per-column weights; empty means unit weights.
  std::vector<int> weights;
  /// rows[i] = the set of columns that cover row i (universe num_columns).
  std::vector<Bitset> rows;
};

struct UnateCoverOptions {
  /// Branch-and-bound node budget; 0 means greedy only.
  std::uint64_t max_nodes = 2'000'000;
};

struct UnateCoverSolution {
  bool feasible = false;
  /// True when branch-and-bound proved optimality within the node budget.
  bool optimal = false;
  std::vector<std::size_t> columns;
  int cost = 0;
  std::uint64_t nodes_explored = 0;
  /// Columns surviving the root coverage-dominance reduction (the search
  /// ran over these; see the ablation bench).
  std::size_t columns_after_reduction = 0;
  /// Independent connected components the root decomposed the search into.
  std::size_t components = 1;
  /// Search-arena traffic, summed over components (col_sets + row_sets):
  /// fresh slot creations and free-list reuses. Deterministic across thread
  /// counts — each component runs single-threaded with a private budget.
  std::uint64_t arena_allocs = 0;
  std::uint64_t arena_reuses = 0;
  /// Largest single-component arena footprint in bytes.
  std::size_t peak_arena_bytes = 0;
  /// Uniform truncation shape (see docs/API.md): `truncated` always mirrors
  /// `truncation != Truncation::kNone`.
  bool truncated = false;
  /// Why optimality was not proved (kNone when `optimal`): kNodeLimit for
  /// the node budget, kDeadline/kWorkBudget/kCancelled for a shared Budget.
  Truncation truncation = Truncation::kNone;
};

/// Solves min-cost column selection such that every row contains a selected
/// column. Infeasible iff some row is empty. After the root reduction the
/// problem splits into its connected components (rows sharing no columns),
/// each searched independently with its own `max_nodes` budget — and, when
/// `ctx.num_threads` > 1, concurrently. The selected columns are identical
/// for every thread count; `ctx.budget` (deadline/cancellation, polled
/// every 1024 nodes) only affects whether optimality is proved.
UnateCoverSolution solve_unate_cover(const UnateCoverProblem& problem,
                                     const UnateCoverOptions& options = {},
                                     const ExecContext& ctx = {});

/// Greedy (largest cover-count / weight first) — used as the upper bound
/// seed and as the standalone heuristic solver.
UnateCoverSolution greedy_unate_cover(const UnateCoverProblem& problem);

}  // namespace encodesat
