// Seeded random constraint-set generator for the differential fuzzing
// subsystem (src/fuzz/).
//
// Cases are generated from a per-case seed derived with a splitmix64 step
// from (run seed, case index), so the case stream is bit-identical for a
// given run seed regardless of how the driver schedules cases across
// threads. The generator is parameterized over symbol count, the mix of
// constraint classes, encoding don't-care density, and a rate of
// deliberately infeasible mutations (mutual dominance, dominance cycles,
// disjunctive/dominance clashes that force equal codes, and the paper's
// Figure 4 pattern — the counterexample on which the Devadas–Newton local
// check wrongly answers "feasible").
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/constraints.h"

namespace encodesat {

struct GeneratorOptions {
  std::uint32_t min_symbols = 3;
  std::uint32_t max_symbols = 10;

  /// Relative class weights for each generated constraint; a weight of 0
  /// disables the class. Classes needing >= 3 symbols are skipped on
  /// smaller cases regardless of weight.
  double face_weight = 1.0;
  double dominance_weight = 0.8;
  double disjunctive_weight = 0.4;
  double extended_weight = 0.25;
  double distance2_weight = 0.1;
  double nonface_weight = 0.1;

  /// Expected number of constraints = constraints_per_symbol * n (min 1).
  double constraints_per_symbol = 0.9;
  /// Probability that a symbol outside a face's members joins its
  /// encoding don't-care set (Section 8.1).
  double dontcare_density = 0.25;
  /// Probability that a case receives one deliberately infeasible
  /// mutation on top of its random constraints.
  double infeasible_mutation_rate = 0.2;
};

/// Named mix presets for the CLI's --mix flag:
///   default     the GeneratorOptions defaults above
///   input       face constraints only, heavier don't-cares, no mutations
///   output      dominance/disjunctive/extended-heavy, more mutations
///   extensions  distance-2/non-face boosted (binate extension pipeline)
///   infeasible  every case receives an infeasible mutation
/// Returns std::nullopt for an unknown name.
std::optional<GeneratorOptions> generator_mix(const std::string& name);

/// Derives the per-case seed from the run seed and case index (one
/// splitmix64 mixing step — cases are independent and order-free).
std::uint64_t fuzz_case_seed(std::uint64_t run_seed, std::uint64_t index);

/// Generates one random constraint set from a per-case seed. Symbols are
/// named s0..s{n-1}; every emitted constraint is well formed under
/// parse_constraints' degeneracy rules, so generated cases round-trip
/// through reproducer files.
ConstraintSet generate_case(std::uint64_t case_seed,
                            const GeneratorOptions& opts = {});

}  // namespace encodesat
