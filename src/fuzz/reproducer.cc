#include "fuzz/reproducer.h"

#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace encodesat {

namespace {

// Strips one "# key: value" metadata line; false when the line is not a
// comment or carries no key.
bool parse_meta_line(const std::string& raw, std::string* key,
                     std::string* value) {
  std::string line{trim(raw)};
  if (line.empty() || line[0] != '#') return false;
  line = std::string{trim(line.substr(1))};
  const std::size_t colon = line.find(':');
  if (colon == std::string::npos) return false;
  *key = std::string{trim(line.substr(0, colon))};
  *value = std::string{trim(line.substr(colon + 1))};
  return !key->empty();
}

std::uint64_t parse_u64(const std::string& s) {
  try {
    return std::stoull(s);
  } catch (...) {
    return 0;
  }
}

}  // namespace

std::string reproducer_to_text(const FuzzReproducer& r) {
  std::ostringstream out;
  out << "# encodesat-fuzz-reproducer v1\n";
  out << "# seed: " << r.run_seed << "\n";
  out << "# case: " << r.case_index << "\n";
  if (!r.rule.empty()) out << "# rule: " << r.rule << "\n";
  if (!r.detail.empty()) {
    // The detail must stay one comment line to keep the body parseable.
    std::string d = r.detail;
    for (char& c : d)
      if (c == '\n' || c == '\r') c = ' ';
    out << "# detail: " << d << "\n";
  }
  out << "# minimized: " << (r.minimized ? "yes" : "no") << "\n";
  out << r.constraints.to_string();
  return out.str();
}

std::optional<FuzzReproducer> parse_reproducer(const std::string& text,
                                               ParseError* error) {
  FuzzReproducer r;
  std::istringstream in(text);
  std::string raw, key, value;
  while (std::getline(in, raw)) {
    if (!parse_meta_line(raw, &key, &value)) continue;
    if (key == "seed")
      r.run_seed = parse_u64(value);
    else if (key == "case")
      r.case_index = parse_u64(value);
    else if (key == "rule")
      r.rule = value;
    else if (key == "detail")
      r.detail = value;
    else if (key == "minimized")
      r.minimized = value == "yes";
  }
  auto cs = parse_constraints(text, error);
  if (!cs) return std::nullopt;
  r.constraints = std::move(*cs);
  return r;
}

bool write_reproducer_file(const std::string& path, const FuzzReproducer& r) {
  std::ofstream out(path);
  if (!out) return false;
  out << reproducer_to_text(r);
  return static_cast<bool>(out);
}

std::optional<FuzzReproducer> load_reproducer_file(const std::string& path,
                                                   ParseError* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = ParseError{0, 0, "cannot open " + path};
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_reproducer(buf.str(), error);
}

std::string reproducer_filename(const FuzzReproducer& r) {
  return "seed" + std::to_string(r.run_seed) + "_case" +
         std::to_string(r.case_index) + "_" +
         (r.rule.empty() ? "case" : r.rule) + ".repro";
}

}  // namespace encodesat
