#include "fuzz/differential.h"

#include <algorithm>

#include "baseline/annealing.h"
#include "baseline/nova.h"
#include "cache/canonical.h"
#include "cache/solve_cache.h"
#include "core/bounded.h"
#include "core/local_check.h"
#include "core/solver.h"
#include "core/verify.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace encodesat {

namespace {

// Serializes the deterministic part of a stats tree (name, work, items,
// truncation — wall-clock excluded) for run-to-run comparison. Covers the
// arena fold counters, which the prime-generation stage reports as work.
void stats_fingerprint(const StageStats& s, std::string& out) {
  out += s.name;
  out += '{';
  out += std::to_string(s.work);
  out += ',';
  out += std::to_string(s.items);
  out += ',';
  out += truncation_name(s.truncation);
  for (const StageStats& c : s.children) {
    out += ';';
    stats_fingerprint(c, out);
  }
  out += '}';
}

std::string stats_fingerprint(const StageStats& s) {
  std::string out;
  stats_fingerprint(s, out);
  return out;
}

const char* status_name(SolveResult::Status s) {
  switch (s) {
    case SolveResult::Status::kEncoded: return "encoded";
    case SolveResult::Status::kInfeasible: return "infeasible";
    case SolveResult::Status::kTruncated: return "truncated";
  }
  return "?";
}

SolveOptions solve_options(const DifferentialOptions& opts, int threads) {
  SolveOptions so;
  so.exec.threads = threads;
  so.exec.max_work = opts.max_work_per_case;
  so.exact.cover_options.max_nodes = opts.max_cover_nodes;
  so.extensions.cover_options.max_nodes = opts.max_cover_nodes;
  return so;
}

bool counters_equal(const SolveResult& a, const SolveResult& b) {
  return a.num_initial == b.num_initial && a.num_raised == b.num_raised &&
         a.num_primes == b.num_primes &&
         a.num_valid_primes == b.num_valid_primes &&
         a.num_candidates == b.num_candidates &&
         a.num_aux_columns == b.num_aux_columns &&
         a.nodes_explored == b.nodes_explored;
}

std::size_t count_kind(const std::vector<Violation>& vs, Violation::Kind k) {
  return static_cast<std::size_t>(
      std::count_if(vs.begin(), vs.end(),
                    [&](const Violation& v) { return v.kind == k; }));
}

}  // namespace

const char* fuzz_rule_name(FuzzRule rule) {
  switch (rule) {
    case FuzzRule::kOracle: return "oracle";
    case FuzzRule::kFeasibility: return "feasibility";
    case FuzzRule::kLocalUnsound: return "local_unsound";
    case FuzzRule::kWitness: return "witness";
    case FuzzRule::kThreads: return "threads";
    case FuzzRule::kStats: return "stats";
    case FuzzRule::kBaselineFeasible: return "baseline_feasible";
    case FuzzRule::kBaselineCodes: return "baseline_codes";
    case FuzzRule::kMinimality: return "minimality";
    case FuzzRule::kBoundedCodes: return "bounded_codes";
    case FuzzRule::kCost: return "cost";
    case FuzzRule::kCounters: return "counters";
    case FuzzRule::kHistograms: return "histograms";
    case FuzzRule::kCache: return "cache";
    case FuzzRule::kBinateTruncation: return "binate_truncation";
  }
  return "unknown";
}

bool fuzz_rule_from_name(const std::string& name, FuzzRule* rule) {
  static constexpr FuzzRule kAll[] = {
      FuzzRule::kOracle,       FuzzRule::kFeasibility,
      FuzzRule::kLocalUnsound, FuzzRule::kWitness,
      FuzzRule::kThreads,      FuzzRule::kStats,
      FuzzRule::kBaselineFeasible, FuzzRule::kBaselineCodes,
      FuzzRule::kMinimality,   FuzzRule::kBoundedCodes,
      FuzzRule::kCost,         FuzzRule::kCounters,
      FuzzRule::kHistograms,   FuzzRule::kCache,
      FuzzRule::kBinateTruncation,
  };
  for (FuzzRule r : kAll)
    if (name == fuzz_rule_name(r)) {
      if (rule) *rule = r;
      return true;
    }
  return false;
}

FuzzCaseResult run_differential_case(const ConstraintSet& cs,
                                     const DifferentialOptions& opts) {
  FuzzCaseResult out;
  const std::uint32_t n = cs.num_symbols();
  if (n < 2) return out;
  auto diverge = [&](FuzzRule rule, std::string detail) {
    out.divergences.push_back(FuzzDivergence{rule, std::move(detail)});
  };

  // P-1 feasibility with evidence, and the local necessary-conditions
  // check it subsumes.
  Solver solver(cs);
  const FeasibilityResult feas = solver.feasibility();
  out.feasible = feas.feasible;
  if (!local_consistency_feasible(cs) && feas.feasible)
    diverge(FuzzRule::kLocalUnsound,
            "local necessary conditions fail but exact check says feasible");
  if (!feas.feasible) {
    std::string why;
    if (!verify_infeasibility_witness(cs, feas, &why))
      diverge(FuzzRule::kWitness, why);
  }

  // Exact / extension encode, sequential and threaded, each with a private
  // counter registry so the structural fingerprints can be compared. Both
  // go through the unified solve() entry point — the same surface the CLI
  // and the service broker use — so the fuzzer also exercises the status
  // mapping layer on every case.
  MetricsRegistry ma, mb;
  SolveRequest req;
  req.constraints = cs;
  req.options = solve_options(opts, 1);
  req.options.exec.metrics = &ma;
  const SolveResult a = solve(req).result;
  req.options = solve_options(opts, opts.alt_threads);
  req.options.exec.metrics = &mb;
  const SolveResult b = solve(req).result;
  out.truncated = a.truncated || b.truncated;
  out.encoded = a.status == SolveResult::Status::kEncoded;

  if (!a.truncated && !b.truncated) {
    if (a.status != b.status || a.encoding.bits != b.encoding.bits ||
        a.encoding.codes != b.encoding.codes || !counters_equal(a, b))
      diverge(FuzzRule::kThreads,
              std::string("threads=1 -> ") + status_name(a.status) + " " +
                  std::to_string(a.encoding.bits) + " bits, threads=" +
                  std::to_string(opts.alt_threads) + " -> " +
                  status_name(b.status) + " " +
                  std::to_string(b.encoding.bits) + " bits");
    if (stats_fingerprint(a.stats) != stats_fingerprint(b.stats))
      diverge(FuzzRule::kStats,
              "stage-stats fingerprints differ between thread counts");
    // Twelfth rule: the counter registries must be structurally identical
    // (same names, same values). Gated on neither run truncating — a
    // deadline or cancellation trips at scheduling-dependent points, and
    // counters accumulated up to the trip legitimately differ.
    if (ma.fingerprint() != mb.fingerprint())
      diverge(FuzzRule::kCounters,
              "counter fingerprints differ between thread counts: threads=1 "
              "-> " +
                  std::to_string(ma.fingerprint_hash()) + ", threads=" +
                  std::to_string(opts.alt_threads) + " -> " +
                  std::to_string(mb.fingerprint_hash()));
    // Fifteenth rule: bucket counts of the fingerprint histograms
    // (solve.work, solve.stage_work) must match across thread counts —
    // the histogram layer's own determinism check, same truncation gate
    // as the counters rule. Duration histograms (in_fingerprint=false)
    // are excluded by construction.
    if (ma.histogram_fingerprint() != mb.histogram_fingerprint())
      diverge(FuzzRule::kHistograms,
              "histogram bucket fingerprints differ between thread counts: "
              "threads=1 -> " +
                  ma.histogram_fingerprint() + ", threads=" +
                  std::to_string(opts.alt_threads) + " -> " +
                  mb.histogram_fingerprint());
  }
  if (opts.metrics) opts.metrics->merge_from(ma);

  const bool has_extensions = !cs.distance2s().empty() || !cs.nonfaces().empty();
  if (!a.truncated) {
    if (out.encoded) {
      const auto violations = verify_encoding(a.encoding, cs);
      if (!violations.empty())
        diverge(FuzzRule::kOracle,
                "encoding fails oracle: " + violations.front().to_string() +
                    (violations.size() > 1
                         ? " (+" + std::to_string(violations.size() - 1) +
                               " more)"
                         : ""));
    }
    // P-1 models face/output constraints only; with §8 extension
    // constraints present it stays necessary but not sufficient.
    if (!has_extensions && out.encoded != feas.feasible)
      diverge(FuzzRule::kFeasibility,
              std::string("feasibility says ") +
                  (feas.feasible ? "feasible" : "infeasible") +
                  " but encode returned " + status_name(a.status));
    if (has_extensions && !feas.feasible &&
        a.status == SolveResult::Status::kEncoded)
      diverge(FuzzRule::kFeasibility,
              "P-1 infeasible but the extension pipeline encoded");
  }

  // Thirteenth rule: cache round-trip. Solve the case with a private warm
  // cache, then a symbol-reversed copy twice — against the warm cache
  // (normally served from the entry the first solve stored) and against a
  // fresh cache at the alternate thread count (recomputed from scratch).
  // The cache-enabled facade solves the canonical instance either way, so
  // the two permuted-copy results must be bit-identical, hit or miss; and
  // when both canonicalizations are exact, the warm lookup must hit.
  if (opts.check_cache && !a.truncated) {
    std::vector<std::uint32_t> rev(n);
    for (std::uint32_t i = 0; i < n; ++i) rev[i] = n - 1 - i;
    const ConstraintSet permuted = apply_symbol_permutation(cs, rev);
    const Solver permuted_solver(permuted);

    const CacheConfig cache_config{/*shards=*/8, opts.cache_max_bytes};
    SolveCache warm(cache_config), fresh(cache_config);
    SolveOptions sw = solve_options(opts, 1);
    sw.cache.store = &warm;
    const SolveResult c1 = solver.encode(sw);
    const SolveResult c2 = permuted_solver.encode(sw);
    SolveOptions sf = solve_options(opts, opts.alt_threads);
    sf.cache.store = &fresh;
    const SolveResult c3 = permuted_solver.encode(sf);

    if (!c1.truncated && !c2.truncated && !c3.truncated) {
      if (c2.status != c3.status || c2.encoding.bits != c3.encoding.bits ||
          c2.encoding.codes != c3.encoding.codes ||
          c2.minimal != c3.minimal || c2.truncation != c3.truncation ||
          !counters_equal(c2, c3))
        diverge(FuzzRule::kCache,
                std::string("warm-cache solve -> ") + status_name(c2.status) +
                    " " + std::to_string(c2.encoding.bits) +
                    " bits, fresh-cache solve -> " + status_name(c3.status) +
                    " " + std::to_string(c3.encoding.bits) + " bits");
      for (const SolveResult* r : {&c1, &c2})
        if (r->status == SolveResult::Status::kEncoded) {
          const auto violations =
              verify_encoding(r->encoding, r == &c1 ? cs : permuted);
          if (!violations.empty()) {
            diverge(FuzzRule::kCache,
                    "cache-path encoding fails oracle: " +
                        violations.front().to_string());
            break;
          }
        }
      if (warm.stats().hits == 0 && canonicalize(cs).canon.exact &&
          canonicalize(permuted).canon.exact)
        diverge(FuzzRule::kCache,
                "exact canonical forms of a symbol permutation did not "
                "share a cache entry");
    }
  }

  // Fourteenth rule: binate truncation honesty. Force the extension
  // pipeline (so every case exercises the binate cover search, whatever
  // its constraint mix) with a deliberately tiny per-component node
  // budget. A budget that expires mid-search is never an infeasibility
  // certificate, and node/work budgets trip at thread-count-independent
  // points, so the threads=1 and threads=N runs must be bit-identical
  // whenever no wall-clock limit (deadline/cancellation) was involved.
  if (opts.check_binate_truncation) {
    auto tiny_solve = [&](int threads) {
      SolveRequest tr;
      tr.constraints = cs;
      tr.options = solve_options(opts, threads);
      tr.options.pipeline = SolveOptions::Pipeline::kExtensions;
      tr.options.extensions.cover_options.max_nodes =
          opts.binate_truncation_nodes;
      return solve(tr).result;
    };
    const SolveResult t1 = tiny_solve(1);
    const SolveResult tn = tiny_solve(opts.alt_threads);
    for (const SolveResult* r : {&t1, &tn})
      if (r->status == SolveResult::Status::kInfeasible && r->truncated)
        diverge(FuzzRule::kBinateTruncation,
                std::string("tiny cover budget reported infeasible together "
                            "with truncation ") +
                    truncation_name(r->truncation));
    auto deterministic = [](const SolveResult& r) {
      return r.truncation != Truncation::kDeadline &&
             r.truncation != Truncation::kCancelled;
    };
    if (deterministic(t1) && deterministic(tn) &&
        (t1.status != tn.status || t1.truncated != tn.truncated ||
         t1.truncation != tn.truncation ||
         t1.encoding.bits != tn.encoding.bits ||
         t1.encoding.codes != tn.encoding.codes || !counters_equal(t1, tn)))
      diverge(FuzzRule::kBinateTruncation,
              std::string("tiny cover budget: threads=1 -> ") +
                  status_name(t1.status) + "/" +
                  truncation_name(t1.truncation) + " " +
                  std::to_string(t1.encoding.bits) + " bits, threads=" +
                  std::to_string(opts.alt_threads) + " -> " +
                  status_name(tn.status) + "/" +
                  truncation_name(tn.truncation) + " " +
                  std::to_string(tn.encoding.bits) + " bits");
  }

  const int minlen = minimum_code_length(n);
  const bool exact_infeasible =
      !a.truncated && a.status == SolveResult::Status::kInfeasible;

  if (opts.run_baselines && minlen <= 12) {
    NovaOptions nopts;
    nopts.seed = opts.nova_seed;
    const Encoding nova = nova_encode(cs, minlen, nopts);
    AnnealOptions aopts;
    aopts.seed = opts.anneal_seed;
    aopts.cost = CostKind::kViolatedFaces;
    aopts.temperature_points = 12;
    aopts.moves_per_temperature = 5;
    const Encoding anneal = anneal_encode(cs, minlen, aopts).encoding;

    const auto nova_violations = verify_encoding(nova, cs);
    const auto anneal_violations = verify_encoding(anneal, cs);
    if (count_kind(nova_violations, Violation::Kind::kDuplicateCode) > 0)
      diverge(FuzzRule::kBaselineCodes, "nova produced duplicate codes");
    if (count_kind(anneal_violations, Violation::Kind::kDuplicateCode) > 0)
      diverge(FuzzRule::kBaselineCodes, "annealing produced duplicate codes");
    // Infeasible means no encoding of any length satisfies everything, so
    // a violation-free baseline encoding refutes the verdict outright.
    // Extension instances are exempt: their candidate pool is heuristic
    // (tests/oracle_extensions_test.cc bounds its incompleteness), so an
    // extension-pipeline "infeasible" is not a certificate.
    if (!has_extensions && exact_infeasible && nova_violations.empty())
      diverge(FuzzRule::kBaselineFeasible,
              "exact says infeasible but nova satisfied every constraint at " +
                  std::to_string(minlen) + " bits");
    if (!has_extensions && exact_infeasible && anneal_violations.empty())
      diverge(FuzzRule::kBaselineFeasible,
              "exact says infeasible but annealing satisfied every "
              "constraint at " +
                  std::to_string(minlen) + " bits");
  }

  // A violation-free encoding below the proved-minimal length refutes the
  // minimality proof (exact pipeline only; the extension pipeline's
  // `minimal` is relative to its candidate column set).
  if (opts.check_minimality && !a.truncated && out.encoded && a.minimal &&
      !has_extensions && a.encoding.bits > minlen && a.encoding.bits <= 12) {
    NovaOptions nopts;
    nopts.seed = opts.nova_seed;
    for (int bits = minlen; bits < a.encoding.bits; ++bits) {
      const Encoding alt = nova_encode(cs, bits, nopts);
      if (verify_encoding(alt, cs).empty()) {
        diverge(FuzzRule::kMinimality,
                "exact proved minimality at " +
                    std::to_string(a.encoding.bits) +
                    " bits but nova satisfied every constraint at " +
                    std::to_string(bits));
        break;
      }
    }
  }

  if (opts.run_bounded && minlen <= 12) {
    BoundedEncodeOptions bo;
    bo.cost = CostKind::kViolatedFaces;
    bo.polish_passes = 1;
    const BoundedEncodeResult br = bounded_encode(cs, minlen, bo);
    const auto violations = verify_encoding(br.encoding, cs);
    if (count_kind(violations, Violation::Kind::kDuplicateCode) > 0)
      diverge(FuzzRule::kBoundedCodes,
              "bounded_encode produced duplicate codes");
    const std::size_t oracle_faces =
        count_kind(violations, Violation::Kind::kFace);
    if (static_cast<std::size_t>(br.cost.violated_faces) != oracle_faces)
      diverge(FuzzRule::kCost,
              "bounded cost reports " +
                  std::to_string(br.cost.violated_faces) +
                  " violated faces, oracle counts " +
                  std::to_string(oracle_faces));
  }

  return out;
}

std::string FuzzReport::summary() const {
  std::string s = "fuzz: seed " + std::to_string(seed) + ", " +
                  std::to_string(cases) + " cases, " +
                  std::to_string(feasible) + " feasible / " +
                  std::to_string(infeasible) + " infeasible, " +
                  std::to_string(truncated) + " truncated, " +
                  std::to_string(divergent.size()) + " divergences";
  return s;
}

FuzzReport run_fuzz(std::uint64_t seed, std::uint64_t cases,
                    const FuzzRunOptions& opts) {
  FuzzReport report;
  report.seed = seed;
  report.cases = cases;

  // Per-case seeds make the stream independent of scheduling; results are
  // collected into index-addressed slots and aggregated in order, so the
  // report is bit-identical for every driver thread count.
  std::vector<FuzzCaseResult> results(cases);
  parallel_for(cases, resolve_threads(opts.threads), [&](std::size_t i) {
    TraceScope span(opts.tracer, "fuzz_case");
    const ConstraintSet cs =
        generate_case(fuzz_case_seed(seed, i), opts.generator);
    results[i] = run_differential_case(cs, opts.differential);
  });

  for (std::uint64_t i = 0; i < cases; ++i) {
    const FuzzCaseResult& r = results[i];
    if (r.truncated) ++report.truncated;
    if (r.feasible)
      ++report.feasible;
    else
      ++report.infeasible;
    if (!r.ok()) {
      FuzzDivergentCase d;
      d.index = i;
      d.case_seed = fuzz_case_seed(seed, i);
      d.result = r;
      d.constraints_text =
          generate_case(d.case_seed, opts.generator).to_string();
      report.divergent.push_back(std::move(d));
    }
  }
  return report;
}

}  // namespace encodesat
