#include "fuzz/generator.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace encodesat {

namespace {

// Draws k distinct symbol ids from [0, n).
std::vector<std::uint32_t> sample_distinct(Rng& rng, std::uint32_t n,
                                           std::uint32_t k) {
  std::vector<std::uint32_t> pool(n);
  for (std::uint32_t i = 0; i < n; ++i) pool[i] = i;
  std::vector<std::uint32_t> out;
  out.reserve(k);
  for (std::uint32_t i = 0; i < k && !pool.empty(); ++i) {
    const std::size_t j = rng.next_below(pool.size());
    out.push_back(pool[j]);
    pool[j] = pool.back();
    pool.pop_back();
  }
  return out;
}

enum class ClassId {
  kFace,
  kDominance,
  kDisjunctive,
  kExtended,
  kDistance2,
  kNonFace,
};

void add_random_face(Rng& rng, ConstraintSet& cs, std::uint32_t n,
                     double dontcare_density) {
  const std::uint32_t max_members = std::min<std::uint32_t>(n, 4);
  const std::uint32_t m =
      2 + static_cast<std::uint32_t>(rng.next_below(max_members - 1));
  std::vector<std::uint32_t> members = sample_distinct(rng, n, m);
  Bitset in_members(n);
  for (auto s : members) in_members.set(s);
  std::vector<std::uint32_t> dontcares;
  for (std::uint32_t s = 0; s < n; ++s)
    if (!in_members.test(s) && rng.next_bool(dontcare_density))
      dontcares.push_back(s);
  cs.add_face_ids(std::move(members), std::move(dontcares));
}

// Injects one deliberately infeasible pattern over randomly chosen symbols.
void add_infeasible_mutation(Rng& rng, ConstraintSet& cs, std::uint32_t n) {
  // Four mutation shapes; the heavier ones need more symbols.
  std::uint32_t shape = static_cast<std::uint32_t>(rng.next_below(4));
  if (shape == 3 && n < 6) shape = static_cast<std::uint32_t>(rng.next_below(3));
  if (shape >= 1 && shape <= 2 && n < 3) shape = 0;
  switch (shape) {
    case 0: {
      // Mutual dominance forces equal codes.
      const auto p = sample_distinct(rng, n, 2);
      cs.add_dominance_ids(p[0], p[1]);
      cs.add_dominance_ids(p[1], p[0]);
      break;
    }
    case 1: {
      // Dominance 3-cycle.
      const auto t = sample_distinct(rng, n, 3);
      cs.add_dominance_ids(t[0], t[1]);
      cs.add_dominance_ids(t[1], t[2]);
      cs.add_dominance_ids(t[2], t[0]);
      break;
    }
    case 2: {
      // p = a OR b implies p > a; adding a > p forces a == p.
      const auto t = sample_distinct(rng, n, 3);
      cs.add_disjunctive_ids(t[0], {t[1], t[2]});
      cs.add_dominance_ids(t[1], t[0]);
      break;
    }
    default: {
      // Figure 4 of the paper: infeasible, yet every *local* consistency
      // condition holds — the class of conflicts only transitive raising
      // detects. Mapped onto six random symbols.
      const auto s = sample_distinct(rng, n, 6);
      cs.add_face_ids({s[1], s[5]});
      cs.add_face_ids({s[2], s[5]});
      cs.add_face_ids({s[4], s[5]});
      cs.add_dominance_ids(s[0], s[1]);
      cs.add_dominance_ids(s[0], s[2]);
      cs.add_dominance_ids(s[0], s[3]);
      cs.add_dominance_ids(s[0], s[5]);
      cs.add_dominance_ids(s[1], s[3]);
      cs.add_dominance_ids(s[2], s[3]);
      cs.add_dominance_ids(s[4], s[5]);
      cs.add_dominance_ids(s[5], s[2]);
      cs.add_dominance_ids(s[5], s[3]);
      cs.add_disjunctive_ids(s[0], {s[1], s[2]});
      break;
    }
  }
}

}  // namespace

std::optional<GeneratorOptions> generator_mix(const std::string& name) {
  GeneratorOptions o;
  if (name.empty() || name == "default") return o;
  if (name == "input") {
    o.face_weight = 1.0;
    o.dominance_weight = o.disjunctive_weight = o.extended_weight = 0;
    o.distance2_weight = o.nonface_weight = 0;
    o.dontcare_density = 0.35;
    o.infeasible_mutation_rate = 0;
    o.constraints_per_symbol = 1.2;
    return o;
  }
  if (name == "output") {
    o.face_weight = 0.3;
    o.dominance_weight = 1.2;
    o.disjunctive_weight = 0.8;
    o.extended_weight = 0.6;
    o.distance2_weight = o.nonface_weight = 0;
    o.infeasible_mutation_rate = 0.35;
    return o;
  }
  if (name == "extensions") {
    o.distance2_weight = 0.6;
    o.nonface_weight = 0.6;
    o.max_symbols = 8;
    return o;
  }
  if (name == "infeasible") {
    o.infeasible_mutation_rate = 1.0;
    return o;
  }
  return std::nullopt;
}

std::uint64_t fuzz_case_seed(std::uint64_t run_seed, std::uint64_t index) {
  // One extra splitmix64 scramble over the combined words so adjacent
  // indices land in unrelated regions of the generator's state space.
  std::uint64_t z = run_seed + index * 0x9e3779b97f4a7c15ull +
                    0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

ConstraintSet generate_case(std::uint64_t case_seed,
                            const GeneratorOptions& opts) {
  Rng rng(case_seed);
  const std::uint32_t lo = std::max<std::uint32_t>(2, opts.min_symbols);
  const std::uint32_t hi = std::max(lo, opts.max_symbols);
  const std::uint32_t n =
      lo + static_cast<std::uint32_t>(rng.next_below(hi - lo + 1));

  ConstraintSet cs;
  for (std::uint32_t i = 0; i < n; ++i)
    cs.symbols().intern("s" + std::to_string(i));

  // Cumulative class-weight table; classes needing >= 3 symbols drop out
  // on 2-symbol cases.
  std::vector<std::pair<ClassId, double>> classes;
  auto push = [&](ClassId id, double w, std::uint32_t min_n) {
    if (w > 0 && n >= min_n) classes.emplace_back(id, w);
  };
  push(ClassId::kFace, opts.face_weight, 3);
  push(ClassId::kDominance, opts.dominance_weight, 2);
  push(ClassId::kDisjunctive, opts.disjunctive_weight, 3);
  push(ClassId::kExtended, opts.extended_weight, 3);
  push(ClassId::kDistance2, opts.distance2_weight, 2);
  push(ClassId::kNonFace, opts.nonface_weight, 3);
  double total = 0;
  for (const auto& [id, w] : classes) total += w;

  const std::uint32_t count = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(
             std::lround(opts.constraints_per_symbol * n)));
  for (std::uint32_t c = 0; c < count && total > 0; ++c) {
    double pick = rng.next_double() * total;
    ClassId id = classes.back().first;
    for (const auto& [cid, w] : classes) {
      if (pick < w) {
        id = cid;
        break;
      }
      pick -= w;
    }
    switch (id) {
      case ClassId::kFace:
        add_random_face(rng, cs, n, opts.dontcare_density);
        break;
      case ClassId::kDominance: {
        const auto p = sample_distinct(rng, n, 2);
        cs.add_dominance_ids(p[0], p[1]);
        break;
      }
      case ClassId::kDisjunctive: {
        const std::uint32_t k = std::min<std::uint32_t>(
            n - 1, 2 + static_cast<std::uint32_t>(rng.next_below(2)));
        auto picked = sample_distinct(rng, n, k + 1);
        const std::uint32_t parent = picked.back();
        picked.pop_back();
        cs.add_disjunctive_ids(parent, std::move(picked));
        break;
      }
      case ClassId::kExtended: {
        auto picked = sample_distinct(
            rng, n,
            std::min<std::uint32_t>(
                n, 3 + static_cast<std::uint32_t>(rng.next_below(3))));
        const std::uint32_t parent = picked.back();
        picked.pop_back();
        // Split the remaining symbols into 1-2 conjunctions.
        ExtendedDisjunctiveConstraint e;
        e.parent = parent;
        const std::size_t cut =
            picked.size() >= 2 ? 1 + rng.next_below(picked.size() - 1)
                               : picked.size();
        e.conjunctions.emplace_back(picked.begin(),
                                    picked.begin() + static_cast<long>(cut));
        if (cut < picked.size())
          e.conjunctions.emplace_back(picked.begin() + static_cast<long>(cut),
                                      picked.end());
        cs.extended_disjunctives().push_back(std::move(e));
        break;
      }
      case ClassId::kDistance2: {
        const auto p = sample_distinct(rng, n, 2);
        cs.distance2s().push_back(Distance2Constraint{p[0], p[1]});
        break;
      }
      case ClassId::kNonFace: {
        const std::uint32_t k = std::min<std::uint32_t>(
            n, 2 + static_cast<std::uint32_t>(rng.next_below(2)));
        cs.nonfaces().push_back(NonFaceConstraint{sample_distinct(rng, n, k)});
        break;
      }
    }
  }

  if (rng.next_bool(opts.infeasible_mutation_rate))
    add_infeasible_mutation(rng, cs, n);
  return cs;
}

}  // namespace encodesat
