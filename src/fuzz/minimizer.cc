#include "fuzz/minimizer.h"

#include <algorithm>

namespace encodesat {

namespace {

// Marks every symbol some constraint references.
std::vector<bool> referenced_symbols(const ConstraintSet& cs) {
  std::vector<bool> used(cs.num_symbols(), false);
  auto mark = [&](const std::vector<std::uint32_t>& ids) {
    for (std::uint32_t id : ids) used[id] = true;
  };
  for (const auto& f : cs.faces()) {
    mark(f.members);
    mark(f.dontcares);
  }
  for (const auto& d : cs.dominances()) {
    used[d.dominator] = true;
    used[d.dominated] = true;
  }
  for (const auto& d : cs.disjunctives()) {
    used[d.parent] = true;
    mark(d.children);
  }
  for (const auto& e : cs.extended_disjunctives()) {
    used[e.parent] = true;
    for (const auto& conj : e.conjunctions) mark(conj);
  }
  for (const auto& d : cs.distance2s()) {
    used[d.a] = true;
    used[d.b] = true;
  }
  for (const auto& nf : cs.nonfaces()) mark(nf.members);
  return used;
}

// Tries each whole-constraint removal once; commits those that keep the
// predicate true. Returns the number of constraints removed.
int remove_constraints_pass(ConstraintSet& cs,
                            const DivergencePredicate& pred, int* probes) {
  int removed = 0;
  auto try_erase = [&](auto member) {
    auto& vec = (cs.*member)();
    for (std::size_t i = vec.size(); i-- > 0;) {
      ConstraintSet candidate = cs;
      auto& cvec = (candidate.*member)();
      cvec.erase(cvec.begin() + static_cast<long>(i));
      ++*probes;
      if (pred(candidate)) {
        cs = std::move(candidate);
        ++removed;
      }
    }
  };
  // Non-const accessor member-function pointers, one per class.
  try_erase(static_cast<std::vector<FaceConstraint>& (ConstraintSet::*)()>(
      &ConstraintSet::faces));
  try_erase(
      static_cast<std::vector<DominanceConstraint>& (ConstraintSet::*)()>(
          &ConstraintSet::dominances));
  try_erase(
      static_cast<std::vector<DisjunctiveConstraint>& (ConstraintSet::*)()>(
          &ConstraintSet::disjunctives));
  try_erase(static_cast<std::vector<ExtendedDisjunctiveConstraint>& (
                ConstraintSet::*)()>(&ConstraintSet::extended_disjunctives));
  try_erase(
      static_cast<std::vector<Distance2Constraint>& (ConstraintSet::*)()>(
          &ConstraintSet::distance2s));
  try_erase(static_cast<std::vector<NonFaceConstraint>& (ConstraintSet::*)()>(
      &ConstraintSet::nonfaces));
  return removed;
}

// Tries dropping single elements inside constraints (respecting arity
// minimums so the result stays parseable). Returns elements removed.
int shrink_elements_pass(ConstraintSet& cs, const DivergencePredicate& pred,
                         int* probes) {
  int removed = 0;
  auto attempt = [&](ConstraintSet&& candidate) {
    ++*probes;
    if (pred(candidate)) {
      cs = std::move(candidate);
      ++removed;
      return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < cs.faces().size(); ++i) {
    for (std::size_t m = cs.faces()[i].members.size();
         m-- > 0 && cs.faces()[i].members.size() > 2;) {
      ConstraintSet candidate = cs;
      auto& v = candidate.faces()[i].members;
      v.erase(v.begin() + static_cast<long>(m));
      attempt(std::move(candidate));
    }
    for (std::size_t m = cs.faces()[i].dontcares.size(); m-- > 0;) {
      ConstraintSet candidate = cs;
      auto& v = candidate.faces()[i].dontcares;
      v.erase(v.begin() + static_cast<long>(m));
      attempt(std::move(candidate));
    }
  }
  for (std::size_t i = 0; i < cs.disjunctives().size(); ++i)
    for (std::size_t m = cs.disjunctives()[i].children.size();
         m-- > 0 && cs.disjunctives()[i].children.size() > 2;) {
      ConstraintSet candidate = cs;
      auto& v = candidate.disjunctives()[i].children;
      v.erase(v.begin() + static_cast<long>(m));
      attempt(std::move(candidate));
    }
  for (std::size_t i = 0; i < cs.extended_disjunctives().size(); ++i) {
    for (std::size_t m = cs.extended_disjunctives()[i].conjunctions.size();
         m-- > 0 && cs.extended_disjunctives()[i].conjunctions.size() > 1;) {
      ConstraintSet candidate = cs;
      auto& v = candidate.extended_disjunctives()[i].conjunctions;
      v.erase(v.begin() + static_cast<long>(m));
      attempt(std::move(candidate));
    }
    for (std::size_t m = 0;
         m < cs.extended_disjunctives()[i].conjunctions.size(); ++m)
      for (std::size_t k = cs.extended_disjunctives()[i].conjunctions[m].size();
           k-- > 0 &&
           cs.extended_disjunctives()[i].conjunctions[m].size() > 1;) {
        ConstraintSet candidate = cs;
        auto& v = candidate.extended_disjunctives()[i].conjunctions[m];
        v.erase(v.begin() + static_cast<long>(k));
        attempt(std::move(candidate));
      }
  }
  for (std::size_t i = 0; i < cs.nonfaces().size(); ++i)
    for (std::size_t m = cs.nonfaces()[i].members.size();
         m-- > 0 && cs.nonfaces()[i].members.size() > 2;) {
      ConstraintSet candidate = cs;
      auto& v = candidate.nonfaces()[i].members;
      v.erase(v.begin() + static_cast<long>(m));
      attempt(std::move(candidate));
    }
  return removed;
}

// Tries removing symbols no constraint references, one at a time (removal
// still changes verdicts — distinct-code pressure, face intrusion — so
// each is re-validated).
int remove_symbols_pass(ConstraintSet& cs, const DivergencePredicate& pred,
                        int* probes) {
  int removed = 0;
  for (std::uint32_t id = cs.num_symbols(); id-- > 0;) {
    if (referenced_symbols(cs)[id]) continue;
    ConstraintSet candidate = remove_unreferenced_symbol(cs, id);
    ++*probes;
    if (pred(candidate)) {
      cs = std::move(candidate);
      ++removed;
    }
  }
  return removed;
}

}  // namespace

ConstraintSet remove_unreferenced_symbol(const ConstraintSet& cs,
                                         std::uint32_t id) {
  ConstraintSet out;
  for (std::uint32_t s = 0; s < cs.num_symbols(); ++s)
    if (s != id) out.symbols().intern(cs.symbols().name(s));
  auto remap = [&](std::uint32_t s) { return s > id ? s - 1 : s; };
  auto remap_all = [&](const std::vector<std::uint32_t>& ids) {
    std::vector<std::uint32_t> v;
    v.reserve(ids.size());
    for (std::uint32_t s : ids) v.push_back(remap(s));
    return v;
  };
  for (const auto& f : cs.faces())
    out.faces().push_back(
        FaceConstraint{remap_all(f.members), remap_all(f.dontcares)});
  for (const auto& d : cs.dominances())
    out.dominances().push_back(
        DominanceConstraint{remap(d.dominator), remap(d.dominated)});
  for (const auto& d : cs.disjunctives())
    out.disjunctives().push_back(
        DisjunctiveConstraint{remap(d.parent), remap_all(d.children)});
  for (const auto& e : cs.extended_disjunctives()) {
    ExtendedDisjunctiveConstraint x;
    x.parent = remap(e.parent);
    for (const auto& conj : e.conjunctions)
      x.conjunctions.push_back(remap_all(conj));
    out.extended_disjunctives().push_back(std::move(x));
  }
  for (const auto& d : cs.distance2s())
    out.distance2s().push_back(Distance2Constraint{remap(d.a), remap(d.b)});
  for (const auto& nf : cs.nonfaces())
    out.nonfaces().push_back(NonFaceConstraint{remap_all(nf.members)});
  return out;
}

MinimizeResult minimize_divergence(const ConstraintSet& cs,
                                   const DivergencePredicate& still_diverges) {
  MinimizeResult res;
  res.constraints = cs;
  ++res.probes;
  if (!still_diverges(res.constraints)) return res;

  for (;;) {
    int changed = 0;
    changed += remove_constraints_pass(res.constraints, still_diverges,
                                       &res.probes);
    res.removed_constraints += changed;
    const int elements =
        shrink_elements_pass(res.constraints, still_diverges, &res.probes);
    res.removed_elements += elements;
    const int symbols =
        remove_symbols_pass(res.constraints, still_diverges, &res.probes);
    res.removed_symbols += symbols;
    if (changed + elements + symbols == 0) break;
  }
  return res;
}

DivergencePredicate rule_predicate(FuzzRule rule,
                                   const DifferentialOptions& opts) {
  return [rule, opts](const ConstraintSet& cs) {
    const FuzzCaseResult r = run_differential_case(cs, opts);
    return std::any_of(
        r.divergences.begin(), r.divergences.end(),
        [&](const FuzzDivergence& d) { return d.rule == rule; });
  };
}

}  // namespace encodesat
