// Automatic delta-debugging minimizer for fuzz-found divergences.
//
// Given a constraint set on which some predicate holds (typically "the
// differential driver still reports a divergence of this rule"), the
// minimizer greedily shrinks the case while the predicate keeps holding:
//   1. whole-constraint removal, one constraint at a time across every
//      class, repeated to a fixpoint;
//   2. element-level shrinking inside surviving constraints (dropping a
//      face member or don't-care, a disjunctive child, an
//      extended-disjunctive conjunction or conjunction member, a non-face
//      member — never below the grammar's arity minimums);
//   3. removal of symbols no remaining constraint references (they still
//      affect verdicts — distinct-code pressure and face intrusion — so
//      each removal is re-validated against the predicate).
// The result is the smallest case greedy removal can reach, ready to be
// committed as a regression test via the reproducer format.
#pragma once

#include <cstdint>
#include <functional>

#include "fuzz/differential.h"

namespace encodesat {

using DivergencePredicate = std::function<bool(const ConstraintSet&)>;

struct MinimizeResult {
  ConstraintSet constraints;
  int removed_constraints = 0;
  int removed_elements = 0;
  int removed_symbols = 0;
  /// Number of predicate evaluations spent.
  int probes = 0;
};

/// Shrinks `cs` while `still_diverges` holds; `still_diverges(cs)` itself
/// must be true on entry (otherwise the input is returned unchanged).
MinimizeResult minimize_divergence(const ConstraintSet& cs,
                                   const DivergencePredicate& still_diverges);

/// The standard predicate: run_differential_case still reports at least
/// one divergence of `rule`.
DivergencePredicate rule_predicate(FuzzRule rule,
                                   const DifferentialOptions& opts);

/// Drops symbol `id` from the table and remaps every constraint index.
/// Precondition: no constraint references `id`.
ConstraintSet remove_unreferenced_symbol(const ConstraintSet& cs,
                                         std::uint32_t id);

}  // namespace encodesat
