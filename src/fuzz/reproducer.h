// Reproducer files for fuzz-found divergences.
//
// A reproducer is a plain constraint-grammar file with a '#'-comment
// metadata header, so `parse_constraints` (and therefore `encodesat_cli
// solve`) reads it unchanged while the fuzz tooling recovers the run
// context:
//
//   # encodesat-fuzz-reproducer v1
//   # seed: 1
//   # case: 42
//   # rule: oracle
//   # detail: encoding fails oracle: face[0]: ...
//   # minimized: yes
//   face s0 s1 [ s2 ]
//   dominance s3 s0
//
// Turning one into a regression test: drop the file into
// tests/fuzz_corpus/ — tests/fuzz_regression_test.cc re-runs the
// differential driver over every corpus file and fails on any divergence.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/constraints.h"

namespace encodesat {

struct FuzzReproducer {
  std::uint64_t run_seed = 0;
  std::uint64_t case_index = 0;
  std::string rule;    ///< fuzz_rule_name of the diverged rule ("" = none)
  std::string detail;  ///< first divergence detail, single line
  bool minimized = false;
  ConstraintSet constraints;
};

/// Renders the header + constraint text shown above.
std::string reproducer_to_text(const FuzzReproducer& r);

/// Parses a reproducer (or any constraint file — missing metadata keys
/// default to zero/empty). Returns std::nullopt and fills `*error` on
/// malformed constraint lines.
std::optional<FuzzReproducer> parse_reproducer(const std::string& text,
                                               ParseError* error = nullptr);

/// File helpers; load returns std::nullopt on I/O or parse failure.
bool write_reproducer_file(const std::string& path, const FuzzReproducer& r);
std::optional<FuzzReproducer> load_reproducer_file(const std::string& path,
                                                   ParseError* error = nullptr);

/// "seed<seed>_case<index>_<rule>.repro" — stable, collision-free within
/// one run.
std::string reproducer_filename(const FuzzReproducer& r);

}  // namespace encodesat
