// Differential correctness driver: runs one constraint set through every
// implementation in the repository that has an opinion about it and checks
// the results against each other and against the independent
// `verify_encoding` oracle.
//
// Agreement rules (each has a stable name for reports and reproducers):
//   oracle            exact/extension encode succeeded => verify_encoding
//                     reports zero violations
//   feasibility       P-1 feasibility agrees with the encode status
//                     (restricted to constraint sets without §8.2/§8.3
//                     extension constraints, which P-1 does not model)
//   local_unsound     the Devadas–Newton local check answered "infeasible"
//                     (its conditions are necessary) while the exact check
//                     answered "feasible"
//   witness           an infeasibility verdict whose uncovered-dichotomy
//                     evidence fails verify_infeasibility_witness
//   threads           threads=1 and threads=N disagree on status, codes or
//                     Table-1 counters
//   stats             the StageStats tree (names, work, items, truncation —
//                     wall-clock excluded) differs between the threads=1 and
//                     threads=N runs; covers the arena fold counters
//   baseline_feasible exact says infeasible but a baseline encoder (nova /
//                     annealing) produced a violation-free encoding
//                     (restricted to instances without extension
//                     constraints — the §8 pipeline's candidate pool is
//                     heuristic, so its "infeasible" is not a certificate)
//   baseline_codes    a baseline produced duplicate codes (both keep codes
//                     distinct by construction)
//   minimality        exact proved minimality at L bits but nova found a
//                     violation-free encoding in fewer bits
//   bounded_codes     the bounded-length heuristic produced duplicate codes
//   cost              bounded_encode's violated-faces cost disagrees with
//                     the oracle's face-violation count
//   counters          the MetricsRegistry structural fingerprint (sorted
//                     counter names + values; obs/counters.h) differs
//                     between the threads=1 and threads=N runs — the
//                     observability subsystem's own determinism check
//   histograms        the histogram bucket-count fingerprint (sorted
//                     histogram names + nonzero bucket indices and counts;
//                     value sums excluded — obs/histogram.h) differs
//                     between the threads=1 and threads=N runs; covers the
//                     solve.work / solve.stage_work distributions
//   cache             solving a symbol-permuted copy of the case against a
//                     warm solve cache (normally a hit) and against a fresh
//                     cache at threads=N (a miss) disagree on status, bits,
//                     codes, minimality or counters; or a cache-served
//                     encoding fails the oracle; or the warm lookup missed
//                     even though both canonicalizations were exact
//   binate_truncation the extension pipeline forced onto the case with a
//                     deliberately tiny binate-cover node budget reported
//                     "infeasible" together with a truncation (a budget is
//                     never an infeasibility certificate), or the
//                     threads=1 and threads=N runs were not bit-identical
//                     despite only deterministic (node/work) budgets
//                     tripping
//
// Every rule is deterministic: solver budgets are work-based (never
// wall-clock), baseline seeds are fixed by DifferentialOptions, and the
// thread fan-out paths are bit-deterministic by the library's determinism
// contract — so a divergence verdict replays exactly from a reproducer
// file, and same-seed fuzz runs are identical for any driver thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "util/exec.h"

namespace encodesat {

enum class FuzzRule {
  kOracle,
  kFeasibility,
  kLocalUnsound,
  kWitness,
  kThreads,
  kStats,
  kBaselineFeasible,
  kBaselineCodes,
  kMinimality,
  kBoundedCodes,
  kCost,
  kCounters,
  kHistograms,
  kCache,
  kBinateTruncation,
};

/// Stable lower-case rule name as listed above.
const char* fuzz_rule_name(FuzzRule rule);
/// Inverse of fuzz_rule_name; false on unknown names.
bool fuzz_rule_from_name(const std::string& name, FuzzRule* rule);

struct FuzzDivergence {
  FuzzRule rule;
  std::string detail;
};

struct FuzzCaseResult {
  /// Budgets tripped somewhere, so status-dependent rules were skipped
  /// (the case still counts toward the stream, never as a divergence).
  bool truncated = false;
  /// Exact verdicts, for stream statistics.
  bool feasible = false;
  bool encoded = false;
  std::vector<FuzzDivergence> divergences;

  bool ok() const { return divergences.empty(); }
};

struct DifferentialOptions {
  /// Thread count of the second solver run compared against threads=1.
  int alt_threads = 4;
  /// Deterministic per-case work budget (bitset word operations) for each
  /// solver run; cases that trip it are counted as truncated, not failed.
  std::uint64_t max_work_per_case = 4'000'000;
  /// Node budgets for the covering searches (same motivation).
  std::uint64_t max_cover_nodes = 4'000;
  /// Fixed seeds for the baseline encoders, so a reproducer file alone
  /// replays the divergence.
  std::uint64_t nova_seed = 7;
  std::uint64_t anneal_seed = 99;
  /// Disable the more expensive comparisons (the smoke configurations keep
  /// them all on).
  bool run_baselines = true;
  bool run_bounded = true;
  bool check_minimality = true;
  /// Run the `cache` agreement rule (three extra solves per case, each
  /// against a private per-case SolveCache — fuzz cases never share cache
  /// state, so same-seed runs stay bit-identical for any driver fan-out).
  bool check_cache = true;
  /// Byte budget for each per-case cache (the fuzz `--cache-size` flag).
  std::size_t cache_max_bytes = 64u << 20;

  /// Run the `binate_truncation` agreement rule (two extra solves per case
  /// through the forced extension pipeline with `binate_truncation_nodes`
  /// as the per-component cover node budget).
  bool check_binate_truncation = true;
  /// Deliberately tiny so non-trivial cases truncate inside the binate
  /// cover search rather than finishing.
  std::uint64_t binate_truncation_nodes = 2;

  /// Optional aggregate counter registry (obs/counters.h): each case's
  /// threads=1 run merges its counters in, so a fuzz run reports pipeline
  /// totals in its telemetry. Shared across driver threads (atomic adds);
  /// borrowed, must outlive the run.
  MetricsRegistry* metrics = nullptr;
};

/// Runs every agreement rule over one constraint set.
FuzzCaseResult run_differential_case(const ConstraintSet& cs,
                                     const DifferentialOptions& opts = {});

struct FuzzDivergentCase {
  std::uint64_t index = 0;      ///< case index within the run
  std::uint64_t case_seed = 0;  ///< fuzz_case_seed(run seed, index)
  FuzzCaseResult result;
  std::string constraints_text;  ///< the case, in the constraint grammar
};

struct FuzzReport {
  std::uint64_t seed = 0;
  std::uint64_t cases = 0;
  std::uint64_t feasible = 0;
  std::uint64_t infeasible = 0;
  std::uint64_t truncated = 0;
  std::vector<FuzzDivergentCase> divergent;  ///< ordered by case index

  /// One-line summary, e.g.
  /// "fuzz: seed 1, 2000 cases, 1410 feasible / 590 infeasible,
  ///  0 truncated, 0 divergences".
  std::string summary() const;
};

struct FuzzRunOptions {
  GeneratorOptions generator;
  DifferentialOptions differential;
  /// Driver fan-out width over cases (0 = all hardware threads). The
  /// report is identical for every value.
  int threads = 1;
  /// Optional span sink: each case is wrapped in a "fuzz_case" span (the
  /// solver spans inside a case are not traced — per-case registries stay
  /// private to the divergence check). Borrowed, must outlive the run.
  TraceSink* tracer = nullptr;
};

/// Generates and checks `cases` cases derived from `seed`. Deterministic:
/// the report (including divergence order and details) depends only on
/// (seed, cases, options).
FuzzReport run_fuzz(std::uint64_t seed, std::uint64_t cases,
                    const FuzzRunOptions& opts = {});

}  // namespace encodesat
