#include "service/broker.h"

#include <utility>

#include "obs/counters.h"
#include "obs/reqlog.h"
#include "obs/window.h"

namespace encodesat {

namespace {

/// Every counter the broker can emit, registered up front so the telemetry
/// name set does not depend on which paths ran.
constexpr const char* kServiceCounters[] = {
    "service.accepted",         "service.rejected_overload",
    "service.completed",        "service.coalesced",
    "service.deadline_expired", "service.drained",
};

/// Same for the latency histograms (microseconds). Non-fingerprint: they
/// observe wall time (obs/histogram.h determinism contract).
constexpr const char* kServiceHistograms[] = {
    "service.latency.total",
    "service.latency.queue",
    "service.latency.solve",
};

std::uint64_t us_between(std::chrono::steady_clock::time_point from,
                         std::chrono::steady_clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

/// How the request was served, for the request log.
const char* disposition_of(const SolveResponse& resp) {
  if (resp.result.coalesced) return "coalesced";
  if (resp.result.from_cache) return "hit";
  return "solve";
}

}  // namespace

Broker::Broker(BrokerConfig cfg)
    : cfg_(std::move(cfg)), epoch_(std::chrono::steady_clock::now()) {
  if (cfg_.workers < 1) cfg_.workers = 1;
  if (cfg_.metrics) {
    for (const char* name : kServiceCounters)
      cfg_.metrics->counter(name, /*in_fingerprint=*/false);
    for (const char* name : kServiceHistograms)
      cfg_.metrics->histogram(name, /*in_fingerprint=*/false);
  }
  if (!cfg_.solve_fn)
    cfg_.solve_fn = [](const SolveRequest& req) { return solve(req); };
  workers_alive_.store(cfg_.workers, std::memory_order_relaxed);
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

Broker::~Broker() { drain(DrainMode::kRejectQueued); }

void Broker::count(const char* name, std::uint64_t v) {
  if (cfg_.metrics) cfg_.metrics->counter(name, false)->add(v);
}

std::uint64_t Broker::now_us() const {
  return us_between(epoch_, std::chrono::steady_clock::now());
}

bool Broker::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

void Broker::log_request(const SolveResponse& resp, const char* disposition,
                         std::uint64_t queue_us, std::uint64_t solve_us,
                         std::uint64_t total_us, const StageStats* stats) {
  if (!cfg_.reqlog) return;
  ReqLogRecord rec;
  rec.id = resp.id;
  rec.status = status_code_name(resp.status);
  rec.disposition = disposition;
  rec.queue_us = queue_us;
  rec.solve_us = solve_us;
  rec.total_us = total_us;
  rec.truncation = truncation_name(resp.result.truncation);
  rec.work = resp.result.stats.work;
  rec.error = resp.status != StatusCode::kOk &&
              resp.status != StatusCode::kInfeasible;
  rec.counters.emplace_back("uncovered", resp.result.uncovered.size());
  rec.counters.emplace_back("bits", resp.result.encoding.bits);
  rec.stats = stats;
  cfg_.reqlog->log(rec);
}

void Broker::log_transport_event(const char* disposition,
                                 const char* status) {
  if (!cfg_.reqlog) return;
  ReqLogRecord rec;
  rec.status = status;
  rec.disposition = disposition;
  rec.error = true;  // always logged, never sampled away
  cfg_.reqlog->log(rec);
}

SolveResponse Broker::rejected(const std::string& id, const char* why) {
  SolveResponse resp;
  resp.id = id;
  resp.status = StatusCode::kOverloaded;
  resp.detail = why;
  return resp;
}

bool Broker::submit(SolveRequest req, Callback cb) {
  Item item;
  double deadline_s = req.deadline_seconds > 0
                          ? req.deadline_seconds
                          : cfg_.default_deadline_seconds;
  // The wire layer already bounds deadline_s, but submit() is a public
  // entry point: past ~1e9 s the duration_cast below overflows on
  // nanosecond-resolution clocks, so clamp for every caller.
  if (deadline_s > 1e9) deadline_s = 1e9;
  item.submitted = std::chrono::steady_clock::now();
  if (deadline_s > 0) {
    item.has_deadline = true;
    item.deadline =
        item.submitted +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(deadline_s));
  }
  item.req = std::move(req);
  item.cb = std::move(cb);

  std::unique_lock<std::mutex> lock(mu_);
  const bool full = cfg_.max_queue != 0 && queue_.size() >= cfg_.max_queue;
  if (draining_ || full) {
    count("service.rejected_overload");
    const char* why = draining_ ? "server draining" : "queue full";
    lock.unlock();
    SolveResponse resp = rejected(item.req.id, why);
    // Rejections never queue: latencies are zero and no histogram
    // observation happens, but the request log still records them.
    log_request(resp, "rejected", 0, 0, 0, nullptr);
    item.cb(std::move(resp));
    return false;
  }
  count("service.accepted");
  queue_.push_back(std::move(item));
  lock.unlock();
  cv_.notify_one();
  return true;
}

void Broker::worker_loop() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) break;  // draining and nothing left
      item = std::move(queue_.front());
      queue_.pop_front();
      if (reject_queued_) {
        // SIGTERM drain: everything still queued fails fast.
        count("service.drained");
        lock.unlock();
        SolveResponse resp = rejected(item.req.id, "server draining");
        const std::uint64_t waited =
            us_between(item.submitted, std::chrono::steady_clock::now());
        log_request(resp, "drained", waited, 0, waited, nullptr);
        item.cb(std::move(resp));
        continue;
      }
    }
    run_item(std::move(item));
  }
  workers_alive_.fetch_sub(1, std::memory_order_relaxed);
}

void Broker::run_item(Item item) {
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  const auto dequeued = std::chrono::steady_clock::now();
  const std::uint64_t queue_us = us_between(item.submitted, dequeued);
  if (item.has_deadline && dequeued >= item.deadline) {
    count("service.deadline_expired");
    SolveResponse resp;
    resp.id = item.req.id;
    resp.status = StatusCode::kTimeout;
    resp.result.status = SolveResult::Status::kTruncated;
    resp.result.truncated = true;
    resp.result.truncation = Truncation::kDeadline;
    resp.detail = "deadline expired while queued";
    if (cfg_.metrics) {
      cfg_.metrics->histogram("service.latency.total", false)
          ->observe(queue_us);
      cfg_.metrics->histogram("service.latency.queue", false)
          ->observe(queue_us);
    }
    if (cfg_.window) cfg_.window->record(now_us(), queue_us);
    log_request(resp, "expired", queue_us, 0, queue_us, nullptr);
    item.cb(std::move(resp));
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  if (item.has_deadline) {
    // Queue wait counts against the request: solve with what remains.
    item.req.deadline_seconds =
        std::chrono::duration<double>(item.deadline - dequeued).count();
  } else {
    item.req.deadline_seconds = 0;
  }
  // Infra wiring is the broker's, not the client's: one shared cache and
  // in-flight table, the server's tracer/metrics.
  item.req.options.cache.store = cfg_.cache;
  item.req.options.cache.single_flight = &inflight_;
  item.req.options.cache.enabled = cfg_.cache != nullptr;
  item.req.options.exec.tracer = cfg_.tracer;
  item.req.options.exec.metrics = cfg_.metrics;
  SolveResponse resp = cfg_.solve_fn(item.req);
  resp.id = item.req.id;
  const auto done = std::chrono::steady_clock::now();
  const std::uint64_t solve_us = us_between(dequeued, done);
  const std::uint64_t total_us = us_between(item.submitted, done);
  count("service.completed");
  if (resp.result.coalesced) count("service.coalesced");
  if (resp.status == StatusCode::kTimeout &&
      resp.result.truncation == Truncation::kDeadline)
    count("service.deadline_expired");
  if (cfg_.metrics) {
    cfg_.metrics->histogram("service.latency.total", false)
        ->observe(total_us);
    cfg_.metrics->histogram("service.latency.queue", false)
        ->observe(queue_us);
    cfg_.metrics->histogram("service.latency.solve", false)
        ->observe(solve_us);
  }
  if (cfg_.window) cfg_.window->record(now_us(), total_us);
  log_request(resp, disposition_of(resp), queue_us, solve_us, total_us,
              &resp.result.stats);
  item.cb(std::move(resp));
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
}

void Broker::drain(DrainMode mode) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!draining_) {
      draining_ = true;
      reject_queued_ = mode == DrainMode::kRejectQueued;
    }
  }
  cv_.notify_all();
  // Serialize joiners; later callers see joinable() == false and fall
  // through once the first drain finished.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
}

std::size_t Broker::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace encodesat
