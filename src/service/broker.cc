#include "service/broker.h"

#include <utility>

#include "obs/counters.h"

namespace encodesat {

namespace {

/// Every counter the broker can emit, registered up front so the telemetry
/// name set does not depend on which paths ran.
constexpr const char* kServiceCounters[] = {
    "service.accepted",         "service.rejected_overload",
    "service.completed",        "service.coalesced",
    "service.deadline_expired", "service.drained",
};

}  // namespace

Broker::Broker(BrokerConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.workers < 1) cfg_.workers = 1;
  if (cfg_.metrics)
    for (const char* name : kServiceCounters)
      cfg_.metrics->counter(name, /*in_fingerprint=*/false);
  if (!cfg_.solve_fn)
    cfg_.solve_fn = [](const SolveRequest& req) { return solve(req); };
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

Broker::~Broker() { drain(DrainMode::kRejectQueued); }

void Broker::count(const char* name, std::uint64_t v) {
  if (cfg_.metrics) cfg_.metrics->counter(name, false)->add(v);
}

SolveResponse Broker::rejected(const std::string& id, const char* why) {
  SolveResponse resp;
  resp.id = id;
  resp.status = StatusCode::kOverloaded;
  resp.detail = why;
  return resp;
}

bool Broker::submit(SolveRequest req, Callback cb) {
  Item item;
  double deadline_s = req.deadline_seconds > 0
                          ? req.deadline_seconds
                          : cfg_.default_deadline_seconds;
  // The wire layer already bounds deadline_s, but submit() is a public
  // entry point: past ~1e9 s the duration_cast below overflows on
  // nanosecond-resolution clocks, so clamp for every caller.
  if (deadline_s > 1e9) deadline_s = 1e9;
  if (deadline_s > 0) {
    item.has_deadline = true;
    item.deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(deadline_s));
  }
  item.req = std::move(req);
  item.cb = std::move(cb);

  std::unique_lock<std::mutex> lock(mu_);
  const bool full = cfg_.max_queue != 0 && queue_.size() >= cfg_.max_queue;
  if (draining_ || full) {
    count("service.rejected_overload");
    const char* why = draining_ ? "server draining" : "queue full";
    lock.unlock();
    item.cb(rejected(item.req.id, why));
    return false;
  }
  count("service.accepted");
  queue_.push_back(std::move(item));
  lock.unlock();
  cv_.notify_one();
  return true;
}

void Broker::worker_loop() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) return;  // draining and nothing left
      item = std::move(queue_.front());
      queue_.pop_front();
      if (reject_queued_) {
        // SIGTERM drain: everything still queued fails fast.
        count("service.drained");
        lock.unlock();
        item.cb(rejected(item.req.id, "server draining"));
        continue;
      }
    }
    run_item(std::move(item));
  }
}

void Broker::run_item(Item item) {
  const auto now = std::chrono::steady_clock::now();
  if (item.has_deadline && now >= item.deadline) {
    count("service.deadline_expired");
    SolveResponse resp;
    resp.id = item.req.id;
    resp.status = StatusCode::kTimeout;
    resp.result.status = SolveResult::Status::kTruncated;
    resp.result.truncated = true;
    resp.result.truncation = Truncation::kDeadline;
    resp.detail = "deadline expired while queued";
    item.cb(std::move(resp));
    return;
  }
  if (item.has_deadline) {
    // Queue wait counts against the request: solve with what remains.
    item.req.deadline_seconds =
        std::chrono::duration<double>(item.deadline - now).count();
  } else {
    item.req.deadline_seconds = 0;
  }
  // Infra wiring is the broker's, not the client's: one shared cache and
  // in-flight table, the server's tracer/metrics.
  item.req.options.cache.store = cfg_.cache;
  item.req.options.cache.single_flight = &inflight_;
  item.req.options.cache.enabled = cfg_.cache != nullptr;
  item.req.options.exec.tracer = cfg_.tracer;
  item.req.options.exec.metrics = cfg_.metrics;
  SolveResponse resp = cfg_.solve_fn(item.req);
  resp.id = item.req.id;
  count("service.completed");
  if (resp.result.coalesced) count("service.coalesced");
  if (resp.status == StatusCode::kTimeout &&
      resp.result.truncation == Truncation::kDeadline)
    count("service.deadline_expired");
  item.cb(std::move(resp));
}

void Broker::drain(DrainMode mode) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!draining_) {
      draining_ = true;
      reject_queued_ = mode == DrainMode::kRejectQueued;
    }
  }
  cv_.notify_all();
  // Serialize joiners; later callers see joinable() == false and fall
  // through once the first drain finished.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
}

std::size_t Broker::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace encodesat
