// Minimal JSON for the service wire protocol (encodesat-service-v1).
//
// The repo deliberately carries no third-party JSON dependency — telemetry
// and trace output are string-built — but the *request* side of the NDJSON
// protocol needs a real parser (constraint text arrives as an escaped JSON
// string). This is a small, strict, recursive-descent implementation of
// RFC 8259: objects, arrays, strings (full escape set incl. \uXXXX with
// surrogate pairs, decoded to UTF-8), numbers, true/false/null. It rejects
// trailing garbage, unpaired surrogates, and nesting deeper than
// kMaxDepth. Numbers are held as double — adequate for the protocol's
// small integers (deadlines, budgets, thread counts).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace encodesat {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  /// Insertion-ordered members (duplicate keys: last wins on find()).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_object() const { return type == Type::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
};

/// Parses exactly one JSON value spanning the whole input (surrounding
/// whitespace allowed). Returns false and fills `*error` (when non-null)
/// with a byte-offset diagnostic on malformed input.
bool json_parse(const std::string& text, JsonValue* out,
                std::string* error = nullptr);

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included). Control characters become \u00XX.
std::string json_escape(const std::string& s);

}  // namespace encodesat
