#include "service/protocol.h"

#include <cmath>
#include <cstdio>

#include "service/json.h"

namespace encodesat {

namespace {

std::string quoted(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

/// Hard ranges for the client-controlled numbers. Casting an out-of-range
/// double to an integer type is undefined behavior, and a huge deadline
/// overflows the steady_clock duration math downstream, so the wire layer
/// rejects anything outside these bounds before any cast happens.
constexpr double kMaxWireDeadlineSeconds = 1e9;  ///< ~31 years
constexpr double kMaxWireWork = 1e18;            ///< < 2^63, exact cast
constexpr double kMaxWireThreads = 4096;

/// Validates and extracts one number field in [0, max]; a missing or null
/// member leaves `*out` untouched.
bool number_field(const JsonValue& obj, const char* key, double max,
                  double* out, std::string* error) {
  const JsonValue* v = obj.find(key);
  if (!v || v->is_null()) return true;
  if (!v->is_number() || v->number < 0 || !std::isfinite(v->number) ||
      v->number > max) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "field '%s' must be a number in [0, %g]",
                  key, max);
    *error = buf;
    return false;
  }
  *out = v->number;
  return true;
}

}  // namespace

bool parse_request(const std::string& line, WireRequest* out,
                   std::string* error) {
  *out = WireRequest{};
  JsonValue root;
  std::string jerr;
  if (!json_parse(line, &root, &jerr)) {
    *error = "bad request JSON: " + jerr;
    return false;
  }
  if (!root.is_object()) {
    *error = "request must be a JSON object";
    return false;
  }
  if (const JsonValue* id = root.find("id")) {
    if (!id->is_string()) {
      *error = "field 'id' must be a string";
      return false;
    }
    out->id = id->str;
  }
  if (const JsonValue* op = root.find("op")) {
    if (!op->is_string()) {
      *error = "field 'op' must be a string";
      return false;
    }
    if (op->str == "stats") {
      out->op = WireRequest::Op::kStats;
    } else if (op->str == "metrics") {
      out->op = WireRequest::Op::kMetrics;
    } else if (op->str == "health") {
      out->op = WireRequest::Op::kHealth;
    } else if (op->str != "solve") {
      *error = "unknown op '" + op->str + "'";
      return false;
    }
  }
  if (out->op != WireRequest::Op::kSolve) return true;

  const JsonValue* cs = root.find("constraints");
  if (!cs || !cs->is_string()) {
    *error = "solve request requires a string 'constraints' field";
    return false;
  }
  out->constraints = cs->str;

  if (!number_field(root, "deadline_s", kMaxWireDeadlineSeconds,
                    &out->deadline_seconds, error))
    return false;

  if (const JsonValue* opts = root.find("options")) {
    if (!opts->is_object()) {
      *error = "field 'options' must be an object";
      return false;
    }
    if (const JsonValue* p = opts->find("pipeline")) {
      if (!p->is_string()) {
        *error = "option 'pipeline' must be a string";
        return false;
      }
      out->pipeline = p->str;
    }
    double max_work = 0, threads = 0;
    if (!number_field(*opts, "max_work", kMaxWireWork, &max_work, error))
      return false;
    if (!number_field(*opts, "threads", kMaxWireThreads, &threads, error))
      return false;
    out->max_work = static_cast<std::uint64_t>(max_work);
    out->threads = static_cast<int>(threads);
  }
  return true;
}

bool apply_wire_options(const WireRequest& req, SolveOptions* opts) {
  if (!req.pipeline.empty()) {
    if (req.pipeline == "auto")
      opts->pipeline = SolveOptions::Pipeline::kAuto;
    else if (req.pipeline == "exact")
      opts->pipeline = SolveOptions::Pipeline::kExact;
    else if (req.pipeline == "extensions")
      opts->pipeline = SolveOptions::Pipeline::kExtensions;
    else
      return false;
  }
  if (req.max_work != 0) opts->exec.max_work = req.max_work;
  if (req.threads != 0) opts->exec.threads = req.threads;
  return true;
}

std::string render_response(const SolveResponse& resp,
                            const SymbolTable* symbols) {
  std::string out = "{\"id\":" + quoted(resp.id) + ",\"status\":\"";
  out += status_code_name(resp.status);
  out += '"';
  switch (resp.status) {
    case StatusCode::kOk: {
      const Encoding& enc = resp.result.encoding;
      out += ",\"bits\":" + std::to_string(enc.bits);
      out += resp.result.minimal ? ",\"minimal\":true" : ",\"minimal\":false";
      out += resp.result.truncated ? ",\"truncated\":true"
                                   : ",\"truncated\":false";
      if (resp.result.truncated) {
        out += ",\"truncation\":\"";
        out += truncation_name(resp.result.truncation);
        out += '"';
      }
      out += ",\"codes\":{";
      for (std::uint32_t i = 0; i < enc.num_symbols(); ++i) {
        if (i) out += ',';
        const std::string name =
            symbols && i < symbols->size() ? symbols->name(i)
                                           : "#" + std::to_string(i);
        out += quoted(name) + ":\"" + enc.code_string(i) + '"';
      }
      out += '}';
      break;
    }
    case StatusCode::kInfeasible:
      out += ",\"uncovered\":" + std::to_string(resp.result.uncovered.size());
      break;
    case StatusCode::kTimeout:
    case StatusCode::kCanceled:
      out += ",\"truncation\":\"";
      out += truncation_name(resp.result.truncation);
      out += '"';
      break;
    case StatusCode::kParseError:
      out += ",\"error\":{\"message\":" + quoted(resp.parse_error.message);
      if (resp.parse_error.line > 0) {
        out += ",\"line\":" + std::to_string(resp.parse_error.line);
        out += ",\"col\":" + std::to_string(resp.parse_error.column);
      }
      out += '}';
      break;
    case StatusCode::kOverloaded:
    case StatusCode::kInternal:
      out += ",\"error\":{\"message\":" + quoted(resp.detail) + '}';
      break;
  }
  out += '}';
  return out;
}

std::string render_error_response(const std::string& id, StatusCode status,
                                  const std::string& message) {
  SolveResponse resp;
  resp.id = id;
  resp.status = status;
  if (status == StatusCode::kParseError) {
    resp.parse_error.message = message;
  } else {
    resp.detail = message;
  }
  return render_response(resp, nullptr);
}

std::string render_busy_response() {
  return render_error_response("", StatusCode::kOverloaded, "server busy");
}

std::string render_oversized_line_response(std::size_t limit_bytes) {
  return render_error_response(
      "", StatusCode::kParseError,
      "request line exceeds " + std::to_string(limit_bytes) + " bytes");
}

std::string render_stats_response(const std::string& id,
                                  const std::string& telemetry_json) {
  return "{\"id\":" + quoted(id) + ",\"status\":\"ok\",\"stats\":" +
         telemetry_json + "}";
}

std::string render_metrics_response(const std::string& id,
                                    const std::string& exposition_text) {
  return "{\"id\":" + quoted(id) + ",\"status\":\"ok\",\"metrics\":" +
         quoted(exposition_text) + "}";
}

std::string render_health_response(const std::string& id,
                                   const HealthStatus& health) {
  std::string out = "{\"id\":" + quoted(id) + ",\"status\":\"ok\",\"health\":{";
  out += "\"state\":\"";
  out += health.draining ? "draining" : "serving";
  out += "\",\"queue_depth\":" + std::to_string(health.queue_depth);
  out += ",\"in_flight\":" + std::to_string(health.in_flight);
  out += ",\"workers\":" + std::to_string(health.workers);
  out += ",\"workers_alive\":" + std::to_string(health.workers_alive);
  out += ",\"connections\":" + std::to_string(health.connections);
  out += ",\"uptime_us\":" + std::to_string(health.uptime_us);
  out += "}}";
  return out;
}

}  // namespace encodesat
