#include "service/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace encodesat {

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty())
      error = msg + " at offset " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  bool literal(const char* word, std::size_t len) {
    if (text.compare(pos, len, word) != 0) return fail("invalid literal");
    pos += len;
    return true;
  }

  // Appends the UTF-8 encoding of `cp` to out.
  static void append_utf8(std::uint32_t cp, std::string& out) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool hex4(std::uint32_t* out) {
    if (pos + 4 > text.size()) return fail("truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos + i];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else return fail("bad hex digit in \\u escape");
    }
    pos += 4;
    *out = v;
    return true;
  }

  bool parse_string(std::string* out) {
    if (text[pos] != '"') return fail("expected string");
    ++pos;
    out->clear();
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        *out += c;
        ++pos;
        continue;
      }
      if (++pos >= text.size()) return fail("truncated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!hex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a \uDC00-\uDFFF low half must follow.
            if (pos + 1 >= text.size() || text[pos] != '\\' ||
                text[pos + 1] != 'u')
              return fail("unpaired high surrogate");
            pos += 2;
            std::uint32_t lo = 0;
            if (!hex4(&lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF)
              return fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired low surrogate");
          }
          append_utf8(cp, *out);
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    auto digits = [&] {
      const std::size_t d = pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
      return pos > d;
    };
    if (!digits()) return fail("expected digits");
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      if (!digits()) return fail("expected fraction digits");
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (!digits()) return fail("expected exponent digits");
    }
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(text.c_str() + start, nullptr);
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    switch (c) {
      case '{': {
        ++pos;
        out->type = JsonValue::Type::kObject;
        skip_ws();
        if (pos < text.size() && text[pos] == '}') {
          ++pos;
          return true;
        }
        for (;;) {
          skip_ws();
          std::string key;
          if (pos >= text.size() || !parse_string(&key)) return false;
          skip_ws();
          if (pos >= text.size() || text[pos] != ':')
            return fail("expected ':'");
          ++pos;
          JsonValue v;
          if (!parse_value(&v, depth + 1)) return false;
          out->object.emplace_back(std::move(key), std::move(v));
          skip_ws();
          if (pos >= text.size()) return fail("unterminated object");
          if (text[pos] == ',') {
            ++pos;
            continue;
          }
          if (text[pos] == '}') {
            ++pos;
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++pos;
        out->type = JsonValue::Type::kArray;
        skip_ws();
        if (pos < text.size() && text[pos] == ']') {
          ++pos;
          return true;
        }
        for (;;) {
          JsonValue v;
          if (!parse_value(&v, depth + 1)) return false;
          out->array.push_back(std::move(v));
          skip_ws();
          if (pos >= text.size()) return fail("unterminated array");
          if (text[pos] == ',') {
            ++pos;
            continue;
          }
          if (text[pos] == ']') {
            ++pos;
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '"':
        out->type = JsonValue::Type::kString;
        return parse_string(&out->str);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return literal("true", 4);
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return literal("false", 5);
      case 'n':
        out->type = JsonValue::Type::kNull;
        return literal("null", 4);
      default:
        return parse_number(out);
    }
  }
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : object)
    if (k == key) found = &v;
  return found;
}

bool json_parse(const std::string& text, JsonValue* out, std::string* error) {
  Parser p{text};
  JsonValue v;
  if (!p.parse_value(&v, 0)) {
    if (error) *error = p.error;
    return false;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error) *error = "trailing garbage at offset " + std::to_string(p.pos);
    return false;
  }
  *out = std::move(v);
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

}  // namespace encodesat
