// Transports for the solve service (`encodesat serve`).
//
// Three NDJSON transports over one Broker:
//
//  * run_pipe(in_fd, out_fd) — one session over a pair of byte streams
//    (stdin/stdout in the CLI; pipe pairs in tests). Ends on EOF, which
//    drains kFinishQueued: everything already read is answered.
//  * run_unix_socket(path) — a listening Unix-domain socket.
//  * run_tcp(host_port) — a listening TCP socket ("HOST:PORT", IPv4 or
//    IPv6, SO_REUSEADDR; port 0 picks an ephemeral port, readable via
//    bound_port()).
//
// Both listeners share one connection-lifecycle event loop: a single
// thread poll()s {listen fd, signal pipe, wake pipe, every live
// connection fd}, reads non-blocking, parses NDJSON lines in place and
// dispatches them into the broker. There are no per-connection reader
// threads; a connection is three fields of state (fd, Session, read
// buffer) and is **reaped eagerly** — the moment its client is gone and
// its last response was written, the fd is closed and the Session freed,
// so a long-running server under client churn holds resources
// proportional to *live* connections, never to connections ever accepted.
//
// Lifecycle edges, all observable as `service.conn.*` counters and as
// the `connections` gauge in the `health`/`metrics` ops:
//
//  * Admission (`max_conns`): a connection accepted past the cap is
//    answered with one "server busy" overloaded line and closed
//    immediately — it never gets a Session.
//  * Line cap (`max_line_bytes`): a client that streams bytes without a
//    newline past the cap gets one parse_error line, then its
//    connection is closed (after every pending response flushed).
//  * Idle timeout (`idle_timeout_ms`): a connection with no client bytes
//    for that long is closed once its pending responses flushed.
//  * EOF / client error: the connection stops reading; responses for
//    requests already read still flow, then the connection is reaped.
//
// Reaping preserves the in-order response guarantee via a
// deliver-then-reap handoff: broker workers deliver responses through
// the connection's Session (in request order, as before); the delivery
// that completes the last outstanding slot of an EOF'd connection
// notifies the event loop over the wake pipe, and the *loop* — never a
// worker — closes the fd and drops the Session. Workers hold the Session
// by shared_ptr, so a response in flight can never race the reap.
//
// Both loops poll a self-pipe alongside their input fds. request_drain()
// (async-signal-safe; ScopedDrainSignals routes SIGTERM/SIGINT to it)
// makes the loop stop reading and drain kRejectQueued: in-flight solves
// finish and are answered, queued requests complete as `overloaded`,
// request lines never read are never answered. run_* returns only after
// the broker drained and every accepted response was written, so the
// caller can flush caches (--cache-save) and telemetry safely.
//
// Responses are written strictly in request order per session (the broker
// completes out of order; a per-session sequence number + reorder buffer
// restores arrival order), which keeps pipe-mode output byte-stable and
// golden-testable. A client that disappears mid-session (write error) or
// stops reading (no write progress for write_timeout_ms) has its
// remaining output discarded; the solves still run. Writes happen outside
// the session lock so a slow client never blocks response delivery for
// other requests beyond the ordering it asked for.
#pragma once

#include <atomic>
#include <csignal>
#include <cstddef>
#include <memory>
#include <string>

#include "service/broker.h"

namespace encodesat {

class Tracer;

struct ServerConfig {
  BrokerConfig broker;
  /// Used by the `stats` and `metrics` ops to render telemetry (typically
  /// the same registry/tracer installed on `broker`). Both optional.
  MetricsRegistry* metrics = nullptr;
  const Tracer* tracer = nullptr;
  /// Rolling latency window scraped by the `stats`/`metrics` ops for the
  /// 1m/5m rate and percentile gauges (typically the same window installed
  /// on `broker`); null omits those gauges. Borrowed.
  const RollingWindow* window = nullptr;
  /// Stall budget per response write: a client whose output fd makes no
  /// progress for this long is treated as gone — the session goes dead
  /// and its remaining output is discarded, instead of a stuck write
  /// wedging a broker worker (and with it the SIGTERM drain, which joins
  /// the workers). <= 0 waits forever.
  int write_timeout_ms = 10000;
  /// listen(2) backlog for the socket transports (`--backlog`).
  int backlog = 128;
  /// Admission cap on live connections (`--max-conns`); a connection
  /// accepted past the cap is answered "server busy" and closed.
  /// 0 = unlimited.
  int max_conns = 0;
  /// Per-connection line-buffer cap (`--max-line-bytes`): a client that
  /// sends this many bytes without a newline gets a parse_error and its
  /// connection closed. Applies to pipe mode too (the session ends as if
  /// on EOF). Must be >= 1.
  std::size_t max_line_bytes = 1u << 20;
  /// Close connections with no client bytes for this long
  /// (`--idle-timeout`); 0 disables. Socket transports only.
  int idle_timeout_ms = 0;
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves one session reading NDJSON requests from `in_fd` and writing
  /// responses to `out_fd` until EOF or request_drain(). Returns 0, or -1
  /// when the server's own plumbing failed (never for client errors).
  int run_pipe(int in_fd, int out_fd);

  /// Binds `path` and serves connections until request_drain(). A stale
  /// socket file (no listener behind it) is unlinked and replaced; a
  /// *live* one — probed with a connect before any unlink — is refused,
  /// so starting a second server cannot delete a running server's
  /// socket. Returns 0, or -1 on failure (see last_error()).
  int run_unix_socket(const std::string& path);

  /// Binds "HOST:PORT" (IPv4, IPv6 as "[::1]:PORT", empty host = all
  /// interfaces, port 0 = ephemeral) with SO_REUSEADDR and serves
  /// connections until request_drain() — the same event loop, reaping,
  /// caps and drain semantics as the Unix-socket transport. Returns 0,
  /// or -1 on failure (see last_error()).
  int run_tcp(const std::string& host_port);

  /// Makes the running transport loop stop accepting input and drain
  /// kRejectQueued. Async-signal-safe (writes one byte to a self-pipe);
  /// callable from any thread, before or during run_*.
  void request_drain();

  Broker& broker() { return broker_; }

  /// The TCP listen port once run_tcp has bound (0 before); the way a
  /// caller using port 0 learns the ephemeral port.
  int bound_port() const { return bound_port_.load(std::memory_order_acquire); }

  /// Live (accepted, not yet reaped) connections — the `connections`
  /// gauge. 1 in pipe mode while the session is open.
  int live_connections() const {
    return live_conns_.load(std::memory_order_relaxed);
  }

  /// Diagnostic for the last run_* that returned -1 ("socket path X is in
  /// use by a live server", "cannot bind HOST:PORT: ...", ...).
  const std::string& last_error() const { return last_error_; }

 private:
  class Session;

  /// Dispatches one request line into the broker (or answers protocol
  /// errors / the stats op directly). `seq` orders the response.
  void handle_line(const std::shared_ptr<Session>& session, std::uint64_t seq,
                   const std::string& line);

  /// The shared listener event loop (see the file comment). Owns and
  /// closes `listen_fd`; `path` is unlinked on exit when non-empty.
  int run_listener(int listen_fd, const std::string& unlink_path);

  /// Extracts complete lines from `*buffer` (stripping \r, skipping
  /// blanks) and dispatches each through handle_line. Returns false when
  /// a line — or the unterminated remainder — exceeds max_line_bytes;
  /// the caller answers with the oversized shape and ends the session.
  bool consume_lines(const std::shared_ptr<Session>& session,
                     std::string* buffer);

  /// Counts + logs the oversized-line event and delivers its parse_error
  /// response through the session (in order, like any response).
  void reject_oversized(const std::shared_ptr<Session>& session);

  void count_conn(const char* name);

  ServerConfig cfg_;
  Broker broker_;
  int signal_pipe_[2] = {-1, -1};
  std::atomic<int> bound_port_{0};
  std::atomic<int> live_conns_{0};
  std::string last_error_;
};

/// Routes SIGTERM and SIGINT to server->request_drain() for its lifetime
/// (and ignores SIGPIPE, so vanished clients surface as write errors, not
/// process death). Restores the previous dispositions on destruction.
/// One instance at a time, from the main thread.
class ScopedDrainSignals {
 public:
  explicit ScopedDrainSignals(Server* server);
  ~ScopedDrainSignals();

  ScopedDrainSignals(const ScopedDrainSignals&) = delete;
  ScopedDrainSignals& operator=(const ScopedDrainSignals&) = delete;

 private:
  struct sigaction old_term_;
  struct sigaction old_int_;
  struct sigaction old_pipe_;
};

}  // namespace encodesat
