// Transports for the solve service (`encodesat serve`).
//
// Two NDJSON transports over one Broker:
//
//  * run_pipe(in_fd, out_fd) — one session over a pair of byte streams
//    (stdin/stdout in the CLI; pipe pairs in tests). Ends on EOF, which
//    drains kFinishQueued: everything already read is answered.
//  * run_unix_socket(path) — a listening Unix-domain socket, one reader
//    thread and one Session per connection.
//
// Both loops poll a self-pipe alongside their input fd. request_drain()
// (async-signal-safe; ScopedDrainSignals routes SIGTERM/SIGINT to it)
// makes the loop stop reading and drain kRejectQueued: in-flight solves
// finish and are answered, queued requests complete as `overloaded`,
// request lines never read are never answered. run_* returns only after
// the broker drained and every accepted response was written, so the
// caller can flush caches (--cache-save) and telemetry safely.
//
// Responses are written strictly in request order per session (the broker
// completes out of order; a per-session sequence number + reorder buffer
// restores arrival order), which keeps pipe-mode output byte-stable and
// golden-testable. A client that disappears mid-session (write error) or
// stops reading (no write progress for write_timeout_ms) has its
// remaining output discarded; the solves still run. Writes happen outside
// the session lock so a slow client never blocks response delivery for
// other requests beyond the ordering it asked for.
#pragma once

#include <csignal>
#include <memory>
#include <string>

#include "service/broker.h"

namespace encodesat {

class Tracer;

struct ServerConfig {
  BrokerConfig broker;
  /// Used by the `stats` and `metrics` ops to render telemetry (typically
  /// the same registry/tracer installed on `broker`). Both optional.
  MetricsRegistry* metrics = nullptr;
  const Tracer* tracer = nullptr;
  /// Rolling latency window scraped by the `stats`/`metrics` ops for the
  /// 1m/5m rate and percentile gauges (typically the same window installed
  /// on `broker`); null omits those gauges. Borrowed.
  const RollingWindow* window = nullptr;
  /// Stall budget per response write: a client whose output fd makes no
  /// progress for this long is treated as gone — the session goes dead
  /// and its remaining output is discarded, instead of a stuck write
  /// wedging a broker worker (and with it the SIGTERM drain, which joins
  /// the workers). <= 0 waits forever.
  int write_timeout_ms = 10000;
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves one session reading NDJSON requests from `in_fd` and writing
  /// responses to `out_fd` until EOF or request_drain(). Returns 0, or -1
  /// when the server's own plumbing failed (never for client errors).
  int run_pipe(int in_fd, int out_fd);

  /// Binds `path` (unlinking any stale socket first), accepts connections
  /// until request_drain(). Returns 0, or -1 on bind/listen failure.
  int run_unix_socket(const std::string& path);

  /// Makes the running transport loop stop accepting input and drain
  /// kRejectQueued. Async-signal-safe (writes one byte to a self-pipe);
  /// callable from any thread, before or during run_*.
  void request_drain();

  Broker& broker() { return broker_; }

 private:
  class Session;

  /// Dispatches one request line into the broker (or answers protocol
  /// errors / the stats op directly). `seq` orders the response.
  void handle_line(Session* session, std::uint64_t seq,
                   const std::string& line);

  ServerConfig cfg_;
  Broker broker_;
  int signal_pipe_[2] = {-1, -1};
};

/// Routes SIGTERM and SIGINT to server->request_drain() for its lifetime
/// (and ignores SIGPIPE, so vanished clients surface as write errors, not
/// process death). Restores the previous dispositions on destruction.
/// One instance at a time, from the main thread.
class ScopedDrainSignals {
 public:
  explicit ScopedDrainSignals(Server* server);
  ~ScopedDrainSignals();

  ScopedDrainSignals(const ScopedDrainSignals&) = delete;
  ScopedDrainSignals& operator=(const ScopedDrainSignals&) = delete;

 private:
  struct sigaction old_term_;
  struct sigaction old_int_;
  struct sigaction old_pipe_;
};

}  // namespace encodesat
