#include "service/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <climits>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/counters.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "service/protocol.h"

namespace encodesat {

namespace {

/// Every connection-lifecycle counter the transports can emit, registered
/// up front (non-fingerprint: they depend on client arrival and timing)
/// so the telemetry name set does not depend on which paths ran.
constexpr const char* kConnCounters[] = {
    "service.conn.accepted",       "service.conn.reaped",
    "service.conn.rejected_overload", "service.conn.oversized_line",
    "service.conn.idle_closed",
};

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

void set_nonblock(int fd) {
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Full write with EINTR/EAGAIN retry; MSG_NOSIGNAL on sockets so a
/// vanished client is an EPIPE error, not a signal. Each chunk first
/// waits for writability (up to `timeout_ms` when > 0, else forever), so
/// connection fds may be non-blocking and a client that stops reading
/// (full socket/pipe buffer) bounds the stall instead of blocking the
/// calling thread forever. False on any write error or stall past the
/// budget.
bool write_all(int fd, bool is_socket, const std::string& data,
               int timeout_ms) {
  std::size_t off = 0;
  while (off < data.size()) {
    struct pollfd pfd = {fd, POLLOUT, 0};
    const int pr = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : -1);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (pr == 0) return false;  // stalled client
    if (pfd.revents & (POLLERR | POLLNVAL)) return false;
    const ssize_t n =
        is_socket ? ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL)
                  : ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

/// One client conversation: allocates a sequence number per request line
/// (transport thread only) and writes responses back in that order,
/// buffering out-of-order completions from the broker's workers.
///
/// Lifetime: held by shared_ptr — the transport's connection entry plus
/// every broker callback still pending for it — so a response delivery
/// can never race the transport reaping the connection. The drain
/// handoff: once the transport marks EOF (no more slots will be
/// allocated), the deliver() that completes the last outstanding slot
/// fires `on_drained`, and the event loop closes the fd and drops its
/// reference. The fd is borrowed, never closed here.
class Server::Session {
 public:
  Session(int out_fd, bool is_socket, int write_timeout_ms,
          std::function<void()> on_drained = {})
      : fd_(out_fd),
        socket_(is_socket),
        write_timeout_ms_(write_timeout_ms),
        on_drained_(std::move(on_drained)) {}

  /// Transport thread only: the order slot for the next request line.
  std::uint64_t alloc_seq() { return allocated_++; }

  /// Any thread: queues `line` for slot `seq`, then flushes every ready
  /// line in order. The actual write happens *outside* the session lock
  /// (one writer at a time; concurrent callers enqueue and return, the
  /// active writer picks their lines up), so a slow client never holds
  /// the lock against other completions. After a write error or a stall
  /// past write_timeout_ms the session goes dead and output is discarded
  /// (slots still advance so wait_flushed() terminates).
  void deliver(std::uint64_t seq, std::string line) {
    bool drained_now = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      pending_.emplace(seq, std::move(line));
      if (writing_) return;  // the active writer will flush this slot
      writing_ = true;
      std::string batch;
      for (;;) {
        batch.clear();
        for (auto it = pending_.find(next_to_write_); it != pending_.end();
             it = pending_.find(next_to_write_)) {
          if (!dead_) {
            batch += it->second;
            batch += '\n';
          }
          pending_.erase(it);
          ++next_to_write_;
        }
        if (batch.empty()) break;
        lock.unlock();
        const bool ok = write_all(fd_, socket_, batch, write_timeout_ms_);
        lock.lock();
        if (!ok) dead_ = true;
      }
      writing_ = false;
      drained_now = eof_ && next_to_write_ == allocated_;
      cv_.notify_all();
    }
    // Fired outside the lock; the hook only pokes the event loop's wake
    // pipe, and the loop re-checks drained() before reaping.
    if (drained_now && on_drained_) on_drained_();
  }

  /// Transport thread only: no further alloc_seq() calls will happen.
  /// Returns true when the session is already drained (every slot
  /// written or discarded, no write in flight) — the caller may reap
  /// immediately; otherwise the finishing deliver() fires `on_drained`.
  bool mark_eof() {
    std::lock_guard<std::mutex> lock(mu_);
    eof_ = true;
    return !writing_ && next_to_write_ == allocated_;
  }

  /// True once EOF was marked and every allocated slot has been written
  /// (or discarded) with no write in flight — safe to close the fd and
  /// drop the session.
  bool drained() {
    std::lock_guard<std::mutex> lock(mu_);
    return eof_ && !writing_ && next_to_write_ == allocated_;
  }

  /// Blocks until every allocated slot has been written (or discarded)
  /// and no write is in flight. Call after the transport stopped
  /// allocating and the broker guaranteed a response per slot (i.e.
  /// after drain()).
  void wait_flushed() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock,
             [this] { return !writing_ && next_to_write_ == allocated_; });
  }

 private:
  const int fd_;
  const bool socket_;
  const int write_timeout_ms_;
  const std::function<void()> on_drained_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t allocated_ = 0;
  std::uint64_t next_to_write_ = 0;
  std::map<std::uint64_t, std::string> pending_;
  bool writing_ = false;  ///< a deliver() call is mid-write, lock dropped
  bool dead_ = false;
  bool eof_ = false;  ///< no more slots will be allocated
};

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)), broker_(cfg_.broker) {
  if (cfg_.max_line_bytes < 1) cfg_.max_line_bytes = 1;
  if (cfg_.backlog < 1) cfg_.backlog = 1;
  if (cfg_.metrics)
    for (const char* name : kConnCounters)
      cfg_.metrics->counter(name, /*in_fingerprint=*/false);
  if (::pipe(signal_pipe_) != 0) {
    signal_pipe_[0] = signal_pipe_[1] = -1;
    return;
  }
  for (const int fd : signal_pipe_) {
    set_cloexec(fd);
    set_nonblock(fd);
  }
}

Server::~Server() {
  for (const int fd : signal_pipe_)
    if (fd >= 0) ::close(fd);
}

void Server::request_drain() {
  if (signal_pipe_[1] < 0) return;
  const char byte = 1;
  // Best-effort and async-signal-safe; a full pipe already means a drain
  // byte is pending.
  [[maybe_unused]] const ssize_t n = ::write(signal_pipe_[1], &byte, 1);
}

void Server::count_conn(const char* name) {
  if (cfg_.metrics) cfg_.metrics->counter(name, false)->add(1);
}

void Server::handle_line(const std::shared_ptr<Session>& session,
                         std::uint64_t seq, const std::string& line) {
  WireRequest wire;
  std::string perr_msg;
  if (!parse_request(line, &wire, &perr_msg)) {
    session->deliver(
        seq, render_error_response(wire.id, StatusCode::kParseError,
                                   perr_msg));
    return;
  }
  if (wire.op == WireRequest::Op::kStats ||
      wire.op == WireRequest::Op::kMetrics) {
    // Both scrape ops share one view: the registry, the live broker gauges
    // (so `stats` and `metrics` agree), and a freshened obs.trace.dropped
    // high-water mark.
    if (cfg_.metrics && cfg_.tracer)
      cfg_.metrics->counter("obs.trace.dropped", /*in_fingerprint=*/false)
          ->record_max(cfg_.tracer->dropped_spans());
    TelemetryOptions topts;
    topts.tool = "serve";
    topts.metrics = cfg_.metrics;
    topts.tracer = cfg_.tracer;
    topts.gauges.push_back(
        {"service.queue_depth", static_cast<double>(broker_.queue_depth())});
    topts.gauges.push_back(
        {"service.in_flight", static_cast<double>(broker_.in_flight())});
    topts.gauges.push_back({"service.workers_alive",
                            static_cast<double>(broker_.workers_alive())});
    topts.gauges.push_back(
        {"service.connections", static_cast<double>(live_connections())});
    if (cfg_.window) {
      const std::uint64_t now = broker_.now_us();
      const struct {
        const char* prefix;
        std::uint64_t horizon_us;
      } spans[] = {{"service.window.1m", 60'000'000ull},
                   {"service.window.5m", 300'000'000ull}};
      for (const auto& span : spans) {
        const RollingWindow::Stats s =
            cfg_.window->stats(now, span.horizon_us);
        const std::string p = span.prefix;
        topts.gauges.push_back({p + ".rate", s.rate_per_s});
        topts.gauges.push_back({p + ".p50", static_cast<double>(s.p50)});
        topts.gauges.push_back({p + ".p95", static_cast<double>(s.p95)});
        topts.gauges.push_back({p + ".p99", static_cast<double>(s.p99)});
      }
    }
    session->deliver(
        seq, wire.op == WireRequest::Op::kStats
                 ? render_stats_response(wire.id, telemetry_to_json(topts))
                 : render_metrics_response(wire.id,
                                           render_prometheus_text(topts)));
    return;
  }
  if (wire.op == WireRequest::Op::kHealth) {
    HealthStatus health;
    health.draining = broker_.draining();
    health.queue_depth = broker_.queue_depth();
    health.in_flight = broker_.in_flight();
    health.workers = broker_.config().workers;
    health.workers_alive = broker_.workers_alive();
    health.connections = live_connections();
    health.uptime_us = broker_.now_us();
    session->deliver(seq, render_health_response(wire.id, health));
    return;
  }
  ParseError perr;
  std::optional<ConstraintSet> cs = parse_constraints(wire.constraints, &perr);
  if (!cs) {
    SolveResponse resp;
    resp.id = wire.id;
    resp.status = StatusCode::kParseError;
    resp.parse_error = perr;
    session->deliver(seq, render_response(resp, nullptr));
    return;
  }
  SolveOptions opts = broker_.config().base_options;
  if (!apply_wire_options(wire, &opts)) {
    session->deliver(
        seq, render_error_response(wire.id, StatusCode::kParseError,
                                   "unknown pipeline '" + wire.pipeline +
                                       "'"));
    return;
  }
  // The response renders codes by name in the *request's* symbol order, so
  // keep a copy of the table across the solve.
  SymbolTable symbols = cs->symbols();
  SolveRequest req;
  req.id = wire.id;
  req.constraints = std::move(*cs);
  req.options = std::move(opts);
  req.deadline_seconds = wire.deadline_seconds;
  broker_.submit(std::move(req),
                 [session, seq, symbols = std::move(symbols)](
                     SolveResponse resp) {
                   session->deliver(seq, render_response(resp, &symbols));
                 });
}

bool Server::consume_lines(const std::shared_ptr<Session>& session,
                           std::string* buffer) {
  std::size_t start = 0;
  for (std::size_t nl; (nl = buffer->find('\n', start)) != std::string::npos;
       start = nl + 1) {
    if (nl - start > cfg_.max_line_bytes) {
      buffer->clear();
      return false;
    }
    std::string line = buffer->substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    handle_line(session, session->alloc_seq(), line);
  }
  buffer->erase(0, start);
  if (buffer->size() > cfg_.max_line_bytes) {
    buffer->clear();
    return false;
  }
  return true;
}

void Server::reject_oversized(const std::shared_ptr<Session>& session) {
  count_conn("service.conn.oversized_line");
  broker_.log_transport_event("conn_oversized", "parse_error");
  session->deliver(session->alloc_seq(),
                   render_oversized_line_response(cfg_.max_line_bytes));
}

int Server::run_pipe(int in_fd, int out_fd) {
  if (signal_pipe_[0] < 0) return -1;
  auto session = std::make_shared<Session>(out_fd, /*is_socket=*/false,
                                           cfg_.write_timeout_ms);
  live_conns_.store(1, std::memory_order_relaxed);
  std::string buffer;
  bool signaled = false;
  bool oversized = false;
  char chunk[65536];
  for (;;) {
    struct pollfd fds[2] = {{in_fd, POLLIN, 0}, {signal_pipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents & POLLIN) {
      signaled = true;
      break;
    }
    if (!(fds[0].revents & (POLLIN | POLLHUP | POLLERR))) continue;
    const ssize_t n = ::read(in_fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // EOF: finish everything queued
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (!consume_lines(session, &buffer)) {
      // A newline-less flood past the cap ends the session like EOF:
      // answer with the oversized shape, stop reading, finish queued.
      reject_oversized(session);
      oversized = true;
      break;
    }
  }
  if (!signaled && !oversized && !buffer.empty()) {
    // Final line without a trailing newline still counts.
    if (buffer.back() == '\r') buffer.pop_back();
    if (!buffer.empty())
      handle_line(session, session->alloc_seq(), buffer);
  }
  broker_.drain(signaled ? DrainMode::kRejectQueued
                         : DrainMode::kFinishQueued);
  session->wait_flushed();
  live_conns_.store(0, std::memory_order_relaxed);
  return 0;
}

int Server::run_listener(int listen_fd, const std::string& unlink_path) {
  set_cloexec(listen_fd);
  set_nonblock(listen_fd);
  int wake[2];
  if (::pipe(wake) != 0) {
    ::close(listen_fd);
    last_error_ = "cannot create wake pipe";
    return -1;
  }
  for (const int fd : wake) {
    set_cloexec(fd);
    set_nonblock(fd);
  }

  using Clock = std::chrono::steady_clock;
  struct Conn {
    std::shared_ptr<Session> session;
    std::string buffer;
    bool eof = false;  ///< stop reading; reap once the session drained
    Clock::time_point last_activity;
  };
  // Keyed by fd; an fd is erased (and only then closed) before it could
  // ever be reused by a new accept, so keys never alias.
  std::map<int, Conn> conns;

  const auto reap = [&](int fd) {
    const auto it = conns.find(fd);
    if (it == conns.end()) return;
    ::close(fd);
    conns.erase(it);
    live_conns_.fetch_sub(1, std::memory_order_relaxed);
    count_conn("service.conn.reaped");
  };
  // Transition a connection into the no-more-reads state; reaps right
  // away when nothing is pending (the common churn case), otherwise the
  // final deliver() pokes the wake pipe.
  const auto end_reads = [&](int fd, Conn& conn) {
    conn.eof = true;
    if (conn.session->mark_eof()) reap(fd);
  };

  char chunk[65536];
  std::vector<struct pollfd> fds;
  for (;;) {
    fds.clear();
    fds.push_back({listen_fd, POLLIN, 0});
    fds.push_back({signal_pipe_[0], POLLIN, 0});
    fds.push_back({wake[0], POLLIN, 0});
    for (const auto& [fd, conn] : conns)
      if (!conn.eof) fds.push_back({fd, POLLIN, 0});

    int timeout_ms = -1;
    if (cfg_.idle_timeout_ms > 0) {
      const auto now = Clock::now();
      for (const auto& [fd, conn] : conns) {
        if (conn.eof) continue;
        const auto deadline =
            conn.last_activity + std::chrono::milliseconds(cfg_.idle_timeout_ms);
        const long long left =
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                  now)
                .count();
        const int left_ms =
            left < 1 ? 1 : static_cast<int>(std::min<long long>(left, INT_MAX));
        if (timeout_ms < 0 || left_ms < timeout_ms) timeout_ms = left_ms;
      }
    }

    const int pr = ::poll(fds.data(), fds.size(), timeout_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents & POLLIN) break;  // drain requested

    if (fds[2].revents & POLLIN) {
      // Deliver-then-reap handoff: a worker finished the last response of
      // an EOF'd connection. Drain the wake bytes, then reap everything
      // drained (the check is authoritative, the byte just a doorbell).
      char drainbuf[256];
      while (::read(wake[0], drainbuf, sizeof drainbuf) > 0) {
      }
      std::vector<int> done;
      for (const auto& [fd, conn] : conns)
        if (conn.eof && conn.session->drained()) done.push_back(fd);
      for (const int fd : done) reap(fd);
    }

    if (fds[0].revents & POLLIN) {
      for (;;) {
        const int cfd = ::accept(listen_fd, nullptr, nullptr);
        if (cfd < 0) break;  // EAGAIN, or a transient accept error
        set_cloexec(cfd);
        set_nonblock(cfd);
        if (cfg_.max_conns > 0 &&
            static_cast<int>(conns.size()) >= cfg_.max_conns) {
          // Admission: deterministic busy line, then close. Never gets a
          // Session, so it costs nothing beyond this write.
          count_conn("service.conn.rejected_overload");
          broker_.log_transport_event("conn_busy", "overloaded");
          write_all(cfd, /*is_socket=*/true, render_busy_response() + "\n",
                    /*timeout_ms=*/50);
          ::close(cfd);
          continue;
        }
        count_conn("service.conn.accepted");
        live_conns_.fetch_add(1, std::memory_order_relaxed);
        Conn conn;
        conn.last_activity = Clock::now();
        const int wake_fd = wake[1];
        conn.session = std::make_shared<Session>(
            cfd, /*is_socket=*/true, cfg_.write_timeout_ms, [wake_fd] {
              const char byte = 'r';
              [[maybe_unused]] const ssize_t n = ::write(wake_fd, &byte, 1);
            });
        conns.emplace(cfd, std::move(conn));
      }
    }

    for (std::size_t i = 3; i < fds.size(); ++i) {
      if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      const int fd = fds[i].fd;
      const auto it = conns.find(fd);
      if (it == conns.end()) continue;  // reaped this round
      Conn& conn = it->second;
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                    errno == EWOULDBLOCK))
        continue;
      if (n <= 0) {
        // Client stopped sending (EOF or error); responses for what it
        // did send still flow, then the connection is reaped.
        end_reads(fd, conn);
        continue;
      }
      conn.buffer.append(chunk, static_cast<std::size_t>(n));
      conn.last_activity = Clock::now();
      if (!consume_lines(conn.session, &conn.buffer)) {
        reject_oversized(conn.session);
        ::shutdown(fd, SHUT_RD);
        end_reads(fd, conn);
      }
    }

    if (cfg_.idle_timeout_ms > 0) {
      const auto now = Clock::now();
      std::vector<int> idle;
      for (const auto& [fd, conn] : conns)
        if (!conn.eof &&
            now - conn.last_activity >=
                std::chrono::milliseconds(cfg_.idle_timeout_ms))
          idle.push_back(fd);
      for (const int fd : idle) {
        Conn& conn = conns.at(fd);
        count_conn("service.conn.idle_closed");
        broker_.log_transport_event("conn_idle", "ok");
        ::shutdown(fd, SHUT_RD);
        end_reads(fd, conn);
      }
    }
  }

  ::close(listen_fd);
  if (!unlink_path.empty()) ::unlink(unlink_path.c_str());
  // Answer or reject everything accepted, then flush each remaining
  // connection's output and reap it. After drain() every submitted
  // request's callback has fired, so wait_flushed() terminates.
  broker_.drain(DrainMode::kRejectQueued);
  for (auto& [fd, conn] : conns) {
    ::shutdown(fd, SHUT_RD);
    conn.session->mark_eof();
  }
  for (auto& [fd, conn] : conns) {
    conn.session->wait_flushed();
    ::close(fd);
    live_conns_.fetch_sub(1, std::memory_order_relaxed);
    count_conn("service.conn.reaped");
  }
  conns.clear();
  for (const int fd : wake) ::close(fd);
  return 0;
}

int Server::run_unix_socket(const std::string& path) {
  last_error_.clear();
  if (signal_pipe_[0] < 0) {
    last_error_ = "signal pipe unavailable";
    return -1;
  }
  sockaddr_un addr{};
  if (path.size() >= sizeof addr.sun_path) {
    last_error_ = "socket path too long: " + path;
    return -1;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  // Never silently delete a live server's socket: probe-connect first.
  // Only a stale path (nothing accepting behind it) is unlinked.
  struct stat st;
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      last_error_ = "refusing to replace non-socket path " + path;
      return -1;
    }
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      const int rc = ::connect(
          probe, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
      ::close(probe);
      if (rc == 0) {
        last_error_ = "socket path " + path + " is in use by a live server";
        return -1;
      }
    }
    ::unlink(path.c_str());
  }

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    last_error_ = std::string("cannot create socket: ") + std::strerror(errno);
    return -1;
  }
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd, cfg_.backlog) != 0) {
    last_error_ = "cannot bind " + path + ": " + std::strerror(errno);
    ::close(listen_fd);
    return -1;
  }
  return run_listener(listen_fd, path);
}

int Server::run_tcp(const std::string& host_port) {
  last_error_.clear();
  if (signal_pipe_[0] < 0) {
    last_error_ = "signal pipe unavailable";
    return -1;
  }
  const std::size_t colon = host_port.rfind(':');
  if (colon == std::string::npos || colon + 1 >= host_port.size()) {
    last_error_ = "--tcp expects HOST:PORT, got '" + host_port + "'";
    return -1;
  }
  std::string host = host_port.substr(0, colon);
  const std::string port = host_port.substr(colon + 1);
  if (host.size() >= 2 && host.front() == '[' && host.back() == ']')
    host = host.substr(1, host.size() - 2);  // "[::1]:80" -> "::1"

  struct addrinfo hints {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* res = nullptr;
  const int gai = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                                port.c_str(), &hints, &res);
  if (gai != 0) {
    last_error_ =
        "cannot resolve " + host_port + ": " + ::gai_strerror(gai);
    return -1;
  }
  int listen_fd = -1;
  std::string bind_err = "no usable address";
  for (const addrinfo* ai = res; ai; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      bind_err = std::strerror(errno);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, cfg_.backlog) == 0) {
      listen_fd = fd;
      break;
    }
    bind_err = std::strerror(errno);
    ::close(fd);
  }
  ::freeaddrinfo(res);
  if (listen_fd < 0) {
    last_error_ = "cannot bind " + host_port + ": " + bind_err;
    return -1;
  }
  sockaddr_storage bound{};
  socklen_t blen = sizeof bound;
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &blen) ==
      0) {
    if (bound.ss_family == AF_INET)
      bound_port_.store(
          ntohs(reinterpret_cast<const sockaddr_in*>(&bound)->sin_port),
          std::memory_order_release);
    else if (bound.ss_family == AF_INET6)
      bound_port_.store(
          ntohs(reinterpret_cast<const sockaddr_in6*>(&bound)->sin6_port),
          std::memory_order_release);
  }
  return run_listener(listen_fd, /*unlink_path=*/"");
}

namespace {

std::atomic<Server*> g_drain_server{nullptr};

void drain_signal_handler(int) {
  Server* server = g_drain_server.load(std::memory_order_relaxed);
  if (server) server->request_drain();
}

}  // namespace

ScopedDrainSignals::ScopedDrainSignals(Server* server) {
  g_drain_server.store(server, std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = drain_signal_handler;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &sa, &old_term_);
  ::sigaction(SIGINT, &sa, &old_int_);
  struct sigaction ignore{};
  ignore.sa_handler = SIG_IGN;
  ::sigemptyset(&ignore.sa_mask);
  ::sigaction(SIGPIPE, &ignore, &old_pipe_);
}

ScopedDrainSignals::~ScopedDrainSignals() {
  ::sigaction(SIGTERM, &old_term_, nullptr);
  ::sigaction(SIGINT, &old_int_, nullptr);
  ::sigaction(SIGPIPE, &old_pipe_, nullptr);
  g_drain_server.store(nullptr, std::memory_order_relaxed);
}

}  // namespace encodesat
