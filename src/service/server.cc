#include "service/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/counters.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "service/protocol.h"

namespace encodesat {

namespace {

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

/// Full write with EINTR retry; MSG_NOSIGNAL on sockets so a vanished
/// client is an EPIPE error, not a signal. With `timeout_ms > 0` each
/// chunk first waits for writability up to that long, so a client that
/// stops reading (full socket/pipe buffer) bounds the stall instead of
/// blocking the calling thread forever. False on any write error or
/// stall past the budget.
bool write_all(int fd, bool is_socket, const std::string& data,
               int timeout_ms) {
  std::size_t off = 0;
  while (off < data.size()) {
    if (timeout_ms > 0) {
      struct pollfd pfd = {fd, POLLOUT, 0};
      const int pr = ::poll(&pfd, 1, timeout_ms);
      if (pr < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (pr == 0) return false;  // stalled client
      if (pfd.revents & (POLLERR | POLLNVAL)) return false;
    }
    const ssize_t n =
        is_socket ? ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL)
                  : ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

/// One client conversation: allocates a sequence number per request line
/// (reader thread only) and writes responses back in that order, buffering
/// out-of-order completions from the broker's workers.
class Server::Session {
 public:
  Session(int out_fd, bool is_socket, int write_timeout_ms)
      : fd_(out_fd), socket_(is_socket), write_timeout_ms_(write_timeout_ms) {}

  /// Reader-thread only: the order slot for the next request line.
  std::uint64_t alloc_seq() { return allocated_++; }

  /// Any thread: queues `line` for slot `seq`, then flushes every ready
  /// line in order. The actual write happens *outside* the session lock
  /// (one writer at a time; concurrent callers enqueue and return, the
  /// active writer picks their lines up), so a slow client never holds
  /// the lock against other completions. After a write error or a stall
  /// past write_timeout_ms the session goes dead and output is discarded
  /// (slots still advance so wait_flushed() terminates).
  void deliver(std::uint64_t seq, std::string line) {
    std::unique_lock<std::mutex> lock(mu_);
    pending_.emplace(seq, std::move(line));
    if (writing_) return;  // the active writer will flush this slot
    writing_ = true;
    std::string batch;
    for (;;) {
      batch.clear();
      for (auto it = pending_.find(next_to_write_); it != pending_.end();
           it = pending_.find(next_to_write_)) {
        if (!dead_) {
          batch += it->second;
          batch += '\n';
        }
        pending_.erase(it);
        ++next_to_write_;
      }
      if (batch.empty()) break;
      lock.unlock();
      const bool ok = write_all(fd_, socket_, batch, write_timeout_ms_);
      lock.lock();
      if (!ok) dead_ = true;
    }
    writing_ = false;
    cv_.notify_all();
  }

  /// Blocks until every allocated slot has been written (or discarded)
  /// and no write is in flight. Call after the reader stopped allocating
  /// and the broker guaranteed a response per slot (i.e. after drain()).
  void wait_flushed() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock,
             [this] { return !writing_ && next_to_write_ == allocated_; });
  }

 private:
  const int fd_;
  const bool socket_;
  const int write_timeout_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t allocated_ = 0;
  std::uint64_t next_to_write_ = 0;
  std::map<std::uint64_t, std::string> pending_;
  bool writing_ = false;  ///< a deliver() call is mid-write, lock dropped
  bool dead_ = false;
};

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)), broker_(cfg_.broker) {
  if (::pipe(signal_pipe_) != 0) {
    signal_pipe_[0] = signal_pipe_[1] = -1;
    return;
  }
  for (const int fd : signal_pipe_) {
    set_cloexec(fd);
    const int fl = ::fcntl(fd, F_GETFL);
    if (fl >= 0) ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
  }
}

Server::~Server() {
  for (const int fd : signal_pipe_)
    if (fd >= 0) ::close(fd);
}

void Server::request_drain() {
  if (signal_pipe_[1] < 0) return;
  const char byte = 1;
  // Best-effort and async-signal-safe; a full pipe already means a drain
  // byte is pending.
  [[maybe_unused]] const ssize_t n = ::write(signal_pipe_[1], &byte, 1);
}

void Server::handle_line(Session* session, std::uint64_t seq,
                         const std::string& line) {
  WireRequest wire;
  std::string perr_msg;
  if (!parse_request(line, &wire, &perr_msg)) {
    session->deliver(
        seq, render_error_response(wire.id, StatusCode::kParseError,
                                   perr_msg));
    return;
  }
  if (wire.op == WireRequest::Op::kStats ||
      wire.op == WireRequest::Op::kMetrics) {
    // Both scrape ops share one view: the registry, the live broker gauges
    // (so `stats` and `metrics` agree), and a freshened obs.trace.dropped
    // high-water mark.
    if (cfg_.metrics && cfg_.tracer)
      cfg_.metrics->counter("obs.trace.dropped", /*in_fingerprint=*/false)
          ->record_max(cfg_.tracer->dropped_spans());
    TelemetryOptions topts;
    topts.tool = "serve";
    topts.metrics = cfg_.metrics;
    topts.tracer = cfg_.tracer;
    topts.gauges.push_back(
        {"service.queue_depth", static_cast<double>(broker_.queue_depth())});
    topts.gauges.push_back(
        {"service.in_flight", static_cast<double>(broker_.in_flight())});
    topts.gauges.push_back({"service.workers_alive",
                            static_cast<double>(broker_.workers_alive())});
    if (cfg_.window) {
      const std::uint64_t now = broker_.now_us();
      const struct {
        const char* prefix;
        std::uint64_t horizon_us;
      } spans[] = {{"service.window.1m", 60'000'000ull},
                   {"service.window.5m", 300'000'000ull}};
      for (const auto& span : spans) {
        const RollingWindow::Stats s =
            cfg_.window->stats(now, span.horizon_us);
        const std::string p = span.prefix;
        topts.gauges.push_back({p + ".rate", s.rate_per_s});
        topts.gauges.push_back({p + ".p50", static_cast<double>(s.p50)});
        topts.gauges.push_back({p + ".p95", static_cast<double>(s.p95)});
        topts.gauges.push_back({p + ".p99", static_cast<double>(s.p99)});
      }
    }
    session->deliver(
        seq, wire.op == WireRequest::Op::kStats
                 ? render_stats_response(wire.id, telemetry_to_json(topts))
                 : render_metrics_response(wire.id,
                                           render_prometheus_text(topts)));
    return;
  }
  if (wire.op == WireRequest::Op::kHealth) {
    HealthStatus health;
    health.draining = broker_.draining();
    health.queue_depth = broker_.queue_depth();
    health.in_flight = broker_.in_flight();
    health.workers = broker_.config().workers;
    health.workers_alive = broker_.workers_alive();
    health.uptime_us = broker_.now_us();
    session->deliver(seq, render_health_response(wire.id, health));
    return;
  }
  ParseError perr;
  std::optional<ConstraintSet> cs = parse_constraints(wire.constraints, &perr);
  if (!cs) {
    SolveResponse resp;
    resp.id = wire.id;
    resp.status = StatusCode::kParseError;
    resp.parse_error = perr;
    session->deliver(seq, render_response(resp, nullptr));
    return;
  }
  SolveOptions opts = broker_.config().base_options;
  if (!apply_wire_options(wire, &opts)) {
    session->deliver(
        seq, render_error_response(wire.id, StatusCode::kParseError,
                                   "unknown pipeline '" + wire.pipeline +
                                       "'"));
    return;
  }
  // The response renders codes by name in the *request's* symbol order, so
  // keep a copy of the table across the solve.
  SymbolTable symbols = cs->symbols();
  SolveRequest req;
  req.id = wire.id;
  req.constraints = std::move(*cs);
  req.options = std::move(opts);
  req.deadline_seconds = wire.deadline_seconds;
  broker_.submit(std::move(req),
                 [session, seq, symbols = std::move(symbols)](
                     SolveResponse resp) {
                   session->deliver(seq, render_response(resp, &symbols));
                 });
}

int Server::run_pipe(int in_fd, int out_fd) {
  if (signal_pipe_[0] < 0) return -1;
  Session session(out_fd, /*is_socket=*/false, cfg_.write_timeout_ms);
  std::string buffer;
  bool signaled = false;
  char chunk[65536];
  for (;;) {
    struct pollfd fds[2] = {{in_fd, POLLIN, 0}, {signal_pipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents & POLLIN) {
      signaled = true;
      break;
    }
    if (!(fds[0].revents & (POLLIN | POLLHUP | POLLERR))) continue;
    const ssize_t n = ::read(in_fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // EOF: finish everything queued
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl; (nl = buffer.find('\n', start)) != std::string::npos;
         start = nl + 1) {
      std::string line = buffer.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      handle_line(&session, session.alloc_seq(), line);
    }
    buffer.erase(0, start);
  }
  if (!signaled && !buffer.empty()) {
    // Final line without a trailing newline still counts.
    if (buffer.back() == '\r') buffer.pop_back();
    if (!buffer.empty())
      handle_line(&session, session.alloc_seq(), buffer);
  }
  broker_.drain(signaled ? DrainMode::kRejectQueued
                         : DrainMode::kFinishQueued);
  session.wait_flushed();
  return 0;
}

int Server::run_unix_socket(const std::string& path) {
  if (signal_pipe_[0] < 0) return -1;
  sockaddr_un addr{};
  if (path.size() >= sizeof addr.sun_path) return -1;
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) return -1;
  set_cloexec(listen_fd);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd, 16) != 0) {
    ::close(listen_fd);
    return -1;
  }

  struct Conn {
    int fd;
    std::unique_ptr<Session> session;
    std::thread reader;
  };
  std::mutex conns_mu;
  std::vector<Conn> conns;

  for (;;) {
    struct pollfd fds[2] = {{listen_fd, POLLIN, 0},
                            {signal_pipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents & POLLIN) break;  // drain requested
    if (!(fds[0].revents & POLLIN)) continue;
    const int cfd = ::accept(listen_fd, nullptr, nullptr);
    if (cfd < 0) continue;
    set_cloexec(cfd);
    std::lock_guard<std::mutex> lock(conns_mu);
    conns.push_back(Conn{cfd,
                         std::make_unique<Session>(cfd, /*is_socket=*/true,
                                                   cfg_.write_timeout_ms),
                         {}});
    Conn& conn = conns.back();
    Session* session = conn.session.get();
    conn.reader = std::thread([this, cfd, session] {
      std::string buffer;
      char chunk[65536];
      for (;;) {
        const ssize_t n = ::read(cfd, chunk, sizeof chunk);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break;
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (std::size_t nl;
             (nl = buffer.find('\n', start)) != std::string::npos;
             start = nl + 1) {
          std::string line = buffer.substr(start, nl - start);
          if (!line.empty() && line.back() == '\r') line.pop_back();
          if (line.empty()) continue;
          handle_line(session, session->alloc_seq(), line);
        }
        buffer.erase(0, start);
      }
      // Client stopped sending; responses for what it did send still
      // flow. The fd is closed at server teardown (never here — the fd
      // number must stay reserved so it cannot alias a newer connection).
    });
  }

  ::close(listen_fd);
  ::unlink(path.c_str());
  // Answer or reject everything accepted, then unblock any readers still
  // waiting on quiet clients and flush per-connection output.
  broker_.drain(DrainMode::kRejectQueued);
  std::lock_guard<std::mutex> lock(conns_mu);
  for (Conn& conn : conns) ::shutdown(conn.fd, SHUT_RD);
  for (Conn& conn : conns) {
    if (conn.reader.joinable()) conn.reader.join();
    conn.session->wait_flushed();
    ::close(conn.fd);
  }
  return 0;
}

namespace {

std::atomic<Server*> g_drain_server{nullptr};

void drain_signal_handler(int) {
  Server* server = g_drain_server.load(std::memory_order_relaxed);
  if (server) server->request_drain();
}

}  // namespace

ScopedDrainSignals::ScopedDrainSignals(Server* server) {
  g_drain_server.store(server, std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = drain_signal_handler;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &sa, &old_term_);
  ::sigaction(SIGINT, &sa, &old_int_);
  struct sigaction ignore{};
  ignore.sa_handler = SIG_IGN;
  ::sigemptyset(&ignore.sa_mask);
  ::sigaction(SIGPIPE, &ignore, &old_pipe_);
}

ScopedDrainSignals::~ScopedDrainSignals() {
  ::sigaction(SIGTERM, &old_term_, nullptr);
  ::sigaction(SIGINT, &old_int_, nullptr);
  ::sigaction(SIGPIPE, &old_pipe_, nullptr);
  g_drain_server.store(nullptr, std::memory_order_relaxed);
}

}  // namespace encodesat
