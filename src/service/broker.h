// Request broker: the concurrency heart of `encodesat serve`.
//
// A Broker owns a bounded FIFO queue and a fixed pool of worker threads.
// Transports (src/service/server.h) parse wire requests into SolveRequest
// and submit() them with a completion callback; workers drain the queue
// through the unified solve() entry point, with every request sharing one
// SolveCache and one InFlightTable so concurrent duplicates coalesce onto
// a single pipeline run (cache/inflight.h).
//
// Semantics, in the order a request meets them:
//
//  * Admission: when the queue holds max_queue requests (or a drain has
//    begun), submit() rejects *inline* — the callback fires with
//    StatusCode::kOverloaded on the submitting thread and submit() returns
//    false. Rejection is explicit and immediate, never a silent drop.
//  * Deadline: each request's deadline (its own, or the broker default)
//    is fixed as an absolute time point at submit, so time spent queued
//    counts against it. A request whose deadline has already passed at
//    dequeue completes as kTimeout/deadline without touching the solver;
//    one dequeued in time runs with the *remaining* budget.
//  * Drain: drain(kFinishQueued) — EOF semantics — stops admission and
//    lets workers finish everything queued. drain(kRejectQueued) — SIGTERM
//    semantics — additionally completes still-queued requests as
//    kOverloaded ("server draining"); requests already on a worker always
//    run to completion. Both join the workers before returning, so after
//    drain() every accepted request has had its callback invoked exactly
//    once and the shared cache is quiescent (safe to --cache-save).
//
// Callbacks run on broker worker threads (or the submitting thread, for
// inline rejections) and must be thread-safe; ordering across requests is
// scheduling-dependent, so transports needing in-order delivery sequence
// responses themselves (server.cc's Session does).
//
// Counters (registered non-fingerprint — they depend on scheduling):
//   service.accepted, service.rejected_overload, service.completed,
//   service.coalesced, service.deadline_expired, service.drained.
// Latency histograms (also non-fingerprint — they observe wall time):
//   service.latency.total, service.latency.queue, service.latency.solve,
// each in microseconds, observed for every request that reached a worker
// (inline rejections never queue and are excluded). The optional
// RollingWindow receives end-to-end latencies on the broker's own
// monotonic clock (now_us()); the optional RequestLog gets one record per
// completed submit() callback, rejections included.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/inflight.h"
#include "core/solver.h"

namespace encodesat {

class RequestLog;   // obs/reqlog.h
class RollingWindow;  // obs/window.h

enum class DrainMode {
  kFinishQueued,  ///< stop admission, run everything already queued (EOF)
  kRejectQueued,  ///< stop admission, fail queued as overloaded (SIGTERM)
};

struct BrokerConfig {
  /// Worker threads draining the queue (min 1).
  int workers = 2;
  /// Queue depth triggering admission rejection; 0 = unbounded.
  std::size_t max_queue = 64;
  /// Deadline applied to requests that carry none; 0 = none.
  double default_deadline_seconds = 0;
  /// Template options for each solve. The broker overwrites the cache
  /// wiring (cache.store / cache.single_flight) and the exec tracer and
  /// metrics pointers below; everything else passes through.
  SolveOptions base_options;
  /// Shared solve cache; null runs uncached (coalescing still applies).
  SolveCache* cache = nullptr;
  MetricsRegistry* metrics = nullptr;
  TraceSink* tracer = nullptr;
  /// Rolling end-to-end latency window (microseconds, broker clock);
  /// null disables. Borrowed, must outlive the broker.
  RollingWindow* window = nullptr;
  /// Structured per-request NDJSON log; null disables. Borrowed.
  RequestLog* reqlog = nullptr;
  /// Test seam: replaces the core solve() call when set. Admission,
  /// deadline and drain handling still apply; the injected function sees
  /// the fully-prepared request (infra wired, deadline_seconds = remaining
  /// time). Must be thread-safe.
  std::function<SolveResponse(const SolveRequest&)> solve_fn;
};

class Broker {
 public:
  /// Completion callback; invoked exactly once per submit() call (counting
  /// inline rejections). See the threading contract above.
  using Callback = std::function<void(SolveResponse)>;

  explicit Broker(BrokerConfig cfg);
  /// Drains with kRejectQueued when the caller never drained explicitly.
  ~Broker();

  /// Queues one request. Returns false — after invoking `cb` inline with
  /// kOverloaded — when the queue is full or the broker is draining.
  bool submit(SolveRequest req, Callback cb);

  /// Stops admission and joins the workers (see DrainMode). Idempotent;
  /// concurrent callers block until the first drain completes.
  void drain(DrainMode mode);

  /// Transport disposition hook: appends one request-log line for a
  /// connection-lifecycle event that never produced a SolveRequest — an
  /// admission rejection at accept time ("conn_busy"), an oversized line
  /// ("conn_oversized") or an idle close ("conn_idle"). Lifecycle events
  /// bypass sampling (they are operational errors); no-op without a
  /// configured request log. Thread-safe.
  void log_transport_event(const char* disposition, const char* status);

  const BrokerConfig& config() const { return cfg_; }
  InFlightTable& single_flight() { return inflight_; }
  /// Requests currently queued (diagnostics; racy by nature).
  std::size_t queue_depth() const;
  /// Requests currently on a worker, between dequeue and callback
  /// (diagnostics; racy by nature).
  int in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  /// Worker threads that have not yet exited their loop; equals
  /// config().workers until a drain, 0 after. The `health` op's liveness
  /// signal.
  int workers_alive() const {
    return workers_alive_.load(std::memory_order_relaxed);
  }
  /// True once a drain has begun (admission closed).
  bool draining() const;
  /// Monotonic microseconds since broker construction — the service clock
  /// fed to the rolling window.
  std::uint64_t now_us() const;

 private:
  struct Item {
    SolveRequest req;
    Callback cb;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    std::chrono::steady_clock::time_point submitted{};
  };

  void worker_loop();
  void run_item(Item item);
  void count(const char* name, std::uint64_t v = 1);
  void log_request(const SolveResponse& resp, const char* disposition,
                   std::uint64_t queue_us, std::uint64_t solve_us,
                   std::uint64_t total_us, const StageStats* stats);
  static SolveResponse rejected(const std::string& id, const char* why);

  BrokerConfig cfg_;
  InFlightTable inflight_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<int> in_flight_{0};
  std::atomic<int> workers_alive_{0};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  bool draining_ = false;       ///< admission closed
  bool reject_queued_ = false;  ///< drain mode was kRejectQueued
  std::mutex join_mu_;          ///< serializes drain() joiners
  std::vector<std::thread> workers_;
};

}  // namespace encodesat
