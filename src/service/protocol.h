// NDJSON wire protocol `encodesat-service-v1` (docs/SERVICE.md).
//
// One JSON object per line in both directions. Requests:
//
//   {"id":"r1","constraints":"face a b c\ndominance a b",
//    "deadline_s":2.5,
//    "options":{"pipeline":"exact","max_work":100000,"threads":2}}
//   {"id":"s1","op":"stats"}
//   {"id":"m1","op":"metrics"}
//   {"id":"h1","op":"health"}
//
// `op` defaults to "solve". `metrics` answers with the Prometheus-style
// text exposition embedded as a JSON string; `health` with the broker's
// drain state, queue depth, in-flight count and worker liveness
// (docs/SERVICE.md). The `options` object exposes only the
// per-request-safe knobs (pipeline / max_work / threads); budget knobs
// beyond those, the cache configuration and the worker pool belong to the
// server. Responses (always exactly one per accepted request line, `id`
// echoed verbatim):
//
//   {"id":"r1","status":"ok","bits":2,"minimal":true,"truncated":false,
//    "codes":{"a":"00","b":"01","c":"10"}}
//   {"id":"r2","status":"infeasible","uncovered":2}
//   {"id":"r3","status":"parse_error",
//    "error":{"message":"unknown constraint kind 'fase'","line":1,"col":1}}
//   {"id":"r4","status":"timeout","truncation":"deadline"}
//   {"id":"r5","status":"overloaded","error":{"message":"queue full"}}
//
// Responses carry no timings, no cache/coalescing markers and no
// scheduling artifacts: the payload is a pure function of the request and
// the solver version, so coalesced, cached and fresh solves of the same
// request render byte-identically (the property the service tests and the
// golden smoke check pin). Observability goes through the `stats` op and
// the server's --stats-out/--trace-out instead.
#pragma once

#include <cstdint>
#include <string>

#include "core/solver.h"

namespace encodesat {

inline constexpr const char* kServiceSchema = "encodesat-service-v1";

/// One parsed request line.
struct WireRequest {
  enum class Op { kSolve, kStats, kMetrics, kHealth };
  Op op = Op::kSolve;
  std::string id;
  /// Constraint text (core/constraints.h grammar), `op == kSolve` only.
  std::string constraints;
  /// Per-request deadline in seconds; 0 = server default. Bounded on the
  /// wire (≤ 1e9 s) so downstream duration math cannot overflow.
  double deadline_seconds = 0;
  /// Option overrides; empty/0 mean "server default". The numeric fields
  /// are range-checked at parse time (max_work ≤ 1e18, threads ≤ 4096) —
  /// an out-of-range value is a parse error, never an undefined cast.
  std::string pipeline;  ///< "", "auto", "exact" or "extensions"
  std::uint64_t max_work = 0;
  int threads = 0;
};

/// Parses one NDJSON request line. On malformed input — including numeric
/// fields outside their documented ranges — returns false and fills
/// `*error` with a message (and `out->id` with the id when one was
/// recoverable from the line).
bool parse_request(const std::string& line, WireRequest* out,
                   std::string* error);

/// Applies the request's option overrides onto `opts` (fields left at
/// their defaults in the wire request are untouched). Returns false on an
/// unknown pipeline name.
bool apply_wire_options(const WireRequest& req, SolveOptions* opts);

/// Renders one response line (no trailing newline). `symbols` names the
/// code table for kOk responses and may be null otherwise.
std::string render_response(const SolveResponse& resp,
                            const SymbolTable* symbols);

/// Convenience for transport-level failures: a response line with just an
/// id, a status and an error message.
std::string render_error_response(const std::string& id, StatusCode status,
                                  const std::string& message);

/// The connection-admission rejection written to a client turned away at
/// accept time (`--max-conns` reached). No request was read, so the id is
/// empty:
///   {"id":"","status":"overloaded","error":{"message":"server busy"}}
std::string render_busy_response();

/// The response for a connection whose line buffer exceeded
/// `--max-line-bytes` without a newline. The connection is closed after
/// this line is flushed; the id is empty (the request never parsed):
///   {"id":"","status":"parse_error",
///    "error":{"message":"request line exceeds <limit> bytes"}}
std::string render_oversized_line_response(std::size_t limit_bytes);

/// The `stats` op reply: embeds a pre-rendered telemetry JSON object.
std::string render_stats_response(const std::string& id,
                                  const std::string& telemetry_json);

/// The `metrics` op reply: the Prometheus-style exposition text
/// (obs/telemetry.h render_prometheus_text) as an escaped JSON string.
std::string render_metrics_response(const std::string& id,
                                    const std::string& exposition_text);

/// Point-in-time server health, filled by the transport from the broker.
struct HealthStatus {
  bool draining = false;
  std::size_t queue_depth = 0;
  int in_flight = 0;
  int workers = 0;
  int workers_alive = 0;
  /// Live (accepted, not yet reaped) transport connections; 1 in pipe
  /// mode while the session is open.
  int connections = 0;
  std::uint64_t uptime_us = 0;
};

/// The `health` op reply:
/// {"id":...,"status":"ok","health":{"state":"serving"|"draining",
///  "queue_depth":n,"in_flight":n,"workers":n,"workers_alive":n,
///  "connections":n,"uptime_us":n}}
std::string render_health_response(const std::string& id,
                                   const HealthStatus& health);

}  // namespace encodesat
