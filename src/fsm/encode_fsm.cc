#include "fsm/encode_fsm.h"

#include <stdexcept>

#include "logic/espresso.h"

namespace encodesat {

Pla encode_fsm(const Fsm& fsm, const Encoding& state_codes) {
  if (state_codes.num_symbols() != fsm.num_states())
    throw std::invalid_argument("encoding does not cover all states");
  const int b = state_codes.bits;
  Pla pla;
  pla.domain = Domain::binary(fsm.num_inputs + b, b + fsm.num_outputs);
  pla.on = Cover(pla.domain);
  pla.dc = Cover(pla.domain);
  const Domain& dom = pla.domain;

  for (const auto& t : fsm.transitions) {
    Cube base(dom);
    for (int v = 0; v < fsm.num_inputs; ++v) {
      const char ch = t.input[static_cast<std::size_t>(v)];
      if (ch == '0' || ch == '-')
        base.bits.set(static_cast<std::size_t>(dom.pos(v, 0)));
      if (ch == '1' || ch == '-')
        base.bits.set(static_cast<std::size_t>(dom.pos(v, 1)));
    }
    const std::uint64_t from = state_codes.codes[t.from];
    for (int j = 0; j < b; ++j) {
      const int bit = static_cast<int>((from >> j) & 1u);
      base.bits.set(
          static_cast<std::size_t>(dom.pos(fsm.num_inputs + j, bit)));
    }

    Cube on = base, dc = base;
    bool has_on = false, has_dc = false;
    const std::uint64_t to = state_codes.codes[t.to];
    for (int j = 0; j < b; ++j)
      if ((to >> j) & 1u) {
        on.bits.set(static_cast<std::size_t>(dom.out_pos(j)));
        has_on = true;
      }
    for (int o = 0; o < fsm.num_outputs; ++o) {
      const char ch = t.output[static_cast<std::size_t>(o)];
      if (ch == '1') {
        on.bits.set(static_cast<std::size_t>(dom.out_pos(b + o)));
        has_on = true;
      } else if (ch == '-' || ch == '~') {
        dc.bits.set(static_cast<std::size_t>(dom.out_pos(b + o)));
        has_dc = true;
      }
    }
    if (has_on) pla.on.add(on);
    if (has_dc) pla.dc.add(dc);
  }
  return pla;
}

EncodedFsmStats minimized_fsm_stats(const Fsm& fsm,
                                    const Encoding& state_codes,
                                    const ExecContext& ctx) {
  StageScope stage(ctx, "fsm_minimize");
  const Pla pla = encode_fsm(fsm, state_codes);
  stage.add_work(pla.on.size() + pla.dc.size());
  stage.ctx().charge(pla.on.size() + pla.dc.size());
  const Cover minimized = espresso(pla.on, pla.dc);
  EncodedFsmStats stats;
  stats.cubes = static_cast<int>(minimized.size());
  stats.literals = minimized.input_literals();
  stage.add_items(static_cast<std::uint64_t>(stats.cubes));
  return stats;
}

EncodedFsmStats minimized_fsm_stats(const Fsm& fsm,
                                    const Encoding& state_codes) {
  return minimized_fsm_stats(fsm, state_codes, ExecContext{});
}

}  // namespace encodesat
