// Applying an encoding to an FSM: builds the encoded binary PLA (inputs =
// primary inputs + state bits, outputs = state bits + primary outputs) and
// reports its minimized two-level size — the figure of merit behind the
// paper's Tables 2/3 style comparisons.
#pragma once

#include "core/encoding.h"
#include "fsm/fsm.h"
#include "logic/pla.h"
#include "util/exec.h"

namespace encodesat {

/// Encoded transition PLA. Output '-' bits of the KISS description go to
/// the DC cover; next-state code bits are fully specified.
Pla encode_fsm(const Fsm& fsm, const Encoding& state_codes);

struct EncodedFsmStats {
  int cubes = 0;
  int literals = 0;
};

/// ESPRESSO-minimized size of the encoded PLA. With a ctx, the PLA build
/// and minimization are recorded as an "fsm_minimize" stage (the ESPRESSO
/// pass itself is not interruptible; the stage reports elapsed time and the
/// encoded cube count as work).
EncodedFsmStats minimized_fsm_stats(const Fsm& fsm,
                                    const Encoding& state_codes,
                                    const ExecContext& ctx);
EncodedFsmStats minimized_fsm_stats(const Fsm& fsm,
                                    const Encoding& state_codes);

}  // namespace encodesat
