#include "fsm/mcnc_like.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace encodesat {

const std::vector<BenchmarkSpec>& mcnc_like_suite() {
  // Sizes follow the MCNC originals the paper reports on (states from the
  // paper's tables; input/output counts from the standard KISS2 headers).
  static const std::vector<BenchmarkSpec> kSuite = {
      {"bbsse", 16, 7, 7, 0xb5e001, 3},
      {"cse", 16, 7, 7, 0xc5e002, 3},
      {"dk16", 27, 2, 3, 0xd16003, 3},
      {"dk16x", 27, 2, 3, 0xd16004, 4},
      {"dk512", 15, 1, 3, 0xd51205, 3},
      {"donfile", 24, 2, 1, 0xd0f006, 3},
      {"ex1", 20, 9, 19, 0xe10007, 3},
      {"exlinp", 20, 4, 3, 0xe11008, 3},
      {"keyb", 19, 7, 2, 0x4eb009, 3},
      {"kirkman", 16, 12, 6, 0x41600a, 2},
      {"master", 15, 6, 6, 0x3a500b, 4},
      {"planet", 48, 7, 19, 0x91a00c, 2},
      {"s1", 20, 8, 6, 0x51000d, 3},
      {"s1a", 20, 8, 6, 0x51a00e, 4},
      {"sand", 32, 11, 9, 0x5a2d0f, 3},
      {"styr", 30, 9, 10, 0x517010, 3},
      {"tbk", 32, 6, 3, 0x7bc011, 2},
      {"viterbi", 68, 4, 4, 0x617012, 5},
      {"vmecont", 32, 8, 8, 0x3ec013, 4},
  };
  return kSuite;
}

const BenchmarkSpec& benchmark_spec(const std::string& name) {
  for (const auto& spec : mcnc_like_suite())
    if (spec.name == name) return spec;
  throw std::out_of_range("unknown benchmark: " + name);
}

namespace {

// Input cube for event e of m: the first ceil(log2 m) inputs spell e in
// binary, the rest are don't-cares — the events partition the input space.
std::string event_cube(int e, int m, int num_inputs) {
  int sel_bits = 0;
  while ((1 << sel_bits) < m) ++sel_bits;
  std::string cube(static_cast<std::size_t>(num_inputs), '-');
  for (int b = 0; b < sel_bits; ++b)
    cube[static_cast<std::size_t>(b)] = ((e >> b) & 1) ? '1' : '0';
  return cube;
}

std::string random_output(Rng& rng, int num_outputs) {
  std::string out(static_cast<std::size_t>(num_outputs), '0');
  for (auto& ch : out) {
    const double r = rng.next_double();
    ch = r < 0.35 ? '1' : (r < 0.45 ? '-' : '0');
  }
  return out;
}

}  // namespace

Fsm make_mcnc_like(const BenchmarkSpec& spec) {
  Fsm fsm;
  fsm.name = spec.name;
  fsm.num_inputs = spec.inputs;
  fsm.num_outputs = spec.outputs;
  for (int s = 0; s < spec.states; ++s)
    fsm.states.intern("s" + std::to_string(s));
  fsm.reset_state = 0;

  Rng rng(spec.seed);
  const int n = spec.states;

  // Number of disjoint input events: enough to create several face-
  // constraint opportunities without exploding the transition count.
  // Rounded down to a power of two so the events exactly partition the
  // input space and every machine is completely specified.
  int events = std::min(1 << std::min(spec.inputs, 6),
                        std::max(2, 2 + n / 8));
  events = std::max(events, 2);
  while (events & (events - 1)) --events;

  // A few "hub" states that many groups target — shared targets are what
  // create dominance / disjunctive opportunities downstream.
  std::vector<std::uint32_t> hubs;
  for (int h = 0; h < std::max(2, n / 8); ++h)
    hubs.push_back(static_cast<std::uint32_t>(rng.next_below(
        static_cast<std::uint64_t>(n))));

  for (int e = 0; e < events; ++e) {
    const std::string cube = event_cube(e, events, spec.inputs);

    // Random grouping of the states for this event.
    std::vector<std::uint32_t> order(static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) order[static_cast<std::size_t>(s)] =
        static_cast<std::uint32_t>(s);
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.next_below(i)]);

    std::size_t pos = 0;
    while (pos < order.size()) {
      const std::size_t gsz = std::min<std::size_t>(
          order.size() - pos,
          1 + rng.next_below(static_cast<std::uint64_t>(
                  std::max(2, spec.group_size * 2 - 1))));
      // Group target: hubs with some probability, chain successor of the
      // first member otherwise, occasionally uniform random.
      std::uint32_t target;
      const double r = rng.next_double();
      if (r < 0.35)
        target = hubs[rng.next_below(hubs.size())];
      else if (r < 0.75)
        target = (order[pos] + 1) % static_cast<std::uint32_t>(n);
      else
        target = static_cast<std::uint32_t>(
            rng.next_below(static_cast<std::uint64_t>(n)));
      const std::string output = random_output(rng, spec.outputs);
      for (std::size_t i = 0; i < gsz; ++i) {
        FsmTransition t;
        t.input = cube;
        t.from = order[pos + i];
        t.to = target;
        t.output = output;
        fsm.transitions.push_back(std::move(t));
      }
      pos += gsz;
    }
  }
  return fsm;
}

}  // namespace encodesat
