#include "fsm/constraints_gen.h"

#include <algorithm>
#include <functional>
#include <set>

#include "logic/espresso.h"
#include "logic/urp.h"
#include "util/exec.h"

namespace encodesat {

namespace {

Domain symbolic_domain(const Fsm& fsm) {
  std::vector<int> sizes(static_cast<std::size_t>(fsm.num_inputs), 2);
  sizes.push_back(static_cast<int>(fsm.num_states()));  // present state (MV)
  return Domain(std::move(sizes),
                static_cast<int>(fsm.num_states()) + fsm.num_outputs);
}

// Input/state part of one transition over `dom` (outputs left clear).
Cube transition_input_cube(const Domain& dom, const Fsm& fsm,
                           const FsmTransition& t) {
  Cube c(dom);
  for (int v = 0; v < fsm.num_inputs; ++v) {
    const char ch = t.input[static_cast<std::size_t>(v)];
    if (ch == '0' || ch == '-')
      c.bits.set(static_cast<std::size_t>(dom.pos(v, 0)));
    if (ch == '1' || ch == '-')
      c.bits.set(static_cast<std::size_t>(dom.pos(v, 1)));
  }
  c.bits.set(
      static_cast<std::size_t>(dom.pos(fsm.num_inputs, static_cast<int>(t.from))));
  return c;
}

}  // namespace

Cover fsm_symbolic_cover(const Fsm& fsm) {
  const Domain dom = symbolic_domain(fsm);
  Cover on(dom);
  for (const auto& t : fsm.transitions) {
    Cube c = transition_input_cube(dom, fsm, t);
    c.bits.set(static_cast<std::size_t>(dom.out_pos(static_cast<int>(t.to))));
    for (int o = 0; o < fsm.num_outputs; ++o)
      if (t.output[static_cast<std::size_t>(o)] == '1')
        c.bits.set(static_cast<std::size_t>(
            dom.out_pos(static_cast<int>(fsm.num_states()) + o)));
    on.add(c);
  }
  return on;
}

namespace {

// State groups (as sorted index vectors) from the MV literals of the
// minimized symbolic cover.
std::vector<std::vector<std::uint32_t>> state_groups(const Fsm& fsm) {
  const Cover on = fsm_symbolic_cover(fsm);
  const Domain& dom = on.domain();
  const Cover minimized = espresso(on, Cover(dom));

  std::set<std::vector<std::uint32_t>> groups;
  const int sv = fsm.num_inputs;  // the MV state variable
  for (const Cube& c : minimized) {
    std::vector<std::uint32_t> g;
    for (std::uint32_t s = 0; s < fsm.num_states(); ++s)
      if (c.bits.test(
              static_cast<std::size_t>(dom.pos(sv, static_cast<int>(s)))))
        g.push_back(s);
    if (g.size() >= 2 && g.size() < fsm.num_states()) groups.insert(std::move(g));
  }
  return {groups.begin(), groups.end()};
}

}  // namespace

ConstraintSet generate_input_constraints(const Fsm& fsm,
                                         const ConstraintGenOptions& opts) {
  ConstraintSet cs;
  for (std::uint32_t s = 0; s < fsm.num_states(); ++s)
    cs.symbols().intern(fsm.states.name(s));

  const auto groups = state_groups(fsm);
  for (std::size_t i = 0; i < groups.size(); ++i) {
    std::vector<std::uint32_t> dontcares;
    if (opts.face_dontcares) {
      // If another group strictly contains this one, its extra states may
      // or may not join the face: encode them as don't-cares (§8.1). This
      // reflects a reduced implicant contained in an expanded one.
      for (std::size_t j = 0; j < groups.size(); ++j) {
        if (i == j || groups[j].size() <= groups[i].size()) continue;
        if (std::includes(groups[j].begin(), groups[j].end(),
                          groups[i].begin(), groups[i].end())) {
          for (auto s : groups[j])
            if (!std::binary_search(groups[i].begin(), groups[i].end(), s) &&
                std::find(dontcares.begin(), dontcares.end(), s) ==
                    dontcares.end())
              dontcares.push_back(s);
        }
      }
    }
    cs.add_face_ids(groups[i], std::move(dontcares));
  }
  return cs;
}

namespace {

// ON-set of next-state s over the input × present-state space.
Cover next_state_onset(const Domain& dom, const Fsm& fsm, std::uint32_t s) {
  Cover on(dom);
  for (const auto& t : fsm.transitions) {
    if (t.to != s) continue;
    Cube c = transition_input_cube(dom, fsm, t);
    c.bits.set(static_cast<std::size_t>(dom.out_pos(0)));
    on.add(c);
  }
  return on;
}

}  // namespace

ConstraintSet generate_mixed_constraints(const Fsm& fsm,
                                         const ConstraintGenOptions& opts) {
  ConstraintSet cs = generate_input_constraints(fsm, opts);
  const std::uint32_t n = fsm.num_states();

  // Single-output view of the input × present-state space.
  std::vector<int> sizes(static_cast<std::size_t>(fsm.num_inputs), 2);
  sizes.push_back(static_cast<int>(n));
  const Domain dom(std::move(sizes), 1);

  std::vector<Cover> onsets;
  onsets.reserve(n);
  std::vector<std::size_t> base_cost(n, 0);
  EspressoOptions fast;
  fast.single_pass = true;
  for (std::uint32_t s = 0; s < n; ++s) {
    onsets.push_back(next_state_onset(dom, fsm, s));
    base_cost[s] = espresso(onsets[s], Cover(dom), fast).size();
  }

  // Dominance candidates scored by the merge gain: if code(a) covers
  // code(b), every encoded cube asserting b's code bits also asserts a
  // subset of a's, so cubes of the two next-state functions can share; the
  // two-level proxy is the cube-count saving of minimizing the union of the
  // ON-sets against minimizing them separately.
  struct Candidate {
    int gain;
    std::uint32_t a, b;  // proposes a > b
  };
  std::vector<Candidate> candidates;
  const std::size_t max_pair_evals = 800;
  std::size_t evals = 0;
  for (std::uint32_t a = 0; a < n && evals < max_pair_evals; ++a) {
    if (onsets[a].empty()) continue;
    for (std::uint32_t b = a + 1; b < n && evals < max_pair_evals; ++b) {
      if (onsets[b].empty()) continue;
      ++evals;
      Cover merged = onsets[a];
      merged.add_all(onsets[b]);
      const std::size_t together = espresso(merged, Cover(dom), fast).size();
      if (together >= base_cost[a] + base_cost[b]) continue;
      const int gain =
          static_cast<int>(base_cost[a] + base_cost[b] - together);
      // Dominator = the state with the larger cover (its cubes absorb).
      const bool a_dominates = base_cost[a] >= base_cost[b];
      candidates.push_back(Candidate{gain, a_dominates ? a : b,
                                     a_dominates ? b : a});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              if (x.gain != y.gain) return x.gain > y.gain;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });

  // Disjunctive effects first, while the constraint set is still loose: a
  // state whose cover merges well with two others may be realizable as the
  // bitwise OR of their codes (the disjunction implies both dominances).
  // Proposed before the dominance pass because a = b OR c is much stronger
  // than a > b and rarely survives once many dominances are committed.
  std::vector<Bitset> reach(n, Bitset(n));  // reach[a].test(b): a ->* b
  auto creates_cycle = [&](std::uint32_t a, std::uint32_t b) {
    return reach[b].test(a) || a == b;
  };
  auto add_edge = [&](std::uint32_t a, std::uint32_t b) {
    // a -> b: everything reaching a now reaches b and b's reachees.
    Bitset down = reach[b];
    down.set(b);
    for (std::uint32_t s = 0; s < n; ++s)
      if (s == a || reach[s].test(a)) reach[s] |= down;
  };

  // Feasibility checks on the large machines are expensive (each one walks
  // every initial dichotomy), so acceptance uses group testing: try a whole
  // batch, and on failure recurse into halves to isolate the breakers —
  // O(#breakers * log batch) checks instead of one per candidate.
  // The budget scales down with machine size: each check walks every
  // initial dichotomy, which grows roughly quadratically with the states.
  int checks_left = n <= 24 ? 400 : (n <= 40 ? 160 : 64);
  auto feasible_now = [&]() {
    if (!opts.enforce_feasibility) return true;
    --checks_left;
    return check_feasible(cs, ExecContext{}).feasible;
  };

  int disj = 0;
  {
    std::vector<std::vector<std::uint32_t>> children_of(n);
    for (const Candidate& c : candidates)
      children_of[c.a].push_back(c.b);
    // Only the top dominators by candidate gain are worth a check.
    std::vector<std::uint32_t> order;
    for (const Candidate& c : candidates)
      if (std::find(order.begin(), order.end(), c.a) == order.end())
        order.push_back(c.a);
    int attempts = 2 * opts.max_disjunctive;
    for (std::uint32_t a : order) {
      if (disj >= opts.max_disjunctive || attempts <= 0 || checks_left <= 0)
        break;
      const auto& kids = children_of[a];
      if (kids.size() < 2) continue;
      if (creates_cycle(a, kids[0]) || creates_cycle(a, kids[1])) continue;
      --attempts;
      cs.add_disjunctive_ids(a, {kids[0], kids[1]});
      if (!feasible_now()) {
        cs.disjunctives().pop_back();
        continue;
      }
      add_edge(a, kids[0]);
      add_edge(a, kids[1]);
      ++disj;
    }
  }

  // Dominance acceptance by recursive group testing. Feasibility is
  // anti-monotone in the constraint set (dropping constraints never hurts),
  // so a feasible batch can be committed wholesale.
  int taken = 0;
  std::size_t cursor = 0;
  std::function<void(std::vector<std::pair<std::uint32_t, std::uint32_t>>)>
      accept_group = [&](std::vector<std::pair<std::uint32_t, std::uint32_t>>
                             group) {
        // Filter against the edges committed so far.
        std::vector<std::pair<std::uint32_t, std::uint32_t>> live;
        for (auto [a, b] : group) {
          if (creates_cycle(a, b) || reach[a].test(b)) {
            std::swap(a, b);
            if (creates_cycle(a, b) || reach[a].test(b)) continue;
          }
          live.emplace_back(a, b);
          // Tentative edge so later group members stay mutually acyclic.
          add_edge(a, b);
        }
        // Roll the tentative edges back; commits re-add them.
        // (Recompute reach from committed dominance/disjunctive edges.)
        auto rebuild_reach = [&]() {
          for (auto& r : reach) r.clear();
          for (const auto& d : cs.dominances()) add_edge(d.dominator, d.dominated);
          for (const auto& dj : cs.disjunctives())
            for (auto c : dj.children) add_edge(dj.parent, c);
        };
        rebuild_reach();
        if (live.empty()) return;
        if (taken + static_cast<int>(live.size()) > opts.max_dominance)
          live.resize(static_cast<std::size_t>(opts.max_dominance - taken));
        if (live.empty() || checks_left <= 0) return;

        const std::size_t before = cs.dominances().size();
        for (const auto& [a, b] : live) cs.add_dominance_ids(a, b);
        if (feasible_now()) {
          taken += static_cast<int>(live.size());
          rebuild_reach();
          return;
        }
        cs.dominances().resize(before);
        rebuild_reach();
        if (live.size() == 1) return;  // isolated breaker: drop it
        const std::size_t half = live.size() / 2;
        accept_group({live.begin(), live.begin() + static_cast<long>(half)});
        accept_group({live.begin() + static_cast<long>(half), live.end()});
      };

  while (taken < opts.max_dominance && cursor < candidates.size() &&
         checks_left > 0) {
    // Modest batches localize infeasibility quickly when breakers are
    // common (group testing degenerates on dense breaker sets).
    std::vector<std::pair<std::uint32_t, std::uint32_t>> group;
    for (; cursor < candidates.size() && group.size() < 8; ++cursor)
      group.emplace_back(candidates[cursor].a, candidates[cursor].b);
    if (group.empty()) break;
    accept_group(std::move(group));
  }
  return cs;
}

}  // namespace encodesat
