// Static analysis of symbolic FSM specifications: determinism,
// completeness, and summary statistics — the sanity layer in front of
// constraint generation and simulation (both assume a deterministic spec).
#pragma once

#include <string>
#include <vector>

#include "fsm/fsm.h"

namespace encodesat {

struct FsmIssue {
  enum class Kind {
    kOverlap,        ///< two transitions of one state intersect on inputs
    kConflict,       ///< ... and disagree on next state or specified output
    kIncomplete,     ///< some state leaves part of the input space undefined
  };
  Kind kind;
  std::uint32_t state = 0;
  std::string detail;
};

struct FsmAnalysis {
  bool deterministic = true;  ///< no kConflict issues
  bool complete = true;       ///< no kIncomplete issues
  std::vector<FsmIssue> issues;

  // Statistics.
  std::size_t transitions = 0;
  std::size_t dont_care_outputs = 0;  ///< '-' bits across all transitions
  int max_fanout = 0;                 ///< distinct next states of one state
};

/// Analyzes the machine. Overlapping transitions that agree on next state
/// and all specified outputs are reported as kOverlap but keep the machine
/// deterministic; disagreement is a kConflict.
FsmAnalysis analyze_fsm(const Fsm& fsm);

}  // namespace encodesat
