#include "fsm/reachability.h"

#include <vector>

namespace encodesat {

std::vector<bool> reachable_states(const Fsm& fsm) {
  const std::uint32_t n = fsm.num_states();
  std::vector<bool> seen(n, false);
  if (n == 0) return seen;
  std::vector<std::uint32_t> stack;
  const std::uint32_t root =
      fsm.reset_state >= 0 ? static_cast<std::uint32_t>(fsm.reset_state) : 0;
  seen[root] = true;
  stack.push_back(root);
  while (!stack.empty()) {
    const std::uint32_t s = stack.back();
    stack.pop_back();
    for (const auto& t : fsm.transitions) {
      if (t.from != s || seen[t.to]) continue;
      seen[t.to] = true;
      stack.push_back(t.to);
    }
  }
  return seen;
}

PruneResult prune_unreachable(const Fsm& fsm) {
  const auto seen = reachable_states(fsm);
  PruneResult res;
  res.fsm.name = fsm.name;
  res.fsm.num_inputs = fsm.num_inputs;
  res.fsm.num_outputs = fsm.num_outputs;

  std::vector<std::uint32_t> new_of_old(fsm.num_states(),
                                        fsm.num_states());
  for (std::uint32_t s = 0; s < fsm.num_states(); ++s) {
    if (!seen[s]) {
      ++res.removed;
      continue;
    }
    new_of_old[s] = res.fsm.states.intern(fsm.states.name(s));
    res.old_of_new.push_back(s);
  }
  for (const auto& t : fsm.transitions) {
    if (!seen[t.from]) continue;
    FsmTransition nt = t;
    nt.from = new_of_old[t.from];
    nt.to = new_of_old[t.to];
    res.fsm.transitions.push_back(std::move(nt));
  }
  if (fsm.reset_state >= 0)
    res.fsm.reset_state = static_cast<int>(
        new_of_old[static_cast<std::uint32_t>(fsm.reset_state)]);
  return res;
}

}  // namespace encodesat
