// Finite-state-machine model with KISS2 text I/O.
//
// KISS2 is the MCNC/SIS interchange format for symbolic FSMs: a header of
// .i/.o/.s/.p/.r directives followed by one transition per line,
//   <input-cube> <current-state> <next-state> <output-bits>
// where input cubes are over {0,1,-} and outputs over {0,1,-}.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/symbols.h"

namespace encodesat {

struct FsmTransition {
  std::string input;   ///< length = num_inputs, chars in {0,1,-}
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::string output;  ///< length = num_outputs, chars in {0,1,-}
};

struct Fsm {
  std::string name;
  int num_inputs = 0;
  int num_outputs = 0;
  SymbolTable states;
  std::vector<FsmTransition> transitions;
  /// Reset state index, or -1 if unspecified.
  int reset_state = -1;

  std::uint32_t num_states() const { return states.size(); }
};

/// Parses a KISS2 description; throws std::runtime_error on malformed text.
Fsm parse_kiss2(std::istream& in);
Fsm parse_kiss2_string(const std::string& text);

/// Writes KISS2 text (round-trips through parse_kiss2).
void write_kiss2(std::ostream& out, const Fsm& fsm);
std::string write_kiss2_string(const Fsm& fsm);

}  // namespace encodesat
