// Behavioural simulation: runs the symbolic FSM and an encoded
// (two-level-minimized) implementation side by side and checks that every
// specified output bit and the next-state code agree — the end-to-end
// correctness oracle for the encode → minimize pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/encoding.h"
#include "fsm/fsm.h"
#include "logic/cover.h"

namespace encodesat {

/// Evaluates a binary-input cover at the given input assignment: returns
/// the OR of the output parts of all cubes containing the minterm.
Bitset eval_cover(const Cover& cover, const std::vector<bool>& inputs);

/// One symbolic step: finds the transition matching (inputs, state).
/// Returns false if no transition matches (unspecified behaviour).
struct SymbolicStep {
  std::uint32_t next_state = 0;
  std::string output;  ///< the KISS output field, '-' = unspecified
};
bool symbolic_step(const Fsm& fsm, const std::vector<bool>& inputs,
                   std::uint32_t state, SymbolicStep* step);

struct EquivalenceReport {
  bool equivalent = true;
  std::uint64_t steps_checked = 0;
  std::string first_mismatch;  ///< empty when equivalent
};

/// Random-walk equivalence check between the symbolic machine and an
/// encoded next-state/output cover (as produced by encode_fsm + espresso):
/// from the reset state (or state 0), drive `steps` random input vectors,
/// checking the specified output bits and the next-state code each step.
/// Unspecified symbolic steps reset the walk. The machine must be
/// deterministic (non-overlapping input cubes per state); with an
/// ambiguous spec the first matching transition is taken and spurious
/// mismatches may be reported.
EquivalenceReport check_encoded_equivalence(const Fsm& fsm,
                                            const Encoding& codes,
                                            const Cover& encoded,
                                            std::uint64_t steps,
                                            std::uint64_t seed = 1);

}  // namespace encodesat
