#include "fsm/analyze.h"

#include <set>
#include <sstream>

namespace encodesat {

namespace {

bool cubes_intersect_text(const std::string& a, const std::string& b) {
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != '-' && b[i] != '-' && a[i] != b[i]) return false;
  return true;
}

// Number of minterms of an input cube over `ni` inputs, as a double to
// avoid overflow concerns for wide inputs (exact for ni <= 52).
double cube_minterms(const std::string& cube) {
  double n = 1;
  for (char ch : cube)
    if (ch == '-') n *= 2;
  return n;
}

bool outputs_conflict(const std::string& a, const std::string& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    const char x = a[i], y = b[i];
    if (x != '-' && y != '-' && x != y) return true;
  }
  return false;
}

}  // namespace

FsmAnalysis analyze_fsm(const Fsm& fsm) {
  FsmAnalysis res;
  res.transitions = fsm.transitions.size();
  for (const auto& t : fsm.transitions)
    for (char ch : t.output)
      if (ch == '-' || ch == '~') ++res.dont_care_outputs;

  std::vector<std::vector<const FsmTransition*>> by_state(fsm.num_states());
  for (const auto& t : fsm.transitions) by_state[t.from].push_back(&t);

  for (std::uint32_t s = 0; s < fsm.num_states(); ++s) {
    const auto& list = by_state[s];
    std::set<std::uint32_t> targets;
    double covered = 0;
    for (const auto* t : list) {
      targets.insert(t->to);
      covered += cube_minterms(t->input);  // over-counts on overlap
    }
    res.max_fanout =
        std::max(res.max_fanout, static_cast<int>(targets.size()));

    // Pairwise overlap / conflict detection.
    bool overlapping = false;
    for (std::size_t i = 0; i < list.size(); ++i) {
      for (std::size_t j = i + 1; j < list.size(); ++j) {
        if (!cubes_intersect_text(list[i]->input, list[j]->input)) continue;
        overlapping = true;
        const bool conflict = list[i]->to != list[j]->to ||
                              outputs_conflict(list[i]->output,
                                               list[j]->output);
        std::ostringstream msg;
        msg << "inputs " << list[i]->input << " and " << list[j]->input
            << " overlap" << (conflict ? " and disagree" : "");
        res.issues.push_back(FsmIssue{conflict ? FsmIssue::Kind::kConflict
                                               : FsmIssue::Kind::kOverlap,
                                      s, msg.str()});
        if (conflict) res.deterministic = false;
      }
    }

    // Completeness: the input space must be covered. Without overlaps the
    // minterm sum is exact; with overlaps it is an upper bound, so only
    // trust a "complete" verdict when there was no overlap.
    const double space = cube_minterms(std::string(
        static_cast<std::size_t>(fsm.num_inputs), '-'));
    if (covered < space || (overlapping && covered == space)) {
      if (covered < space) {
        res.complete = false;
        std::ostringstream msg;
        msg << "covers " << covered << " of " << space << " input minterms";
        res.issues.push_back(
            FsmIssue{FsmIssue::Kind::kIncomplete, s, msg.str()});
      }
    }
  }
  return res;
}

}  // namespace encodesat
