#include "fsm/fsm.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace encodesat {

namespace {

void check_cube_chars(const std::string& s, const char* what) {
  for (char ch : s)
    if (ch != '0' && ch != '1' && ch != '-' && ch != '~')
      throw std::runtime_error(std::string("bad ") + what +
                               " character in KISS2 cube: " + s);
}

}  // namespace

Fsm parse_kiss2(std::istream& in) {
  Fsm fsm;
  std::string reset_name;
  std::string raw;
  int declared_p = -1;
  while (std::getline(in, raw)) {
    std::string line{trim(raw)};
    if (line.empty() || line[0] == '#') continue;
    if (line[0] == '.') {
      auto tok = split_ws(line);
      const std::string& dir = tok[0];
      if (dir == ".i" && tok.size() >= 2) fsm.num_inputs = std::stoi(tok[1]);
      else if (dir == ".o" && tok.size() >= 2) fsm.num_outputs = std::stoi(tok[1]);
      else if (dir == ".p" && tok.size() >= 2) declared_p = std::stoi(tok[1]);
      else if (dir == ".s" && tok.size() >= 2) { /* state count: checked below */ }
      else if (dir == ".r" && tok.size() >= 2) reset_name = tok[1];
      else if (dir == ".e" || dir == ".end") break;
      else throw std::runtime_error("unsupported KISS2 directive: " + dir);
      continue;
    }
    auto tok = split_ws(line);
    if (tok.size() != 4)
      throw std::runtime_error("KISS2 transition needs 4 fields: " + line);
    FsmTransition t;
    t.input = tok[0];
    t.output = tok[3];
    check_cube_chars(t.input, "input");
    check_cube_chars(t.output, "output");
    if (static_cast<int>(t.input.size()) != fsm.num_inputs)
      throw std::runtime_error("KISS2 input width mismatch: " + line);
    if (static_cast<int>(t.output.size()) != fsm.num_outputs)
      throw std::runtime_error("KISS2 output width mismatch: " + line);
    t.from = fsm.states.intern(tok[1]);
    t.to = fsm.states.intern(tok[2]);
    fsm.transitions.push_back(std::move(t));
  }
  if (!reset_name.empty())
    fsm.reset_state = static_cast<int>(fsm.states.intern(reset_name));
  if (declared_p >= 0 &&
      declared_p != static_cast<int>(fsm.transitions.size()))
    throw std::runtime_error(".p count does not match transition count");
  return fsm;
}

Fsm parse_kiss2_string(const std::string& text) {
  std::istringstream in(text);
  return parse_kiss2(in);
}

void write_kiss2(std::ostream& out, const Fsm& fsm) {
  out << ".i " << fsm.num_inputs << '\n';
  out << ".o " << fsm.num_outputs << '\n';
  out << ".s " << fsm.num_states() << '\n';
  out << ".p " << fsm.transitions.size() << '\n';
  if (fsm.reset_state >= 0)
    out << ".r "
        << fsm.states.name(static_cast<std::uint32_t>(fsm.reset_state))
        << '\n';
  for (const auto& t : fsm.transitions)
    out << t.input << ' ' << fsm.states.name(t.from) << ' '
        << fsm.states.name(t.to) << ' ' << t.output << '\n';
  out << ".e\n";
}

std::string write_kiss2_string(const Fsm& fsm) {
  std::ostringstream out;
  write_kiss2(out, fsm);
  return out.str();
}

}  // namespace encodesat
