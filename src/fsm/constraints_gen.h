// Symbolic-minimization front-end: derives encoding constraints from an
// unencoded FSM, the first phase of the two-phase encoding paradigm.
//
// Input (face) constraints follow the ESPRESSO-MV route of NOVA [Villa &
// Sangiovanni-Vincentelli 1990]: the present state is one multiple-valued
// input variable, the next state is one-hot in the output part; each cube
// of the MV-minimized cover groups the present states of its MV literal,
// and every group of 2 <= |group| < n states becomes a face constraint.
//
// Output (dominance/disjunctive) constraints follow the spirit of
// De Micheli's symbolic minimization [TCAD 1986] ("an extension of the
// procedure described in [6] that also generates good disjunctive effects",
// as used for the paper's Table 1): a dominance a > b is proposed when
// letting a's code cover b's lets the ON-set of next-state a absorb b's
// transitions as don't-cares and shrink; a disjunctive a = b OR c is
// proposed when a's ON-set is contained in the union of b's and c's.
// Each proposal is kept only if the whole constraint set stays feasible
// (check_feasible), mirroring how a symbolic minimizer only commits to
// realizable covers.
#pragma once

#include "core/constraints.h"
#include "core/encoder.h"
#include "fsm/fsm.h"
#include "logic/cover.h"

namespace encodesat {

struct ConstraintGenOptions {
  /// Generate face constraints with encoding don't-cares: a state whose
  /// transitions are compatible with a group joins it as a don't-care
  /// member rather than a full member (used by the multi-level flow of
  /// Table 3).
  bool face_dontcares = false;
  /// Upper bounds keeping generated sets comparable to the paper's.
  int max_dominance = 12;
  int max_disjunctive = 4;
  /// Keep only output constraints that preserve feasibility of the whole
  /// set (the symbolic minimizer only emits realizable covers).
  bool enforce_feasibility = true;
};

/// The one-hot multi-valued cover of the FSM's transition function:
/// binary primary inputs + one MV present-state variable; outputs are the
/// one-hot next state followed by the primary outputs.
Cover fsm_symbolic_cover(const Fsm& fsm);

/// Face constraints from MV minimization of the symbolic cover.
ConstraintSet generate_input_constraints(const Fsm& fsm,
                                         const ConstraintGenOptions& opts = {});

/// Face constraints plus dominance/disjunctive output constraints.
ConstraintSet generate_mixed_constraints(const Fsm& fsm,
                                         const ConstraintGenOptions& opts = {});

}  // namespace encodesat
