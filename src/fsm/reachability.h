// Reachability analysis over the symbolic FSM: which states can be reached
// from the reset state, and pruning of unreachable states before encoding
// (fewer symbols means shorter codes and fewer constraints).
#pragma once

#include <vector>

#include "fsm/fsm.h"

namespace encodesat {

/// Set of states reachable from the reset state (or state 0 when no reset
/// is declared) following transitions regardless of input values.
std::vector<bool> reachable_states(const Fsm& fsm);

struct PruneResult {
  Fsm fsm;                               ///< machine over reachable states
  std::vector<std::uint32_t> old_of_new; ///< new index -> old index
  std::uint32_t removed = 0;
};

/// Removes unreachable states and their transitions; state names and the
/// reset state are preserved. Transitions *from* removed states disappear;
/// transitions *to* removed states cannot exist (unreachable targets of
/// reachable states would be reachable).
PruneResult prune_unreachable(const Fsm& fsm);

}  // namespace encodesat
