// Synthetic MCNC-like FSM benchmark suite.
//
// The paper evaluates on the MCNC'89/91 FSM benchmarks (bbsse, cse, dk16,
// ...), which are not redistributable here; this generator produces
// deterministic machines with the same state/input/output counts and a
// transition structure designed to exercise the same phenomena: groups of
// states sharing behaviour under common input events (which MV minimization
// merges into face constraints), chain/hub transition patterns (which give
// dominance and disjunctive opportunities), and output don't-cares. See
// DESIGN.md "Substitutions" for the fidelity argument.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fsm/fsm.h"

namespace encodesat {

struct BenchmarkSpec {
  std::string name;
  int states = 0;
  int inputs = 0;
  int outputs = 0;
  std::uint64_t seed = 0;
  /// Rough density of shared-behaviour groups; higher = fewer, larger
  /// groups = fewer but bigger face constraints.
  int group_size = 3;
};

/// The suite mirroring the paper's Tables 1-3 benchmark names and sizes.
const std::vector<BenchmarkSpec>& mcnc_like_suite();

/// Deterministically generates the machine for a spec.
Fsm make_mcnc_like(const BenchmarkSpec& spec);

/// Lookup by name in the suite; throws std::out_of_range if unknown.
const BenchmarkSpec& benchmark_spec(const std::string& name);

}  // namespace encodesat
