#include "fsm/simulate.h"

#include <sstream>

#include "util/rng.h"

namespace encodesat {

Bitset eval_cover(const Cover& cover, const std::vector<bool>& inputs) {
  const Domain& dom = cover.domain();
  Bitset out(static_cast<std::size_t>(dom.num_outputs()));
  for (const Cube& c : cover) {
    bool contains = true;
    for (int v = 0; v < dom.num_inputs() && contains; ++v) {
      const int bit = inputs[static_cast<std::size_t>(v)] ? 1 : 0;
      if (!c.bits.test(static_cast<std::size_t>(dom.pos(v, bit))))
        contains = false;
    }
    if (!contains) continue;
    for (int o = 0; o < dom.num_outputs(); ++o)
      if (c.bits.test(static_cast<std::size_t>(dom.out_pos(o))))
        out.set(static_cast<std::size_t>(o));
  }
  return out;
}

bool symbolic_step(const Fsm& fsm, const std::vector<bool>& inputs,
                   std::uint32_t state, SymbolicStep* step) {
  for (const auto& t : fsm.transitions) {
    if (t.from != state) continue;
    bool match = true;
    for (int v = 0; v < fsm.num_inputs && match; ++v) {
      const char ch = t.input[static_cast<std::size_t>(v)];
      if (ch == '-') continue;
      if ((ch == '1') != inputs[static_cast<std::size_t>(v)]) match = false;
    }
    if (!match) continue;
    step->next_state = t.to;
    step->output = t.output;
    return true;
  }
  return false;
}

EquivalenceReport check_encoded_equivalence(const Fsm& fsm,
                                            const Encoding& codes,
                                            const Cover& encoded,
                                            std::uint64_t steps,
                                            std::uint64_t seed) {
  EquivalenceReport report;
  Rng rng(seed);
  const int b = codes.bits;
  const std::uint32_t reset =
      fsm.reset_state >= 0 ? static_cast<std::uint32_t>(fsm.reset_state) : 0;
  std::uint32_t state = reset;

  for (std::uint64_t i = 0; i < steps; ++i) {
    std::vector<bool> primary(static_cast<std::size_t>(fsm.num_inputs));
    for (auto&& bit : primary) bit = rng.next_bool();

    SymbolicStep want;
    if (!symbolic_step(fsm, primary, state, &want)) {
      // Unspecified input for this state: restart the walk.
      state = reset;
      continue;
    }

    // Drive the encoded cover with (primary inputs, current state code).
    std::vector<bool> full = primary;
    const std::uint64_t code = codes.codes[state];
    for (int j = 0; j < b; ++j) full.push_back((code >> j) & 1u);
    const Bitset got = eval_cover(encoded, full);

    // Next-state code bits must match exactly.
    const std::uint64_t want_code = codes.codes[want.next_state];
    for (int j = 0; j < b; ++j) {
      const bool bit = got.test(static_cast<std::size_t>(j));
      if (bit != (((want_code >> j) & 1u) != 0)) {
        std::ostringstream msg;
        msg << "step " << i << ": next-state bit " << j << " is " << bit
            << ", expected code of " << fsm.states.name(want.next_state);
        report.equivalent = false;
        report.first_mismatch = msg.str();
        return report;
      }
    }
    // Specified primary outputs must match; '-' bits are free.
    for (int o = 0; o < fsm.num_outputs; ++o) {
      const char ch = want.output[static_cast<std::size_t>(o)];
      if (ch == '-' || ch == '~') continue;
      const bool bit = got.test(static_cast<std::size_t>(b + o));
      if (bit != (ch == '1')) {
        std::ostringstream msg;
        msg << "step " << i << ": output " << o << " is " << bit
            << ", expected " << ch;
        report.equivalent = false;
        report.first_mismatch = msg.str();
        return report;
      }
    }
    ++report.steps_checked;
    state = want.next_state;
  }
  return report;
}

}  // namespace encodesat
