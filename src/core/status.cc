#include "core/status.h"

#include <cstring>

namespace encodesat {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kInfeasible:
      return "infeasible";
    case StatusCode::kTimeout:
      return "timeout";
    case StatusCode::kOverloaded:
      return "overloaded";
    case StatusCode::kCanceled:
      return "canceled";
    case StatusCode::kInternal:
      return "internal";
  }
  return "internal";
}

bool status_code_from_name(const char* name, StatusCode* out) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,         StatusCode::kParseError,
      StatusCode::kInfeasible, StatusCode::kTimeout,
      StatusCode::kOverloaded, StatusCode::kCanceled,
      StatusCode::kInternal,
  };
  for (StatusCode c : kAll)
    if (!std::strcmp(name, status_code_name(c))) {
      if (out) *out = c;
      return true;
    }
  return false;
}

}  // namespace encodesat
