// Chain constraints (Section 8.4) — the constraint class the paper flags
// as *not* naturally expressible with dichotomies, from Amann & Baitinger's
// counter-based PLA state assignment: an ordered sequence of symbols must
// receive consecutive binary codes (modulo 2^bits; the paper's own example
// wraps 11 -> 00).
//
// The paper leaves an efficient dichotomy formulation open and notes that a
// straightforward solution "seems to require a computationally expensive
// implicit enumeration". This module provides exactly that honest baseline:
// a pruned backtracking search over chain base codes and free-symbol codes
// that satisfies face constraints together with chains, for the small
// instances the counter-based flow produces.
#pragma once

#include <cstdint>
#include <vector>

#include "core/constraints.h"
#include "core/encoding.h"

namespace encodesat {

struct ChainConstraint {
  /// The ordered symbols; code(sequence[i+1]) == code(sequence[i]) + 1
  /// (mod 2^bits).
  std::vector<std::uint32_t> sequence;
};

struct ChainEncodeOptions {
  std::uint64_t max_nodes = 5'000'000;
};

struct ChainEncodeResult {
  enum class Status { kEncoded, kInfeasible, kBudget };
  Status status = Status::kInfeasible;
  Encoding encoding;
  std::uint64_t nodes_explored = 0;
};

/// Finds a `bits`-wide encoding satisfying the face constraints of `cs`
/// plus the given chains (symbols may appear in at most one chain; throws
/// std::invalid_argument otherwise, or if 2^bits < #symbols).
/// Output constraints in `cs` are also honored (checked, not propagated).
ChainEncodeResult encode_with_chains(const ConstraintSet& cs,
                                     const std::vector<ChainConstraint>& chains,
                                     int bits,
                                     const ChainEncodeOptions& opts = {});

/// True iff every chain holds under the encoding (wrap-around arithmetic).
bool chains_satisfied(const Encoding& enc,
                      const std::vector<ChainConstraint>& chains);

}  // namespace encodesat
