#include "core/encoder.h"

#include <algorithm>
#include <optional>

#include "core/output_rules.h"
#include "core/verify.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace encodesat {

namespace {

// Fan-out thresholds: below these sizes the per-thread dispatch overhead
// outweighs the work, so the loops stay inline regardless of ctx threads.
constexpr std::size_t kParallelGrain = 64;

int threads_for(const ExecContext& ctx, std::size_t n) {
  return n >= kParallelGrain ? ctx.num_threads : 1;
}

// Builds D from I: delete invalid dichotomies, raise the survivors to their
// maximal form, delete any that became invalid, and deduplicate. Raising is
// independent per dichotomy, so the loop fans out over `ctx.num_threads`
// with one result slot per input — the surviving order (and therefore the
// deduplicated set) matches the sequential path exactly.
std::vector<Dichotomy> valid_raised_set(
    const std::vector<InitialDichotomy>& initial, const ConstraintSet& cs,
    const ExecContext& ctx) {
  TRACE_SCOPE(ctx, "raise_pass");
  std::vector<std::optional<Dichotomy>> slots(initial.size());
  parallel_for(initial.size(), threads_for(ctx, initial.size()),
               [&](std::size_t i) {
                 const Dichotomy& d = initial[i].dichotomy;
                 if (!dichotomy_valid(d, cs)) return;
                 Dichotomy raised = d;
                 if (!raise_dichotomy(raised, cs)) return;
                 if (!dichotomy_valid(raised, cs)) return;
                 slots[i] = std::move(raised);
               });
  std::vector<Dichotomy> d;
  d.reserve(initial.size());
  for (auto& s : slots)
    if (s) d.push_back(std::move(*s));
  dedupe_dichotomies(d);
  // Raising is per-item and the slot merge is order-preserving, so both
  // values are thread-count invariant (fingerprint-safe).
  metric_add(ctx, "raise.attempts", initial.size());
  metric_add(ctx, "raise.kept", d.size());
  return d;
}

std::vector<std::size_t> uncovered_initials(
    const std::vector<InitialDichotomy>& initial,
    const std::vector<Dichotomy>& d, const ExecContext& ctx) {
  TRACE_SCOPE(ctx, "coverage_check");
  std::vector<char> covered(initial.size(), 0);
  parallel_for(initial.size(), threads_for(ctx, initial.size()),
               [&](std::size_t i) {
                 for (const auto& raised : d) {
                   if (raised.covers(initial[i].dichotomy)) {
                     covered[i] = 1;
                     return;
                   }
                 }
               });
  std::vector<std::size_t> uncovered;
  for (std::size_t i = 0; i < initial.size(); ++i)
    if (!covered[i]) uncovered.push_back(i);
  return uncovered;
}

}  // namespace

FeasibilityResult check_feasible(const ConstraintSet& cs,
                                 const ExecContext& ctx) {
  StageScope stage(ctx, "feasibility");
  FeasibilityResult res;
  res.initial = generate_initial_dichotomies(cs);
  res.raised = valid_raised_set(res.initial, cs, stage.ctx());
  res.uncovered = uncovered_initials(res.initial, res.raised, stage.ctx());
  res.feasible = res.uncovered.empty();
  stage.add_items(res.initial.size());
  return res;
}

ExactEncodeResult exact_encode(const ConstraintSet& cs,
                               const ExactEncodeOptions& opts,
                               const ExecContext& ctx) {
  ExactEncodeResult res;
  const std::uint32_t n = cs.num_symbols();

  std::vector<InitialDichotomy> initial;
  std::vector<Dichotomy> d;
  {
    StageScope stage(ctx, "initial_dichotomies");
    initial = generate_initial_dichotomies(cs);
    res.num_initial = initial.size();
    stage.add_items(initial.size());
  }
  {
    StageScope stage(ctx, "raise");
    d = valid_raised_set(initial, cs, stage.ctx());
    res.num_raised = d.size();
    stage.add_items(d.size());

    res.uncovered = uncovered_initials(initial, d, stage.ctx());
  }
  if (!res.uncovered.empty()) {
    res.status = ExactEncodeResult::Status::kInfeasible;
    return res;
  }

  // Trivial but legal corner: one symbol, no constraints to separate.
  if (n <= 1) {
    res.status = ExactEncodeResult::Status::kEncoded;
    res.encoding.bits = n == 0 ? 0 : 1;
    res.encoding.codes.assign(n, 0);
    return res;
  }

  PrimeGenResult pg = generate_prime_dichotomies(d, opts.prime_options, ctx);
  if (pg.truncated) {
    res.status = ExactEncodeResult::Status::kPrimeLimit;
    res.truncated = true;
    res.truncation = pg.truncation;
    return res;
  }
  res.num_primes = pg.primes.size();

  // Keep only primes that still satisfy the output constraints. A union of
  // valid dichotomies can trip an implication none of its constituents did
  // (e.g. scatter all children of a right-block disjunctive parent into the
  // left block), so each prime is also re-raised to its maximal form —
  // required for the default-to-right code derivation of Theorem 6.1.
  // Validation is independent per prime: slot-per-index fan-out again.
  std::vector<Dichotomy> candidates;
  {
    StageScope stage(ctx, "validate_primes");
    std::vector<std::optional<Dichotomy>> slots(pg.primes.size());
    parallel_for(pg.primes.size(), threads_for(ctx, pg.primes.size()),
                 [&](std::size_t i) {
                   Dichotomy& p = pg.primes[i];
                   if (!dichotomy_valid(p, cs)) return;
                   if (!raise_dichotomy(p, cs)) return;
                   if (!dichotomy_valid(p, cs)) return;
                   slots[i] = std::move(p);
                 });
    candidates.reserve(pg.primes.size() + d.size());
    for (auto& s : slots)
      if (s) candidates.push_back(std::move(*s));
    res.num_valid_primes = candidates.size();
    metric_add(stage.ctx(), "primes.validate_attempts", pg.primes.size());
    metric_add(stage.ctx(), "primes.validate_kept", candidates.size());
    // Safety net: the valid maximally raised dichotomies themselves remain
    // legal columns (Theorem 6.1 proves they suffice for feasibility), so a
    // prime lost to post-union validity filtering never costs us a solution.
    for (const Dichotomy& raised : d) candidates.push_back(raised);
    dedupe_dichotomies(candidates);
    stage.add_items(candidates.size());
  }
  if (!ctx.poll()) {
    res.status = ExactEncodeResult::Status::kPrimeLimit;
    res.truncated = true;
    res.truncation = ctx.reason();
    return res;
  }

  // Exact unate covering: rows = initial dichotomies, columns = candidates.
  UnateCoverProblem problem;
  problem.num_columns = candidates.size();
  problem.rows.resize(initial.size());
  {
    StageScope stage(ctx, "cover_table");
    parallel_for(initial.size(), threads_for(ctx, initial.size()),
                 [&](std::size_t i) {
                   Bitset row(problem.num_columns);
                   for (std::size_t c = 0; c < candidates.size(); ++c)
                     if (candidates[c].covers(initial[i].dichotomy))
                       row.set(c);
                   problem.rows[i] = std::move(row);
                 });
    stage.add_items(initial.size());
    metric_add(stage.ctx(), "cover.table_rows", problem.rows.size());
    metric_add(stage.ctx(), "cover.table_columns", problem.num_columns);
  }
  const UnateCoverSolution cover =
      solve_unate_cover(problem, opts.cover_options, ctx);
  if (!cover.feasible) {
    // Cannot happen when the feasibility check passed (Theorem 6.1), but
    // report honestly rather than asserting in release builds.
    res.status = ExactEncodeResult::Status::kInfeasible;
    return res;
  }

  std::vector<Dichotomy> columns;
  columns.reserve(cover.columns.size());
  for (std::size_t c : cover.columns) columns.push_back(candidates[c]);

  res.status = ExactEncodeResult::Status::kEncoded;
  res.minimal = cover.optimal;
  res.truncated = cover.truncated;
  res.truncation = cover.truncation;
  res.encoding = derive_codes(n, columns);
  return res;
}

bool verify_infeasibility_witness(const ConstraintSet& cs,
                                  const FeasibilityResult& result,
                                  std::string* why) {
  auto fail = [&](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  if (result.feasible) return fail("result is feasible; nothing to witness");
  if (result.uncovered.empty())
    return fail("infeasible verdict carries no uncovered witness");
  for (std::size_t i : result.uncovered) {
    if (i >= result.initial.size())
      return fail("witness index " + std::to_string(i) +
                  " out of range (initial has " +
                  std::to_string(result.initial.size()) + ")");
    const Dichotomy& want = result.initial[i].dichotomy;
    for (std::size_t j = 0; j < result.raised.size(); ++j)
      if (result.raised[j].covers(want))
        return fail("raised dichotomy " + std::to_string(j) +
                    " covers 'uncovered' initial dichotomy " +
                    std::to_string(i));
  }
  for (std::size_t j = 0; j < result.raised.size(); ++j)
    if (!dichotomy_valid(result.raised[j], cs))
      return fail("raised dichotomy " + std::to_string(j) +
                  " violates an output constraint");
  return true;
}

}  // namespace encodesat
