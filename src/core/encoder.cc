#include "core/encoder.h"

#include <algorithm>

#include "core/output_rules.h"
#include "core/verify.h"

namespace encodesat {

namespace {

// Builds D from I: delete invalid dichotomies, raise the survivors to their
// maximal form, delete any that became invalid, and deduplicate.
std::vector<Dichotomy> valid_raised_set(
    const std::vector<InitialDichotomy>& initial, const ConstraintSet& cs) {
  std::vector<Dichotomy> d;
  d.reserve(initial.size());
  for (const auto& i : initial) {
    if (!dichotomy_valid(i.dichotomy, cs)) continue;
    Dichotomy raised = i.dichotomy;
    if (!raise_dichotomy(raised, cs)) continue;
    if (!dichotomy_valid(raised, cs)) continue;
    d.push_back(std::move(raised));
  }
  dedupe_dichotomies(d);
  return d;
}

std::vector<std::size_t> uncovered_initials(
    const std::vector<InitialDichotomy>& initial,
    const std::vector<Dichotomy>& d) {
  std::vector<std::size_t> uncovered;
  for (std::size_t i = 0; i < initial.size(); ++i) {
    bool covered = false;
    for (const auto& raised : d) {
      if (raised.covers(initial[i].dichotomy)) {
        covered = true;
        break;
      }
    }
    if (!covered) uncovered.push_back(i);
  }
  return uncovered;
}

}  // namespace

FeasibilityResult check_feasible(const ConstraintSet& cs) {
  FeasibilityResult res;
  res.initial = generate_initial_dichotomies(cs);
  res.raised = valid_raised_set(res.initial, cs);
  res.uncovered = uncovered_initials(res.initial, res.raised);
  res.feasible = res.uncovered.empty();
  return res;
}

ExactEncodeResult exact_encode(const ConstraintSet& cs,
                               const ExactEncodeOptions& opts) {
  ExactEncodeResult res;
  const std::uint32_t n = cs.num_symbols();

  const auto initial = generate_initial_dichotomies(cs);
  res.num_initial = initial.size();

  std::vector<Dichotomy> d = valid_raised_set(initial, cs);
  res.num_raised = d.size();

  res.uncovered = uncovered_initials(initial, d);
  if (!res.uncovered.empty()) {
    res.status = ExactEncodeResult::Status::kInfeasible;
    return res;
  }

  // Trivial but legal corner: one symbol, no constraints to separate.
  if (n <= 1) {
    res.status = ExactEncodeResult::Status::kEncoded;
    res.encoding.bits = n == 0 ? 0 : 1;
    res.encoding.codes.assign(n, 0);
    return res;
  }

  PrimeGenResult pg = generate_prime_dichotomies(d, opts.prime_options);
  if (pg.truncated) {
    res.status = ExactEncodeResult::Status::kPrimeLimit;
    return res;
  }
  res.num_primes = pg.primes.size();

  // Keep only primes that still satisfy the output constraints. A union of
  // valid dichotomies can trip an implication none of its constituents did
  // (e.g. scatter all children of a right-block disjunctive parent into the
  // left block), so each prime is also re-raised to its maximal form —
  // required for the default-to-right code derivation of Theorem 6.1.
  std::vector<Dichotomy> candidates;
  candidates.reserve(pg.primes.size() + d.size());
  for (Dichotomy& p : pg.primes) {
    if (!dichotomy_valid(p, cs)) continue;
    if (!raise_dichotomy(p, cs)) continue;
    if (!dichotomy_valid(p, cs)) continue;
    candidates.push_back(std::move(p));
  }
  res.num_valid_primes = candidates.size();
  // Safety net: the valid maximally raised dichotomies themselves remain
  // legal columns (Theorem 6.1 proves they suffice for feasibility), so a
  // prime lost to post-union validity filtering never costs us a solution.
  for (const Dichotomy& raised : d) candidates.push_back(raised);
  dedupe_dichotomies(candidates);

  // Exact unate covering: rows = initial dichotomies, columns = candidates.
  UnateCoverProblem problem;
  problem.num_columns = candidates.size();
  problem.rows.reserve(initial.size());
  for (const auto& i : initial) {
    Bitset row(problem.num_columns);
    for (std::size_t c = 0; c < candidates.size(); ++c)
      if (candidates[c].covers(i.dichotomy)) row.set(c);
    problem.rows.push_back(std::move(row));
  }
  const UnateCoverSolution cover =
      solve_unate_cover(problem, opts.cover_options);
  if (!cover.feasible) {
    // Cannot happen when the feasibility check passed (Theorem 6.1), but
    // report honestly rather than asserting in release builds.
    res.status = ExactEncodeResult::Status::kInfeasible;
    return res;
  }

  std::vector<Dichotomy> columns;
  columns.reserve(cover.columns.size());
  for (std::size_t c : cover.columns) columns.push_back(candidates[c]);

  res.status = ExactEncodeResult::Status::kEncoded;
  res.minimal = cover.optimal;
  res.encoding = derive_codes(n, columns);
  return res;
}

}  // namespace encodesat
