// Exact bounded-length encoding — the exact version of problem P-3 the
// paper describes (and dismisses as "clearly infeasible on all but trivial
// instances"): among all k-bit encodings, find one violating the fewest
// face constraints.
//
// Implemented as branch-and-bound over injective code assignments with
// face-violation pruning and a first-symbol symmetry break. Exponential by
// nature; used as the optimality oracle for the Section 7.1 heuristic on
// small instances (tests/exact_bounded_test.cc) and available to users with
// genuinely tiny problems.
#pragma once

#include <cstdint>

#include "core/constraints.h"
#include "core/encoding.h"

namespace encodesat {

struct ExactBoundedOptions {
  std::uint64_t max_nodes = 20'000'000;
};

struct ExactBoundedResult {
  enum class Status { kSolved, kBudget, kTooLarge };
  Status status = Status::kTooLarge;
  Encoding encoding;
  /// Number of violated face constraints of `encoding`.
  int violated_faces = 0;
  /// True when the search space was exhausted (the result is optimal).
  bool optimal = false;
  std::uint64_t nodes_explored = 0;
};

/// Minimizes the number of violated face constraints over all injective
/// k-bit encodings. Output constraints of `cs` are enforced as hard
/// constraints (assignments violating them are discarded). Requires
/// 2^bits >= num_symbols and bits <= 16.
ExactBoundedResult exact_bounded_encode(const ConstraintSet& cs, int bits,
                                        const ExactBoundedOptions& opts = {});

}  // namespace encodesat
