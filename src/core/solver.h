// The unified front door of the library: one facade over the paper's whole
// flow (P-1 feasibility, P-2 exact minimum-length encoding, the P-3
// bounded-length heuristic, the Section 8 extension pipeline), with one
// nested options surface instead of per-stage knobs.
//
//   Solver solver(parse_constraints(text));
//   if (!solver.feasible()) ...;
//   SolveOptions opts;
//   opts.exec.timeout_seconds = 5;
//   opts.exec.threads = 4;
//   opts.cache.enabled = true;
//   SolveResult r = solver.encode(opts);
//   // r.status, r.encoding, r.stats.to_json(), ...
//
// encode() routes automatically: constraint sets with distance-2 or
// non-face constraints go through the binate-covering extension pipeline,
// everything else through the exact Fig. 7 pipeline.
//
// Options are grouped by concern (the per-module structs keep their names
// as the nested member types — see docs/API.md for the CLI flag → field
// mapping table):
//   opts.exec        budget, threads, cancellation, tracer, metrics
//   opts.exact       exact-pipeline knobs (ExactEncodeOptions)
//   opts.extensions  extension-pipeline knobs (ExtensionEncodeOptions)
//   opts.bounded     encode_bounded knobs (BoundedEncodeOptions)
//   opts.cache       solve cache (SolveOptions::Cache)
//
// Caching semantics: with the cache enabled, encode() canonicalizes the
// instance (src/cache/canonical.h) and solves the *canonical* set, mapping
// the codes back through the symbol permutation. A warm hit therefore
// returns a bit-identical SolveResult to the cold miss that populated the
// entry — the solver's tie-breaking runs on the same canonical instance
// either way. The cache-off path never canonicalizes and is byte-for-byte
// the historical behavior. Two caveats, both documented on the fields
// below: `uncovered` indices stay in canonical space on cached paths, and
// only untruncated results are stored.
//
// Determinism: for fixed options, the encoding produced is identical for
// every `exec.threads` value and for repeated runs — work/term/node budgets
// trip at reproducible points. Only wall-clock deadlines and cancellation
// make truncation timing (never validity) run-dependent. Cache hit/miss
// counters depend on cache *history*, so they are registered outside the
// metrics fingerprint (obs/counters.h).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "cache/solve_cache.h"
#include "core/bounded.h"
#include "core/constraints.h"
#include "core/encoder.h"
#include "core/encoding.h"
#include "core/extensions.h"
#include "core/status.h"
#include "util/exec.h"

namespace encodesat {

class InFlightTable;  // cache/inflight.h

struct SolveOptions {
  /// Which pipeline encode() runs. kAuto picks the extension pipeline when
  /// distance-2 or non-face constraints are present, the exact Fig. 7
  /// pipeline otherwise; the explicit values force one.
  enum class Pipeline { kAuto, kExact, kExtensions };
  Pipeline pipeline = Pipeline::kAuto;

  /// Execution budget and plumbing, shared by every pipeline.
  struct Exec {
    /// Wall-clock budget for the whole solve; 0 means unlimited.
    double timeout_seconds = 0;
    /// Total work budget in bitset word operations; 0 means unlimited.
    /// This is the deterministic alternative to a deadline. Stage-local
    /// budgets (exact.prime_options.max_terms/max_work, cover node
    /// budgets) still apply.
    std::uint64_t max_work = 0;
    /// Worker threads for the parallel fan-out paths; 1 = sequential
    /// (reference path), 0 = all hardware threads.
    int threads = 1;
    /// Optional cooperative cancellation, shared across threads and
    /// solves. Borrowed; must outlive the call.
    CancelToken* cancel = nullptr;
    /// Optional span sink (obs/trace.h Tracer): every pipeline stage emits
    /// a begin/end span. Borrowed; must outlive the call.
    TraceSink* tracer = nullptr;
    /// Optional counter registry (obs/counters.h): stages report work
    /// counters whose fingerprint is thread-count invariant. Borrowed.
    MetricsRegistry* metrics = nullptr;
  };
  Exec exec;

  /// Exact-pipeline knobs (prime generation + unate covering).
  ExactEncodeOptions exact;
  /// Extension-pipeline knobs (prime generation + binate covering).
  ExtensionEncodeOptions extensions;
  /// Bounded-length heuristic knobs (Solver::encode_bounded only).
  BoundedEncodeOptions bounded;

  /// Solve cache (src/cache/solve_cache.h). Enable with `enabled = true`
  /// (the Solver lazily creates and owns a cache, shared by its own
  /// subsequent solves) or point `store` at an external SolveCache to share
  /// entries across Solver instances and persist them (`--cache-load` /
  /// `--cache-save`); a non-null `store` implies enabled.
  struct Cache {
    bool enabled = false;
    SolveCache* store = nullptr;
    /// Byte budget / shard count for the lazily-created internal cache
    /// (ignored when `store` is set — the store keeps its own config).
    std::size_t max_bytes = 64u << 20;
    std::size_t shards = 8;
    /// Leaf budget for the canonicalization search; past it the canonical
    /// key is inexact (still sound, may miss renamed duplicates).
    std::size_t max_canon_leaves = 4096;
    /// Optional single-flight table (cache/inflight.h): concurrent solves
    /// whose canonical key + options fingerprint match coalesce onto one
    /// pipeline run; the others attach and receive the identical canonical
    /// result permuted back through their own symbol maps. Consulted
    /// whenever set — coalescing works with or without a cache attached
    /// (without one, only the concurrent window is closed). Borrowed; must
    /// outlive the call.
    InFlightTable* single_flight = nullptr;

    bool active() const { return enabled || store != nullptr; }
  };
  Cache cache;
};

struct SolveResult {
  enum class Status {
    kEncoded,     ///< `encoding` satisfies every constraint
    kInfeasible,  ///< the constraints cannot all be satisfied
    kTruncated,   ///< a budget expired before an encoding was found
  };
  Status status = Status::kInfeasible;
  Encoding encoding;
  /// True when minimality was proved within every budget.
  bool minimal = false;
  /// Uniform truncation shape (see docs/API.md): `truncated` always mirrors
  /// `truncation != Truncation::kNone`. A truncated result can still be
  /// encoded — status kEncoded with `truncated` means only the optimality
  /// proof was cut short.
  bool truncated = false;
  /// First budget/limit that tripped (kNone on a clean run).
  Truncation truncation = Truncation::kNone;
  /// Initial dichotomies no valid raised dichotomy covers (infeasible
  /// exact-pipeline runs only; indexes the generated initial list). On a
  /// cache-enabled solve these index the *canonical* instance's initial
  /// list — the dichotomies themselves, unlike codes, have no per-symbol
  /// mapping back to the original order.
  std::vector<std::size_t> uncovered;
  /// True when this result was served from the solve cache.
  bool from_cache = false;
  /// True when this result attached to a concurrent in-flight solve of the
  /// same canonical instance (single-flight coalescing; implies
  /// `from_cache` semantics: the payload replays the leader's solve).
  bool coalesced = false;

  // Table-1 style counters (exact pipeline). On a cache hit these replay
  // the counters of the solve that populated the entry.
  std::size_t num_initial = 0;
  std::size_t num_raised = 0;
  std::size_t num_primes = 0;
  std::size_t num_valid_primes = 0;
  // Extension-pipeline counters.
  std::size_t num_candidates = 0;
  std::size_t num_aux_columns = 0;
  /// Covering-search nodes (binate nodes on the extension path).
  std::uint64_t nodes_explored = 0;

  /// Per-stage observability tree rooted at "solve"; serialize with
  /// stats.to_json(). Populated on every path; a cache hit records a
  /// "cache_hit" child instead of the pipeline stages (stats describe the
  /// work actually done, which on a hit is a lookup).
  StageStats stats;

  bool encoded() const { return status == Status::kEncoded; }
};

class Solver {
 public:
  explicit Solver(ConstraintSet cs) : cs_(std::move(cs)) {}

  const ConstraintSet& constraints() const { return cs_; }

  /// P-1: polynomial-time feasibility of the face/output constraints.
  bool feasible() const { return feasibility().feasible; }
  /// P-1 with diagnostics (the uncovered initial dichotomies).
  FeasibilityResult feasibility() const;

  /// Minimum-length encoding under all constraints, routed to the exact or
  /// extension pipeline as needed.
  SolveResult encode(const SolveOptions& opts = {}) const;

  /// P-3: heuristic encoding in exactly `code_length` bits under
  /// opts.bounded, with opts.exec supplying the budget/tracer/metrics
  /// plumbing (never cached — the heuristic is cost-guided, not
  /// canonical-form-stable). When `stats` is non-null it is reset to a
  /// "solve"-rooted stage tree for the run (the heuristic's result struct
  /// carries no stats of its own).
  BoundedEncodeResult encode_bounded(int code_length,
                                     const SolveOptions& opts = {},
                                     StageStats* stats = nullptr) const;

 private:
  /// Resolves the effective cache for a call: the external store when set,
  /// else the lazily-created owned cache (first call's size config wins),
  /// else nullptr.
  SolveCache* cache_for(const SolveOptions& opts) const;

  ConstraintSet cs_;
  /// Lazily created when opts.cache.enabled is set without an external
  /// store; shared by subsequent encode() calls on this Solver.
  mutable std::unique_ptr<SolveCache> owned_cache_;
  mutable std::mutex cache_mu_;
};

/// One solve, as submitted through the unified request entry point — the
/// single public solve surface shared by the CLI subcommands, the fuzz
/// driver and the `encodesat serve` broker (src/service/broker.h). The
/// request owns its constraints; the service layer parses the wire payload
/// into one of these and everything downstream is transport-agnostic.
struct SolveRequest {
  /// Client-chosen identifier, echoed back verbatim on the response (and
  /// on the NDJSON wire). Not interpreted.
  std::string id;
  ConstraintSet constraints;
  SolveOptions options;
  /// Per-request deadline in seconds, measured from the moment solve()
  /// starts (the broker re-derives the remaining time at dequeue so queue
  /// wait counts against it). 0 defers to options.exec.timeout_seconds.
  double deadline_seconds = 0;
};

/// The uniform answer: a StatusCode plus the underlying SolveResult.
/// `result` is meaningful for kOk / kInfeasible / kTimeout / kCanceled
/// (on the truncation statuses it carries the partial stats); for
/// kParseError the protocol layer fills `parse_error` instead, and for
/// kOverloaded / kInternal `detail` explains.
struct SolveResponse {
  std::string id;
  StatusCode status = StatusCode::kInternal;
  SolveResult result;
  ParseError parse_error;
  std::string detail;

  bool ok() const { return status == StatusCode::kOk; }
};

/// Maps a finished SolveResult onto the unified status surface: encoded →
/// kOk (even when only the optimality proof was truncated), infeasible →
/// kInfeasible, truncated-without-encoding → kCanceled for cooperative
/// cancellation, kTimeout for every expired budget (deadline, work, term,
/// node — from the requester's seat they are all "ran out of budget").
StatusCode status_from_result(const SolveResult& r);

/// The unified entry point: solves `req.constraints` under `req.options`
/// (deadline_seconds, when set, overrides options.exec.timeout_seconds)
/// and folds the outcome into a SolveResponse. Exceptions become
/// kInternal with the message in `detail`. Equivalent to
/// Solver(req.constraints).encode(...) plus the status mapping — the CLI,
/// fuzz driver and service broker all funnel through here.
SolveResponse solve(const SolveRequest& req);

/// Fingerprint of every option that changes what a solve produces
/// (pipeline, prime/cover budgets, exec.max_work) — part of the cache key,
/// so runs under different budgets never share entries. Thread count,
/// deadline and cancellation are deliberately excluded: threads never
/// change the result, and only untruncated results are ever cached *or*
/// published to coalesced followers (a truncated leader abandons instead),
/// so deadline differences cannot leak a budget-truncated result into a
/// request whose own budget was ample.
std::uint64_t solve_options_fingerprint(const SolveOptions& opts);

/// Encodes each constraint set independently — results in input order,
/// bit-identical to encoding them one by one. `opts.exec.threads` is the
/// batch fan-out width (each item solves single-threaded);
/// `opts.exec.timeout_seconds` is one shared deadline for the whole batch,
/// while `opts.exec.max_work` is a per-item budget so work truncation stays
/// deterministic. With opts.cache enabled and no external store, one cache
/// is shared by the whole batch, so canonical duplicates within the batch
/// hit (which duplicate pays the miss can depend on scheduling; the
/// results cannot).
std::vector<SolveResult> encode_batch(const std::vector<ConstraintSet>& sets,
                                      const SolveOptions& opts = {});

/// P-3 sweep: bounded_encode at every candidate code length, fanned out
/// over `threads` workers; results in input order, identical to calling
/// bounded_encode per length. `ctx` carries the optional tracer/metrics
/// (budget and stats are per-length, not taken from ctx).
std::vector<BoundedEncodeResult> bounded_encode_lengths(
    const ConstraintSet& cs, const std::vector<int>& lengths,
    const BoundedEncodeOptions& opts = {}, int threads = 1,
    const ExecContext& ctx = {});

}  // namespace encodesat
