// The unified front door of the library: one facade over the paper's whole
// flow (P-1 feasibility, P-2 exact minimum-length encoding, the Section 8
// extension pipeline), with one options surface for budgets, threads and
// statistics instead of the per-stage knobs the individual entry points
// expose.
//
//   Solver solver(parse_constraints(text));
//   if (!solver.feasible()) ...;
//   SolveOptions opts;
//   opts.timeout_seconds = 5;
//   opts.threads = 4;
//   SolveResult r = solver.encode(opts);
//   // r.status, r.encoding, r.stats.to_json(), ...
//
// encode() routes automatically: constraint sets with distance-2 or
// non-face constraints go through the binate-covering extension pipeline,
// everything else through the exact Fig. 7 pipeline. The legacy free
// functions (`check_feasible`, `exact_encode`, `encode_with_extensions`)
// are thin wrappers over this facade.
//
// Determinism: for fixed options, the encoding produced is identical for
// every `threads` value and for repeated runs — work/term/node budgets trip
// at reproducible points. Only wall-clock deadlines and cancellation make
// truncation timing (never validity) run-dependent.
#pragma once

#include <cstdint>
#include <vector>

#include "core/bounded.h"
#include "core/constraints.h"
#include "core/encoder.h"
#include "core/encoding.h"
#include "core/extensions.h"
#include "util/exec.h"

namespace encodesat {

struct SolveOptions {
  /// Which pipeline encode() runs. kAuto picks the extension pipeline when
  /// distance-2 or non-face constraints are present, the exact Fig. 7
  /// pipeline otherwise; the explicit values force one.
  enum class Pipeline { kAuto, kExact, kExtensions };
  Pipeline pipeline = Pipeline::kAuto;

  /// Wall-clock budget for the whole solve; 0 means unlimited.
  double timeout_seconds = 0;
  /// Total work budget in bitset word operations; 0 means unlimited. This
  /// is the deterministic alternative to a deadline. Stage-local budgets
  /// (prime_options.max_terms/max_work, cover node budgets) still apply.
  std::uint64_t max_work = 0;
  /// Worker threads for the parallel fan-out paths; 1 = sequential
  /// (reference path), 0 = all hardware threads.
  int threads = 1;
  /// Optional cooperative cancellation, shared across threads and solves.
  /// Borrowed; must outlive the call.
  CancelToken* cancel = nullptr;

  /// Optional span sink (obs/trace.h Tracer): every pipeline stage emits a
  /// begin/end span. Borrowed; must outlive the call.
  TraceSink* tracer = nullptr;
  /// Optional counter registry (obs/counters.h): stages report work
  /// counters whose fingerprint is thread-count invariant. Borrowed.
  MetricsRegistry* metrics = nullptr;

  PrimeGenOptions prime_options;
  UnateCoverOptions cover_options;
  /// Used only when the extension pipeline is taken.
  BinateCoverOptions extension_cover_options;
};

struct SolveResult {
  enum class Status {
    kEncoded,     ///< `encoding` satisfies every constraint
    kInfeasible,  ///< the constraints cannot all be satisfied
    kTruncated,   ///< a budget expired before an encoding was found
  };
  Status status = Status::kInfeasible;
  Encoding encoding;
  /// True when minimality was proved within every budget.
  bool minimal = false;
  /// Uniform truncation shape (see docs/API.md): `truncated` always mirrors
  /// `truncation != Truncation::kNone`. A truncated result can still be
  /// encoded — status kEncoded with `truncated` means only the optimality
  /// proof was cut short.
  bool truncated = false;
  /// First budget/limit that tripped (kNone on a clean run).
  Truncation truncation = Truncation::kNone;
  /// Initial dichotomies no valid raised dichotomy covers (infeasible
  /// exact-pipeline runs only; indexes the generated initial list).
  std::vector<std::size_t> uncovered;

  // Table-1 style counters (exact pipeline).
  std::size_t num_initial = 0;
  std::size_t num_raised = 0;
  std::size_t num_primes = 0;
  std::size_t num_valid_primes = 0;
  // Extension-pipeline counters.
  std::size_t num_candidates = 0;
  std::size_t num_aux_columns = 0;
  /// Covering-search nodes (binate nodes on the extension path).
  std::uint64_t nodes_explored = 0;

  /// Per-stage observability tree rooted at "solve"; serialize with
  /// stats.to_json(). Populated on every path, including truncated ones.
  StageStats stats;

  bool encoded() const { return status == Status::kEncoded; }
};

class Solver {
 public:
  explicit Solver(ConstraintSet cs) : cs_(std::move(cs)) {}

  const ConstraintSet& constraints() const { return cs_; }

  /// P-1: polynomial-time feasibility of the face/output constraints.
  bool feasible() const { return feasibility().feasible; }
  /// P-1 with diagnostics (the uncovered initial dichotomies).
  FeasibilityResult feasibility() const;

  /// Minimum-length encoding under all constraints, routed to the exact or
  /// extension pipeline as needed.
  SolveResult encode(const SolveOptions& opts = {}) const;

 private:
  ConstraintSet cs_;
};

/// Encodes each constraint set independently — results in input order,
/// bit-identical to encoding them one by one. `opts.threads` is the batch
/// fan-out width (each item solves single-threaded); `opts.timeout_seconds`
/// is one shared deadline for the whole batch, while `opts.max_work` is a
/// per-item budget so work truncation stays deterministic.
std::vector<SolveResult> encode_batch(const std::vector<ConstraintSet>& sets,
                                      const SolveOptions& opts = {});

/// P-3 sweep: bounded_encode at every candidate code length, fanned out
/// over `threads` workers; results in input order, identical to calling
/// bounded_encode per length. `ctx` carries the optional tracer/metrics
/// (budget and stats are per-length, not taken from ctx).
std::vector<BoundedEncodeResult> bounded_encode_lengths(
    const ConstraintSet& cs, const std::vector<int>& lengths,
    const BoundedEncodeOptions& opts = {}, int threads = 1,
    const ExecContext& ctx = {});

}  // namespace encodesat
