#include "core/generate.h"

namespace encodesat {

std::vector<InitialDichotomy> generate_initial_dichotomies(
    const ConstraintSet& cs) {
  const std::size_t n = cs.num_symbols();
  std::vector<InitialDichotomy> out;

  // Face-embedding constraints: (M; t) and (t; M) for every outside symbol.
  for (std::size_t fi = 0; fi < cs.faces().size(); ++fi) {
    const FaceConstraint& f = cs.faces()[fi];
    const Bitset members = index_bitset(n, f.members);
    Bitset excluded = members | index_bitset(n, f.dontcares);
    for (std::uint32_t t = 0; t < n; ++t) {
      if (excluded.test(t)) continue;
      Dichotomy d(n);
      d.left = members;
      d.right.set(t);
      out.push_back(InitialDichotomy{d, static_cast<int>(fi)});
      out.push_back(InitialDichotomy{d.flipped(), static_cast<int>(fi)});
    }
  }

  // Uniqueness: for each unordered pair not separated by some
  // face-generated dichotomy, add both orientations of ({a}; {b}).
  const std::size_t num_face_dichotomies = out.size();
  for (std::uint32_t a = 0; a + 1 < n; ++a) {
    for (std::uint32_t b = a + 1; b < n; ++b) {
      bool separated = false;
      for (std::size_t i = 0; i < num_face_dichotomies && !separated; ++i) {
        const Dichotomy& d = out[i].dichotomy;
        separated = (d.in_left(a) && d.in_right(b)) ||
                    (d.in_left(b) && d.in_right(a));
      }
      if (separated) continue;
      Dichotomy d(n);
      d.left.set(a);
      d.right.set(b);
      out.push_back(InitialDichotomy{d, -1});
      out.push_back(InitialDichotomy{d.flipped(), -1});
    }
  }
  return out;
}

std::vector<Dichotomy> initial_dichotomy_list(
    const std::vector<InitialDichotomy>& init) {
  std::vector<Dichotomy> out;
  out.reserve(init.size());
  for (const auto& i : init) out.push_back(i.dichotomy);
  return out;
}

}  // namespace encodesat
