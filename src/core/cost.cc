#include "core/cost.h"

#include <algorithm>

#include "core/verify.h"
#include "logic/espresso.h"
#include "logic/urp.h"

namespace encodesat {

namespace {

// Cube whose input part is exactly the given code (a minterm of the code
// space) and whose output part is `outs`.
Cube code_minterm(const Domain& dom, std::uint64_t code, const Bitset& outs) {
  Cube c(dom);
  for (int v = 0; v < dom.num_inputs(); ++v) {
    const int bit = static_cast<int>((code >> v) & 1u);
    c.bits.set(static_cast<std::size_t>(dom.pos(v, bit)));
  }
  for (int o = 0; o < dom.num_outputs(); ++o)
    if (outs.test(static_cast<std::size_t>(o)))
      c.bits.set(static_cast<std::size_t>(dom.out_pos(o)));
  return c;
}

}  // namespace

std::pair<Cover, Cover> encoded_constraint_function(const Encoding& enc,
                                                    const ConstraintSet& cs) {
  const std::size_t nf = cs.faces().size();
  const std::size_t n = cs.num_symbols();
  const Domain dom = Domain::binary(enc.bits, static_cast<int>(nf));
  Cover on(dom), dc(dom);

  // ON cover: for a satisfied constraint, seed directly with its spanned
  // face as a single cube (a legal cover element by definition — the face
  // contains only member and don't-care codes), realizing the paper's
  // "satisfied constraint = one product term" semantics; for a violated
  // constraint, seed with the member minterms and let ESPRESSO do its best.
  // DC cover: don't-care member codes and unused code points.
  for (std::size_t i = 0; i < nf; ++i) {
    const FaceConstraint& f = cs.faces()[i];
    Bitset out(nf);
    out.set(i);
    if (face_satisfied(enc, cs, f)) {
      // Supercube of the member codes, asserting only this output.
      Cube span(dom);
      bool first = true;
      for (auto m : f.members) {
        const Cube point = code_minterm(dom, enc.codes[m], out);
        span = first ? point : cube_supercube(span, point);
        first = false;
      }
      on.add(span);
    } else {
      for (auto m : f.members)
        on.add(code_minterm(dom, enc.codes[m], out));
    }
    for (auto m : f.dontcares) dc.add(code_minterm(dom, enc.codes[m], out));
  }

  // Unused code points are DC for every constraint. Enumerate the code
  // space only when small; otherwise complement the used-code cover, which
  // is exact and cheap for the code lengths encoding produces (<= ~16).
  Bitset all_outs(nf);
  all_outs.set_all();
  if (enc.bits <= 20) {
    std::vector<bool> used(std::size_t{1} << enc.bits, false);
    for (std::uint32_t s = 0; s < n; ++s) used[enc.codes[s]] = true;
    Cover used_cover(dom);
    for (std::uint32_t s = 0; s < n; ++s)
      used_cover.add(code_minterm(dom, enc.codes[s], all_outs));
    // Complement in the input space: build via URP on a single-output view
    // would also work, but direct enumeration is clearer and bounded here
    // only for tiny spaces; otherwise use the complement of used codes.
    if (enc.bits <= 12) {
      for (std::uint64_t code = 0; code < (std::uint64_t{1} << enc.bits);
           ++code)
        if (!used[code]) dc.add(code_minterm(dom, code, all_outs));
    } else {
      // Larger spaces: add the complement cover of the used minterms.
      Cover comp = complement(used_cover);
      for (const Cube& c : comp) {
        Cube d = c;
        for (int o = 0; o < dom.num_outputs(); ++o)
          d.bits.set(static_cast<std::size_t>(dom.out_pos(o)));
        dc.add(d);
      }
    }
  }
  return {std::move(on), std::move(dc)};
}

Cover unused_code_dontcares(const Encoding& enc) {
  const Domain dom = Domain::binary(enc.bits, 1);
  Bitset out(1);
  out.set(0);
  Cover used(dom);
  for (const std::uint64_t code : enc.codes)
    used.add(code_minterm(dom, code, out));
  return complement(used);
}

FaceCost evaluate_face_cost(const Encoding& enc, const ConstraintSet& cs,
                            const FaceConstraint& f, const Cover& unused_dc,
                            bool fast) {
  const Domain& dom = unused_dc.domain();
  Bitset out(1);
  out.set(0);
  FaceCost cost;
  cost.satisfied = face_satisfied(enc, cs, f);
  Cover on(dom);
  if (cost.satisfied) {
    // A satisfied constraint is one product term by construction: the
    // spanned face contains only member and don't-care codes.
    Cube span(dom);
    bool first = true;
    for (auto m : f.members) {
      const Cube point = code_minterm(dom, enc.codes[m], out);
      span = first ? point : cube_supercube(span, point);
      first = false;
    }
    on.add(span);
  } else {
    for (auto m : f.members) on.add(code_minterm(dom, enc.codes[m], out));
  }
  Cover dc = unused_dc;
  for (auto m : f.dontcares) dc.add(code_minterm(dom, enc.codes[m], out));
  EspressoOptions opts;
  opts.single_pass = fast;
  const Cover minimized = espresso(on, dc, opts);
  cost.cubes = static_cast<int>(minimized.size());
  cost.literals = minimized.input_literals();
  return cost;
}

EncodingCost evaluate_encoding_cost(const Encoding& enc,
                                    const ConstraintSet& cs, bool fast) {
  // Per-constraint minimization (the paper's definition in Section 7: a
  // satisfied constraint minimizes to a single product term, a violated one
  // to at least two; cubes and literals are summed over the constraints).
  EncodingCost cost;
  if (cs.faces().empty()) return cost;
  const Cover unused_dc = unused_code_dontcares(enc);
  for (const FaceConstraint& f : cs.faces()) {
    const FaceCost fc = evaluate_face_cost(enc, cs, f, unused_dc, fast);
    if (!fc.satisfied) ++cost.violated_faces;
    cost.cubes += fc.cubes;
    cost.literals += fc.literals;
  }
  return cost;
}

}  // namespace encodesat
