#include "core/symbols.h"

#include <stdexcept>

namespace encodesat {

std::uint32_t SymbolTable::intern(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.push_back(name);
  index_.emplace(name, id);
  return id;
}

std::uint32_t SymbolTable::at(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end())
    throw std::out_of_range("unknown symbol: " + name);
  return it->second;
}

}  // namespace encodesat
