// The result of an encoding run: one binary code per symbol.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/dichotomy.h"
#include "core/symbols.h"

namespace encodesat {

struct Encoding {
  /// Code length in bits (codes are stored in the low `bits` of each word,
  /// bit 0 = the first encoding column).
  int bits = 0;
  std::vector<std::uint64_t> codes;  ///< codes[symbol]

  std::uint32_t num_symbols() const {
    return static_cast<std::uint32_t>(codes.size());
  }

  /// MSB-first bit string of a symbol's code, e.g. "101".
  std::string code_string(std::uint32_t symbol) const;

  /// "a = 11, b = 01, ..." rendering.
  std::string to_string(const SymbolTable& symbols) const;
};

/// Derives an encoding from selected dichotomy columns: column j gives bit
/// j, left block = 0, right block = 1. Symbols unplaced by a column default
/// to the right block — valid for maximally raised columns by the argument
/// in the proof of Theorem 6.1.
Encoding derive_codes(std::uint32_t num_symbols,
                      const std::vector<Dichotomy>& columns);

}  // namespace encodesat
