// Symbol table: maps the names of symbols to be encoded (states, symbolic
// input/output values) to dense indices used by every core algorithm.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace encodesat {

class SymbolTable {
 public:
  /// Returns the index of name, inserting it if new.
  std::uint32_t intern(const std::string& name);

  /// Returns the index of name or throws std::out_of_range.
  std::uint32_t at(const std::string& name) const;

  bool contains(const std::string& name) const {
    return index_.count(name) != 0;
  }

  const std::string& name(std::uint32_t id) const { return names_[id]; }
  std::uint32_t size() const {
    return static_cast<std::uint32_t>(names_.size());
  }

  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> index_;
};

}  // namespace encodesat
