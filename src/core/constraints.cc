#include "core/constraints.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace encodesat {

Bitset index_bitset(std::size_t n, const std::vector<std::uint32_t>& ids) {
  Bitset b(n);
  for (std::uint32_t id : ids) b.set(id);
  return b;
}

std::vector<std::uint32_t> ConstraintSet::intern_all(
    const std::vector<std::string>& names) {
  std::vector<std::uint32_t> out;
  out.reserve(names.size());
  for (const auto& s : names) out.push_back(symbols_.intern(s));
  return out;
}

void ConstraintSet::add_face(const std::vector<std::string>& members,
                             const std::vector<std::string>& dontcares) {
  faces_.push_back(FaceConstraint{intern_all(members), intern_all(dontcares)});
}

void ConstraintSet::add_dominance(const std::string& dominator,
                                  const std::string& dominated) {
  dominances_.push_back(
      DominanceConstraint{symbols_.intern(dominator), symbols_.intern(dominated)});
}

void ConstraintSet::add_disjunctive(const std::string& parent,
                                    const std::vector<std::string>& children) {
  disjunctives_.push_back(
      DisjunctiveConstraint{symbols_.intern(parent), intern_all(children)});
}

void ConstraintSet::add_extended_disjunctive(
    const std::string& parent,
    const std::vector<std::vector<std::string>>& conjunctions) {
  ExtendedDisjunctiveConstraint c;
  c.parent = symbols_.intern(parent);
  for (const auto& conj : conjunctions) c.conjunctions.push_back(intern_all(conj));
  extended_.push_back(std::move(c));
}

void ConstraintSet::add_distance2(const std::string& a, const std::string& b) {
  distance2s_.push_back(
      Distance2Constraint{symbols_.intern(a), symbols_.intern(b)});
}

void ConstraintSet::add_nonface(const std::vector<std::string>& members) {
  nonfaces_.push_back(NonFaceConstraint{intern_all(members)});
}

void ConstraintSet::add_face_ids(std::vector<std::uint32_t> members,
                                 std::vector<std::uint32_t> dontcares) {
  faces_.push_back(FaceConstraint{std::move(members), std::move(dontcares)});
}

void ConstraintSet::add_dominance_ids(std::uint32_t dominator,
                                      std::uint32_t dominated) {
  dominances_.push_back(DominanceConstraint{dominator, dominated});
}

void ConstraintSet::add_disjunctive_ids(std::uint32_t parent,
                                        std::vector<std::uint32_t> children) {
  disjunctives_.push_back(DisjunctiveConstraint{parent, std::move(children)});
}

std::string ConstraintSet::to_string() const {
  std::ostringstream out;
  auto emit_names = [&](const std::vector<std::uint32_t>& ids) {
    for (std::uint32_t id : ids) out << ' ' << symbols_.name(id);
  };
  // Symbols no constraint mentions still shape the problem (they need
  // distinct codes and can intrude into faces), so declare them explicitly
  // to keep write -> parse a faithful round trip.
  std::vector<bool> referenced(symbols_.size(), false);
  auto mark = [&](const std::vector<std::uint32_t>& ids) {
    for (std::uint32_t id : ids) referenced[id] = true;
  };
  for (const auto& f : faces_) {
    mark(f.members);
    mark(f.dontcares);
  }
  for (const auto& d : dominances_) {
    referenced[d.dominator] = true;
    referenced[d.dominated] = true;
  }
  for (const auto& d : disjunctives_) {
    referenced[d.parent] = true;
    mark(d.children);
  }
  for (const auto& e : extended_) {
    referenced[e.parent] = true;
    for (const auto& conj : e.conjunctions) mark(conj);
  }
  for (const auto& d : distance2s_) {
    referenced[d.a] = true;
    referenced[d.b] = true;
  }
  for (const auto& nf : nonfaces_) mark(nf.members);
  for (std::uint32_t id = 0; id < symbols_.size(); ++id)
    if (!referenced[id]) out << "symbol " << symbols_.name(id) << '\n';
  for (const auto& f : faces_) {
    out << "face";
    emit_names(f.members);
    if (!f.dontcares.empty()) {
      out << " [";
      for (std::size_t i = 0; i < f.dontcares.size(); ++i)
        out << (i ? " " : "") << symbols_.name(f.dontcares[i]);
      out << " ]";
    }
    out << '\n';
  }
  for (const auto& d : dominances_)
    out << "dominance " << symbols_.name(d.dominator) << ' '
        << symbols_.name(d.dominated) << '\n';
  for (const auto& d : disjunctives_) {
    out << "disjunctive " << symbols_.name(d.parent);
    emit_names(d.children);
    out << '\n';
  }
  for (const auto& e : extended_) {
    out << "extdisjunctive " << symbols_.name(e.parent) << " :";
    for (std::size_t i = 0; i < e.conjunctions.size(); ++i) {
      if (i) out << " |";
      emit_names(e.conjunctions[i]);
    }
    out << '\n';
  }
  for (const auto& d : distance2s_)
    out << "distance2 " << symbols_.name(d.a) << ' ' << symbols_.name(d.b)
        << '\n';
  for (const auto& nf : nonfaces_) {
    out << "nonface";
    emit_names(nf.members);
    out << '\n';
  }
  return out.str();
}

std::string ParseError::to_string() const {
  if (column <= 0) return "line " + std::to_string(line) + ": " + message;
  return "line " + std::to_string(line) + ", col " + std::to_string(column) +
         ": " + message;
}

namespace {

// Internal control flow of the parser; both public overloads translate it
// at their boundary (into std::runtime_error or a ParseError out-param).
struct ParseFailure {
  ParseError err;
};

[[noreturn]] void parse_error(int line_no, int column,
                               const std::string& msg) {
  throw ParseFailure{ParseError{line_no, column, msg}};
}

ConstraintSet parse_impl(const std::string& text) {
  ConstraintSet cs;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  // Column of `token` in the raw input line (1-based); with no token, the
  // column where the statement begins. Tokens never contain whitespace, so
  // the first occurrence is the offending one except for repeated names —
  // close enough for a diagnostic.
  auto col_of = [&](const std::string& token) -> int {
    const std::size_t pos = token.empty() ? raw.find_first_not_of(" \t")
                                          : raw.find(token);
    return pos == std::string::npos ? 1 : static_cast<int>(pos) + 1;
  };
  auto fail = [&](const std::string& msg, const std::string& token = "") {
    parse_error(line_no, col_of(token), msg);
  };
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line{trim(raw)};
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = std::string{trim(line.substr(0, hash))};
    if (line.empty()) continue;

    auto tok = split_ws(line);
    const std::string kind = tok[0];
    const std::vector<std::string> args(tok.begin() + 1, tok.end());

    if (kind == "symbol") {
      if (args.size() != 1) fail("symbol takes one name");
      cs.symbols().intern(args[0]);
    } else if (kind == "face") {
      std::vector<std::string> members, dontcares;
      bool in_dc = false;
      for (std::string a : args) {
        // Brackets may be glued to names: "[c" or "d]".
        bool open = false, close = false;
        if (!a.empty() && a.front() == '[') {
          open = true;
          a.erase(a.begin());
        }
        if (!a.empty() && a.back() == ']') {
          close = true;
          a.pop_back();
        }
        if (open) {
          if (in_dc) fail("nested '['");
          in_dc = true;
        }
        if (!a.empty()) (in_dc ? dontcares : members).push_back(a);
        if (close) {
          if (!in_dc) fail("']' without '['");
          in_dc = false;
        }
      }
      if (in_dc) fail("unterminated '['");
      if (members.size() < 2)
        fail("face needs at least two (non-don't-care) members");
      // A symbol listed twice (as member, don't-care, or both) makes the
      // face semantics ambiguous downstream (span vs intruder checks).
      std::vector<std::string> all(members);
      all.insert(all.end(), dontcares.begin(), dontcares.end());
      std::sort(all.begin(), all.end());
      if (std::adjacent_find(all.begin(), all.end()) != all.end()) {
        const std::string& dup = *std::adjacent_find(all.begin(), all.end());
        fail("duplicate symbol '" + dup + "' in face constraint", dup);
      }
      cs.add_face(members, dontcares);
    } else if (kind == "dominance") {
      if (args.size() != 2) fail("dominance takes two names");
      if (args[0] == args[1]) fail("dominance of a symbol over itself");
      cs.add_dominance(args[0], args[1]);
    } else if (kind == "disjunctive") {
      if (args.size() < 3)
        fail("disjunctive takes a parent and >= 2 children");
      for (std::size_t i = 1; i < args.size(); ++i)
        if (args[i] == args[0])
          fail("disjunctive parent '" + args[0] + "' in its own RHS", args[0]);
      cs.add_disjunctive(args[0], {args.begin() + 1, args.end()});
    } else if (kind == "extdisjunctive") {
      if (args.size() < 3 || args[1] != ":")
        fail("expected: extdisjunctive parent : c1 c2 | c3 c4");
      std::vector<std::vector<std::string>> conjs(1);
      for (std::size_t i = 2; i < args.size(); ++i) {
        if (args[i] == "|")
          conjs.emplace_back();
        else
          conjs.back().push_back(args[i]);
      }
      for (const auto& c : conjs)
        if (c.empty()) fail("empty conjunction");
      cs.add_extended_disjunctive(args[0], conjs);
    } else if (kind == "distance2") {
      if (args.size() != 2) fail("distance2 takes two names");
      cs.add_distance2(args[0], args[1]);
    } else if (kind == "nonface") {
      if (args.size() < 2) fail("nonface needs >= 2 members");
      cs.add_nonface(args);
    } else {
      fail("unknown constraint kind '" + kind + "'", kind);
    }
  }
  return cs;
}

}  // namespace

ConstraintSet parse_constraints(const std::string& text) {
  try {
    return parse_impl(text);
  } catch (const ParseFailure& f) {
    throw std::runtime_error("constraint parse error at " +
                             f.err.to_string());
  }
}

std::optional<ConstraintSet> parse_constraints(const std::string& text,
                                               ParseError* error) {
  try {
    return parse_impl(text);
  } catch (const ParseFailure& f) {
    if (error) *error = f.err;
    return std::nullopt;
  }
}

}  // namespace encodesat
