// Constraint-set normalization: removes redundancy a symbolic minimizer's
// output typically carries, without changing the set of satisfying
// encodings. Useful before feeding large generated sets to the encoders
// (fewer constraints = fewer initial dichotomies = smaller prime spaces).
#pragma once

#include "core/constraints.h"

namespace encodesat {

struct NormalizeStats {
  std::size_t duplicate_faces = 0;
  std::size_t trivial_faces = 0;       ///< < 2 members, or members+dc = all
  std::size_t duplicate_dominances = 0;
  std::size_t transitive_dominances = 0;  ///< implied by a chain of others
  std::size_t duplicate_disjunctives = 0;
};

/// Normalizes in place:
///  - deduplicates face constraints (same member and don't-care sets) and
///    drops trivial ones (fewer than two members, or covering every symbol
///    so no dichotomy is ever generated);
///  - deduplicates dominance constraints and removes those implied by
///    transitivity through other dominances (a>b, b>c make a>c redundant);
///  - deduplicates disjunctive constraints (same parent and child set).
/// Extended disjunctive, distance-2 and non-face constraints are left
/// untouched. Returns what was removed.
NormalizeStats normalize_constraints(ConstraintSet& cs);

}  // namespace encodesat
