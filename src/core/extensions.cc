#include "core/extensions.h"

#include <algorithm>
#include <cassert>

#include "core/generate.h"
#include "core/output_rules.h"
#include "obs/counters.h"

namespace encodesat {

namespace {

// Totalized column: bit per symbol, left block -> 0, everything else -> 1.
std::uint64_t totalize(const Dichotomy& d, std::uint32_t n) {
  std::uint64_t pattern = 0;
  for (std::uint32_t s = 0; s < n; ++s)
    if (!d.in_left(s)) pattern |= std::uint64_t{1} << s;
  return pattern;
}

bool pattern_bit(std::uint64_t pattern, std::uint32_t s) {
  return (pattern >> s) & 1u;
}

// Exact output-constraint check on a concrete (total) column.
bool pattern_valid(std::uint64_t pattern, const ConstraintSet& cs) {
  for (const auto& d : cs.dominances())
    if (!pattern_bit(pattern, d.dominator) && pattern_bit(pattern, d.dominated))
      return false;
  for (const auto& d : cs.disjunctives()) {
    bool orv = false;
    for (auto c : d.children) orv = orv || pattern_bit(pattern, c);
    if (orv != pattern_bit(pattern, d.parent)) return false;
  }
  for (const auto& e : cs.extended_disjunctives()) {
    if (!pattern_bit(pattern, e.parent)) continue;
    bool some = false;
    for (const auto& conj : e.conjunctions) {
      bool all = true;
      for (auto c : conj)
        if (!pattern_bit(pattern, c)) {
          all = false;
          break;
        }
      if (all) {
        some = true;
        break;
      }
    }
    if (!some) return false;
  }
  return true;
}

// True if the column separates the dichotomy's blocks (all-left one bit,
// all-right the other) — exact coverage on totalized columns.
bool pattern_covers(std::uint64_t pattern, const Dichotomy& d) {
  bool left0 = true, left1 = true, right0 = true, right1 = true;
  d.left.for_each([&](std::size_t s) {
    if (pattern_bit(pattern, static_cast<std::uint32_t>(s)))
      left0 = false;
    else
      left1 = false;
  });
  d.right.for_each([&](std::size_t s) {
    if (pattern_bit(pattern, static_cast<std::uint32_t>(s)))
      right0 = false;
    else
      right1 = false;
  });
  return (left0 && right1) || (left1 && right0);
}

// True if in this column the face members all share a bit and t has the
// opposite bit (t is cut away from the face by this coordinate).
bool pattern_separates_from_face(std::uint64_t pattern,
                                 const std::vector<std::uint32_t>& members,
                                 std::uint32_t t) {
  bool all0 = true, all1 = true;
  for (auto m : members) {
    if (pattern_bit(pattern, m))
      all0 = false;
    else
      all1 = false;
  }
  if (all0) return pattern_bit(pattern, t);
  if (all1) return !pattern_bit(pattern, t);
  return false;
}

}  // namespace

ExtensionEncodeResult encode_with_extensions(const ConstraintSet& cs,
                                             const ExtensionEncodeOptions& opts,
                                             const ExecContext& ctx) {
  StageScope stage(ctx, "extensions");
  ExtensionEncodeResult res;
  const std::uint32_t n = cs.num_symbols();
  if (n > 64) {
    res.status = ExtensionEncodeResult::Status::kPrimeLimit;
    return res;
  }

  // Candidate dichotomies: valid maximally raised initial set + splitter
  // enrichments for the distance-2 pairs + intruder enrichments for the
  // non-face constraints + the primes of all of those.
  // Distance-2 needs two *distinct* columns separating a pair; the face and
  // uniqueness dichotomies alone may raise into a single separating shape,
  // so for each constrained pair we seed separators with every third symbol
  // placed on each side (tests/oracle_extensions_test.cc bounds the
  // remaining incompleteness of this candidate pool).
  const auto initial = generate_initial_dichotomies(cs);
  std::vector<Dichotomy> seeds;
  for (const auto& i : initial) seeds.push_back(i.dichotomy);
  for (const auto& d2 : cs.distance2s()) {
    for (std::uint32_t t = 0; t < n; ++t) {
      if (t == d2.a || t == d2.b) continue;
      seeds.push_back(Dichotomy::make(n, {d2.a, t}, {d2.b}));
      seeds.push_back(Dichotomy::make(n, {d2.a}, {d2.b, t}));
      seeds.push_back(Dichotomy::make(n, {d2.b, t}, {d2.a}));
      seeds.push_back(Dichotomy::make(n, {d2.b}, {d2.a, t}));
    }
    seeds.push_back(Dichotomy::make(n, {d2.a}, {d2.b}));
    seeds.push_back(Dichotomy::make(n, {d2.b}, {d2.a}));
  }
  // Non-face needs an intruder t kept *inside* the face of M: every
  // selected column must keep t on the same side as at least one member.
  // Raising only adds forced symbols and totalize() defaults the rest to
  // the 1-side, so the uniqueness column ({m'}; {m}) that an intruder
  // needs in its "t sticks with m" variant ({t, m}; {m'}) is never formed
  // from the initial set alone — seed those variants explicitly.
  for (const auto& nf : cs.nonfaces()) {
    const Bitset inside = index_bitset(n, nf.members);
    for (std::uint32_t t = 0; t < n; ++t) {
      if (inside.test(t)) continue;
      for (std::uint32_t m : nf.members) {
        for (std::uint32_t m2 : nf.members) {
          if (m2 == m) continue;
          seeds.push_back(Dichotomy::make(n, {t, m}, {m2}));
          seeds.push_back(Dichotomy::make(n, {m2}, {t, m}));
        }
      }
    }
  }

  std::vector<Dichotomy> d;
  for (const auto& s : seeds) {
    if (!dichotomy_valid(s, cs)) continue;
    Dichotomy raised = s;
    if (!raise_dichotomy(raised, cs)) continue;
    if (!dichotomy_valid(raised, cs)) continue;
    d.push_back(std::move(raised));
  }
  dedupe_dichotomies(d);

  std::vector<Dichotomy> candidates = d;
  if (!d.empty()) {
    PrimeGenResult pg =
        generate_prime_dichotomies(d, opts.prime_options, stage.ctx());
    if (pg.truncated) {
      res.status = ExtensionEncodeResult::Status::kPrimeLimit;
      res.truncated = true;
      res.truncation = pg.truncation;
      stage.set_truncation(pg.truncation);
      return res;
    }
    for (Dichotomy& p : pg.primes) {
      if (!dichotomy_valid(p, cs)) continue;
      if (!raise_dichotomy(p, cs)) continue;
      if (!dichotomy_valid(p, cs)) continue;
      candidates.push_back(std::move(p));
    }
    dedupe_dichotomies(candidates);
  }

  // Totalize and keep only patterns that are exactly valid as columns.
  std::vector<std::uint64_t> patterns;
  for (const Dichotomy& c : candidates) {
    const std::uint64_t p = totalize(c, n);
    if (pattern_valid(p, cs)) patterns.push_back(p);
  }
  std::sort(patterns.begin(), patterns.end());
  patterns.erase(std::unique(patterns.begin(), patterns.end()),
                 patterns.end());
  res.num_candidates = patterns.size();

  // Auxiliary columns: one per (non-face constraint, outside symbol) pair,
  // meaning "this symbol is allowed to be separated from the face".
  std::vector<std::pair<std::size_t, std::uint32_t>> aux;  // (nonface, t)
  for (std::size_t i = 0; i < cs.nonfaces().size(); ++i) {
    const Bitset inside = index_bitset(n, cs.nonfaces()[i].members);
    for (std::uint32_t t = 0; t < n; ++t)
      if (!inside.test(t)) aux.emplace_back(i, t);
  }
  res.num_aux_columns = aux.size();
  metric_add(stage.ctx(), "extend.candidates", res.num_candidates);
  metric_add(stage.ctx(), "extend.aux_columns", res.num_aux_columns);

  BinateCoverProblem problem;
  problem.num_columns = patterns.size() + aux.size();
  problem.weights.assign(problem.num_columns, 0);
  for (std::size_t c = 0; c < patterns.size(); ++c) problem.weights[c] = 1;

  // Unate rows: every initial dichotomy must be covered by a column.
  for (const auto& i : initial) {
    BinateRow row{Bitset(problem.num_columns), Bitset(problem.num_columns)};
    for (std::size_t c = 0; c < patterns.size(); ++c)
      if (pattern_covers(patterns[c], i.dichotomy)) row.pos.set(c);
    problem.rows.push_back(std::move(row));
  }

  // Distance-2 rows: at least two selected columns must split the pair,
  // encoded as "for each splitting column p, some other splitting column is
  // also selected".
  for (const auto& d2 : cs.distance2s()) {
    std::vector<std::size_t> splitting;
    for (std::size_t c = 0; c < patterns.size(); ++c)
      if (pattern_bit(patterns[c], d2.a) != pattern_bit(patterns[c], d2.b))
        splitting.push_back(c);
    {
      BinateRow row{Bitset(problem.num_columns), Bitset(problem.num_columns)};
      for (std::size_t c : splitting) row.pos.set(c);
      problem.rows.push_back(std::move(row));
    }
    for (std::size_t p : splitting) {
      BinateRow row{Bitset(problem.num_columns), Bitset(problem.num_columns)};
      for (std::size_t c : splitting)
        if (c != p) row.pos.set(c);
      problem.rows.push_back(std::move(row));
    }
  }

  // Non-face rows: u_(i,t) unselected forbids every column separating t
  // from face i; at least one u_(i,t) per non-face must be unselected.
  for (std::size_t a = 0; a < aux.size(); ++a) {
    const auto& [i, t] = aux[a];
    for (std::size_t c = 0; c < patterns.size(); ++c) {
      if (!pattern_separates_from_face(patterns[c], cs.nonfaces()[i].members,
                                       t))
        continue;
      BinateRow row{Bitset(problem.num_columns), Bitset(problem.num_columns)};
      row.pos.set(patterns.size() + a);  // u
      row.neg.set(c);                    // or column unselected
      problem.rows.push_back(std::move(row));
    }
  }
  for (std::size_t i = 0; i < cs.nonfaces().size(); ++i) {
    BinateRow row{Bitset(problem.num_columns), Bitset(problem.num_columns)};
    bool any = false;
    for (std::size_t a = 0; a < aux.size(); ++a)
      if (aux[a].first == i) {
        row.neg.set(patterns.size() + a);
        any = true;
      }
    if (!any) {
      // No symbol outside the face exists: the non-face constraint is
      // unsatisfiable (nobody can intrude).
      res.status = ExtensionEncodeResult::Status::kInfeasible;
      return res;
    }
    problem.rows.push_back(std::move(row));
  }

  if (!stage.ctx().poll()) {
    res.status = ExtensionEncodeResult::Status::kPrimeLimit;
    res.truncated = true;
    res.truncation = stage.ctx().reason();
    stage.set_truncation(res.truncation);
    return res;
  }
  const BinateCoverSolution sol =
      solve_binate_cover(problem, opts.cover_options, stage.ctx());
  res.nodes_explored = sol.nodes_explored;
  stage.add_items(sol.nodes_explored);
  if (!sol.feasible) {
    // Only a completed search proves infeasibility; a truncated miss is
    // "unknown — the budget ran out first" (solve_binate_cover's honesty
    // contract, docs/API.md).
    res.status = sol.truncated ? ExtensionEncodeResult::Status::kCoverLimit
                               : ExtensionEncodeResult::Status::kInfeasible;
    res.truncated = sol.truncated;
    res.truncation = sol.truncation;
    stage.set_truncation(res.truncation);
    return res;
  }
  assert(sol.cost >= 0);
  res.status = ExtensionEncodeResult::Status::kEncoded;
  res.minimal = sol.optimal;
  if (!sol.optimal) {
    res.truncated = true;
    res.truncation = sol.truncation;
    stage.set_truncation(res.truncation);
  }

  std::vector<std::uint64_t> chosen;
  for (std::size_t c : sol.columns)
    if (c < patterns.size()) chosen.push_back(patterns[c]);
  res.encoding.bits = static_cast<int>(chosen.size());
  res.encoding.codes.assign(n, 0);
  for (std::size_t j = 0; j < chosen.size(); ++j)
    for (std::uint32_t s = 0; s < n; ++s)
      if (pattern_bit(chosen[j], s))
        res.encoding.codes[s] |= std::uint64_t{1} << j;
  return res;
}

}  // namespace encodesat
