// Section 8 extensions: distance-2 constraints (testability, §8.2) and
// non-face constraints (§8.3) on top of the dichotomy framework, solved as
// a binate covering problem.
//
// The candidate columns are the valid maximally raised prime
// encoding-dichotomies (plus the raised initial set as a safety net), each
// *totalized* into a concrete encoding column by the default-to-right rule
// of Theorem 6.1. Totalizing makes every row condition exact on the final
// codes: coverage of an initial dichotomy, bit-difference for distance-2
// clauses, and face separation for the non-face auxiliary clauses. The
// solution is therefore guaranteed valid; it is minimum-length over this
// candidate column set (the paper, likewise, selects among the generated
// primes).
#pragma once

#include "core/constraints.h"
#include "core/encoder.h"
#include "core/encoding.h"
#include "covering/binate.h"

namespace encodesat {

struct ExtensionEncodeOptions {
  PrimeGenOptions prime_options;
  BinateCoverOptions cover_options;
};

struct ExtensionEncodeResult {
  /// kInfeasible is a *certificate* (the cover search ran to completion and
  /// proved no encoding exists). A budget that expires during prime
  /// generation maps to kPrimeLimit; one that expires during the binate
  /// cover search maps to kCoverLimit — never to kInfeasible.
  enum class Status { kEncoded, kInfeasible, kPrimeLimit, kCoverLimit };
  Status status = Status::kInfeasible;
  Encoding encoding;
  bool minimal = false;
  /// Uniform truncation shape (see docs/API.md): `truncated` always mirrors
  /// `truncation != Truncation::kNone`.
  bool truncated = false;
  /// Why the run truncated or lost its optimality proof (kNone otherwise).
  Truncation truncation = Truncation::kNone;
  std::size_t num_candidates = 0;
  std::size_t num_aux_columns = 0;
  std::uint64_t nodes_explored = 0;
};

/// Minimum-length encoding satisfying face, dominance, disjunctive,
/// extended disjunctive, distance-2 and non-face constraints. Pass
/// ExecContext{} when no budget/stats plumbing is needed, or use the Solver
/// facade (core/solver.h) with Pipeline::kExtensions.
ExtensionEncodeResult encode_with_extensions(const ConstraintSet& cs,
                                             const ExtensionEncodeOptions& opts,
                                             const ExecContext& ctx);

}  // namespace encodesat
