// Prime encoding-dichotomy generation (Section 5.1, Figure 2).
//
// Each prime encoding-dichotomy is a maximal compatible of the given
// dichotomies. Following Marcus (1964), the pairwise incompatibilities form
// a product of two-literal sums (a 2-CNF); rewriting it as an irredundant
// sum-of-products yields the minimal "deletion sets", whose complements are
// the maximal compatibles. The paper's contribution is the `cs`/`ps`
// recursion that performs the rewrite with a linear number of splits: the
// product of all sums containing the splitting variable x simplifies to
// (x + Π neighbours(x)); that two-term expression is multiplied into the
// recursive result for the remaining sums and minimized by single-cube
// containment.
#pragma once

#include <cstddef>
#include <vector>

#include "core/dichotomy.h"
#include "util/bitset.h"
#include "util/exec.h"

namespace encodesat {

struct PrimeGenOptions {
  /// Abort when the intermediate SOP exceeds this many terms (the paper's
  /// Table 1 cuts off at 50000 primes for `planet` and `vmecont`).
  std::size_t max_terms = 200000;
  /// Work budget in bitset word operations (upper bound) across all folds; an SOP
  /// that hovers just below max_terms for thousands of folds is as hopeless
  /// as one that exceeds it, and this bound catches that deterministically.
  std::uint64_t max_work = 500'000'000'000;
};

/// Metrics of one cs/ps fold run, surfaced for the benchmark regression
/// harness (bench_primes emits them into BENCH_primes.json).
struct SopFoldStats {
  /// Word-operation units charged by the fold (same scale as Budget work).
  std::uint64_t work = 0;
  /// High-water mark of the term arena backing the fold, in bytes.
  std::size_t peak_arena_bytes = 0;
  /// Terms in the returned SOP (0 when truncated).
  std::size_t num_terms = 0;
  /// Variable splits folded back (one per peeled variable with edges).
  std::size_t folds = 0;
  /// Fresh arena slot creations (bump appends) across the fold.
  std::uint64_t arena_allocs = 0;
  /// Arena allocations served from the free list (no heap growth).
  std::uint64_t arena_reuses = 0;
  /// Candidate containment pairs rejected by the one-word folded signature
  /// before touching the full terms — the subset-prune hit count.
  std::uint64_t prune_sig_hits = 0;
};

struct PrimeGenResult {
  /// Maximal-compatible unions, deduplicated; empty if truncated.
  std::vector<Dichotomy> primes;
  /// Uniform truncation shape (see docs/API.md): `truncated` mirrors
  /// `truncation != Truncation::kNone`. Term/work limits of PrimeGenOptions
  /// report kTermLimit/kWorkBudget; a shared Budget adds deadline and
  /// cancellation reasons.
  bool truncated = false;
  Truncation truncation = Truncation::kNone;
  /// Number of terms in the final SOP (= number of maximal compatibles).
  std::size_t num_terms = 0;
  /// Fold-level metrics of the cs/ps rewrite.
  SopFoldStats fold;
};

/// Generates all prime encoding-dichotomies of `ds` (which must all share
/// one universe and be well formed). Exact duplicates in `ds` are tolerated.
/// The context supplies the shared budget (polled each fold), a stats node
/// (a "prime_generation" child is recorded) and the thread count for the
/// incompatibility-matrix construction.
PrimeGenResult generate_prime_dichotomies(const std::vector<Dichotomy>& ds,
                                          const PrimeGenOptions& opts = {},
                                          const ExecContext& ctx = {});

/// Exposed for tests and the Figure 3 bench: converts a 2-CNF given as
/// adjacency sets (edge {i,j} iff incompat[i].test(j)) into the minimal SOP
/// term list via the cs/ps recursion. Terms are Bitsets over num_vars.
/// `ctx.budget` is charged with the fold work and polled once per fold;
/// `reason` (optional) reports why the run truncated; `fold_stats`
/// (optional) receives the fold metrics of SopFoldStats. The fold itself
/// runs on a TermArena (util/term_arena.h) — the Bitset vectors at this
/// boundary are conversion shims, not the working representation.
std::vector<Bitset> two_cnf_to_minimal_sop(const std::vector<Bitset>& incompat,
                                           std::size_t max_terms,
                                           bool* truncated,
                                           std::uint64_t max_work = ~0ull,
                                           const ExecContext& ctx = {},
                                           Truncation* reason = nullptr,
                                           SopFoldStats* fold_stats = nullptr);

}  // namespace encodesat
