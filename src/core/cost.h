// Cost functions for bounded-length encoding (Section 7, Figure 9).
//
// For each face constraint I and a given encoding, define the logic
// function F_I over the code space whose ON-set is the member codes,
// OFF-set the codes of symbols outside the constraint, and DC-set the
// unused codes (plus the codes of encoding don't-care symbols). A satisfied
// constraint minimizes to a single product term; the total number of
// product terms / literals of the multi-output minimized cover measures how
// well a fixed-length encoding realizes the constraints.
#pragma once

#include "core/constraints.h"
#include "core/encoding.h"
#include "logic/cover.h"

namespace encodesat {

enum class CostKind {
  kViolatedFaces,  ///< number of face constraints not satisfied
  kCubes,          ///< product terms of the minimized encoded constraints
  kLiterals,       ///< input literals of the minimized encoded constraints
};

struct EncodingCost {
  int violated_faces = 0;
  int cubes = 0;
  int literals = 0;

  int by_kind(CostKind k) const {
    switch (k) {
      case CostKind::kViolatedFaces: return violated_faces;
      case CostKind::kCubes: return cubes;
      case CostKind::kLiterals: return literals;
    }
    return 0;
  }
};

/// Builds the multi-output constraint function of Fig. 9 (one output per
/// face constraint) as ON/DC covers over Domain::binary(enc.bits, #faces).
/// Returns {on, dc}. This is the paper's "single logic minimization of a
/// multi-output Boolean function" view; the cost functions below use the
/// exact per-constraint definition instead.
std::pair<Cover, Cover> encoded_constraint_function(const Encoding& enc,
                                                    const ConstraintSet& cs);

/// Don't-care cover of the unused code points, over the single-output
/// Domain::binary(enc.bits, 1) — shared by every per-face evaluation.
Cover unused_code_dontcares(const Encoding& enc);

/// Cost of one face constraint: satisfied => exactly one product term by
/// construction; violated => the ESPRESSO-minimized member cover.
struct FaceCost {
  bool satisfied = false;
  int cubes = 0;
  int literals = 0;
};
FaceCost evaluate_face_cost(const Encoding& enc, const ConstraintSet& cs,
                            const FaceConstraint& f, const Cover& unused_dc,
                            bool fast);

/// Evaluates all three cost functions (sums of per-face costs). `fast`
/// uses the single-pass ESPRESSO mode (for inner loops of the heuristic
/// encoder and the annealer).
EncodingCost evaluate_encoding_cost(const Encoding& enc,
                                    const ConstraintSet& cs,
                                    bool fast = false);

}  // namespace encodesat
