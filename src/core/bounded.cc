#include "core/bounded.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "core/dichotomy.h"
#include "core/verify.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace encodesat {

int minimum_code_length(std::uint32_t n) {
  if (n <= 1) return 1;
  int bits = 0;
  std::uint32_t cap = 1;
  while (cap < n) {
    cap <<= 1;
    ++bits;
  }
  return bits;
}

namespace {

// ---------------------------------------------------------------------------
// Restricted cost evaluation
// ---------------------------------------------------------------------------

// Builds the constraint set restricted to subset P (paper, Section 7.1
// "Selection of best restricted dichotomies": the global constraints are
// restricted to the subset's symbols). Faces keep their members and
// don't-cares intersected with P; faces with fewer than two members left
// impose nothing beyond uniqueness and are dropped.
ConstraintSet restrict_constraints(const ConstraintSet& cs,
                                   const std::vector<std::uint32_t>& subset) {
  std::vector<std::uint32_t> to_local(cs.num_symbols(),
                                      std::numeric_limits<std::uint32_t>::max());
  ConstraintSet out;
  for (std::size_t i = 0; i < subset.size(); ++i) {
    to_local[subset[i]] = static_cast<std::uint32_t>(i);
    out.symbols().intern(cs.symbols().name(subset[i]));
  }
  for (const FaceConstraint& f : cs.faces()) {
    std::vector<std::uint32_t> members, dontcares;
    for (auto m : f.members)
      if (to_local[m] != std::numeric_limits<std::uint32_t>::max())
        members.push_back(to_local[m]);
    for (auto d : f.dontcares)
      if (to_local[d] != std::numeric_limits<std::uint32_t>::max())
        dontcares.push_back(to_local[d]);
    if (members.size() >= 2) out.add_face_ids(std::move(members), std::move(dontcares));
  }
  return out;
}

// A selection of dichotomy columns for subset P, evaluated as codes of the
// restricted problem. Returns nullopt-like flag via `unique`: false when
// two subset symbols collide.
Encoding selection_codes(const std::vector<std::uint32_t>& subset,
                         const std::vector<Dichotomy>& selection,
                         bool* unique) {
  Encoding enc;
  enc.bits = static_cast<int>(selection.size());
  enc.codes.assign(subset.size(), 0);
  for (std::size_t j = 0; j < selection.size(); ++j)
    for (std::size_t i = 0; i < subset.size(); ++i)
      if (selection[j].in_right(subset[i]))
        enc.codes[i] |= std::uint64_t{1} << j;
  if (unique) {
    std::vector<std::uint64_t> sorted = enc.codes;
    std::sort(sorted.begin(), sorted.end());
    *unique =
        std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
  }
  return enc;
}

struct Evaluator {
  const ConstraintSet& cs;
  const BoundedEncodeOptions& opts;
  ExecContext ctx;
  int evals = 0;

  // Cost of `selection` for `subset` under the restricted constraints
  // `restricted` (pre-computed by the caller). Non-unique codes are worse
  // than any cost.
  long score(const std::vector<std::uint32_t>& subset,
             const ConstraintSet& restricted,
             const std::vector<Dichotomy>& selection) {
    ++evals;
    ctx.charge(1);
    if ((evals & 63) == 0) ctx.poll();
    bool unique = false;
    const Encoding enc = selection_codes(subset, selection, &unique);
    if (!unique) return std::numeric_limits<long>::max();
    if (opts.cost == CostKind::kViolatedFaces)
      return static_cast<long>(restricted.faces().size()) -
             count_satisfied_faces(enc, restricted);
    const EncodingCost c =
        evaluate_encoding_cost(enc, restricted, opts.fast_cost);
    return c.by_kind(opts.cost);
  }
};

// ---------------------------------------------------------------------------
// Splitting (Kernighan-Lin style local search)
// ---------------------------------------------------------------------------

// Cut cost of a bipartition: the number of face constraints (restricted to
// the subset) whose members span both sides — exactly the constraints the
// partition dichotomy itself violates.
int partition_cut(const ConstraintSet& cs,
                  const std::vector<std::uint32_t>& subset,
                  const std::vector<bool>& side) {
  std::vector<int> side_of(cs.num_symbols(), -1);
  for (std::size_t i = 0; i < subset.size(); ++i)
    side_of[subset[i]] = side[i] ? 1 : 0;
  int cut = 0;
  for (const FaceConstraint& f : cs.faces()) {
    bool s0 = false, s1 = false;
    int present = 0;
    for (auto m : f.members) {
      if (side_of[m] < 0) continue;
      ++present;
      (side_of[m] == 1 ? s1 : s0) = true;
    }
    if (present >= 2 && s0 && s1) ++cut;
  }
  return cut;
}

// Splits `subset` into two non-empty parts, each of size <= part_cap,
// minimizing the cut by steepest single-move descent from a seeded split.
std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>>
split_subset(const ConstraintSet& cs, const std::vector<std::uint32_t>& subset,
             std::size_t part_cap, const BoundedEncodeOptions& opts,
             std::uint64_t salt) {
  const std::size_t k = subset.size();
  assert(k >= 2);

  // Multi-start local search: each start seeds a balanced random split
  // honoring the cap (legal side sizes are [max(1, k - cap), min(cap,
  // k - 1)]) and descends by single-symbol moves.
  std::vector<bool> best_side(k, false);
  int best_overall = -1;
  const int starts = 3;
  for (int start = 0; start < starts; ++start) {
    Rng rng(opts.seed * 0x9e3779b97f4a7c15ull + salt * 131 +
            static_cast<std::uint64_t>(start));
    std::vector<bool> side(k, false);
    {
      std::vector<std::size_t> order(k);
      for (std::size_t i = 0; i < k; ++i) order[i] = i;
      for (std::size_t i = k; i > 1; --i)
        std::swap(order[i - 1], order[rng.next_below(i)]);
      const std::size_t lo = k > part_cap ? k - part_cap : 1;
      const std::size_t hi = std::min(part_cap, k - 1);
      const std::size_t ones = std::clamp(k / 2, lo, hi);
      for (std::size_t i = 0; i < ones; ++i) side[order[i]] = true;
    }

    auto count_side = [&](bool v) {
      std::size_t c = 0;
      for (bool s : side)
        if (s == v) ++c;
      return c;
    };

    int best_cut = partition_cut(cs, subset, side);
    for (int pass = 0; pass < opts.kl_passes; ++pass) {
      bool improved = false;
      for (std::size_t i = 0; i < k; ++i) {
        // Try moving symbol i to the other side if both sides stay legal.
        const std::size_t from = count_side(side[i]);
        const std::size_t to = k - from;
        if (from <= 1 || to + 1 > part_cap) continue;
        side[i] = !side[i];
        const int cut = partition_cut(cs, subset, side);
        if (cut < best_cut) {
          best_cut = cut;
          improved = true;
        } else {
          side[i] = !side[i];
        }
      }
      if (!improved) break;
    }
    if (best_overall < 0 || best_cut < best_overall) {
      best_overall = best_cut;
      best_side = side;
    }
  }

  std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>> parts;
  for (std::size_t i = 0; i < k; ++i)
    (best_side[i] ? parts.second : parts.first).push_back(subset[i]);
  return parts;
}

// ---------------------------------------------------------------------------
// Recursive split / merge / select
// ---------------------------------------------------------------------------

// Enumerates combinations of size c from [0, m) invoking fn; stops early if
// fn returns false.
template <typename Fn>
void for_each_combination(std::size_t m, std::size_t c, Fn&& fn) {
  if (c > m) return;
  std::vector<std::size_t> idx(c);
  for (std::size_t i = 0; i < c; ++i) idx[i] = i;
  while (true) {
    if (!fn(idx)) return;
    // Advance.
    std::size_t i = c;
    while (i > 0) {
      --i;
      if (idx[i] + (c - i) < m) {
        ++idx[i];
        for (std::size_t j = i + 1; j < c; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return;
    }
    if (c == 0) return;
  }
}

std::uint64_t combinations_capped(std::size_t m, std::size_t c,
                                  std::uint64_t cap) {
  if (c > m) return 0;
  std::uint64_t r = 1;
  for (std::size_t i = 0; i < c; ++i) {
    r = r * (m - i) / (i + 1);
    if (r > cap) return cap + 1;
  }
  return r;
}

struct RecursiveEncoder {
  const ConstraintSet& cs;
  const BoundedEncodeOptions& opts;
  ExecContext ctx;
  Evaluator eval;

  RecursiveEncoder(const ConstraintSet& c, const BoundedEncodeOptions& o,
                   const ExecContext& x)
      : cs(c), opts(o), ctx(x), eval{c, o, x} {}

  // Returns up to `length` restricted dichotomies (over the full universe)
  // giving the symbols of `subset` distinct codes and minimizing the cost.
  std::vector<Dichotomy> encode_subset(const std::vector<std::uint32_t>& subset,
                                       int length, std::uint64_t salt) {
    const std::size_t n = cs.num_symbols();
    if (subset.size() == 1) {
      Dichotomy d(n);
      d.left.set(subset[0]);
      return {d};
    }
    if (subset.size() == 2) {
      Dichotomy d(n);
      d.left.set(subset[0]);
      d.right.set(subset[1]);
      return {d};
    }
    assert(length >= 1);
    const std::size_t part_cap = length >= 63
                                     ? std::numeric_limits<std::size_t>::max()
                                     : (std::size_t{1} << (length - 1));

    auto [p1, p2] = split_subset(cs, subset, part_cap, opts, salt);
    std::vector<Dichotomy> d1 = encode_subset(p1, length - 1, salt * 2 + 1);
    std::vector<Dichotomy> d2 = encode_subset(p2, length - 1, salt * 2 + 2);

    // Merge: the partition dichotomy plus the cross product of children in
    // both orientations (Section 7.1 "Merging").
    std::vector<Dichotomy> candidates;
    {
      Dichotomy dp(n);
      for (auto s : p1) dp.left.set(s);
      for (auto s : p2) dp.right.set(s);
      candidates.push_back(std::move(dp));
    }
    for (const Dichotomy& a : d1)
      for (const Dichotomy& b : d2) {
        candidates.push_back(a.union_with(b));
        candidates.push_back(a.union_with(b.flipped()));
      }
    dedupe_dichotomies(candidates);

    return select_best(subset, candidates, d1, d2,
                       static_cast<std::size_t>(length));
  }

  // Selection: pick `want` dichotomies from candidates giving unique codes
  // and minimal restricted cost. Exhaustive when small; otherwise start
  // from the structurally safe selection (partition dichotomy + pairwise
  // merged children) and hill-climb single swaps within the eval budget.
  std::vector<Dichotomy> select_best(const std::vector<std::uint32_t>& subset,
                                     const std::vector<Dichotomy>& candidates,
                                     const std::vector<Dichotomy>& d1,
                                     const std::vector<Dichotomy>& d2,
                                     std::size_t want) {
    const std::size_t n = cs.num_symbols();
    want = std::min(want, candidates.size());
    const ConstraintSet restricted = restrict_constraints(cs, subset);

    // Structurally safe fallback: partition dichotomy + the i-th dichotomy
    // of each child merged together (keeps every child separation).
    std::vector<Dichotomy> fallback;
    fallback.push_back(candidates[0]);  // the partition dichotomy
    const std::size_t pairs = std::max(d1.size(), d2.size());
    for (std::size_t i = 0; i < pairs && fallback.size() < want; ++i) {
      Dichotomy m(n);
      if (i < d1.size()) m = m.union_with(d1[i]);
      if (i < d2.size()) m = m.union_with(d2[i]);
      fallback.push_back(std::move(m));
    }
    {
      bool unique = false;
      selection_codes(subset, fallback, &unique);
      assert(unique);
      (void)unique;
    }

    const int budget = std::max(opts.max_selection_evals, 8);
    std::vector<Dichotomy> best = fallback;
    // Shared budget expired: the fallback is structurally safe, stop
    // optimizing here instead of spending more cost evaluations.
    if (ctx.exhausted()) return best;
    long best_score = eval.score(subset, restricted, best);

    if (combinations_capped(candidates.size(), want,
                            static_cast<std::uint64_t>(budget)) <=
        static_cast<std::uint64_t>(budget)) {
      for_each_combination(
          candidates.size(), want, [&](const std::vector<std::size_t>& idx) {
            if (ctx.exhausted()) return false;
            std::vector<Dichotomy> sel;
            sel.reserve(idx.size());
            for (auto i : idx) sel.push_back(candidates[i]);
            const long s = eval.score(subset, restricted, sel);
            if (s < best_score) {
              best_score = s;
              best = std::move(sel);
            }
            return true;
          });
      return best;
    }

    // Hill climbing: replace one selected dichotomy by one unselected.
    int used = 1;  // the fallback evaluation
    bool improved = true;
    while (improved && used < budget && !ctx.exhausted()) {
      improved = false;
      for (std::size_t pos = 0; pos < best.size() && used < budget; ++pos) {
        for (std::size_t c = 0;
             c < candidates.size() && used < budget && !ctx.exhausted(); ++c) {
          std::vector<Dichotomy> trial = best;
          trial[pos] = candidates[c];
          ++used;
          const long s = eval.score(subset, restricted, trial);
          if (s < best_score) {
            best_score = s;
            best = std::move(trial);
            improved = true;
            break;
          }
        }
      }
    }
    return best;
  }
};

// ---------------------------------------------------------------------------
// Final polish: pairwise code swaps with incremental cost re-evaluation
// ---------------------------------------------------------------------------

// Swapping the codes of two symbols leaves a face's cost untouched unless
// the pair sits asymmetrically in it (one in members/don't-cares, the other
// not, or one member vs one don't-care): the member, don't-care and
// used-code sets — the only inputs of the Fig. 9 cost — are otherwise
// permuted within themselves.
void polish_by_swaps(Encoding& enc, const ConstraintSet& cs,
                     const BoundedEncodeOptions& opts,
                     const ExecContext& ctx) {
  const std::size_t nf = cs.faces().size();
  if (nf == 0 || opts.polish_passes <= 0 || ctx.exhausted()) return;
  const std::uint32_t n = cs.num_symbols();
  // The unused-code DC cover is refreshed whenever a move-to-free-code is
  // accepted (swaps never change the used-code set).
  Cover live_unused_dc = unused_code_dontcares(enc);

  // Membership category of each symbol in each face.
  std::vector<std::vector<std::uint8_t>> cat(
      nf, std::vector<std::uint8_t>(n, 0));
  for (std::size_t i = 0; i < nf; ++i) {
    for (auto m : cs.faces()[i].members) cat[i][m] = 2;
    for (auto d : cs.faces()[i].dontcares) cat[i][d] = 1;
  }

  int evals = 0;
  auto face_value = [&](std::size_t i) -> long {
    ++evals;
    ctx.charge(1);
    if ((evals & 63) == 0) ctx.poll();
    const FaceCost fc =
        evaluate_face_cost(enc, cs, cs.faces()[i], live_unused_dc,
                           /*fast=*/opts.fast_cost);
    switch (opts.cost) {
      case CostKind::kViolatedFaces: return fc.satisfied ? 0 : 1;
      case CostKind::kCubes: return fc.cubes;
      case CostKind::kLiterals: return fc.literals;
    }
    return 0;
  };

  std::vector<long> face_cost(nf);
  for (std::size_t i = 0; i < nf; ++i) face_cost[i] = face_value(i);

  // Free codes for move-to-unused-code moves (changes the DC set of the
  // cube/literal costs, so those trigger a full refresh on acceptance).
  // Only enumerated for code spaces small enough to materialize; for long
  // codes the polish falls back to swaps only.
  std::vector<std::uint64_t> free_codes;
  if (enc.bits <= 20) {
    const std::uint64_t space = std::uint64_t{1} << enc.bits;
    std::vector<bool> used(space, false);
    for (auto c : enc.codes) used[c] = true;
    for (std::uint64_t c = 0; c < space; ++c)
      if (!used[c]) free_codes.push_back(c);
  }
  auto refresh_all = [&]() {
    live_unused_dc = unused_code_dontcares(enc);
    for (std::size_t i = 0; i < nf; ++i) face_cost[i] = face_value(i);
  };

  long total = 0;
  for (long c : face_cost) total += c;

  for (int pass = 0; pass < opts.polish_passes; ++pass) {
    bool improved = false;
    for (std::uint32_t a = 0; a < n; ++a) {
      // Pairwise swaps.
      for (std::uint32_t b = a + 1; b < n; ++b) {
        if (evals >= opts.polish_eval_budget || ctx.exhausted()) return;
        std::vector<std::size_t> affected;
        for (std::size_t i = 0; i < nf; ++i)
          if (cat[i][a] != cat[i][b]) affected.push_back(i);
        if (affected.empty()) continue;
        long before = 0;
        for (std::size_t i : affected) before += face_cost[i];
        std::swap(enc.codes[a], enc.codes[b]);
        long after = 0;
        std::vector<long> updated(affected.size());
        for (std::size_t k = 0; k < affected.size(); ++k) {
          updated[k] = face_value(affected[k]);
          after += updated[k];
        }
        if (after < before) {
          for (std::size_t k = 0; k < affected.size(); ++k)
            face_cost[affected[k]] = updated[k];
          total += after - before;
          improved = true;
        } else {
          std::swap(enc.codes[a], enc.codes[b]);
        }
      }
      // Moves to an unused code. These change the unused-code DC set, so
      // every face is re-evaluated — attempted sparingly (a handful of
      // target codes per symbol, and only while the budget allows a full
      // re-evaluation).
      const std::size_t free_tries = std::min<std::size_t>(free_codes.size(), 8);
      for (std::size_t fi = 0; fi < free_tries; ++fi) {
        if (evals + static_cast<int>(nf) >= opts.polish_eval_budget ||
            ctx.exhausted())
          break;
        const std::uint64_t old_code = enc.codes[a];
        enc.codes[a] = free_codes[fi];
        if (opts.cost != CostKind::kViolatedFaces)
          live_unused_dc = unused_code_dontcares(enc);
        long after = 0;
        for (std::size_t i = 0; i < nf; ++i) {
          after += face_value(i);
          if (after >= total) break;  // cannot improve any more
        }
        if (after < total) {
          free_codes[fi] = old_code;
          refresh_all();
          total = 0;
          for (long c : face_cost) total += c;
          improved = true;
        } else {
          enc.codes[a] = old_code;
          if (opts.cost != CostKind::kViolatedFaces)
            live_unused_dc = unused_code_dontcares(enc);
        }
      }
    }
    if (!improved) break;
  }
}

}  // namespace

BoundedEncodeResult bounded_encode(const ConstraintSet& cs, int code_length,
                                   const BoundedEncodeOptions& opts,
                                   const ExecContext& ctx) {
  StageScope stage(ctx, "bounded_encode");
  const std::uint32_t n = cs.num_symbols();
  if (n == 0) throw std::invalid_argument("no symbols to encode");
  if (code_length < minimum_code_length(n))
    throw std::invalid_argument("code length " + std::to_string(code_length) +
                                " cannot give " + std::to_string(n) +
                                " symbols distinct codes");
  if (code_length > 63)
    throw std::invalid_argument("code lengths above 63 bits are unsupported");

  std::vector<std::uint32_t> all(n);
  for (std::uint32_t i = 0; i < n; ++i) all[i] = i;

  RecursiveEncoder enc(cs, opts, stage.ctx());
  std::vector<Dichotomy> columns;
  {
    TRACE_SCOPE(stage.ctx(), "bounded_recurse");
    columns = enc.encode_subset(all, code_length, 1);
  }

  // Pad with empty columns if the recursion returned fewer than requested
  // (possible for tiny subsets); codes stay unique.
  while (static_cast<int>(columns.size()) < code_length)
    columns.emplace_back(n);
  columns.resize(static_cast<std::size_t>(code_length), Dichotomy(n));

  BoundedEncodeResult res;
  // Left block -> 0; symbols unplaced by a column get 0 as well here (the
  // heuristic's columns place every subset symbol by construction).
  res.encoding.bits = code_length;
  res.encoding.codes.assign(n, 0);
  for (std::size_t j = 0; j < columns.size(); ++j)
    for (std::uint32_t s = 0; s < n; ++s)
      if (columns[j].in_right(s))
        res.encoding.codes[s] |= std::uint64_t{1} << j;

  {
    TRACE_SCOPE(stage.ctx(), "bounded_polish");
    polish_by_swaps(res.encoding, cs, opts, stage.ctx());
  }

  res.cost = evaluate_encoding_cost(res.encoding, cs, /*fast=*/false);
  metric_add(stage.ctx(), "bounded.evals",
             static_cast<std::uint64_t>(enc.eval.evals));
  stage.ctx().poll();
  if (stage.ctx().exhausted()) {
    res.truncation = stage.ctx().reason();
    stage.set_truncation(res.truncation);
  }
  stage.add_items(static_cast<std::uint64_t>(enc.eval.evals));
  return res;
}

}  // namespace encodesat
