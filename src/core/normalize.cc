#include "core/normalize.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

namespace encodesat {

namespace {

std::vector<std::uint32_t> sorted(std::vector<std::uint32_t> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

}  // namespace

NormalizeStats normalize_constraints(ConstraintSet& cs) {
  NormalizeStats stats;
  const std::size_t n = cs.num_symbols();

  // --- Faces: dedupe + drop trivial --------------------------------------
  {
    std::set<std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>>>
        seen;
    std::vector<FaceConstraint> kept;
    for (FaceConstraint& f : cs.faces()) {
      f.members = sorted(std::move(f.members));
      f.dontcares = sorted(std::move(f.dontcares));
      if (f.members.size() < 2 ||
          f.members.size() + f.dontcares.size() >= n) {
        ++stats.trivial_faces;
        continue;
      }
      if (!seen.insert({f.members, f.dontcares}).second) {
        ++stats.duplicate_faces;
        continue;
      }
      kept.push_back(std::move(f));
    }
    cs.faces() = std::move(kept);
  }

  // --- Dominances: dedupe + transitive reduction -------------------------
  {
    std::set<std::pair<std::uint32_t, std::uint32_t>> edges;
    for (const auto& d : cs.dominances()) {
      if (!edges.insert({d.dominator, d.dominated}).second)
        ++stats.duplicate_dominances;
    }
    // Reachability via at least two edges: a > b is redundant if a reaches
    // b through an intermediate node (the relation is transitive on codes).
    // Checking every edge against the ORIGINAL set is the classical DAG
    // transitive reduction, sound for acyclic dominance graphs; two edges
    // can only justify each other's removal through a dominance cycle, and
    // a cycle of distinct symbols is infeasible regardless (equal codes),
    // which the reduction preserves (the pure cycle edges are never
    // removed — each is its vertex's only exit).
    auto reaches_via = [&](std::uint32_t a, std::uint32_t b) {
      // DFS from a over the edge set minus the direct edge (a, b).
      std::vector<std::uint32_t> stack;
      std::vector<bool> seen(n, false);
      stack.push_back(a);
      seen[a] = true;
      while (!stack.empty()) {
        const std::uint32_t u = stack.back();
        stack.pop_back();
        for (const auto& [x, y] : edges) {
          if (x != u || (x == a && y == b)) continue;
          if (y == b) return true;
          if (!seen[y]) {
            seen[y] = true;
            stack.push_back(y);
          }
        }
      }
      return false;
    };
    std::vector<DominanceConstraint> kept;
    std::set<std::pair<std::uint32_t, std::uint32_t>> emitted;
    for (const auto& [a, b] : edges) {
      if (reaches_via(a, b)) {
        ++stats.transitive_dominances;
        continue;
      }
      kept.push_back(DominanceConstraint{a, b});
    }
    cs.dominances() = std::move(kept);
  }

  // --- Disjunctives: dedupe ----------------------------------------------
  {
    std::set<std::pair<std::uint32_t, std::vector<std::uint32_t>>> seen;
    std::vector<DisjunctiveConstraint> kept;
    for (DisjunctiveConstraint& d : cs.disjunctives()) {
      d.children = sorted(std::move(d.children));
      if (!seen.insert({d.parent, d.children}).second) {
        ++stats.duplicate_disjunctives;
        continue;
      }
      kept.push_back(std::move(d));
    }
    cs.disjunctives() = std::move(kept);
  }
  return stats;
}

}  // namespace encodesat
