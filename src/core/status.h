// Unified status codes for the public solve surface.
//
// Every way a solve request can conclude — in-process through the
// SolveRequest/SolveResponse entry point (core/solver.h) or over the
// service wire protocol (src/service/protocol.h) — maps onto this one
// enum, replacing the historical mix of bools, ParseError out-params and
// per-result status enums at the API boundary. The numeric values are
// part of no format; the *names* (status_code_name) are: they appear in
// the NDJSON `status` field of `encodesat-service-v1` responses and in
// CLI diagnostics, so they are lowercase, stable, and additive-only.
#pragma once

#include <cstdint>

namespace encodesat {

enum class StatusCode : std::uint8_t {
  kOk = 0,       ///< solved; an encoding (or a proof of one) is attached
  kParseError,   ///< the constraint text did not parse (see ParseError)
  kInfeasible,   ///< the constraints cannot all be satisfied
  kTimeout,      ///< a deadline or work budget expired before an answer
  kOverloaded,   ///< admission control rejected the request (service only)
  kCanceled,     ///< cooperative cancellation / client went away
  kInternal,     ///< unexpected failure; `detail` carries the reason
};

/// Stable lowercase wire name: "ok", "parse_error", "infeasible",
/// "timeout", "overloaded", "canceled", "internal".
const char* status_code_name(StatusCode code);

/// Inverse of status_code_name; returns false for unknown names.
bool status_code_from_name(const char* name, StatusCode* out);

}  // namespace encodesat
