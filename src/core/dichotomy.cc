#include "core/dichotomy.h"

#include <cassert>
#include <unordered_set>

namespace encodesat {

Dichotomy Dichotomy::make(std::size_t n, const std::vector<std::uint32_t>& l,
                          const std::vector<std::uint32_t>& r) {
  Dichotomy d(n);
  for (auto s : l) d.left.set(s);
  for (auto s : r) d.right.set(s);
  assert(d.well_formed());
  return d;
}

Dichotomy Dichotomy::union_with(const Dichotomy& o) const {
  assert(compatible(o));
  return Dichotomy{left | o.left, right | o.right};
}

std::string Dichotomy::to_string(const SymbolTable& symbols) const {
  std::string s = "(";
  bool first = true;
  left.for_each([&](std::size_t i) {
    if (!first) s += ' ';
    s += symbols.name(static_cast<std::uint32_t>(i));
    first = false;
  });
  s += ';';
  first = true;
  right.for_each([&](std::size_t i) {
    s += first ? " " : " ";
    s += symbols.name(static_cast<std::uint32_t>(i));
    first = false;
  });
  s += ')';
  return s;
}

void dedupe_dichotomies(std::vector<Dichotomy>& ds) {
  std::unordered_set<Dichotomy, DichotomyHash> seen;
  std::vector<Dichotomy> kept;
  kept.reserve(ds.size());
  for (auto& d : ds)
    if (seen.insert(d).second) kept.push_back(std::move(d));
  ds = std::move(kept);
}

}  // namespace encodesat
