#include "core/primes.h"

#include <algorithm>
#include <unordered_set>

#include "util/thread_pool.h"

namespace encodesat {

namespace {

// Keeps only the minimal terms (no kept term is a superset of another):
// absorption x + xy = x for a unate SOP, i.e. single-cube containment.
// Duplicates are removed by hashing first; the quadratic subset scan then
// only runs on distinct terms, smallest first.
void keep_minimal_terms(std::vector<Bitset>& terms) {
  {
    std::unordered_set<Bitset, BitsetHash> seen;
    std::vector<Bitset> unique;
    unique.reserve(terms.size());
    for (Bitset& t : terms)
      if (seen.insert(t).second) unique.push_back(std::move(t));
    terms = std::move(unique);
  }
  std::sort(terms.begin(), terms.end(),
            [](const Bitset& a, const Bitset& b) {
              return a.count() < b.count();
            });
  std::vector<Bitset> kept;
  kept.reserve(terms.size());
  for (const Bitset& t : terms) {
    bool absorbed = false;
    for (const Bitset& k : kept) {
      if (k.is_subset_of(t)) {
        absorbed = true;
        break;
      }
    }
    if (!absorbed) kept.push_back(t);
  }
  terms = std::move(kept);
}

}  // namespace

std::vector<Bitset> two_cnf_to_minimal_sop(const std::vector<Bitset>& incompat,
                                           std::size_t max_terms,
                                           bool* truncated,
                                           std::uint64_t max_work,
                                           const ExecContext& ctx,
                                           Truncation* reason) {
  const std::size_t m = incompat.size();
  if (truncated) *truncated = false;
  if (reason) *reason = Truncation::kNone;
  // Stage-local limits (terms, the local work option) are reported to the
  // caller but never tripped into the shared budget: a truncated stage must
  // not poison budget checks in unrelated later stages.
  auto truncate = [&](Truncation why) -> std::vector<Bitset> {
    if (truncated) *truncated = true;
    if (reason) *reason = why;
    return {};
  };

  // Peel variables one at a time (the cs recursion, iteratively): at each
  // step remove the remaining variable x of maximum residual degree
  // together with its incident sums, remembering (x, neighbours(x)).
  std::vector<Bitset> residual = incompat;
  std::vector<std::pair<std::size_t, Bitset>> splits;
  std::vector<std::size_t> degree(m, 0);
  for (std::size_t i = 0; i < m; ++i) degree[i] = residual[i].count();

  while (true) {
    std::size_t x = m;
    std::size_t best = 0;
    for (std::size_t i = 0; i < m; ++i)
      if (degree[i] > best) {
        best = degree[i];
        x = i;
      }
    if (x == m) break;  // no edges left
    splits.emplace_back(x, residual[x]);
    // Remove every sum containing x.
    residual[x].for_each([&](std::size_t j) {
      residual[j].reset(x);
      degree[j] = residual[j].count();
    });
    residual[x] = Bitset(m);
    degree[x] = 0;
  }

  // Fold back: SOP := ps(x_expr, SOP) from the innermost split outwards.
  // x_expr = x + Π neighbours(x), so each term either gains {x} or gains
  // the neighbour set; single-cube containment keeps the result minimal.
  std::vector<Bitset> sop;
  {
    Bitset empty(m);
    sop.push_back(empty);  // cs of the empty expression is the constant 1
  }
  std::uint64_t work = 0;
  const std::uint64_t words = (m + 63) / 64;
  for (auto it = splits.rbegin(); it != splits.rend(); ++it) {
    const std::size_t x = it->first;
    const Bitset& nbrs = it->second;
    // Work accounting (in bitset word operations, upper bound): the
    // absorption scans below cost about |B|^2/2 + |A|*|B| pairwise subset
    // checks of `words` words each for this fold.
    const std::uint64_t fold_work =
        (static_cast<std::uint64_t>(sop.size()) * sop.size() * 3 / 2) * words;
    work += fold_work;
    if (work > max_work) return truncate(Truncation::kWorkBudget);
    // The shared budget sees the same work units; its deadline and
    // cancellation flag are polled once per fold, bounding the latency of a
    // truncated return by one absorption scan.
    if (!ctx.charge(fold_work)) return truncate(ctx.reason());
    if (!ctx.poll()) return truncate(ctx.reason());
    // Bail out before paying the absorption scan on a hopeless blow-up:
    // absorption at most halves the set, so 2x over budget cannot recover.
    if (sop.size() > max_terms) return truncate(Truncation::kTermLimit);
    // next = {t ∪ {x}} ∪ {t ∪ N}. Structure exploited for absorption:
    // terms never contain x before this fold (x was peeled first), so the
    // {t ∪ {x}} half inherits the SOP's pairwise incomparability verbatim
    // and no term of it can absorb a {t ∪ N} term (those lack x). Only the
    // {t ∪ N} half needs internal minimization, after which its terms are
    // checked against the {t ∪ {x}} half.
    std::vector<Bitset> with_nbrs;
    with_nbrs.reserve(sop.size());
    for (const Bitset& t : sop) {
      Bitset b = t;
      b |= nbrs;
      with_nbrs.push_back(std::move(b));
    }
    keep_minimal_terms(with_nbrs);

    std::vector<Bitset> next;
    next.reserve(sop.size() + with_nbrs.size());
    for (const Bitset& t : sop) {
      Bitset a = t;
      a.set(x);
      bool absorbed = false;
      for (const Bitset& b : with_nbrs) {
        if (b.is_subset_of(a)) {
          absorbed = true;
          break;
        }
      }
      if (!absorbed) next.push_back(std::move(a));
    }
    for (Bitset& b : with_nbrs) next.push_back(std::move(b));
    if (next.size() > max_terms) return truncate(Truncation::kTermLimit);
    sop = std::move(next);
  }
  return sop;
}

PrimeGenResult generate_prime_dichotomies(const std::vector<Dichotomy>& ds,
                                          const PrimeGenOptions& opts,
                                          const ExecContext& ctx) {
  PrimeGenResult result;
  if (ds.empty()) return result;
  StageScope stage(ctx, "prime_generation");
  const std::size_t m = ds.size();

  // Pairwise incompatibility matrix. Each task fills only the upper
  // triangle of its own row, so the fan-out is race-free and the mirrored
  // result is independent of the thread count.
  std::vector<Bitset> incompat(m, Bitset(m));
  parallel_for(m, m >= 128 ? ctx.num_threads : 1, [&](std::size_t i) {
    for (std::size_t j = i + 1; j < m; ++j)
      if (!ds[i].compatible(ds[j])) incompat[i].set(j);
  });
  for (std::size_t i = 0; i < m; ++i)
    incompat[i].for_each([&](std::size_t j) {
      if (j > i) incompat[j].set(i);
    });

  bool truncated = false;
  Truncation reason = Truncation::kNone;
  const std::uint64_t work_before = ctx.budget ? ctx.budget->work_used() : 0;
  std::vector<Bitset> sop =
      two_cnf_to_minimal_sop(incompat, opts.max_terms, &truncated,
                             opts.max_work, stage.ctx(), &reason);
  if (ctx.budget) stage.add_work(ctx.budget->work_used() - work_before);
  if (truncated) {
    result.truncated = true;
    result.truncation = reason;
    stage.set_truncation(reason);
    return result;
  }
  result.num_terms = sop.size();
  stage.add_items(sop.size());

  // Each SOP term is a minimal deletion set; the variables missing from it
  // form a maximal compatible whose union is a prime encoding-dichotomy.
  result.primes.reserve(sop.size());
  for (const Bitset& term : sop) {
    Dichotomy prime(ds[0].universe());
    for (std::size_t i = 0; i < m; ++i) {
      if (term.test(i)) continue;
      prime.left |= ds[i].left;
      prime.right |= ds[i].right;
    }
    result.primes.push_back(std::move(prime));
  }
  dedupe_dichotomies(result.primes);
  return result;
}

}  // namespace encodesat
