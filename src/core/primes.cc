#include "core/primes.h"

#include <algorithm>
#include <numeric>

#include "obs/counters.h"
#include "obs/trace.h"
#include "util/term_arena.h"
#include "util/thread_pool.h"

namespace encodesat {

namespace {

// The working SOP of the fold: arena refs with cached popcounts and folded
// containment signatures in parallel arrays, so the containment scans read
// contiguous memory and only touch the full terms on signature survivors.
// The vectors are reused across folds; after the first few folds the loop
// performs no heap allocation at all.
struct TermList {
  std::vector<TermRef> refs;
  std::vector<std::uint32_t> counts;
  std::vector<std::uint64_t> sigs;

  std::size_t size() const { return refs.size(); }
  void clear() {
    refs.clear();
    counts.clear();
    sigs.clear();
  }
  void push(TermRef r, std::uint32_t c, std::uint64_t s) {
    refs.push_back(r);
    counts.push_back(c);
    sigs.push_back(s);
  }
  void swap(TermList& o) {
    refs.swap(o.refs);
    counts.swap(o.counts);
    sigs.swap(o.sigs);
  }
};

// Keeps only the minimal terms (no kept term is a superset of another):
// absorption x + xy = x for a unate SOP, i.e. single-cube containment.
// Terms are sorted by (popcount, word-lex); adjacent duplicates are
// released, and the subset scan for a term only runs over kept terms of
// strictly smaller popcount (an equal-count absorber would equal the
// deduplicated term) that also pass the folded-signature test — most
// candidate pairs are rejected on the popcount bucket or the one-word
// signature without touching the full terms. Output is count-ascending.
void keep_minimal_terms(TermArena& arena, TermList& terms,
                        std::vector<std::uint32_t>& order, TermList& out,
                        std::uint64_t& sig_hits) {
  const std::size_t n = terms.size();
  order.resize(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (terms.counts[a] != terms.counts[b])
                return terms.counts[a] < terms.counts[b];
              // One-word signature compare settles most ties; the full
              // word-lex order is only consulted on signature collisions,
              // so duplicates (equal count *and* signature) stay adjacent.
              if (terms.sigs[a] != terms.sigs[b])
                return terms.sigs[a] < terms.sigs[b];
              return arena.less(terms.refs[a], terms.refs[b]);
            });

  out.clear();
  std::size_t eq_start = 0;  // first kept index with the current popcount
  std::uint32_t run_count = ~0u;
  bool have_prev = false;
  TermRef prev = 0;
  for (std::uint32_t i : order) {
    const TermRef r = terms.refs[i];
    const std::uint32_t c = terms.counts[i];
    const std::uint64_t s = terms.sigs[i];
    // Duplicates are adjacent in the sort order.
    if (have_prev && c == run_count && arena.equal(prev, r)) {
      arena.release(r);
      continue;
    }
    if (c != run_count) {
      eq_start = out.size();
      run_count = c;
    }
    have_prev = true;
    prev = r;
    bool absorbed = false;
    for (std::size_t j = 0; j < eq_start; ++j) {
      if ((out.sigs[j] & ~s) != 0) {
        ++sig_hits;
        continue;
      }
      if (arena.is_subset(out.refs[j], r)) {
        absorbed = true;
        break;
      }
    }
    if (absorbed)
      arena.release(r);
    else
      out.push(r, c, s);
  }
  terms.swap(out);
}

}  // namespace

std::vector<Bitset> two_cnf_to_minimal_sop(const std::vector<Bitset>& incompat,
                                           std::size_t max_terms,
                                           bool* truncated,
                                           std::uint64_t max_work,
                                           const ExecContext& ctx,
                                           Truncation* reason,
                                           SopFoldStats* fold_stats) {
  const std::size_t m = incompat.size();
  if (truncated) *truncated = false;
  if (reason) *reason = Truncation::kNone;
  // Stage-local limits (terms, the local work option) are reported to the
  // caller but never tripped into the shared budget: a truncated stage must
  // not poison budget checks in unrelated later stages.
  auto truncate = [&](Truncation why) -> std::vector<Bitset> {
    if (truncated) *truncated = true;
    if (reason) *reason = why;
    return {};
  };

  // Peel variables one at a time (the cs recursion, iteratively): at each
  // step remove the remaining variable x of maximum residual degree
  // together with its incident sums, remembering (x, neighbours(x)).
  std::vector<Bitset> residual = incompat;
  std::vector<std::pair<std::size_t, Bitset>> splits;
  std::vector<std::size_t> degree(m, 0);
  for (std::size_t i = 0; i < m; ++i) degree[i] = residual[i].count();

  while (true) {
    std::size_t x = m;
    std::size_t best = 0;
    for (std::size_t i = 0; i < m; ++i)
      if (degree[i] > best) {
        best = degree[i];
        x = i;
      }
    if (x == m) break;  // no edges left
    splits.emplace_back(x, residual[x]);
    // Remove every sum containing x.
    residual[x].for_each([&](std::size_t j) {
      residual[j].reset(x);
      degree[j] = residual[j].count();
    });
    residual[x] = Bitset(m);
    degree[x] = 0;
  }

  // Fold back: SOP := ps(x_expr, SOP) from the innermost split outwards.
  // x_expr = x + Π neighbours(x), so each term either gains {x} or gains
  // the neighbour set; single-cube containment keeps the result minimal.
  //
  // The working terms live in a flat TermArena (util/term_arena.h): one
  // contiguous buffer, O(1) free-list reuse, popcounts and folded
  // signatures cached in parallel arrays. The Bitset vectors at this
  // function's boundary are conversion shims only.
  TermArena arena(m, /*reserve_terms=*/256);
  TermList sop, with_nbrs, scratch, d_half;
  std::vector<std::uint32_t> order, d_idx;
  sop.push(arena.alloc(), 0, 0);  // cs of the empty expression: constant 1

  std::uint64_t work = 0;
  std::uint64_t sig_hits = 0;
  const std::uint64_t words = (m + 63) / 64;
  auto fill_fold_stats = [&] {
    if (!fold_stats) return;
    fold_stats->peak_arena_bytes = arena.peak_bytes();
    fold_stats->arena_allocs = arena.total_allocs();
    fold_stats->arena_reuses = arena.total_reuses();
    fold_stats->prune_sig_hits = sig_hits;
  };
  auto truncate_fold = [&](Truncation why) {
    fill_fold_stats();
    return truncate(why);
  };
  for (auto it = splits.rbegin(); it != splits.rend(); ++it) {
    TRACE_SCOPE(ctx, "sop_fold");
    const std::size_t x = it->first;
    // Work accounting (in bitset word operations, upper bound): the
    // absorption scans below cost at most |B|^2/2 + |A|*|B| pairwise subset
    // checks of `words` words each for this fold. The signature/popcount
    // pruning makes the *measured* cost much lower, but the charged units
    // keep the pre-arena scale so budget trip points stay comparable.
    const std::uint64_t fold_work =
        (static_cast<std::uint64_t>(sop.size()) * sop.size() * 3 / 2) * words;
    work += fold_work;
    if (fold_stats) {
      fold_stats->work = work;
      ++fold_stats->folds;
    }
    if (work > max_work) return truncate_fold(Truncation::kWorkBudget);
    // The shared budget sees the same work units; its deadline and
    // cancellation flag are polled once per fold, bounding the latency of a
    // truncated return by one absorption scan.
    if (!ctx.charge(fold_work)) return truncate_fold(ctx.reason());
    if (!ctx.poll()) return truncate_fold(ctx.reason());
    // Bail out before paying the absorption scan on a hopeless blow-up:
    // absorption at most halves the set, so 2x over budget cannot recover.
    if (sop.size() > max_terms) return truncate_fold(Truncation::kTermLimit);

    const TermRef nbr = arena.from_bitset(it->second);
    const std::uint64_t nbr_sig = arena.signature(nbr);
    const std::uint32_t nbr_count =
        static_cast<std::uint32_t>(arena.count(nbr));
    const std::uint64_t x_bit = std::uint64_t{1} << (x & 63);

    // next = {t ∪ {x}} ∪ {t ∪ N}. Structure exploited for absorption:
    // terms never contain x before this fold (x was peeled first), so the
    // {t ∪ {x}} half inherits the SOP's pairwise incomparability verbatim
    // and no term of it can absorb a {t ∪ N} term (those lack x). Only the
    // {t ∪ N} half needs internal minimization — and since *every* term of
    // that half contains N, t1 ∪ N ⊆ t2 ∪ N iff t1\N ⊆ t2\N: minimize the
    // stripped terms {t \ N} instead and OR N back into the survivors.
    //
    // Stripping changes only terms that intersect N. Because the old SOP is
    // pairwise incomparable, an absorber among the stripped terms must have
    // *lost* elements (t1\N ⊆ t2\N with t1 ⊄ t2 forces t1 ∩ N ≠ ∅), so
    // N-disjoint terms never absorb anything and are never duplicates —
    // the quadratic minimization runs over the touched subset only, and
    // each N-disjoint term just needs one absorbed-by-kept-touched scan.
    with_nbrs.clear();
    d_idx.clear();
    for (std::size_t i = 0; i < sop.size(); ++i) {
      if ((sop.sigs[i] & nbr_sig) != 0 &&
          arena.intersects(sop.refs[i], nbr)) {
        const TermRef w = arena.alloc();
        arena.andnot_of(w, sop.refs[i], nbr);
        with_nbrs.push(w, static_cast<std::uint32_t>(arena.count(w)),
                       arena.signature(w));
      } else {
        d_idx.push_back(static_cast<std::uint32_t>(i));
      }
    }
    keep_minimal_terms(arena, with_nbrs, order, scratch, sig_hits);

    // Surviving N-disjoint terms join the {t ∪ N} half as clones (their
    // originals are still needed for the {t ∪ {x}} half below). An absorber
    // with equal count would equal the term, which stripping rules out, so
    // the ≤-count scan bound is exact.
    d_half.clear();
    for (std::uint32_t i : d_idx) {
      const TermRef t = sop.refs[i];
      const std::uint32_t c = sop.counts[i];
      const std::uint64_t s = sop.sigs[i];
      bool absorbed = false;
      for (std::size_t j = 0;
           j < with_nbrs.size() && with_nbrs.counts[j] <= c; ++j) {
        if ((with_nbrs.sigs[j] & ~s) != 0) {
          ++sig_hits;
          continue;
        }
        if (arena.is_subset(with_nbrs.refs[j], t)) {
          absorbed = true;
          break;
        }
      }
      if (!absorbed) d_half.push(arena.clone(t), c, s);
    }

    // The {t ∪ {x}} half, built by mutating the old SOP terms in place.
    // Since x is in no {t ∪ N} term, b ⊆ t ∪ {x} iff b ⊆ t; and every
    // b = sb ∪ N contains N, so b ⊆ t requires N ⊆ t — one signature test
    // plus one subset check gates the whole scan per term, and in the
    // common case (t misses some neighbour of x) nothing is scanned.
    // Under the gate, b ⊆ t iff sb ⊆ t with |sb| ≤ |t| - |N| (sb ∩ N = ∅),
    // so the count-ascending stripped list is scanned only up to that
    // bound (b == t, i.e. sb = t\N, absorbs too and sits at the bound).
    // d_half never absorbs here: its sb is itself an old SOP term, and
    // sb ⊆ t contradicts the old SOP's pairwise incomparability.
    scratch.clear();
    for (std::size_t i = 0; i < sop.size(); ++i) {
      const TermRef t = sop.refs[i];
      const std::uint32_t c = sop.counts[i];
      const std::uint64_t s = sop.sigs[i];
      bool absorbed = false;
      if ((nbr_sig & ~s) == 0 && arena.is_subset(nbr, t)) {
        const std::uint32_t limit = c - nbr_count;
        for (std::size_t j = 0;
             j < with_nbrs.size() && with_nbrs.counts[j] <= limit; ++j) {
          if ((with_nbrs.sigs[j] & ~s) != 0) {
            ++sig_hits;
            continue;
          }
          if (arena.is_subset(with_nbrs.refs[j], t)) {
            absorbed = true;
            break;
          }
        }
      }
      if (absorbed) {
        arena.release(t);
        continue;
      }
      arena.set(t, x);
      scratch.push(t, c + 1, s | x_bit);
    }
    // Reconstitute the {t ∪ N} half from the kept stripped terms.
    for (std::size_t j = 0; j < with_nbrs.size(); ++j) {
      const TermRef w = with_nbrs.refs[j];
      arena.or_into(w, nbr);
      scratch.push(w, with_nbrs.counts[j] + nbr_count,
                   with_nbrs.sigs[j] | nbr_sig);
    }
    for (std::size_t j = 0; j < d_half.size(); ++j) {
      const TermRef w = d_half.refs[j];
      arena.or_into(w, nbr);
      scratch.push(w, d_half.counts[j] + nbr_count,
                   d_half.sigs[j] | nbr_sig);
    }
    with_nbrs.clear();
    d_half.clear();
    arena.release(nbr);
    if (scratch.size() > max_terms) return truncate_fold(Truncation::kTermLimit);
    sop.swap(scratch);
  }

  if (fold_stats) fold_stats->num_terms = sop.size();
  fill_fold_stats();
  std::vector<Bitset> result;
  result.reserve(sop.size());
  for (TermRef r : sop.refs) result.push_back(arena.to_bitset(r));
  return result;
}

PrimeGenResult generate_prime_dichotomies(const std::vector<Dichotomy>& ds,
                                          const PrimeGenOptions& opts,
                                          const ExecContext& ctx) {
  PrimeGenResult result;
  if (ds.empty()) return result;
  StageScope stage(ctx, "prime_generation");
  const std::size_t m = ds.size();

  // Pairwise incompatibility matrix. Each task fills only the upper
  // triangle of its own row, so the fan-out is race-free and the mirrored
  // result is independent of the thread count.
  std::vector<Bitset> incompat(m, Bitset(m));
  {
    TRACE_SCOPE(stage.ctx(), "incompat_matrix");
    parallel_for(m, m >= 128 ? ctx.num_threads : 1, [&](std::size_t i) {
      for (std::size_t j = i + 1; j < m; ++j)
        if (!ds[i].compatible(ds[j])) incompat[i].set(j);
    });
    for (std::size_t i = 0; i < m; ++i)
      incompat[i].for_each([&](std::size_t j) {
        if (j > i) incompat[j].set(i);
      });
  }

  bool truncated = false;
  Truncation reason = Truncation::kNone;
  const std::uint64_t work_before = ctx.budget ? ctx.budget->work_used() : 0;
  std::vector<Bitset> sop =
      two_cnf_to_minimal_sop(incompat, opts.max_terms, &truncated,
                             opts.max_work, stage.ctx(), &reason,
                             &result.fold);
  if (ctx.budget) stage.add_work(ctx.budget->work_used() - work_before);
  // Fold counters are deterministic: the fold is a sequential stage, so the
  // values are thread-count invariant and safe for the fingerprint.
  metric_add(ctx, "primes.folds", result.fold.folds);
  metric_add(ctx, "primes.fold_work", result.fold.work);
  metric_add(ctx, "primes.arena_allocs", result.fold.arena_allocs);
  metric_add(ctx, "primes.arena_reuses", result.fold.arena_reuses);
  metric_add(ctx, "primes.prune_sig_hits", result.fold.prune_sig_hits);
  metric_add(ctx, "primes.sop_terms", result.fold.num_terms);
  metric_max(ctx, "primes.peak_arena_bytes", result.fold.peak_arena_bytes);
  if (truncated) {
    result.truncated = true;
    result.truncation = reason;
    stage.set_truncation(reason);
    return result;
  }
  result.num_terms = sop.size();
  stage.add_items(sop.size());

  // Each SOP term is a minimal deletion set; the variables missing from it
  // form a maximal compatible whose union is a prime encoding-dichotomy.
  result.primes.reserve(sop.size());
  for (const Bitset& term : sop) {
    Dichotomy prime(ds[0].universe());
    for (std::size_t i = 0; i < m; ++i) {
      if (term.test(i)) continue;
      prime.left |= ds[i].left;
      prime.right |= ds[i].right;
    }
    result.primes.push_back(std::move(prime));
  }
  dedupe_dichotomies(result.primes);
  return result;
}

}  // namespace encodesat
