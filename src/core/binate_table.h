// Section 4: encoding-constraint satisfaction abstracted as binate covering.
//
// Columns are all 2^n - 2 possible encoding columns (bit patterns over the
// symbols; all-0 and all-1 carry no information and are excluded, footnote 1
// of the paper). Rows are:
//   - one unate row per face-derived encoding-dichotomy and per uniqueness
//     pair, listing the columns that cover it;
//   - one negative row (single 0 entry) per column that violates an output
//     constraint, forbidding its selection.
// A minimum binate cover is a minimum-length satisfying encoding. This is
// exponential in the number of symbols and exists as the paper's conceptual
// bridge — and, here, as the brute-force oracle the dichotomy algorithms
// are tested against.
#pragma once

#include <cstdint>
#include <vector>

#include "core/constraints.h"
#include "core/encoding.h"
#include "covering/binate.h"

namespace encodesat {

struct BinateTable {
  /// Encoding column c assigns symbol s the bit (patterns[c] >> s) & 1.
  std::vector<std::uint64_t> patterns;
  BinateCoverProblem problem;
  std::size_t num_unate_rows = 0;
  std::size_t num_negative_rows = 0;
};

/// Builds the full table. Requires cs.num_symbols() <= 20 (the table has
/// 2^n - 2 columns); throws std::invalid_argument beyond that.
BinateTable build_binate_table(const ConstraintSet& cs);

struct BinateEncodeResult {
  /// False means *either* proven infeasible (`truncated == false`) or
  /// unknown because a search budget expired (`truncated == true`) — never
  /// treat a truncated miss as an infeasibility certificate.
  bool feasible = false;
  bool minimal = false;
  Encoding encoding;
  std::uint64_t nodes_explored = 0;
  /// Uniform truncation shape (docs/API.md): `truncated` mirrors
  /// `truncation != Truncation::kNone`.
  bool truncated = false;
  Truncation truncation = Truncation::kNone;

  /// The cover search ran to completion and found no encoding.
  bool proven_infeasible() const { return !feasible && !truncated; }
};

/// Brute-force exact minimum-length encoding via the binate table. The
/// context's budget (deadline/work/cancellation) bounds the cover search.
BinateEncodeResult binate_table_encode(const ConstraintSet& cs,
                                       const BinateCoverOptions& opts = {},
                                       const ExecContext& ctx = {});

}  // namespace encodesat
