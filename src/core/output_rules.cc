#include "core/output_rules.h"

#include <algorithm>

namespace encodesat {

bool dichotomy_valid(const Dichotomy& d, const ConstraintSet& cs) {
  for (const auto& dom : cs.dominances()) {
    if (d.in_left(dom.dominator) && d.in_right(dom.dominated)) return false;
  }
  for (const auto& dj : cs.disjunctives()) {
    if (d.in_left(dj.parent)) {
      // Parent bit 0 forces every child to 0.
      for (auto c : dj.children)
        if (d.in_right(c)) return false;
    }
    if (d.in_right(dj.parent)) {
      // Parent bit 1 needs some child at 1; dead if all are already 0.
      bool all_left = true;
      for (auto c : dj.children)
        if (!d.in_left(c)) {
          all_left = false;
          break;
        }
      if (all_left) return false;
    }
  }
  for (const auto& ex : cs.extended_disjunctives()) {
    if (!d.in_right(ex.parent)) continue;
    // Parent bit 1 needs some conjunction fully at 1; dead if every
    // conjunction already has a child at 0.
    bool all_killed = true;
    for (const auto& conj : ex.conjunctions) {
      bool killed = false;
      for (auto c : conj)
        if (d.in_left(c)) {
          killed = true;
          break;
        }
      if (!killed) {
        all_killed = false;
        break;
      }
    }
    if (all_killed) return false;
  }
  return true;
}

void remove_invalid_dichotomies(std::vector<Dichotomy>& ds,
                                const ConstraintSet& cs) {
  ds.erase(std::remove_if(
               ds.begin(), ds.end(),
               [&](const Dichotomy& d) { return !dichotomy_valid(d, cs); }),
           ds.end());
}

namespace {

// Inserts s into the left block; returns false on contradiction.
bool put_left(Dichotomy& d, std::uint32_t s, bool& changed) {
  if (d.in_right(s)) return false;
  if (!d.in_left(s)) {
    d.left.set(s);
    changed = true;
  }
  return true;
}

bool put_right(Dichotomy& d, std::uint32_t s, bool& changed) {
  if (d.in_left(s)) return false;
  if (!d.in_right(s)) {
    d.right.set(s);
    changed = true;
  }
  return true;
}

}  // namespace

bool raise_dichotomy(Dichotomy& d, const ConstraintSet& cs) {
  bool changed = true;
  while (changed) {
    changed = false;

    // Dominance a > b: a at 0 forces b to 0; b at 1 forces a to 1.
    for (const auto& dom : cs.dominances()) {
      if (d.in_left(dom.dominator) &&
          !put_left(d, dom.dominated, changed))
        return false;
      if (d.in_right(dom.dominated) &&
          !put_right(d, dom.dominator, changed))
        return false;
    }

    // Disjunctive p = OR(children). The parent dominates every child, and
    // additionally is forced to 0 when all children are 0 and to 1 when any
    // child is 1; a parent at 1 with all children but one at 0 forces the
    // last child to 1.
    for (const auto& dj : cs.disjunctives()) {
      if (d.in_left(dj.parent)) {
        for (auto c : dj.children)
          if (!put_left(d, c, changed)) return false;
      }
      bool any_right = false, all_left = true;
      std::uint32_t last_free = 0;
      int free_count = 0;
      for (auto c : dj.children) {
        if (d.in_right(c)) any_right = true;
        if (!d.in_left(c)) {
          all_left = false;
          last_free = c;
          ++free_count;
        }
      }
      if (any_right && !put_right(d, dj.parent, changed)) return false;
      if (all_left && !put_left(d, dj.parent, changed)) return false;
      if (d.in_right(dj.parent) && free_count == 1 &&
          !put_right(d, last_free, changed))
        return false;
    }

    // Extended disjunctive OR(AND(conj)) >= p: if every conjunction has a
    // child at 0 the RHS is 0, forcing p to 0; if p is 1 and exactly one
    // conjunction is still alive, all its children must be 1.
    for (const auto& ex : cs.extended_disjunctives()) {
      int alive = 0;
      const std::vector<std::uint32_t>* last_alive = nullptr;
      for (const auto& conj : ex.conjunctions) {
        bool killed = false;
        for (auto c : conj)
          if (d.in_left(c)) {
            killed = true;
            break;
          }
        if (!killed) {
          ++alive;
          last_alive = &conj;
        }
      }
      if (alive == 0) {
        if (!put_left(d, ex.parent, changed)) return false;
      } else if (alive == 1 && d.in_right(ex.parent)) {
        for (auto c : *last_alive)
          if (!put_right(d, c, changed)) return false;
      }
    }
  }
  return true;
}

}  // namespace encodesat
