// Generation of the initial encoding-dichotomies from a constraint set
// (Section 5 and Section 8.1 of the paper).
//
// Every face-embedding constraint (M, [DC]) produces, for each symbol t
// outside M ∪ DC, the two oriented dichotomies (M; t) and (t; M); don't-care
// symbols produce no dichotomy at all, which is exactly what leaves them
// free to join the face or not. Uniqueness of codes is enforced by a pair
// of oriented dichotomies ({a}; {b}), ({b}; {a}) for every symbol pair not
// already separated by a face-generated dichotomy.
#pragma once

#include <cstddef>
#include <vector>

#include "core/constraints.h"
#include "core/dichotomy.h"

namespace encodesat {

struct InitialDichotomy {
  Dichotomy dichotomy;
  /// Index of the originating face constraint, or -1 for uniqueness pairs.
  int face_index = -1;
};

std::vector<InitialDichotomy> generate_initial_dichotomies(
    const ConstraintSet& cs);

/// Convenience projection of just the dichotomies.
std::vector<Dichotomy> initial_dichotomy_list(
    const std::vector<InitialDichotomy>& init);

}  // namespace encodesat
