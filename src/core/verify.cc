#include "core/verify.h"

#include <bit>

namespace encodesat {

namespace {

// The minimal face spanned by a set of codes is described by the bit
// positions where all codes agree (fixed) and their common value there.
struct Face {
  std::uint64_t fixed_mask = 0;  ///< positions identical across all codes
  std::uint64_t fixed_value = 0;
};

Face span_face(const Encoding& enc, const std::vector<std::uint32_t>& ids) {
  const std::uint64_t width_mask =
      enc.bits >= 64 ? ~std::uint64_t{0}
                     : ((std::uint64_t{1} << enc.bits) - 1);
  Face f;
  f.fixed_mask = width_mask;
  bool first = true;
  std::uint64_t ref = 0;
  for (auto id : ids) {
    const std::uint64_t c = enc.codes[id];
    if (first) {
      ref = c;
      first = false;
      continue;
    }
    f.fixed_mask &= ~(c ^ ref);
  }
  f.fixed_value = ref & f.fixed_mask;
  return f;
}

bool in_face(const Face& f, std::uint64_t code) {
  return (code & f.fixed_mask) == f.fixed_value;
}

}  // namespace

const char* violation_kind_name(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kDuplicateCode: return "duplicate_code";
    case Violation::Kind::kFace: return "face";
    case Violation::Kind::kDominance: return "dominance";
    case Violation::Kind::kDisjunctive: return "disjunctive";
    case Violation::Kind::kExtendedDisjunctive: return "extended_disjunctive";
    case Violation::Kind::kDistance2: return "distance2";
    case Violation::Kind::kNonFace: return "nonface";
  }
  return "unknown";
}

std::string Violation::to_string() const {
  return std::string(violation_kind_name(kind)) + "[" +
         std::to_string(index) + "]: " + detail;
}

bool face_satisfied(const Encoding& enc, const ConstraintSet& cs,
                    const FaceConstraint& f) {
  const Face face = span_face(enc, f.members);
  const std::size_t n = cs.num_symbols();
  const Bitset inside =
      index_bitset(n, f.members) | index_bitset(n, f.dontcares);
  for (std::uint32_t s = 0; s < n; ++s) {
    if (inside.test(s)) continue;
    if (in_face(face, enc.codes[s])) return false;
  }
  return true;
}

int count_satisfied_faces(const Encoding& enc, const ConstraintSet& cs) {
  int k = 0;
  for (const auto& f : cs.faces())
    if (face_satisfied(enc, cs, f)) ++k;
  return k;
}

std::vector<Violation> verify_encoding(const Encoding& enc,
                                       const ConstraintSet& cs,
                                       bool require_unique_codes) {
  std::vector<Violation> out;
  const std::size_t n = cs.num_symbols();
  const auto& names = cs.symbols();

  if (require_unique_codes) {
    for (std::uint32_t a = 0; a + 1 < n; ++a)
      for (std::uint32_t b = a + 1; b < n; ++b)
        if (enc.codes[a] == enc.codes[b])
          out.push_back(Violation{
              Violation::Kind::kDuplicateCode, a * n + b,
              names.name(a) + " and " + names.name(b) + " share code " +
                  enc.code_string(a)});
  }

  for (std::size_t i = 0; i < cs.faces().size(); ++i)
    if (!face_satisfied(enc, cs, cs.faces()[i]))
      out.push_back(Violation{Violation::Kind::kFace, i,
                              "face constraint " + std::to_string(i) +
                                  " has an intruder in its spanned face"});

  for (std::size_t i = 0; i < cs.dominances().size(); ++i) {
    const auto& d = cs.dominances()[i];
    const std::uint64_t a = enc.codes[d.dominator];
    const std::uint64_t b = enc.codes[d.dominated];
    if ((a & b) != b)
      out.push_back(Violation{Violation::Kind::kDominance, i,
                              names.name(d.dominator) + " > " +
                                  names.name(d.dominated) + " violated"});
  }

  for (std::size_t i = 0; i < cs.disjunctives().size(); ++i) {
    const auto& d = cs.disjunctives()[i];
    std::uint64_t orv = 0;
    for (auto c : d.children) orv |= enc.codes[c];
    if (orv != enc.codes[d.parent])
      out.push_back(Violation{Violation::Kind::kDisjunctive, i,
                              names.name(d.parent) +
                                  " != OR of its children"});
  }

  for (std::size_t i = 0; i < cs.extended_disjunctives().size(); ++i) {
    const auto& e = cs.extended_disjunctives()[i];
    // For every bit at 1 in the parent code, some conjunction must have all
    // children at 1 in that bit.
    bool ok = true;
    for (int b = 0; b < enc.bits && ok; ++b) {
      if (((enc.codes[e.parent] >> b) & 1u) == 0) continue;
      bool some = false;
      for (const auto& conj : e.conjunctions) {
        bool all = true;
        for (auto c : conj)
          if (((enc.codes[c] >> b) & 1u) == 0) {
            all = false;
            break;
          }
        if (all) {
          some = true;
          break;
        }
      }
      ok = some;
    }
    if (!ok)
      out.push_back(Violation{Violation::Kind::kExtendedDisjunctive, i,
                              "extended disjunctive for " +
                                  names.name(e.parent) + " violated"});
  }

  for (std::size_t i = 0; i < cs.distance2s().size(); ++i) {
    const auto& d = cs.distance2s()[i];
    if (std::popcount(enc.codes[d.a] ^ enc.codes[d.b]) < 2)
      out.push_back(Violation{Violation::Kind::kDistance2, i,
                              names.name(d.a) + " / " + names.name(d.b) +
                                  " closer than distance 2"});
  }

  for (std::size_t i = 0; i < cs.nonfaces().size(); ++i) {
    const auto& nf = cs.nonfaces()[i];
    const Face face = span_face(enc, nf.members);
    const Bitset inside = index_bitset(n, nf.members);
    bool intruder = false;
    for (std::uint32_t s = 0; s < n && !intruder; ++s)
      if (!inside.test(s) && in_face(face, enc.codes[s])) intruder = true;
    if (!intruder)
      out.push_back(Violation{Violation::Kind::kNonFace, i,
                              "non-face constraint " + std::to_string(i) +
                                  " spans an exclusive face"});
  }
  return out;
}

}  // namespace encodesat
