// Output-constraint rules on encoding-dichotomies: validity (Definition 3.6
// / procedure remove_invalid_dichotomies) and maximal raising (Definitions
// 6.1-6.2 / procedure raise_dichotomy) — Figures 5 and 6 of the paper.
#pragma once

#include <vector>

#include "core/constraints.h"
#include "core/dichotomy.h"

namespace encodesat {

/// True iff the (possibly partial) dichotomy can still be extended to a full
/// encoding column satisfying every dominance, disjunctive and extended
/// disjunctive constraint:
///  - dominance a > b: invalid if a ∈ left and b ∈ right (bit of a would be
///    0 while bit of b is 1);
///  - disjunctive p = OR(children): invalid if p ∈ left while some child is
///    in right, or p ∈ right while every child is in left;
///  - extended disjunctive OR(AND(conj)) >= p: invalid if p ∈ right while
///    every conjunction already contains a child in left.
/// (The disjunctive left-block rule is stated more loosely in the paper's
/// Figure 5 pseudo-code, but its own Figure 8 example deletes (s0 s1; s3)
/// against s0 = s1 ∨ s3 — i.e. a single child in the right block suffices —
/// so we implement that semantics.)
bool dichotomy_valid(const Dichotomy& d, const ConstraintSet& cs);

/// Removes the dichotomies that violate an output constraint.
void remove_invalid_dichotomies(std::vector<Dichotomy>& ds,
                                const ConstraintSet& cs);

/// Maximally raises d with respect to the output constraints (fixpoint of
/// the implication rules in Figure 5). Returns false if raising derives a
/// contradiction (a symbol forced into both blocks), in which case d should
/// be discarded.
bool raise_dichotomy(Dichotomy& d, const ConstraintSet& cs);

}  // namespace encodesat
