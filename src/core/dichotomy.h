// Encoding-dichotomies (Definitions 3.1-3.6 of the paper).
//
// An encoding-dichotomy is an ordered 2-block partial partition of the
// symbols: symbols in the left block get bit 0 in the generated encoding
// column, symbols in the right block get bit 1. Unlike Tracey's unordered
// dichotomies, the orientation matters — that is what lets output
// (dominance/disjunctive) constraints be expressed as validity conditions
// on dichotomies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/symbols.h"
#include "util/bitset.h"

namespace encodesat {

struct Dichotomy {
  Bitset left;
  Bitset right;

  Dichotomy() = default;
  explicit Dichotomy(std::size_t n) : left(n), right(n) {}

  static Dichotomy make(std::size_t n, const std::vector<std::uint32_t>& l,
                        const std::vector<std::uint32_t>& r);

  std::size_t universe() const { return left.size(); }

  /// A well-formed dichotomy has disjoint blocks.
  bool well_formed() const { return !left.intersects(right); }

  /// Symbols placed in either block.
  Bitset placed() const { return left | right; }

  bool in_left(std::uint32_t s) const { return left.test(s); }
  bool in_right(std::uint32_t s) const { return right.test(s); }
  bool places(std::uint32_t s) const { return in_left(s) || in_right(s); }

  /// Definition 3.2: compatible iff left/right blocks do not clash
  /// (orientation-sensitive).
  bool compatible(const Dichotomy& o) const {
    return !left.intersects(o.right) && !right.intersects(o.left);
  }

  /// Definition 3.3: union of compatible dichotomies (caller must ensure
  /// compatibility; asserted in debug builds).
  Dichotomy union_with(const Dichotomy& o) const;

  /// Definition 3.4: d covers o if o's blocks are subsets of d's blocks in
  /// either the same or the swapped orientation.
  bool covers(const Dichotomy& o) const {
    return (o.left.is_subset_of(left) && o.right.is_subset_of(right)) ||
           (o.left.is_subset_of(right) && o.right.is_subset_of(left));
  }

  /// The same bipartition with the opposite bit orientation.
  Dichotomy flipped() const { return Dichotomy{right, left}; }

  bool operator==(const Dichotomy& o) const {
    return left == o.left && right == o.right;
  }
  bool operator<(const Dichotomy& o) const {
    return left != o.left ? left < o.left : right < o.right;
  }

  /// "(s0 s2; s1)" rendering using symbol names.
  std::string to_string(const SymbolTable& symbols) const;

 private:
  Dichotomy(Bitset l, Bitset r) : left(std::move(l)), right(std::move(r)) {}
};

struct DichotomyHash {
  std::size_t operator()(const Dichotomy& d) const {
    return d.left.hash() * 1000003u ^ d.right.hash();
  }
};

/// Removes duplicate dichotomies, preserving first occurrences.
void dedupe_dichotomies(std::vector<Dichotomy>& ds);

}  // namespace encodesat
