// The paper's core algorithms: feasibility of mixed input/output
// constraints (Figure 6, Theorem 6.1 — problem P-1) and exact
// minimum-length encoding (Figure 7, Theorem 6.2 — problem P-2).
#pragma once

#include <cstdint>
#include <vector>

#include "core/constraints.h"
#include "core/dichotomy.h"
#include "core/encoding.h"
#include "core/generate.h"
#include "core/primes.h"
#include "covering/unate.h"

namespace encodesat {

struct FeasibilityResult {
  bool feasible = false;
  /// Indices (into the initial dichotomy list) left uncovered by every
  /// valid maximally raised dichotomy; empty iff feasible.
  std::vector<std::size_t> uncovered;
  /// The initial dichotomies (I) and the valid maximally raised set (D),
  /// exposed for diagnostics and for the worked-example benches.
  std::vector<InitialDichotomy> initial;
  std::vector<Dichotomy> raised;
};

/// P-1 in time polynomial in symbols × constraints: generate I, delete
/// invalid dichotomies, raise the survivors maximally, delete any that
/// became invalid, and check that every i ∈ I is covered by some d ∈ D.
/// Pass ExecContext{} when no budget/stats plumbing is needed, or use the
/// Solver facade (core/solver.h).
FeasibilityResult check_feasible(const ConstraintSet& cs,
                                 const ExecContext& ctx);

/// Machine-checks an infeasibility verdict against its own evidence: the
/// result must be infeasible with a non-empty `uncovered` witness, every
/// witness index must name an initial dichotomy, no dichotomy in `raised`
/// may cover it (Theorem 6.1's feasibility condition), and every raised
/// dichotomy must itself be valid. Returns false (and fills `*why` when
/// non-null) if the evidence does not support the verdict — the fuzz
/// differential driver treats that as a solver bug.
bool verify_infeasibility_witness(const ConstraintSet& cs,
                                  const FeasibilityResult& result,
                                  std::string* why = nullptr);

struct ExactEncodeOptions {
  PrimeGenOptions prime_options;
  UnateCoverOptions cover_options;
};

struct ExactEncodeResult {
  enum class Status {
    kEncoded,       ///< feasible; `encoding` holds a minimum-length solution
    kInfeasible,    ///< the constraints cannot all be satisfied
    kPrimeLimit,    ///< prime generation exceeded the term budget
  };
  Status status = Status::kInfeasible;
  Encoding encoding;
  /// Covering-solver proof of minimality (false if the node budget ran out,
  /// in which case `encoding` is still valid but possibly not minimum).
  bool minimal = true;
  /// Uniform truncation shape (see docs/API.md): `truncated` always mirrors
  /// `truncation != Truncation::kNone`.
  bool truncated = false;
  /// Why the pipeline stopped early or lost the optimality proof: set with
  /// kPrimeLimit (term/work/deadline/cancel during prime generation) and
  /// alongside `minimal == false` (node budget or shared-budget expiry in
  /// the covering search).
  Truncation truncation = Truncation::kNone;

  // Statistics mirroring Table 1's columns.
  std::size_t num_initial = 0;
  std::size_t num_raised = 0;
  std::size_t num_primes = 0;
  std::size_t num_valid_primes = 0;
  std::vector<std::size_t> uncovered;  ///< set when infeasible
};

/// P-2: exact minimum-length encoding satisfying all input and output
/// constraints (distance-2 and non-face constraints are handled by
/// encode_with_extensions in extensions.h; this routine ignores them).
/// Deterministic for any `ctx.num_threads` under work/term/node budgets
/// (wall-clock deadlines excepted). Most callers want the Solver facade
/// (core/solver.h), which routes pipelines and can cache results.
ExactEncodeResult exact_encode(const ConstraintSet& cs,
                               const ExactEncodeOptions& opts,
                               const ExecContext& ctx);

}  // namespace encodesat
