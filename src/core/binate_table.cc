#include "core/binate_table.h"

#include <cassert>
#include <stdexcept>

#include "core/generate.h"

namespace encodesat {

namespace {

bool column_covers_dichotomy(std::uint64_t pattern, const Dichotomy& d) {
  // All left-block symbols must share one bit and all right-block symbols
  // the other (either orientation, Definition 3.4).
  bool left0 = true, left1 = true, right0 = true, right1 = true;
  d.left.for_each([&](std::size_t s) {
    if ((pattern >> s) & 1u)
      left0 = false;
    else
      left1 = false;
  });
  d.right.for_each([&](std::size_t s) {
    if ((pattern >> s) & 1u)
      right0 = false;
    else
      right1 = false;
  });
  return (left0 && right1) || (left1 && right0);
}

bool column_violates_outputs(std::uint64_t pattern, const ConstraintSet& cs) {
  auto bit = [&](std::uint32_t s) -> std::uint64_t {
    return (pattern >> s) & 1u;
  };
  for (const auto& d : cs.dominances())
    if (bit(d.dominator) == 0 && bit(d.dominated) == 1) return true;
  for (const auto& d : cs.disjunctives()) {
    std::uint64_t orv = 0;
    for (auto c : d.children) orv |= bit(c);
    if (orv != bit(d.parent)) return true;
  }
  for (const auto& e : cs.extended_disjunctives()) {
    if (bit(e.parent) == 0) continue;
    bool some = false;
    for (const auto& conj : e.conjunctions) {
      bool all = true;
      for (auto c : conj)
        if (bit(c) == 0) {
          all = false;
          break;
        }
      if (all) {
        some = true;
        break;
      }
    }
    if (!some) return true;
  }
  return false;
}

}  // namespace

BinateTable build_binate_table(const ConstraintSet& cs) {
  const std::uint32_t n = cs.num_symbols();
  if (n > 20)
    throw std::invalid_argument(
        "binate table construction is exponential; refusing n > 20 symbols");
  if (n < 2)
    throw std::invalid_argument("binate table needs at least two symbols");

  BinateTable table;
  for (std::uint64_t p = 1; p + 1 < (std::uint64_t{1} << n); ++p)
    table.patterns.push_back(p);

  table.problem.num_columns = table.patterns.size();

  // Unate rows from face and uniqueness dichotomies. The generated set
  // contains both orientations of each dichotomy; they have identical
  // coverage under Definition 3.4, so keep one of each pair.
  const auto initial = generate_initial_dichotomies(cs);
  std::vector<Dichotomy> rows_src;
  for (const auto& i : initial) {
    bool dup = false;
    for (const auto& r : rows_src)
      if (r.covers(i.dichotomy) && i.dichotomy.covers(r)) {
        dup = true;
        break;
      }
    if (!dup) rows_src.push_back(i.dichotomy);
  }
  for (const auto& d : rows_src) {
    BinateRow row{Bitset(table.problem.num_columns),
                  Bitset(table.problem.num_columns)};
    for (std::size_t c = 0; c < table.patterns.size(); ++c)
      if (column_covers_dichotomy(table.patterns[c], d)) row.pos.set(c);
    table.problem.rows.push_back(std::move(row));
  }
  table.num_unate_rows = table.problem.rows.size();

  // Negative rows forbidding output-violating columns.
  for (std::size_t c = 0; c < table.patterns.size(); ++c) {
    if (!column_violates_outputs(table.patterns[c], cs)) continue;
    BinateRow row{Bitset(table.problem.num_columns),
                  Bitset(table.problem.num_columns)};
    row.neg.set(c);
    table.problem.rows.push_back(std::move(row));
    ++table.num_negative_rows;
  }
  return table;
}

BinateEncodeResult binate_table_encode(const ConstraintSet& cs,
                                       const BinateCoverOptions& opts,
                                       const ExecContext& ctx) {
  BinateEncodeResult res;
  const BinateTable table = build_binate_table(cs);
  const BinateCoverSolution sol = solve_binate_cover(table.problem, opts, ctx);
  res.nodes_explored = sol.nodes_explored;
  res.truncated = sol.truncated;
  res.truncation = sol.truncation;
  if (!sol.feasible) return res;
  assert(sol.cost >= 0);
  res.feasible = true;
  res.minimal = sol.optimal;
  res.encoding.bits = static_cast<int>(sol.columns.size());
  res.encoding.codes.assign(cs.num_symbols(), 0);
  for (std::size_t j = 0; j < sol.columns.size(); ++j) {
    const std::uint64_t pattern = table.patterns[sol.columns[j]];
    for (std::uint32_t s = 0; s < cs.num_symbols(); ++s)
      if ((pattern >> s) & 1u)
        res.encoding.codes[s] |= std::uint64_t{1} << j;
  }
  return res;
}

}  // namespace encodesat
