#include "core/exact_bounded.h"

#include <stdexcept>

#include "core/verify.h"

namespace encodesat {

namespace {

struct Search {
  const ConstraintSet& cs;
  const ExactBoundedOptions& opts;
  std::uint32_t n;
  std::uint64_t space;

  std::uint64_t nodes = 0;
  bool budget_exhausted = false;
  Encoding current;
  std::vector<bool> assigned;
  std::vector<bool> used;
  int best_cost;
  Encoding best;
  bool found = false;

  // Violated faces decided so far: a face counts once all its members and
  // every potential intruder are assigned — conservatively, we count a face
  // as violated as soon as its members are all placed and some *assigned*
  // outsider sits in the span (it can never leave), which is a sound lower
  // bound on the final violation count.
  int violated_lower_bound() const {
    int v = 0;
    const std::uint64_t mask =
        current.bits >= 64 ? ~std::uint64_t{0}
                           : (std::uint64_t{1} << current.bits) - 1;
    for (const auto& f : cs.faces()) {
      bool all = true;
      for (auto m : f.members)
        if (!assigned[m]) {
          all = false;
          break;
        }
      if (!all) continue;
      std::uint64_t fixed = mask, ref = current.codes[f.members[0]];
      for (auto m : f.members) fixed &= ~(current.codes[m] ^ ref);
      const std::uint64_t value = ref & fixed;
      const Bitset inside =
          index_bitset(n, f.members) | index_bitset(n, f.dontcares);
      for (std::uint32_t s = 0; s < n; ++s) {
        if (!assigned[s] || inside.test(s)) continue;
        if ((current.codes[s] & fixed) == value) {
          ++v;
          break;
        }
      }
    }
    return v;
  }

  // Hard output constraints on fully assigned symbols only.
  bool outputs_consistent() const {
    for (const auto& d : cs.dominances()) {
      if (!assigned[d.dominator] || !assigned[d.dominated]) continue;
      if ((current.codes[d.dominator] & current.codes[d.dominated]) !=
          current.codes[d.dominated])
        return false;
    }
    for (const auto& dj : cs.disjunctives()) {
      bool all = assigned[dj.parent];
      for (auto c : dj.children) all = all && assigned[c];
      if (!all) continue;
      std::uint64_t orv = 0;
      for (auto c : dj.children) orv |= current.codes[c];
      if (orv != current.codes[dj.parent]) return false;
    }
    return true;
  }

  void solve(std::uint32_t s, int lb) {
    if (budget_exhausted) return;
    if (++nodes > opts.max_nodes) {
      budget_exhausted = true;
      return;
    }
    if (lb >= best_cost && found) return;
    if (s == n) {
      // Exact final count (don't-cares and unassigned cases resolved).
      int v = 0;
      for (const auto& f : cs.faces())
        if (!face_satisfied(current, cs, f)) ++v;
      if (!found || v < best_cost) {
        // Verify the hard output constraints exactly.
        bool ok = true;
        for (const auto& viol : verify_encoding(current, cs))
          if (viol.kind != Violation::Kind::kFace) ok = false;
        if (ok) {
          best_cost = v;
          best = current;
          found = true;
        }
      }
      return;
    }
    // Symmetry break: face constraints are invariant under XOR translation
    // of the whole code space, so without output constraints the first
    // symbol can be pinned to code 0. Dominance/disjunctive constraints are
    // not XOR-invariant, so the break is disabled in their presence.
    const std::uint64_t limit =
        (s == 0 && !cs.has_output_constraints()) ? 1 : space;
    for (std::uint64_t code = 0; code < limit; ++code) {
      if (used[code]) continue;
      used[code] = true;
      assigned[s] = true;
      current.codes[s] = code;
      if (outputs_consistent()) {
        const int new_lb = violated_lower_bound();
        if (!found || new_lb < best_cost) solve(s + 1, new_lb);
      }
      used[code] = false;
      assigned[s] = false;
    }
  }
};

}  // namespace

ExactBoundedResult exact_bounded_encode(const ConstraintSet& cs, int bits,
                                        const ExactBoundedOptions& opts) {
  ExactBoundedResult res;
  const std::uint32_t n = cs.num_symbols();
  if (bits < 1 || bits > 16) return res;
  const std::uint64_t space = std::uint64_t{1} << bits;
  if (space < n) throw std::invalid_argument("code space too small");

  Search search{cs,    opts,  n,  space, 0, false, Encoding{}, {}, {},
                0,     Encoding{}, false};
  search.current.bits = bits;
  search.current.codes.assign(n, 0);
  search.assigned.assign(n, false);
  search.used.assign(space, false);
  search.best_cost = static_cast<int>(cs.faces().size()) + 1;
  search.solve(0, 0);

  res.nodes_explored = search.nodes;
  if (!search.found) {
    res.status = search.budget_exhausted ? ExactBoundedResult::Status::kBudget
                                         : ExactBoundedResult::Status::kTooLarge;
    return res;
  }
  res.status = ExactBoundedResult::Status::kSolved;
  res.encoding = search.best;
  res.violated_faces = search.best_cost;
  res.optimal = !search.budget_exhausted;
  return res;
}

}  // namespace encodesat
