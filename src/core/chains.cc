#include "core/chains.h"

#include <algorithm>
#include <stdexcept>

#include "core/verify.h"

namespace encodesat {

bool chains_satisfied(const Encoding& enc,
                      const std::vector<ChainConstraint>& chains) {
  const std::uint64_t mask = enc.bits >= 64
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << enc.bits) - 1;
  for (const auto& chain : chains)
    for (std::size_t i = 0; i + 1 < chain.sequence.size(); ++i)
      if (((enc.codes[chain.sequence[i]] + 1) & mask) !=
          enc.codes[chain.sequence[i + 1]])
        return false;
  return true;
}

namespace {

// A placement group: either a whole chain (codes consecutive from a base)
// or a single free symbol (a 1-chain).
struct Group {
  std::vector<std::uint32_t> symbols;
};

struct Search {
  const ConstraintSet& cs;
  const ChainEncodeOptions& opts;
  int bits;
  std::uint64_t space;
  std::uint64_t mask;
  std::vector<Group> groups;

  std::uint64_t nodes = 0;
  bool budget_exhausted = false;
  bool found = false;
  Encoding enc;
  std::vector<bool> assigned;
  std::vector<bool> used;

  bool face_prune_ok(std::uint32_t /*just_assigned*/) const {
    // Prune on every face constraint whose members are all assigned: the
    // span is then fixed, and an assigned outsider (not a don't-care)
    // inside it can never be moved out again.
    const std::size_t n = cs.num_symbols();
    for (const auto& f : cs.faces()) {
      bool all_members = true;
      for (auto m : f.members)
        if (!assigned[m]) {
          all_members = false;
          break;
        }
      if (!all_members) continue;
      std::uint64_t fixed = mask, ref = enc.codes[f.members[0]];
      for (auto m : f.members) fixed &= ~(enc.codes[m] ^ ref);
      const std::uint64_t value = ref & fixed;
      const Bitset inside =
          index_bitset(n, f.members) | index_bitset(n, f.dontcares);
      for (std::uint32_t s = 0; s < n; ++s) {
        if (!assigned[s] || inside.test(s)) continue;
        if ((enc.codes[s] & fixed) == value) return false;
      }
    }
    return true;
  }

  void solve(std::size_t gi) {
    if (budget_exhausted || found) return;
    if (++nodes > opts.max_nodes) {
      budget_exhausted = true;
      return;
    }
    if (gi == groups.size()) {
      // All placed: full verification (faces already pruned; recheck all
      // constraint classes to be safe).
      if (verify_encoding(enc, cs).empty()) found = true;
      return;
    }
    const Group& g = groups[gi];
    for (std::uint64_t base = 0; base < space && !found; ++base) {
      // Place the group's symbols at consecutive codes.
      bool ok = true;
      for (std::size_t i = 0; i < g.symbols.size(); ++i)
        if (used[(base + i) & mask]) {
          ok = false;
          break;
        }
      if (!ok) continue;
      for (std::size_t i = 0; i < g.symbols.size(); ++i) {
        const std::uint64_t code = (base + i) & mask;
        enc.codes[g.symbols[i]] = code;
        used[code] = true;
        assigned[g.symbols[i]] = true;
      }
      ok = true;
      for (auto s : g.symbols)
        if (!face_prune_ok(s)) {
          ok = false;
          break;
        }
      if (ok) solve(gi + 1);
      if (!found) {
        for (std::size_t i = 0; i < g.symbols.size(); ++i) {
          const std::uint64_t code = (base + i) & mask;
          used[code] = false;
          assigned[g.symbols[i]] = false;
        }
      }
    }
  }
};

}  // namespace

ChainEncodeResult encode_with_chains(const ConstraintSet& cs,
                                     const std::vector<ChainConstraint>& chains,
                                     int bits,
                                     const ChainEncodeOptions& opts) {
  const std::uint32_t n = cs.num_symbols();
  if (bits < 1 || bits > 24)
    throw std::invalid_argument("chain encoding supports 1..24 bits");
  const std::uint64_t space = std::uint64_t{1} << bits;
  if (space < n)
    throw std::invalid_argument("code space smaller than symbol count");

  std::vector<bool> chained(n, false);
  Search search{cs, opts, bits, space, space - 1, {}, 0, false, false,
                Encoding{}, {}, {}};
  for (const auto& chain : chains) {
    if (chain.sequence.empty())
      throw std::invalid_argument("empty chain constraint");
    Group g;
    for (auto s : chain.sequence) {
      if (s >= n) throw std::invalid_argument("chain symbol out of range");
      if (chained[s])
        throw std::invalid_argument("symbol appears in two chains");
      chained[s] = true;
      g.symbols.push_back(s);
    }
    search.groups.push_back(std::move(g));
  }
  for (std::uint32_t s = 0; s < n; ++s)
    if (!chained[s]) search.groups.push_back(Group{{s}});
  // Longest groups first: they are the hardest to place.
  std::stable_sort(search.groups.begin(), search.groups.end(),
                   [](const Group& a, const Group& b) {
                     return a.symbols.size() > b.symbols.size();
                   });

  search.enc.bits = bits;
  search.enc.codes.assign(n, 0);
  search.assigned.assign(n, false);
  search.used.assign(space, false);
  search.solve(0);

  ChainEncodeResult res;
  res.nodes_explored = search.nodes;
  if (search.found) {
    res.status = ChainEncodeResult::Status::kEncoded;
    res.encoding = search.enc;
  } else if (search.budget_exhausted) {
    res.status = ChainEncodeResult::Status::kBudget;
  }
  return res;
}

}  // namespace encodesat
