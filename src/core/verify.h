// Independent verification of an encoding against every constraint class.
//
// Deliberately implemented from the constraint *semantics* (hypercube faces
// and bitwise relations on codes), not from the dichotomy framework, so it
// can serve as an oracle for the encoders in tests and benches.
#pragma once

#include <string>
#include <vector>

#include "core/constraints.h"
#include "core/encoding.h"

namespace encodesat {

struct Violation {
  enum class Kind {
    kDuplicateCode,
    kFace,
    kDominance,
    kDisjunctive,
    kExtendedDisjunctive,
    kDistance2,
    kNonFace,
  };
  Kind kind;
  /// Index into the corresponding constraint vector (or the symbol pair for
  /// duplicate codes, encoded as index = a * n + b).
  std::size_t index;
  std::string detail;

  /// "kind[index]: detail" — one line, stable across runs, suitable for
  /// fuzz-divergence reports and reproducer files.
  std::string to_string() const;
};

/// Stable lower-case name of a violation kind ("duplicate_code", "face",
/// "dominance", ...), for machine-readable divergence reports.
const char* violation_kind_name(Violation::Kind kind);

/// Returns all violations (empty means the encoding satisfies everything).
/// `require_unique_codes` adds the all-pairs distinctness check, which is
/// part of every encoding problem in the paper.
std::vector<Violation> verify_encoding(const Encoding& enc,
                                       const ConstraintSet& cs,
                                       bool require_unique_codes = true);

/// True iff a face constraint (alone) is satisfied by the encoding: the
/// minimal face spanned by the member codes contains no code of a symbol
/// outside members ∪ dontcares.
bool face_satisfied(const Encoding& enc, const ConstraintSet& cs,
                    const FaceConstraint& f);

/// Number of face constraints satisfied — the first cost function of
/// Section 7.
int count_satisfied_faces(const Encoding& enc, const ConstraintSet& cs);

}  // namespace encodesat
