// The constraint intermediate representation: every constraint class the
// paper's framework satisfies (Sections 1, 6, 8), plus a small text format
// for building constraint sets in tests, examples and tools.
//
// Text grammar (one constraint per line, '#' comments):
//   face a b [c d] e        face-embedding (a,b,[c,d],e); bracketed symbols
//                           are encoding don't-cares (Section 8.1)
//   dominance a b           a > b (code of a bitwise covers code of b)
//   disjunctive a b c ...   a = b OR c OR ...
//   extdisjunctive a : b c | d e    (b AND c) OR (d AND e) >= a  (Section 6.2)
//   distance2 a b           hamming(code a, code b) >= 2 (Section 8.2)
//   nonface a b c           the face of {a,b,c} must contain some other
//                           symbol's code (Section 8.3)
//   symbol a                declares a symbol without constraining it
//
// Constraint member sets are stored as index vectors because symbols are
// interned incrementally while building; algorithms convert to Bitsets over
// the final symbol universe via the *_bitset helpers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/symbols.h"
#include "util/bitset.h"

namespace encodesat {

/// (m1, ..., mk, [d1, ...]): members must span a face containing no symbol
/// outside members ∪ dontcares; dontcares may fall either way (§8.1).
struct FaceConstraint {
  std::vector<std::uint32_t> members;
  std::vector<std::uint32_t> dontcares;
};

/// dominator > dominated.
struct DominanceConstraint {
  std::uint32_t dominator = 0;
  std::uint32_t dominated = 0;
};

/// parent = OR of children (two or more children).
struct DisjunctiveConstraint {
  std::uint32_t parent = 0;
  std::vector<std::uint32_t> children;
};

/// OR over conjunctions of children >= parent (Section 6.2, from GPIs).
struct ExtendedDisjunctiveConstraint {
  std::uint32_t parent = 0;
  std::vector<std::vector<std::uint32_t>> conjunctions;
};

/// hamming distance between the two codes must be >= 2.
struct Distance2Constraint {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

/// The face spanned by members must contain at least one other symbol.
struct NonFaceConstraint {
  std::vector<std::uint32_t> members;
};

/// Builds a Bitset over a universe of n symbols from an index list.
Bitset index_bitset(std::size_t n, const std::vector<std::uint32_t>& ids);

/// A complete encoding problem instance over n symbols.
class ConstraintSet {
 public:
  ConstraintSet() = default;
  explicit ConstraintSet(SymbolTable symbols) : symbols_(std::move(symbols)) {}

  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }
  std::uint32_t num_symbols() const { return symbols_.size(); }

  std::vector<FaceConstraint>& faces() { return faces_; }
  const std::vector<FaceConstraint>& faces() const { return faces_; }
  std::vector<DominanceConstraint>& dominances() { return dominances_; }
  const std::vector<DominanceConstraint>& dominances() const {
    return dominances_;
  }
  std::vector<DisjunctiveConstraint>& disjunctives() { return disjunctives_; }
  const std::vector<DisjunctiveConstraint>& disjunctives() const {
    return disjunctives_;
  }
  std::vector<ExtendedDisjunctiveConstraint>& extended_disjunctives() {
    return extended_;
  }
  const std::vector<ExtendedDisjunctiveConstraint>& extended_disjunctives()
      const {
    return extended_;
  }
  std::vector<Distance2Constraint>& distance2s() { return distance2s_; }
  const std::vector<Distance2Constraint>& distance2s() const {
    return distance2s_;
  }
  std::vector<NonFaceConstraint>& nonfaces() { return nonfaces_; }
  const std::vector<NonFaceConstraint>& nonfaces() const { return nonfaces_; }

  bool has_output_constraints() const {
    return !dominances_.empty() || !disjunctives_.empty() || !extended_.empty();
  }

  /// Convenience builders using symbol names (interned on first use).
  void add_face(const std::vector<std::string>& members,
                const std::vector<std::string>& dontcares = {});
  void add_dominance(const std::string& dominator,
                     const std::string& dominated);
  void add_disjunctive(const std::string& parent,
                       const std::vector<std::string>& children);
  void add_extended_disjunctive(
      const std::string& parent,
      const std::vector<std::vector<std::string>>& conjunctions);
  void add_distance2(const std::string& a, const std::string& b);
  void add_nonface(const std::vector<std::string>& members);

  /// Index-based builders for programmatic construction (symbols must
  /// already be interned).
  void add_face_ids(std::vector<std::uint32_t> members,
                    std::vector<std::uint32_t> dontcares = {});
  void add_dominance_ids(std::uint32_t dominator, std::uint32_t dominated);
  void add_disjunctive_ids(std::uint32_t parent,
                           std::vector<std::uint32_t> children);

  /// Render in the text grammar above (round-trips through parse).
  /// Symbols no constraint references are declared with `symbol` lines so
  /// the symbol universe survives the round trip.
  std::string to_string() const;

 private:
  std::vector<std::uint32_t> intern_all(const std::vector<std::string>& names);

  SymbolTable symbols_;
  std::vector<FaceConstraint> faces_;
  std::vector<DominanceConstraint> dominances_;
  std::vector<DisjunctiveConstraint> disjunctives_;
  std::vector<ExtendedDisjunctiveConstraint> extended_;
  std::vector<Distance2Constraint> distance2s_;
  std::vector<NonFaceConstraint> nonfaces_;
};

/// Diagnostic for a malformed constraint line.
struct ParseError {
  int line = 0;    ///< 1-based line number of the offending input line.
  int column = 0;  ///< 1-based column of the offending token (0 = unknown).
  std::string message;

  /// "line N, col C: message" ("line N: message" when the column is
  /// unknown) — ready for CLI diagnostics and the service wire payload.
  std::string to_string() const;
};

/// Parses the text grammar; throws std::runtime_error with a line number on
/// malformed input. Symbols appear in order of first mention. Degenerate
/// lines are rejected like malformed ones: self-dominance (`dominance a a`),
/// a symbol listed twice within one face constraint (member or don't-care),
/// a disjunctive parent appearing in its own RHS, and an empty
/// extended-disjunctive conjunction.
ConstraintSet parse_constraints(const std::string& text);

/// Non-throwing variant: returns std::nullopt on malformed input and fills
/// `*error` (when non-null) with the line number and message instead.
std::optional<ConstraintSet> parse_constraints(const std::string& text,
                                               ParseError* error);

}  // namespace encodesat
