// A local-consistency feasibility check in the spirit of the algorithm of
// Devadas & Newton ("Exact algorithms for output encoding, state assignment
// and four-level Boolean minimization", IEEE TCAD Jan 1991), which the
// paper's Section 6.2 proves incomplete by the counterexample of Figure 4.
//
// The check verifies only pairwise/local conditions:
//  - the dominance relation (including the dominances implied by
//    disjunctive parents over their children) contains no cycle between
//    distinct symbols;
//  - no two symbols dominate each other (which would force equal codes);
//  - every initial encoding-dichotomy has at least one orientation that
//    does not itself violate an output constraint.
// These conditions are necessary but not sufficient: they miss conflicts
// that only appear after transitively raising dichotomies, so the routine
// answers "feasible" on Figure 4's constraint set while check_feasible
// correctly answers "infeasible". It exists as the comparison baseline for
// the Figure 4 bench/tests.
#pragma once

#include "core/constraints.h"

namespace encodesat {

bool local_consistency_feasible(const ConstraintSet& cs);

}  // namespace encodesat
