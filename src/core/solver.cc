#include "core/solver.h"

#include <utility>

#include "obs/counters.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace encodesat {

namespace {

SolveResult::Status from_exact(ExactEncodeResult::Status s) {
  switch (s) {
    case ExactEncodeResult::Status::kEncoded:
      return SolveResult::Status::kEncoded;
    case ExactEncodeResult::Status::kInfeasible:
      return SolveResult::Status::kInfeasible;
    case ExactEncodeResult::Status::kPrimeLimit:
      return SolveResult::Status::kTruncated;
  }
  return SolveResult::Status::kInfeasible;
}

SolveResult::Status from_extension(ExtensionEncodeResult::Status s) {
  switch (s) {
    case ExtensionEncodeResult::Status::kEncoded:
      return SolveResult::Status::kEncoded;
    case ExtensionEncodeResult::Status::kInfeasible:
      return SolveResult::Status::kInfeasible;
    case ExtensionEncodeResult::Status::kPrimeLimit:
      return SolveResult::Status::kTruncated;
  }
  return SolveResult::Status::kInfeasible;
}

// The facade body, with the budget already configured by the caller (the
// single-solve path sets a relative deadline, the batch path a shared
// absolute one).
SolveResult run_solve(const ConstraintSet& cs, const SolveOptions& opts,
                      Budget& budget, int threads) {
  SolveResult out;
  out.stats = StageStats("solve");
  const Budget::Clock::time_point start = Budget::Clock::now();
  const ExecContext ctx{&budget, &out.stats, threads, opts.tracer,
                        opts.metrics};
  // Root span matching the "solve" stats root; stage scopes below add the
  // child spans.
  TRACE_SCOPE(ctx, "solve");

  const bool extended =
      opts.pipeline == SolveOptions::Pipeline::kExtensions ||
      (opts.pipeline == SolveOptions::Pipeline::kAuto &&
       (!cs.distance2s().empty() || !cs.nonfaces().empty()));
  if (!extended) {
    ExactEncodeOptions eo;
    eo.prime_options = opts.prime_options;
    eo.cover_options = opts.cover_options;
    ExactEncodeResult r = exact_encode(cs, eo, ctx);
    out.status = from_exact(r.status);
    out.encoding = std::move(r.encoding);
    out.minimal = r.status == ExactEncodeResult::Status::kEncoded && r.minimal;
    out.truncation = r.truncation;
    out.uncovered = std::move(r.uncovered);
    out.num_initial = r.num_initial;
    out.num_raised = r.num_raised;
    out.num_primes = r.num_primes;
    out.num_valid_primes = r.num_valid_primes;
    if (const StageStats* cover = out.stats.find("unate_cover"))
      out.nodes_explored = cover->items;
  } else {
    ExtensionEncodeOptions xo;
    xo.prime_options = opts.prime_options;
    xo.cover_options = opts.extension_cover_options;
    ExtensionEncodeResult r = encode_with_extensions(cs, xo, ctx);
    out.status = from_extension(r.status);
    out.encoding = std::move(r.encoding);
    out.minimal =
        r.status == ExtensionEncodeResult::Status::kEncoded && r.minimal;
    out.truncation = r.truncation;
    out.num_candidates = r.num_candidates;
    out.num_aux_columns = r.num_aux_columns;
    out.nodes_explored = r.nodes_explored;
  }
  if (out.status == SolveResult::Status::kTruncated &&
      out.truncation == Truncation::kNone)
    out.truncation = budget.reason();
  out.truncated = out.truncation != Truncation::kNone;
  metric_add(ctx, "solve.runs", 1);
  metric_add(ctx, "solve.work_units", budget.work_used());
  metric_add(ctx, "budget.truncations", out.truncated ? 1 : 0);
  out.stats.work = budget.work_used();
  out.stats.truncation = out.truncation;
  out.stats.elapsed_seconds =
      std::chrono::duration<double>(Budget::Clock::now() - start).count();
  return out;
}

void configure_limits(Budget& budget, const SolveOptions& opts) {
  if (opts.max_work > 0) budget.set_work_limit(opts.max_work);
  if (opts.cancel) budget.set_cancel_token(opts.cancel);
}

}  // namespace

FeasibilityResult Solver::feasibility() const {
  return check_feasible(cs_, ExecContext{});
}

SolveResult Solver::encode(const SolveOptions& opts) const {
  Budget budget;
  if (opts.timeout_seconds > 0) budget.set_deadline_after(opts.timeout_seconds);
  configure_limits(budget, opts);
  return run_solve(cs_, opts, budget, resolve_threads(opts.threads));
}

std::vector<SolveResult> encode_batch(const std::vector<ConstraintSet>& sets,
                                      const SolveOptions& opts) {
  std::vector<SolveResult> out(sets.size());
  // One absolute deadline shared by every item; work budgets stay per-item
  // so work truncation does not depend on scheduling order.
  Budget::Clock::time_point deadline{};
  const bool has_deadline = opts.timeout_seconds > 0;
  if (has_deadline)
    deadline = Budget::Clock::now() +
               std::chrono::duration_cast<Budget::Clock::duration>(
                   std::chrono::duration<double>(opts.timeout_seconds));
  parallel_for(sets.size(), resolve_threads(opts.threads),
               [&](std::size_t i) {
                 Budget budget;
                 if (has_deadline) budget.set_deadline(deadline);
                 configure_limits(budget, opts);
                 out[i] = run_solve(sets[i], opts, budget, /*threads=*/1);
               });
  return out;
}

std::vector<BoundedEncodeResult> bounded_encode_lengths(
    const ConstraintSet& cs, const std::vector<int>& lengths,
    const BoundedEncodeOptions& opts, int threads,
    const ExecContext& ctx) {
  std::vector<BoundedEncodeResult> out(lengths.size());
  TRACE_SCOPE(ctx, "bounded_lengths");
  parallel_for(lengths.size(), resolve_threads(threads), [&](std::size_t i) {
    TRACE_SCOPE(ctx, "bounded_length");
    out[i] = bounded_encode(cs, lengths[i], opts);
    metric_add(ctx, "bounded.lengths_tried", 1);
  });
  return out;
}

// ---------------------------------------------------------------------------
// Legacy entry points, reimplemented as thin wrappers over the facade so
// existing callers keep compiling (and pick up the staged pipeline). They
// are declared [[deprecated]]; defining them must not warn.
// ---------------------------------------------------------------------------

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

FeasibilityResult check_feasible(const ConstraintSet& cs) {
  return Solver(cs).feasibility();
}

ExactEncodeResult exact_encode(const ConstraintSet& cs,
                               const ExactEncodeOptions& opts) {
  SolveOptions so;
  so.prime_options = opts.prime_options;
  so.cover_options = opts.cover_options;
  SolveResult r = Solver(cs).encode(so);
  ExactEncodeResult out;
  switch (r.status) {
    case SolveResult::Status::kEncoded:
      out.status = ExactEncodeResult::Status::kEncoded;
      break;
    case SolveResult::Status::kInfeasible:
      out.status = ExactEncodeResult::Status::kInfeasible;
      break;
    case SolveResult::Status::kTruncated:
      out.status = ExactEncodeResult::Status::kPrimeLimit;
      break;
  }
  out.encoding = std::move(r.encoding);
  out.minimal = r.minimal;
  out.truncated = r.truncated;
  out.truncation = r.truncation;
  out.num_initial = r.num_initial;
  out.num_raised = r.num_raised;
  out.num_primes = r.num_primes;
  out.num_valid_primes = r.num_valid_primes;
  out.uncovered = std::move(r.uncovered);
  return out;
}

ExtensionEncodeResult encode_with_extensions(
    const ConstraintSet& cs, const ExtensionEncodeOptions& opts) {
  // Force the extension pipeline even for plain constraint sets: callers of
  // this entry point expect its totalized-column semantics.
  SolveOptions so;
  so.pipeline = SolveOptions::Pipeline::kExtensions;
  so.prime_options = opts.prime_options;
  so.extension_cover_options = opts.cover_options;
  SolveResult r = Solver(cs).encode(so);
  ExtensionEncodeResult out;
  switch (r.status) {
    case SolveResult::Status::kEncoded:
      out.status = ExtensionEncodeResult::Status::kEncoded;
      break;
    case SolveResult::Status::kInfeasible:
      out.status = ExtensionEncodeResult::Status::kInfeasible;
      break;
    case SolveResult::Status::kTruncated:
      out.status = ExtensionEncodeResult::Status::kPrimeLimit;
      break;
  }
  out.encoding = std::move(r.encoding);
  out.minimal = r.minimal;
  out.truncated = r.truncated;
  out.truncation = r.truncation;
  out.num_candidates = r.num_candidates;
  out.num_aux_columns = r.num_aux_columns;
  out.nodes_explored = r.nodes_explored;
  return out;
}

#pragma GCC diagnostic pop

}  // namespace encodesat
